#ifndef SECMED_OBS_REPORT_H_
#define SECMED_OBS_REPORT_H_

#include <cstdint>
#include <string>
#include <vector>

#include "obs/scope.h"

namespace secmed {
namespace obs {

/// ------------------------------------------------------ Chrome trace --
///
/// Renders every recorded span as a Chrome trace-event "complete" event
/// (ph "X", microsecond timestamps) — the file loads directly into
/// chrome://tracing and Perfetto. Thread tracks follow the tracer's
/// stable thread indexes.
std::string RenderChromeTrace(const Tracer& tracer);

/// Lane and identity options for multi-process traces. Each party of a
/// deployment renders with its own pid + process_name so `secmedctl
/// trace-merge` can splice the files into one view with one lane per
/// party; trace_id_hex (when set) is recorded in a top-level "secmed"
/// object so the merge can verify all inputs share one distributed
/// trace.
struct ChromeTraceOptions {
  int pid = 1;
  std::string process_name;  // "" = no process_name metadata event
  std::string trace_id_hex;  // "" = no trace id annotation
};

std::string RenderChromeTrace(const Tracer& tracer,
                              const ChromeTraceOptions& options);

/// Splices several Chrome trace documents (RenderChromeTrace shape) into
/// one: input i's events — process_name metadata included — move to pid
/// lane i+1, so each party shows as its own process row. All inputs
/// carrying a trace id must carry the same one (it is kept in the merged
/// "secmed" object); a mismatch, malformed input, or a missing
/// traceEvents array fails with a message in *error (if non-null).
/// Timestamps are left untouched — processes of one loopback deployment
/// share the monotonic clock, so their lanes align.
bool MergeChromeTraces(const std::vector<std::string>& docs, std::string* out,
                       std::string* error);

/// -------------------------------------------------------- run report --

/// Per-message-type slice of one party's traffic.
struct MessageTypeTraffic {
  std::string type;
  uint64_t messages_sent = 0;
  uint64_t bytes_sent = 0;
  uint64_t messages_received = 0;
  uint64_t bytes_received = 0;
};

/// One party's traffic row, copied from the transport statistics so the
/// report and `Transport::StatsOf` can never diverge.
struct PartyTraffic {
  std::string party;
  uint64_t messages_sent = 0;
  uint64_t messages_received = 0;
  uint64_t bytes_sent = 0;
  uint64_t bytes_received = 0;
  uint64_t interactions = 0;
  std::vector<MessageTypeTraffic> by_type;
};

/// Identification of the run the report describes.
struct RunInfo {
  std::string protocol;
  std::string query;
  uint32_t sessions = 1;
  uint64_t threads = 1;
  uint64_t messages = 0;     // transcript length
  uint64_t total_bytes = 0;  // framed bytes across the transcript
};

/// All spans with one name, folded: the party/phase/op decomposition of
/// the name plus count/total/min/max durations and summed items.
struct SpanAggregate {
  std::string name;
  std::string party;  // first '/'-segment of the name ("" if unparseable)
  std::string phase;  // second segment
  std::string op;     // remainder
  uint64_t count = 0;
  uint64_t total_ns = 0;
  uint64_t min_ns = 0;
  uint64_t max_ns = 0;
  uint64_t items = 0;
};

/// Folds the tracer's spans by name, sorted by name.
std::vector<SpanAggregate> AggregateSpans(const Tracer& tracer);

/// The structured per-run report (see docs/OBSERVABILITY.md for the
/// schema): run info, span aggregates by party × phase × operation,
/// counters, histograms and per-party traffic.
std::string RenderRunReportJson(const RunInfo& info, const Scope& scope,
                                const std::vector<PartyTraffic>& traffic);

/// Human-readable counterpart of the JSON report.
std::string RenderRunReportTable(const RunInfo& info, const Scope& scope,
                                 const std::vector<PartyTraffic>& traffic);

/// Writes `content` to `path`. On failure returns false and describes
/// the problem in *error (if non-null).
bool WriteTextFile(const std::string& path, const std::string& content,
                   std::string* error);

}  // namespace obs
}  // namespace secmed

#endif  // SECMED_OBS_REPORT_H_
