#include "obs/trace_context.h"

namespace secmed {
namespace obs {

namespace {

constexpr char kHexDigits[] = "0123456789abcdef";

/// FNV-1a over `s` with a caller-chosen offset basis, then finalized
/// with the splitmix64 mixer so nearby labels diverge in every byte.
uint64_t MixedHash(const std::string& s, uint64_t basis) {
  uint64_t h = basis;
  for (unsigned char c : s) {
    h ^= c;
    h *= 0x100000001b3ull;  // FNV prime
  }
  h ^= h >> 30;
  h *= 0xbf58476d1ce4e5b9ull;
  h ^= h >> 27;
  h *= 0x94d049bb133111ebull;
  h ^= h >> 31;
  return h;
}

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}

}  // namespace

std::string TraceContext::TraceIdHex() const {
  if (!valid()) return "";
  std::string out;
  out.reserve(2 * kTraceIdSize);
  for (uint8_t b : trace_id) {
    out.push_back(kHexDigits[b >> 4]);
    out.push_back(kHexDigits[b & 0xf]);
  }
  return out;
}

bool TraceContext::TraceIdFromHex(const std::string& hex, TraceContext* out) {
  if (hex.size() != 2 * kTraceIdSize) return false;
  std::array<uint8_t, kTraceIdSize> id{};
  for (size_t i = 0; i < kTraceIdSize; ++i) {
    int hi = HexNibble(hex[2 * i]);
    int lo = HexNibble(hex[2 * i + 1]);
    if (hi < 0 || lo < 0) return false;
    id[i] = static_cast<uint8_t>(hi << 4 | lo);
  }
  out->trace_id = id;
  return true;
}

TraceContext TraceContext::Derive(const std::string& label) {
  TraceContext ctx;
  const uint64_t h1 = MixedHash(label, 0xcbf29ce484222325ull);
  const uint64_t h2 = MixedHash(label, 0x9e3779b97f4a7c15ull);
  for (size_t i = 0; i < 8; ++i) {
    ctx.trace_id[i] = static_cast<uint8_t>(h1 >> (8 * i));
    ctx.trace_id[8 + i] = static_cast<uint8_t>(h2 >> (8 * i));
  }
  // An all-zero digest would read as "no context"; pin one bit so every
  // derived id is valid.
  if (!ctx.valid()) ctx.trace_id[0] = 1;
  return ctx;
}

}  // namespace obs
}  // namespace secmed
