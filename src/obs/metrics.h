#ifndef SECMED_OBS_METRICS_H_
#define SECMED_OBS_METRICS_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

namespace secmed {
namespace obs {

/// Latency histograms use fixed log2-scaled buckets: bucket i covers
/// [2^i, 2^(i+1)) with bucket 0 additionally holding 0, and the last
/// bucket open-ended. 48 buckets span 1 ns .. ~3.9 hours, so one layout
/// fits every latency and size distribution in the system.
inline constexpr size_t kHistogramBuckets = 48;

/// Bucket index of `value` under the fixed log2 layout.
size_t HistogramBucketIndex(uint64_t value);

/// Inclusive lower bound of bucket `index` (0 for bucket 0).
uint64_t HistogramBucketLowerBound(size_t index);

/// Point-in-time copy of one histogram.
struct HistogramSnapshot {
  std::string name;
  uint64_t count = 0;
  uint64_t sum = 0;
  uint64_t min = 0;  // 0 when count == 0
  uint64_t max = 0;
  std::array<uint64_t, kHistogramBuckets> buckets{};
};

/// Thread-safe registry of named counters and latency histograms.
/// Everything is keyed by flat string names ("net.frame.sent_bytes",
/// "hospital/delivery/pm.encrypt_coeffs.items"); the report layer groups
/// them for presentation.
class MetricsRegistry {
 public:
  MetricsRegistry() = default;
  MetricsRegistry(const MetricsRegistry&) = delete;
  MetricsRegistry& operator=(const MetricsRegistry&) = delete;

  /// Adds `delta` to the counter `name` (created at 0).
  void Add(const std::string& name, uint64_t delta);

  /// Raises the counter `name` to `value` if it is below it — a
  /// high-watermark gauge (e.g. maximum queue depth).
  void RaiseMax(const std::string& name, uint64_t value);

  /// Records one observation into the histogram `name`.
  void Observe(const std::string& name, uint64_t value);

  std::map<std::string, uint64_t> Counters() const;
  std::vector<HistogramSnapshot> Histograms() const;

  /// Current value of one counter (0 if absent).
  uint64_t CounterValue(const std::string& name) const;

 private:
  struct Histogram {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    std::array<uint64_t, kHistogramBuckets> buckets{};
  };

  mutable std::mutex mutex_;
  std::map<std::string, uint64_t> counters_;
  std::map<std::string, Histogram> histograms_;
};

}  // namespace obs
}  // namespace secmed

#endif  // SECMED_OBS_METRICS_H_
