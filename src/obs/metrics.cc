#include "obs/metrics.h"

#include <bit>

namespace secmed {
namespace obs {

size_t HistogramBucketIndex(uint64_t value) {
  if (value <= 1) return 0;
  size_t index = static_cast<size_t>(std::bit_width(value)) - 1;
  return index < kHistogramBuckets ? index : kHistogramBuckets - 1;
}

uint64_t HistogramBucketLowerBound(size_t index) {
  if (index == 0) return 0;
  return uint64_t{1} << index;
}

void MetricsRegistry::Add(const std::string& name, uint64_t delta) {
  std::lock_guard<std::mutex> lock(mutex_);
  counters_[name] += delta;
}

void MetricsRegistry::RaiseMax(const std::string& name, uint64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t& current = counters_[name];
  if (value > current) current = value;
}

void MetricsRegistry::Observe(const std::string& name, uint64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  Histogram& h = histograms_[name];
  if (h.count == 0 || value < h.min) h.min = value;
  if (value > h.max) h.max = value;
  h.count++;
  h.sum += value;
  h.buckets[HistogramBucketIndex(value)]++;
}

std::map<std::string, uint64_t> MetricsRegistry::Counters() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return counters_;
}

std::vector<HistogramSnapshot> MetricsRegistry::Histograms() const {
  std::lock_guard<std::mutex> lock(mutex_);
  std::vector<HistogramSnapshot> out;
  out.reserve(histograms_.size());
  for (const auto& [name, h] : histograms_) {
    HistogramSnapshot snap;
    snap.name = name;
    snap.count = h.count;
    snap.sum = h.sum;
    snap.min = h.min;
    snap.max = h.max;
    snap.buckets = h.buckets;
    out.push_back(std::move(snap));
  }
  return out;
}

uint64_t MetricsRegistry::CounterValue(const std::string& name) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = counters_.find(name);
  return it == counters_.end() ? 0 : it->second;
}

}  // namespace obs
}  // namespace secmed
