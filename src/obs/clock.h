#ifndef SECMED_OBS_CLOCK_H_
#define SECMED_OBS_CLOCK_H_

#include <atomic>
#include <cstdint>

namespace secmed {
namespace obs {

/// Nanosecond time source of the tracing layer. Injectable so seeded
/// protocol runs stay deterministic in tests: production code uses the
/// process-wide MonotonicClock, tests inject a ManualClock and advance
/// it explicitly.
class Clock {
 public:
  virtual ~Clock() = default;

  /// Nanoseconds since an arbitrary fixed origin; never decreases.
  virtual uint64_t NowNanos() const = 0;
};

/// std::chrono::steady_clock — the wall-time source of real runs.
class MonotonicClock : public Clock {
 public:
  uint64_t NowNanos() const override;

  /// Shared process-wide instance (the default of Tracer).
  static const MonotonicClock* Default();
};

/// Manually advanced clock for deterministic tests. Thread-safe.
class ManualClock : public Clock {
 public:
  explicit ManualClock(uint64_t start_ns = 0) : now_ns_(start_ns) {}

  uint64_t NowNanos() const override {
    return now_ns_.load(std::memory_order_relaxed);
  }

  void Advance(uint64_t delta_ns) {
    now_ns_.fetch_add(delta_ns, std::memory_order_relaxed);
  }

 private:
  std::atomic<uint64_t> now_ns_;
};

}  // namespace obs
}  // namespace secmed

#endif  // SECMED_OBS_CLOCK_H_
