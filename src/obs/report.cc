#include "obs/report.h"

#include <algorithm>
#include <cstdio>
#include <fstream>
#include <map>

#include "obs/json.h"

namespace secmed {
namespace obs {

namespace {

std::string U64(uint64_t v) { return std::to_string(v); }

/// Milliseconds with microsecond resolution, as a JSON-safe number.
std::string Ms(uint64_t ns) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "%.3f", static_cast<double>(ns) / 1e6);
  return buf;
}

void SplitSpanName(const std::string& name, std::string* party,
                   std::string* phase, std::string* op) {
  size_t first = name.find('/');
  size_t second = first == std::string::npos ? std::string::npos
                                             : name.find('/', first + 1);
  if (first == std::string::npos || second == std::string::npos) {
    party->clear();
    phase->clear();
    *op = name;
    return;
  }
  *party = name.substr(0, first);
  *phase = name.substr(first + 1, second - first - 1);
  *op = name.substr(second + 1);
}

}  // namespace

std::string RenderChromeTrace(const Tracer& tracer,
                              const ChromeTraceOptions& options) {
  std::vector<SpanRecord> spans = tracer.Snapshot();
  const std::string pid = U64(options.pid);
  std::string out = "{\"displayTimeUnit\":\"ms\"";
  if (!options.trace_id_hex.empty()) {
    // Non-standard top-level block; trace viewers ignore it, trace-merge
    // reads it to verify all parties joined one distributed trace.
    out += ",\"secmed\":{\"trace_id\":\"" + JsonEscape(options.trace_id_hex) +
           "\"}";
  }
  out += ",\"traceEvents\":[";
  bool first = true;
  uint32_t max_tid = 0;
  for (const SpanRecord& s : spans) {
    if (!first) out += ",";
    first = false;
    max_tid = std::max(max_tid, s.thread_index);
    // Complete event: ts/dur in (fractional) microseconds.
    out += "{\"name\":\"" + JsonEscape(s.name) + "\",\"cat\":\"secmed\"";
    out += ",\"ph\":\"X\",\"pid\":" + pid + ",\"tid\":" +
           U64(s.thread_index + 1);
    char buf[64];
    std::snprintf(buf, sizeof(buf), ",\"ts\":%.3f,\"dur\":%.3f",
                  static_cast<double>(s.start_ns) / 1e3,
                  static_cast<double>(s.duration_ns) / 1e3);
    out += buf;
    if (s.items > 0) {
      out += ",\"args\":{\"items\":" + U64(s.items) + "}";
    }
    out += "}";
  }
  // Process/thread-name metadata so viewers label the lanes.
  if (!options.process_name.empty() && !spans.empty()) {
    out += ",{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":" + pid +
           ",\"args\":{\"name\":\"" + JsonEscape(options.process_name) +
           "\"}}";
  }
  for (uint32_t tid = 0; tid <= max_tid && !spans.empty(); ++tid) {
    out += ",{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":" + pid +
           ",\"tid\":" + U64(tid + 1) + ",\"args\":{\"name\":\"worker-" +
           U64(tid) + "\"}}";
  }
  out += "]}";
  return out;
}

std::string RenderChromeTrace(const Tracer& tracer) {
  return RenderChromeTrace(tracer, ChromeTraceOptions{});
}

bool MergeChromeTraces(const std::vector<std::string>& docs, std::string* out,
                       std::string* error) {
  std::vector<JsonValue> merged;
  std::string trace_id;
  for (size_t i = 0; i < docs.size(); ++i) {
    const std::string where = "input " + std::to_string(i + 1);
    JsonValue doc;
    std::string parse_error;
    if (!ParseJson(docs[i], &doc, &parse_error)) {
      if (error != nullptr) *error = where + ": " + parse_error;
      return false;
    }
    const JsonValue* events = doc.Find("traceEvents");
    if (events == nullptr || !events->is_array()) {
      if (error != nullptr) *error = where + ": no traceEvents array";
      return false;
    }
    const JsonValue* secmed = doc.Find("secmed");
    const JsonValue* id =
        secmed != nullptr ? secmed->Find("trace_id") : nullptr;
    if (id != nullptr && id->is_string() && !id->string().empty()) {
      if (trace_id.empty()) {
        trace_id = id->string();
      } else if (trace_id != id->string()) {
        if (error != nullptr) {
          *error = where + ": trace id " + id->string() +
                   " does not match earlier inputs' " + trace_id;
        }
        return false;
      }
    }
    for (const JsonValue& event : events->array()) {
      if (!event.is_object()) continue;
      std::map<std::string, JsonValue> fields = event.object();
      fields["pid"] = JsonValue::Number(static_cast<double>(i + 1));
      merged.push_back(JsonValue::Object(std::move(fields)));
    }
  }
  std::map<std::string, JsonValue> root;
  root["displayTimeUnit"] = JsonValue::String("ms");
  if (!trace_id.empty()) {
    root["secmed"] = JsonValue::Object(
        {{"trace_id", JsonValue::String(trace_id)}});
  }
  root["traceEvents"] = JsonValue::Array(std::move(merged));
  *out = RenderJson(JsonValue::Object(std::move(root)));
  return true;
}

std::vector<SpanAggregate> AggregateSpans(const Tracer& tracer) {
  std::map<std::string, SpanAggregate> by_name;
  for (const SpanRecord& s : tracer.Snapshot()) {
    SpanAggregate& agg = by_name[s.name];
    if (agg.count == 0) {
      agg.name = s.name;
      SplitSpanName(s.name, &agg.party, &agg.phase, &agg.op);
      agg.min_ns = s.duration_ns;
    }
    agg.count++;
    agg.total_ns += s.duration_ns;
    agg.min_ns = std::min(agg.min_ns, s.duration_ns);
    agg.max_ns = std::max(agg.max_ns, s.duration_ns);
    agg.items += s.items;
  }
  std::vector<SpanAggregate> out;
  out.reserve(by_name.size());
  for (auto& [name, agg] : by_name) out.push_back(std::move(agg));
  return out;
}

std::string RenderRunReportJson(const RunInfo& info, const Scope& scope,
                                const std::vector<PartyTraffic>& traffic) {
  std::string out = "{\n  \"run\": {";
  out += "\"protocol\":\"" + JsonEscape(info.protocol) + "\"";
  out += ",\"query\":\"" + JsonEscape(info.query) + "\"";
  out += ",\"sessions\":" + U64(info.sessions);
  out += ",\"threads\":" + U64(info.threads);
  out += ",\"messages\":" + U64(info.messages);
  out += ",\"total_bytes\":" + U64(info.total_bytes);
  out += "},\n  \"spans\": [";
  bool first = true;
  for (const SpanAggregate& a : AggregateSpans(scope.tracer())) {
    if (!first) out += ",";
    first = false;
    out += "\n    {\"name\":\"" + JsonEscape(a.name) + "\"";
    out += ",\"party\":\"" + JsonEscape(a.party) + "\"";
    out += ",\"phase\":\"" + JsonEscape(a.phase) + "\"";
    out += ",\"op\":\"" + JsonEscape(a.op) + "\"";
    out += ",\"count\":" + U64(a.count);
    out += ",\"total_ms\":" + Ms(a.total_ns);
    out += ",\"min_ms\":" + Ms(a.min_ns);
    out += ",\"max_ms\":" + Ms(a.max_ns);
    out += ",\"items\":" + U64(a.items) + "}";
  }
  out += "\n  ],\n  \"counters\": {";
  first = true;
  for (const auto& [name, value] : scope.metrics().Counters()) {
    if (!first) out += ",";
    first = false;
    out += "\n    \"" + JsonEscape(name) + "\": " + U64(value);
  }
  out += "\n  },\n  \"histograms\": [";
  first = true;
  for (const HistogramSnapshot& h : scope.metrics().Histograms()) {
    if (!first) out += ",";
    first = false;
    out += "\n    {\"name\":\"" + JsonEscape(h.name) + "\"";
    out += ",\"count\":" + U64(h.count);
    out += ",\"sum\":" + U64(h.sum);
    out += ",\"min\":" + U64(h.min);
    out += ",\"max\":" + U64(h.max);
    // Sparse bucket encoding: [lower_bound, count] pairs.
    out += ",\"buckets\":[";
    bool bfirst = true;
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      if (h.buckets[i] == 0) continue;
      if (!bfirst) out += ",";
      bfirst = false;
      out += "[" + U64(HistogramBucketLowerBound(i)) + "," +
             U64(h.buckets[i]) + "]";
    }
    out += "]}";
  }
  out += "\n  ],\n  \"traffic\": [";
  first = true;
  for (const PartyTraffic& p : traffic) {
    if (!first) out += ",";
    first = false;
    out += "\n    {\"party\":\"" + JsonEscape(p.party) + "\"";
    out += ",\"messages_sent\":" + U64(p.messages_sent);
    out += ",\"messages_received\":" + U64(p.messages_received);
    out += ",\"bytes_sent\":" + U64(p.bytes_sent);
    out += ",\"bytes_received\":" + U64(p.bytes_received);
    out += ",\"interactions\":" + U64(p.interactions);
    out += ",\"by_type\":[";
    bool tfirst = true;
    for (const MessageTypeTraffic& t : p.by_type) {
      if (!tfirst) out += ",";
      tfirst = false;
      out += "{\"type\":\"" + JsonEscape(t.type) + "\"";
      out += ",\"messages_sent\":" + U64(t.messages_sent);
      out += ",\"bytes_sent\":" + U64(t.bytes_sent);
      out += ",\"messages_received\":" + U64(t.messages_received);
      out += ",\"bytes_received\":" + U64(t.bytes_received) + "}";
    }
    out += "]}";
  }
  out += "\n  ]\n}\n";
  return out;
}

std::string RenderRunReportTable(const RunInfo& info, const Scope& scope,
                                 const std::vector<PartyTraffic>& traffic) {
  char line[256];
  std::string out;
  std::snprintf(line, sizeof(line),
                "run: protocol=%s sessions=%u threads=%llu messages=%llu "
                "total_bytes=%llu\n",
                info.protocol.c_str(), info.sessions,
                static_cast<unsigned long long>(info.threads),
                static_cast<unsigned long long>(info.messages),
                static_cast<unsigned long long>(info.total_bytes));
  out += line;
  out += "\n  party      phase     operation                        count"
         "     total ms       items\n";
  out += "  ---------- --------- ------------------------------ ------- "
         "------------ -----------\n";
  for (const SpanAggregate& a : AggregateSpans(scope.tracer())) {
    std::snprintf(line, sizeof(line), "  %-10s %-9s %-30s %7llu %12.3f %11llu\n",
                  a.party.c_str(), a.phase.c_str(), a.op.c_str(),
                  static_cast<unsigned long long>(a.count),
                  static_cast<double>(a.total_ns) / 1e6,
                  static_cast<unsigned long long>(a.items));
    out += line;
  }
  out += "\n  party        sent msgs     sent bytes   recv msgs     recv "
         "bytes  interactions\n";
  out += "  ---------- ----------- -------------- ----------- "
         "-------------- ------------\n";
  for (const PartyTraffic& p : traffic) {
    std::snprintf(line, sizeof(line),
                  "  %-10s %11llu %14llu %11llu %14llu %12llu\n",
                  p.party.c_str(),
                  static_cast<unsigned long long>(p.messages_sent),
                  static_cast<unsigned long long>(p.bytes_sent),
                  static_cast<unsigned long long>(p.messages_received),
                  static_cast<unsigned long long>(p.bytes_received),
                  static_cast<unsigned long long>(p.interactions));
    out += line;
    for (const MessageTypeTraffic& t : p.by_type) {
      std::snprintf(line, sizeof(line),
                    "    %-24s %9llu msgs / %12llu B sent, %9llu / %12llu "
                    "recv\n",
                    t.type.c_str(),
                    static_cast<unsigned long long>(t.messages_sent),
                    static_cast<unsigned long long>(t.bytes_sent),
                    static_cast<unsigned long long>(t.messages_received),
                    static_cast<unsigned long long>(t.bytes_received));
      out += line;
    }
  }
  return out;
}

bool WriteTextFile(const std::string& path, const std::string& content,
                   std::string* error) {
  std::ofstream f(path, std::ios::binary | std::ios::trunc);
  if (!f) {
    if (error != nullptr) *error = "cannot open " + path + " for writing";
    return false;
  }
  f.write(content.data(), static_cast<std::streamsize>(content.size()));
  f.close();
  if (!f) {
    if (error != nullptr) *error = "short write to " + path;
    return false;
  }
  return true;
}

}  // namespace obs
}  // namespace secmed
