#include "obs/window.h"

#include <algorithm>
#include <charconv>
#include <cinttypes>
#include <cstdio>
#include <cstring>

#include "obs/json.h"

namespace secmed {
namespace obs {

namespace {

/// Shortest round-trip decimal form of `v` — generated JSON re-parses to
/// the identical double, which is what makes RenderStatsJson ∘
/// ParseStatsJson the identity on rendered snapshots.
std::string DoubleText(double v) {
  char buf[64];
  auto [end, ec] = std::to_chars(buf, buf + sizeof(buf), v);
  if (ec != std::errc()) return "0";
  return std::string(buf, end);
}

std::string U64Text(uint64_t v) {
  char buf[32];
  snprintf(buf, sizeof(buf), "%" PRIu64, v);
  return buf;
}

void AppendHistogramJson(const HistogramSnapshot& h, std::string* out) {
  *out += "{\"count\":";
  *out += U64Text(h.count);
  *out += ",\"sum\":";
  *out += U64Text(h.sum);
  *out += ",\"min\":";
  *out += U64Text(h.min);
  *out += ",\"max\":";
  *out += U64Text(h.max);
  *out += ",\"buckets\":[";
  bool first = true;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    if (h.buckets[i] == 0) continue;
    if (!first) *out += ',';
    first = false;
    *out += '[';
    *out += U64Text(i);
    *out += ',';
    *out += U64Text(h.buckets[i]);
    *out += ']';
  }
  *out += "]}";
}

bool ReadU64(const JsonValue* v, uint64_t* out) {
  if (v == nullptr || !v->is_number() || v->number() < 0) return false;
  *out = static_cast<uint64_t>(v->number());
  return true;
}

bool ReadDouble(const JsonValue* v, double* out) {
  if (v == nullptr || !v->is_number()) return false;
  *out = v->number();
  return true;
}

bool ParseHistogramJson(const JsonValue* v, HistogramSnapshot* out,
                        std::string* error) {
  if (v == nullptr || !v->is_object()) {
    if (error != nullptr) *error = "histogram entry is not an object";
    return false;
  }
  if (!ReadU64(v->Find("count"), &out->count) ||
      !ReadU64(v->Find("sum"), &out->sum) ||
      !ReadU64(v->Find("min"), &out->min) ||
      !ReadU64(v->Find("max"), &out->max)) {
    if (error != nullptr) *error = "histogram entry missing numeric field";
    return false;
  }
  const JsonValue* buckets = v->Find("buckets");
  if (buckets == nullptr || !buckets->is_array()) {
    if (error != nullptr) *error = "histogram entry missing buckets array";
    return false;
  }
  out->buckets.fill(0);
  for (const JsonValue& pair : buckets->array()) {
    uint64_t index = 0;
    uint64_t count = 0;
    if (!pair.is_array() || pair.array().size() != 2 ||
        !ReadU64(&pair.array()[0], &index) ||
        !ReadU64(&pair.array()[1], &count) || index >= kHistogramBuckets) {
      if (error != nullptr) *error = "malformed histogram bucket pair";
      return false;
    }
    out->buckets[index] = count;
  }
  return true;
}

/// Escapes a label value for the Prometheus exposition format (inside
/// double quotes: backslash, quote and newline).
std::string PromLabelEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    if (c == '\\' || c == '"') {
      out += '\\';
      out += c;
    } else if (c == '\n') {
      out += "\\n";
    } else {
      out += c;
    }
  }
  return out;
}

std::string PromLabels(const std::map<std::string, std::string>& labels,
                       const std::string& extra = "") {
  if (labels.empty() && extra.empty()) return "";
  std::string out = "{";
  bool first = true;
  for (const auto& [k, v] : labels) {
    if (!first) out += ',';
    first = false;
    out += PrometheusName(k).substr(std::strlen("secmed_"));
    out += "=\"";
    out += PromLabelEscape(v);
    out += '"';
  }
  if (!extra.empty()) {
    if (!first) out += ',';
    out += extra;
  }
  out += '}';
  return out;
}

}  // namespace

void WindowRegistry::HistogramCells::Observe(uint64_t value) {
  if (count == 0) {
    min = value;
    max = value;
  } else {
    min = std::min(min, value);
    max = std::max(max, value);
  }
  ++count;
  sum += value;
  ++buckets[HistogramBucketIndex(value)];
}

WindowRegistry::WindowRegistry() : WindowRegistry(Options()) {}

WindowRegistry::WindowRegistry(Options opt, const Clock* clock)
    : opt_(opt),
      clock_(clock != nullptr ? clock : MonotonicClock::Default()) {
  if (opt_.buckets == 0) opt_.buckets = 1;
  if (opt_.bucket_ns == 0) opt_.bucket_ns = 1;
  start_ns_ = clock_->NowNanos();
}

void WindowRegistry::Add(const std::string& name, uint64_t delta) {
  const uint64_t bucket = CurrentBucket();
  std::lock_guard<std::mutex> lock(mutex_);
  CounterEntry& entry = counters_[name];
  if (entry.ring.empty()) entry.ring.resize(opt_.buckets);
  entry.cumulative += delta;
  CounterSlot& slot = entry.ring[bucket % opt_.buckets];
  if (slot.bucket != bucket) {
    slot.bucket = bucket;
    slot.value = 0;
  }
  slot.value += delta;
}

void WindowRegistry::SetGauge(const std::string& name, uint64_t value) {
  std::lock_guard<std::mutex> lock(mutex_);
  gauges_[name] = value;
}

void WindowRegistry::Observe(const std::string& name, uint64_t value) {
  const uint64_t bucket = CurrentBucket();
  std::lock_guard<std::mutex> lock(mutex_);
  HistogramEntry& entry = histograms_[name];
  if (entry.ring.empty()) entry.ring.resize(opt_.buckets);
  entry.cumulative.Observe(value);
  HistogramSlot& slot = entry.ring[bucket % opt_.buckets];
  if (slot.bucket != bucket) {
    slot.bucket = bucket;
    slot.cells = HistogramCells{};
  }
  slot.cells.Observe(value);
}

WindowRegistry::Snapshot WindowRegistry::TakeSnapshot() const {
  Snapshot snap;
  const uint64_t now = clock_->NowNanos();
  const uint64_t bucket = now / opt_.bucket_ns;
  // A slot is live when its bucket is one of the trailing `opt_.buckets`
  // bucket indices ending at the current one.
  const uint64_t oldest_live =
      bucket >= opt_.buckets - 1 ? bucket - (opt_.buckets - 1) : 0;
  snap.at_ns = now;
  snap.window_ns = opt_.window_ns();
  // Rates divide by the part of the window that has actually elapsed, so
  // a registry younger than its window does not under-report.
  const uint64_t covered_ns =
      std::min<uint64_t>(opt_.window_ns(), now - std::min(start_ns_, now));

  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [name, entry] : counters_) {
    CounterStat stat;
    stat.name = name;
    stat.cumulative = entry.cumulative;
    for (const CounterSlot& slot : entry.ring) {
      if (slot.bucket != kEmptyBucket && slot.bucket >= oldest_live &&
          slot.bucket <= bucket) {
        stat.windowed += slot.value;
      }
    }
    stat.rate_per_s =
        covered_ns > 0 ? stat.windowed * 1e9 / static_cast<double>(covered_ns)
                       : 0.0;
    snap.counters.push_back(std::move(stat));
  }
  for (const auto& [name, value] : gauges_) {
    snap.gauges.push_back(GaugeStat{name, value});
  }
  for (const auto& [name, entry] : histograms_) {
    HistogramStat stat;
    stat.name = name;
    stat.cumulative.name = name;
    stat.cumulative.count = entry.cumulative.count;
    stat.cumulative.sum = entry.cumulative.sum;
    stat.cumulative.min = entry.cumulative.min;
    stat.cumulative.max = entry.cumulative.max;
    stat.cumulative.buckets = entry.cumulative.buckets;
    HistogramCells windowed;
    for (const HistogramSlot& slot : entry.ring) {
      if (slot.bucket == kEmptyBucket || slot.bucket < oldest_live ||
          slot.bucket > bucket || slot.cells.count == 0) {
        continue;
      }
      if (windowed.count == 0) {
        windowed.min = slot.cells.min;
        windowed.max = slot.cells.max;
      } else {
        windowed.min = std::min(windowed.min, slot.cells.min);
        windowed.max = std::max(windowed.max, slot.cells.max);
      }
      windowed.count += slot.cells.count;
      windowed.sum += slot.cells.sum;
      for (size_t i = 0; i < kHistogramBuckets; ++i) {
        windowed.buckets[i] += slot.cells.buckets[i];
      }
    }
    stat.windowed.name = name;
    stat.windowed.count = windowed.count;
    stat.windowed.sum = windowed.sum;
    stat.windowed.min = windowed.min;
    stat.windowed.max = windowed.max;
    stat.windowed.buckets = windowed.buckets;
    const HistogramSnapshot& basis =
        stat.windowed.count > 0 ? stat.windowed : stat.cumulative;
    stat.p50 = HistogramPercentile(basis, 0.50);
    stat.p95 = HistogramPercentile(basis, 0.95);
    stat.p99 = HistogramPercentile(basis, 0.99);
    snap.histograms.push_back(std::move(stat));
  }
  return snap;
}

double HistogramPercentile(const HistogramSnapshot& h, double q) {
  if (h.count == 0) return 0.0;
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(h.count);
  double cum = 0;
  for (size_t i = 0; i < kHistogramBuckets; ++i) {
    if (h.buckets[i] == 0) continue;
    const double next = cum + static_cast<double>(h.buckets[i]);
    if (next >= rank) {
      const double lower =
          static_cast<double>(HistogramBucketLowerBound(i));
      const double upper =
          i + 1 < kHistogramBuckets
              ? static_cast<double>(HistogramBucketLowerBound(i + 1))
              : static_cast<double>(h.max) + 1;
      const double frac =
          (rank - cum) / static_cast<double>(h.buckets[i]);
      const double value = lower + frac * (upper - lower);
      return std::clamp(value, static_cast<double>(h.min),
                        static_cast<double>(h.max));
    }
    cum = next;
  }
  return static_cast<double>(h.max);
}

WindowRegistry::Snapshot DeltaStats(const WindowRegistry::Snapshot& prev,
                                    const WindowRegistry::Snapshot& cur) {
  WindowRegistry::Snapshot out = cur;
  const uint64_t elapsed_ns = cur.at_ns > prev.at_ns ? cur.at_ns - prev.at_ns : 0;
  std::map<std::string, uint64_t> prev_cumulative;
  for (const auto& c : prev.counters) prev_cumulative[c.name] = c.cumulative;
  for (auto& c : out.counters) {
    auto it = prev_cumulative.find(c.name);
    const uint64_t base = it != prev_cumulative.end() ? it->second : 0;
    c.windowed = c.cumulative >= base ? c.cumulative - base : 0;
    c.rate_per_s = elapsed_ns > 0
                       ? c.windowed * 1e9 / static_cast<double>(elapsed_ns)
                       : 0.0;
  }
  out.window_ns = elapsed_ns;
  return out;
}

std::string RenderStatsJson(const WindowRegistry::Snapshot& snapshot) {
  std::string out = "{\"schema\":\"secmed.stats.v1\",\"at_ns\":";
  out += U64Text(snapshot.at_ns);
  out += ",\"window_ns\":";
  out += U64Text(snapshot.window_ns);
  out += ",\"labels\":{";
  bool first = true;
  for (const auto& [k, v] : snapshot.labels) {
    if (!first) out += ',';
    first = false;
    out += '"';
    out += JsonEscape(k);
    out += "\":\"";
    out += JsonEscape(v);
    out += '"';
  }
  out += "},\"counters\":[";
  first = true;
  for (const auto& c : snapshot.counters) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += JsonEscape(c.name);
    out += "\",\"cumulative\":";
    out += U64Text(c.cumulative);
    out += ",\"windowed\":";
    out += U64Text(c.windowed);
    out += ",\"rate_per_s\":";
    out += DoubleText(c.rate_per_s);
    out += '}';
  }
  out += "],\"gauges\":[";
  first = true;
  for (const auto& g : snapshot.gauges) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += JsonEscape(g.name);
    out += "\",\"value\":";
    out += U64Text(g.value);
    out += '}';
  }
  out += "],\"histograms\":[";
  first = true;
  for (const auto& h : snapshot.histograms) {
    if (!first) out += ',';
    first = false;
    out += "{\"name\":\"";
    out += JsonEscape(h.name);
    out += "\",\"cumulative\":";
    AppendHistogramJson(h.cumulative, &out);
    out += ",\"windowed\":";
    AppendHistogramJson(h.windowed, &out);
    out += ",\"p50\":";
    out += DoubleText(h.p50);
    out += ",\"p95\":";
    out += DoubleText(h.p95);
    out += ",\"p99\":";
    out += DoubleText(h.p99);
    out += '}';
  }
  out += "]}";
  return out;
}

bool ParseStatsJson(const std::string& text, WindowRegistry::Snapshot* out,
                    std::string* error) {
  JsonValue doc;
  if (!ParseJson(text, &doc, error)) return false;
  if (!doc.is_object()) {
    if (error != nullptr) *error = "stats document is not an object";
    return false;
  }
  const JsonValue* schema = doc.Find("schema");
  if (schema == nullptr || !schema->is_string() ||
      schema->string() != "secmed.stats.v1") {
    if (error != nullptr) *error = "missing or unsupported stats schema";
    return false;
  }
  WindowRegistry::Snapshot snap;
  if (!ReadU64(doc.Find("at_ns"), &snap.at_ns) ||
      !ReadU64(doc.Find("window_ns"), &snap.window_ns)) {
    if (error != nullptr) *error = "missing at_ns/window_ns";
    return false;
  }
  if (const JsonValue* labels = doc.Find("labels");
      labels != nullptr && labels->is_object()) {
    for (const auto& [k, v] : labels->object()) {
      if (!v.is_string()) {
        if (error != nullptr) *error = "label value is not a string";
        return false;
      }
      snap.labels[k] = v.string();
    }
  }
  if (const JsonValue* counters = doc.Find("counters");
      counters != nullptr && counters->is_array()) {
    for (const JsonValue& c : counters->array()) {
      WindowRegistry::CounterStat stat;
      const JsonValue* name = c.Find("name");
      if (name == nullptr || !name->is_string() ||
          !ReadU64(c.Find("cumulative"), &stat.cumulative) ||
          !ReadU64(c.Find("windowed"), &stat.windowed) ||
          !ReadDouble(c.Find("rate_per_s"), &stat.rate_per_s)) {
        if (error != nullptr) *error = "malformed counter entry";
        return false;
      }
      stat.name = name->string();
      snap.counters.push_back(std::move(stat));
    }
  }
  if (const JsonValue* gauges = doc.Find("gauges");
      gauges != nullptr && gauges->is_array()) {
    for (const JsonValue& g : gauges->array()) {
      WindowRegistry::GaugeStat stat;
      const JsonValue* name = g.Find("name");
      if (name == nullptr || !name->is_string() ||
          !ReadU64(g.Find("value"), &stat.value)) {
        if (error != nullptr) *error = "malformed gauge entry";
        return false;
      }
      stat.name = name->string();
      snap.gauges.push_back(std::move(stat));
    }
  }
  if (const JsonValue* histograms = doc.Find("histograms");
      histograms != nullptr && histograms->is_array()) {
    for (const JsonValue& h : histograms->array()) {
      WindowRegistry::HistogramStat stat;
      const JsonValue* name = h.Find("name");
      if (name == nullptr || !name->is_string() ||
          !ParseHistogramJson(h.Find("cumulative"), &stat.cumulative, error) ||
          !ParseHistogramJson(h.Find("windowed"), &stat.windowed, error) ||
          !ReadDouble(h.Find("p50"), &stat.p50) ||
          !ReadDouble(h.Find("p95"), &stat.p95) ||
          !ReadDouble(h.Find("p99"), &stat.p99)) {
        if (error != nullptr && error->empty()) {
          *error = "malformed histogram entry";
        }
        return false;
      }
      stat.name = name->string();
      stat.cumulative.name = stat.name;
      stat.windowed.name = stat.name;
      snap.histograms.push_back(std::move(stat));
    }
  }
  *out = std::move(snap);
  return true;
}

std::string PrometheusName(const std::string& name) {
  std::string out = "secmed_";
  out.reserve(out.size() + name.size());
  for (char c : name) {
    const bool legal = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                       (c >= '0' && c <= '9') || c == '_' || c == ':';
    out += legal ? c : '_';
  }
  return out;
}

std::string RenderPrometheus(const WindowRegistry::Snapshot& snapshot) {
  std::string out;
  const std::string labels = PromLabels(snapshot.labels);
  for (const auto& c : snapshot.counters) {
    const std::string name = PrometheusName(c.name) + "_total";
    out += "# TYPE " + name + " counter\n";
    out += name + labels + " " + U64Text(c.cumulative) + "\n";
    const std::string rate = PrometheusName(c.name) + "_rate_per_second";
    out += "# TYPE " + rate + " gauge\n";
    out += rate + labels + " " + DoubleText(c.rate_per_s) + "\n";
  }
  for (const auto& g : snapshot.gauges) {
    const std::string name = PrometheusName(g.name);
    out += "# TYPE " + name + " gauge\n";
    out += name + labels + " " + U64Text(g.value) + "\n";
  }
  for (const auto& h : snapshot.histograms) {
    const std::string name = PrometheusName(h.name);
    out += "# TYPE " + name + " histogram\n";
    uint64_t cum = 0;
    size_t highest = 0;
    for (size_t i = 0; i < kHistogramBuckets; ++i) {
      if (h.cumulative.buckets[i] != 0) highest = i;
    }
    for (size_t i = 0; i <= highest && h.cumulative.count > 0; ++i) {
      cum += h.cumulative.buckets[i];
      const uint64_t le = i + 1 < kHistogramBuckets
                              ? HistogramBucketLowerBound(i + 1)
                              : h.cumulative.max;
      out += name + "_bucket" +
             PromLabels(snapshot.labels, "le=\"" + U64Text(le) + "\"") + " " +
             U64Text(cum) + "\n";
    }
    out += name + "_bucket" + PromLabels(snapshot.labels, "le=\"+Inf\"") +
           " " + U64Text(h.cumulative.count) + "\n";
    out += name + "_sum" + labels + " " + U64Text(h.cumulative.sum) + "\n";
    out += name + "_count" + labels + " " + U64Text(h.cumulative.count) + "\n";
  }
  return out;
}

std::string RenderStatsTable(const WindowRegistry::Snapshot& snapshot) {
  char line[256];
  std::string out;
  snprintf(line, sizeof(line), "stats at %.3f s (window %.1f s)\n",
           snapshot.at_ns / 1e9, snapshot.window_ns / 1e9);
  out += line;
  if (!snapshot.labels.empty()) {
    out += "  ";
    bool first = true;
    for (const auto& [k, v] : snapshot.labels) {
      if (!first) out += "  ";
      first = false;
      out += k + "=" + v;
    }
    out += '\n';
  }
  if (!snapshot.counters.empty()) {
    snprintf(line, sizeof(line), "  %-42s %14s %12s %10s\n", "counter",
             "total", "window", "rate/s");
    out += line;
    for (const auto& c : snapshot.counters) {
      snprintf(line, sizeof(line), "  %-42s %14" PRIu64 " %12" PRIu64
               " %10.2f\n",
               c.name.c_str(), c.cumulative, c.windowed, c.rate_per_s);
      out += line;
    }
  }
  if (!snapshot.gauges.empty()) {
    snprintf(line, sizeof(line), "  %-42s %14s\n", "gauge", "value");
    out += line;
    for (const auto& g : snapshot.gauges) {
      snprintf(line, sizeof(line), "  %-42s %14" PRIu64 "\n", g.name.c_str(),
               g.value);
      out += line;
    }
  }
  if (!snapshot.histograms.empty()) {
    snprintf(line, sizeof(line), "  %-42s %10s %12s %12s %12s %14s\n",
             "histogram", "count", "p50", "p95", "p99", "max");
    out += line;
    for (const auto& h : snapshot.histograms) {
      const HistogramSnapshot& basis =
          h.windowed.count > 0 ? h.windowed : h.cumulative;
      snprintf(line, sizeof(line),
               "  %-42s %10" PRIu64 " %12.0f %12.0f %12.0f %14" PRIu64 "\n",
               h.name.c_str(), basis.count, h.p50, h.p95, h.p99, basis.max);
      out += line;
    }
  }
  return out;
}

}  // namespace obs
}  // namespace secmed
