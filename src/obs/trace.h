#ifndef SECMED_OBS_TRACE_H_
#define SECMED_OBS_TRACE_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "obs/clock.h"

namespace secmed {
namespace obs {

/// One completed span. `thread_index` is a small per-tracer index
/// assigned to OS threads in order of first appearance (stable within a
/// run, meaningless across runs — it exists so trace viewers can lay
/// spans out on per-thread tracks).
struct SpanRecord {
  std::string name;  // "party/phase/operation" (see docs/OBSERVABILITY.md)
  uint64_t start_ns = 0;
  uint64_t duration_ns = 0;
  uint32_t thread_index = 0;
  uint64_t items = 0;  // optional work-size annotation (0 = none)
  /// Per-tracer recording sequence number, starting at 1. Stamped onto
  /// outbound wire frames as the parent-span reference of distributed
  /// traces (obs/trace_context.h).
  uint64_t span_id = 0;
};

/// Low-overhead thread-safe span recorder. Spans are buffered in memory
/// and exported after the run (Chrome trace JSON / run report —
/// obs/report.h); recording one span is a clock read plus one short
/// critical section appending to a vector.
class Tracer {
 public:
  /// `clock` = nullptr uses the process-wide monotonic clock. The clock
  /// must outlive the tracer.
  explicit Tracer(const Clock* clock = nullptr)
      : clock_(clock != nullptr ? clock : MonotonicClock::Default()) {}

  Tracer(const Tracer&) = delete;
  Tracer& operator=(const Tracer&) = delete;

  uint64_t NowNanos() const { return clock_->NowNanos(); }

  /// Records a completed span. Any thread.
  void Record(std::string name, uint64_t start_ns, uint64_t end_ns,
              uint64_t items);

  /// Snapshot of all spans recorded so far, in recording order.
  std::vector<SpanRecord> Snapshot() const;

  size_t span_count() const;

  /// Id of the most recently recorded span (0 before the first). Span
  /// ids are the 1-based recording sequence, so this equals span_count.
  uint64_t last_span_id() const {
    return last_span_id_.load(std::memory_order_relaxed);
  }

  /// Distinct span names, sorted — the determinism guard compares these
  /// across thread counts.
  std::vector<std::string> SpanNames() const;

 private:
  uint32_t ThreadIndexLocked(std::thread::id id);

  const Clock* clock_;
  std::atomic<uint64_t> last_span_id_{0};
  mutable std::mutex mutex_;
  std::vector<SpanRecord> spans_;
  std::map<std::thread::id, uint32_t> thread_indexes_;
};

/// RAII span handle. A default-constructed (or null-tracer) Span is
/// inert: construction, AddItems and destruction cost one branch each —
/// the zero-cost no-op path of an uninstrumented run.
class Span {
 public:
  Span() = default;
  Span(Tracer* tracer, std::string name)
      : tracer_(tracer), name_(std::move(name)) {
    if (tracer_ != nullptr) start_ns_ = tracer_->NowNanos();
  }
  Span(Span&& o) noexcept
      : tracer_(o.tracer_),
        name_(std::move(o.name_)),
        start_ns_(o.start_ns_),
        items_(o.items_) {
    o.tracer_ = nullptr;
  }
  Span& operator=(Span&& o) noexcept {
    if (this != &o) {
      End();
      tracer_ = o.tracer_;
      name_ = std::move(o.name_);
      start_ns_ = o.start_ns_;
      items_ = o.items_;
      o.tracer_ = nullptr;
    }
    return *this;
  }
  Span(const Span&) = delete;
  Span& operator=(const Span&) = delete;
  ~Span() { End(); }

  /// Annotates the span with a work size (e.g. loop items processed).
  void AddItems(uint64_t n) { items_ += n; }

  /// Ends the span now (the destructor would otherwise). Idempotent.
  void End() {
    if (tracer_ == nullptr) return;
    tracer_->Record(std::move(name_), start_ns_, tracer_->NowNanos(), items_);
    tracer_ = nullptr;
  }

  bool active() const { return tracer_ != nullptr; }

 private:
  Tracer* tracer_ = nullptr;
  std::string name_;
  uint64_t start_ns_ = 0;
  uint64_t items_ = 0;
};

/// Canonical span name: "party/phase/op" — e.g.
/// SpanName("hospital", "delivery", "pm.encrypt_coeffs").
inline std::string SpanName(const std::string& party, const std::string& phase,
                            const std::string& op) {
  std::string name;
  name.reserve(party.size() + phase.size() + op.size() + 2);
  name += party;
  name += '/';
  name += phase;
  name += '/';
  name += op;
  return name;
}

}  // namespace obs
}  // namespace secmed

#endif  // SECMED_OBS_TRACE_H_
