#include "obs/json.h"

#include <cctype>
#include <cstdio>
#include <cstdlib>

namespace secmed {
namespace obs {

const JsonValue* JsonValue::Find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  auto it = object_.find(key);
  return it == object_.end() ? nullptr : &it->second;
}

JsonValue JsonValue::Null() { return JsonValue(); }

JsonValue JsonValue::Bool(bool v) {
  JsonValue j;
  j.kind_ = Kind::kBool;
  j.bool_ = v;
  return j;
}

JsonValue JsonValue::Number(double v) {
  JsonValue j;
  j.kind_ = Kind::kNumber;
  j.number_ = v;
  return j;
}

JsonValue JsonValue::String(std::string v) {
  JsonValue j;
  j.kind_ = Kind::kString;
  j.string_ = std::move(v);
  return j;
}

JsonValue JsonValue::Array(std::vector<JsonValue> v) {
  JsonValue j;
  j.kind_ = Kind::kArray;
  j.array_ = std::move(v);
  return j;
}

JsonValue JsonValue::Object(std::map<std::string, JsonValue> v) {
  JsonValue j;
  j.kind_ = Kind::kObject;
  j.object_ = std::move(v);
  return j;
}

namespace {

class Parser {
 public:
  Parser(const std::string& text, std::string* error)
      : text_(text), error_(error) {}

  bool Parse(JsonValue* out) {
    SkipWs();
    if (!ParseValue(out)) return false;
    SkipWs();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

 private:
  bool Fail(const std::string& why) {
    if (error_ != nullptr) {
      *error_ = why + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipWs() {
    while (pos_ < text_.size() &&
           (text_[pos_] == ' ' || text_[pos_] == '\t' || text_[pos_] == '\n' ||
            text_[pos_] == '\r')) {
      ++pos_;
    }
  }

  bool Literal(const char* word, JsonValue value, JsonValue* out) {
    size_t len = 0;
    while (word[len] != '\0') ++len;
    if (text_.compare(pos_, len, word) != 0) return Fail("bad literal");
    pos_ += len;
    *out = std::move(value);
    return true;
  }

  bool ParseString(std::string* out) {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected string");
    }
    ++pos_;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("unterminated escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("short \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; ++i) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') {
              code |= static_cast<unsigned>(h - '0');
            } else if (h >= 'a' && h <= 'f') {
              code |= static_cast<unsigned>(h - 'a' + 10);
            } else if (h >= 'A' && h <= 'F') {
              code |= static_cast<unsigned>(h - 'A' + 10);
            } else {
              return Fail("bad \\u escape");
            }
          }
          // UTF-8 encode (no surrogate-pair handling: the emitters only
          // escape control bytes, which stay below U+0800).
          if (code < 0x80) {
            out->push_back(static_cast<char>(code));
          } else if (code < 0x800) {
            out->push_back(static_cast<char>(0xC0 | (code >> 6)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          } else {
            out->push_back(static_cast<char>(0xE0 | (code >> 12)));
            out->push_back(static_cast<char>(0x80 | ((code >> 6) & 0x3F)));
            out->push_back(static_cast<char>(0x80 | (code & 0x3F)));
          }
          break;
        }
        default: return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseNumber(JsonValue* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') ++pos_;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      ++pos_;
    }
    if (pos_ == start) return Fail("expected number");
    char* end = nullptr;
    std::string token = text_.substr(start, pos_ - start);
    double v = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("bad number");
    *out = JsonValue::Number(v);
    return true;
  }

  bool ParseValue(JsonValue* out) {
    if (++depth_ > 64) return Fail("nesting too deep");
    SkipWs();
    if (pos_ >= text_.size()) return Fail("unexpected end of input");
    bool ok;
    switch (text_[pos_]) {
      case 'n': ok = Literal("null", JsonValue::Null(), out); break;
      case 't': ok = Literal("true", JsonValue::Bool(true), out); break;
      case 'f': ok = Literal("false", JsonValue::Bool(false), out); break;
      case '"': {
        std::string s;
        ok = ParseString(&s);
        if (ok) *out = JsonValue::String(std::move(s));
        break;
      }
      case '[': ok = ParseArray(out); break;
      case '{': ok = ParseObject(out); break;
      default: ok = ParseNumber(out); break;
    }
    --depth_;
    return ok;
  }

  bool ParseArray(JsonValue* out) {
    ++pos_;  // '['
    std::vector<JsonValue> items;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      ++pos_;
      *out = JsonValue::Array(std::move(items));
      return true;
    }
    for (;;) {
      JsonValue item;
      if (!ParseValue(&item)) return false;
      items.push_back(std::move(item));
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated array");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == ']') {
        ++pos_;
        *out = JsonValue::Array(std::move(items));
        return true;
      }
      return Fail("expected ',' or ']'");
    }
  }

  bool ParseObject(JsonValue* out) {
    ++pos_;  // '{'
    std::map<std::string, JsonValue> members;
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      ++pos_;
      *out = JsonValue::Object(std::move(members));
      return true;
    }
    for (;;) {
      SkipWs();
      std::string key;
      if (!ParseString(&key)) return false;
      SkipWs();
      if (pos_ >= text_.size() || text_[pos_] != ':') return Fail("expected ':'");
      ++pos_;
      JsonValue value;
      if (!ParseValue(&value)) return false;
      members[std::move(key)] = std::move(value);
      SkipWs();
      if (pos_ >= text_.size()) return Fail("unterminated object");
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == '}') {
        ++pos_;
        *out = JsonValue::Object(std::move(members));
        return true;
      }
      return Fail("expected ',' or '}'");
    }
  }

  const std::string& text_;
  std::string* error_;
  size_t pos_ = 0;
  int depth_ = 0;
};

}  // namespace

bool ParseJson(const std::string& text, JsonValue* out, std::string* error) {
  return Parser(text, error).Parse(out);
}

std::string JsonEscape(const std::string& s) {
  std::string out;
  out.reserve(s.size());
  for (char c : s) {
    switch (c) {
      case '"': out += "\\\""; break;
      case '\\': out += "\\\\"; break;
      case '\n': out += "\\n"; break;
      case '\r': out += "\\r"; break;
      case '\t': out += "\\t"; break;
      default:
        // Control characters (including DEL) become \u escapes; bytes
        // >= 0x80 pass through untouched — they are UTF-8 continuation
        // or lead bytes, and escaping them would break byte-for-byte
        // round-tripping through ParseJson (which decodes \u to UTF-8).
        if (static_cast<unsigned char>(c) < 0x20 || c == 0x7f) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x",
                        static_cast<unsigned>(static_cast<unsigned char>(c)));
          out += buf;
        } else {
          out.push_back(c);
        }
    }
  }
  return out;
}

namespace {

void RenderJsonTo(const JsonValue& v, std::string* out) {
  switch (v.kind()) {
    case JsonValue::Kind::kNull:
      *out += "null";
      break;
    case JsonValue::Kind::kBool:
      *out += v.bool_value() ? "true" : "false";
      break;
    case JsonValue::Kind::kNumber: {
      const double d = v.number();
      // Integral magnitudes (the overwhelmingly common case in traces
      // and reports) render without an exponent or trailing ".0".
      if (d == static_cast<double>(static_cast<int64_t>(d)) &&
          d >= -9.007199254740992e15 && d <= 9.007199254740992e15) {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(d));
        *out += buf;
      } else {
        char buf[64];
        std::snprintf(buf, sizeof(buf), "%.17g", d);
        *out += buf;
      }
      break;
    }
    case JsonValue::Kind::kString:
      *out += '"';
      *out += JsonEscape(v.string());
      *out += '"';
      break;
    case JsonValue::Kind::kArray: {
      *out += '[';
      bool first = true;
      for (const JsonValue& item : v.array()) {
        if (!first) *out += ',';
        first = false;
        RenderJsonTo(item, out);
      }
      *out += ']';
      break;
    }
    case JsonValue::Kind::kObject: {
      *out += '{';
      bool first = true;
      for (const auto& [key, value] : v.object()) {
        if (!first) *out += ',';
        first = false;
        *out += '"';
        *out += JsonEscape(key);
        *out += "\":";
        RenderJsonTo(value, out);
      }
      *out += '}';
      break;
    }
  }
}

}  // namespace

std::string RenderJson(const JsonValue& v) {
  std::string out;
  RenderJsonTo(v, &out);
  return out;
}

}  // namespace obs
}  // namespace secmed
