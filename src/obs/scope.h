#ifndef SECMED_OBS_SCOPE_H_
#define SECMED_OBS_SCOPE_H_

#include "obs/metrics.h"
#include "obs/trace.h"

namespace secmed {
namespace obs {

/// One run's observability context: a tracer plus a metrics registry.
/// Protocol and transport code receives a `Scope*` that may be null —
/// the free helpers below turn a null scope into a no-op at the cost of
/// a single branch, which is the contract that lets instrumentation
/// stay in hot paths permanently (verified by bench_obs_overhead).
class Scope {
 public:
  /// `clock` = nullptr uses the process-wide monotonic clock.
  explicit Scope(const Clock* clock = nullptr) : tracer_(clock) {}

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

 private:
  Tracer tracer_;
  MetricsRegistry metrics_;
};

/// Starts a span on `scope`, or an inert span when `scope` is null.
inline Span StartSpan(Scope* scope, std::string name) {
  if (scope == nullptr) return Span();
  return Span(&scope->tracer(), std::move(name));
}

inline Span StartSpan(Scope* scope, const std::string& party,
                      const std::string& phase, const std::string& op) {
  if (scope == nullptr) return Span();
  return Span(&scope->tracer(), SpanName(party, phase, op));
}

/// Counter/histogram helpers tolerating a null scope.
inline void AddCounter(Scope* scope, const std::string& name, uint64_t delta) {
  if (scope != nullptr) scope->metrics().Add(name, delta);
}

inline void RaiseMaxGauge(Scope* scope, const std::string& name,
                          uint64_t value) {
  if (scope != nullptr) scope->metrics().RaiseMax(name, value);
}

inline void ObserveValue(Scope* scope, const std::string& name,
                         uint64_t value) {
  if (scope != nullptr) scope->metrics().Observe(name, value);
}

}  // namespace obs
}  // namespace secmed

#endif  // SECMED_OBS_SCOPE_H_
