#ifndef SECMED_OBS_SCOPE_H_
#define SECMED_OBS_SCOPE_H_

#include <mutex>

#include "obs/metrics.h"
#include "obs/trace.h"
#include "obs/trace_context.h"

namespace secmed {
namespace obs {

/// One run's observability context: a tracer plus a metrics registry.
/// Protocol and transport code receives a `Scope*` that may be null —
/// the free helpers below turn a null scope into a no-op at the cost of
/// a single branch, which is the contract that lets instrumentation
/// stay in hot paths permanently (verified by bench_obs_overhead).
class Scope {
 public:
  /// `clock` = nullptr uses the process-wide monotonic clock.
  explicit Scope(const Clock* clock = nullptr) : tracer_(clock) {}

  Scope(const Scope&) = delete;
  Scope& operator=(const Scope&) = delete;

  Tracer& tracer() { return tracer_; }
  const Tracer& tracer() const { return tracer_; }
  MetricsRegistry& metrics() { return metrics_; }
  const MetricsRegistry& metrics() const { return metrics_; }

  /// Distributed trace context of this scope's run (invalid until set).
  /// Setting it is idempotent and thread-safe — concurrent sessions of
  /// one deployment all derive the same id (obs/trace_context.h).
  void set_trace(const TraceContext& ctx) {
    std::lock_guard<std::mutex> lock(trace_mutex_);
    trace_ = ctx;
  }
  TraceContext trace() const {
    std::lock_guard<std::mutex> lock(trace_mutex_);
    return trace_;
  }

  /// The context to stamp on an outbound frame right now: the scope's
  /// trace id with the most recently completed span as the parent.
  TraceContext CurrentTrace() const {
    TraceContext ctx = trace();
    ctx.parent_span = tracer_.last_span_id();
    return ctx;
  }

 private:
  Tracer tracer_;
  MetricsRegistry metrics_;
  mutable std::mutex trace_mutex_;
  TraceContext trace_;
};

/// Starts a span on `scope`, or an inert span when `scope` is null.
inline Span StartSpan(Scope* scope, std::string name) {
  if (scope == nullptr) return Span();
  return Span(&scope->tracer(), std::move(name));
}

inline Span StartSpan(Scope* scope, const std::string& party,
                      const std::string& phase, const std::string& op) {
  if (scope == nullptr) return Span();
  return Span(&scope->tracer(), SpanName(party, phase, op));
}

/// Counter/histogram helpers tolerating a null scope.
inline void AddCounter(Scope* scope, const std::string& name, uint64_t delta) {
  if (scope != nullptr) scope->metrics().Add(name, delta);
}

inline void RaiseMaxGauge(Scope* scope, const std::string& name,
                          uint64_t value) {
  if (scope != nullptr) scope->metrics().RaiseMax(name, value);
}

inline void ObserveValue(Scope* scope, const std::string& name,
                         uint64_t value) {
  if (scope != nullptr) scope->metrics().Observe(name, value);
}

}  // namespace obs
}  // namespace secmed

#endif  // SECMED_OBS_SCOPE_H_
