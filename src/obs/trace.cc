#include "obs/trace.h"

#include <algorithm>
#include <chrono>
#include <set>

namespace secmed {
namespace obs {

uint64_t MonotonicClock::NowNanos() const {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

const MonotonicClock* MonotonicClock::Default() {
  static const MonotonicClock clock;
  return &clock;
}

uint32_t Tracer::ThreadIndexLocked(std::thread::id id) {
  auto it = thread_indexes_.find(id);
  if (it != thread_indexes_.end()) return it->second;
  uint32_t index = static_cast<uint32_t>(thread_indexes_.size());
  thread_indexes_.emplace(id, index);
  return index;
}

void Tracer::Record(std::string name, uint64_t start_ns, uint64_t end_ns,
                    uint64_t items) {
  SpanRecord record;
  record.name = std::move(name);
  record.start_ns = start_ns;
  record.duration_ns = end_ns >= start_ns ? end_ns - start_ns : 0;
  record.items = items;
  std::lock_guard<std::mutex> lock(mutex_);
  record.thread_index = ThreadIndexLocked(std::this_thread::get_id());
  record.span_id = spans_.size() + 1;
  last_span_id_.store(record.span_id, std::memory_order_relaxed);
  spans_.push_back(std::move(record));
}

std::vector<SpanRecord> Tracer::Snapshot() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_;
}

size_t Tracer::span_count() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return spans_.size();
}

std::vector<std::string> Tracer::SpanNames() const {
  std::set<std::string> names;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    for (const SpanRecord& s : spans_) names.insert(s.name);
  }
  return std::vector<std::string>(names.begin(), names.end());
}

}  // namespace obs
}  // namespace secmed
