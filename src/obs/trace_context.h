#ifndef SECMED_OBS_TRACE_CONTEXT_H_
#define SECMED_OBS_TRACE_CONTEXT_H_

#include <array>
#include <cstdint>
#include <string>

namespace secmed {
namespace obs {

/// Cross-process trace correlation: a 16-byte trace id naming one
/// deployment-wide trace plus the sender's most recently completed span
/// (the "parent" a receiver stitches an inbound frame under). Carried in
/// the optional trace extension of wire frames (net/wire.h) and stamped
/// onto structured log lines, so the spans of all four parties of a
/// deployment merge into a single Chrome trace under one id.
///
/// An all-zero trace id is the *invalid* (absent) context — frames
/// carry no extension and log lines no "trace" field. Every process of
/// a deployment derives the same id deterministically from the shared
/// session seed label (Derive), so no negotiation round is needed.
struct TraceContext {
  static constexpr size_t kTraceIdSize = 16;

  std::array<uint8_t, kTraceIdSize> trace_id{};
  /// Span id of the sender's most recently completed span at send time
  /// (0 = none). Span ids are per-process recording sequence numbers
  /// (obs::Tracer), unique within one party's trace lane.
  uint64_t parent_span = 0;

  bool valid() const {
    for (uint8_t b : trace_id) {
      if (b != 0) return true;
    }
    return false;
  }

  /// Lower-case hex of the trace id ("" when invalid).
  std::string TraceIdHex() const;

  /// Parses 32 hex chars into the trace id; false on malformed input.
  static bool TraceIdFromHex(const std::string& hex, TraceContext* out);

  /// Deterministic non-zero trace id from a deployment label. Every
  /// process started with the same --seed-label computes the same id —
  /// the trace analogue of the replicated-execution seeding contract.
  /// (Non-cryptographic: a trace id names a run, it protects nothing.)
  static TraceContext Derive(const std::string& label);

  bool operator==(const TraceContext& o) const {
    return trace_id == o.trace_id && parent_span == o.parent_span;
  }
  bool SameTrace(const TraceContext& o) const {
    return trace_id == o.trace_id;
  }
};

}  // namespace obs
}  // namespace secmed

#endif  // SECMED_OBS_TRACE_CONTEXT_H_
