#ifndef SECMED_OBS_WINDOW_H_
#define SECMED_OBS_WINDOW_H_

#include <array>
#include <cstdint>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "obs/clock.h"
#include "obs/metrics.h"

namespace secmed {
namespace obs {

/// Rolling time-bucketed metrics for the live scrape path of a
/// long-running service (secmedd answering ctl_stats): each counter and
/// histogram keeps a cumulative total *and* a ring of per-time-bucket
/// slices, so a snapshot reports both lifetime totals and the activity
/// of the trailing window ("shed rate over the last minute") without
/// the scraper having to keep state.
///
/// Time comes from the injectable Clock (obs/clock.h): production uses
/// the monotonic clock, tests drive a ManualClock through bucket
/// rotations deterministically. Thread-safe; concurrent writers merge
/// under one mutex (cheap next to the session work they measure —
/// these are per-session/per-frame events, not per-tuple ones).
class WindowRegistry {
 public:
  struct Options {
    /// Ring length × bucket width = the trailing window. The defaults
    /// (12 × 5 s) give a one-minute window with 5-second resolution.
    size_t buckets = 12;
    uint64_t bucket_ns = 5ull * 1000 * 1000 * 1000;
    uint64_t window_ns() const { return buckets * bucket_ns; }
  };

  /// `clock` = nullptr uses the process-wide monotonic clock.
  WindowRegistry();
  explicit WindowRegistry(Options opt, const Clock* clock = nullptr);

  WindowRegistry(const WindowRegistry&) = delete;
  WindowRegistry& operator=(const WindowRegistry&) = delete;

  /// Adds `delta` to counter `name` in the current time bucket.
  void Add(const std::string& name, uint64_t delta);

  /// Sets gauge `name` to `value` (last write wins — gauges are
  /// point-in-time levels, not rates, so they have no window).
  void SetGauge(const std::string& name, uint64_t value);

  /// Records one observation into histogram `name` (log2 buckets, the
  /// layout of obs/metrics.h).
  void Observe(const std::string& name, uint64_t value);

  struct CounterStat {
    std::string name;
    uint64_t cumulative = 0;  // since registry construction
    uint64_t windowed = 0;    // within the trailing window
    double rate_per_s = 0.0;  // windowed / covered window seconds
  };

  struct GaugeStat {
    std::string name;
    uint64_t value = 0;
  };

  struct HistogramStat {
    std::string name;
    HistogramSnapshot cumulative;
    HistogramSnapshot windowed;
    /// Percentiles of the *windowed* distribution when it has samples,
    /// of the cumulative one otherwise (a quiet service still reports
    /// its lifetime latency shape).
    double p50 = 0.0;
    double p95 = 0.0;
    double p99 = 0.0;
  };

  /// Point-in-time scrape: every counter/gauge/histogram with both its
  /// lifetime and trailing-window view. This is the payload of the
  /// ctl_stats reply, rendered by RenderStatsJson below.
  struct Snapshot {
    uint64_t at_ns = 0;
    uint64_t window_ns = 0;
    /// Scrape identity labels ("party_set", "port", ...), carried into
    /// the JSON and the Prometheus exposition.
    std::map<std::string, std::string> labels;
    std::vector<CounterStat> counters;
    std::vector<GaugeStat> gauges;
    std::vector<HistogramStat> histograms;
  };

  Snapshot TakeSnapshot() const;

  uint64_t NowNanos() const { return clock_->NowNanos(); }
  const Options& options() const { return opt_; }

 private:
  /// One ring slot: the absolute bucket index it holds data for (a slot
  /// whose bucket fell out of the window is stale and rewritten in
  /// place — rotation costs nothing until the slot is touched again).
  struct CounterSlot {
    uint64_t bucket = kEmptyBucket;
    uint64_t value = 0;
  };
  struct CounterEntry {
    uint64_t cumulative = 0;
    std::vector<CounterSlot> ring;
  };
  struct HistogramCells {
    uint64_t count = 0;
    uint64_t sum = 0;
    uint64_t min = 0;
    uint64_t max = 0;
    std::array<uint64_t, kHistogramBuckets> buckets{};

    void Observe(uint64_t value);
  };
  struct HistogramSlot {
    uint64_t bucket = kEmptyBucket;
    HistogramCells cells;
  };
  struct HistogramEntry {
    HistogramCells cumulative;
    std::vector<HistogramSlot> ring;
  };

  static constexpr uint64_t kEmptyBucket = ~uint64_t{0};

  uint64_t CurrentBucket() const { return clock_->NowNanos() / opt_.bucket_ns; }

  Options opt_;
  const Clock* clock_;
  uint64_t start_ns_ = 0;  // for partial-window rate denominators
  mutable std::mutex mutex_;
  std::map<std::string, CounterEntry> counters_;
  std::map<std::string, uint64_t> gauges_;
  std::map<std::string, HistogramEntry> histograms_;
};

/// q-th percentile (q in [0,1]) of a log2-bucketed histogram, linearly
/// interpolated within the crossing bucket and clamped to [min, max].
/// 0 when the histogram is empty.
double HistogramPercentile(const HistogramSnapshot& h, double q);

/// Scrape-over-scrape delta for `secmedctl stats --watch`: `cur` with
/// every counter's `windowed`/`rate_per_s` replaced by the cumulative
/// growth since `prev` (clamped at 0) over the elapsed wall time.
/// Gauges and histograms keep cur's values (windowed views already roll).
WindowRegistry::Snapshot DeltaStats(const WindowRegistry::Snapshot& prev,
                                    const WindowRegistry::Snapshot& cur);

/// JSON of one snapshot (schema "secmed.stats.v1", documented in
/// docs/OBSERVABILITY.md). Round-trips through ParseStatsJson exactly.
std::string RenderStatsJson(const WindowRegistry::Snapshot& snapshot);

/// Parses RenderStatsJson output back into a snapshot; false (with a
/// message in *error, if non-null) on malformed or wrong-schema input.
bool ParseStatsJson(const std::string& text, WindowRegistry::Snapshot* out,
                    std::string* error);

/// Prometheus text exposition (version 0.0.4) of one snapshot: counters
/// as `secmed_<name>_total`, gauges as `secmed_<name>`, histograms as
/// classic `_bucket{le=...}`/`_sum`/`_count` families from the
/// cumulative log2 buckets. Snapshot labels become metric labels.
std::string RenderPrometheus(const WindowRegistry::Snapshot& snapshot);

/// Human-readable table of one snapshot (the `secmedctl stats` output).
std::string RenderStatsTable(const WindowRegistry::Snapshot& snapshot);

/// Sanitizes an internal metric name ("session.latency_ns/pm") into a
/// Prometheus-legal one ([a-zA-Z0-9_:], never digit-initial).
std::string PrometheusName(const std::string& name);

}  // namespace obs
}  // namespace secmed

#endif  // SECMED_OBS_WINDOW_H_
