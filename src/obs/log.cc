#include "obs/log.h"

#include <cinttypes>
#include <cstdio>

#include "obs/json.h"

namespace secmed {
namespace obs {

namespace {

constexpr uint64_t kRateWindowNs = 1'000'000'000;

void StderrSink(const std::string& line) {
  fprintf(stderr, "%s\n", line.c_str());
}

}  // namespace

const char* LogLevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "debug";
    case LogLevel::kInfo:
      return "info";
    case LogLevel::kWarn:
      return "warn";
    case LogLevel::kError:
      return "error";
  }
  return "info";
}

bool ParseLogLevel(const std::string& text, LogLevel* out) {
  if (text == "debug") {
    *out = LogLevel::kDebug;
  } else if (text == "info") {
    *out = LogLevel::kInfo;
  } else if (text == "warn") {
    *out = LogLevel::kWarn;
  } else if (text == "error") {
    *out = LogLevel::kError;
  } else {
    return false;
  }
  return true;
}

EventLog::EventLog() : EventLog(Options()) {}

EventLog::EventLog(Options opt)
    : opt_(std::move(opt)),
      clock_(opt_.clock != nullptr ? opt_.clock : MonotonicClock::Default()) {
  if (!opt_.sink) opt_.sink = StderrSink;
}

void EventLog::SetTrace(const TraceContext& ctx) {
  std::lock_guard<std::mutex> lock(mutex_);
  trace_ = ctx;
}

void EventLog::Log(LogLevel level, const std::string& event,
                   const std::vector<Field>& fields) {
  if (!enabled(level)) return;
  const uint64_t now = clock_->NowNanos();

  std::string line;
  std::string suppressed_line;
  {
    std::lock_guard<std::mutex> lock(mutex_);
    RateState& rate = rates_[event];
    if (now - rate.window_start_ns >= kRateWindowNs) {
      // Window rollover: report what the limiter swallowed, once, so a
      // quiet log still accounts for every event.
      if (rate.suppressed_in_window > 0) {
        char buf[160];
        snprintf(buf, sizeof(buf),
                 "{\"ts_ns\":%" PRIu64
                 ",\"level\":\"warn\",\"event\":\"log.suppressed\","
                 "\"of\":\"%s\",\"count\":%" PRIu64 "}",
                 now, JsonEscape(event).c_str(), rate.suppressed_in_window);
        suppressed_line = buf;
        ++emitted_;
      }
      rate.window_start_ns = now;
      rate.in_window = 0;
      rate.suppressed_in_window = 0;
    }
    if (opt_.max_per_sec > 0 && rate.in_window >= opt_.max_per_sec) {
      ++rate.suppressed_in_window;
      ++suppressed_;
      if (!suppressed_line.empty()) opt_.sink(suppressed_line);
      return;
    }
    ++rate.in_window;
    ++emitted_;

    char head[96];
    snprintf(head, sizeof(head), "{\"ts_ns\":%" PRIu64 ",\"level\":\"%s\"",
             now, LogLevelName(level));
    line = head;
    line += ",\"event\":\"";
    line += JsonEscape(event);
    line += '"';
    if (trace_.valid()) {
      line += ",\"trace\":\"";
      line += trace_.TraceIdHex();
      line += '"';
    }
    for (const Field& f : fields) {
      line += ",\"";
      line += JsonEscape(f.first);
      line += "\":\"";
      line += JsonEscape(f.second);
      line += '"';
    }
    line += '}';
  }
  if (!suppressed_line.empty()) opt_.sink(suppressed_line);
  opt_.sink(line);
}

uint64_t EventLog::emitted() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return emitted_;
}

uint64_t EventLog::suppressed() const {
  std::lock_guard<std::mutex> lock(mutex_);
  return suppressed_;
}

}  // namespace obs
}  // namespace secmed
