#ifndef SECMED_OBS_LOG_H_
#define SECMED_OBS_LOG_H_

#include <cstdint>
#include <functional>
#include <map>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "obs/clock.h"
#include "obs/trace_context.h"

namespace secmed {
namespace obs {

enum class LogLevel : int {
  kDebug = 0,
  kInfo = 1,
  kWarn = 2,
  kError = 3,
};

const char* LogLevelName(LogLevel level);

/// Parses "debug"/"info"/"warn"/"error" (case-sensitive); false on
/// anything else.
bool ParseLogLevel(const std::string& text, LogLevel* out);

/// Structured JSON-lines event logger for the service path. Each event
/// is one line: {"ts_ns":...,"level":"...","event":"net.retry",
/// "trace":"<hex>", ...fields}. Replaces the ad-hoc stderr prints of
/// the transport and daemon so operators can grep/join events by name
/// and correlate them with distributed traces.
///
/// Events are rate-limited per event name (not globally): a chatty
/// failure loop ("net.retry" at line rate) cannot drown the log, and a
/// one-line summary of what was suppressed is emitted when the
/// per-second window rolls over. All logging sits on failure/lifecycle
/// paths, never per-frame hot paths — the null-logger path of LogEvent
/// below is a single branch.
class EventLog {
 public:
  using Field = std::pair<std::string, std::string>;
  using Sink = std::function<void(const std::string& line)>;

  struct Options {
    LogLevel min_level = LogLevel::kInfo;
    /// Max lines per event name per second; 0 disables the limiter.
    uint64_t max_per_sec = 200;
    /// nullptr uses the process-wide monotonic clock.
    const Clock* clock = nullptr;
    /// nullptr writes lines to stderr.
    Sink sink;
  };

  EventLog();
  explicit EventLog(Options opt);

  EventLog(const EventLog&) = delete;
  EventLog& operator=(const EventLog&) = delete;

  /// Trace context stamped onto subsequent lines (the "trace" field is
  /// omitted while the context is invalid). Thread-safe.
  void SetTrace(const TraceContext& ctx);

  /// Emits one event. `fields` values are rendered as JSON strings with
  /// full escaping, so arbitrary bytes are safe. Thread-safe.
  void Log(LogLevel level, const std::string& event,
           const std::vector<Field>& fields = {});

  bool enabled(LogLevel level) const {
    return static_cast<int>(level) >= static_cast<int>(opt_.min_level);
  }

  /// Lines written / dropped by the rate limiter, for tests and the
  /// daemon's own stats.
  uint64_t emitted() const;
  uint64_t suppressed() const;

 private:
  struct RateState {
    uint64_t window_start_ns = 0;
    uint64_t in_window = 0;
    uint64_t suppressed_in_window = 0;
  };

  Options opt_;
  const Clock* clock_;
  mutable std::mutex mutex_;
  TraceContext trace_;
  std::map<std::string, RateState> rates_;
  uint64_t emitted_ = 0;
  uint64_t suppressed_ = 0;
};

/// Null-tolerant logging helper: a single branch when `log` is null,
/// mirroring the obs::Scope span/counter helpers.
inline void LogEvent(EventLog* log, LogLevel level, const std::string& event,
                     const std::vector<EventLog::Field>& fields = {}) {
  if (log != nullptr) log->Log(level, event, fields);
}

}  // namespace obs
}  // namespace secmed

#endif  // SECMED_OBS_LOG_H_
