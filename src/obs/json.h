#ifndef SECMED_OBS_JSON_H_
#define SECMED_OBS_JSON_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

namespace secmed {
namespace obs {

/// Minimal JSON document model, just enough to validate and round-trip
/// the artifacts this library emits (Chrome traces, run reports,
/// BENCH_protocols.json). Numbers are stored as double — exact for the
/// integer magnitudes the reports contain (< 2^53).
class JsonValue {
 public:
  enum class Kind { kNull, kBool, kNumber, kString, kArray, kObject };

  JsonValue() = default;

  Kind kind() const { return kind_; }
  bool is_object() const { return kind_ == Kind::kObject; }
  bool is_array() const { return kind_ == Kind::kArray; }
  bool is_string() const { return kind_ == Kind::kString; }
  bool is_number() const { return kind_ == Kind::kNumber; }

  bool bool_value() const { return bool_; }
  double number() const { return number_; }
  const std::string& string() const { return string_; }
  const std::vector<JsonValue>& array() const { return array_; }
  const std::map<std::string, JsonValue>& object() const { return object_; }

  /// Member lookup; nullptr when absent or not an object.
  const JsonValue* Find(const std::string& key) const;

  static JsonValue Null();
  static JsonValue Bool(bool v);
  static JsonValue Number(double v);
  static JsonValue String(std::string v);
  static JsonValue Array(std::vector<JsonValue> v);
  static JsonValue Object(std::map<std::string, JsonValue> v);

 private:
  Kind kind_ = Kind::kNull;
  bool bool_ = false;
  double number_ = 0;
  std::string string_;
  std::vector<JsonValue> array_;
  std::map<std::string, JsonValue> object_;
};

/// Parses a complete JSON document. Returns false (with a position-
/// annotated message in *error, if non-null) on malformed input or
/// trailing garbage.
bool ParseJson(const std::string& text, JsonValue* out, std::string* error);

/// Escapes `s` for inclusion inside JSON double quotes. Control bytes
/// (including DEL) become \u escapes; bytes >= 0x80 pass through as-is,
/// so UTF-8 strings round-trip byte-for-byte through ParseJson.
std::string JsonEscape(const std::string& s);

/// Serializes a document (object keys sorted, arrays in order, no
/// insignificant whitespace). ParseJson ∘ RenderJson is the identity on
/// parsed documents up to key order and number formatting.
std::string RenderJson(const JsonValue& v);

}  // namespace obs
}  // namespace secmed

#endif  // SECMED_OBS_JSON_H_
