#include "plan/planner.h"

#include <algorithm>
#include <iomanip>
#include <set>
#include <sstream>

#include "relational/sql.h"

namespace secmed {
namespace plan {

namespace {

/// The datasource owning `table` in the context, or null.
const DataSource* FindSource(const ProtocolContext* ctx,
                             const std::string& table) {
  for (const auto& [name, source] : ctx->sources) {
    if (source != nullptr && source->HasTable(table)) return source;
  }
  return nullptr;
}

/// Base column names of a schema.
std::set<std::string> BaseColumns(const Schema& schema) {
  std::set<std::string> cols;
  for (size_t i = 0; i < schema.size(); ++i) {
    cols.insert(Schema::BaseName(schema.column(i).name));
  }
  return cols;
}

struct LevelAttrs {
  std::string left;   // base column on the accumulated side
  std::string right;  // base column on the incoming table
};

/// The join attribute pair of one level. NATURAL joins use the first
/// common base column (schema order of the incoming table); ON joins use
/// the first equality pair. Multi-attribute joins are costed on their
/// first attribute — a deliberate approximation: the first attribute
/// dominates the matching work, and extra attributes only shrink the
/// result, so the estimate is conservative.
Result<LevelAttrs> LevelJoinAttributes(
    const std::set<std::string>& left_columns, const Schema& right_schema,
    const ParsedQuery::JoinClause& join) {
  LevelAttrs attrs;
  if (join.natural || join.on_pairs.empty()) {
    for (size_t i = 0; i < right_schema.size(); ++i) {
      std::string base = Schema::BaseName(right_schema.column(i).name);
      if (left_columns.count(base) > 0) {
        attrs.left = attrs.right = base;
        return attrs;
      }
    }
    return Status::InvalidArgument("planner: no common join column with '" +
                                   join.table.name + "'");
  }
  std::string first = Schema::BaseName(join.on_pairs.front().first);
  std::string second = Schema::BaseName(join.on_pairs.front().second);
  std::set<std::string> right_columns = BaseColumns(right_schema);
  if (right_columns.count(second) > 0 && left_columns.count(first) > 0) {
    attrs.left = first;
    attrs.right = second;
  } else if (right_columns.count(first) > 0 &&
             left_columns.count(second) > 0) {
    attrs.left = second;
    attrs.right = first;
  } else {
    return Status::InvalidArgument(
        "planner: ON pair " + first + " = " + second +
        " does not span the join with '" + join.table.name + "'");
  }
  return attrs;
}

/// One join order with everything the costing pass needs per level.
struct LevelInput {
  std::string left_label;
  std::string right_label;
  std::string join_attribute;
  TableStats left;
  TableStats right;
};

std::string FormatMs(double ms) {
  std::ostringstream out;
  out << std::fixed << std::setprecision(ms < 10 ? 2 : 1) << ms;
  return out.str();
}

}  // namespace

std::string CandidatePlan::ProtocolsLabel() const {
  std::string label;
  for (size_t i = 0; i < levels.size(); ++i) {
    if (i > 0) label += "+";
    label += levels[i].protocol;
  }
  return label;
}

std::vector<std::string> PlanChoice::ProtocolSchedule() const {
  std::vector<std::string> schedule;
  schedule.reserve(chosen.levels.size());
  for (const PlanLevel& level : chosen.levels) {
    schedule.push_back(level.protocol);
  }
  return schedule;
}

obs::JsonValue PlanChoice::ToJson(const PlanActuals* actuals) const {
  auto level_json = [](const PlanLevel& level) {
    return obs::JsonValue::Object({
        {"left", obs::JsonValue::String(level.left)},
        {"right", obs::JsonValue::String(level.right)},
        {"join_attribute", obs::JsonValue::String(level.join_attribute)},
        {"protocol", obs::JsonValue::String(level.protocol)},
        {"cost", level.cost.ToJson()},
        {"leakage", level.leakage.ToJson()},
    });
  };
  auto candidate_json = [&](const CandidatePlan& c) {
    std::vector<obs::JsonValue> levels;
    levels.reserve(c.levels.size());
    for (const PlanLevel& level : c.levels) levels.push_back(level_json(level));
    std::vector<obs::JsonValue> order;
    order.reserve(c.join_order.size());
    for (size_t idx : c.join_order) {
      order.push_back(obs::JsonValue::Number(double(idx)));
    }
    return obs::JsonValue::Object({
        {"levels", obs::JsonValue::Array(std::move(levels))},
        {"join_order", obs::JsonValue::Array(std::move(order))},
        {"protocols", obs::JsonValue::String(c.ProtocolsLabel())},
        {"total_wall_ms", obs::JsonValue::Number(c.total_wall_ms)},
        {"pruned", obs::JsonValue::Bool(c.pruned)},
        {"prune_reason", obs::JsonValue::String(c.prune_reason)},
        {"feasible", obs::JsonValue::Bool(c.feasible)},
        {"mixed", obs::JsonValue::Bool(c.mixed)},
    });
  };

  std::vector<obs::JsonValue> candidate_array;
  candidate_array.reserve(candidates.size());
  for (const CandidatePlan& c : candidates) {
    candidate_array.push_back(candidate_json(c));
  }
  std::map<std::string, obs::JsonValue> doc{
      {"schema", obs::JsonValue::String("secmed.plan_explain.v1")},
      {"sql", obs::JsonValue::String(sql)},
      {"policy", obs::JsonValue::String(policy)},
      {"chosen", candidate_json(chosen)},
      {"candidates", obs::JsonValue::Array(std::move(candidate_array))},
  };
  if (actuals != nullptr) {
    double predicted = chosen.total_wall_ms;
    doc.emplace("actuals",
                obs::JsonValue::Object({
                    {"wall_ms", obs::JsonValue::Number(actuals->wall_ms)},
                    {"total_bytes",
                     obs::JsonValue::Number(actuals->total_bytes)},
                    {"result_rows",
                     obs::JsonValue::Number(actuals->result_rows)},
                    {"messages", obs::JsonValue::Number(actuals->messages)},
                    {"predicted_over_actual",
                     obs::JsonValue::Number(actuals->wall_ms > 0
                                                ? predicted / actuals->wall_ms
                                                : -1.0)},
                }));
  }
  return obs::JsonValue::Object(std::move(doc));
}

std::string PlanChoice::ToTable() const {
  // Column widths over all rows first, then aligned output.
  std::vector<std::vector<std::string>> rows;
  rows.push_back({"#", "plan", "protocols", "pred_ms", "client_work",
                  "mediator_KB", "superset", "status"});
  auto describe = [](const CandidatePlan& c) {
    std::string plan = c.levels.empty() ? "-" : c.levels.front().left;
    for (const PlanLevel& level : c.levels) plan += "*" + level.right;
    return plan;
  };
  size_t index = 1;
  for (const CandidatePlan& c : candidates) {
    double client_work = 0, mediator_bytes = 0, superset = 1.0;
    for (const PlanLevel& level : c.levels) {
      client_work += level.cost.client_decrypt_ops;
      mediator_bytes += level.cost.mediator_bytes;
      superset = std::max(superset, level.cost.client_superset_factor);
    }
    std::string status;
    if (!c.feasible) {
      status = "infeasible: " + c.prune_reason;
    } else if (c.pruned) {
      status = "pruned: " + c.prune_reason;
    } else if (c.ProtocolsLabel() == chosen.ProtocolsLabel() &&
               describe(c) == describe(chosen)) {
      status = "CHOSEN";
    }
    std::ostringstream ss;
    ss << std::fixed << std::setprecision(1) << superset;
    rows.push_back({std::to_string(index++), describe(c), c.ProtocolsLabel(),
                    FormatMs(c.total_wall_ms),
                    std::to_string(size_t(client_work + 0.5)),
                    FormatMs(mediator_bytes / 1024.0), ss.str(), status});
  }
  std::vector<size_t> widths(rows[0].size(), 0);
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      widths[i] = std::max(widths[i], row[i].size());
    }
  }
  std::ostringstream out;
  for (const auto& row : rows) {
    for (size_t i = 0; i < row.size(); ++i) {
      out << std::left << std::setw(int(widths[i]) + 2) << row[i];
    }
    out << "\n";
  }
  return out.str();
}

Result<PlanChoice> Planner::Plan(const std::string& sql,
                                 ProtocolContext* ctx) {
  obs::Span span = obs::StartSpan(ctx->obs, "client", "plan", "enumerate");
  SECMED_ASSIGN_OR_RETURN(ParsedQuery query, ParseSql(sql));
  if (query.joins.empty()) {
    return Status::InvalidArgument("planner: query has no JOIN clause");
  }
  SECMED_ASSIGN_OR_RETURN(LeakagePolicy policy,
                          LeakagePolicy::Parse(options_.policy));

  StatsOptions stats_options;
  stats_options.das_strategy = options_.params.das_strategy;
  stats_options.das_partitions = options_.params.das_partitions;
  PreparedCache* cache = ctx->prepared;

  // Base-table schemas and owning sources.
  struct BaseTable {
    std::string name;
    const DataSource* source = nullptr;
    Schema schema;
  };
  auto resolve = [&](const std::string& table) -> Result<BaseTable> {
    BaseTable bt;
    bt.name = table;
    bt.source = FindSource(ctx, table);
    if (bt.source == nullptr) {
      return Status::NotFound("planner: no datasource holds table '" + table +
                              "'");
    }
    SECMED_ASSIGN_OR_RETURN(bt.schema, bt.source->TableSchema(table));
    return bt;
  };
  SECMED_ASSIGN_OR_RETURN(BaseTable anchor, resolve(query.from.name));
  std::vector<BaseTable> join_tables;
  bool all_natural = true;
  for (const ParsedQuery::JoinClause& join : query.joins) {
    SECMED_ASSIGN_OR_RETURN(BaseTable bt, resolve(join.table.name));
    join_tables.push_back(std::move(bt));
    if (!join.natural) all_natural = false;
  }

  // Memoized base-table statistics per (table, attribute).
  std::map<std::pair<std::string, std::string>, TableStats> base_stats;
  auto stats_for = [&](const BaseTable& bt,
                       const std::string& attr) -> Result<TableStats> {
    auto key = std::make_pair(bt.name, attr);
    auto it = base_stats.find(key);
    if (it != base_stats.end()) return it->second;
    SECMED_ASSIGN_OR_RETURN(
        TableStats stats,
        CollectSourceStats(*bt.source, bt.name, attr, stats_options, cache));
    base_stats.emplace(key, stats);
    return stats;
  };

  // Builds the per-level costing inputs for one order of the join
  // clauses; fails (→ the order is skipped) when a level has no join
  // attribute with the accumulated left side.
  auto build_levels =
      [&](const std::vector<size_t>& order) -> Result<std::vector<LevelInput>> {
    std::vector<LevelInput> levels;
    std::set<std::string> left_columns = BaseColumns(anchor.schema);
    std::vector<const BaseTable*> joined = {&anchor};
    std::string left_label = anchor.name;
    TableStats left_stats;  // set at level 0
    for (size_t depth = 0; depth < order.size(); ++depth) {
      const ParsedQuery::JoinClause& join = query.joins[order[depth]];
      const BaseTable& right = join_tables[order[depth]];
      SECMED_ASSIGN_OR_RETURN(
          LevelAttrs attrs,
          LevelJoinAttributes(left_columns, right.schema, join));
      LevelInput level;
      level.left_label = left_label;
      level.right_label = right.name;
      level.join_attribute = attrs.left;
      if (depth == 0) {
        SECMED_ASSIGN_OR_RETURN(level.left, stats_for(anchor, attrs.left));
      } else {
        // The intermediate: cardinality from the previous level, domain
        // shape from the base table that carries this level's attribute.
        const LevelInput& prev = levels.back();
        const BaseTable* carrier = nullptr;
        for (const BaseTable* bt : joined) {
          if (BaseColumns(bt->schema).count(attrs.left) > 0) {
            carrier = bt;
            break;
          }
        }
        if (carrier == nullptr) {
          return Status::InvalidArgument(
              "planner: join attribute '" + attrs.left +
              "' not in the accumulated result");
        }
        SECMED_ASSIGN_OR_RETURN(TableStats carrier_stats,
                                stats_for(*carrier, attrs.left));
        level.left = JoinedStats(prev.left, prev.right, carrier_stats);
      }
      SECMED_ASSIGN_OR_RETURN(level.right, stats_for(right, attrs.right));
      for (const std::string& col : BaseColumns(right.schema)) {
        left_columns.insert(col);
      }
      joined.push_back(&right);
      left_label += "*" + right.name;
      levels.push_back(std::move(level));
    }
    return levels;
  };

  // Join orders: the given order always; for all-NATURAL cascades of
  // up to 3 joins also every permutation that keeps a shared column at
  // each level (invalid permutations are skipped by build_levels).
  std::vector<size_t> given(query.joins.size());
  for (size_t i = 0; i < given.size(); ++i) given[i] = i;
  std::vector<std::vector<size_t>> orders = {given};
  if (options_.enumerate_orders && all_natural && query.joins.size() >= 2 &&
      query.joins.size() <= 3) {
    std::vector<size_t> perm = given;
    std::sort(perm.begin(), perm.end());
    do {
      if (perm != given) orders.push_back(perm);
    } while (std::next_permutation(perm.begin(), perm.end()));
  }

  PlanChoice choice;
  choice.sql = sql;
  choice.policy = policy.ToString();

  for (const std::vector<size_t>& order : orders) {
    Result<std::vector<LevelInput>> levels = build_levels(order);
    if (!levels.ok()) {
      if (order == given) return levels.status();
      continue;  // invalid permutation
    }

    // Per-level cost and leakage of every candidate protocol.
    struct LevelOption {
      PlanLevel level;
      std::string violation;  // policy violation; empty = allowed
    };
    std::vector<std::vector<LevelOption>> grid;
    for (const LevelInput& input : *levels) {
      std::vector<LevelOption> row;
      for (const std::string& protocol : options_.protocols) {
        LevelOption option;
        option.level.left = input.left_label;
        option.level.right = input.right_label;
        option.level.join_attribute = input.join_attribute;
        option.level.protocol = protocol;
        option.level.cost =
            model_.Predict(protocol, input.left, input.right, options_.params);
        option.level.leakage = PredictLeakage(protocol, option.level.cost);
        option.violation = policy.Check(option.level.leakage);
        row.push_back(std::move(option));
      }
      grid.push_back(std::move(row));
    }

    // Uniform candidates (one per protocol — these mirror the fixed
    // --protocol choices), plus the best-per-level mixed candidate.
    for (size_t p = 0; p < options_.protocols.size(); ++p) {
      CandidatePlan candidate;
      candidate.join_order = order;
      for (const std::vector<LevelOption>& row : grid) {
        const LevelOption& option = row[p];
        candidate.levels.push_back(option.level);
        candidate.total_wall_ms += option.level.cost.wall_ms;
        if (!option.level.cost.feasible && candidate.feasible) {
          candidate.feasible = false;
          candidate.prune_reason = option.level.cost.infeasible_reason;
        }
        if (!option.violation.empty() && !candidate.pruned) {
          candidate.pruned = true;
          candidate.prune_reason = option.violation;
        }
      }
      choice.candidates.push_back(std::move(candidate));
    }
    if (grid.size() > 1) {
      CandidatePlan mixed;
      mixed.mixed = true;
      mixed.join_order = order;
      for (const std::vector<LevelOption>& row : grid) {
        const LevelOption* best = nullptr;
        for (const LevelOption& option : row) {
          if (!option.violation.empty() || !option.level.cost.feasible) {
            continue;
          }
          if (best == nullptr ||
              option.level.cost.wall_ms < best->level.cost.wall_ms) {
            best = &option;
          }
        }
        if (best == nullptr) {
          mixed.feasible = false;
          mixed.pruned = true;
          mixed.prune_reason = "no protocol satisfies the policy";
          break;
        }
        mixed.levels.push_back(best->level);
        mixed.total_wall_ms += best->level.cost.wall_ms;
      }
      // Only worth listing when it differs from every uniform candidate.
      bool uniform = true;
      for (size_t i = 1; i < mixed.levels.size(); ++i) {
        if (mixed.levels[i].protocol != mixed.levels[0].protocol) {
          uniform = false;
        }
      }
      if (!mixed.pruned && !mixed.levels.empty() && !uniform) {
        choice.candidates.push_back(std::move(mixed));
      }
    }
  }

  // Choose the cheapest feasible, unpruned candidate.
  const CandidatePlan* best = nullptr;
  for (const CandidatePlan& candidate : choice.candidates) {
    if (candidate.pruned || !candidate.feasible) continue;
    if (best == nullptr || candidate.total_wall_ms < best->total_wall_ms) {
      best = &candidate;
    }
  }
  obs::AddCounter(ctx->obs, "planner.candidates", choice.candidates.size());
  size_t pruned = 0;
  for (const CandidatePlan& candidate : choice.candidates) {
    if (candidate.pruned) ++pruned;
  }
  obs::AddCounter(ctx->obs, "planner.pruned", pruned);
  if (best == nullptr) {
    return Status::FailedPrecondition(
        "planner: the leakage policy '" + choice.policy +
        "' excludes every feasible protocol for this query");
  }
  choice.chosen = *best;
  obs::AddCounter(ctx->obs, "planner.choice." + choice.chosen.ProtocolsLabel(),
                  1);
  return choice;
}

}  // namespace plan
}  // namespace secmed
