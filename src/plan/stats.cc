#include "plan/stats.h"

#include <algorithm>
#include <cstring>

#include "crypto/sha256.h"

namespace secmed {
namespace plan {

namespace {

/// 64-bit fingerprint of a join value: the first 8 bytes of the SHA-256
/// of its canonical encoding, big-endian. Collision probability over the
/// domain sizes involved here is negligible.
uint64_t Fingerprint(const Value& v) {
  Bytes digest = Sha256::Hash(v.Encode());
  uint64_t fp = 0;
  for (size_t i = 0; i < 8; ++i) fp = (fp << 8) | digest[i];
  return fp;
}

/// The cached form of TableStats (core/prepared.h).
struct PreparedStats : PreparedValue {
  TableStats stats;

  explicit PreparedStats(TableStats s) : stats(std::move(s)) {}
  size_t ByteSize() const override {
    // Dominated by the sketch and the bucket histogram.
    return sizeof(TableStats) + stats.join_sketch.size() * sizeof(uint64_t) +
           stats.buckets.size() * (sizeof(BucketStat) + 32);
  }
};

}  // namespace

obs::JsonValue TableStats::ToJson() const {
  std::vector<obs::JsonValue> bucket_json;
  bucket_json.reserve(buckets.size());
  for (const BucketStat& b : buckets) {
    bucket_json.push_back(obs::JsonValue::Object({
        {"bounds", obs::JsonValue::String(b.partition.ToString())},
        {"distinct_values", obs::JsonValue::Number(double(b.distinct_values))},
        {"tuples", obs::JsonValue::Number(double(b.tuples))},
    }));
  }
  return obs::JsonValue::Object({
      {"table", obs::JsonValue::String(table)},
      {"source", obs::JsonValue::String(source)},
      {"catalog_version", obs::JsonValue::Number(double(catalog_version))},
      {"tuples", obs::JsonValue::Number(double(tuples))},
      {"columns", obs::JsonValue::Number(double(columns))},
      {"distinct_join_values",
       obs::JsonValue::Number(double(distinct_join_values))},
      {"avg_tuple_bytes", obs::JsonValue::Number(avg_tuple_bytes)},
      {"join_attribute", obs::JsonValue::String(join_attribute)},
      {"buckets", obs::JsonValue::Array(std::move(bucket_json))},
      {"sketch_size", obs::JsonValue::Number(double(join_sketch.size()))},
      {"sketch_exact", obs::JsonValue::Bool(sketch_exact)},
  });
}

Result<TableStats> CollectStats(const Relation& rel,
                                const std::string& join_attribute,
                                const StatsOptions& options) {
  TableStats stats;
  stats.join_attribute = join_attribute;
  stats.tuples = rel.size();
  stats.columns = rel.schema().size();

  // Resolve the join column: exact (possibly qualified) match first, then
  // by base name, so the collector works on both stored base tables and
  // qualified partial results.
  Result<size_t> col = rel.schema().IndexOf(join_attribute);
  std::string stored_name = join_attribute;
  if (!col.ok()) {
    for (size_t i = 0; i < rel.schema().size(); ++i) {
      if (Schema::BaseName(rel.schema().column(i).name) == join_attribute) {
        stored_name = rel.schema().column(i).name;
        col = i;
        break;
      }
    }
  }
  if (!col.ok()) {
    return Status::InvalidArgument("stats: no column '" + join_attribute +
                                   "' in schema");
  }

  size_t total_bytes = 0;
  for (const Tuple& t : rel.tuples()) total_bytes += EncodeTuple(t).size();
  stats.avg_tuple_bytes =
      rel.empty() ? 0.0 : double(total_bytes) / double(rel.size());

  SECMED_ASSIGN_OR_RETURN(std::vector<Value> domain,
                          rel.ActiveDomain(stored_name));
  stats.distinct_join_values = domain.size();

  stats.join_sketch.reserve(domain.size());
  for (const Value& v : domain) stats.join_sketch.push_back(Fingerprint(v));
  std::sort(stats.join_sketch.begin(), stats.join_sketch.end());
  if (stats.join_sketch.size() > kJoinSketchCap) {
    stats.join_sketch.resize(kJoinSketchCap);  // bottom-k
    stats.sketch_exact = false;
  }

  // DAS bucket histogram: the same partitioning the DAS protocol would
  // build. The salt only randomizes identifiers, never boundaries, so
  // the histogram is salt-free. A strategy/domain mismatch (equi-width
  // over strings, empty domain) leaves the histogram empty: DAS is then
  // not a plannable candidate for this table rather than an error.
  if (!domain.empty()) {
    Result<std::vector<DasPartition>> parts = PartitionDomain(
        domain, options.das_strategy, options.das_partitions, Bytes{});
    if (parts.ok()) {
      stats.buckets.reserve(parts->size());
      for (DasPartition& p : *parts) {
        BucketStat b;
        b.partition = std::move(p);
        for (const Value& v : domain) {
          if (b.partition.Contains(v)) ++b.distinct_values;
        }
        for (const Tuple& t : rel.tuples()) {
          const Value& v = t[*col];
          if (!v.is_null() && b.partition.Contains(v)) ++b.tuples;
        }
        stats.buckets.push_back(std::move(b));
      }
    }
  }
  return stats;
}

Result<TableStats> CollectSourceStats(const DataSource& source,
                                      const std::string& table,
                                      const std::string& join_attribute,
                                      const StatsOptions& options,
                                      PreparedCache* cache) {
  auto compute = [&]() -> Result<TableStats> {
    Result<TableStats> stats = Status::Internal("relation not visited");
    Status visit = source.WithRelation(table, [&](const Relation& rel) {
      stats = CollectStats(rel, join_attribute, options);
    });
    if (!visit.ok()) return visit;
    if (!stats.ok()) return stats.status();
    stats->table = table;
    stats->source = source.name();
    stats->catalog_version = source.catalog_version();
    return stats;
  };

  if (cache == nullptr) return compute();

  // Key material: every parameter the statistics depend on besides the
  // relation content itself, which the catalog version covers.
  std::string material_str =
      table + "|" + join_attribute + "|" +
      PartitionStrategyToString(options.das_strategy) + "|" +
      std::to_string(options.das_partitions);
  std::string key = PreparedKey("plan.stats", source.name(),
                                source.catalog_version(),
                                ToBytes(material_str));
  SECMED_ASSIGN_OR_RETURN(
      std::shared_ptr<const PreparedStats> entry,
      (GetOrCompute<PreparedStats>(
          cache, key,
          [&](RandomSource*) -> Result<std::shared_ptr<const PreparedStats>> {
            SECMED_ASSIGN_OR_RETURN(TableStats stats, compute());
            return std::make_shared<const PreparedStats>(std::move(stats));
          })));
  return entry->stats;
}

double EstimateDomainIntersection(const TableStats& a, const TableStats& b) {
  if (a.join_sketch.empty() || b.join_sketch.empty()) return 0.0;
  if (a.sketch_exact && b.sketch_exact) {
    size_t i = 0, j = 0, common = 0;
    while (i < a.join_sketch.size() && j < b.join_sketch.size()) {
      if (a.join_sketch[i] == b.join_sketch[j]) {
        ++common, ++i, ++j;
      } else if (a.join_sketch[i] < b.join_sketch[j]) {
        ++i;
      } else {
        ++j;
      }
    }
    return double(common);
  }
  // Bottom-k (KMV) estimate: Jaccard from the bottom-k of the union, then
  // |A∩B| = J/(1+J) · (|A| + |B|).
  size_t k = std::min(a.join_sketch.size(), b.join_sketch.size());
  std::vector<uint64_t> merged;
  merged.reserve(a.join_sketch.size() + b.join_sketch.size());
  std::merge(a.join_sketch.begin(), a.join_sketch.end(), b.join_sketch.begin(),
             b.join_sketch.end(), std::back_inserter(merged));
  merged.erase(std::unique(merged.begin(), merged.end()), merged.end());
  if (merged.size() > k) merged.resize(k);
  size_t in_both = 0;
  for (uint64_t fp : merged) {
    bool in_a = std::binary_search(a.join_sketch.begin(), a.join_sketch.end(),
                                   fp);
    bool in_b = std::binary_search(b.join_sketch.begin(), b.join_sketch.end(),
                                   fp);
    if (in_a && in_b) ++in_both;
  }
  double jaccard = k == 0 ? 0.0 : double(in_both) / double(k);
  return jaccard / (1.0 + jaccard) *
         double(a.distinct_join_values + b.distinct_join_values);
}

double EstimateDasSupersetPairs(const TableStats& a, const TableStats& b) {
  if (a.buckets.empty() || b.buckets.empty()) return -1.0;
  double pairs = 0;
  for (const BucketStat& ba : a.buckets) {
    for (const BucketStat& bb : b.buckets) {
      if (ba.partition.Overlaps(bb.partition)) {
        pairs += double(ba.tuples) * double(bb.tuples);
      }
    }
  }
  return pairs;
}

double EstimateJoinTuples(const TableStats& a, const TableStats& b) {
  if (a.distinct_join_values == 0 || b.distinct_join_values == 0) return 0.0;
  double intersection = EstimateDomainIntersection(a, b);
  return intersection * (double(a.tuples) / double(a.distinct_join_values)) *
         (double(b.tuples) / double(b.distinct_join_values));
}

TableStats JoinedStats(const TableStats& a, const TableStats& b,
                       const TableStats& carrier_next_attr) {
  TableStats out = carrier_next_attr;  // domain shape of the next attribute
  out.table = a.table + "*" + b.table;
  out.source.clear();
  out.catalog_version = 0;
  out.columns = a.columns + b.columns - 1;
  out.avg_tuple_bytes = a.avg_tuple_bytes + b.avg_tuple_bytes;

  double joined = EstimateJoinTuples(a, b);
  out.tuples = size_t(joined + 0.5);
  // Rescale the inherited per-bucket tuple counts to the new cardinality;
  // the distinct counts cannot exceed the tuple count.
  double scale = carrier_next_attr.tuples == 0
                     ? 0.0
                     : joined / double(carrier_next_attr.tuples);
  for (BucketStat& bucket : out.buckets) {
    bucket.tuples = size_t(double(bucket.tuples) * scale + 0.5);
    bucket.distinct_values = std::min(bucket.distinct_values, bucket.tuples);
  }
  out.distinct_join_values = std::min(out.distinct_join_values, out.tuples);
  // Inherited through one approximation step: no longer exact.
  out.sketch_exact = false;
  return out;
}

}  // namespace plan
}  // namespace secmed
