#ifndef SECMED_PLAN_LEAKAGE_POLICY_H_
#define SECMED_PLAN_LEAKAGE_POLICY_H_

#include <string>

#include "obs/json.h"
#include "plan/cost_model.h"
#include "util/result.h"

namespace secmed {
namespace plan {

/// What a candidate protocol would disclose beyond the join result — the
/// predicted counterpart of Table 1 (and of the measured LeakageReport in
/// core/leakage.h), evaluated before any ciphertext is sent.
struct PredictedLeakage {
  std::string protocol;

  // Mediator-side disclosures (Table 1, right column).
  /// DAS: the mediator sees |R1|, |R2| and |RC| (one etuple per tuple).
  bool mediator_sees_relation_sizes = false;
  /// DAS: the per-bucket etuple counts are the bucket frequency histogram.
  bool mediator_sees_bucket_frequencies = false;
  /// Commutative/PM: the encrypted value lists reveal |domactive(A)|.
  bool mediator_sees_domain_sizes = false;
  /// Commutative: matching doubly-encrypted lists reveals |dom1 ∩ dom2|.
  bool mediator_sees_intersection_size = false;
  /// Never, for all three protocols (the paper's soundness claim; the
  /// measured reports verify it probe-by-probe).
  bool mediator_sees_plaintext = false;

  // Client-side disclosures (Table 1, left column).
  /// DAS: the client receives and decrypts non-matching candidate pairs.
  bool client_sees_excess_tuples = false;
  /// Candidate pairs delivered per true result tuple (1.0 = exact).
  double client_superset_factor = 1.0;

  obs::JsonValue ToJson() const;
  std::string ToString() const;
};

/// Table 1 semantics for a protocol, with the superset factor taken from
/// the cost estimate.
PredictedLeakage PredictLeakage(const std::string& protocol,
                                const CostEstimate& cost);

/// A declarative disclosure budget restricting which protocols the
/// planner may choose. Grammar: comma-separated terms of
///
///   deny:mediator-relation-sizes      (prunes DAS)
///   deny:mediator-bucket-frequencies  (prunes DAS)
///   deny:mediator-domain-sizes        (prunes commutative and PM)
///   deny:mediator-intersection-size   (prunes commutative)
///   deny:mediator-plaintext           (never violated; documents intent)
///   deny:client-excess-tuples         (prunes DAS)
///   superset<=X                       (numeric cap on the DAS factor)
///
/// The empty spec allows everything.
class LeakagePolicy {
 public:
  LeakagePolicy() = default;

  static Result<LeakagePolicy> Parse(const std::string& spec);

  /// Empty string when `leak` satisfies the budget, else a human-readable
  /// violation (the planner's prune reason).
  std::string Check(const PredictedLeakage& leak) const;

  /// Canonical re-rendering of the parsed spec.
  std::string ToString() const;

  bool empty() const {
    return !deny_relation_sizes_ && !deny_bucket_frequencies_ &&
           !deny_domain_sizes_ && !deny_intersection_size_ &&
           !deny_mediator_plaintext_ && !deny_client_excess_ &&
           max_superset_factor_ < 0;
  }

 private:
  bool deny_relation_sizes_ = false;
  bool deny_bucket_frequencies_ = false;
  bool deny_domain_sizes_ = false;
  bool deny_intersection_size_ = false;
  bool deny_mediator_plaintext_ = false;
  bool deny_client_excess_ = false;
  double max_superset_factor_ = -1.0;  // < 0: unbounded
};

}  // namespace plan
}  // namespace secmed

#endif  // SECMED_PLAN_LEAKAGE_POLICY_H_
