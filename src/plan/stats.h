#ifndef SECMED_PLAN_STATS_H_
#define SECMED_PLAN_STATS_H_

#include <string>
#include <vector>

#include "core/prepared.h"
#include "core/protocol.h"
#include "das/partition.h"
#include "mediation/datasource.h"
#include "obs/json.h"
#include "relational/relation.h"
#include "util/result.h"

namespace secmed {
namespace plan {

/// One DAS bucket of a relation's join-attribute histogram: the partition
/// boundaries the active-domain partitioner would produce, plus how many
/// distinct values and tuples of the relation fall into it. The cost
/// model derives the mediator's superset size |RC| from overlapping
/// bucket pairs (Section 3: the server join matches index values, so
/// every tuple pair whose buckets can share a value survives qS).
struct BucketStat {
  DasPartition partition;
  size_t distinct_values = 0;
  size_t tuples = 0;
};

/// Fingerprints kept per join-domain sketch. Active domains under the cap
/// make the sketch exact (it then *is* the hashed domain); larger ones
/// degrade to a bottom-k (KMV) sketch with the standard overlap scaling.
inline constexpr size_t kJoinSketchCap = 4096;

/// Per-relation planner statistics: the inputs of the Section 6 cost
/// formulas. Collected at (or on behalf of) the owning datasource so the
/// raw relation never leaves it, versioned by DataSource::catalog_version
/// and cached in the prepared-dataset registry under
/// "plan.stats/<source>/v<version>/<digest(params)>".
struct TableStats {
  std::string table;
  std::string source;  // owning datasource; empty for intermediates
  uint64_t catalog_version = 0;

  size_t tuples = 0;                // n_i  (|R_i|)
  size_t columns = 0;
  size_t distinct_join_values = 0;  // d_i  (|domactive(A)|)
  double avg_tuple_bytes = 0.0;     // canonical EncodeTuple size

  std::string join_attribute;
  /// DAS bucket histogram from the active-domain partitioner (empty when
  /// the strategy cannot partition this domain, e.g. equi-width over
  /// strings — DAS is then not plannable for this table).
  std::vector<BucketStat> buckets;

  /// Sorted 64-bit fingerprints (truncated SHA-256 of the canonical value
  /// encoding) of distinct join values; bottom-k when capped.
  std::vector<uint64_t> join_sketch;
  bool sketch_exact = true;

  obs::JsonValue ToJson() const;
};

/// Options the statistics collector needs from the candidate protocols:
/// the DAS bucketing the histogram must mirror.
struct StatsOptions {
  PartitionStrategy das_strategy = PartitionStrategy::kEquiDepth;
  size_t das_partitions = 4;
};

/// Collects statistics over a plaintext relation. `join_attribute` is the
/// (base) column the next mediation joins on.
Result<TableStats> CollectStats(const Relation& rel,
                                const std::string& join_attribute,
                                const StatsOptions& options);

/// Collects statistics for `table` at datasource `source`, memoized in
/// `cache` (may be null: compute every time) under a key embedding the
/// source's catalog version — any AddRelation/SetPolicy retires the old
/// stats, exactly like the prepared delivery entries.
Result<TableStats> CollectSourceStats(const DataSource& source,
                                      const std::string& table,
                                      const std::string& join_attribute,
                                      const StatsOptions& options,
                                      PreparedCache* cache);

/// Estimated |domactive(R1.A) ∩ domactive(R2.A)| from the two sketches.
/// Exact when both sketches are exact (the common case: domains under
/// kJoinSketchCap); otherwise a bottom-k overlap estimate.
double EstimateDomainIntersection(const TableStats& a, const TableStats& b);

/// Predicted DAS server-result size |RC| in tuple pairs: the sum over
/// overlapping bucket pairs of the tuple-count products. Returns a
/// negative value when either side has no bucket histogram (DAS not
/// plannable).
double EstimateDasSupersetPairs(const TableStats& a, const TableStats& b);

/// Expected true join cardinality under per-value uniformity:
/// I · (n1/d1) · (n2/d2) with I the estimated domain intersection.
double EstimateJoinTuples(const TableStats& a, const TableStats& b);

/// Synthesizes statistics for the intermediate relation `a ⋈ b` as seen
/// by the next cascade level. `carrier_next_attr` is the base-table
/// statistics (collected on the *next* level's join attribute) of the
/// side that carries that attribute into the intermediate: its sketch
/// and histogram describe the attribute's domain shape, while the tuple
/// counts are rescaled to the estimated join cardinality of a ⋈ b.
TableStats JoinedStats(const TableStats& a, const TableStats& b,
                       const TableStats& carrier_next_attr);

}  // namespace plan
}  // namespace secmed

#endif  // SECMED_PLAN_STATS_H_
