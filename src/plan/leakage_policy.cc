#include "plan/leakage_policy.h"

#include <cstdlib>
#include <sstream>
#include <vector>

namespace secmed {
namespace plan {

namespace {

std::string Trim(const std::string& s) {
  size_t b = s.find_first_not_of(" \t");
  if (b == std::string::npos) return "";
  size_t e = s.find_last_not_of(" \t");
  return s.substr(b, e - b + 1);
}

}  // namespace

obs::JsonValue PredictedLeakage::ToJson() const {
  return obs::JsonValue::Object({
      {"protocol", obs::JsonValue::String(protocol)},
      {"mediator_sees_relation_sizes",
       obs::JsonValue::Bool(mediator_sees_relation_sizes)},
      {"mediator_sees_bucket_frequencies",
       obs::JsonValue::Bool(mediator_sees_bucket_frequencies)},
      {"mediator_sees_domain_sizes",
       obs::JsonValue::Bool(mediator_sees_domain_sizes)},
      {"mediator_sees_intersection_size",
       obs::JsonValue::Bool(mediator_sees_intersection_size)},
      {"mediator_sees_plaintext",
       obs::JsonValue::Bool(mediator_sees_plaintext)},
      {"client_sees_excess_tuples",
       obs::JsonValue::Bool(client_sees_excess_tuples)},
      {"client_superset_factor",
       obs::JsonValue::Number(client_superset_factor)},
  });
}

std::string PredictedLeakage::ToString() const {
  std::ostringstream out;
  out << protocol << ": mediator sees {";
  bool first = true;
  auto add = [&](bool flag, const char* what) {
    if (!flag) return;
    if (!first) out << ", ";
    out << what;
    first = false;
  };
  add(mediator_sees_relation_sizes, "relation sizes");
  add(mediator_sees_bucket_frequencies, "bucket frequencies");
  add(mediator_sees_domain_sizes, "domain sizes");
  add(mediator_sees_intersection_size, "intersection size");
  add(mediator_sees_plaintext, "PLAINTEXT");
  if (first) out << "nothing";
  out << "}, client superset factor " << client_superset_factor;
  return out.str();
}

PredictedLeakage PredictLeakage(const std::string& protocol,
                                const CostEstimate& cost) {
  PredictedLeakage leak;
  leak.protocol = protocol;
  if (protocol == "das") {
    leak.mediator_sees_relation_sizes = true;
    leak.mediator_sees_bucket_frequencies = true;
    leak.client_sees_excess_tuples = true;
    leak.client_superset_factor = cost.client_superset_factor;
  } else if (protocol == "commutative") {
    leak.mediator_sees_domain_sizes = true;
    leak.mediator_sees_intersection_size = true;
  } else if (protocol == "pm") {
    // The mediator sees the polynomial degrees — the domain sizes.
    leak.mediator_sees_domain_sizes = true;
  }
  return leak;
}

Result<LeakagePolicy> LeakagePolicy::Parse(const std::string& spec) {
  LeakagePolicy policy;
  std::stringstream stream(spec);
  std::string term;
  while (std::getline(stream, term, ',')) {
    term = Trim(term);
    if (term.empty()) continue;
    if (term == "deny:mediator-relation-sizes") {
      policy.deny_relation_sizes_ = true;
    } else if (term == "deny:mediator-bucket-frequencies") {
      policy.deny_bucket_frequencies_ = true;
    } else if (term == "deny:mediator-domain-sizes") {
      policy.deny_domain_sizes_ = true;
    } else if (term == "deny:mediator-intersection-size") {
      policy.deny_intersection_size_ = true;
    } else if (term == "deny:mediator-plaintext") {
      policy.deny_mediator_plaintext_ = true;
    } else if (term == "deny:client-excess-tuples") {
      policy.deny_client_excess_ = true;
    } else if (term.rfind("superset<=", 0) == 0) {
      const std::string number = term.substr(10);
      char* end = nullptr;
      double cap = std::strtod(number.c_str(), &end);
      if (number.empty() || end == nullptr || *end != '\0' || cap <= 0) {
        return Status::InvalidArgument("leakage policy: bad superset cap '" +
                                       term + "'");
      }
      policy.max_superset_factor_ = cap;
    } else {
      return Status::InvalidArgument(
          "leakage policy: unknown term '" + term +
          "' (see docs/PLANNER.md for the budget grammar)");
    }
  }
  return policy;
}

std::string LeakagePolicy::Check(const PredictedLeakage& leak) const {
  if (deny_relation_sizes_ && leak.mediator_sees_relation_sizes) {
    return "mediator would learn the relation sizes";
  }
  if (deny_bucket_frequencies_ && leak.mediator_sees_bucket_frequencies) {
    return "mediator would learn the bucket frequency histogram";
  }
  if (deny_domain_sizes_ && leak.mediator_sees_domain_sizes) {
    return "mediator would learn the active-domain sizes";
  }
  if (deny_intersection_size_ && leak.mediator_sees_intersection_size) {
    return "mediator would learn the domain intersection size";
  }
  if (deny_mediator_plaintext_ && leak.mediator_sees_plaintext) {
    return "mediator would see plaintext";
  }
  if (deny_client_excess_ && leak.client_sees_excess_tuples) {
    return "client would receive non-matching tuples";
  }
  if (max_superset_factor_ > 0 &&
      leak.client_superset_factor > max_superset_factor_) {
    std::ostringstream out;
    out << "client superset factor " << leak.client_superset_factor
        << " exceeds the budget " << max_superset_factor_;
    return out.str();
  }
  return "";
}

std::string LeakagePolicy::ToString() const {
  std::vector<std::string> terms;
  if (deny_relation_sizes_) terms.push_back("deny:mediator-relation-sizes");
  if (deny_bucket_frequencies_) {
    terms.push_back("deny:mediator-bucket-frequencies");
  }
  if (deny_domain_sizes_) terms.push_back("deny:mediator-domain-sizes");
  if (deny_intersection_size_) {
    terms.push_back("deny:mediator-intersection-size");
  }
  if (deny_mediator_plaintext_) terms.push_back("deny:mediator-plaintext");
  if (deny_client_excess_) terms.push_back("deny:client-excess-tuples");
  if (max_superset_factor_ > 0) {
    std::ostringstream cap;
    cap << "superset<=" << max_superset_factor_;
    terms.push_back(cap.str());
  }
  std::string out;
  for (size_t i = 0; i < terms.size(); ++i) {
    if (i > 0) out += ",";
    out += terms[i];
  }
  return out;
}

}  // namespace plan
}  // namespace secmed
