#ifndef SECMED_PLAN_PLANNER_H_
#define SECMED_PLAN_PLANNER_H_

#include <string>
#include <vector>

#include "core/protocol.h"
#include "obs/json.h"
#include "plan/cost_model.h"
#include "plan/leakage_policy.h"
#include "plan/stats.h"

namespace secmed {
namespace plan {

/// One mediation level of a candidate plan: the delivery of
/// left ⋈ right under one protocol.
struct PlanLevel {
  std::string left;   // table or intermediate label ("t1*t2")
  std::string right;
  std::string join_attribute;
  std::string protocol;
  CostEstimate cost;
  PredictedLeakage leakage;
};

/// A fully costed candidate: a join order plus a protocol per level.
struct CandidatePlan {
  std::vector<PlanLevel> levels;
  /// Execution order of the query's JOIN clauses this candidate was
  /// costed and policy-checked against: level L mediates written clause
  /// join_order[L]. Handed to CascadeExecutor::SetJoinOrder so the run
  /// matches the plan (the identity for the written order).
  std::vector<size_t> join_order;
  double total_wall_ms = 0.0;
  bool pruned = false;          // a level violates the leakage policy
  std::string prune_reason;
  bool feasible = true;         // a level's protocol cannot run at all
  /// True for the synthesized best-per-level candidate of an order (as
  /// opposed to the uniform single-protocol candidates that mirror the
  /// fixed --protocol choices).
  bool mixed = false;

  /// "commutative" or "das+commutative" (per-level, in order).
  std::string ProtocolsLabel() const;
};

/// Measured counterpart for predicted-vs-actual reconciliation, taken
/// from the RunReport / QueryOutcome of the executed plan.
struct PlanActuals {
  double wall_ms = -1.0;
  double total_bytes = -1.0;
  double result_rows = -1.0;
  double messages = -1.0;
};

/// The planner's EXPLAIN output: every candidate considered, the chosen
/// plan, and (after execution) the reconciled actuals.
struct PlanChoice {
  std::string sql;
  std::string policy;
  CandidatePlan chosen;
  std::vector<CandidatePlan> candidates;

  /// Per-level protocol names of the chosen plan, in cascade order —
  /// the schedule handed to CascadeExecutor. Size 1 for a single join.
  /// Level L of the schedule mediates written JOIN clause
  /// chosen.join_order[L]; executors must install both the schedule and
  /// the order, or the costs/leakage validated here apply to the wrong
  /// join pairs.
  std::vector<std::string> ProtocolSchedule() const;

  /// Structured EXPLAIN; `actuals` (optional) adds the measured section.
  obs::JsonValue ToJson(const PlanActuals* actuals = nullptr) const;

  /// Aligned text table of all candidates (the `explain` subcommand).
  std::string ToTable() const;
};

struct PlannerOptions {
  ProtocolParams params;
  /// LeakagePolicy spec (see leakage_policy.h); empty allows everything.
  std::string policy;
  /// Candidate delivery protocols, in tie-break order.
  std::vector<std::string> protocols = {"das", "commutative", "pm"};
  /// Enumerate alternative join orders for all-NATURAL k-way cascades
  /// (the given order is always a candidate).
  bool enumerate_orders = true;
  /// Statistics options; das_strategy/das_partitions of `params` are used
  /// so the histogram matches what the DAS candidate would build.
};

/// The cost-based protocol (and join-order) selector. Statistics are
/// collected through the datasources in the supplied context and cached
/// in its prepared registry when attached.
class Planner {
 public:
  Planner(CostModel model, PlannerOptions options)
      : model_(std::move(model)), options_(std::move(options)) {}

  /// Plans `sql` over `ctx` (sources + optional prepared cache + obs).
  /// Fails with kFailedPrecondition when the leakage policy prunes every
  /// feasible candidate.
  Result<PlanChoice> Plan(const std::string& sql, ProtocolContext* ctx);

  const CostModel& model() const { return model_; }
  const PlannerOptions& options() const { return options_; }

 private:
  CostModel model_;
  PlannerOptions options_;
};

}  // namespace plan
}  // namespace secmed

#endif  // SECMED_PLAN_PLANNER_H_
