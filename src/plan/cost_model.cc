#include "plan/cost_model.h"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <sstream>

namespace secmed {
namespace plan {

namespace {

/// Modular-exponentiation work scales ~cubically in the modulus size
/// relative to the calibrated reference.
double CubicScale(size_t bits, size_t ref_bits) {
  double r = double(bits) / double(ref_bits);
  return r * r * r;
}

/// Framing overhead per protocol message (header + field prefixes +
/// party/type strings; net/wire.h).
constexpr double kFrameOverheadBytes = 64.0;

/// Frame counts of the fixed protocol phases (request phase Listing 1 +
/// delivery round trips). Constants, not per-tuple: all bulk data rides
/// inside these frames and is priced per byte.
constexpr double kRequestFrames = 6.0;
constexpr double kDasDeliveryFrames = 8.0;
constexpr double kCommDeliveryFrames = 10.0;
constexpr double kPmDeliveryFrames = 10.0;

double ReadNumber(const obs::JsonValue& v, const std::string& key,
                  double fallback) {
  const obs::JsonValue* f = v.Find(key);
  return (f != nullptr && f->is_number()) ? f->number() : fallback;
}

std::string ReadString(const obs::JsonValue& v, const std::string& key) {
  const obs::JsonValue* f = v.Find(key);
  return (f != nullptr && f->is_string()) ? f->string() : std::string();
}

}  // namespace

obs::JsonValue CalibrationProfile::ToJson() const {
  return obs::JsonValue::Object({
      {"schema", obs::JsonValue::String("secmed.calibration.v1")},
      {"paillier_encrypt_us", obs::JsonValue::Number(paillier_encrypt_us)},
      {"paillier_decrypt_us", obs::JsonValue::Number(paillier_decrypt_us)},
      {"paillier_scalar_mul_us",
       obs::JsonValue::Number(paillier_scalar_mul_us)},
      {"commutative_exp_us", obs::JsonValue::Number(commutative_exp_us)},
      {"elgamal_encrypt_us", obs::JsonValue::Number(elgamal_encrypt_us)},
      {"hybrid_encrypt_us", obs::JsonValue::Number(hybrid_encrypt_us)},
      {"hybrid_decrypt_us", obs::JsonValue::Number(hybrid_decrypt_us)},
      {"hybrid_byte_ns", obs::JsonValue::Number(hybrid_byte_ns)},
      {"sha256_byte_ns", obs::JsonValue::Number(sha256_byte_ns)},
      {"wire_byte_ns", obs::JsonValue::Number(wire_byte_ns)},
      {"frame_rtt_us", obs::JsonValue::Number(frame_rtt_us)},
      {"paillier_ref_bits", obs::JsonValue::Number(double(paillier_ref_bits))},
      {"group_ref_bits", obs::JsonValue::Number(double(group_ref_bits))},
      {"rsa_ref_bits", obs::JsonValue::Number(double(rsa_ref_bits))},
      {"host", obs::JsonValue::String(host)},
      {"build", obs::JsonValue::String(build)},
  });
}

Result<CalibrationProfile> CalibrationProfile::FromJson(
    const obs::JsonValue& v) {
  if (!v.is_object()) {
    return Status::InvalidArgument("calibration profile: not a JSON object");
  }
  std::string schema = ReadString(v, "schema");
  if (schema != "secmed.calibration.v1") {
    return Status::InvalidArgument("calibration profile: unknown schema '" +
                                   schema + "'");
  }
  CalibrationProfile defaults;
  CalibrationProfile p;
  p.paillier_encrypt_us =
      ReadNumber(v, "paillier_encrypt_us", defaults.paillier_encrypt_us);
  p.paillier_decrypt_us =
      ReadNumber(v, "paillier_decrypt_us", defaults.paillier_decrypt_us);
  p.paillier_scalar_mul_us =
      ReadNumber(v, "paillier_scalar_mul_us", defaults.paillier_scalar_mul_us);
  p.commutative_exp_us =
      ReadNumber(v, "commutative_exp_us", defaults.commutative_exp_us);
  p.elgamal_encrypt_us =
      ReadNumber(v, "elgamal_encrypt_us", defaults.elgamal_encrypt_us);
  p.hybrid_encrypt_us =
      ReadNumber(v, "hybrid_encrypt_us", defaults.hybrid_encrypt_us);
  p.hybrid_decrypt_us =
      ReadNumber(v, "hybrid_decrypt_us", defaults.hybrid_decrypt_us);
  p.hybrid_byte_ns = ReadNumber(v, "hybrid_byte_ns", defaults.hybrid_byte_ns);
  p.sha256_byte_ns = ReadNumber(v, "sha256_byte_ns", defaults.sha256_byte_ns);
  p.wire_byte_ns = ReadNumber(v, "wire_byte_ns", defaults.wire_byte_ns);
  p.frame_rtt_us = ReadNumber(v, "frame_rtt_us", defaults.frame_rtt_us);
  p.paillier_ref_bits =
      size_t(ReadNumber(v, "paillier_ref_bits", 1024));
  p.group_ref_bits = size_t(ReadNumber(v, "group_ref_bits", 512));
  p.rsa_ref_bits = size_t(ReadNumber(v, "rsa_ref_bits", 1024));
  p.host = ReadString(v, "host");
  p.build = ReadString(v, "build");
  return p;
}

Result<CalibrationProfile> CalibrationProfile::Load(const std::string& path) {
  std::ifstream in(path);
  if (!in) {
    return Status::NotFound("calibration profile not readable: " + path);
  }
  std::stringstream buffer;
  buffer << in.rdbuf();
  obs::JsonValue doc;
  std::string error;
  if (!obs::ParseJson(buffer.str(), &doc, &error)) {
    return Status::InvalidArgument("calibration profile " + path + ": " +
                                   error);
  }
  return FromJson(doc);
}

Status CalibrationProfile::Save(const std::string& path) const {
  std::ofstream out(path);
  if (!out) return Status::Internal("cannot write " + path);
  out << obs::RenderJson(ToJson()) << "\n";
  return out ? Status::OK() : Status::Internal("short write to " + path);
}

obs::JsonValue CostEstimate::ToJson() const {
  std::map<std::string, obs::JsonValue> breakdown;
  for (const auto& [k, ms] : breakdown_ms) {
    breakdown.emplace(k, obs::JsonValue::Number(ms));
  }
  return obs::JsonValue::Object({
      {"protocol", obs::JsonValue::String(protocol)},
      {"wall_ms", obs::JsonValue::Number(wall_ms)},
      {"source_ms", obs::JsonValue::Number(source_ms)},
      {"mediator_ms", obs::JsonValue::Number(mediator_ms)},
      {"client_ms", obs::JsonValue::Number(client_ms)},
      {"network_ms", obs::JsonValue::Number(network_ms)},
      {"client_decrypt_ops", obs::JsonValue::Number(client_decrypt_ops)},
      {"mediator_bytes", obs::JsonValue::Number(mediator_bytes)},
      {"client_bytes", obs::JsonValue::Number(client_bytes)},
      {"frames", obs::JsonValue::Number(frames)},
      {"expected_result_tuples",
       obs::JsonValue::Number(expected_result_tuples)},
      {"client_superset_factor",
       obs::JsonValue::Number(client_superset_factor)},
      {"feasible", obs::JsonValue::Bool(feasible)},
      {"infeasible_reason", obs::JsonValue::String(infeasible_reason)},
      {"breakdown_ms", obs::JsonValue::Object(std::move(breakdown))},
  });
}

CostEstimate CostModel::Predict(const std::string& protocol,
                                const TableStats& s1, const TableStats& s2,
                                const ProtocolParams& params) const {
  CostEstimate est;
  if (protocol == "das") {
    est = PredictDas(s1, s2, params);
  } else if (protocol == "commutative") {
    est = PredictCommutative(s1, s2, params);
  } else if (protocol == "pm") {
    est = PredictPm(s1, s2, params);
  } else {
    est.feasible = false;
    est.infeasible_reason = "unknown protocol '" + protocol + "'";
  }
  est.protocol = protocol;
  // Shared totals: the request phase plus the per-protocol delivery terms
  // accumulated by the Predict* helpers.
  est.frames += kRequestFrames;
  est.mediator_bytes += 512;  // SQL + credentials + partial queries
  est.network_ms =
      (est.mediator_bytes + est.client_bytes +
       est.frames * kFrameOverheadBytes) *
          profile_.wire_byte_ns * 1e-6 +
      est.frames * profile_.frame_rtt_us * 1e-3;
  est.wall_ms =
      est.source_ms + est.mediator_ms + est.client_ms + est.network_ms;
  return est;
}

// ---------------------------------------------------------------------------
// DAS (Section 3): sources seal every tuple individually plus the bucket
// index tables; the mediator joins on bucket identifiers, producing the
// superset RC of all tuple pairs whose buckets overlap; the client
// decrypts RC and filters the false positives.
CostEstimate CostModel::PredictDas(const TableStats& s1, const TableStats& s2,
                                   const ProtocolParams& params) const {
  CostEstimate est;
  double superset = EstimateDasSupersetPairs(s1, s2);
  if (superset < 0) {
    est.feasible = false;
    est.infeasible_reason =
        "no DAS bucket histogram (domain not partitionable under the "
        "configured strategy)";
    return est;
  }
  double n1 = double(s1.tuples), n2 = double(s2.tuples);
  double b1 = s1.avg_tuple_bytes, b2 = s2.avg_tuple_bytes;
  double result = EstimateJoinTuples(s1, s2);
  double rsa_scale = CubicScale(params.rsa_bits, profile_.rsa_ref_bits);
  double seal_overhead = double(params.rsa_bits) / 8.0 + 60.0;

  // Sources: per-tuple hybrid seals + partition-identifier hashes + two
  // sealed index tables.
  double seals = n1 + n2 + 2.0;
  double sealed_bytes = n1 * b1 + n2 * b2 + 1024.0;
  double seal_ms = seals * profile_.hybrid_encrypt_us * rsa_scale * 1e-3 +
                   sealed_bytes * profile_.hybrid_byte_ns * 1e-6;
  double hash_ms =
      (n1 + n2) * 24.0 * profile_.sha256_byte_ns * 1e-6;  // id per tuple
  est.source_ms = seal_ms + hash_ms;
  est.breakdown_ms["das.seal_etuples"] = seal_ms;
  est.breakdown_ms["das.partition_ids"] = hash_ms;

  // Mediator: plaintext index-value join over the encrypted relations.
  est.mediator_ms = superset * 2e-4;  // ~0.2 µs per surviving pair
  est.breakdown_ms["das.mediator_match"] = est.mediator_ms;

  double etuple1 = b1 + seal_overhead, etuple2 = b2 + seal_overhead;
  double relations_bytes = n1 * etuple1 + n2 * etuple2 + 1024.0;
  double rc_bytes = superset * (etuple1 + etuple2);
  est.mediator_bytes = relations_bytes + rc_bytes;
  est.client_bytes = rc_bytes + 1024.0;
  est.frames = kDasDeliveryFrames;

  // Client: RC pairs reference n1+n2 distinct etuples, and repeated
  // blobs are decrypted once (memoized via the prepared cache), so the
  // RSA work is bounded by the distinct count; the per-byte work is not.
  double distinct_decrypts = std::min(2.0 * superset, n1 + n2) + 2.0;
  double decrypt_ms =
      distinct_decrypts * profile_.hybrid_decrypt_us * rsa_scale * 1e-3 +
      superset * (b1 + b2) * profile_.hybrid_byte_ns * 1e-6;
  double filter_ms = superset * 5e-4;  // qC re-evaluation per pair
  est.client_ms = decrypt_ms + filter_ms;
  est.breakdown_ms["das.client_decrypt"] = decrypt_ms;
  est.breakdown_ms["das.client_filter"] = filter_ms;

  est.client_decrypt_ops = superset;
  est.expected_result_tuples = result;
  est.client_superset_factor = superset / std::max(result, 1.0);
  return est;
}

// ---------------------------------------------------------------------------
// Commutative encryption (Section 4): each source encrypts its active
// join domain (one exponentiation per distinct value), the mediator
// routes the lists for the second encryption (one more exponentiation
// per value), matches the doubly-encrypted lists exactly, and delivers
// the hybrid-sealed tuple sets of matched values to the client.
CostEstimate CostModel::PredictCommutative(const TableStats& s1,
                                           const TableStats& s2,
                                           const ProtocolParams& params) const {
  CostEstimate est;
  double d1 = double(s1.distinct_join_values);
  double d2 = double(s2.distinct_join_values);
  double n1 = double(s1.tuples), n2 = double(s2.tuples);
  double b1 = s1.avg_tuple_bytes, b2 = s2.avg_tuple_bytes;
  double intersection = EstimateDomainIntersection(s1, s2);
  double result = EstimateJoinTuples(s1, s2);
  double group_scale = CubicScale(params.group_bits, profile_.group_ref_bits);
  double rsa_scale = CubicScale(params.rsa_bits, profile_.rsa_ref_bits);
  double group_bytes = double(params.group_bits) / 8.0;
  double seal_overhead = double(params.rsa_bits) / 8.0 + 60.0;

  // Sources: hash-to-group + first encryption of the own domain, second
  // encryption of the peer's list — 2(d1+d2) commutative exponentiations
  // plus d1+d2 sealed tuple sets.
  double exps = 2.0 * (d1 + d2);
  double exp_ms = exps * profile_.commutative_exp_us * group_scale * 1e-3;
  double seal_ms =
      (d1 + d2) * profile_.hybrid_encrypt_us * rsa_scale * 1e-3 +
      (n1 * b1 + n2 * b2) * profile_.hybrid_byte_ns * 1e-6;
  est.source_ms = exp_ms + seal_ms;
  est.breakdown_ms["comm.exponentiations"] = exp_ms;
  est.breakdown_ms["comm.seal_tuple_sets"] = seal_ms;

  // Mediator: exact match of the doubly-encrypted value lists.
  est.mediator_ms = (d1 + d2) * 1e-3;
  est.breakdown_ms["comm.mediator_match"] = est.mediator_ms;

  double lists_bytes = 2.0 * (d1 + d2) * group_bytes;
  double sets_bytes =
      n1 * b1 + n2 * b2 + (d1 + d2) * seal_overhead;
  double matched_bytes =
      intersection * (n1 / std::max(d1, 1.0) * b1 + n2 / std::max(d2, 1.0) * b2 +
                      2.0 * seal_overhead);
  est.mediator_bytes = 2.0 * lists_bytes + sets_bytes + matched_bytes;
  est.client_bytes = matched_bytes;
  est.frames = kCommDeliveryFrames;

  // Client: open the two sealed tuple sets of each matched value and
  // build the pairwise combinations.
  double decrypt_ms =
      2.0 * intersection * profile_.hybrid_decrypt_us * rsa_scale * 1e-3 +
      matched_bytes * profile_.hybrid_byte_ns * 1e-6;
  double join_ms = result * 5e-4;
  est.client_ms = decrypt_ms + join_ms;
  est.breakdown_ms["comm.client_open_sets"] = decrypt_ms;
  est.breakdown_ms["comm.client_join"] = join_ms;

  est.client_decrypt_ops = result;
  est.expected_result_tuples = result;
  est.client_superset_factor = 1.0;
  return est;
}

// ---------------------------------------------------------------------------
// Private matching (Section 5): each source Paillier-encrypts the
// coefficients of the polynomial with its domain as roots (degree d_i),
// blindly evaluates the peer polynomial at each own value (Horner:
// one ciphertext exponentiation per coefficient), and masks the result;
// the client decrypts all d1+d2 evaluations and opens the matched
// session-key-sealed tuple sets.
CostEstimate CostModel::PredictPm(const TableStats& s1, const TableStats& s2,
                                  const ProtocolParams& params) const {
  CostEstimate est;
  double d1 = double(s1.distinct_join_values);
  double d2 = double(s2.distinct_join_values);
  double n1 = double(s1.tuples), n2 = double(s2.tuples);
  double b1 = s1.avg_tuple_bytes, b2 = s2.avg_tuple_bytes;
  double intersection = EstimateDomainIntersection(s1, s2);
  double result = EstimateJoinTuples(s1, s2);
  double p_scale = CubicScale(params.paillier_bits, profile_.paillier_ref_bits);
  double ct_bytes = 2.0 * double(params.paillier_bits) / 8.0;

  // Sources: coefficient encryption plus one payload encryption per
  // evaluation, and the O(d1·d2) blind Horner evaluations.
  double encs = (d1 + 1.0) + (d2 + 1.0) + (d1 + d2);
  double horner_steps = 2.0 * d1 * d2 + (d1 + d2);  // + masking exponent
  double enc_ms = encs * profile_.paillier_encrypt_us * p_scale * 1e-3;
  double eval_ms =
      horner_steps * profile_.paillier_scalar_mul_us * p_scale * 1e-3;
  double seal_ms = (n1 * b1 + n2 * b2) * profile_.hybrid_byte_ns * 1e-6;
  est.source_ms = enc_ms + eval_ms + seal_ms;
  est.breakdown_ms["pm.encrypt_coeffs"] = enc_ms;
  est.breakdown_ms["pm.blind_evaluate"] = eval_ms;
  est.breakdown_ms["pm.seal_tuple_sets"] = seal_ms;

  // Mediator: pure routing of ciphertext lists.
  est.mediator_ms = (d1 + d2) * 1e-3;
  est.breakdown_ms["pm.mediator_route"] = est.mediator_ms;

  double coeff_bytes = ((d1 + 1.0) + (d2 + 1.0)) * ct_bytes;
  double eval_bytes = (d1 + d2) * ct_bytes;
  double sets_bytes = n1 * b1 + n2 * b2 + (d1 + d2) * 64.0;
  est.mediator_bytes = 2.0 * coeff_bytes + eval_bytes + sets_bytes;
  est.client_bytes = eval_bytes + sets_bytes;
  est.frames = kPmDeliveryFrames;

  // Client: one Paillier decryption per evaluation (matched or not),
  // then open the matched tuple sets with the recovered session keys.
  double decrypt_ms =
      (d1 + d2) * profile_.paillier_decrypt_us * p_scale * 1e-3;
  double open_ms = intersection *
                       (n1 / std::max(d1, 1.0) * b1 +
                        n2 / std::max(d2, 1.0) * b2) *
                       profile_.hybrid_byte_ns * 1e-6 +
                   result * 5e-4;
  est.client_ms = decrypt_ms + open_ms;
  est.breakdown_ms["pm.client_decrypt"] = decrypt_ms;
  est.breakdown_ms["pm.client_open_sets"] = open_ms;

  est.client_decrypt_ops = d1 + d2;
  est.expected_result_tuples = result;
  est.client_superset_factor = 1.0;
  return est;
}

}  // namespace plan
}  // namespace secmed
