#include "plan/calibrate.h"

#include <algorithm>
#include <chrono>
#include <cmath>
#include <functional>
#include <sstream>

#include "crypto/commutative.h"
#include "crypto/drbg.h"
#include "crypto/elgamal.h"
#include "crypto/group_params.h"
#include "crypto/hybrid.h"
#include "crypto/paillier.h"
#include "crypto/rsa.h"
#include "crypto/sha256.h"
#include "net/bus.h"

namespace secmed {
namespace plan {

namespace {

/// Median wall-clock microseconds of one call to `fn`, sampled
/// `samples` times with `reps` inner repetitions each.
double MedianMicros(size_t samples, size_t reps,
                    const std::function<void()>& fn) {
  samples = std::max<size_t>(samples, 1);
  reps = std::max<size_t>(reps, 1);
  std::vector<double> measured;
  measured.reserve(samples);
  for (size_t s = 0; s < samples; ++s) {
    auto begin = std::chrono::steady_clock::now();
    for (size_t r = 0; r < reps; ++r) fn();
    auto end = std::chrono::steady_clock::now();
    measured.push_back(
        std::chrono::duration<double, std::micro>(end - begin).count() /
        double(reps));
  }
  std::nth_element(measured.begin(), measured.begin() + measured.size() / 2,
                   measured.end());
  return measured[measured.size() / 2];
}

}  // namespace

Result<CalibrationProfile> RunCalibration(const CalibrateOptions& options) {
  CalibrationProfile profile;
  profile.paillier_ref_bits = options.paillier_bits;
  profile.group_ref_bits = options.group_bits;
  profile.rsa_ref_bits = options.rsa_bits;
#ifdef NDEBUG
  profile.build = "optimized";
#else
  profile.build = "unoptimized";
#endif

  HmacDrbg rng(ToBytes("secmed-" + options.seed_label));

  // --- Paillier (PM protocol): encryption, CRT decryption, one Horner
  // step (ciphertext exponentiation by an attribute-sized scalar).
  SECMED_ASSIGN_OR_RETURN(PaillierKeyPair paillier,
                          PaillierGenerateKey(options.paillier_bits, &rng));
  BigInt message(uint64_t(123456789));
  profile.paillier_encrypt_us =
      MedianMicros(options.samples, options.reps, [&] {
        (void)paillier.public_key.Encrypt(message, &rng);
      });
  SECMED_ASSIGN_OR_RETURN(BigInt ciphertext,
                          paillier.public_key.Encrypt(message, &rng));
  profile.paillier_decrypt_us =
      MedianMicros(options.samples, options.reps, [&] {
        (void)paillier.private_key.Decrypt(ciphertext);
      });
  BigInt scalar = BigInt::RandomWithBits(32, &rng);
  profile.paillier_scalar_mul_us =
      MedianMicros(options.samples, options.reps, [&] {
        ciphertext = paillier.public_key.ScalarMul(ciphertext, scalar);
      });

  // --- Commutative exponentiation (Pohlig–Hellman over QR(p)).
  SECMED_ASSIGN_OR_RETURN(QrGroup group, StandardGroup(options.group_bits));
  CommutativeKey comm_key = CommutativeKey::Generate(group, &rng);
  BigInt element = group.HashToGroup(ToBytes("calibration-element"));
  profile.commutative_exp_us =
      MedianMicros(options.samples, options.reps, [&] {
        element = comm_key.Encrypt(element);
      });

  // --- ElGamal encryption (aggregation extension).
  ElGamalKeyPair elgamal = ElGamalGenerateKey(group, &rng);
  profile.elgamal_encrypt_us =
      MedianMicros(options.samples, options.reps, [&] {
        (void)elgamal.public_key.Encrypt(7, &rng);
      });

  // --- Hybrid sealing: small and large payloads split the per-call RSA
  // cost from the per-byte symmetric cost.
  SECMED_ASSIGN_OR_RETURN(RsaPrivateKey rsa_key,
                          RsaGenerateKey(options.rsa_bits, &rng));
  RsaPublicKey rsa_pub = rsa_key.PublicKey();
  const Bytes small_payload = rng.Generate(64);
  const Bytes large_payload = rng.Generate(16384);
  double enc_small = MedianMicros(options.samples, options.reps, [&] {
    (void)HybridEncrypt(rsa_pub, small_payload, &rng);
  });
  double enc_large = MedianMicros(options.samples, options.reps, [&] {
    (void)HybridEncrypt(rsa_pub, large_payload, &rng);
  });
  SECMED_ASSIGN_OR_RETURN(Bytes sealed_small,
                          HybridEncrypt(rsa_pub, small_payload, &rng));
  SECMED_ASSIGN_OR_RETURN(Bytes sealed_large,
                          HybridEncrypt(rsa_pub, large_payload, &rng));
  double dec_small = MedianMicros(options.samples, options.reps, [&] {
    (void)HybridDecrypt(rsa_key, sealed_small);
  });
  double dec_large = MedianMicros(options.samples, options.reps, [&] {
    (void)HybridDecrypt(rsa_key, sealed_large);
  });
  double byte_span = double(large_payload.size() - small_payload.size());
  profile.hybrid_encrypt_us = enc_small;
  profile.hybrid_decrypt_us = dec_small;
  // Per-byte cost: average of the seal and open slopes, floored at zero
  // (timer noise can tilt a slope negative on fast hosts).
  profile.hybrid_byte_ns = std::max(
      0.0,
      ((enc_large - enc_small) + (dec_large - dec_small)) / 2.0 / byte_span *
          1000.0);

  // --- SHA-256 per byte (partition identifiers, digests).
  const Bytes sha_input = rng.Generate(65536);
  double sha_us = MedianMicros(options.samples, options.reps, [&] {
    (void)Sha256::Hash(sha_input);
  });
  profile.sha256_byte_ns = sha_us / double(sha_input.size()) * 1000.0;

  // --- In-process wire cost: bus send+receive of small vs large frames
  // splits per-frame latency from per-byte throughput.
  NetworkBus bus;
  const Bytes small_wire = rng.Generate(256);
  const Bytes large_wire = rng.Generate(262144);
  auto roundtrip = [&](const Bytes& payload) {
    Message msg;
    msg.from = "calibrate-a";
    msg.to = "calibrate-b";
    msg.type = "probe";
    msg.payload = payload;
    (void)bus.Send(std::move(msg));
    (void)bus.Receive("calibrate-b");
  };
  double wire_small = MedianMicros(options.samples, options.reps,
                                   [&] { roundtrip(small_wire); });
  double wire_large = MedianMicros(options.samples, options.reps,
                                   [&] { roundtrip(large_wire); });
  profile.frame_rtt_us = wire_small;
  profile.wire_byte_ns =
      std::max(0.001, (wire_large - wire_small) /
                          double(large_wire.size() - small_wire.size()) *
                          1000.0);
  return profile;
}

std::vector<std::string> CompareProfiles(const CalibrationProfile& reference,
                                         const CalibrationProfile& measured,
                                         double tolerance) {
  struct Coefficient {
    const char* name;
    double ref;
    double got;
  };
  const Coefficient coefficients[] = {
      {"paillier_encrypt_us", reference.paillier_encrypt_us,
       measured.paillier_encrypt_us},
      {"paillier_decrypt_us", reference.paillier_decrypt_us,
       measured.paillier_decrypt_us},
      {"paillier_scalar_mul_us", reference.paillier_scalar_mul_us,
       measured.paillier_scalar_mul_us},
      {"commutative_exp_us", reference.commutative_exp_us,
       measured.commutative_exp_us},
      {"elgamal_encrypt_us", reference.elgamal_encrypt_us,
       measured.elgamal_encrypt_us},
      {"hybrid_encrypt_us", reference.hybrid_encrypt_us,
       measured.hybrid_encrypt_us},
      {"hybrid_decrypt_us", reference.hybrid_decrypt_us,
       measured.hybrid_decrypt_us},
  };
  std::vector<std::string> drift;
  for (const Coefficient& c : coefficients) {
    if (c.ref <= 0 || c.got <= 0) continue;
    double ratio = c.got / c.ref;
    if (ratio > tolerance || ratio < 1.0 / tolerance) {
      std::ostringstream msg;
      msg << c.name << ": measured " << c.got << " µs vs committed " << c.ref
          << " µs (ratio " << ratio << ", tolerance " << tolerance << ")";
      drift.push_back(msg.str());
    }
  }
  if (!reference.build.empty() && !measured.build.empty() &&
      reference.build != measured.build) {
    drift.push_back("build mismatch: committed profile is '" +
                    reference.build + "', this run is '" + measured.build +
                    "'");
  }
  return drift;
}

}  // namespace plan
}  // namespace secmed
