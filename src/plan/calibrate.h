#ifndef SECMED_PLAN_CALIBRATE_H_
#define SECMED_PLAN_CALIBRATE_H_

#include <string>
#include <vector>

#include "plan/cost_model.h"
#include "util/result.h"

namespace secmed {
namespace plan {

/// Micro-probe settings for `secmedctl calibrate`. The defaults match
/// the cost model's reference sizes, so the measured coefficients slot
/// directly into a CalibrationProfile.
struct CalibrateOptions {
  size_t paillier_bits = 1024;
  size_t group_bits = 512;
  size_t rsa_bits = 1024;
  /// Timing samples per primitive; the median is recorded.
  size_t samples = 7;
  /// Inner repetitions per sample for sub-millisecond primitives.
  size_t reps = 4;
  std::string seed_label = "calibrate";
};

/// Runs the per-primitive micro-probes (Paillier encrypt/decrypt-CRT/
/// scalar-mul, commutative exponentiation, ElGamal encryption, hybrid
/// sealing with per-byte split, SHA-256, in-process wire cost) and
/// returns the measured profile. Wall-clock timing: run on an idle
/// machine and from an optimized build for recordable numbers.
Result<CalibrationProfile> RunCalibration(const CalibrateOptions& options);

/// Compares `measured` against the committed `reference`. Returns one
/// message per coefficient whose ratio falls outside [1/tolerance,
/// tolerance] — empty means the committed profile still describes this
/// host. (The CI check is warn-only: shared runners drift.)
std::vector<std::string> CompareProfiles(const CalibrationProfile& reference,
                                         const CalibrationProfile& measured,
                                         double tolerance);

}  // namespace plan
}  // namespace secmed

#endif  // SECMED_PLAN_CALIBRATE_H_
