#ifndef SECMED_PLAN_COST_MODEL_H_
#define SECMED_PLAN_COST_MODEL_H_

#include <map>
#include <string>

#include "obs/json.h"
#include "plan/stats.h"
#include "util/result.h"

namespace secmed {
namespace plan {

/// Per-primitive cost coefficients, measured on the deployment host by
/// `secmedctl calibrate` and committed as CALIBRATION.json (schema
/// secmed.calibration.v1). Modular-exponentiation primitives are recorded
/// at a reference modulus size and scaled ~cubically to other sizes
/// (schoolbook multiplication under one word-level kernel; close enough
/// for ranking protocols, which is all the planner needs).
struct CalibrationProfile {
  // Paillier over a paillier_ref_bits modulus (ciphertexts mod n²).
  double paillier_encrypt_us = 850.0;
  double paillier_decrypt_us = 420.0;   // CRT path
  double paillier_scalar_mul_us = 65.0;  // one Horner step c^v mod n²
  // Pohlig–Hellman commutative exponentiation over a group_ref_bits group.
  double commutative_exp_us = 150.0;
  // ElGamal encryption over a group_ref_bits group (fixed-base tables).
  double elgamal_encrypt_us = 120.0;
  // RSA-OAEP + AES hybrid sealing at rsa_ref_bits.
  double hybrid_encrypt_us = 70.0;
  double hybrid_decrypt_us = 420.0;
  double hybrid_byte_ns = 15.0;  // per payload byte (AES + encoding)
  double sha256_byte_ns = 5.0;
  // Transport: per framed byte and per frame round trip.
  double wire_byte_ns = 1.0;
  double frame_rtt_us = 10.0;

  size_t paillier_ref_bits = 1024;
  size_t group_ref_bits = 512;
  size_t rsa_ref_bits = 1024;

  /// Provenance (freeform; the --check probe compares coefficients only).
  std::string host;
  std::string build;

  obs::JsonValue ToJson() const;
  static Result<CalibrationProfile> FromJson(const obs::JsonValue& v);
  static Result<CalibrationProfile> Load(const std::string& path);
  Status Save(const std::string& path) const;
};

/// Protocol knobs the cost depends on, mirroring RunSpec / Query.
struct ProtocolParams {
  size_t das_partitions = 4;
  PartitionStrategy das_strategy = PartitionStrategy::kEquiDepth;
  size_t group_bits = 256;      // commutative group size
  size_t paillier_bits = 1024;  // client key (testbed default)
  size_t rsa_bits = 1024;       // hybrid sealing key
};

/// Predicted cost of delivering one mediated join under a protocol — the
/// planner-facing mirror of the Section 6 analysis.
struct CostEstimate {
  std::string protocol;

  double wall_ms = 0.0;      // predicted end-to-end latency
  double source_ms = 0.0;    // datasource-side crypto
  double mediator_ms = 0.0;  // mediator-side compute (matching, routing)
  double client_ms = 0.0;    // client-side decryption + reconstruction
  double network_ms = 0.0;   // bytes · wire cost + frames · RTT

  /// Predicted LeakageReport::client_decryption_work: result size for
  /// commutative, superset |RC| for DAS, d1+d2 evaluations for PM.
  double client_decrypt_ops = 0.0;
  double mediator_bytes = 0.0;  // bytes routed through the mediator
  double client_bytes = 0.0;    // bytes delivered to the client
  double frames = 0.0;

  double expected_result_tuples = 0.0;
  /// Client-received candidate pairs per true result tuple (DAS > 1).
  double client_superset_factor = 1.0;
  /// False iff the protocol cannot run on these stats (e.g. DAS without
  /// a bucket histogram); such estimates must not be chosen.
  bool feasible = true;
  std::string infeasible_reason;

  std::map<std::string, double> breakdown_ms;  // primitive → milliseconds

  obs::JsonValue ToJson() const;
};

/// Evaluates the per-protocol Section 6 cost formulas over collected
/// statistics with calibrated coefficients.
class CostModel {
 public:
  explicit CostModel(CalibrationProfile profile)
      : profile_(std::move(profile)) {}

  /// `protocol` is "das", "commutative" or "pm".
  CostEstimate Predict(const std::string& protocol, const TableStats& s1,
                       const TableStats& s2,
                       const ProtocolParams& params) const;

  const CalibrationProfile& profile() const { return profile_; }

 private:
  CostEstimate PredictDas(const TableStats& s1, const TableStats& s2,
                          const ProtocolParams& params) const;
  CostEstimate PredictCommutative(const TableStats& s1, const TableStats& s2,
                                  const ProtocolParams& params) const;
  CostEstimate PredictPm(const TableStats& s1, const TableStats& s2,
                         const ProtocolParams& params) const;

  CalibrationProfile profile_;
};

}  // namespace plan
}  // namespace secmed

#endif  // SECMED_PLAN_COST_MODEL_H_
