#include "das/partition.h"

#include <algorithm>

#include "crypto/sha256.h"
#include "util/serialize.h"

namespace secmed {

bool DasPartition::Contains(const Value& v) const {
  if (is_range) {
    if (v.type() != ValueType::kInt64) return false;
    return v.as_int() >= lo && v.as_int() <= hi;
  }
  return std::binary_search(values.begin(), values.end(), v);
}

bool DasPartition::Overlaps(const DasPartition& other) const {
  if (is_range && other.is_range) {
    return lo <= other.hi && other.lo <= hi;
  }
  if (is_range) {
    for (const Value& v : other.values) {
      if (Contains(v)) return true;
    }
    return false;
  }
  if (other.is_range) return other.Overlaps(*this);
  // Both sets; both sorted — merge scan.
  size_t i = 0, j = 0;
  while (i < values.size() && j < other.values.size()) {
    int c = values[i].Compare(other.values[j]);
    if (c == 0) return true;
    if (c < 0) {
      ++i;
    } else {
      ++j;
    }
  }
  return false;
}

std::string DasPartition::ToString() const {
  if (is_range) {
    return "[" + std::to_string(lo) + "," + std::to_string(hi) + "]";
  }
  std::string out = "{";
  for (size_t i = 0; i < values.size(); ++i) {
    if (i) out += ",";
    out += values[i].ToString();
  }
  return out + "}";
}

Bytes DasPartition::EncodeBounds() const {
  BinaryWriter w;
  w.WriteU8(is_range ? 1 : 0);
  if (is_range) {
    w.WriteI64(lo);
    w.WriteI64(hi);
  } else {
    w.WriteU32(static_cast<uint32_t>(values.size()));
    for (const Value& v : values) v.EncodeTo(&w);
  }
  return w.TakeBuffer();
}

const char* PartitionStrategyToString(PartitionStrategy s) {
  switch (s) {
    case PartitionStrategy::kEquiWidth: return "equi-width";
    case PartitionStrategy::kEquiDepth: return "equi-depth";
    case PartitionStrategy::kSingleton: return "singleton";
  }
  return "?";
}

namespace {
// Identifier = first 8 bytes of SHA-256(salt || bounds), big-endian.
uint64_t PartitionIdentifier(const Bytes& salt, const Bytes& bounds) {
  Sha256 h;
  h.Update(salt);
  h.Update(bounds);
  Bytes digest = h.Finish();
  uint64_t id = 0;
  for (int i = 0; i < 8; ++i) id = (id << 8) | digest[i];
  return id;
}
}  // namespace

Result<std::vector<DasPartition>> PartitionDomain(
    const std::vector<Value>& active_domain, PartitionStrategy strategy,
    size_t num_partitions, const Bytes& salt) {
  if (active_domain.empty()) {
    return Status::InvalidArgument("cannot partition an empty domain");
  }
  std::vector<Value> sorted = active_domain;
  std::sort(sorted.begin(), sorted.end());
  sorted.erase(std::unique(sorted.begin(), sorted.end()), sorted.end());

  std::vector<DasPartition> partitions;
  switch (strategy) {
    case PartitionStrategy::kEquiWidth: {
      if (num_partitions == 0) {
        return Status::InvalidArgument("need at least one partition");
      }
      for (const Value& v : sorted) {
        if (v.type() != ValueType::kInt64) {
          return Status::InvalidArgument(
              "equi-width partitioning requires an integer domain");
        }
      }
      const int64_t min = sorted.front().as_int();
      const int64_t max = sorted.back().as_int();
      // Width as ceiling so num_partitions ranges cover [min, max].
      const uint64_t span = static_cast<uint64_t>(max) -
                            static_cast<uint64_t>(min) + 1;
      const uint64_t width = (span + num_partitions - 1) / num_partitions;
      for (size_t k = 0; k < num_partitions; ++k) {
        DasPartition p;
        p.is_range = true;
        p.lo = min + static_cast<int64_t>(k * width);
        p.hi = min + static_cast<int64_t>((k + 1) * width) - 1;
        if (p.lo > max) break;
        if (p.hi > max) p.hi = max;
        partitions.push_back(std::move(p));
      }
      break;
    }
    case PartitionStrategy::kEquiDepth: {
      if (num_partitions == 0) {
        return Status::InvalidArgument("need at least one partition");
      }
      const size_t n = sorted.size();
      const size_t buckets = std::min(num_partitions, n);
      size_t start = 0;
      for (size_t k = 0; k < buckets; ++k) {
        size_t end = start + (n - start) / (buckets - k);
        if (end == start) end = start + 1;
        DasPartition p;
        p.is_range = false;
        p.values.assign(sorted.begin() + start, sorted.begin() + end);
        partitions.push_back(std::move(p));
        start = end;
      }
      break;
    }
    case PartitionStrategy::kSingleton: {
      for (const Value& v : sorted) {
        DasPartition p;
        p.is_range = false;
        p.values = {v};
        partitions.push_back(std::move(p));
      }
      break;
    }
  }
  for (DasPartition& p : partitions) {
    p.index = PartitionIdentifier(salt, p.EncodeBounds());
  }
  return partitions;
}

}  // namespace secmed
