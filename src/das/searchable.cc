#include "das/searchable.h"

#include "crypto/hybrid.h"
#include "crypto/sha256.h"
#include "util/serialize.h"

namespace secmed {

namespace {
constexpr size_t kTagLen = 16;
constexpr size_t kColumnKeyLen = 32;
}  // namespace

Bytes SearchableRelation::Serialize() const {
  BinaryWriter w;
  schema.EncodeTo(&w);
  w.WriteU32(static_cast<uint32_t>(rows.size()));
  for (const SearchableRow& row : rows) {
    w.WriteBytes(row.sealed_tuple);
    w.WriteU32(static_cast<uint32_t>(row.tags.size()));
    for (const Bytes& tag : row.tags) w.WriteBytes(tag);
  }
  return w.TakeBuffer();
}

Result<SearchableRelation> SearchableRelation::Deserialize(const Bytes& data) {
  BinaryReader r(data);
  SearchableRelation rel;
  SECMED_ASSIGN_OR_RETURN(rel.schema, Schema::DecodeFrom(&r));
  SECMED_ASSIGN_OR_RETURN(uint32_t n, r.ReadU32());
  rel.rows.reserve(std::min<size_t>(n, r.remaining()));
  for (uint32_t i = 0; i < n; ++i) {
    SearchableRow row;
    SECMED_ASSIGN_OR_RETURN(row.sealed_tuple, r.ReadBytes());
    SECMED_ASSIGN_OR_RETURN(uint32_t tags, r.ReadU32());
    row.tags.reserve(std::min<size_t>(tags, r.remaining()));
    for (uint32_t k = 0; k < tags; ++k) {
      SECMED_ASSIGN_OR_RETURN(Bytes tag, r.ReadBytes());
      row.tags.push_back(std::move(tag));
    }
    rel.rows.push_back(std::move(row));
  }
  if (!r.AtEnd()) {
    return Status::ParseError("trailing bytes in searchable relation");
  }
  return rel;
}

Bytes SearchKeys::Serialize() const {
  BinaryWriter w;
  w.WriteU32(static_cast<uint32_t>(column_keys.size()));
  for (const Bytes& k : column_keys) w.WriteBytes(k);
  return w.TakeBuffer();
}

Result<SearchKeys> SearchKeys::Deserialize(const Bytes& data) {
  BinaryReader r(data);
  SearchKeys keys;
  SECMED_ASSIGN_OR_RETURN(uint32_t n, r.ReadU32());
  keys.column_keys.reserve(std::min<size_t>(n, r.remaining()));
  for (uint32_t i = 0; i < n; ++i) {
    SECMED_ASSIGN_OR_RETURN(Bytes k, r.ReadBytes());
    if (k.size() != kColumnKeyLen) {
      return Status::ParseError("bad column key length");
    }
    keys.column_keys.push_back(std::move(k));
  }
  if (!r.AtEnd()) return Status::ParseError("trailing bytes in search keys");
  return keys;
}

SearchKeys GenerateSearchKeys(const Schema& schema, RandomSource* rng) {
  SearchKeys keys;
  keys.column_keys.reserve(schema.size());
  for (size_t i = 0; i < schema.size(); ++i) {
    keys.column_keys.push_back(rng->Generate(kColumnKeyLen));
  }
  return keys;
}

Bytes SearchTag(const Bytes& column_key, const Value& v) {
  Bytes tag = HmacSha256(column_key, v.Encode());
  tag.resize(kTagLen);
  return tag;
}

Result<SearchableRelation> SearchableEncrypt(const Relation& rel,
                                             const SearchKeys& keys,
                                             const RsaPublicKey& client_key,
                                             RandomSource* rng) {
  if (keys.column_keys.size() != rel.schema().size()) {
    return Status::InvalidArgument("search keys do not match the schema");
  }
  SearchableRelation out;
  out.schema = rel.schema();
  out.rows.reserve(rel.size());
  for (const Tuple& t : rel.tuples()) {
    SearchableRow row;
    SECMED_ASSIGN_OR_RETURN(row.sealed_tuple,
                            HybridEncrypt(client_key, EncodeTuple(t), rng));
    row.tags.reserve(t.size());
    for (size_t i = 0; i < t.size(); ++i) {
      // NULL cells carry an empty tag: NULL = NULL is never true in SQL,
      // so NULL rows must not match any token.
      row.tags.push_back(t[i].is_null()
                             ? Bytes()
                             : SearchTag(keys.column_keys[i], t[i]));
    }
    out.rows.push_back(std::move(row));
  }
  return out;
}

Bytes SelectionToken::Serialize() const {
  BinaryWriter w;
  w.WriteU32(static_cast<uint32_t>(conditions.size()));
  for (const auto& [col, tag] : conditions) {
    w.WriteString(col);
    w.WriteBytes(tag);
  }
  return w.TakeBuffer();
}

Result<SelectionToken> SelectionToken::Deserialize(const Bytes& data) {
  BinaryReader r(data);
  SelectionToken token;
  SECMED_ASSIGN_OR_RETURN(uint32_t n, r.ReadU32());
  token.conditions.reserve(std::min<size_t>(n, r.remaining()));
  for (uint32_t i = 0; i < n; ++i) {
    std::pair<std::string, Bytes> cond;
    SECMED_ASSIGN_OR_RETURN(cond.first, r.ReadString());
    SECMED_ASSIGN_OR_RETURN(cond.second, r.ReadBytes());
    token.conditions.push_back(std::move(cond));
  }
  if (!r.AtEnd()) return Status::ParseError("trailing bytes in token");
  return token;
}

Result<SelectionToken> MakeSelectionToken(
    const SearchKeys& keys, const Schema& schema,
    const std::vector<std::pair<std::string, Value>>& equalities) {
  if (equalities.empty()) {
    return Status::InvalidArgument("token needs at least one condition");
  }
  SelectionToken token;
  for (const auto& [col, value] : equalities) {
    SECMED_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(col));
    if (value.is_null()) {
      return Status::InvalidArgument("cannot search for NULL");
    }
    token.conditions.emplace_back(schema.column(idx).name,
                                  SearchTag(keys.column_keys[idx], value));
  }
  return token;
}

Result<std::vector<Bytes>> EvaluateSelection(const SearchableRelation& rel,
                                             const SelectionToken& token) {
  std::vector<size_t> cols;
  for (const auto& [col, tag] : token.conditions) {
    SECMED_ASSIGN_OR_RETURN(size_t idx, rel.schema.IndexOf(col));
    cols.push_back(idx);
  }
  std::vector<Bytes> out;
  for (const SearchableRow& row : rel.rows) {
    if (row.tags.size() != rel.schema.size()) {
      return Status::DataLoss("malformed searchable row");
    }
    bool all = true;
    for (size_t k = 0; k < cols.size() && all; ++k) {
      all = !row.tags[cols[k]].empty() &&
            ConstantTimeEquals(row.tags[cols[k]], token.conditions[k].second);
    }
    if (all) out.push_back(row.sealed_tuple);
  }
  return out;
}

Result<Relation> OpenSelection(const std::vector<Bytes>& sealed_rows,
                               const Schema& schema,
                               const RsaPrivateKey& client_key) {
  Relation out(schema);
  for (const Bytes& sealed : sealed_rows) {
    SECMED_ASSIGN_OR_RETURN(Bytes plain, HybridDecrypt(client_key, sealed));
    SECMED_ASSIGN_OR_RETURN(Tuple t, DecodeTuple(plain));
    SECMED_RETURN_IF_ERROR(out.Append(std::move(t)));
  }
  return out;
}

}  // namespace secmed
