#ifndef SECMED_DAS_DAS_RELATION_H_
#define SECMED_DAS_DAS_RELATION_H_

#include <string>
#include <vector>

#include "crypto/rsa.h"
#include "das/index_table.h"
#include "obs/scope.h"
#include "relational/relation.h"
#include "util/result.h"
#include "util/rng.h"

namespace secmed {

/// One encrypted tuple tS = <etuple, aS_1, ..., aS_k> of the DAS-encrypted
/// relation RS (Section 3): `etuple` is the hybrid encryption of the whole
/// plaintext tuple under the client's public key, `join_indexes` holds the
/// index value of the partition containing the tuple's value for each
/// indexed join attribute (one in the paper's base protocol; several in
/// the Section 8 multi-attribute extension).
///
/// In the *mixed DAS model* of Mykletun and Tsudik (Related Work [18])
/// only sensitive attributes are encrypted; `plaintext_cells` then carries
/// the cleartext values of the non-sensitive columns — visible to the
/// mediator, which is exactly the model's trade-off.
struct DasTuple {
  Bytes etuple;
  std::vector<uint64_t> join_indexes;
  std::vector<Value> plaintext_cells;  // empty in the fully encrypted model
};

/// A DAS-encrypted partial result RS = {<etuple, aS_1..aS_k>}.
struct DasRelation {
  std::string name;
  std::vector<DasTuple> tuples;

  size_t size() const { return tuples.size(); }

  Bytes Serialize() const;
  static Result<DasRelation> Deserialize(const Bytes& data);
};

/// Encrypts a partial result tuple-wise per the DAS approach: each tuple
/// is hybrid-encrypted under `client_key`, and each join attribute is
/// mapped to its index value through the corresponding index table.
/// `join_columns` and `index_tables` must have equal, non-zero length.
///
/// `plaintext_columns` selects the mixed-DAS mode: the named non-sensitive
/// columns additionally travel in the clear next to the etuple (the
/// encrypted tuple still contains every column, so decryption is
/// unchanged). Leave empty for the paper's fully encrypted model.
///
/// `threads` sealing workers run the per-tuple hybrid encryptions; the
/// output is bit-identical for every thread count under a seeded `rng`
/// (per-tuple RNG forking — see RandomSource::Fork).
///
/// A non-null `scope` instruments the sealing loop (per-worker spans and
/// items counters under `label`, default "das.encrypt_relation").
Result<DasRelation> DasEncryptRelation(
    const Relation& rel, const std::vector<std::string>& join_columns,
    const std::vector<IndexTable>& index_tables,
    const RsaPublicKey& client_key, RandomSource* rng,
    const std::vector<std::string>& plaintext_columns = {},
    size_t threads = 1, obs::Scope* scope = nullptr,
    const char* label = nullptr);

/// Single-attribute convenience overload (the paper's base protocol).
Result<DasRelation> DasEncryptRelation(const Relation& rel,
                                       const std::string& join_column,
                                       const IndexTable& index_table,
                                       const RsaPublicKey& client_key,
                                       RandomSource* rng);

/// Client-side decryptDAS: decrypts every etuple and drops the index
/// values, restoring the plaintext relation with the given schema.
Result<Relation> DasDecryptRelation(const DasRelation& encrypted,
                                    const Schema& schema,
                                    const RsaPrivateKey& client_key);

}  // namespace secmed

#endif  // SECMED_DAS_DAS_RELATION_H_
