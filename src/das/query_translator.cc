#include "das/query_translator.h"

#include <unordered_map>
#include <unordered_set>

#include "crypto/hybrid.h"
#include "util/serialize.h"

namespace secmed {

Bytes DasServerQuery::Serialize() const {
  BinaryWriter w;
  w.WriteU32(static_cast<uint32_t>(per_attribute_pairs.size()));
  for (const auto& pairs : per_attribute_pairs) {
    w.WriteU32(static_cast<uint32_t>(pairs.size()));
    for (const auto& [a, b] : pairs) {
      w.WriteU64(a);
      w.WriteU64(b);
    }
  }
  return w.TakeBuffer();
}

Result<DasServerQuery> DasServerQuery::Deserialize(const Bytes& data) {
  BinaryReader r(data);
  DasServerQuery q;
  SECMED_ASSIGN_OR_RETURN(uint32_t attrs, r.ReadU32());
  if (attrs > r.remaining()) {
    return Status::ParseError("implausible attribute count");
  }
  q.per_attribute_pairs.resize(attrs);
  for (uint32_t k = 0; k < attrs; ++k) {
    SECMED_ASSIGN_OR_RETURN(uint32_t n, r.ReadU32());
    q.per_attribute_pairs[k].reserve(std::min<size_t>(n, r.remaining()));
    for (uint32_t i = 0; i < n; ++i) {
      SECMED_ASSIGN_OR_RETURN(uint64_t a, r.ReadU64());
      SECMED_ASSIGN_OR_RETURN(uint64_t b, r.ReadU64());
      q.per_attribute_pairs[k].emplace_back(a, b);
    }
  }
  if (!r.AtEnd()) return Status::ParseError("trailing bytes in server query");
  return q;
}

Bytes DasServerResult::Serialize() const {
  BinaryWriter w;
  w.WriteU32(static_cast<uint32_t>(etuple_pairs.size()));
  for (const auto& [a, b] : etuple_pairs) {
    w.WriteBytes(a);
    w.WriteBytes(b);
  }
  return w.TakeBuffer();
}

Result<DasServerResult> DasServerResult::Deserialize(const Bytes& data) {
  BinaryReader r(data);
  DasServerResult res;
  SECMED_ASSIGN_OR_RETURN(uint32_t n, r.ReadU32());
  res.etuple_pairs.reserve(std::min<size_t>(n, r.remaining()));
  for (uint32_t i = 0; i < n; ++i) {
    SECMED_ASSIGN_OR_RETURN(Bytes a, r.ReadBytes());
    SECMED_ASSIGN_OR_RETURN(Bytes b, r.ReadBytes());
    res.etuple_pairs.emplace_back(std::move(a), std::move(b));
  }
  if (!r.AtEnd()) return Status::ParseError("trailing bytes in server result");
  return res;
}

DasServerQuery TranslateToServerQuery(const std::vector<IndexTable>& itables1,
                                      const std::vector<IndexTable>& itables2) {
  DasServerQuery q;
  const size_t attrs = std::min(itables1.size(), itables2.size());
  q.per_attribute_pairs.reserve(attrs);
  for (size_t k = 0; k < attrs; ++k) {
    q.per_attribute_pairs.push_back(itables1[k].OverlappingPairs(itables2[k]));
  }
  return q;
}

DasServerQuery TranslateToServerQuery(const IndexTable& itable1,
                                      const IndexTable& itable2) {
  return TranslateToServerQuery(std::vector<IndexTable>{itable1},
                                std::vector<IndexTable>{itable2});
}

namespace {
// Packs an index pair for set membership tests. Collisions across
// different pairs are avoided by hashing both 64-bit halves.
struct PairHash {
  size_t operator()(const std::pair<uint64_t, uint64_t>& p) const {
    uint64_t h = p.first * 0x9E3779B97F4A7C15ULL;
    h ^= p.second + 0x9E3779B97F4A7C15ULL + (h << 6) + (h >> 2);
    return static_cast<size_t>(h);
  }
};
}  // namespace

DasServerResult EvaluateServerQuery(const DasRelation& r1,
                                    const DasRelation& r2,
                                    const DasServerQuery& query) {
  DasServerResult out;
  if (query.per_attribute_pairs.empty()) return out;
  const size_t attrs = query.per_attribute_pairs.size();

  // Per-attribute allowed-pair sets; attribute 0 additionally maps
  // r1-index -> candidate r2-indexes to drive the probe.
  std::vector<std::unordered_set<std::pair<uint64_t, uint64_t>, PairHash>>
      allowed(attrs);
  for (size_t k = 0; k < attrs; ++k) {
    for (const auto& pair : query.per_attribute_pairs[k]) {
      allowed[k].insert(pair);
    }
  }
  std::unordered_map<uint64_t, std::vector<uint64_t>> first_candidates;
  for (const auto& [a, b] : query.per_attribute_pairs[0]) {
    first_candidates[a].push_back(b);
  }

  std::unordered_map<uint64_t, std::vector<const DasTuple*>> r2_by_first;
  for (const DasTuple& t : r2.tuples) {
    if (t.join_indexes.size() != attrs) continue;  // malformed; skip
    r2_by_first[t.join_indexes[0]].push_back(&t);
  }

  for (const DasTuple& t1 : r1.tuples) {
    if (t1.join_indexes.size() != attrs) continue;
    auto it = first_candidates.find(t1.join_indexes[0]);
    if (it == first_candidates.end()) continue;
    for (uint64_t idx2 : it->second) {
      auto jt = r2_by_first.find(idx2);
      if (jt == r2_by_first.end()) continue;
      for (const DasTuple* t2 : jt->second) {
        bool all_match = true;
        for (size_t k = 1; k < attrs && all_match; ++k) {
          all_match = allowed[k].count(
                          {t1.join_indexes[k], t2->join_indexes[k]}) > 0;
        }
        if (all_match) out.etuple_pairs.emplace_back(t1.etuple, t2->etuple);
      }
    }
  }
  return out;
}

Result<Relation> ApplyClientQuery(const DasServerResult& server_result,
                                  const Schema& schema1, const Schema& schema2,
                                  const std::vector<std::string>& join_columns,
                                  const EtupleDecryptFn& decrypt_fn) {
  if (join_columns.empty()) {
    return Status::InvalidArgument("no join columns given");
  }
  std::vector<size_t> j1, j2;
  for (const std::string& col : join_columns) {
    SECMED_ASSIGN_OR_RETURN(size_t a, schema1.IndexOf(col));
    SECMED_ASSIGN_OR_RETURN(size_t b, schema2.IndexOf(col));
    j1.push_back(a);
    j2.push_back(b);
  }

  // Output schema: schema1 then schema2 minus all its join columns.
  std::vector<Column> cols = schema1.columns();
  std::vector<bool> drop2(schema2.size(), false);
  for (size_t b : j2) drop2[b] = true;
  for (size_t i = 0; i < schema2.size(); ++i) {
    if (!drop2[i]) cols.push_back(schema2.column(i));
  }
  Relation out{Schema(std::move(cols))};

  // Decrypt each distinct etuple only once.
  std::unordered_map<std::string, Tuple> cache;
  auto decrypt = [&](const Bytes& etuple) -> Result<Tuple> {
    std::string key(etuple.begin(), etuple.end());
    auto it = cache.find(key);
    if (it != cache.end()) return it->second;
    SECMED_ASSIGN_OR_RETURN(Bytes plain, decrypt_fn(etuple));
    SECMED_ASSIGN_OR_RETURN(Tuple t, DecodeTuple(plain));
    cache.emplace(std::move(key), t);
    return t;
  };

  for (const auto& [e1, e2] : server_result.etuple_pairs) {
    SECMED_ASSIGN_OR_RETURN(Tuple t1, decrypt(e1));
    SECMED_ASSIGN_OR_RETURN(Tuple t2, decrypt(e2));
    if (t1.size() != schema1.size() || t2.size() != schema2.size()) {
      return Status::DataLoss("decrypted tuple arity mismatch");
    }
    // CondC: every join value pair must be equal (and non-NULL).
    bool match = true;
    for (size_t k = 0; k < j1.size() && match; ++k) {
      match = !t1[j1[k]].is_null() && t1[j1[k]] == t2[j2[k]];
    }
    if (!match) continue;
    Tuple t = t1;
    for (size_t i = 0; i < t2.size(); ++i) {
      if (!drop2[i]) t.push_back(t2[i]);
    }
    out.AppendUnchecked(std::move(t));
  }
  return out;
}

Result<Relation> ApplyClientQuery(const DasServerResult& server_result,
                                  const Schema& schema1, const Schema& schema2,
                                  const std::vector<std::string>& join_columns,
                                  const RsaPrivateKey& client_key) {
  return ApplyClientQuery(server_result, schema1, schema2, join_columns,
                          [&client_key](const Bytes& etuple) {
                            return HybridDecrypt(client_key, etuple);
                          });
}

Result<Relation> ApplyClientQuery(const DasServerResult& server_result,
                                  const Schema& schema1, const Schema& schema2,
                                  const std::string& join_column,
                                  const RsaPrivateKey& client_key) {
  return ApplyClientQuery(server_result, schema1, schema2,
                          std::vector<std::string>{join_column}, client_key);
}

}  // namespace secmed
