#ifndef SECMED_DAS_INDEX_TABLE_H_
#define SECMED_DAS_INDEX_TABLE_H_

#include <string>
#include <utility>
#include <vector>

#include "das/partition.h"
#include "relational/relation.h"
#include "relational/value.h"
#include "util/result.h"

namespace secmed {

/// The paper's ITable_{R.Ajoin}: the mapping from domain partitions to
/// index values for one attribute of one relation.
///
/// A datasource builds the table over its active domain, uses it to
/// produce the encrypted relation, and ships it (hybrid-encrypted, so
/// only the client can read it) to the client via the mediator. The
/// client-side query translator intersects two index tables to build the
/// server query.
class IndexTable {
 public:
  IndexTable() = default;
  IndexTable(std::string attribute, std::vector<DasPartition> partitions)
      : attribute_(std::move(attribute)), partitions_(std::move(partitions)) {}

  /// Builds a table for the active domain of `column` in `rel`.
  static Result<IndexTable> Build(const Relation& rel,
                                  const std::string& column,
                                  PartitionStrategy strategy,
                                  size_t num_partitions, const Bytes& salt);

  const std::string& attribute() const { return attribute_; }
  const std::vector<DasPartition>& partitions() const { return partitions_; }
  size_t size() const { return partitions_.size(); }

  /// Index value of the partition containing `v`; kNotFound when no
  /// partition contains it (value outside the active domain's coverage).
  Result<uint64_t> IndexOf(const Value& v) const;

  /// All (this.index, other.index) pairs whose partitions overlap — the
  /// pairs enumerated by the disjunction CondS of Section 3.
  std::vector<std::pair<uint64_t, uint64_t>> OverlappingPairs(
      const IndexTable& other) const;

  Bytes Serialize() const;
  static Result<IndexTable> Deserialize(const Bytes& data);

  std::string ToString() const;

 private:
  std::string attribute_;
  std::vector<DasPartition> partitions_;
};

}  // namespace secmed

#endif  // SECMED_DAS_INDEX_TABLE_H_
