#ifndef SECMED_DAS_SEARCHABLE_H_
#define SECMED_DAS_SEARCHABLE_H_

#include <string>
#include <vector>

#include "crypto/rsa.h"
#include "relational/predicate.h"
#include "relational/relation.h"
#include "util/result.h"
#include "util/rng.h"

namespace secmed {

/// Exact-match selection over encrypted relations, after Yang, Zhong and
/// Wright (Related Work, Section 7): "they encrypt each attribute value
/// separately. Each encrypted value also has a 'checksum' that is
/// necessary for query execution on the encrypted table. [...] the server
/// returns the exact set of encrypted values that satisfy the condition."
///
/// Our instantiation is a searchable symmetric encryption: each row is
/// hybrid-encrypted for the client, and every cell additionally carries a
/// deterministic *search tag* HMAC(k_col, value) truncated to 128 bits.
/// The data owner's column keys k_col are shared with the client (sealed
/// under its public key); to select rows with col = v the client computes
/// the token HMAC(k_col, v) and the untrusted evaluator matches tags —
/// learning only which hidden rows satisfy the (hidden) condition, plus
/// the tag-equality pattern across rows.
///
/// Compared with DAS bucketization this returns the *exact* matching rows
/// (no client post-processing) at the price of deterministic per-column
/// tags (equal values share a tag).

/// One encrypted row: the sealed tuple plus one search tag per column.
struct SearchableRow {
  Bytes sealed_tuple;
  std::vector<Bytes> tags;  // one 16-byte tag per column; empty tag for NULL
};

/// An encrypted, searchable relation.
struct SearchableRelation {
  Schema schema;  // column names/types (public metadata in this model)
  std::vector<SearchableRow> rows;

  size_t size() const { return rows.size(); }

  Bytes Serialize() const;
  static Result<SearchableRelation> Deserialize(const Bytes& data);
};

/// Per-relation search keys: one independent key per column.
struct SearchKeys {
  std::vector<Bytes> column_keys;  // 32 bytes each

  Bytes Serialize() const;
  static Result<SearchKeys> Deserialize(const Bytes& data);
};

/// Draws fresh search keys for a schema.
SearchKeys GenerateSearchKeys(const Schema& schema, RandomSource* rng);

/// Search tag of one value under one column key (16 bytes).
Bytes SearchTag(const Bytes& column_key, const Value& v);

/// Encrypts a relation searchably: rows sealed to `client_key`, tags from
/// `keys`.
Result<SearchableRelation> SearchableEncrypt(const Relation& rel,
                                             const SearchKeys& keys,
                                             const RsaPublicKey& client_key,
                                             RandomSource* rng);

/// A selection token: conjunction of (column, tag) equality conditions.
struct SelectionToken {
  std::vector<std::pair<std::string, Bytes>> conditions;

  Bytes Serialize() const;
  static Result<SelectionToken> Deserialize(const Bytes& data);
};

/// Builds the token for a conjunction of col = value conditions.
Result<SelectionToken> MakeSelectionToken(
    const SearchKeys& keys, const Schema& schema,
    const std::vector<std::pair<std::string, Value>>& equalities);

/// Untrusted evaluation: returns the sealed tuples whose tags satisfy all
/// of the token's conditions. The evaluator sees only ciphertexts/tags.
Result<std::vector<Bytes>> EvaluateSelection(const SearchableRelation& rel,
                                             const SelectionToken& token);

/// Client-side: decrypts the selected rows.
Result<Relation> OpenSelection(const std::vector<Bytes>& sealed_rows,
                               const Schema& schema,
                               const RsaPrivateKey& client_key);

}  // namespace secmed

#endif  // SECMED_DAS_SEARCHABLE_H_
