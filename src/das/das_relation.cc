#include "das/das_relation.h"

#include <memory>

#include "crypto/hybrid.h"
#include "util/parallel.h"
#include "util/serialize.h"

namespace secmed {

Bytes DasRelation::Serialize() const {
  BinaryWriter w;
  w.WriteString(name);
  w.WriteU32(static_cast<uint32_t>(tuples.size()));
  for (const DasTuple& t : tuples) {
    w.WriteBytes(t.etuple);
    w.WriteU32(static_cast<uint32_t>(t.join_indexes.size()));
    for (uint64_t idx : t.join_indexes) w.WriteU64(idx);
    w.WriteU32(static_cast<uint32_t>(t.plaintext_cells.size()));
    for (const Value& v : t.plaintext_cells) v.EncodeTo(&w);
  }
  return w.TakeBuffer();
}

Result<DasRelation> DasRelation::Deserialize(const Bytes& data) {
  BinaryReader r(data);
  DasRelation rel;
  SECMED_ASSIGN_OR_RETURN(rel.name, r.ReadString());
  SECMED_ASSIGN_OR_RETURN(uint32_t n, r.ReadU32());
  rel.tuples.reserve(std::min<size_t>(n, r.remaining()));
  for (uint32_t i = 0; i < n; ++i) {
    DasTuple t;
    SECMED_ASSIGN_OR_RETURN(t.etuple, r.ReadBytes());
    SECMED_ASSIGN_OR_RETURN(uint32_t k, r.ReadU32());
    t.join_indexes.reserve(k);
    for (uint32_t j = 0; j < k; ++j) {
      SECMED_ASSIGN_OR_RETURN(uint64_t idx, r.ReadU64());
      t.join_indexes.push_back(idx);
    }
    SECMED_ASSIGN_OR_RETURN(uint32_t cells, r.ReadU32());
    t.plaintext_cells.reserve(std::min<size_t>(cells, r.remaining()));
    for (uint32_t j = 0; j < cells; ++j) {
      SECMED_ASSIGN_OR_RETURN(Value v, Value::DecodeFrom(&r));
      t.plaintext_cells.push_back(std::move(v));
    }
    rel.tuples.push_back(std::move(t));
  }
  if (!r.AtEnd()) return Status::ParseError("trailing bytes in DAS relation");
  return rel;
}

Result<DasRelation> DasEncryptRelation(
    const Relation& rel, const std::vector<std::string>& join_columns,
    const std::vector<IndexTable>& index_tables,
    const RsaPublicKey& client_key, RandomSource* rng,
    const std::vector<std::string>& plaintext_columns, size_t threads,
    obs::Scope* scope, const char* label) {
  if (join_columns.empty() || join_columns.size() != index_tables.size()) {
    return Status::InvalidArgument(
        "join columns and index tables must match and be non-empty");
  }
  std::vector<size_t> col_idx;
  for (const std::string& col : join_columns) {
    SECMED_ASSIGN_OR_RETURN(size_t i, rel.schema().IndexOf(col));
    col_idx.push_back(i);
  }
  std::vector<size_t> clear_idx;
  for (const std::string& col : plaintext_columns) {
    SECMED_ASSIGN_OR_RETURN(size_t i, rel.schema().IndexOf(col));
    clear_idx.push_back(i);
  }
  std::vector<std::unique_ptr<RandomSource>> rngs = ForkN(rng, rel.size());
  DasRelation out;
  out.tuples.resize(rel.size());
  SECMED_RETURN_IF_ERROR(
      ParallelForStatus(rel.size(), threads, [&](size_t i) -> Status {
        const Tuple& t = rel.tuples()[i];
        DasTuple& dt = out.tuples[i];
        dt.join_indexes.reserve(col_idx.size());
        for (size_t k = 0; k < col_idx.size(); ++k) {
          SECMED_ASSIGN_OR_RETURN(uint64_t idx,
                                  index_tables[k].IndexOf(t[col_idx[k]]));
          dt.join_indexes.push_back(idx);
        }
        for (size_t c : clear_idx) dt.plaintext_cells.push_back(t[c]);
        SECMED_ASSIGN_OR_RETURN(
            dt.etuple, HybridEncrypt(client_key, EncodeTuple(t), rngs[i].get()));
        return Status::OK();
      }, scope, label != nullptr ? label : "das.encrypt_relation"));
  return out;
}

Result<DasRelation> DasEncryptRelation(const Relation& rel,
                                       const std::string& join_column,
                                       const IndexTable& index_table,
                                       const RsaPublicKey& client_key,
                                       RandomSource* rng) {
  return DasEncryptRelation(rel, std::vector<std::string>{join_column},
                            std::vector<IndexTable>{index_table}, client_key,
                            rng);
}

Result<Relation> DasDecryptRelation(const DasRelation& encrypted,
                                    const Schema& schema,
                                    const RsaPrivateKey& client_key) {
  Relation out(schema);
  for (const DasTuple& dt : encrypted.tuples) {
    SECMED_ASSIGN_OR_RETURN(Bytes plain, HybridDecrypt(client_key, dt.etuple));
    SECMED_ASSIGN_OR_RETURN(Tuple t, DecodeTuple(plain));
    SECMED_RETURN_IF_ERROR(out.Append(std::move(t)));
  }
  return out;
}

}  // namespace secmed
