#ifndef SECMED_DAS_QUERY_TRANSLATOR_H_
#define SECMED_DAS_QUERY_TRANSLATOR_H_

#include <functional>
#include <utility>
#include <vector>

#include "das/das_relation.h"
#include "das/index_table.h"
#include "relational/relation.h"
#include "util/result.h"

namespace secmed {

/// The server query qS of the client-setting DAS protocol (Listing 2):
/// RC := σ_CondS(R1S × R2S), where CondS requires, for every join
/// attribute, the two index values to belong to overlapping partitions.
/// Represented extensionally as one set of matching
/// (R1S.index, R2S.index) pairs per attribute.
struct DasServerQuery {
  std::vector<std::vector<std::pair<uint64_t, uint64_t>>> per_attribute_pairs;

  Bytes Serialize() const;
  static Result<DasServerQuery> Deserialize(const Bytes& data);
};

/// The server result RC: pairs of encrypted tuples whose index vectors
/// satisfy CondS.
struct DasServerResult {
  std::vector<std::pair<Bytes, Bytes>> etuple_pairs;

  size_t size() const { return etuple_pairs.size(); }

  Bytes Serialize() const;
  static Result<DasServerResult> Deserialize(const Bytes& data);
};

/// The DAS query translator, placed at the client in our protocol
/// (Section 3.1, "client setting"). Builds qS from the decrypted index
/// tables, one per join attribute per source. The client query qC —
/// equality of the real join values — is applied by ApplyClientQuery
/// after decryption.
DasServerQuery TranslateToServerQuery(const std::vector<IndexTable>& itables1,
                                      const std::vector<IndexTable>& itables2);

/// Single-attribute convenience overload.
DasServerQuery TranslateToServerQuery(const IndexTable& itable1,
                                      const IndexTable& itable2);

/// Mediator-side evaluation of qS over the two encrypted partial results.
/// Pairs are matched via a hash table on the first attribute's index and
/// verified on the remaining attributes.
DasServerResult EvaluateServerQuery(const DasRelation& r1, const DasRelation& r2,
                                    const DasServerQuery& query);

/// Decrypts one etuple ciphertext to its tuple encoding. Injectable so
/// the protocol layer can route the per-etuple hybrid decryption — the
/// dominant client cost of DAS — through its cross-session prepared
/// cache; the key-based overloads below plug in a plain HybridDecrypt.
using EtupleDecryptFn = std::function<Result<Bytes>(const Bytes&)>;

/// Client-side post-processing: decrypts each etuple pair (decryptDAS) and
/// keeps exactly the pairs whose real values agree on every join column
/// (CondC), producing the natural join of the partial results with each
/// join column appearing once. Each distinct etuple is decrypted once.
Result<Relation> ApplyClientQuery(const DasServerResult& server_result,
                                  const Schema& schema1, const Schema& schema2,
                                  const std::vector<std::string>& join_columns,
                                  const EtupleDecryptFn& decrypt);

Result<Relation> ApplyClientQuery(const DasServerResult& server_result,
                                  const Schema& schema1, const Schema& schema2,
                                  const std::vector<std::string>& join_columns,
                                  const RsaPrivateKey& client_key);

/// Single-attribute convenience overload.
Result<Relation> ApplyClientQuery(const DasServerResult& server_result,
                                  const Schema& schema1, const Schema& schema2,
                                  const std::string& join_column,
                                  const RsaPrivateKey& client_key);

}  // namespace secmed

#endif  // SECMED_DAS_QUERY_TRANSLATOR_H_
