#include "das/index_table.h"

#include "relational/relation.h"
#include "util/serialize.h"

namespace secmed {

Result<IndexTable> IndexTable::Build(const Relation& rel,
                                     const std::string& column,
                                     PartitionStrategy strategy,
                                     size_t num_partitions, const Bytes& salt) {
  SECMED_ASSIGN_OR_RETURN(std::vector<Value> domain, rel.ActiveDomain(column));
  // An empty partial result has an empty active domain and an empty table.
  if (domain.empty()) return IndexTable(column, {});
  SECMED_ASSIGN_OR_RETURN(
      std::vector<DasPartition> partitions,
      PartitionDomain(domain, strategy, num_partitions, salt));
  return IndexTable(column, std::move(partitions));
}

Result<uint64_t> IndexTable::IndexOf(const Value& v) const {
  for (const DasPartition& p : partitions_) {
    if (p.Contains(v)) return p.index;
  }
  return Status::NotFound("value " + v.ToString() + " not covered by " +
                          attribute_ + " index table");
}

std::vector<std::pair<uint64_t, uint64_t>> IndexTable::OverlappingPairs(
    const IndexTable& other) const {
  std::vector<std::pair<uint64_t, uint64_t>> pairs;
  for (const DasPartition& p1 : partitions_) {
    for (const DasPartition& p2 : other.partitions_) {
      if (p1.Overlaps(p2)) pairs.emplace_back(p1.index, p2.index);
    }
  }
  return pairs;
}

Bytes IndexTable::Serialize() const {
  BinaryWriter w;
  w.WriteString(attribute_);
  w.WriteU32(static_cast<uint32_t>(partitions_.size()));
  for (const DasPartition& p : partitions_) {
    w.WriteU64(p.index);
    w.WriteBytes(p.EncodeBounds());
  }
  return w.TakeBuffer();
}

Result<IndexTable> IndexTable::Deserialize(const Bytes& data) {
  BinaryReader r(data);
  IndexTable table;
  SECMED_ASSIGN_OR_RETURN(table.attribute_, r.ReadString());
  SECMED_ASSIGN_OR_RETURN(uint32_t n, r.ReadU32());
  for (uint32_t i = 0; i < n; ++i) {
    DasPartition p;
    SECMED_ASSIGN_OR_RETURN(p.index, r.ReadU64());
    SECMED_ASSIGN_OR_RETURN(Bytes bounds, r.ReadBytes());
    BinaryReader br(bounds);
    SECMED_ASSIGN_OR_RETURN(uint8_t is_range, br.ReadU8());
    p.is_range = is_range != 0;
    if (p.is_range) {
      SECMED_ASSIGN_OR_RETURN(p.lo, br.ReadI64());
      SECMED_ASSIGN_OR_RETURN(p.hi, br.ReadI64());
    } else {
      SECMED_ASSIGN_OR_RETURN(uint32_t count, br.ReadU32());
      for (uint32_t k = 0; k < count; ++k) {
        SECMED_ASSIGN_OR_RETURN(Value v, Value::DecodeFrom(&br));
        p.values.push_back(std::move(v));
      }
    }
    table.partitions_.push_back(std::move(p));
  }
  if (!r.AtEnd()) return Status::ParseError("trailing bytes in index table");
  return table;
}

std::string IndexTable::ToString() const {
  std::string out = "ITable(" + attribute_ + "):\n";
  for (const DasPartition& p : partitions_) {
    out += "  " + std::to_string(p.index) + " <- " + p.ToString() + "\n";
  }
  return out;
}

}  // namespace secmed
