#ifndef SECMED_DAS_PARTITION_H_
#define SECMED_DAS_PARTITION_H_

#include <string>
#include <vector>

#include "relational/value.h"
#include "util/bytes.h"
#include "util/result.h"

namespace secmed {

/// One partition of an attribute's active domain (Hacıgümüş et al.).
///
/// A partition is either an inclusive integer range [lo, hi] or an
/// explicit set of values (used for strings and for singleton
/// partitioning). Each partition carries the identifier ("index value")
/// that stands for it in the encrypted relation.
struct DasPartition {
  uint64_t index = 0;

  bool is_range = false;
  int64_t lo = 0;  // when is_range
  int64_t hi = 0;  // when is_range
  std::vector<Value> values;  // when !is_range; sorted, distinct

  /// True iff the value falls into this partition.
  bool Contains(const Value& v) const;

  /// True iff the two partitions can share a value (p1 ∩ p2 ≠ ∅). Used by
  /// the query translator to build CondS.
  bool Overlaps(const DasPartition& other) const;

  /// Human-readable description ("[0,9]" or "{'a','b'}").
  std::string ToString() const;

  /// Canonical encoding of the partition boundaries (identifier input).
  Bytes EncodeBounds() const;
};

/// Strategy for dividing an active domain into partitions.
enum class PartitionStrategy {
  /// Equal-width integer ranges over [min, max]. Integer domains only.
  kEquiWidth,
  /// Buckets with (nearly) equal numbers of distinct active values.
  kEquiDepth,
  /// One partition per distinct value. Minimal superset (exact server
  /// result) but maximal inference exposure — see Section 6.
  kSingleton,
};

const char* PartitionStrategyToString(PartitionStrategy s);

/// Splits a sorted active domain into `num_partitions` partitions using
/// the given strategy and assigns each partition a pseudorandom identifier
/// derived from SHA-256(salt || bounds). The salt randomizes identifiers
/// so the mediator cannot dictionary-attack index values back to ranges.
///
/// kEquiWidth requires an all-integer domain. `num_partitions` is ignored
/// by kSingleton. The domain must be non-empty.
Result<std::vector<DasPartition>> PartitionDomain(
    const std::vector<Value>& active_domain, PartitionStrategy strategy,
    size_t num_partitions, const Bytes& salt);

}  // namespace secmed

#endif  // SECMED_DAS_PARTITION_H_
