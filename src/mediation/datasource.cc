#include "mediation/datasource.h"

namespace secmed {

void DataSource::AddRelation(const std::string& table, Relation rel) {
  catalog_[table] = std::move(rel);
  ++catalog_version_;
}

void DataSource::SetPolicy(const std::string& table, AccessPolicy policy) {
  policies_[table] = std::move(policy);
  ++catalog_version_;
}

Result<Schema> DataSource::TableSchema(const std::string& table) const {
  auto it = catalog_.find(table);
  if (it == catalog_.end()) {
    return Status::NotFound(name_ + " has no table " + table);
  }
  return it->second.schema();
}

Status DataSource::WithRelation(
    const std::string& table,
    const std::function<void(const Relation&)>& fn) const {
  auto it = catalog_.find(table);
  if (it == catalog_.end()) {
    return Status::NotFound(name_ + " has no table " + table);
  }
  fn(it->second);
  return Status::OK();
}

Status DataSource::VerifyCredentials(
    const std::vector<Credential>& credentials) const {
  if (credentials.empty()) {
    return Status::PermissionDenied("no credentials presented");
  }
  for (const Credential& c : credentials) {
    SECMED_RETURN_IF_ERROR(VerifyCredential(c, ca_key_));
  }
  return Status::OK();
}

Result<RsaPublicKey> DataSource::ClientKeyFrom(
    const std::vector<Credential>& credentials) const {
  SECMED_RETURN_IF_ERROR(VerifyCredentials(credentials));
  return credentials.front().ClientKey();
}

Result<Relation> DataSource::ExecutePartialQuery(
    const std::string& sql, const std::vector<Credential>& credentials) const {
  SECMED_RETURN_IF_ERROR(VerifyCredentials(credentials));

  // Build an access-filtered view of the catalog, then evaluate the query
  // against it.
  Catalog filtered;
  for (const auto& [table, rel] : catalog_) {
    auto pit = policies_.find(table);
    if (pit == policies_.end()) {
      filtered.emplace(table, rel);
      continue;
    }
    auto granted = pit->second.Apply(rel, credentials);
    if (granted.ok()) {
      filtered.emplace(table, std::move(granted).value());
    }
    // Tables the client may not see at all are simply absent.
  }
  return ExecuteSql(sql, filtered);
}

}  // namespace secmed
