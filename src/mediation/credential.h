#ifndef SECMED_MEDIATION_CREDENTIAL_H_
#define SECMED_MEDIATION_CREDENTIAL_H_

#include <map>
#include <string>
#include <vector>

#include "crypto/rsa.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/rng.h"

namespace secmed {

/// A credential of the MMM system (Section 2): links *properties* of the
/// client (not his identity) to one of his public encryption keys, signed
/// by a trusted certification authority. Datasources base access-control
/// decisions only on the properties; the bound public key is what the
/// datasources encrypt partial results to.
struct Credential {
  /// Property assertions, e.g. {"role": "physician", "org": "clinic-a"}.
  std::map<std::string, std::string> properties;
  /// The client public key this credential certifies (serialized
  /// RsaPublicKey).
  Bytes public_key;
  /// The client's public key for the homomorphic encryption scheme E,
  /// "distributed with the client's credentials" (Section 5.1). Serialized
  /// PaillierPublicKey; empty when the client has no homomorphic key.
  Bytes paillier_key;
  /// CA signature over the canonical encoding of properties + keys.
  Bytes signature;

  /// The byte string the CA signs.
  Bytes SignedPayload() const;

  /// Parsed form of `public_key`.
  Result<RsaPublicKey> ClientKey() const;

  /// True iff the credential asserts the given property value.
  bool HasProperty(const std::string& key, const std::string& value) const;

  Bytes Serialize() const;
  static Result<Credential> Deserialize(const Bytes& data);
};

/// The trusted certification authority of the preparatory phase. Issues
/// property credentials bound to client public keys.
class CertificationAuthority {
 public:
  /// Generates the CA's signing keypair (`bits`-bit RSA).
  static Result<CertificationAuthority> Create(size_t bits, RandomSource* rng);

  const RsaPublicKey& public_key() const { return public_key_; }

  /// Issues a signed credential for the given properties and client key.
  /// `paillier_key` may be empty when the client has no homomorphic key.
  Result<Credential> Issue(const std::map<std::string, std::string>& properties,
                           const RsaPublicKey& client_key,
                           const Bytes& paillier_key = Bytes()) const;

 private:
  CertificationAuthority(RsaPrivateKey key)
      : signing_key_(std::move(key)), public_key_(signing_key_.PublicKey()) {}

  RsaPrivateKey signing_key_;
  RsaPublicKey public_key_;
};

/// Verifies a credential's CA signature. OK iff authentic and unmodified.
Status VerifyCredential(const Credential& credential,
                        const RsaPublicKey& ca_key);

}  // namespace secmed

#endif  // SECMED_MEDIATION_CREDENTIAL_H_
