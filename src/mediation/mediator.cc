#include "mediation/mediator.h"

namespace secmed {

std::string JoinQueryPlan::ToString() const {
  return "JoinQueryPlan{" + table1 + "@" + source1 + " ⋈_" + join_attribute +
         " " + table2 + "@" + source2 + ", q1=\"" + partial_query1 +
         "\", q2=\"" + partial_query2 + "\"}";
}

void Mediator::RegisterTable(const std::string& table,
                             const std::string& source, Schema schema) {
  tables_[table] = TableInfo{source, std::move(schema)};
}

Result<std::string> Mediator::SourceOf(const std::string& table) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("no datasource registered for table " + table);
  }
  return it->second.source;
}

Result<Schema> Mediator::SchemaOf(const std::string& table) const {
  auto it = tables_.find(table);
  if (it == tables_.end()) {
    return Status::NotFound("no schema registered for table " + table);
  }
  return it->second.schema;
}

Result<JoinQueryPlan> Mediator::PlanJoinQuery(const std::string& sql) const {
  SECMED_ASSIGN_OR_RETURN(ParsedQuery query, ParseSql(sql));
  if (!query.select_columns.empty()) {
    return Status::Unimplemented(
        "protocols support SELECT * join queries; projections are client-side "
        "post-processing");
  }
  if (query.where && query.where->kind() != Predicate::Kind::kTrue) {
    return Status::Unimplemented(
        "WHERE clauses on the global join query are not supported by the "
        "delivery protocols");
  }
  if (query.joins.size() != 1) {
    return Status::Unimplemented(
        "protocols mediate exactly one JOIN of two relations (got " +
        std::to_string(query.joins.size()) + " joins)");
  }

  JoinQueryPlan plan;
  plan.table1 = query.from.name;
  plan.table2 = query.joins[0].table.name;
  SECMED_ASSIGN_OR_RETURN(plan.source1, SourceOf(plan.table1));
  SECMED_ASSIGN_OR_RETURN(plan.source2, SourceOf(plan.table2));
  SECMED_ASSIGN_OR_RETURN(plan.schema1, SchemaOf(plan.table1));
  SECMED_ASSIGN_OR_RETURN(plan.schema2, SchemaOf(plan.table2));

  if (query.joins[0].natural) {
    // The join attributes are the common columns of the embedded schemas.
    std::vector<std::string> common = plan.schema1.CommonColumns(plan.schema2);
    if (common.empty()) {
      return Status::Unimplemented(
          "protocols require at least one shared join attribute; the schemas "
          "share none");
    }
    plan.join_attributes = std::move(common);
  } else {
    for (const auto& [left_full, right_full] : query.joins[0].on_pairs) {
      const std::string left = Schema::BaseName(left_full);
      const std::string right = Schema::BaseName(right_full);
      if (left != right) {
        return Status::Unimplemented(
            "protocols require R1.A = R2.A on common attribute names; got " +
            left + " vs " + right);
      }
      if (!plan.schema1.HasColumn(left) || !plan.schema2.HasColumn(left)) {
        return Status::InvalidArgument("join attribute " + left +
                                       " missing from a joined schema");
      }
      // Skip duplicates (ON a.x = b.x AND a.x = b.x).
      bool seen = false;
      for (const std::string& a : plan.join_attributes) seen |= a == left;
      if (!seen) plan.join_attributes.push_back(left);
    }
    if (plan.join_attributes.empty()) {
      return Status::InvalidArgument("ON clause names no join attribute");
    }
  }
  plan.join_attribute = plan.join_attributes[0];
  plan.partial_query1 = "select * from " + plan.table1;
  plan.partial_query2 = "select * from " + plan.table2;
  return plan;
}

Result<Mediator::SelectionQueryPlan> Mediator::PlanSelectionQuery(
    const std::string& sql) const {
  SECMED_ASSIGN_OR_RETURN(ParsedQuery query, ParseSql(sql));
  if (!query.joins.empty()) {
    return Status::Unimplemented(
        "selection protocol handles single-table queries; use a join "
        "protocol");
  }
  if (!query.select_columns.empty() || query.HasAggregates()) {
    return Status::Unimplemented(
        "selection protocol supports SELECT *; project client-side");
  }
  SelectionQueryPlan plan;
  plan.table = query.from.name;
  SECMED_ASSIGN_OR_RETURN(plan.source, SourceOf(plan.table));
  SECMED_ASSIGN_OR_RETURN(plan.schema, SchemaOf(plan.table));
  // The WHERE clause is usually *redacted* before the query reaches the
  // mediator (the client keeps the constants and sends only search
  // tokens); when present, validate it anyway.
  if (query.where && query.where->kind() != Predicate::Kind::kTrue) {
    SECMED_RETURN_IF_ERROR(
        ExtractEqualityConditions(query.where, &plan.equalities));
    for (const auto& [col, value] : plan.equalities) {
      if (!plan.schema.HasColumn(Schema::BaseName(col))) {
        return Status::InvalidArgument("unknown column in condition: " + col);
      }
    }
  }
  plan.partial_query = "select * from " + plan.table;
  return plan;
}

}  // namespace secmed
