#include "mediation/preparatory.h"

#include "util/serialize.h"

namespace secmed {

namespace {
constexpr char kMsgCredentialRequest[] = "credential_request";
constexpr char kMsgCredentialIssue[] = "credential_issue";
}  // namespace

Status RunPreparatoryPhase(
    Client* client, const CertificationAuthority& ca,
    const std::string& ca_name, Transport* bus,
    const std::map<std::string, std::string>& properties) {
  if (client == nullptr || bus == nullptr) {
    return Status::InvalidArgument("client and bus are required");
  }

  // Client -> CA: property claims plus the keys to certify.
  {
    BinaryWriter w;
    w.WriteU32(static_cast<uint32_t>(properties.size()));
    for (const auto& [k, v] : properties) {
      w.WriteString(k);
      w.WriteString(v);
    }
    w.WriteBytes(client->public_key().Serialize());
    w.WriteBytes(client->paillier_public_key().Serialize());
    bus->Send(client->name(), ca_name, kMsgCredentialRequest, w.TakeBuffer());
  }

  // CA: issue. (A production CA would validate the property claims
  // against registration records here; the trust decision is out of the
  // paper's scope.)
  {
    SECMED_ASSIGN_OR_RETURN(Message msg,
                            bus->ReceiveOfType(ca_name, kMsgCredentialRequest));
    BinaryReader r(msg.payload);
    SECMED_ASSIGN_OR_RETURN(uint32_t n, r.ReadU32());
    std::map<std::string, std::string> claimed;
    for (uint32_t i = 0; i < n; ++i) {
      SECMED_ASSIGN_OR_RETURN(std::string k, r.ReadString());
      SECMED_ASSIGN_OR_RETURN(std::string v, r.ReadString());
      claimed.emplace(std::move(k), std::move(v));
    }
    SECMED_ASSIGN_OR_RETURN(Bytes rsa_raw, r.ReadBytes());
    SECMED_ASSIGN_OR_RETURN(Bytes paillier_raw, r.ReadBytes());
    SECMED_ASSIGN_OR_RETURN(RsaPublicKey rsa_key,
                            RsaPublicKey::Deserialize(rsa_raw));
    SECMED_ASSIGN_OR_RETURN(Credential cred,
                            ca.Issue(claimed, rsa_key, paillier_raw));
    bus->Send(ca_name, client->name(), kMsgCredentialIssue, cred.Serialize());
  }

  // Client: verify the CA signature and the bound key before storing.
  {
    SECMED_ASSIGN_OR_RETURN(
        Message msg, bus->ReceiveOfType(client->name(), kMsgCredentialIssue));
    SECMED_ASSIGN_OR_RETURN(Credential cred,
                            Credential::Deserialize(msg.payload));
    SECMED_RETURN_IF_ERROR(VerifyCredential(cred, ca.public_key()));
    SECMED_ASSIGN_OR_RETURN(RsaPublicKey bound, cred.ClientKey());
    if (!(bound == client->public_key())) {
      return Status::CryptoError("credential bound to a foreign key");
    }
    client->AddCredential(std::move(cred));
  }
  return Status::OK();
}

}  // namespace secmed
