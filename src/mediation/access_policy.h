#ifndef SECMED_MEDIATION_ACCESS_POLICY_H_
#define SECMED_MEDIATION_ACCESS_POLICY_H_

#include <string>
#include <vector>

#include "mediation/credential.h"
#include "relational/predicate.h"
#include "relational/relation.h"
#include "util/result.h"

namespace secmed {

/// One access rule of a datasource: clients presenting a credential with
/// the required property are granted the rows matching `row_filter`
/// (True() = all rows), with values of columns outside `visible_columns`
/// masked to NULL (empty = all columns visible).
struct AccessRule {
  std::string required_key;
  std::string required_value;
  PredicatePtr row_filter = Predicate::True();
  std::vector<std::string> visible_columns;
};

/// Credential-based access control at a datasource (Section 2): "If the
/// presented credentials suffice to grant data access, the datasources
/// evaluate the partial queries. In case the credentials do not allow
/// full data access, the partial results might be filtered."
///
/// Semantics: every rule matched by any presented credential contributes
/// the rows passing its filter; a tuple is returned if any matching rule
/// grants it (union). A column value is visible if at least one granting
/// rule exposes it. No matching rule at all → kPermissionDenied.
class AccessPolicy {
 public:
  void AddRule(AccessRule rule) { rules_.push_back(std::move(rule)); }
  const std::vector<AccessRule>& rules() const { return rules_; }

  /// Applies the policy to a relation given the client's credentials.
  Result<Relation> Apply(const Relation& rel,
                         const std::vector<Credential>& credentials) const;

 private:
  std::vector<AccessRule> rules_;
};

}  // namespace secmed

#endif  // SECMED_MEDIATION_ACCESS_POLICY_H_
