#ifndef SECMED_MEDIATION_PREPARATORY_H_
#define SECMED_MEDIATION_PREPARATORY_H_

#include <map>
#include <string>

#include "mediation/client.h"
#include "mediation/credential.h"
#include "mediation/network.h"
#include "util/result.h"

namespace secmed {

/// Runs the preparatory phase of the MMM protocol (Figure 2, [3]) over
/// the bus: the client sends the certification authority its property
/// claims together with the public keys to certify; the CA issues the
/// signed credential and returns it; the client verifies the signature
/// before storing it.
///
/// (Client::AcquireCredential performs the same exchange as a direct
/// call; this variant exists so the message-level view — what the CA
/// sees, what travels — is part of the recorded transcript.)
Status RunPreparatoryPhase(Client* client, const CertificationAuthority& ca,
                           const std::string& ca_name, Transport* bus,
                           const std::map<std::string, std::string>& properties);

}  // namespace secmed

#endif  // SECMED_MEDIATION_PREPARATORY_H_
