#ifndef SECMED_MEDIATION_NETWORK_H_
#define SECMED_MEDIATION_NETWORK_H_

// The transport layer moved to src/net/ when it grew real socket
// backends; this header remains so that mediation-level code (and its
// many includers) keep compiling unchanged.
//
//   net/message.h    Message, PartyStats, NetworkCostModel
//   net/transport.h  the abstract Transport contract
//   net/bus.h        NetworkBus, the in-process implementation
//   net/wire.h       the binary frame codec (framed sizes, sessions)

#include "net/bus.h"        // IWYU pragma: export
#include "net/message.h"    // IWYU pragma: export
#include "net/transport.h"  // IWYU pragma: export

#endif  // SECMED_MEDIATION_NETWORK_H_
