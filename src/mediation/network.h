#ifndef SECMED_MEDIATION_NETWORK_H_
#define SECMED_MEDIATION_NETWORK_H_

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace secmed {

/// One protocol message between parties. Every payload is a serialized
/// byte string, so the accounting below reflects realistic wire sizes.
struct Message {
  std::string from;
  std::string to;
  std::string type;  // e.g. "query", "partial_result", "server_query"
  Bytes payload;

  /// Approximate wire size: payload plus header fields.
  size_t WireSize() const {
    return payload.size() + from.size() + to.size() + type.size() + 12;
  }
};

/// Per-party traffic statistics.
struct PartyStats {
  size_t messages_sent = 0;
  size_t messages_received = 0;
  size_t bytes_sent = 0;
  size_t bytes_received = 0;
  /// Number of *interactions*: maximal runs of consecutive sends — the
  /// paper's "the client has to interact twice with the mediator".
  size_t interactions = 0;
};

/// Cost model of a real transport, applied to a recorded transcript:
/// every message pays one propagation delay plus its serialization time
/// at the given bandwidth. Lets the benchmarks project the in-process
/// measurements onto WAN/LAN deployments, where the protocols' different
/// round counts and byte volumes dominate differently.
struct NetworkCostModel {
  double latency_ms = 0;         // one-way propagation delay per message
  double bandwidth_kbps = 0;     // 0 = infinite

  /// Transfer time of one message under this model.
  double MessageMs(size_t wire_bytes) const {
    double ms = latency_ms;
    if (bandwidth_kbps > 0) {
      ms += static_cast<double>(wire_bytes) * 8.0 / bandwidth_kbps;
    }
    return ms;
  }
};

/// Projected total transfer time of a transcript under the model,
/// assuming the messages are sequential (protocol phases are; the
/// estimate is an upper bound where sends within a phase could overlap).
double EstimateTransferMs(const std::vector<Message>& transcript,
                          const NetworkCostModel& model);

/// In-process network connecting the parties of the mediation system.
///
/// The bus is the substitution for the MMM's real transport (DESIGN.md):
/// it preserves everything protocol-relevant — who sees which bytes, in
/// which order, with full transcript capture for the leakage analyzer —
/// while replacing sockets with FIFO queues.
class NetworkBus {
 public:
  /// Enqueues a message and records it in the transcript.
  void Send(Message msg);

  /// Convenience overload.
  void Send(const std::string& from, const std::string& to,
            const std::string& type, Bytes payload);

  /// Pops the next message addressed to `party` (FIFO).
  /// kNotFound when the inbox is empty.
  Result<Message> Receive(const std::string& party);

  /// Pops the next message for `party` and returns it when its type
  /// matches. kNotFound when the inbox is empty; kProtocolError when the
  /// next message has a different type — the mismatched message is
  /// *dequeued* in that case, so a caller retrying in a loop makes
  /// progress instead of spinning on the same message forever.
  Result<Message> ReceiveOfType(const std::string& party,
                                const std::string& type);

  /// Number of queued messages for the party.
  size_t PendingFor(const std::string& party) const;

  /// Full ordered transcript of all messages.
  const std::vector<Message>& transcript() const { return transcript_; }

  /// Statistics for one party (zeroes if it never communicated).
  PartyStats StatsOf(const std::string& party) const;

  /// Total bytes across all messages.
  size_t TotalBytes() const;

  /// Concatenated payload bytes of every message the party received —
  /// its complete protocol view, fed to the leakage analyzer.
  Bytes ViewOf(const std::string& party) const;

  /// Clears transcript, queues and statistics.
  void Reset();

  /// Installs a fault-injection hook invoked on every Send *before*
  /// delivery; it may mutate the message (corrupt bytes, rewrite headers).
  /// Used by the robustness tests to model an unreliable or actively
  /// interfering network. Pass nullptr to remove.
  void SetTamperHook(std::function<void(Message*)> hook) {
    tamper_hook_ = std::move(hook);
  }

 private:
  std::function<void(Message*)> tamper_hook_;
  std::map<std::string, std::deque<Message>> inboxes_;
  std::vector<Message> transcript_;
  std::string last_sender_;
  std::map<std::string, PartyStats> stats_;
};

}  // namespace secmed

#endif  // SECMED_MEDIATION_NETWORK_H_
