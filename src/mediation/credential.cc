#include "mediation/credential.h"

#include "util/serialize.h"

namespace secmed {

Bytes Credential::SignedPayload() const {
  BinaryWriter w;
  w.WriteU32(static_cast<uint32_t>(properties.size()));
  for (const auto& [k, v] : properties) {  // std::map: deterministic order
    w.WriteString(k);
    w.WriteString(v);
  }
  w.WriteBytes(public_key);
  w.WriteBytes(paillier_key);
  return w.TakeBuffer();
}

Result<RsaPublicKey> Credential::ClientKey() const {
  return RsaPublicKey::Deserialize(public_key);
}

bool Credential::HasProperty(const std::string& key,
                             const std::string& value) const {
  auto it = properties.find(key);
  return it != properties.end() && it->second == value;
}

Bytes Credential::Serialize() const {
  BinaryWriter w;
  w.WriteBytes(SignedPayload());
  w.WriteBytes(signature);
  return w.TakeBuffer();
}

Result<Credential> Credential::Deserialize(const Bytes& data) {
  BinaryReader r(data);
  SECMED_ASSIGN_OR_RETURN(Bytes payload, r.ReadBytes());
  SECMED_ASSIGN_OR_RETURN(Bytes signature, r.ReadBytes());
  if (!r.AtEnd()) return Status::ParseError("trailing bytes in credential");

  BinaryReader pr(payload);
  Credential c;
  SECMED_ASSIGN_OR_RETURN(uint32_t n, pr.ReadU32());
  for (uint32_t i = 0; i < n; ++i) {
    SECMED_ASSIGN_OR_RETURN(std::string k, pr.ReadString());
    SECMED_ASSIGN_OR_RETURN(std::string v, pr.ReadString());
    c.properties.emplace(std::move(k), std::move(v));
  }
  SECMED_ASSIGN_OR_RETURN(c.public_key, pr.ReadBytes());
  SECMED_ASSIGN_OR_RETURN(c.paillier_key, pr.ReadBytes());
  c.signature = std::move(signature);
  return c;
}

Result<CertificationAuthority> CertificationAuthority::Create(
    size_t bits, RandomSource* rng) {
  SECMED_ASSIGN_OR_RETURN(RsaPrivateKey key, RsaGenerateKey(bits, rng));
  return CertificationAuthority(std::move(key));
}

Result<Credential> CertificationAuthority::Issue(
    const std::map<std::string, std::string>& properties,
    const RsaPublicKey& client_key, const Bytes& paillier_key) const {
  Credential c;
  c.properties = properties;
  c.public_key = client_key.Serialize();
  c.paillier_key = paillier_key;
  SECMED_ASSIGN_OR_RETURN(c.signature, RsaSign(signing_key_, c.SignedPayload()));
  return c;
}

Status VerifyCredential(const Credential& credential,
                        const RsaPublicKey& ca_key) {
  return RsaVerify(ca_key, credential.SignedPayload(), credential.signature);
}

}  // namespace secmed
