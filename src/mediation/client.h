#ifndef SECMED_MEDIATION_CLIENT_H_
#define SECMED_MEDIATION_CLIENT_H_

#include <string>
#include <vector>

#include "crypto/paillier.h"
#include "crypto/rsa.h"
#include "mediation/credential.h"
#include "util/result.h"
#include "util/rng.h"

namespace secmed {

/// A client of the mediated system: holds the RSA keypair its credentials
/// are bound to, a Paillier keypair for the PM protocol, and the set of
/// credentials acquired in the preparatory phase.
class Client {
 public:
  /// Generates the client's key material.
  static Result<Client> Create(std::string name, size_t rsa_bits,
                               size_t paillier_bits, RandomSource* rng);

  const std::string& name() const { return name_; }
  const RsaPublicKey& public_key() const { return rsa_public_; }
  const RsaPrivateKey& private_key() const { return rsa_key_; }
  const PaillierPublicKey& paillier_public_key() const {
    return paillier_keys_.public_key;
  }
  const PaillierPrivateKey& paillier_private_key() const {
    return paillier_keys_.private_key;
  }

  /// Preparatory phase: requests a credential asserting `properties`,
  /// bound to this client's keys, and stores it.
  Status AcquireCredential(const CertificationAuthority& ca,
                           const std::map<std::string, std::string>& properties);

  /// Stores an externally obtained credential (e.g. from the
  /// message-level preparatory phase, RunPreparatoryPhase).
  void AddCredential(Credential cred) {
    credentials_.push_back(std::move(cred));
  }

  const std::vector<Credential>& credentials() const { return credentials_; }

 private:
  Client(std::string name, RsaPrivateKey rsa_key, PaillierKeyPair paillier)
      : name_(std::move(name)),
        rsa_key_(std::move(rsa_key)),
        rsa_public_(rsa_key_.PublicKey()),
        paillier_keys_(std::move(paillier)) {}

  std::string name_;
  RsaPrivateKey rsa_key_;
  RsaPublicKey rsa_public_;
  PaillierKeyPair paillier_keys_;
  std::vector<Credential> credentials_;
};

}  // namespace secmed

#endif  // SECMED_MEDIATION_CLIENT_H_
