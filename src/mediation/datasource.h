#ifndef SECMED_MEDIATION_DATASOURCE_H_
#define SECMED_MEDIATION_DATASOURCE_H_

#include <functional>
#include <map>
#include <string>
#include <vector>

#include "mediation/access_policy.h"
#include "mediation/credential.h"
#include "relational/sql.h"
#include "util/result.h"

namespace secmed {

/// A datasource of the mediated system: owns relations, enforces
/// credential-based access control, and executes partial queries.
///
/// The scheme-specific encryption of partial results (DAS, commutative,
/// PM) lives in the protocol layer (src/core); the datasource provides
/// the access-controlled plaintext partial result those protocols start
/// from (step 4 of Listing 1).
class DataSource {
 public:
  explicit DataSource(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Registers a relation under its (global) table name.
  void AddRelation(const std::string& table, Relation rel);

  /// Installs the access policy for a table. Tables without a policy are
  /// open to any client presenting at least one valid credential.
  void SetPolicy(const std::string& table, AccessPolicy policy);

  /// Sets the CA key used to verify presented credentials.
  void set_ca_key(const RsaPublicKey& key) { ca_key_ = key; }

  /// Monotone version of the catalog + policy state, bumped by
  /// AddRelation and SetPolicy. Prepared-dataset cache keys
  /// (core/prepared.h) embed it, so any data or policy change retires
  /// every prepared entry derived from the old state — the explicit
  /// invalidation half of the cache contract (the other half is the
  /// content digest inside the key).
  uint64_t catalog_version() const { return catalog_version_; }

  bool HasTable(const std::string& table) const {
    return catalog_.count(table) > 0;
  }

  /// Schema of a stored relation.
  Result<Schema> TableSchema(const std::string& table) const;

  /// Runs `fn` over the stored relation without exporting it — the
  /// planner's statistics hook (src/plan/stats.h): statistics are
  /// computed datasource-side, so raw tuples never cross this boundary.
  /// Returns kNotFound when the table is absent.
  Status WithRelation(const std::string& table,
                      const std::function<void(const Relation&)>& fn) const;

  /// Step 4 of the request phase: verifies the credentials, applies the
  /// table's access policy, and evaluates the partial query over the
  /// filtered catalog. Returns the plaintext partial result Ri.
  Result<Relation> ExecutePartialQuery(
      const std::string& sql,
      const std::vector<Credential>& credentials) const;

  /// Extracts the client encryption key the partial result must be
  /// encrypted to: the public key bound to the first verified credential.
  Result<RsaPublicKey> ClientKeyFrom(
      const std::vector<Credential>& credentials) const;

 private:
  Status VerifyCredentials(const std::vector<Credential>& credentials) const;

  std::string name_;
  Catalog catalog_;
  std::map<std::string, AccessPolicy> policies_;
  RsaPublicKey ca_key_;
  uint64_t catalog_version_ = 0;
};

}  // namespace secmed

#endif  // SECMED_MEDIATION_DATASOURCE_H_
