#include "mediation/access_policy.h"

#include <algorithm>

namespace secmed {

Result<Relation> AccessPolicy::Apply(
    const Relation& rel, const std::vector<Credential>& credentials) const {
  // Collect the rules matched by any credential.
  std::vector<const AccessRule*> matching;
  for (const AccessRule& rule : rules_) {
    for (const Credential& cred : credentials) {
      if (cred.HasProperty(rule.required_key, rule.required_value)) {
        matching.push_back(&rule);
        break;
      }
    }
  }
  if (matching.empty()) {
    return Status::PermissionDenied(
        "no presented credential matches any access rule");
  }

  Relation out(rel.schema());
  for (const Tuple& t : rel.tuples()) {
    // Visibility per column: union over granting rules.
    std::vector<bool> visible(rel.schema().size(), false);
    bool granted = false;
    for (const AccessRule* rule : matching) {
      SECMED_ASSIGN_OR_RETURN(bool pass, rule->row_filter->Eval(t, rel.schema()));
      if (!pass) continue;
      granted = true;
      if (rule->visible_columns.empty()) {
        std::fill(visible.begin(), visible.end(), true);
      } else {
        for (const std::string& col : rule->visible_columns) {
          SECMED_ASSIGN_OR_RETURN(size_t idx, rel.schema().IndexOf(col));
          visible[idx] = true;
        }
      }
    }
    if (!granted) continue;
    Tuple masked = t;
    for (size_t i = 0; i < masked.size(); ++i) {
      if (!visible[i]) masked[i] = Value::Null();
    }
    out.AppendUnchecked(std::move(masked));
  }
  return out;
}

}  // namespace secmed
