#ifndef SECMED_MEDIATION_MEDIATOR_H_
#define SECMED_MEDIATION_MEDIATOR_H_

#include <map>
#include <string>

#include "relational/schema.h"
#include "relational/sql.h"
#include "util/result.h"

namespace secmed {

/// The execution plan for the query class the paper confines itself to:
/// one JOIN of two "select *" partial queries over relations managed by
/// two datasources, with a single join attribute Ajoin.
struct JoinQueryPlan {
  std::string table1;
  std::string table2;
  std::string source1;  // datasource managing table1
  std::string source2;
  /// Unqualified join attributes. The paper's base protocols assume one
  /// (Ajoin); the multi-attribute extension of Section 8 allows several —
  /// all must match for a tuple pair to join.
  std::vector<std::string> join_attributes;
  /// The primary join attribute (join_attributes[0]); kept for the common
  /// single-attribute case.
  std::string join_attribute;
  std::string partial_query1;  // "select * from <table1>"
  std::string partial_query2;
  Schema schema1;  // global schema of table1
  Schema schema2;

  std::string ToString() const;
};

/// The mediator: holds the embedding of datasource schemas into the
/// global schema (Section 2, [2]), localizes the datasources for a global
/// query, and splits the query into partial queries using SQL2Algebra.
///
/// The mediator never sees plaintext data; scheme-specific processing of
/// the encrypted partial results is in the protocol layer (src/core).
class Mediator {
 public:
  explicit Mediator(std::string name) : name_(std::move(name)) {}

  const std::string& name() const { return name_; }

  /// Registers a global table: which datasource manages it and its global
  /// schema (the embedding).
  void RegisterTable(const std::string& table, const std::string& source,
                     Schema schema);

  /// Datasource managing the table; kNotFound when unregistered.
  Result<std::string> SourceOf(const std::string& table) const;
  Result<Schema> SchemaOf(const std::string& table) const;

  /// Step 2 of Listing 1: parses the global query, checks it is a single
  /// two-relation JOIN, identifies the join attributes (A1 = A2) and the
  /// responsible datasources, and produces the partial queries.
  ///
  /// Rejected queries: non-join queries, joins of more than two relations,
  /// joins without a shared attribute, and joins over unregistered tables.
  Result<JoinQueryPlan> PlanJoinQuery(const std::string& sql) const;

  /// Plans a single-table exact-match selection query
  /// (SELECT * FROM t WHERE col = literal [AND col = literal ...]) for the
  /// searchable-encryption selection protocol (Yang et al., Related Work).
  struct SelectionQueryPlan {
    std::string table;
    std::string source;
    Schema schema;
    std::vector<std::pair<std::string, Value>> equalities;
    std::string partial_query;  // "select * from <table>"
  };
  Result<SelectionQueryPlan> PlanSelectionQuery(const std::string& sql) const;

 private:
  struct TableInfo {
    std::string source;
    Schema schema;
  };

  std::string name_;
  std::map<std::string, TableInfo> tables_;
};

}  // namespace secmed

#endif  // SECMED_MEDIATION_MEDIATOR_H_
