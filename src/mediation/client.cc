#include "mediation/client.h"

namespace secmed {

Result<Client> Client::Create(std::string name, size_t rsa_bits,
                              size_t paillier_bits, RandomSource* rng) {
  SECMED_ASSIGN_OR_RETURN(RsaPrivateKey rsa_key, RsaGenerateKey(rsa_bits, rng));
  SECMED_ASSIGN_OR_RETURN(PaillierKeyPair paillier,
                          PaillierGenerateKey(paillier_bits, rng));
  return Client(std::move(name), std::move(rsa_key), std::move(paillier));
}

Status Client::AcquireCredential(
    const CertificationAuthority& ca,
    const std::map<std::string, std::string>& properties) {
  SECMED_ASSIGN_OR_RETURN(
      Credential cred,
      ca.Issue(properties, rsa_public_,
               paillier_keys_.public_key.Serialize()));
  credentials_.push_back(std::move(cred));
  return Status::OK();
}

}  // namespace secmed
