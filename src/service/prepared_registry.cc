#include "service/prepared_registry.h"

#include <utility>

#include "crypto/drbg.h"

namespace secmed {

PreparedDatasetRegistry::PreparedDatasetRegistry(Options options)
    : options_(std::move(options)) {}

std::shared_ptr<const PreparedValue> PreparedDatasetRegistry::Get(
    const std::string& key) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it == entries_.end()) {
    ++stats_.misses;
    obs::AddCounter(options_.obs, "service.cache.miss", 1);
    return nullptr;
  }
  ++stats_.hits;
  obs::AddCounter(options_.obs, "service.cache.hit", 1);
  lru_.splice(lru_.begin(), lru_, it->second.lru_it);
  return it->second.value;
}

std::shared_ptr<const PreparedValue> PreparedDatasetRegistry::Put(
    const std::string& key, std::shared_ptr<const PreparedValue> value) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = entries_.find(key);
  if (it != entries_.end()) {
    // First insert wins; the racing value holds identical bytes by the
    // determinism contract, so dropping it loses nothing.
    lru_.splice(lru_.begin(), lru_, it->second.lru_it);
    return it->second.value;
  }
  Entry e;
  e.bytes = value->ByteSize();
  e.value = std::move(value);
  lru_.push_front(key);
  e.lru_it = lru_.begin();
  stats_.resident_bytes += e.bytes;
  auto inserted = entries_.emplace(key, std::move(e)).first;
  ++stats_.inserts;
  stats_.entries = entries_.size();
  obs::AddCounter(options_.obs, "service.cache.insert", 1);
  EvictToBudgetLocked();
  obs::RaiseMaxGauge(options_.obs, "service.cache.max_resident_bytes",
                     stats_.resident_bytes);
  return inserted->second.value;
}

std::unique_ptr<RandomSource> PreparedDatasetRegistry::PrepareRng(
    const std::string& key) {
  std::string seed = "secmed-prepare-" + options_.label + ":" + key;
  return std::make_unique<HmacDrbg>(Bytes(seed.begin(), seed.end()));
}

size_t PreparedDatasetRegistry::Invalidate(const std::string& prefix) {
  std::lock_guard<std::mutex> lock(mu_);
  size_t dropped = 0;
  for (auto it = entries_.lower_bound(prefix); it != entries_.end();) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    stats_.resident_bytes -= it->second.bytes;
    lru_.erase(it->second.lru_it);
    it = entries_.erase(it);
    ++dropped;
  }
  stats_.invalidations += dropped;
  stats_.entries = entries_.size();
  obs::AddCounter(options_.obs, "service.cache.invalidate", dropped);
  return dropped;
}

PreparedRegistryStats PreparedDatasetRegistry::Stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

void PreparedDatasetRegistry::EvictToBudgetLocked() {
  if (options_.max_bytes == 0) return;
  while (stats_.resident_bytes > options_.max_bytes && lru_.size() > 1) {
    const std::string& victim = lru_.back();
    auto it = entries_.find(victim);
    stats_.resident_bytes -= it->second.bytes;
    entries_.erase(it);
    lru_.pop_back();
    ++stats_.evictions;
    obs::AddCounter(options_.obs, "service.cache.evict", 1);
  }
  stats_.entries = entries_.size();
}

}  // namespace secmed
