#ifndef SECMED_SERVICE_SCHEDULER_H_
#define SECMED_SERVICE_SCHEDULER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

#include "obs/scope.h"
#include "util/result.h"

namespace secmed {

/// Admission control and execution of mediation sessions: a fixed worker
/// pool runs at most `max_concurrent` sessions at once, excess
/// submissions wait in a bounded queue, and overflow is shed immediately
/// with kUnavailable — a loaded service degrades by refusing work, never
/// by hanging or crashing (docs/SERVICE.md).
///
/// Lifecycle: accept from construction on; Drain() stops admission and
/// waits for the queue and the in-flight sessions to finish under a
/// deadline (the secmedd SIGTERM path); the destructor drains without a
/// deadline.
class SessionScheduler {
 public:
  struct Options {
    /// Worker pool size == maximum concurrently running sessions.
    size_t max_concurrent = 4;
    /// Bounded wait queue in front of the pool; a submission finding the
    /// queue full is shed. 0 = no queueing (admission only while a
    /// worker is idle).
    size_t queue_depth = 16;
    /// Counter/gauge sink ("service.sched.*"); null disables.
    obs::Scope* obs = nullptr;
  };

  /// A session body; receives the scheduler-assigned session ID.
  /// Failures are the callback's own concern (report channels, promises)
  /// — the scheduler only tracks completion.
  using SessionFn = std::function<void(uint64_t session_id)>;

  explicit SessionScheduler(Options options);
  ~SessionScheduler();

  SessionScheduler(const SessionScheduler&) = delete;
  SessionScheduler& operator=(const SessionScheduler&) = delete;

  /// Admits `fn` and returns its assigned session ID, or kUnavailable
  /// when the wait queue is full or the scheduler is draining. Never
  /// blocks the caller on session execution.
  Result<uint64_t> Submit(SessionFn fn);

  /// Stops admission and waits until every queued and in-flight session
  /// has finished, up to `timeout` (<= 0 waits forever). Returns
  /// kDeadlineExceeded — with sessions still running — if the budget
  /// runs out; safe to call more than once.
  Status Drain(std::chrono::milliseconds timeout);

  struct Stats {
    uint64_t submitted = 0;
    uint64_t accepted = 0;
    uint64_t shed = 0;  // refused with kUnavailable
    uint64_t completed = 0;
    uint64_t max_queue_depth = 0;  // high-watermark
    uint64_t max_in_flight = 0;    // high-watermark
  };
  Stats stats() const;

  /// Sessions currently queued + running (diagnostics).
  size_t Pending() const;

 private:
  struct Job {
    uint64_t id;
    SessionFn fn;
  };

  void WorkerLoop();

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;  // queue non-empty or shutting down
  std::condition_variable idle_cv_;  // a session finished / queue drained
  std::deque<Job> queue_;
  std::vector<std::thread> workers_;
  uint64_t next_id_ = 1;
  size_t in_flight_ = 0;
  bool draining_ = false;
  bool stopping_ = false;  // workers exit once the queue is empty
  Stats stats_;
};

}  // namespace secmed

#endif  // SECMED_SERVICE_SCHEDULER_H_
