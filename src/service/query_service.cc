#include "service/query_service.h"

#include <future>
#include <utility>

#include "crypto/drbg.h"
#include "crypto/sha256.h"
#include "net/bus.h"
#include "util/serialize.h"

namespace secmed {

QueryService::QueryService(MediationTestbed* testbed, Options options)
    : testbed_(testbed),
      options_(std::move(options)),
      registry_([&] {
        PreparedDatasetRegistry::Options ropt;
        ropt.max_bytes = options_.cache_bytes;
        ropt.label = options_.rng_label;
        ropt.obs = options_.obs;
        return ropt;
      }()),
      scheduler_([&] {
        SessionScheduler::Options sopt;
        sopt.max_concurrent = options_.max_concurrent;
        sopt.queue_depth = options_.queue_depth;
        sopt.obs = options_.obs;
        return sopt;
      }()) {}

QueryService::~QueryService() { Drain(std::chrono::milliseconds(0)); }

Result<uint64_t> QueryService::Submit(const Query& query,
                                      std::function<void(QueryOutcome)> done) {
  return scheduler_.Submit(
      [this, query, done = std::move(done)](uint64_t session_id) {
        done(Execute(query, session_id));
      });
}

Result<QueryOutcome> QueryService::Run(const Query& query) {
  auto promise = std::make_shared<std::promise<QueryOutcome>>();
  std::future<QueryOutcome> future = promise->get_future();
  SECMED_ASSIGN_OR_RETURN(
      uint64_t id,
      Submit(query, [promise](QueryOutcome out) {
        promise->set_value(std::move(out));
      }));
  (void)id;
  return future.get();
}

QueryOutcome QueryService::Execute(const Query& query, uint64_t session_id) {
  const auto start = std::chrono::steady_clock::now();
  QueryOutcome out;
  out.session_id = session_id;

  // Session isolation as in core/remote.cc RunOverTransport: a private
  // bus and a session-ID-seeded DRBG, so the execution is a function of
  // (query, session id) alone — concurrency cannot perturb it.
  NetworkBus bus;
  HmacDrbg session_rng(ToBytes("secmed-session-" + options_.rng_label + "-" +
                               std::to_string(session_id)));
  ProtocolContext ctx = testbed_->SessionContext(&bus, &session_rng);
  ctx.threads = options_.threads;
  ctx.obs = options_.obs;
  ctx.prepared = options_.use_prepared ? &registry_ : nullptr;

  RunSpec spec;
  spec.protocol = query.protocol;
  spec.das_partitions = query.das_partitions;
  spec.group_bits = query.group_bits;
  auto protocol = BuildProtocol(spec);
  if (!protocol.ok()) {
    out.status = protocol.status();
  } else {
    Result<Relation> result = (*protocol)->Run(query.sql, &ctx);
    if (result.ok()) {
      out.result = std::move(result).value();
      // Canonical digest: the result is a bag and its delivery order
      // depends on the per-session RNG, so hash the canonically sorted
      // tuples — digests then compare across sessions and across
      // warm/cold runs, where raw serialization order would differ.
      Relation canonical = out.result;
      canonical.SortCanonically();
      out.result_digest = Sha256::Hash(canonical.Serialize());
      out.status = Status::OK();
    } else {
      out.status = result.status();
    }
  }

  out.messages = bus.transcript().size();
  if (options_.record_transcripts) {
    out.transcript.reserve(bus.transcript().size());
    for (const Message& m : bus.transcript()) {
      BinaryWriter w;
      w.WriteString(m.from);
      w.WriteString(m.to);
      w.WriteString(m.type);
      w.WriteBytes(m.payload);
      out.transcript.push_back(w.TakeBuffer());
    }
  }

  out.latency_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  obs::ObserveValue(options_.obs, "service.query.latency_us",
                    static_cast<uint64_t>(out.latency_ms * 1000.0));
  obs::AddCounter(options_.obs,
                  out.status.ok() ? "service.query.ok" : "service.query.error",
                  1);
  return out;
}

}  // namespace secmed
