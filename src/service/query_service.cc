#include "service/query_service.h"

#include <future>
#include <memory>
#include <utility>
#include <vector>

#include "core/cascade.h"
#include "crypto/drbg.h"
#include "crypto/sha256.h"
#include "net/bus.h"
#include "relational/sql.h"
#include "util/serialize.h"

namespace secmed {

QueryService::QueryService(MediationTestbed* testbed, Options options)
    : testbed_(testbed),
      options_(std::move(options)),
      registry_([&] {
        PreparedDatasetRegistry::Options ropt;
        ropt.max_bytes = options_.cache_bytes;
        ropt.label = options_.rng_label;
        ropt.obs = options_.obs;
        return ropt;
      }()),
      scheduler_([&] {
        SessionScheduler::Options sopt;
        sopt.max_concurrent = options_.max_concurrent;
        sopt.queue_depth = options_.queue_depth;
        sopt.obs = options_.obs;
        return sopt;
      }()) {}

QueryService::~QueryService() { Drain(std::chrono::milliseconds(0)); }

Result<uint64_t> QueryService::Submit(const Query& query,
                                      std::function<void(QueryOutcome)> done) {
  return scheduler_.Submit(
      [this, query, done = std::move(done)](uint64_t session_id) {
        done(Execute(query, session_id));
      });
}

Result<QueryOutcome> QueryService::Run(const Query& query) {
  auto promise = std::make_shared<std::promise<QueryOutcome>>();
  std::future<QueryOutcome> future = promise->get_future();
  SECMED_ASSIGN_OR_RETURN(
      uint64_t id,
      Submit(query, [promise](QueryOutcome out) {
        promise->set_value(std::move(out));
      }));
  (void)id;
  return future.get();
}

plan::Planner QueryService::MakePlanner(const Query& query) const {
  plan::PlannerOptions popt;
  popt.params.das_partitions = query.das_partitions;
  popt.params.group_bits = query.group_bits;
  popt.params.paillier_bits = testbed_->options().paillier_bits;
  popt.params.rsa_bits = testbed_->options().rsa_bits;
  popt.policy = query.policy;
  return plan::Planner(plan::CostModel(options_.calibration), popt);
}

Result<plan::PlanChoice> QueryService::Explain(const Query& query) {
  // Planning needs a context only for source statistics; no protocol
  // traffic flows, so a throwaway bus and rng suffice. The prepared
  // registry is shared, so collected stats are reused by later sessions.
  NetworkBus bus;
  HmacDrbg rng(ToBytes("secmed-explain-" + options_.rng_label));
  ProtocolContext ctx = testbed_->SessionContext(&bus, &rng);
  ctx.threads = options_.threads;
  ctx.obs = options_.obs;
  ctx.prepared = options_.use_prepared ? &registry_ : nullptr;
  return MakePlanner(query).Plan(query.sql, &ctx);
}

QueryOutcome QueryService::Execute(const Query& query, uint64_t session_id) {
  const auto start = std::chrono::steady_clock::now();
  QueryOutcome out;
  out.session_id = session_id;

  // Session isolation as in core/remote.cc RunOverTransport: a private
  // bus and a session-ID-seeded DRBG, so the execution is a function of
  // (query, session id) alone — concurrency cannot perturb it.
  NetworkBus bus;
  HmacDrbg session_rng(ToBytes("secmed-session-" + options_.rng_label + "-" +
                               std::to_string(session_id)));
  ProtocolContext ctx = testbed_->SessionContext(&bus, &session_rng);
  ctx.threads = options_.threads;
  ctx.obs = options_.obs;
  ctx.prepared = options_.use_prepared ? &registry_ : nullptr;

  // Resolve the per-level protocol schedule: a fixed protocol repeats
  // for every cascade level; "auto" asks the planner (src/plan/), which
  // may pick a different protocol per level AND a different join order —
  // both are carried to the executor below, so the run is the plan the
  // leakage policy admitted, not a same-protocol rearrangement of it.
  std::vector<std::string> schedule_names;
  std::vector<size_t> join_order;
  Status plan_status = Status::OK();
  size_t join_clauses = 1;
  if (auto parsed = ParseSql(query.sql); parsed.ok()) {
    join_clauses = std::max<size_t>(1, parsed->joins.size());
  }
  if (query.protocol == "auto") {
    obs::AddCounter(options_.obs, "service.query.auto", 1);
    Result<plan::PlanChoice> planned = MakePlanner(query).Plan(query.sql, &ctx);
    if (planned.ok()) {
      out.plan = std::make_shared<plan::PlanChoice>(std::move(planned).value());
      schedule_names = out.plan->ProtocolSchedule();
      join_order = out.plan->chosen.join_order;
    } else {
      plan_status = planned.status();
    }
  } else {
    schedule_names.assign(join_clauses, query.protocol);
  }

  // Instantiate the protocol of each level; a cascade with k levels under
  // one protocol shares a single instance (protocols are stateless across
  // runs), matching the legacy fixed-protocol transcripts.
  std::vector<std::unique_ptr<JoinProtocol>> owned;
  std::vector<JoinProtocol*> schedule;
  for (const std::string& name : schedule_names) {
    JoinProtocol* reuse = nullptr;
    for (size_t j = 0; j < schedule.size(); ++j) {
      if (schedule_names[j] == name) {
        reuse = schedule[j];
        break;
      }
    }
    if (reuse != nullptr) {
      schedule.push_back(reuse);
      continue;
    }
    RunSpec spec;
    spec.protocol = name;
    spec.das_partitions = query.das_partitions;
    spec.group_bits = query.group_bits;
    auto built = BuildProtocol(spec);
    if (!built.ok()) {
      plan_status = built.status();
      break;
    }
    owned.push_back(std::move(built).value());
    schedule.push_back(owned.back().get());
  }

  if (!plan_status.ok() || schedule.empty()) {
    out.status = !plan_status.ok()
                     ? plan_status
                     : Status::Internal("empty protocol schedule");
  } else {
    Result<Relation> result = Status::Internal("unreached");
    if (schedule.size() == 1 && join_clauses <= 1) {
      // Single mediation: run the protocol directly — bit-identical to
      // the pre-planner fixed-protocol path.
      result = schedule[0]->Run(query.sql, &ctx);
    } else {
      // k-way cascade, possibly mixed-protocol and reordered by the
      // planner (docs/PLANNER.md). The executor validates the order and
      // fails rather than falling back to the written order, which would
      // divorce the run from the costed, policy-checked plan.
      CascadeExecutor cascade(schedule[0], testbed_->ca_key());
      cascade.SetProtocolSchedule(schedule);
      cascade.SetJoinOrder(join_order);
      result = cascade.Run(query.sql, &ctx);
    }
    if (result.ok()) {
      out.result = std::move(result).value();
      // Canonical digest: the result is a bag and its delivery order
      // depends on the per-session RNG, so hash the canonically sorted
      // tuples — digests then compare across sessions and across
      // warm/cold runs, where raw serialization order would differ.
      Relation canonical = out.result;
      canonical.SortCanonically();
      out.result_digest = Sha256::Hash(canonical.Serialize());
      out.status = Status::OK();
    } else {
      out.status = result.status();
    }
  }

  out.messages = bus.transcript().size();
  for (const Message& m : bus.transcript()) out.bytes += m.payload.size();
  if (options_.record_transcripts) {
    out.transcript.reserve(bus.transcript().size());
    for (const Message& m : bus.transcript()) {
      BinaryWriter w;
      w.WriteString(m.from);
      w.WriteString(m.to);
      w.WriteString(m.type);
      w.WriteBytes(m.payload);
      out.transcript.push_back(w.TakeBuffer());
    }
  }

  out.latency_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();
  obs::ObserveValue(options_.obs, "service.query.latency_us",
                    static_cast<uint64_t>(out.latency_ms * 1000.0));
  obs::AddCounter(options_.obs,
                  out.status.ok() ? "service.query.ok" : "service.query.error",
                  1);
  return out;
}

}  // namespace secmed
