#ifndef SECMED_SERVICE_PREPARED_REGISTRY_H_
#define SECMED_SERVICE_PREPARED_REGISTRY_H_

#include <list>
#include <map>
#include <memory>
#include <string>

#include <mutex>

#include "core/prepared.h"
#include "obs/scope.h"

namespace secmed {

/// Point-in-time counters of a PreparedDatasetRegistry.
struct PreparedRegistryStats {
  uint64_t hits = 0;
  uint64_t misses = 0;
  uint64_t inserts = 0;
  uint64_t evictions = 0;      // LRU byte-budget evictions
  uint64_t invalidations = 0;  // entries dropped by Invalidate/Clear
  size_t entries = 0;
  size_t resident_bytes = 0;

  double HitRate() const {
    uint64_t total = hits + misses;
    return total == 0 ? 0.0 : static_cast<double>(hits) / total;
  }
};

/// The prepared-dataset registry of a long-lived mediation service: a
/// thread-safe LRU cache under a byte budget, implementing the
/// PreparedCache interface the protocols in src/core/ program against.
///
/// Keys are minted by PreparedKey() and embed the owning datasource's
/// catalog version plus a content digest, so entries never need
/// revalidation — a data or policy change mints different keys and the
/// stale generation ages out through the LRU (or is dropped eagerly via
/// Invalidate). Entry bytes are pure functions of their keys (the
/// determinism contract in core/prepared.h): eviction and recomputation
/// are always safe, and concurrent sessions racing to populate a key
/// insert identical values (first insert wins).
class PreparedDatasetRegistry : public PreparedCache {
 public:
  struct Options {
    /// Byte budget for resident entries; least-recently-used entries are
    /// evicted when an insert exceeds it. 0 = unlimited. A single entry
    /// larger than the whole budget is still admitted (and evicts
    /// everything else) — refusing it would force every session to
    /// recompute the largest relation, the opposite of the cache's job.
    size_t max_bytes = 256ull << 20;
    /// Domain separator of the prepare RNG: PrepareRng(key) is an
    /// HmacDrbg seeded from "secmed-prepare-<label>:<key>". Every
    /// process of a replicated deployment must use the same label so
    /// prepared bytes agree across processes.
    std::string label = "service";
    /// Counter/gauge sink ("service.cache.*"); null disables.
    obs::Scope* obs = nullptr;
  };

  PreparedDatasetRegistry() : PreparedDatasetRegistry(Options{}) {}
  explicit PreparedDatasetRegistry(Options options);

  std::shared_ptr<const PreparedValue> Get(const std::string& key) override;
  std::shared_ptr<const PreparedValue> Put(
      const std::string& key,
      std::shared_ptr<const PreparedValue> value) override;
  std::unique_ptr<RandomSource> PrepareRng(const std::string& key) override;

  /// Drops every entry whose key starts with `prefix` and returns how
  /// many were dropped. "" clears everything. The explicit-invalidation
  /// hook for data/policy changes: e.g. Invalidate("das.build/hospital/")
  /// after reloading that source's relations.
  size_t Invalidate(const std::string& prefix);

  /// Drops all entries.
  void Clear() { Invalidate(""); }

  PreparedRegistryStats Stats() const;

 private:
  struct Entry {
    std::shared_ptr<const PreparedValue> value;
    size_t bytes = 0;
    std::list<std::string>::iterator lru_it;
  };

  /// Evicts LRU entries until the budget holds (never the just-touched
  /// front entry). Caller holds mu_.
  void EvictToBudgetLocked();

  Options options_;
  mutable std::mutex mu_;
  std::map<std::string, Entry> entries_;
  std::list<std::string> lru_;  // front = most recently used
  PreparedRegistryStats stats_;
};

}  // namespace secmed

#endif  // SECMED_SERVICE_PREPARED_REGISTRY_H_
