#ifndef SECMED_SERVICE_QUERY_SERVICE_H_
#define SECMED_SERVICE_QUERY_SERVICE_H_

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/remote.h"
#include "core/testbed.h"
#include "plan/planner.h"
#include "service/prepared_registry.h"
#include "service/scheduler.h"

namespace secmed {

/// Outcome of one mediated query executed by the QueryService.
struct QueryOutcome {
  uint64_t session_id = 0;
  Status status;       // protocol outcome; OK iff `result` is meaningful
  Relation result;     // the client's reconstructed join result
  /// SHA-256 of the canonically sorted result (the relation is a bag;
  /// delivery order varies with the session RNG, its contents must not).
  Bytes result_digest;
  double latency_ms = 0.0;  // admission-to-completion wall time
  uint64_t messages = 0;    // transcript length
  /// Message payloads of the session's bus, in send order, when
  /// Options::record_transcripts is set (determinism tests).
  std::vector<Bytes> transcript;
  /// Total payload bytes carried over the session bus (for the planner's
  /// predicted-vs-actual reconciliation).
  uint64_t bytes = 0;
  /// The planner's EXPLAIN when the query ran with protocol "auto";
  /// null for a fixed protocol. Shared so the outcome stays copyable.
  std::shared_ptr<plan::PlanChoice> plan;

  /// Measured counterpart of the plan's predicted costs, for
  /// PlanChoice::ToJson reconciliation.
  plan::PlanActuals Actuals() const {
    plan::PlanActuals a;
    a.wall_ms = latency_ms;
    a.total_bytes = double(bytes);
    a.result_rows = double(result.tuples().size());
    a.messages = double(messages);
    return a;
  }
};

/// The long-lived in-process mediation service: one shared
/// MediationTestbed (parties + keys + relations), a PreparedDatasetRegistry
/// memoizing the per-relation delivery crypto across sessions, and a
/// SessionScheduler bounding concurrency and shedding overload.
///
/// Every accepted query runs as its own session: a fresh NetworkBus and a
/// session-ID-seeded DRBG, so concurrent sessions share no mutable state
/// except the cache, whose entries are key-derived and therefore
/// identical however the sessions interleave. Consequently a query's
/// result AND transcript are functions of (query, session id) alone —
/// the same under any concurrency, and the same warm or cold.
class QueryService {
 public:
  struct Options {
    size_t max_concurrent = 4;   // SessionScheduler::Options
    size_t queue_depth = 16;
    size_t cache_bytes = 256ull << 20;  // registry byte budget; 0 = unlimited
    /// Attach the prepared cache to sessions (false = every session
    /// recomputes all delivery crypto; the cold baseline of the load
    /// harness).
    bool use_prepared = true;
    /// Per-session DRBG label, as in RunSpec::rng_label.
    std::string rng_label = "service";
    /// ProtocolContext::threads inside each session.
    size_t threads = 1;
    /// Capture per-session bus transcripts into QueryOutcome.
    bool record_transcripts = false;
    obs::Scope* obs = nullptr;  // service-wide metrics; null disables
    /// Cost-model coefficients for protocol "auto" (docs/PLANNER.md).
    /// Defaults are the committed CALIBRATION.json values; refresh with
    /// `secmedctl calibrate`.
    plan::CalibrationProfile calibration;
  };

  /// A query to mediate. Protocol parameters mirror RunSpec.
  struct Query {
    /// das | commutative | pm, or "auto" to let the cost-based planner
    /// choose the protocol (possibly per cascade level) under `policy`.
    std::string protocol = "commutative";
    std::string sql;
    size_t das_partitions = 4;
    size_t group_bits = 256;
    /// Leakage budget for "auto" (plan::LeakagePolicy grammar); empty
    /// allows every protocol.
    std::string policy;
  };

  /// `testbed` must outlive the service.
  QueryService(MediationTestbed* testbed, Options options);
  ~QueryService();

  /// Admits the query and invokes `done` with its outcome on a worker
  /// thread. Returns the assigned session ID, or kUnavailable when the
  /// scheduler sheds (the query never ran; `done` is not called).
  Result<uint64_t> Submit(const Query& query,
                          std::function<void(QueryOutcome)> done);

  /// Admits the query and blocks for its outcome. Sheds like Submit.
  Result<QueryOutcome> Run(const Query& query);

  /// Plans the query without executing it — the `explain` subcommand.
  /// Statistics collection runs on the calling thread and warms the same
  /// prepared-cache entries a later "auto" execution would hit.
  Result<plan::PlanChoice> Explain(const Query& query);

  /// Stops admission and waits for in-flight sessions (<= 0: forever).
  Status Drain(std::chrono::milliseconds timeout) {
    return scheduler_.Drain(timeout);
  }

  PreparedDatasetRegistry& cache() { return registry_; }
  SessionScheduler& scheduler() { return scheduler_; }
  MediationTestbed& testbed() { return *testbed_; }

 private:
  /// Runs one admitted session on the calling (worker) thread.
  QueryOutcome Execute(const Query& query, uint64_t session_id);

  /// The planner configured for this query's knobs and the testbed keys.
  plan::Planner MakePlanner(const Query& query) const;

  MediationTestbed* testbed_;
  Options options_;
  PreparedDatasetRegistry registry_;
  SessionScheduler scheduler_;
};

}  // namespace secmed

#endif  // SECMED_SERVICE_QUERY_SERVICE_H_
