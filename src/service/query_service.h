#ifndef SECMED_SERVICE_QUERY_SERVICE_H_
#define SECMED_SERVICE_QUERY_SERVICE_H_

#include <chrono>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/remote.h"
#include "core/testbed.h"
#include "service/prepared_registry.h"
#include "service/scheduler.h"

namespace secmed {

/// Outcome of one mediated query executed by the QueryService.
struct QueryOutcome {
  uint64_t session_id = 0;
  Status status;       // protocol outcome; OK iff `result` is meaningful
  Relation result;     // the client's reconstructed join result
  /// SHA-256 of the canonically sorted result (the relation is a bag;
  /// delivery order varies with the session RNG, its contents must not).
  Bytes result_digest;
  double latency_ms = 0.0;  // admission-to-completion wall time
  uint64_t messages = 0;    // transcript length
  /// Message payloads of the session's bus, in send order, when
  /// Options::record_transcripts is set (determinism tests).
  std::vector<Bytes> transcript;
};

/// The long-lived in-process mediation service: one shared
/// MediationTestbed (parties + keys + relations), a PreparedDatasetRegistry
/// memoizing the per-relation delivery crypto across sessions, and a
/// SessionScheduler bounding concurrency and shedding overload.
///
/// Every accepted query runs as its own session: a fresh NetworkBus and a
/// session-ID-seeded DRBG, so concurrent sessions share no mutable state
/// except the cache, whose entries are key-derived and therefore
/// identical however the sessions interleave. Consequently a query's
/// result AND transcript are functions of (query, session id) alone —
/// the same under any concurrency, and the same warm or cold.
class QueryService {
 public:
  struct Options {
    size_t max_concurrent = 4;   // SessionScheduler::Options
    size_t queue_depth = 16;
    size_t cache_bytes = 256ull << 20;  // registry byte budget; 0 = unlimited
    /// Attach the prepared cache to sessions (false = every session
    /// recomputes all delivery crypto; the cold baseline of the load
    /// harness).
    bool use_prepared = true;
    /// Per-session DRBG label, as in RunSpec::rng_label.
    std::string rng_label = "service";
    /// ProtocolContext::threads inside each session.
    size_t threads = 1;
    /// Capture per-session bus transcripts into QueryOutcome.
    bool record_transcripts = false;
    obs::Scope* obs = nullptr;  // service-wide metrics; null disables
  };

  /// A query to mediate. Protocol parameters mirror RunSpec.
  struct Query {
    std::string protocol = "commutative";  // das | commutative | pm
    std::string sql;
    size_t das_partitions = 4;
    size_t group_bits = 256;
  };

  /// `testbed` must outlive the service.
  QueryService(MediationTestbed* testbed, Options options);
  ~QueryService();

  /// Admits the query and invokes `done` with its outcome on a worker
  /// thread. Returns the assigned session ID, or kUnavailable when the
  /// scheduler sheds (the query never ran; `done` is not called).
  Result<uint64_t> Submit(const Query& query,
                          std::function<void(QueryOutcome)> done);

  /// Admits the query and blocks for its outcome. Sheds like Submit.
  Result<QueryOutcome> Run(const Query& query);

  /// Stops admission and waits for in-flight sessions (<= 0: forever).
  Status Drain(std::chrono::milliseconds timeout) {
    return scheduler_.Drain(timeout);
  }

  PreparedDatasetRegistry& cache() { return registry_; }
  SessionScheduler& scheduler() { return scheduler_; }
  MediationTestbed& testbed() { return *testbed_; }

 private:
  /// Runs one admitted session on the calling (worker) thread.
  QueryOutcome Execute(const Query& query, uint64_t session_id);

  MediationTestbed* testbed_;
  Options options_;
  PreparedDatasetRegistry registry_;
  SessionScheduler scheduler_;
};

}  // namespace secmed

#endif  // SECMED_SERVICE_QUERY_SERVICE_H_
