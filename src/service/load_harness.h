// Closed/open-loop load generation against a QueryService: the
// measurement half of the service layer (docs/SERVICE.md). Drives a
// stream of identical queries through the service's admission control
// and reports throughput, exact latency percentiles, shed rate and the
// prepared-cache hit rate over the run — the numbers the cold-vs-warm
// acceptance comparison is made of.

#ifndef SECMED_SERVICE_LOAD_HARNESS_H_
#define SECMED_SERVICE_LOAD_HARNESS_H_

#include <string>

#include "service/query_service.h"

namespace secmed {

struct LoadConfig {
  /// Closed-loop mode (open_rate_qps == 0): this many client threads,
  /// each submitting its next query the moment the previous one
  /// finishes — the service is always saturated to `clients` in-flight.
  size_t clients = 4;
  /// Total queries across all clients.
  size_t queries = 64;
  /// > 0: open-loop mode — one pacer submits at this fixed rate
  /// regardless of completions, so arrivals can outrun the service and
  /// exercise queueing + shedding.
  double open_rate_qps = 0.0;
  /// The query every client runs (the series-of-queries shape: same
  /// join, many sessions).
  QueryService::Query query;
};

struct LoadStats {
  uint64_t submitted = 0;
  uint64_t completed = 0;  // ran and returned OK
  uint64_t shed = 0;       // refused with kUnavailable at admission
  uint64_t errors = 0;     // ran and failed
  double wall_ms = 0.0;
  double throughput_qps = 0.0;  // completed / wall
  double shed_rate = 0.0;       // shed / submitted
  /// Latency of completed queries (admission-to-completion), exact
  /// percentiles over the full sample — no reservoir, the sample is the
  /// population.
  double mean_ms = 0.0;
  double p50_ms = 0.0;
  double p95_ms = 0.0;
  double p99_ms = 0.0;
  double max_ms = 0.0;
  /// Prepared-cache hit rate over this run (stats delta, so back-to-back
  /// runs against one service don't bleed into each other).
  double cache_hit_rate = 0.0;
  /// Every completed query must reconstruct the same relation; the
  /// digest is the byte-identity acceptance check of the cache.
  bool digests_agree = true;
  Bytes result_digest;
};

/// Runs `config` against `service` and blocks until every submitted
/// query completed or shed.
LoadStats RunLoadHarness(QueryService* service, const LoadConfig& config);

/// One-line-per-metric human rendering, `label` as the header.
std::string RenderLoadStats(const std::string& label, const LoadStats& s);

}  // namespace secmed

#endif  // SECMED_SERVICE_LOAD_HARNESS_H_
