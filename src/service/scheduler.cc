#include "service/scheduler.h"

#include <algorithm>
#include <utility>

namespace secmed {

SessionScheduler::SessionScheduler(Options options)
    : options_(std::move(options)) {
  if (options_.max_concurrent == 0) options_.max_concurrent = 1;
  workers_.reserve(options_.max_concurrent);
  for (size_t i = 0; i < options_.max_concurrent; ++i) {
    workers_.emplace_back([this] { WorkerLoop(); });
  }
}

SessionScheduler::~SessionScheduler() {
  Drain(std::chrono::milliseconds(0));
  {
    std::lock_guard<std::mutex> lock(mu_);
    stopping_ = true;
  }
  work_cv_.notify_all();
  for (std::thread& t : workers_) t.join();
}

Result<uint64_t> SessionScheduler::Submit(SessionFn fn) {
  std::unique_lock<std::mutex> lock(mu_);
  ++stats_.submitted;
  if (draining_ || stopping_) {
    ++stats_.shed;
    obs::AddCounter(options_.obs, "service.sched.shed", 1);
    return Status::Unavailable("scheduler is draining; not accepting sessions");
  }
  // Admit while a worker is idle even when queue_depth is 0; the queue
  // bound applies to sessions *waiting* beyond the pool.
  size_t waiting = queue_.size();
  size_t idle = options_.max_concurrent - std::min(options_.max_concurrent,
                                                   in_flight_);
  if (idle == 0 && waiting >= options_.queue_depth) {
    ++stats_.shed;
    obs::AddCounter(options_.obs, "service.sched.shed", 1);
    return Status::Unavailable(
        "session queue full (" + std::to_string(waiting) + " waiting, " +
        std::to_string(in_flight_) + " running)");
  }
  uint64_t id = next_id_++;
  queue_.push_back(Job{id, std::move(fn)});
  ++stats_.accepted;
  stats_.max_queue_depth = std::max<uint64_t>(stats_.max_queue_depth,
                                              queue_.size());
  obs::AddCounter(options_.obs, "service.sched.accepted", 1);
  obs::RaiseMaxGauge(options_.obs, "service.sched.max_queue_depth",
                     queue_.size());
  lock.unlock();
  work_cv_.notify_one();
  return id;
}

Status SessionScheduler::Drain(std::chrono::milliseconds timeout) {
  std::unique_lock<std::mutex> lock(mu_);
  draining_ = true;
  auto done = [this] { return queue_.empty() && in_flight_ == 0; };
  if (timeout.count() <= 0) {
    idle_cv_.wait(lock, done);
    return Status::OK();
  }
  if (!idle_cv_.wait_for(lock, timeout, done)) {
    return Status::DeadlineExceeded(
        "drain deadline ran out with " + std::to_string(queue_.size()) +
        " queued and " + std::to_string(in_flight_) + " running sessions");
  }
  return Status::OK();
}

SessionScheduler::Stats SessionScheduler::stats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

size_t SessionScheduler::Pending() const {
  std::lock_guard<std::mutex> lock(mu_);
  return queue_.size() + in_flight_;
}

void SessionScheduler::WorkerLoop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stopping_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stopping_
      job = std::move(queue_.front());
      queue_.pop_front();
      ++in_flight_;
      stats_.max_in_flight = std::max<uint64_t>(stats_.max_in_flight,
                                                in_flight_);
      obs::RaiseMaxGauge(options_.obs, "service.sched.max_in_flight",
                         in_flight_);
    }
    job.fn(job.id);
    {
      std::lock_guard<std::mutex> lock(mu_);
      --in_flight_;
      ++stats_.completed;
      obs::AddCounter(options_.obs, "service.sched.completed", 1);
    }
    idle_cv_.notify_all();
  }
}

}  // namespace secmed
