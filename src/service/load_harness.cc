#include "service/load_harness.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

namespace secmed {

namespace {

/// Exact percentile of a sorted sample (nearest-rank).
double Percentile(const std::vector<double>& sorted, double p) {
  if (sorted.empty()) return 0.0;
  size_t rank = static_cast<size_t>(std::ceil(p / 100.0 * sorted.size()));
  if (rank == 0) rank = 1;
  return sorted[std::min(rank, sorted.size()) - 1];
}

/// Shared mutable state of one load run; all clients funnel through it.
struct Collector {
  std::mutex mu;
  std::condition_variable done_cv;
  std::vector<double> latencies_ms;
  uint64_t outstanding = 0;  // submitted - (completed + shed + errors)
  LoadStats stats;

  void Record(const QueryOutcome& out) {
    std::lock_guard<std::mutex> lock(mu);
    if (out.status.ok()) {
      ++stats.completed;
      latencies_ms.push_back(out.latency_ms);
      if (stats.result_digest.empty()) {
        stats.result_digest = out.result_digest;
      } else if (stats.result_digest != out.result_digest) {
        stats.digests_agree = false;
      }
    } else {
      ++stats.errors;
    }
    --outstanding;
    done_cv.notify_all();
  }

  void Shed() {
    std::lock_guard<std::mutex> lock(mu);
    ++stats.shed;
    --outstanding;
    done_cv.notify_all();
  }
};

}  // namespace

LoadStats RunLoadHarness(QueryService* service, const LoadConfig& config) {
  Collector collector;
  const PreparedRegistryStats cache_before = service->cache().Stats();
  const auto start = std::chrono::steady_clock::now();

  if (config.open_rate_qps > 0.0) {
    // Open loop: one pacer submits on a fixed schedule; completions are
    // recorded from the service's worker threads via the callback.
    const auto interval = std::chrono::duration<double>(
        1.0 / config.open_rate_qps);
    {
      std::lock_guard<std::mutex> lock(collector.mu);
      collector.outstanding = config.queries;
      collector.stats.submitted = config.queries;
    }
    for (size_t q = 0; q < config.queries; ++q) {
      std::this_thread::sleep_until(
          start + std::chrono::duration_cast<std::chrono::steady_clock::
                                                 duration>(interval * q));
      auto id = service->Submit(config.query, [&collector](QueryOutcome out) {
        collector.Record(out);
      });
      if (!id.ok()) collector.Shed();
    }
  } else {
    // Closed loop: `clients` threads, each running its next query the
    // moment the previous one returns.
    std::atomic<size_t> next{0};
    {
      std::lock_guard<std::mutex> lock(collector.mu);
      collector.outstanding = config.queries;
      collector.stats.submitted = config.queries;
    }
    std::vector<std::thread> clients;
    const size_t n = std::max<size_t>(1, config.clients);
    clients.reserve(n);
    for (size_t c = 0; c < n; ++c) {
      clients.emplace_back([&] {
        for (;;) {
          if (next.fetch_add(1) >= config.queries) return;
          auto out = service->Run(config.query);
          if (!out.ok()) {
            collector.Shed();
          } else {
            collector.Record(*out);
          }
        }
      });
    }
    for (std::thread& t : clients) t.join();
  }

  {
    std::unique_lock<std::mutex> lock(collector.mu);
    collector.done_cv.wait(lock, [&] { return collector.outstanding == 0; });
  }
  const double wall_ms =
      std::chrono::duration<double, std::milli>(
          std::chrono::steady_clock::now() - start)
          .count();

  LoadStats stats = collector.stats;
  stats.wall_ms = wall_ms;
  if (wall_ms > 0.0) stats.throughput_qps = stats.completed * 1000.0 / wall_ms;
  if (stats.submitted > 0) {
    stats.shed_rate = static_cast<double>(stats.shed) / stats.submitted;
  }
  std::vector<double>& lat = collector.latencies_ms;
  if (!lat.empty()) {
    std::sort(lat.begin(), lat.end());
    double sum = 0.0;
    for (double v : lat) sum += v;
    stats.mean_ms = sum / lat.size();
    stats.p50_ms = Percentile(lat, 50.0);
    stats.p95_ms = Percentile(lat, 95.0);
    stats.p99_ms = Percentile(lat, 99.0);
    stats.max_ms = lat.back();
  }
  const PreparedRegistryStats cache_after = service->cache().Stats();
  const uint64_t hits = cache_after.hits - cache_before.hits;
  const uint64_t misses = cache_after.misses - cache_before.misses;
  if (hits + misses > 0) {
    stats.cache_hit_rate = static_cast<double>(hits) / (hits + misses);
  }
  return stats;
}

std::string RenderLoadStats(const std::string& label, const LoadStats& s) {
  char buf[640];
  std::snprintf(
      buf, sizeof(buf),
      "%s:\n"
      "  queries     %llu submitted, %llu ok, %llu shed, %llu failed\n"
      "  wall        %.1f ms  (%.2f queries/s)\n"
      "  latency     p50 %.2f ms, p95 %.2f ms, p99 %.2f ms, "
      "mean %.2f ms, max %.2f ms\n"
      "  shed rate   %.1f%%\n"
      "  cache       %.1f%% hit rate\n"
      "  result      %s\n",
      label.c_str(), static_cast<unsigned long long>(s.submitted),
      static_cast<unsigned long long>(s.completed),
      static_cast<unsigned long long>(s.shed),
      static_cast<unsigned long long>(s.errors), s.wall_ms, s.throughput_qps,
      s.p50_ms, s.p95_ms, s.p99_ms, s.mean_ms, s.max_ms, 100.0 * s.shed_rate,
      100.0 * s.cache_hit_rate,
      s.digests_agree ? "all digests agree" : "DIGESTS DISAGREE");
  return buf;
}

}  // namespace secmed
