#ifndef SECMED_UTIL_STATUS_H_
#define SECMED_UTIL_STATUS_H_

#include <ostream>
#include <string>
#include <utility>

namespace secmed {

/// Canonical error categories used across the library.
enum class StatusCode {
  kOk = 0,
  kInvalidArgument,
  kOutOfRange,
  kNotFound,
  kAlreadyExists,
  kPermissionDenied,
  kFailedPrecondition,
  kDataLoss,
  kCryptoError,
  kProtocolError,
  kParseError,
  kUnimplemented,
  kInternal,
  kUnavailable,        // transient transport failure; retry may succeed
  kDeadlineExceeded,   // a blocking operation ran past its deadline
  kAborted,            // the session was aborted (by this or another party)
};

/// Returns a stable human-readable name for a status code.
const char* StatusCodeToString(StatusCode code);

/// Result of an operation: either OK or an error code with a message.
///
/// The library does not throw exceptions; fallible operations return a
/// Status (or a Result<T>, see result.h). Statuses are cheap to copy in the
/// OK case and carry a heap-allocated message otherwise.
class Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}

  /// Constructs a status with the given code and message.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status OutOfRange(std::string msg) {
    return Status(StatusCode::kOutOfRange, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status PermissionDenied(std::string msg) {
    return Status(StatusCode::kPermissionDenied, std::move(msg));
  }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }
  static Status CryptoError(std::string msg) {
    return Status(StatusCode::kCryptoError, std::move(msg));
  }
  static Status ProtocolError(std::string msg) {
    return Status(StatusCode::kProtocolError, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status DeadlineExceeded(std::string msg) {
    return Status(StatusCode::kDeadlineExceeded, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// Renders "OK" or "<CODE>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code_ == other.code_ && message_ == other.message_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

/// Propagates an error Status from the evaluated expression, if any.
#define SECMED_RETURN_IF_ERROR(expr)             \
  do {                                           \
    ::secmed::Status _st = (expr);               \
    if (!_st.ok()) return _st;                   \
  } while (0)

}  // namespace secmed

#endif  // SECMED_UTIL_STATUS_H_
