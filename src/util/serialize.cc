#include "util/serialize.h"

namespace secmed {

void BinaryWriter::WriteU8(uint8_t v) { buffer_.push_back(v); }

void BinaryWriter::WriteU16(uint16_t v) {
  buffer_.push_back(static_cast<uint8_t>(v));
  buffer_.push_back(static_cast<uint8_t>(v >> 8));
}

void BinaryWriter::WriteU32(uint32_t v) {
  for (int i = 0; i < 4; ++i) buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void BinaryWriter::WriteU64(uint64_t v) {
  for (int i = 0; i < 8; ++i) buffer_.push_back(static_cast<uint8_t>(v >> (8 * i)));
}

void BinaryWriter::WriteI64(int64_t v) { WriteU64(static_cast<uint64_t>(v)); }

void BinaryWriter::WriteBytes(const Bytes& b) {
  WriteU32(static_cast<uint32_t>(b.size()));
  WriteRaw(b);
}

void BinaryWriter::WriteString(std::string_view s) {
  WriteU32(static_cast<uint32_t>(s.size()));
  buffer_.insert(buffer_.end(), s.begin(), s.end());
}

void BinaryWriter::WriteRaw(const Bytes& b) {
  buffer_.insert(buffer_.end(), b.begin(), b.end());
}

Status BinaryReader::Need(size_t n) const {
  if (buffer_.size() - pos_ < n) {
    return Status::DataLoss("truncated buffer: need " + std::to_string(n) +
                            " bytes, have " + std::to_string(remaining()));
  }
  return Status::OK();
}

Result<uint8_t> BinaryReader::ReadU8() {
  SECMED_RETURN_IF_ERROR(Need(1));
  return buffer_[pos_++];
}

Result<uint16_t> BinaryReader::ReadU16() {
  SECMED_RETURN_IF_ERROR(Need(2));
  uint16_t v = static_cast<uint16_t>(buffer_[pos_]) |
               static_cast<uint16_t>(buffer_[pos_ + 1]) << 8;
  pos_ += 2;
  return v;
}

Result<uint32_t> BinaryReader::ReadU32() {
  SECMED_RETURN_IF_ERROR(Need(4));
  uint32_t v = 0;
  for (int i = 0; i < 4; ++i) v |= static_cast<uint32_t>(buffer_[pos_ + i]) << (8 * i);
  pos_ += 4;
  return v;
}

Result<uint64_t> BinaryReader::ReadU64() {
  SECMED_RETURN_IF_ERROR(Need(8));
  uint64_t v = 0;
  for (int i = 0; i < 8; ++i) v |= static_cast<uint64_t>(buffer_[pos_ + i]) << (8 * i);
  pos_ += 8;
  return v;
}

Result<int64_t> BinaryReader::ReadI64() {
  SECMED_ASSIGN_OR_RETURN(uint64_t v, ReadU64());
  return static_cast<int64_t>(v);
}

Result<Bytes> BinaryReader::ReadBytes() {
  SECMED_ASSIGN_OR_RETURN(uint32_t n, ReadU32());
  return ReadRaw(n);
}

Result<std::string> BinaryReader::ReadString() {
  SECMED_ASSIGN_OR_RETURN(Bytes b, ReadBytes());
  return BytesToString(b);
}

Result<Bytes> BinaryReader::ReadRaw(size_t n) {
  SECMED_RETURN_IF_ERROR(Need(n));
  Bytes out(buffer_.begin() + pos_, buffer_.begin() + pos_ + n);
  pos_ += n;
  return out;
}

}  // namespace secmed
