#ifndef SECMED_UTIL_BYTES_H_
#define SECMED_UTIL_BYTES_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

namespace secmed {

/// Raw byte string used for ciphertexts, serialized messages and keys.
using Bytes = std::vector<uint8_t>;

/// Converts a std::string to Bytes (byte-for-byte).
Bytes ToBytes(std::string_view s);

/// Converts Bytes to a std::string (byte-for-byte; may contain NULs).
std::string BytesToString(const Bytes& b);

/// Appends `suffix` to `dst`.
void Append(Bytes* dst, const Bytes& suffix);

/// Concatenates two byte strings.
Bytes Concat(const Bytes& a, const Bytes& b);

/// Compares two byte strings in time dependent only on their lengths.
/// Returns true iff they are equal. Used for MAC verification.
bool ConstantTimeEquals(const Bytes& a, const Bytes& b);

/// XORs `src` into `dst` elementwise; both must have the same size.
void XorInPlace(Bytes* dst, const Bytes& src);

/// Encodes bytes as lowercase hex.
std::string HexEncode(const Bytes& b);

/// Decodes lowercase/uppercase hex; returns empty on malformed input of
/// odd length or non-hex characters (use HexDecodeStrict for checking).
Bytes HexDecode(std::string_view hex);

/// True iff `hex` is well-formed (even length, hex digits only).
bool IsValidHex(std::string_view hex);

}  // namespace secmed

#endif  // SECMED_UTIL_BYTES_H_
