#include "util/parallel.h"

#include <atomic>
#include <thread>
#include <vector>

namespace secmed {

size_t HardwareConcurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

size_t ResolveThreads(size_t threads) {
  return threads == 0 ? HardwareConcurrency() : threads;
}

void ParallelFor(size_t n, size_t threads,
                 const std::function<void(size_t)>& body) {
  if (n == 0) return;
  size_t workers = threads < n ? threads : n;
  if (workers <= 1) {
    for (size_t i = 0; i < n; ++i) body(i);
    return;
  }
  std::atomic<size_t> next{0};
  auto run = [&] {
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) return;
      body(i);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (size_t t = 0; t + 1 < workers; ++t) pool.emplace_back(run);
  run();  // the calling thread is worker 0
  for (std::thread& t : pool) t.join();
}

Status ParallelForStatus(size_t n, size_t threads,
                         const std::function<Status(size_t)>& body) {
  if (n == 0) return Status::OK();
  // Per-item slots instead of a shared "first error" so the outcome does
  // not depend on which thread loses a race.
  std::vector<Status> statuses(n);
  ParallelFor(n, threads, [&](size_t i) { statuses[i] = body(i); });
  for (Status& st : statuses) {
    if (!st.ok()) return std::move(st);
  }
  return Status::OK();
}

}  // namespace secmed
