#include "util/parallel.h"

#include <atomic>
#include <thread>
#include <vector>

namespace secmed {

namespace {

/// Worker-span name for an instrumented loop; label-only, so the set of
/// span names is identical at every thread count.
std::string WorkerSpanName(const char* label) {
  return std::string(label != nullptr ? label : "parallel") + "/worker";
}

}  // namespace

size_t HardwareConcurrency() {
  unsigned n = std::thread::hardware_concurrency();
  return n == 0 ? 1 : static_cast<size_t>(n);
}

size_t ResolveThreads(size_t threads) {
  return threads == 0 ? HardwareConcurrency() : threads;
}

void ParallelFor(size_t n, size_t threads,
                 const std::function<void(size_t)>& body, obs::Scope* scope,
                 const char* label) {
  if (n == 0) return;
  size_t workers = threads < n ? threads : n;
  if (workers <= 1) {
    uint64_t start_ns = scope != nullptr ? scope->tracer().NowNanos() : 0;
    obs::Span span = obs::StartSpan(scope, WorkerSpanName(label));
    for (size_t i = 0; i < n; ++i) body(i);
    span.AddItems(n);
    span.End();
    if (scope != nullptr && label != nullptr) {
      scope->metrics().Add(std::string(label) + ".items", n);
      scope->metrics().Add(std::string(label) + ".worker_ns",
                           scope->tracer().NowNanos() - start_ns);
    }
    return;
  }
  std::atomic<size_t> next{0};
  std::atomic<uint64_t> worker_ns{0};
  auto run = [&] {
    obs::Span span = obs::StartSpan(scope, WorkerSpanName(label));
    uint64_t start_ns =
        scope != nullptr ? scope->tracer().NowNanos() : 0;
    for (;;) {
      size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= n) break;
      body(i);
      span.AddItems(1);
    }
    if (scope != nullptr) {
      worker_ns.fetch_add(scope->tracer().NowNanos() - start_ns,
                          std::memory_order_relaxed);
    }
  };
  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (size_t t = 0; t + 1 < workers; ++t) pool.emplace_back(run);
  run();  // the calling thread is worker 0
  for (std::thread& t : pool) t.join();
  if (scope != nullptr && label != nullptr) {
    scope->metrics().Add(std::string(label) + ".items", n);
    scope->metrics().Add(std::string(label) + ".worker_ns",
                         worker_ns.load(std::memory_order_relaxed));
  }
}

Status ParallelForStatus(size_t n, size_t threads,
                         const std::function<Status(size_t)>& body,
                         obs::Scope* scope, const char* label) {
  if (n == 0) return Status::OK();
  // Per-item slots instead of a shared "first error" so the outcome does
  // not depend on which thread loses a race.
  std::vector<Status> statuses(n);
  ParallelFor(
      n, threads, [&](size_t i) { statuses[i] = body(i); }, scope, label);
  for (Status& st : statuses) {
    if (!st.ok()) return std::move(st);
  }
  return Status::OK();
}

}  // namespace secmed
