#include "util/status.h"

namespace secmed {

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk: return "OK";
    case StatusCode::kInvalidArgument: return "INVALID_ARGUMENT";
    case StatusCode::kOutOfRange: return "OUT_OF_RANGE";
    case StatusCode::kNotFound: return "NOT_FOUND";
    case StatusCode::kAlreadyExists: return "ALREADY_EXISTS";
    case StatusCode::kPermissionDenied: return "PERMISSION_DENIED";
    case StatusCode::kFailedPrecondition: return "FAILED_PRECONDITION";
    case StatusCode::kDataLoss: return "DATA_LOSS";
    case StatusCode::kCryptoError: return "CRYPTO_ERROR";
    case StatusCode::kProtocolError: return "PROTOCOL_ERROR";
    case StatusCode::kParseError: return "PARSE_ERROR";
    case StatusCode::kUnimplemented: return "UNIMPLEMENTED";
    case StatusCode::kInternal: return "INTERNAL";
    case StatusCode::kUnavailable: return "UNAVAILABLE";
    case StatusCode::kDeadlineExceeded: return "DEADLINE_EXCEEDED";
    case StatusCode::kAborted: return "ABORTED";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code_);
  out += ": ";
  out += message_;
  return out;
}

}  // namespace secmed
