#ifndef SECMED_UTIL_RESULT_H_
#define SECMED_UTIL_RESULT_H_

#include <cassert>
#include <utility>
#include <variant>

#include "util/status.h"

namespace secmed {

/// Holder of either a value of type T or an error Status.
///
/// Mirrors arrow::Result / absl::StatusOr. Accessing the value of an
/// errored Result is a programming error (checked by assert in debug
/// builds).
template <typename T>
class Result {
 public:
  /// Constructs an errored result. `status` must not be OK.
  Result(Status status) : repr_(std::move(status)) {  // NOLINT(runtime/explicit)
    assert(!std::get<Status>(repr_).ok());
  }

  /// Constructs a successful result holding `value`.
  Result(T value) : repr_(std::move(value)) {}  // NOLINT(runtime/explicit)

  bool ok() const { return std::holds_alternative<T>(repr_); }

  /// Returns the error status, or OK if the result holds a value.
  Status status() const {
    if (ok()) return Status::OK();
    return std::get<Status>(repr_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(repr_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(repr_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(repr_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

  /// Returns the value, or `alternative` if the result is an error.
  T ValueOr(T alternative) const {
    if (ok()) return value();
    return alternative;
  }

 private:
  std::variant<Status, T> repr_;
};

/// Propagates the error of a Result-returning expression or assigns its
/// value to `lhs`.
#define SECMED_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                                 \
  if (!tmp.ok()) return tmp.status();                \
  lhs = std::move(tmp).value();

#define SECMED_ASSIGN_OR_RETURN_CONCAT(x, y) x##y
#define SECMED_ASSIGN_OR_RETURN_NAME(x, y) SECMED_ASSIGN_OR_RETURN_CONCAT(x, y)

#define SECMED_ASSIGN_OR_RETURN(lhs, expr) \
  SECMED_ASSIGN_OR_RETURN_IMPL(            \
      SECMED_ASSIGN_OR_RETURN_NAME(_secmed_result_, __LINE__), lhs, expr)

}  // namespace secmed

#endif  // SECMED_UTIL_RESULT_H_
