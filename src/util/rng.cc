#include "util/rng.h"

#include <cstdio>
#include <cstdlib>

namespace secmed {

namespace {
uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9E3779B97F4A7C15ULL);
  z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ULL;
  z = (z ^ (z >> 27)) * 0x94D049BB133111EBULL;
  return z ^ (z >> 31);
}

uint64_t Rotl(uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }
}  // namespace

Xoshiro256::Xoshiro256(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : state_) s = SplitMix64(&sm);
}

uint64_t Xoshiro256::NextU64() {
  const uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

uint64_t Xoshiro256::NextBelow(uint64_t bound) {
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -bound % bound;
  for (;;) {
    uint64_t r = NextU64();
    if (r >= threshold) return r % bound;
  }
}

int64_t Xoshiro256::NextInRange(int64_t lo, int64_t hi) {
  uint64_t span = static_cast<uint64_t>(hi) - static_cast<uint64_t>(lo) + 1;
  if (span == 0) return static_cast<int64_t>(NextU64());  // full 64-bit range
  return lo + static_cast<int64_t>(NextBelow(span));
}

double Xoshiro256::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

Bytes Xoshiro256::NextBytes(size_t n) {
  Bytes out(n);
  size_t i = 0;
  while (i < n) {
    uint64_t r = NextU64();
    for (int k = 0; k < 8 && i < n; ++k, ++i) {
      out[i] = static_cast<uint8_t>(r >> (8 * k));
    }
  }
  return out;
}

std::unique_ptr<RandomSource> RandomSource::Fork(uint64_t index) {
  // Seed material from the parent stream, mixed with the index so even a
  // degenerate parent (constant output) yields distinct children.
  Bytes seed = Generate(8);
  uint64_t s = index;
  for (size_t i = 0; i < seed.size(); ++i) {
    s = (s << 8) ^ (s >> 56) ^ seed[i];
  }
  return std::make_unique<XoshiroRandomSource>(s);
}

std::vector<std::unique_ptr<RandomSource>> ForkN(RandomSource* rng, size_t n) {
  std::vector<std::unique_ptr<RandomSource>> out;
  out.reserve(n);
  for (size_t i = 0; i < n; ++i) out.push_back(rng->Fork(i));
  return out;
}

std::unique_ptr<RandomSource> OsRandomSource::Fork(uint64_t index) {
  (void)index;
  return std::make_unique<OsRandomSource>();
}

Bytes OsRandomBytes(size_t n) {
  Bytes out(n);
  FILE* f = std::fopen("/dev/urandom", "rb");
  if (f == nullptr || std::fread(out.data(), 1, n, f) != n) {
    std::fprintf(stderr, "secmed: cannot read /dev/urandom\n");
    std::abort();
  }
  std::fclose(f);
  return out;
}

}  // namespace secmed
