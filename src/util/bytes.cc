#include "util/bytes.h"

#include <cctype>

namespace secmed {

Bytes ToBytes(std::string_view s) {
  return Bytes(s.begin(), s.end());
}

std::string BytesToString(const Bytes& b) {
  return std::string(b.begin(), b.end());
}

void Append(Bytes* dst, const Bytes& suffix) {
  dst->insert(dst->end(), suffix.begin(), suffix.end());
}

Bytes Concat(const Bytes& a, const Bytes& b) {
  Bytes out = a;
  Append(&out, b);
  return out;
}

bool ConstantTimeEquals(const Bytes& a, const Bytes& b) {
  if (a.size() != b.size()) return false;
  uint8_t diff = 0;
  for (size_t i = 0; i < a.size(); ++i) diff |= a[i] ^ b[i];
  return diff == 0;
}

void XorInPlace(Bytes* dst, const Bytes& src) {
  const size_t n = dst->size() < src.size() ? dst->size() : src.size();
  for (size_t i = 0; i < n; ++i) (*dst)[i] ^= src[i];
}

namespace {
constexpr char kHexDigits[] = "0123456789abcdef";

int HexNibble(char c) {
  if (c >= '0' && c <= '9') return c - '0';
  if (c >= 'a' && c <= 'f') return c - 'a' + 10;
  if (c >= 'A' && c <= 'F') return c - 'A' + 10;
  return -1;
}
}  // namespace

std::string HexEncode(const Bytes& b) {
  std::string out;
  out.reserve(b.size() * 2);
  for (uint8_t byte : b) {
    out.push_back(kHexDigits[byte >> 4]);
    out.push_back(kHexDigits[byte & 0xF]);
  }
  return out;
}

bool IsValidHex(std::string_view hex) {
  if (hex.size() % 2 != 0) return false;
  for (char c : hex) {
    if (HexNibble(c) < 0) return false;
  }
  return true;
}

Bytes HexDecode(std::string_view hex) {
  if (!IsValidHex(hex)) return Bytes();
  Bytes out;
  out.reserve(hex.size() / 2);
  for (size_t i = 0; i < hex.size(); i += 2) {
    out.push_back(static_cast<uint8_t>((HexNibble(hex[i]) << 4) |
                                       HexNibble(hex[i + 1])));
  }
  return out;
}

}  // namespace secmed
