#ifndef SECMED_UTIL_SERIALIZE_H_
#define SECMED_UTIL_SERIALIZE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/bytes.h"
#include "util/result.h"
#include "util/status.h"

namespace secmed {

/// Appends primitive values to a byte buffer in a fixed little-endian
/// wire format. All variable-length fields are length-prefixed with u32.
///
/// The wire format is used for every message that crosses a party
/// boundary in the mediation system, so byte accounting on the network
/// bus reflects realistic message sizes.
class BinaryWriter {
 public:
  BinaryWriter() = default;

  void WriteU8(uint8_t v);
  void WriteU16(uint16_t v);
  void WriteU32(uint32_t v);
  void WriteU64(uint64_t v);
  void WriteI64(int64_t v);
  /// Writes a length-prefixed byte string.
  void WriteBytes(const Bytes& b);
  /// Writes a length-prefixed UTF-8 string.
  void WriteString(std::string_view s);
  /// Writes raw bytes with no length prefix.
  void WriteRaw(const Bytes& b);

  const Bytes& buffer() const { return buffer_; }
  Bytes TakeBuffer() { return std::move(buffer_); }
  size_t size() const { return buffer_.size(); }

 private:
  Bytes buffer_;
};

/// Reads primitive values back from a byte buffer written by BinaryWriter.
/// Every read is bounds-checked and reports kDataLoss on truncation.
class BinaryReader {
 public:
  explicit BinaryReader(const Bytes& buffer) : buffer_(buffer) {}
  // The reader only borrows the buffer; reading from a temporary would
  // dangle.
  explicit BinaryReader(Bytes&&) = delete;

  Result<uint8_t> ReadU8();
  Result<uint16_t> ReadU16();
  Result<uint32_t> ReadU32();
  Result<uint64_t> ReadU64();
  Result<int64_t> ReadI64();
  Result<Bytes> ReadBytes();
  Result<std::string> ReadString();
  /// Reads exactly `n` raw bytes.
  Result<Bytes> ReadRaw(size_t n);

  /// Number of bytes not yet consumed.
  size_t remaining() const { return buffer_.size() - pos_; }
  bool AtEnd() const { return pos_ == buffer_.size(); }

 private:
  Status Need(size_t n) const;

  const Bytes& buffer_;
  size_t pos_ = 0;
};

}  // namespace secmed

#endif  // SECMED_UTIL_SERIALIZE_H_
