#ifndef SECMED_UTIL_RNG_H_
#define SECMED_UTIL_RNG_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "util/bytes.h"

namespace secmed {

/// Fast non-cryptographic PRNG (xoshiro256**) for workload generation and
/// reproducible test data. NOT for key material — see crypto/drbg.h.
class Xoshiro256 {
 public:
  /// Seeds the generator deterministically from a 64-bit seed via SplitMix64.
  explicit Xoshiro256(uint64_t seed);

  uint64_t NextU64();

  /// Uniform value in [0, bound). bound must be > 0.
  uint64_t NextBelow(uint64_t bound);

  /// Uniform value in [lo, hi] inclusive. Requires lo <= hi.
  int64_t NextInRange(int64_t lo, int64_t hi);

  /// Uniform double in [0, 1).
  double NextDouble();

  /// Fills `n` pseudorandom bytes.
  Bytes NextBytes(size_t n);

 private:
  uint64_t state_[4];
};

/// Reads `n` bytes from the operating system entropy source (/dev/urandom).
/// Aborts the process if the entropy source is unavailable, since no secure
/// operation can proceed without it.
Bytes OsRandomBytes(size_t n);

/// Abstract source of random bytes. Key generation and protocol nonces are
/// parameterized on this interface so tests can inject deterministic
/// randomness while production code uses a DRBG over OS entropy.
class RandomSource {
 public:
  virtual ~RandomSource() = default;
  /// Returns `n` random bytes.
  virtual Bytes Generate(size_t n) = 0;

  /// Derives an independent child source for item `index` of a loop.
  ///
  /// Forking is how the parallel execution layer keeps seeded runs
  /// bit-for-bit reproducible: the caller forks one child per item *in
  /// index order on a single thread* (each fork draws seed material from
  /// this source, advancing its state), then each parallel worker draws
  /// only from its own child. The resulting streams depend on the parent
  /// state and index alone, never on thread scheduling.
  ///
  /// The default implementation seeds a fast non-cryptographic child;
  /// cryptographic sources (HmacDrbg) override it with a DRBG child.
  virtual std::unique_ptr<RandomSource> Fork(uint64_t index);
};

/// Forks `n` children of `rng` in index order (see RandomSource::Fork).
std::vector<std::unique_ptr<RandomSource>> ForkN(RandomSource* rng, size_t n);

/// RandomSource view over a Xoshiro256 generator (deterministic; tests only).
class XoshiroRandomSource : public RandomSource {
 public:
  explicit XoshiroRandomSource(uint64_t seed) : rng_(seed) {}
  Bytes Generate(size_t n) override { return rng_.NextBytes(n); }

 private:
  Xoshiro256 rng_;
};

/// RandomSource reading directly from the OS entropy pool.
class OsRandomSource : public RandomSource {
 public:
  Bytes Generate(size_t n) override { return OsRandomBytes(n); }
  /// OS entropy is already independent per draw; children just read it too.
  std::unique_ptr<RandomSource> Fork(uint64_t index) override;
};

}  // namespace secmed

#endif  // SECMED_UTIL_RNG_H_
