#ifndef SECMED_UTIL_PARALLEL_H_
#define SECMED_UTIL_PARALLEL_H_

#include <cstddef>
#include <functional>

#include "obs/scope.h"
#include "util/status.h"

namespace secmed {

/// Number of hardware threads reported by the OS; always at least 1.
size_t HardwareConcurrency();

/// Resolves a thread-count knob as used across the protocol layer:
/// 0 means "hardware concurrency", any other value is taken literally.
size_t ResolveThreads(size_t threads);

/// Runs body(i) for every i in [0, n) on up to `threads` threads.
///
/// Work distribution is a shared atomic index: each worker claims the next
/// unprocessed item until none remain, so uneven per-item costs balance
/// without static partitioning. `threads` is taken literally (resolve a
/// 0-means-hardware knob with ResolveThreads first); with threads <= 1 or
/// n <= 1 the body runs inline on the calling thread and no thread is ever
/// spawned — the exact legacy serial path.
///
/// When `scope` is non-null the loop is instrumented: every worker
/// (including the serial inline path) records one span `<label>/worker`
/// annotated with the items it claimed, and the counters
/// `<label>.items` / `<label>.worker_ns` accumulate loop totals, from
/// which the report derives items/sec. The span *name* only depends on
/// `label`, never on the thread count — the determinism guard relies on
/// that. A null scope adds a single predicted branch (the legacy path).
///
/// The body must be safe to invoke concurrently for distinct items; the
/// call returns only after every item has completed.
void ParallelFor(size_t n, size_t threads,
                 const std::function<void(size_t)>& body,
                 obs::Scope* scope = nullptr, const char* label = nullptr);

/// Status-aggregating variant: runs body(i) for every i in [0, n) and
/// returns the error of the lowest-index failing item, or OK. All items
/// are executed regardless of failures, so the returned status is
/// deterministic and independent of thread scheduling.
Status ParallelForStatus(size_t n, size_t threads,
                         const std::function<Status(size_t)>& body,
                         obs::Scope* scope = nullptr,
                         const char* label = nullptr);

}  // namespace secmed

#endif  // SECMED_UTIL_PARALLEL_H_
