#ifndef SECMED_RELATIONAL_SQL_H_
#define SECMED_RELATIONAL_SQL_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "relational/algebra.h"
#include "relational/predicate.h"
#include "relational/relation.h"
#include "util/result.h"

namespace secmed {

/// Parsed representation of the SQL subset understood by the mediator:
///
///   SELECT (* | item [, item ...])        item: col | fn(col|*) [AS name]
///   FROM table [AS alias]
///   [ (JOIN table [AS alias] ON col = col [AND col = col]...)
///     | (NATURAL JOIN table) ]...
///   [ WHERE predicate ]
///   [ GROUP BY col [, col ...] ]
///   [ ORDER BY col [ASC|DESC] [, ...] ]
///   [ LIMIT n ]
///
/// Aggregate functions: COUNT, SUM, MIN, MAX, AVG. Predicates are
/// comparisons of columns and literals combined with AND, OR, NOT and
/// parentheses. String literals use single quotes.
struct ParsedQuery {
  struct TableRef {
    std::string name;
    std::string alias;  // equals name when no alias given

    bool operator==(const TableRef& other) const {
      return name == other.name && alias == other.alias;
    }
  };
  struct JoinClause {
    TableRef table;
    bool natural = false;
    /// Equality pairs of the ON clause (col = col AND col = col ...);
    /// empty when natural.
    std::vector<std::pair<std::string, std::string>> on_pairs;
  };

  std::vector<std::string> select_columns;  // plain columns; empty with no
                                            // aggregates means SELECT *
  std::vector<AggregateSpec> aggregates;    // aggregate select items
  TableRef from;
  std::vector<JoinClause> joins;
  PredicatePtr where;  // never null; Predicate::True() when absent
  std::vector<std::string> group_by;
  std::vector<OrderKey> order_by;
  size_t limit = SIZE_MAX;  // SIZE_MAX when absent

  bool HasAggregates() const { return !aggregates.empty(); }

  std::string ToString() const;
};

/// Parses the SQL subset above. Errors report position and token.
Result<ParsedQuery> ParseSql(const std::string& sql);

/// A node of the mediator's algebra tree — the output of the paper's
/// "SQL2Algebra" library: relational operators in inner nodes, partial
/// queries at the leaves (Section 2).
struct AlgebraNode {
  enum class Op { kScan, kSelect, kProject, kJoin, kAggregate, kOrderBy,
                  kLimit };

  Op op = Op::kScan;

  // kScan leaves:
  std::string table;          // global table name
  std::string alias;          // qualifier for columns
  std::string partial_query;  // "select * from <table>" sent to the source

  // kSelect:
  PredicatePtr predicate;

  // kProject:
  std::vector<std::string> columns;

  // kJoin (binary; natural when the pair list is empty):
  std::vector<std::pair<std::string, std::string>> join_pairs;

  // kAggregate:
  std::vector<std::string> group_by;
  std::vector<AggregateSpec> aggregates;

  // kOrderBy:
  std::vector<OrderKey> order_keys;

  // kLimit:
  size_t limit = 0;

  std::vector<std::unique_ptr<AlgebraNode>> children;

  /// Pretty-prints the tree with indentation.
  std::string ToString(int indent = 0) const;

  /// All scan leaves in left-to-right order.
  std::vector<const AlgebraNode*> Leaves() const;
};

/// Translates a parsed query into an algebra tree: scans at the leaves,
/// joins above them, then selection, then projection.
Result<std::unique_ptr<AlgebraNode>> Sql2Algebra(const ParsedQuery& query);

/// Convenience: parse + translate.
Result<std::unique_ptr<AlgebraNode>> Sql2Algebra(const std::string& sql);

/// Name → relation catalog used by the reference executor.
using Catalog = std::map<std::string, Relation>;

/// Executes an algebra tree against plaintext relations. This is the
/// trusted-mediator reference semantics the encrypted protocols are tested
/// against.
Result<Relation> ExecuteAlgebra(const AlgebraNode& node, const Catalog& catalog);

/// Parses and executes a SQL string against the catalog.
Result<Relation> ExecuteSql(const std::string& sql, const Catalog& catalog);

}  // namespace secmed

#endif  // SECMED_RELATIONAL_SQL_H_
