#ifndef SECMED_RELATIONAL_ALGEBRA_H_
#define SECMED_RELATIONAL_ALGEBRA_H_

#include <string>
#include <vector>

#include "relational/predicate.h"
#include "relational/relation.h"
#include "util/result.h"

namespace secmed {

/// Relational algebra operators. All operators are pure: they build a new
/// relation and never mutate their inputs. Bag semantics throughout
/// (duplicates preserved), matching the paper's treatment of partial
/// results.

/// σ_pred(rel)
Result<Relation> Select(const Relation& rel, const PredicatePtr& pred);

/// π_columns(rel); columns may be qualified. Duplicates preserved.
Result<Relation> Project(const Relation& rel,
                         const std::vector<std::string>& columns);

/// rel1 × rel2. Column names are taken verbatim from the inputs; callers
/// should qualify schemas first when names collide.
Result<Relation> CrossProduct(const Relation& a, const Relation& b);

/// Natural join: equality on all common (base-named) columns; the common
/// columns appear once in the output (from `a`), mirroring SQL NATURAL
/// JOIN. Hash-join implementation.
Result<Relation> NaturalJoin(const Relation& a, const Relation& b);

/// Equi-join on a named column pair, keeping both input columns.
Result<Relation> EquiJoin(const Relation& a, const std::string& col_a,
                          const Relation& b, const std::string& col_b);

/// Equi-join on several column pairs (cols_a[i] = cols_b[i] for all i),
/// keeping both sides' columns. The pair lists must be non-empty and of
/// equal length.
Result<Relation> EquiJoinMulti(const Relation& a,
                               const std::vector<std::string>& cols_a,
                               const Relation& b,
                               const std::vector<std::string>& cols_b);

/// Bag union; schemas must match exactly.
Result<Relation> Union(const Relation& a, const Relation& b);

/// Removes duplicate tuples.
Relation Distinct(const Relation& rel);

/// Renames every column with the qualifier prefix ("R1.col").
Relation Qualify(const Relation& rel, const std::string& qualifier);

/// Aggregate functions of the GROUP BY operator.
enum class AggregateFn { kCount, kSum, kMin, kMax, kAvg };

const char* AggregateFnToString(AggregateFn fn);

/// One aggregate of an aggregation query.
struct AggregateSpec {
  AggregateFn fn = AggregateFn::kCount;
  /// Aggregated column; empty means COUNT(*).
  std::string column;
  /// Output column name (e.g. "sum_cost"); derived from fn/column when
  /// empty.
  std::string output_name;
};

/// γ_{group_by; aggs}(rel): groups by the given columns and computes the
/// aggregates per group. With an empty group_by the whole relation is one
/// group (a single output row, even for an empty input when only COUNT is
/// computed). SQL NULL handling: COUNT(col), SUM, MIN, MAX and AVG ignore
/// NULL values; SUM/AVG require integer columns; AVG is integer division.
Result<Relation> Aggregate(const Relation& rel,
                           const std::vector<std::string>& group_by,
                           const std::vector<AggregateSpec>& aggs);

/// Sort key of ORDER BY: column plus direction.
struct OrderKey {
  std::string column;
  bool descending = false;
};

/// Sorts by the given keys (stable).
Result<Relation> OrderBy(const Relation& rel, const std::vector<OrderKey>& keys);

/// Keeps the first `n` tuples.
Relation Limit(const Relation& rel, size_t n);

}  // namespace secmed

#endif  // SECMED_RELATIONAL_ALGEBRA_H_
