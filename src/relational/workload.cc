#include "relational/workload.h"

#include <cmath>
#include <vector>

namespace secmed {

namespace {
// Draws an index in [0, n) with probability proportional to 1/(i+1)^skew.
size_t DrawSkewed(Xoshiro256* rng, size_t n, double skew,
                  const std::vector<double>& cdf) {
  if (skew == 0.0 || n <= 1) return rng->NextBelow(n);
  double u = rng->NextDouble();
  // Binary search in the precomputed CDF.
  size_t lo = 0, hi = n - 1;
  while (lo < hi) {
    size_t mid = (lo + hi) / 2;
    if (cdf[mid] < u) {
      lo = mid + 1;
    } else {
      hi = mid;
    }
  }
  return lo;
}

std::vector<double> BuildCdf(size_t n, double skew) {
  std::vector<double> cdf(n);
  if (skew == 0.0) return cdf;
  double total = 0;
  for (size_t i = 0; i < n; ++i) {
    total += 1.0 / std::pow(static_cast<double>(i + 1), skew);
    cdf[i] = total;
  }
  for (size_t i = 0; i < n; ++i) cdf[i] /= total;
  return cdf;
}

std::string RandomPayload(Xoshiro256* rng, size_t len) {
  static const char kAlphabet[] = "abcdefghijklmnopqrstuvwxyz0123456789";
  std::string s;
  s.reserve(len);
  for (size_t i = 0; i < len; ++i) {
    s.push_back(kAlphabet[rng->NextBelow(sizeof(kAlphabet) - 1)]);
  }
  return s;
}

Relation GenerateSide(Xoshiro256* rng, const std::string& join_attr,
                      const std::string& prefix, size_t tuples, size_t domain,
                      int64_t domain_offset, size_t common, size_t extra_cols,
                      size_t payload_len, double skew, size_t secondary_domain,
                      bool string_join) {
  std::vector<Column> cols;
  cols.push_back(
      {join_attr, string_join ? ValueType::kString : ValueType::kInt64});
  if (secondary_domain > 0) {
    cols.push_back({"bjoin", ValueType::kInt64});
  }
  for (size_t i = 0; i < extra_cols; ++i) {
    cols.push_back({prefix + "_c" + std::to_string(i), ValueType::kString});
  }
  Relation rel{Schema(std::move(cols))};

  // Domain values: [0, common) shared, then disjoint tail at domain_offset.
  std::vector<int64_t> domain_values;
  domain_values.reserve(domain);
  for (size_t i = 0; i < domain; ++i) {
    if (i < common) {
      domain_values.push_back(static_cast<int64_t>(i));
    } else {
      domain_values.push_back(domain_offset + static_cast<int64_t>(i));
    }
  }
  const std::vector<double> cdf = BuildCdf(domain, skew);

  // Guarantee every domain value appears at least once (so the active
  // domain size is exactly `domain`), then fill the rest randomly.
  for (size_t i = 0; i < tuples; ++i) {
    int64_t jv = i < domain
                     ? domain_values[i]
                     : domain_values[DrawSkewed(rng, domain, skew, cdf)];
    Tuple t;
    t.push_back(string_join ? Value::Str("v" + std::to_string(jv))
                            : Value::Int(jv));
    if (secondary_domain > 0) {
      t.push_back(Value::Int(
          static_cast<int64_t>(rng->NextBelow(secondary_domain))));
    }
    for (size_t c = 0; c < extra_cols; ++c) {
      t.push_back(Value::Str(RandomPayload(rng, payload_len)));
    }
    rel.AppendUnchecked(std::move(t));
  }
  return rel;
}
}  // namespace

Workload GenerateWorkload(const WorkloadConfig& config) {
  Xoshiro256 rng(config.seed);
  Workload w;
  w.join_attribute = "ajoin";
  w.join_attributes = {"ajoin"};
  if (config.secondary_join_domain > 0) w.join_attributes.push_back("bjoin");
  // Offsets keep the non-common parts of the two domains disjoint.
  w.r1 = GenerateSide(&rng, w.join_attribute, "r1", config.r1_tuples,
                      config.r1_domain, 1000000, config.common_values,
                      config.r1_extra_columns, config.payload_length,
                      config.skew, config.secondary_join_domain,
                      config.string_join_values);
  w.r2 = GenerateSide(&rng, w.join_attribute, "r2", config.r2_tuples,
                      config.r2_domain, 2000000, config.common_values,
                      config.r2_extra_columns, config.payload_length,
                      config.skew, config.secondary_join_domain,
                      config.string_join_values);
  return w;
}

}  // namespace secmed
