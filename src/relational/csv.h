#ifndef SECMED_RELATIONAL_CSV_H_
#define SECMED_RELATIONAL_CSV_H_

#include <string>

#include "relational/relation.h"
#include "util/result.h"

namespace secmed {

/// CSV import/export for relations, so real datasets can be fed to the
/// protocols (see tools/secmedctl).
///
/// Dialect: comma-separated, '\n' or '\r\n' record ends, double-quoted
/// fields with "" escaping. The first record is the header (column
/// names). Column types are inferred: a column whose every non-empty
/// field parses as a 64-bit integer becomes INT64, everything else
/// STRING; empty fields load as NULL.

/// Parses CSV text into a relation.
Result<Relation> LoadCsvString(const std::string& content);

/// Reads and parses a CSV file.
Result<Relation> LoadCsvFile(const std::string& path);

/// Renders a relation as CSV (header + rows; NULL as empty field).
std::string ToCsvString(const Relation& rel);

/// Writes a relation to a CSV file.
Status WriteCsvFile(const Relation& rel, const std::string& path);

}  // namespace secmed

#endif  // SECMED_RELATIONAL_CSV_H_
