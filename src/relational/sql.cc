#include "relational/sql.h"

#include <algorithm>
#include <cctype>

#include "relational/algebra.h"

namespace secmed {

namespace {

enum class TokenKind {
  kIdent,
  kNumber,
  kString,
  kSymbol,  // ( ) , * = <> < <= > >=
  kEnd,
};

struct Token {
  TokenKind kind = TokenKind::kEnd;
  std::string text;   // uppercased for idents? No — case preserved; keyword
                      // comparison is case-insensitive.
  size_t pos = 0;
};

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' || c == '.';
}

Result<std::vector<Token>> Tokenize(const std::string& sql) {
  std::vector<Token> tokens;
  size_t i = 0;
  while (i < sql.size()) {
    char c = sql[i];
    if (std::isspace(static_cast<unsigned char>(c))) {
      ++i;
      continue;
    }
    Token t;
    t.pos = i;
    if (std::isalpha(static_cast<unsigned char>(c)) || c == '_') {
      size_t j = i;
      while (j < sql.size() && IsIdentChar(sql[j])) ++j;
      t.kind = TokenKind::kIdent;
      t.text = sql.substr(i, j - i);
      i = j;
    } else if (std::isdigit(static_cast<unsigned char>(c)) ||
               (c == '-' && i + 1 < sql.size() &&
                std::isdigit(static_cast<unsigned char>(sql[i + 1])))) {
      size_t j = i + 1;
      while (j < sql.size() &&
             std::isdigit(static_cast<unsigned char>(sql[j]))) {
        ++j;
      }
      t.kind = TokenKind::kNumber;
      t.text = sql.substr(i, j - i);
      i = j;
    } else if (c == '\'') {
      size_t j = i + 1;
      std::string s;
      while (j < sql.size() && sql[j] != '\'') s.push_back(sql[j++]);
      if (j == sql.size()) {
        return Status::ParseError("unterminated string literal at position " +
                                  std::to_string(i));
      }
      t.kind = TokenKind::kString;
      t.text = std::move(s);
      i = j + 1;
    } else if (c == '<' && i + 1 < sql.size() &&
               (sql[i + 1] == '=' || sql[i + 1] == '>')) {
      t.kind = TokenKind::kSymbol;
      t.text = sql.substr(i, 2);
      i += 2;
    } else if (c == '>' && i + 1 < sql.size() && sql[i + 1] == '=') {
      t.kind = TokenKind::kSymbol;
      t.text = ">=";
      i += 2;
    } else if (c == '(' || c == ')' || c == ',' || c == '*' || c == '=' ||
               c == '<' || c == '>') {
      t.kind = TokenKind::kSymbol;
      t.text = std::string(1, c);
      ++i;
    } else {
      return Status::ParseError("unexpected character '" + std::string(1, c) +
                                "' at position " + std::to_string(i));
    }
    tokens.push_back(std::move(t));
  }
  Token end;
  end.pos = sql.size();
  tokens.push_back(end);
  return tokens;
}

std::string Upper(std::string s) {
  std::transform(s.begin(), s.end(), s.begin(),
                 [](unsigned char c) { return std::toupper(c); });
  return s;
}

/// Recursive-descent parser over the token stream.
class Parser {
 public:
  explicit Parser(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  Result<ParsedQuery> Parse() {
    ParsedQuery q;
    SECMED_RETURN_IF_ERROR(ExpectKeyword("SELECT"));
    SECMED_RETURN_IF_ERROR(ParseSelectList(&q));
    SECMED_RETURN_IF_ERROR(ExpectKeyword("FROM"));
    SECMED_ASSIGN_OR_RETURN(q.from, ParseTableRef());
    while (PeekKeyword("JOIN") || PeekKeyword("NATURAL")) {
      ParsedQuery::JoinClause join;
      if (AcceptKeyword("NATURAL")) {
        SECMED_RETURN_IF_ERROR(ExpectKeyword("JOIN"));
        join.natural = true;
        SECMED_ASSIGN_OR_RETURN(join.table, ParseTableRef());
      } else {
        AcceptKeyword("JOIN");
        SECMED_ASSIGN_OR_RETURN(join.table, ParseTableRef());
        SECMED_RETURN_IF_ERROR(ExpectKeyword("ON"));
        do {
          std::pair<std::string, std::string> pair;
          SECMED_ASSIGN_OR_RETURN(pair.first, ExpectIdent());
          SECMED_RETURN_IF_ERROR(ExpectSymbol("="));
          SECMED_ASSIGN_OR_RETURN(pair.second, ExpectIdent());
          join.on_pairs.push_back(std::move(pair));
        } while (AcceptKeyword("AND"));
      }
      q.joins.push_back(std::move(join));
    }
    if (AcceptKeyword("WHERE")) {
      SECMED_ASSIGN_OR_RETURN(q.where, ParseOr());
    } else {
      q.where = Predicate::True();
    }
    if (AcceptKeyword("GROUP")) {
      SECMED_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        SECMED_ASSIGN_OR_RETURN(std::string col, ExpectIdent());
        q.group_by.push_back(std::move(col));
      } while (AcceptSymbol(","));
    }
    if (AcceptKeyword("ORDER")) {
      SECMED_RETURN_IF_ERROR(ExpectKeyword("BY"));
      do {
        OrderKey key;
        SECMED_ASSIGN_OR_RETURN(key.column, ExpectIdent());
        if (AcceptKeyword("DESC")) {
          key.descending = true;
        } else {
          AcceptKeyword("ASC");
        }
        q.order_by.push_back(std::move(key));
      } while (AcceptSymbol(","));
    }
    if (AcceptKeyword("LIMIT")) {
      if (cur().kind != TokenKind::kNumber) {
        return Status::ParseError("LIMIT expects a number, got '" +
                                  cur().text + "'");
      }
      int64_t n = std::stoll(cur().text);
      if (n < 0) return Status::ParseError("LIMIT must be non-negative");
      q.limit = static_cast<size_t>(n);
      Advance();
    }
    if (cur().kind != TokenKind::kEnd) {
      return Status::ParseError("trailing input after query: '" + cur().text +
                                "'");
    }
    return q;
  }

 private:
  const Token& cur() const { return tokens_[pos_]; }
  void Advance() { ++pos_; }

  bool PeekKeyword(const char* kw) const {
    return cur().kind == TokenKind::kIdent && Upper(cur().text) == kw;
  }
  bool AcceptKeyword(const char* kw) {
    if (!PeekKeyword(kw)) return false;
    Advance();
    return true;
  }
  Status ExpectKeyword(const char* kw) {
    if (!AcceptKeyword(kw)) {
      return Status::ParseError(std::string("expected ") + kw + " before '" +
                                cur().text + "'");
    }
    return Status::OK();
  }
  bool AcceptSymbol(const char* sym) {
    if (cur().kind == TokenKind::kSymbol && cur().text == sym) {
      Advance();
      return true;
    }
    return false;
  }
  Status ExpectSymbol(const char* sym) {
    if (!AcceptSymbol(sym)) {
      return Status::ParseError(std::string("expected '") + sym +
                                "' before '" + cur().text + "'");
    }
    return Status::OK();
  }
  Result<std::string> ExpectIdent() {
    if (cur().kind != TokenKind::kIdent) {
      return Status::ParseError("expected identifier before '" + cur().text +
                                "'");
    }
    std::string s = cur().text;
    Advance();
    return s;
  }

  // Maps an identifier to an aggregate function, if it names one.
  static bool LookupAggregateFn(const std::string& ident, AggregateFn* fn) {
    const std::string up = Upper(ident);
    if (up == "COUNT") *fn = AggregateFn::kCount;
    else if (up == "SUM") *fn = AggregateFn::kSum;
    else if (up == "MIN") *fn = AggregateFn::kMin;
    else if (up == "MAX") *fn = AggregateFn::kMax;
    else if (up == "AVG") *fn = AggregateFn::kAvg;
    else return false;
    return true;
  }

  Status ParseSelectList(ParsedQuery* q) {
    if (AcceptSymbol("*")) return Status::OK();
    for (;;) {
      SECMED_ASSIGN_OR_RETURN(std::string ident, ExpectIdent());
      AggregateFn fn;
      if (cur().kind == TokenKind::kSymbol && cur().text == "(" &&
          LookupAggregateFn(ident, &fn)) {
        Advance();  // '('
        AggregateSpec spec;
        spec.fn = fn;
        if (!AcceptSymbol("*")) {
          SECMED_ASSIGN_OR_RETURN(spec.column, ExpectIdent());
        } else if (fn != AggregateFn::kCount) {
          return Status::ParseError("only COUNT accepts *");
        }
        SECMED_RETURN_IF_ERROR(ExpectSymbol(")"));
        if (AcceptKeyword("AS")) {
          SECMED_ASSIGN_OR_RETURN(spec.output_name, ExpectIdent());
        }
        q->aggregates.push_back(std::move(spec));
      } else {
        q->select_columns.push_back(std::move(ident));
      }
      if (!AcceptSymbol(",")) break;
    }
    return Status::OK();
  }

  Result<ParsedQuery::TableRef> ParseTableRef() {
    ParsedQuery::TableRef ref;
    SECMED_ASSIGN_OR_RETURN(ref.name, ExpectIdent());
    if (AcceptKeyword("AS")) {
      SECMED_ASSIGN_OR_RETURN(ref.alias, ExpectIdent());
    } else {
      ref.alias = ref.name;
    }
    return ref;
  }

  // Predicate grammar: or := and (OR and)* ; and := unary (AND unary)* ;
  // unary := NOT unary | '(' or ')' | comparison.
  Result<PredicatePtr> ParseOr() {
    SECMED_ASSIGN_OR_RETURN(PredicatePtr acc, ParseAnd());
    while (AcceptKeyword("OR")) {
      SECMED_ASSIGN_OR_RETURN(PredicatePtr rhs, ParseAnd());
      acc = Predicate::Or(std::move(acc), std::move(rhs));
    }
    return acc;
  }

  Result<PredicatePtr> ParseAnd() {
    SECMED_ASSIGN_OR_RETURN(PredicatePtr acc, ParseUnary());
    while (AcceptKeyword("AND")) {
      SECMED_ASSIGN_OR_RETURN(PredicatePtr rhs, ParseUnary());
      acc = Predicate::And(std::move(acc), std::move(rhs));
    }
    return acc;
  }

  Result<PredicatePtr> ParseUnary() {
    if (AcceptKeyword("NOT")) {
      SECMED_ASSIGN_OR_RETURN(PredicatePtr inner, ParseUnary());
      return Predicate::Not(std::move(inner));
    }
    if (AcceptSymbol("(")) {
      SECMED_ASSIGN_OR_RETURN(PredicatePtr inner, ParseOr());
      SECMED_RETURN_IF_ERROR(ExpectSymbol(")"));
      return inner;
    }
    return ParseComparison();
  }

  Result<Predicate::Operand> ParseOperand() {
    if (cur().kind == TokenKind::kIdent) {
      std::string name = cur().text;
      Advance();
      return Predicate::Operand::Col(std::move(name));
    }
    if (cur().kind == TokenKind::kNumber) {
      int64_t v = std::stoll(cur().text);
      Advance();
      return Predicate::Operand::Lit(Value::Int(v));
    }
    if (cur().kind == TokenKind::kString) {
      std::string s = cur().text;
      Advance();
      return Predicate::Operand::Lit(Value::Str(std::move(s)));
    }
    return Status::ParseError("expected operand before '" + cur().text + "'");
  }

  Result<PredicatePtr> ParseComparison() {
    SECMED_ASSIGN_OR_RETURN(Predicate::Operand lhs, ParseOperand());
    CompareOp op;
    if (AcceptSymbol("=")) {
      op = CompareOp::kEq;
    } else if (AcceptSymbol("<>")) {
      op = CompareOp::kNe;
    } else if (AcceptSymbol("<=")) {
      op = CompareOp::kLe;
    } else if (AcceptSymbol(">=")) {
      op = CompareOp::kGe;
    } else if (AcceptSymbol("<")) {
      op = CompareOp::kLt;
    } else if (AcceptSymbol(">")) {
      op = CompareOp::kGt;
    } else {
      return Status::ParseError("expected comparison operator before '" +
                                cur().text + "'");
    }
    SECMED_ASSIGN_OR_RETURN(Predicate::Operand rhs, ParseOperand());
    return Predicate::Compare(std::move(lhs), op, std::move(rhs));
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

std::string ParsedQuery::ToString() const {
  std::string out = "SELECT ";
  if (select_columns.empty() && aggregates.empty()) {
    out += "*";
  } else {
    bool first = true;
    for (const std::string& col : select_columns) {
      if (!first) out += ", ";
      out += col;
      first = false;
    }
    for (const AggregateSpec& a : aggregates) {
      if (!first) out += ", ";
      out += Upper(AggregateFnToString(a.fn));
      out += "(" + (a.column.empty() ? std::string("*") : a.column) + ")";
      if (!a.output_name.empty()) out += " AS " + a.output_name;
      first = false;
    }
  }
  out += " FROM " + from.name;
  if (from.alias != from.name) out += " AS " + from.alias;
  for (const JoinClause& j : joins) {
    if (j.natural) {
      out += " NATURAL JOIN " + j.table.name;
    } else {
      out += " JOIN " + j.table.name;
      if (j.table.alias != j.table.name) out += " AS " + j.table.alias;
      out += " ON ";
      for (size_t i = 0; i < j.on_pairs.size(); ++i) {
        if (i) out += " AND ";
        out += j.on_pairs[i].first + " = " + j.on_pairs[i].second;
      }
    }
  }
  if (where && where->kind() != Predicate::Kind::kTrue) {
    out += " WHERE " + where->ToString();
  }
  if (!group_by.empty()) {
    out += " GROUP BY ";
    for (size_t i = 0; i < group_by.size(); ++i) {
      if (i) out += ", ";
      out += group_by[i];
    }
  }
  if (!order_by.empty()) {
    out += " ORDER BY ";
    for (size_t i = 0; i < order_by.size(); ++i) {
      if (i) out += ", ";
      out += order_by[i].column;
      if (order_by[i].descending) out += " DESC";
    }
  }
  if (limit != SIZE_MAX) out += " LIMIT " + std::to_string(limit);
  return out;
}

Result<ParsedQuery> ParseSql(const std::string& sql) {
  SECMED_ASSIGN_OR_RETURN(std::vector<Token> tokens, Tokenize(sql));
  Parser p(std::move(tokens));
  return p.Parse();
}

std::string AlgebraNode::ToString(int indent) const {
  std::string pad(indent * 2, ' ');
  std::string out;
  switch (op) {
    case Op::kScan:
      out = pad + "Scan[" + table +
            (alias != table ? " AS " + alias : "") + "]  partial: \"" +
            partial_query + "\"\n";
      break;
    case Op::kSelect:
      out = pad + "Select[" + predicate->ToString() + "]\n";
      break;
    case Op::kProject: {
      out = pad + "Project[";
      for (size_t i = 0; i < columns.size(); ++i) {
        if (i) out += ", ";
        out += columns[i];
      }
      out += "]\n";
      break;
    }
    case Op::kJoin: {
      out = pad + "Join[";
      if (join_pairs.empty()) {
        out += "natural";
      } else {
        for (size_t i = 0; i < join_pairs.size(); ++i) {
          if (i) out += " AND ";
          out += join_pairs[i].first + " = " + join_pairs[i].second;
        }
      }
      out += "]\n";
      break;
    }
    case Op::kAggregate: {
      out = pad + "Aggregate[by: ";
      for (size_t i = 0; i < group_by.size(); ++i) {
        if (i) out += ", ";
        out += group_by[i];
      }
      out += "; ";
      for (size_t i = 0; i < aggregates.size(); ++i) {
        if (i) out += ", ";
        out += AggregateFnToString(aggregates[i].fn);
        out += "(" + (aggregates[i].column.empty() ? std::string("*")
                                                   : aggregates[i].column) +
               ")";
      }
      out += "]\n";
      break;
    }
    case Op::kOrderBy: {
      out = pad + "OrderBy[";
      for (size_t i = 0; i < order_keys.size(); ++i) {
        if (i) out += ", ";
        out += order_keys[i].column + (order_keys[i].descending ? " DESC" : "");
      }
      out += "]\n";
      break;
    }
    case Op::kLimit:
      out = pad + "Limit[" + std::to_string(limit) + "]\n";
      break;
  }
  for (const auto& child : children) out += child->ToString(indent + 1);
  return out;
}

std::vector<const AlgebraNode*> AlgebraNode::Leaves() const {
  std::vector<const AlgebraNode*> out;
  if (op == Op::kScan) {
    out.push_back(this);
    return out;
  }
  for (const auto& child : children) {
    for (const AlgebraNode* leaf : child->Leaves()) out.push_back(leaf);
  }
  return out;
}

Result<std::unique_ptr<AlgebraNode>> Sql2Algebra(const ParsedQuery& query) {
  auto scan = [](const ParsedQuery::TableRef& ref) {
    auto node = std::make_unique<AlgebraNode>();
    node->op = AlgebraNode::Op::kScan;
    node->table = ref.name;
    node->alias = ref.alias;
    node->partial_query = "select * from " + ref.name;
    return node;
  };

  std::unique_ptr<AlgebraNode> root = scan(query.from);
  for (const ParsedQuery::JoinClause& j : query.joins) {
    auto join = std::make_unique<AlgebraNode>();
    join->op = AlgebraNode::Op::kJoin;
    if (!j.natural) join->join_pairs = j.on_pairs;
    join->children.push_back(std::move(root));
    join->children.push_back(scan(j.table));
    root = std::move(join);
  }
  if (query.where && query.where->kind() != Predicate::Kind::kTrue) {
    auto select = std::make_unique<AlgebraNode>();
    select->op = AlgebraNode::Op::kSelect;
    select->predicate = query.where;
    select->children.push_back(std::move(root));
    root = std::move(select);
  }
  if (query.HasAggregates() || !query.group_by.empty()) {
    // Standard SQL: every plain select column must be grouped.
    for (const std::string& col : query.select_columns) {
      bool grouped = false;
      for (const std::string& g : query.group_by) grouped |= g == col;
      if (!grouped) {
        return Status::InvalidArgument(
            "column " + col + " must appear in GROUP BY or an aggregate");
      }
    }
    auto agg = std::make_unique<AlgebraNode>();
    agg->op = AlgebraNode::Op::kAggregate;
    agg->group_by = query.group_by;
    agg->aggregates = query.aggregates;
    agg->children.push_back(std::move(root));
    root = std::move(agg);
  } else if (!query.select_columns.empty()) {
    auto project = std::make_unique<AlgebraNode>();
    project->op = AlgebraNode::Op::kProject;
    project->columns = query.select_columns;
    project->children.push_back(std::move(root));
    root = std::move(project);
  }
  if (!query.order_by.empty()) {
    auto order = std::make_unique<AlgebraNode>();
    order->op = AlgebraNode::Op::kOrderBy;
    order->order_keys = query.order_by;
    order->children.push_back(std::move(root));
    root = std::move(order);
  }
  if (query.limit != SIZE_MAX) {
    auto lim = std::make_unique<AlgebraNode>();
    lim->op = AlgebraNode::Op::kLimit;
    lim->limit = query.limit;
    lim->children.push_back(std::move(root));
    root = std::move(lim);
  }
  return root;
}

Result<std::unique_ptr<AlgebraNode>> Sql2Algebra(const std::string& sql) {
  SECMED_ASSIGN_OR_RETURN(ParsedQuery q, ParseSql(sql));
  return Sql2Algebra(q);
}

Result<Relation> ExecuteAlgebra(const AlgebraNode& node,
                                const Catalog& catalog) {
  switch (node.op) {
    case AlgebraNode::Op::kScan: {
      auto it = catalog.find(node.table);
      if (it == catalog.end()) {
        return Status::NotFound("no relation named " + node.table);
      }
      return Qualify(it->second, node.alias);
    }
    case AlgebraNode::Op::kSelect: {
      SECMED_ASSIGN_OR_RETURN(Relation in,
                              ExecuteAlgebra(*node.children[0], catalog));
      return Select(in, node.predicate);
    }
    case AlgebraNode::Op::kProject: {
      SECMED_ASSIGN_OR_RETURN(Relation in,
                              ExecuteAlgebra(*node.children[0], catalog));
      return Project(in, node.columns);
    }
    case AlgebraNode::Op::kJoin: {
      SECMED_ASSIGN_OR_RETURN(Relation left,
                              ExecuteAlgebra(*node.children[0], catalog));
      SECMED_ASSIGN_OR_RETURN(Relation right,
                              ExecuteAlgebra(*node.children[1], catalog));
      if (node.join_pairs.empty()) return NaturalJoin(left, right);
      std::vector<std::string> left_cols, right_cols;
      for (const auto& [l, r] : node.join_pairs) {
        left_cols.push_back(l);
        right_cols.push_back(r);
      }
      return EquiJoinMulti(left, left_cols, right, right_cols);
    }
    case AlgebraNode::Op::kAggregate: {
      SECMED_ASSIGN_OR_RETURN(Relation in,
                              ExecuteAlgebra(*node.children[0], catalog));
      return Aggregate(in, node.group_by, node.aggregates);
    }
    case AlgebraNode::Op::kOrderBy: {
      SECMED_ASSIGN_OR_RETURN(Relation in,
                              ExecuteAlgebra(*node.children[0], catalog));
      return OrderBy(in, node.order_keys);
    }
    case AlgebraNode::Op::kLimit: {
      SECMED_ASSIGN_OR_RETURN(Relation in,
                              ExecuteAlgebra(*node.children[0], catalog));
      return Limit(in, node.limit);
    }
  }
  return Status::Internal("bad algebra node");
}

Result<Relation> ExecuteSql(const std::string& sql, const Catalog& catalog) {
  SECMED_ASSIGN_OR_RETURN(auto tree, Sql2Algebra(sql));
  return ExecuteAlgebra(*tree, catalog);
}

}  // namespace secmed
