#include "relational/csv.h"

#include <cctype>
#include <cstdio>
#include <fstream>
#include <sstream>

namespace secmed {

namespace {

// Splits CSV text into records of fields, honoring quoting.
Result<std::vector<std::vector<std::string>>> SplitCsv(
    const std::string& content) {
  std::vector<std::vector<std::string>> records;
  std::vector<std::string> fields;
  std::string field;
  bool in_quotes = false;
  bool field_started = false;

  auto end_field = [&] {
    fields.push_back(std::move(field));
    field.clear();
    field_started = false;
  };
  auto end_record = [&] {
    end_field();
    records.push_back(std::move(fields));
    fields.clear();
  };

  for (size_t i = 0; i < content.size(); ++i) {
    char c = content[i];
    if (in_quotes) {
      if (c == '"') {
        if (i + 1 < content.size() && content[i + 1] == '"') {
          field.push_back('"');
          ++i;
        } else {
          in_quotes = false;
        }
      } else {
        field.push_back(c);
      }
      continue;
    }
    switch (c) {
      case '"':
        if (!field.empty()) {
          return Status::ParseError("quote inside unquoted field at byte " +
                                    std::to_string(i));
        }
        in_quotes = true;
        field_started = true;
        break;
      case ',':
        end_field();
        field_started = false;
        break;
      case '\r':
        break;  // handled with the following '\n'
      case '\n':
        end_record();
        break;
      default:
        field.push_back(c);
        field_started = true;
    }
  }
  if (in_quotes) return Status::ParseError("unterminated quoted field");
  if (!field.empty() || !fields.empty() || field_started) end_record();
  return records;
}

bool ParsesAsInt(const std::string& s, int64_t* out) {
  if (s.empty()) return false;
  size_t i = s[0] == '-' ? 1 : 0;
  if (i == s.size()) return false;
  for (size_t k = i; k < s.size(); ++k) {
    if (!std::isdigit(static_cast<unsigned char>(s[k]))) return false;
  }
  errno = 0;
  char* end = nullptr;
  long long v = std::strtoll(s.c_str(), &end, 10);
  if (errno != 0 || end != s.c_str() + s.size()) return false;
  *out = static_cast<int64_t>(v);
  return true;
}

bool NeedsQuoting(const std::string& s) {
  for (char c : s) {
    if (c == ',' || c == '"' || c == '\n' || c == '\r') return true;
  }
  return false;
}

std::string QuoteField(const std::string& s) {
  if (!NeedsQuoting(s)) return s;
  std::string out = "\"";
  for (char c : s) {
    if (c == '"') out += "\"\"";
    else out.push_back(c);
  }
  out += "\"";
  return out;
}

}  // namespace

Result<Relation> LoadCsvString(const std::string& content) {
  SECMED_ASSIGN_OR_RETURN(auto records, SplitCsv(content));
  if (records.empty()) return Status::ParseError("CSV has no header record");
  const std::vector<std::string>& header = records[0];
  if (header.empty() || (header.size() == 1 && header[0].empty())) {
    return Status::ParseError("CSV header is empty");
  }
  const size_t ncols = header.size();

  // Type inference: INT64 unless some non-empty field fails to parse.
  std::vector<bool> is_int(ncols, true);
  std::vector<bool> saw_value(ncols, false);
  for (size_t r = 1; r < records.size(); ++r) {
    if (records[r].size() != ncols) {
      return Status::ParseError("record " + std::to_string(r) + " has " +
                                std::to_string(records[r].size()) +
                                " fields, expected " + std::to_string(ncols));
    }
    for (size_t c = 0; c < ncols; ++c) {
      const std::string& f = records[r][c];
      if (f.empty()) continue;
      saw_value[c] = true;
      int64_t v;
      if (!ParsesAsInt(f, &v)) is_int[c] = false;
    }
  }

  std::vector<Column> cols;
  for (size_t c = 0; c < ncols; ++c) {
    cols.push_back({header[c], saw_value[c] && is_int[c] ? ValueType::kInt64
                                                         : ValueType::kString});
  }
  Relation rel{Schema(std::move(cols))};
  for (size_t r = 1; r < records.size(); ++r) {
    Tuple t;
    t.reserve(ncols);
    for (size_t c = 0; c < ncols; ++c) {
      const std::string& f = records[r][c];
      if (f.empty()) {
        t.push_back(Value::Null());
      } else if (rel.schema().column(c).type == ValueType::kInt64) {
        int64_t v = 0;
        ParsesAsInt(f, &v);
        t.push_back(Value::Int(v));
      } else {
        t.push_back(Value::Str(f));
      }
    }
    SECMED_RETURN_IF_ERROR(rel.Append(std::move(t)));
  }
  return rel;
}

Result<Relation> LoadCsvFile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) return Status::NotFound("cannot open " + path);
  std::ostringstream ss;
  ss << in.rdbuf();
  return LoadCsvString(ss.str());
}

std::string ToCsvString(const Relation& rel) {
  std::string out;
  for (size_t c = 0; c < rel.schema().size(); ++c) {
    if (c) out += ",";
    out += QuoteField(rel.schema().column(c).name);
  }
  out += "\n";
  for (const Tuple& t : rel.tuples()) {
    for (size_t c = 0; c < t.size(); ++c) {
      if (c) out += ",";
      if (t[c].is_null()) continue;
      if (t[c].type() == ValueType::kInt64) {
        out += std::to_string(t[c].as_int());
      } else {
        out += QuoteField(t[c].as_string());
      }
    }
    out += "\n";
  }
  return out;
}

Status WriteCsvFile(const Relation& rel, const std::string& path) {
  std::ofstream out(path, std::ios::binary);
  if (!out) return Status::Internal("cannot write " + path);
  out << ToCsvString(rel);
  return out.good() ? Status::OK() : Status::DataLoss("write failed: " + path);
}

}  // namespace secmed
