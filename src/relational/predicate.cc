#include "relational/predicate.h"

namespace secmed {

const char* CompareOpToString(CompareOp op) {
  switch (op) {
    case CompareOp::kEq: return "=";
    case CompareOp::kNe: return "<>";
    case CompareOp::kLt: return "<";
    case CompareOp::kLe: return "<=";
    case CompareOp::kGt: return ">";
    case CompareOp::kGe: return ">=";
  }
  return "?";
}

PredicatePtr Predicate::True() {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kTrue;
  return p;
}

PredicatePtr Predicate::False() {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kFalse;
  return p;
}

PredicatePtr Predicate::Compare(Operand lhs, CompareOp op, Operand rhs) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kCompare;
  p->lhs_ = std::move(lhs);
  p->op_ = op;
  p->rhs_ = std::move(rhs);
  return p;
}

PredicatePtr Predicate::And(PredicatePtr a, PredicatePtr b) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kAnd;
  p->a_ = std::move(a);
  p->b_ = std::move(b);
  return p;
}

PredicatePtr Predicate::Or(PredicatePtr a, PredicatePtr b) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kOr;
  p->a_ = std::move(a);
  p->b_ = std::move(b);
  return p;
}

PredicatePtr Predicate::Not(PredicatePtr a) {
  auto p = std::shared_ptr<Predicate>(new Predicate());
  p->kind_ = Kind::kNot;
  p->a_ = std::move(a);
  return p;
}

PredicatePtr Predicate::ColumnEquals(std::string column, Value v) {
  return Compare(Operand::Col(std::move(column)), CompareOp::kEq,
                 Operand::Lit(std::move(v)));
}

PredicatePtr Predicate::DisjunctionOf(std::vector<PredicatePtr> preds) {
  if (preds.empty()) return False();
  PredicatePtr acc = preds[0];
  for (size_t i = 1; i < preds.size(); ++i) {
    acc = Or(std::move(acc), std::move(preds[i]));
  }
  return acc;
}

namespace {
Result<Value> ResolveOperand(const Predicate::Operand& o, const Tuple& tuple,
                             const Schema& schema) {
  if (!o.is_column) return o.literal;
  SECMED_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(o.column));
  return tuple[idx];
}
}  // namespace

Result<bool> Predicate::Eval(const Tuple& tuple, const Schema& schema) const {
  switch (kind_) {
    case Kind::kTrue:
      return true;
    case Kind::kFalse:
      return false;
    case Kind::kCompare: {
      SECMED_ASSIGN_OR_RETURN(Value l, ResolveOperand(lhs_, tuple, schema));
      SECMED_ASSIGN_OR_RETURN(Value r, ResolveOperand(rhs_, tuple, schema));
      if (l.is_null() || r.is_null()) return false;  // SQL three-valued-ish
      int c = l.Compare(r);
      switch (op_) {
        case CompareOp::kEq: return c == 0;
        case CompareOp::kNe: return c != 0;
        case CompareOp::kLt: return c < 0;
        case CompareOp::kLe: return c <= 0;
        case CompareOp::kGt: return c > 0;
        case CompareOp::kGe: return c >= 0;
      }
      return Status::Internal("bad compare op");
    }
    case Kind::kAnd: {
      SECMED_ASSIGN_OR_RETURN(bool a, a_->Eval(tuple, schema));
      if (!a) return false;
      return b_->Eval(tuple, schema);
    }
    case Kind::kOr: {
      SECMED_ASSIGN_OR_RETURN(bool a, a_->Eval(tuple, schema));
      if (a) return true;
      return b_->Eval(tuple, schema);
    }
    case Kind::kNot: {
      SECMED_ASSIGN_OR_RETURN(bool a, a_->Eval(tuple, schema));
      return !a;
    }
  }
  return Status::Internal("bad predicate kind");
}

std::string Predicate::ToString() const {
  auto operand_str = [](const Operand& o) {
    return o.is_column ? o.column : o.literal.ToString();
  };
  switch (kind_) {
    case Kind::kTrue:
      return "TRUE";
    case Kind::kFalse:
      return "FALSE";
    case Kind::kCompare:
      return operand_str(lhs_) + " " + CompareOpToString(op_) + " " +
             operand_str(rhs_);
    case Kind::kAnd:
      return "(" + a_->ToString() + " AND " + b_->ToString() + ")";
    case Kind::kOr:
      return "(" + a_->ToString() + " OR " + b_->ToString() + ")";
    case Kind::kNot:
      return "(NOT " + a_->ToString() + ")";
  }
  return "?";
}

Status ExtractEqualityConditions(
    const PredicatePtr& pred,
    std::vector<std::pair<std::string, Value>>* out) {
  switch (pred->kind()) {
    case Predicate::Kind::kAnd:
      SECMED_RETURN_IF_ERROR(ExtractEqualityConditions(pred->left(), out));
      return ExtractEqualityConditions(pred->right(), out);
    case Predicate::Kind::kCompare: {
      if (pred->op() != CompareOp::kEq) {
        return Status::Unimplemented("only equality conditions supported");
      }
      const Predicate::Operand& l = pred->lhs();
      const Predicate::Operand& r = pred->rhs();
      if (l.is_column && !r.is_column) {
        out->emplace_back(l.column, r.literal);
      } else if (!l.is_column && r.is_column) {
        out->emplace_back(r.column, l.literal);
      } else {
        return Status::Unimplemented(
            "conditions must compare a column with a literal");
      }
      return Status::OK();
    }
    default:
      return Status::Unimplemented(
          "only conjunctions of equalities supported");
  }
}

}  // namespace secmed
