#ifndef SECMED_RELATIONAL_RELATION_H_
#define SECMED_RELATIONAL_RELATION_H_

#include <string>
#include <vector>

#include "relational/schema.h"
#include "relational/value.h"
#include "util/result.h"

namespace secmed {

/// A row of a relation.
using Tuple = std::vector<Value>;

/// Canonical byte encoding of a whole tuple (length-prefixed values).
Bytes EncodeTuple(const Tuple& t);
Result<Tuple> DecodeTuple(const Bytes& data);

/// A relation: schema plus a bag (multiset) of tuples.
class Relation {
 public:
  Relation() = default;
  explicit Relation(Schema schema) : schema_(std::move(schema)) {}
  Relation(Schema schema, std::vector<Tuple> tuples)
      : schema_(std::move(schema)), tuples_(std::move(tuples)) {}

  const Schema& schema() const { return schema_; }
  const std::vector<Tuple>& tuples() const { return tuples_; }
  size_t size() const { return tuples_.size(); }
  bool empty() const { return tuples_.empty(); }

  /// Appends a tuple after checking arity and column types (NULL fits any
  /// column type).
  Status Append(Tuple t);
  /// Appends without validation (trusted internal paths).
  void AppendUnchecked(Tuple t) { tuples_.push_back(std::move(t)); }

  /// Column values of tuple `row`.
  const Value& at(size_t row, size_t col) const { return tuples_[row][col]; }

  /// Sorts tuples into the canonical total order (for comparisons).
  void SortCanonically();

  /// True iff both relations have the same schema and the same multiset of
  /// tuples (order-insensitive).
  bool EqualsAsBag(const Relation& other) const;

  /// Distinct values appearing in the given column — the paper's
  /// "active domain" domactive(A) of an attribute.
  Result<std::vector<Value>> ActiveDomain(const std::string& column) const;

  /// Pretty-prints an ASCII table (for examples and debugging).
  std::string ToString(size_t max_rows = 50) const;

  Bytes Serialize() const;
  static Result<Relation> Deserialize(const Bytes& data);

 private:
  Schema schema_;
  std::vector<Tuple> tuples_;
};

}  // namespace secmed

#endif  // SECMED_RELATIONAL_RELATION_H_
