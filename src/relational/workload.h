#ifndef SECMED_RELATIONAL_WORKLOAD_H_
#define SECMED_RELATIONAL_WORKLOAD_H_

#include <cstdint>
#include <string>

#include "relational/relation.h"
#include "util/rng.h"

namespace secmed {

/// Parameters of a synthetic two-relation join workload.
///
/// The protocols' costs depend on |R1|, |R2|, the active-domain sizes of
/// the join attribute, the overlap between the two active domains (which
/// drives join selectivity) and the tuple width — exactly the knobs
/// exposed here. Benchmarks sweep these to regenerate the paper's
/// Section 6 comparisons.
struct WorkloadConfig {
  /// Tuples in each source relation.
  size_t r1_tuples = 100;
  size_t r2_tuples = 100;
  /// Distinct join-attribute values per relation (active domain size).
  size_t r1_domain = 50;
  size_t r2_domain = 50;
  /// Number of join values common to both active domains.
  size_t common_values = 25;
  /// Non-join payload columns per relation.
  size_t r1_extra_columns = 2;
  size_t r2_extra_columns = 2;
  /// Approximate length of generated string payload values.
  size_t payload_length = 12;
  /// Zipf-like skew exponent for value frequencies; 0 = uniform.
  double skew = 0.0;
  /// When > 0, both relations get a second join attribute "bjoin" with
  /// values uniform in [0, secondary_join_domain) — used to exercise the
  /// multi-attribute join extension (paper Section 8).
  size_t secondary_join_domain = 0;
  /// When true the join attribute is a STRING column ("v<number>") instead
  /// of an integer — exercises string join values through the protocols.
  bool string_join_values = false;
  /// Seed for reproducibility.
  uint64_t seed = 42;
};

/// A generated workload: two relations sharing the join attribute name.
struct Workload {
  Relation r1;
  Relation r2;
  /// Name of the primary join attribute Ajoin common to both schemas.
  std::string join_attribute;
  /// All join attributes ("ajoin", plus "bjoin" when a secondary domain
  /// was configured).
  std::vector<std::string> join_attributes;
};

/// Generates a workload. Join values are integers; payload columns are
/// strings. The first `common_values` domain values are shared between
/// R1 and R2, the remainder are disjoint, so the expected number of
/// matching distinct values is exactly `common_values`.
Workload GenerateWorkload(const WorkloadConfig& config);

}  // namespace secmed

#endif  // SECMED_RELATIONAL_WORKLOAD_H_
