#include "relational/value.h"

namespace secmed {

const char* ValueTypeToString(ValueType t) {
  switch (t) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt64: return "INT64";
    case ValueType::kString: return "STRING";
  }
  return "UNKNOWN";
}

ValueType Value::type() const {
  if (std::holds_alternative<std::monostate>(repr_)) return ValueType::kNull;
  if (std::holds_alternative<int64_t>(repr_)) return ValueType::kInt64;
  return ValueType::kString;
}

int Value::Compare(const Value& other) const {
  ValueType a = type(), b = other.type();
  if (a != b) return static_cast<int>(a) < static_cast<int>(b) ? -1 : 1;
  switch (a) {
    case ValueType::kNull:
      return 0;
    case ValueType::kInt64: {
      int64_t x = as_int(), y = other.as_int();
      return x < y ? -1 : (x > y ? 1 : 0);
    }
    case ValueType::kString: {
      int c = as_string().compare(other.as_string());
      return c < 0 ? -1 : (c > 0 ? 1 : 0);
    }
  }
  return 0;
}

std::string Value::ToString() const {
  switch (type()) {
    case ValueType::kNull: return "NULL";
    case ValueType::kInt64: return std::to_string(as_int());
    case ValueType::kString: return "'" + as_string() + "'";
  }
  return "?";
}

void Value::EncodeTo(BinaryWriter* w) const {
  w->WriteU8(static_cast<uint8_t>(type()));
  switch (type()) {
    case ValueType::kNull:
      break;
    case ValueType::kInt64:
      w->WriteI64(as_int());
      break;
    case ValueType::kString:
      w->WriteString(as_string());
      break;
  }
}

Bytes Value::Encode() const {
  BinaryWriter w;
  EncodeTo(&w);
  return w.TakeBuffer();
}

Result<Value> Value::DecodeFrom(BinaryReader* r) {
  SECMED_ASSIGN_OR_RETURN(uint8_t tag, r->ReadU8());
  switch (static_cast<ValueType>(tag)) {
    case ValueType::kNull:
      return Value::Null();
    case ValueType::kInt64: {
      SECMED_ASSIGN_OR_RETURN(int64_t v, r->ReadI64());
      return Value::Int(v);
    }
    case ValueType::kString: {
      SECMED_ASSIGN_OR_RETURN(std::string s, r->ReadString());
      return Value::Str(std::move(s));
    }
  }
  return Status::ParseError("unknown value type tag " + std::to_string(tag));
}

size_t Value::Hash() const {
  // FNV-1a over the canonical encoding.
  Bytes enc = Encode();
  uint64_t h = 0xcbf29ce484222325ULL;
  for (uint8_t b : enc) {
    h ^= b;
    h *= 0x100000001b3ULL;
  }
  return static_cast<size_t>(h);
}

}  // namespace secmed
