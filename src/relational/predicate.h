#ifndef SECMED_RELATIONAL_PREDICATE_H_
#define SECMED_RELATIONAL_PREDICATE_H_

#include <memory>
#include <string>
#include <vector>

#include "relational/relation.h"
#include "relational/schema.h"
#include "relational/value.h"
#include "util/result.h"

namespace secmed {

/// Comparison operators of the predicate language.
enum class CompareOp { kEq, kNe, kLt, kLe, kGt, kGe };

const char* CompareOpToString(CompareOp op);

/// Boolean predicate over a tuple: comparisons of column references and
/// literals combined with AND / OR / NOT. Shared immutable tree.
class Predicate;
using PredicatePtr = std::shared_ptr<const Predicate>;

class Predicate {
 public:
  enum class Kind { kCompare, kAnd, kOr, kNot, kTrue, kFalse };

  /// Operand of a comparison: either a column reference or a literal.
  struct Operand {
    bool is_column = false;
    std::string column;  // when is_column
    Value literal;       // when !is_column

    static Operand Col(std::string name) {
      Operand o;
      o.is_column = true;
      o.column = std::move(name);
      return o;
    }
    static Operand Lit(Value v) {
      Operand o;
      o.literal = std::move(v);
      return o;
    }
  };

  static PredicatePtr True();
  static PredicatePtr False();
  static PredicatePtr Compare(Operand lhs, CompareOp op, Operand rhs);
  static PredicatePtr And(PredicatePtr a, PredicatePtr b);
  static PredicatePtr Or(PredicatePtr a, PredicatePtr b);
  static PredicatePtr Not(PredicatePtr a);

  /// Convenience: column = literal.
  static PredicatePtr ColumnEquals(std::string column, Value v);

  /// OR of a list of predicates (the big disjunction CondS of the DAS
  /// server query). An empty list yields False() — no partition pair
  /// overlaps, so the server result is empty.
  static PredicatePtr DisjunctionOf(std::vector<PredicatePtr> preds);

  Kind kind() const { return kind_; }

  // Structural accessors (for query planners walking the tree).
  const Operand& lhs() const { return lhs_; }
  CompareOp op() const { return op_; }
  const Operand& rhs() const { return rhs_; }
  const PredicatePtr& left() const { return a_; }
  const PredicatePtr& right() const { return b_; }

  /// Evaluates against a tuple. Column references resolve through the
  /// schema; comparisons involving NULL evaluate to false (SQL-ish).
  Result<bool> Eval(const Tuple& tuple, const Schema& schema) const;

  std::string ToString() const;

 private:
  Predicate() = default;

  Kind kind_ = Kind::kTrue;
  // kCompare:
  Operand lhs_;
  CompareOp op_ = CompareOp::kEq;
  Operand rhs_;
  // kAnd / kOr / kNot:
  PredicatePtr a_;
  PredicatePtr b_;
};

/// Extracts the column = literal conjuncts of a predicate that is a pure
/// conjunction of equalities; kUnimplemented for any other shape. Used by
/// the selection planners.
Status ExtractEqualityConditions(
    const PredicatePtr& pred,
    std::vector<std::pair<std::string, Value>>* out);

}  // namespace secmed

#endif  // SECMED_RELATIONAL_PREDICATE_H_
