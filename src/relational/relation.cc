#include "relational/relation.h"

#include <algorithm>
#include <set>

namespace secmed {

Bytes EncodeTuple(const Tuple& t) {
  BinaryWriter w;
  w.WriteU32(static_cast<uint32_t>(t.size()));
  for (const Value& v : t) v.EncodeTo(&w);
  return w.TakeBuffer();
}

Result<Tuple> DecodeTuple(const Bytes& data) {
  BinaryReader r(data);
  SECMED_ASSIGN_OR_RETURN(uint32_t n, r.ReadU32());
  Tuple t;
  t.reserve(std::min<size_t>(n, r.remaining()));
  for (uint32_t i = 0; i < n; ++i) {
    SECMED_ASSIGN_OR_RETURN(Value v, Value::DecodeFrom(&r));
    t.push_back(std::move(v));
  }
  if (!r.AtEnd()) return Status::ParseError("trailing bytes after tuple");
  return t;
}

Status Relation::Append(Tuple t) {
  if (t.size() != schema_.size()) {
    return Status::InvalidArgument(
        "tuple arity " + std::to_string(t.size()) + " does not match schema " +
        std::to_string(schema_.size()));
  }
  for (size_t i = 0; i < t.size(); ++i) {
    if (!t[i].is_null() && t[i].type() != schema_.column(i).type) {
      return Status::InvalidArgument("type mismatch in column " +
                                     schema_.column(i).name);
    }
  }
  tuples_.push_back(std::move(t));
  return Status::OK();
}

namespace {
bool TupleLess(const Tuple& a, const Tuple& b) {
  for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
    int c = a[i].Compare(b[i]);
    if (c != 0) return c < 0;
  }
  return a.size() < b.size();
}
}  // namespace

void Relation::SortCanonically() {
  std::sort(tuples_.begin(), tuples_.end(), TupleLess);
}

bool Relation::EqualsAsBag(const Relation& other) const {
  if (!(schema_ == other.schema_)) return false;
  if (tuples_.size() != other.tuples_.size()) return false;
  std::vector<Tuple> a = tuples_;
  std::vector<Tuple> b = other.tuples_;
  std::sort(a.begin(), a.end(), TupleLess);
  std::sort(b.begin(), b.end(), TupleLess);
  return a == b;
}

Result<std::vector<Value>> Relation::ActiveDomain(
    const std::string& column) const {
  SECMED_ASSIGN_OR_RETURN(size_t idx, schema_.IndexOf(column));
  std::set<Value> distinct;
  for (const Tuple& t : tuples_) distinct.insert(t[idx]);
  return std::vector<Value>(distinct.begin(), distinct.end());
}

std::string Relation::ToString(size_t max_rows) const {
  // Compute column widths.
  std::vector<std::string> headers;
  std::vector<size_t> widths;
  for (const Column& c : schema_.columns()) {
    headers.push_back(c.name);
    widths.push_back(c.name.size());
  }
  const size_t shown = std::min(max_rows, tuples_.size());
  std::vector<std::vector<std::string>> cells(shown);
  for (size_t r = 0; r < shown; ++r) {
    for (size_t c = 0; c < schema_.size(); ++c) {
      cells[r].push_back(tuples_[r][c].ToString());
      widths[c] = std::max(widths[c], cells[r][c].size());
    }
  }
  auto hline = [&] {
    std::string s = "+";
    for (size_t w : widths) s += std::string(w + 2, '-') + "+";
    return s + "\n";
  };
  std::string out = hline();
  out += "|";
  for (size_t c = 0; c < headers.size(); ++c) {
    out += " " + headers[c] + std::string(widths[c] - headers[c].size(), ' ') +
           " |";
  }
  out += "\n" + hline();
  for (size_t r = 0; r < shown; ++r) {
    out += "|";
    for (size_t c = 0; c < cells[r].size(); ++c) {
      out += " " + cells[r][c] + std::string(widths[c] - cells[r][c].size(), ' ') +
             " |";
    }
    out += "\n";
  }
  out += hline();
  if (shown < tuples_.size()) {
    out += "... " + std::to_string(tuples_.size() - shown) + " more rows\n";
  }
  out += std::to_string(tuples_.size()) + " row(s)\n";
  return out;
}

Bytes Relation::Serialize() const {
  BinaryWriter w;
  schema_.EncodeTo(&w);
  w.WriteU32(static_cast<uint32_t>(tuples_.size()));
  for (const Tuple& t : tuples_) {
    for (const Value& v : t) v.EncodeTo(&w);
  }
  return w.TakeBuffer();
}

Result<Relation> Relation::Deserialize(const Bytes& data) {
  BinaryReader r(data);
  SECMED_ASSIGN_OR_RETURN(Schema schema, Schema::DecodeFrom(&r));
  SECMED_ASSIGN_OR_RETURN(uint32_t n, r.ReadU32());
  Relation rel(schema);
  for (uint32_t i = 0; i < n; ++i) {
    Tuple t;
    t.reserve(schema.size());
    for (size_t c = 0; c < schema.size(); ++c) {
      SECMED_ASSIGN_OR_RETURN(Value v, Value::DecodeFrom(&r));
      t.push_back(std::move(v));
    }
    SECMED_RETURN_IF_ERROR(rel.Append(std::move(t)));
  }
  if (!r.AtEnd()) return Status::ParseError("trailing bytes after relation");
  return rel;
}

}  // namespace secmed
