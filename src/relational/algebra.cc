#include "relational/algebra.h"

#include <algorithm>
#include <map>
#include <unordered_map>

namespace secmed {

Result<Relation> Select(const Relation& rel, const PredicatePtr& pred) {
  Relation out(rel.schema());
  for (const Tuple& t : rel.tuples()) {
    SECMED_ASSIGN_OR_RETURN(bool keep, pred->Eval(t, rel.schema()));
    if (keep) out.AppendUnchecked(t);
  }
  return out;
}

Result<Relation> Project(const Relation& rel,
                         const std::vector<std::string>& columns) {
  std::vector<size_t> idx;
  std::vector<Column> cols;
  for (const std::string& name : columns) {
    SECMED_ASSIGN_OR_RETURN(size_t i, rel.schema().IndexOf(name));
    idx.push_back(i);
    cols.push_back(rel.schema().column(i));
  }
  Relation out{Schema(std::move(cols))};
  for (const Tuple& t : rel.tuples()) {
    Tuple nt;
    nt.reserve(idx.size());
    for (size_t i : idx) nt.push_back(t[i]);
    out.AppendUnchecked(std::move(nt));
  }
  return out;
}

Result<Relation> CrossProduct(const Relation& a, const Relation& b) {
  std::vector<Column> cols = a.schema().columns();
  for (const Column& c : b.schema().columns()) cols.push_back(c);
  Relation out{Schema(std::move(cols))};
  for (const Tuple& ta : a.tuples()) {
    for (const Tuple& tb : b.tuples()) {
      Tuple t = ta;
      t.insert(t.end(), tb.begin(), tb.end());
      out.AppendUnchecked(std::move(t));
    }
  }
  return out;
}

namespace {
struct ValueVectorHash {
  size_t operator()(const std::vector<Value>& vs) const {
    size_t h = 14695981039346656037ULL;
    for (const Value& v : vs) {
      h ^= v.Hash();
      h *= 1099511628211ULL;
    }
    return h;
  }
};
}  // namespace

Result<Relation> NaturalJoin(const Relation& a, const Relation& b) {
  const std::vector<std::string> common = a.schema().CommonColumns(b.schema());
  if (common.empty()) return CrossProduct(a, b);

  std::vector<size_t> a_keys, b_keys;
  for (const std::string& c : common) {
    SECMED_ASSIGN_OR_RETURN(size_t ia, a.schema().IndexOf(c));
    SECMED_ASSIGN_OR_RETURN(size_t ib, b.schema().IndexOf(c));
    a_keys.push_back(ia);
    b_keys.push_back(ib);
  }
  // Output schema: all of a, then b minus its join columns.
  std::vector<Column> cols = a.schema().columns();
  std::vector<size_t> b_keep;
  for (size_t i = 0; i < b.schema().size(); ++i) {
    if (std::find(b_keys.begin(), b_keys.end(), i) == b_keys.end()) {
      b_keep.push_back(i);
      cols.push_back(b.schema().column(i));
    }
  }
  Relation out{Schema(std::move(cols))};

  // Build hash table on b.
  std::unordered_map<std::vector<Value>, std::vector<const Tuple*>,
                     ValueVectorHash>
      table;
  for (const Tuple& tb : b.tuples()) {
    std::vector<Value> key;
    key.reserve(b_keys.size());
    bool has_null = false;
    for (size_t i : b_keys) {
      if (tb[i].is_null()) has_null = true;
      key.push_back(tb[i]);
    }
    if (has_null) continue;  // NULL never joins
    table[key].push_back(&tb);
  }
  for (const Tuple& ta : a.tuples()) {
    std::vector<Value> key;
    key.reserve(a_keys.size());
    bool has_null = false;
    for (size_t i : a_keys) {
      if (ta[i].is_null()) has_null = true;
      key.push_back(ta[i]);
    }
    if (has_null) continue;
    auto it = table.find(key);
    if (it == table.end()) continue;
    for (const Tuple* tb : it->second) {
      Tuple t = ta;
      for (size_t i : b_keep) t.push_back((*tb)[i]);
      out.AppendUnchecked(std::move(t));
    }
  }
  return out;
}

Result<Relation> EquiJoin(const Relation& a, const std::string& col_a,
                          const Relation& b, const std::string& col_b) {
  return EquiJoinMulti(a, {col_a}, b, {col_b});
}

Result<Relation> EquiJoinMulti(const Relation& a,
                               const std::vector<std::string>& cols_a,
                               const Relation& b,
                               const std::vector<std::string>& cols_b) {
  if (cols_a.empty() || cols_a.size() != cols_b.size()) {
    return Status::InvalidArgument("join column lists must match and be "
                                   "non-empty");
  }
  std::vector<size_t> ia, ib;
  for (size_t k = 0; k < cols_a.size(); ++k) {
    SECMED_ASSIGN_OR_RETURN(size_t i, a.schema().IndexOf(cols_a[k]));
    SECMED_ASSIGN_OR_RETURN(size_t j, b.schema().IndexOf(cols_b[k]));
    ia.push_back(i);
    ib.push_back(j);
  }

  std::vector<Column> cols = a.schema().columns();
  for (const Column& c : b.schema().columns()) cols.push_back(c);
  Relation out{Schema(std::move(cols))};

  auto key_of = [](const Tuple& t, const std::vector<size_t>& idx,
                   bool* has_null) {
    std::vector<Value> key;
    key.reserve(idx.size());
    for (size_t i : idx) {
      if (t[i].is_null()) *has_null = true;
      key.push_back(t[i]);
    }
    return key;
  };

  std::unordered_map<std::vector<Value>, std::vector<const Tuple*>,
                     ValueVectorHash>
      table;
  for (const Tuple& tb : b.tuples()) {
    bool has_null = false;
    std::vector<Value> key = key_of(tb, ib, &has_null);
    if (has_null) continue;
    table[std::move(key)].push_back(&tb);
  }
  for (const Tuple& ta : a.tuples()) {
    bool has_null = false;
    std::vector<Value> key = key_of(ta, ia, &has_null);
    if (has_null) continue;
    auto it = table.find(key);
    if (it == table.end()) continue;
    for (const Tuple* tb : it->second) {
      Tuple t = ta;
      t.insert(t.end(), tb->begin(), tb->end());
      out.AppendUnchecked(std::move(t));
    }
  }
  return out;
}

Result<Relation> Union(const Relation& a, const Relation& b) {
  if (!(a.schema() == b.schema())) {
    return Status::InvalidArgument("UNION requires identical schemas");
  }
  Relation out = a;
  for (const Tuple& t : b.tuples()) out.AppendUnchecked(t);
  return out;
}

Relation Distinct(const Relation& rel) {
  Relation sorted = rel;
  sorted.SortCanonically();
  Relation out(rel.schema());
  const std::vector<Tuple>& ts = sorted.tuples();
  for (size_t i = 0; i < ts.size(); ++i) {
    if (i == 0 || !(ts[i - 1] == ts[i])) out.AppendUnchecked(ts[i]);
  }
  return out;
}

Relation Qualify(const Relation& rel, const std::string& qualifier) {
  return Relation(rel.schema().Qualified(qualifier), rel.tuples());
}

const char* AggregateFnToString(AggregateFn fn) {
  switch (fn) {
    case AggregateFn::kCount: return "count";
    case AggregateFn::kSum: return "sum";
    case AggregateFn::kMin: return "min";
    case AggregateFn::kMax: return "max";
    case AggregateFn::kAvg: return "avg";
  }
  return "?";
}

namespace {
// Running state of one aggregate within one group.
struct AggState {
  int64_t count = 0;   // non-null inputs (or rows for COUNT(*))
  int64_t sum = 0;     // kSum / kAvg
  Value extreme;       // kMin / kMax; NULL until first input
};

Value FinalizeAgg(const AggregateSpec& spec, const AggState& s) {
  switch (spec.fn) {
    case AggregateFn::kCount:
      return Value::Int(s.count);
    case AggregateFn::kSum:
      return s.count == 0 ? Value::Null() : Value::Int(s.sum);
    case AggregateFn::kAvg:
      return s.count == 0 ? Value::Null() : Value::Int(s.sum / s.count);
    case AggregateFn::kMin:
    case AggregateFn::kMax:
      return s.extreme;
  }
  return Value::Null();
}
}  // namespace

Result<Relation> Aggregate(const Relation& rel,
                           const std::vector<std::string>& group_by,
                           const std::vector<AggregateSpec>& aggs) {
  // Resolve all column references up front.
  std::vector<size_t> group_idx;
  for (const std::string& col : group_by) {
    SECMED_ASSIGN_OR_RETURN(size_t i, rel.schema().IndexOf(col));
    group_idx.push_back(i);
  }
  std::vector<int> agg_idx(aggs.size(), -1);  // -1 for COUNT(*)
  for (size_t k = 0; k < aggs.size(); ++k) {
    if (aggs[k].column.empty()) {
      if (aggs[k].fn != AggregateFn::kCount) {
        return Status::InvalidArgument("only COUNT accepts * as argument");
      }
      continue;
    }
    SECMED_ASSIGN_OR_RETURN(size_t i, rel.schema().IndexOf(aggs[k].column));
    if ((aggs[k].fn == AggregateFn::kSum || aggs[k].fn == AggregateFn::kAvg) &&
        rel.schema().column(i).type != ValueType::kInt64) {
      return Status::InvalidArgument(
          std::string(AggregateFnToString(aggs[k].fn)) +
          " requires an integer column: " + aggs[k].column);
    }
    agg_idx[k] = static_cast<int>(i);
  }

  // Output schema: group columns, then one column per aggregate.
  std::vector<Column> cols;
  for (size_t i : group_idx) cols.push_back(rel.schema().column(i));
  for (size_t k = 0; k < aggs.size(); ++k) {
    std::string name = aggs[k].output_name;
    if (name.empty()) {
      name = std::string(AggregateFnToString(aggs[k].fn)) + "_" +
             (aggs[k].column.empty() ? "all"
                                     : Schema::BaseName(aggs[k].column));
    }
    ValueType type = ValueType::kInt64;
    if ((aggs[k].fn == AggregateFn::kMin || aggs[k].fn == AggregateFn::kMax) &&
        agg_idx[k] >= 0) {
      type = rel.schema().column(static_cast<size_t>(agg_idx[k])).type;
    }
    cols.push_back({std::move(name), type});
  }

  // Group and fold. std::map keeps deterministic (canonical) group order.
  std::map<std::vector<Value>, std::vector<AggState>> groups;
  for (const Tuple& t : rel.tuples()) {
    std::vector<Value> key;
    key.reserve(group_idx.size());
    for (size_t i : group_idx) key.push_back(t[i]);
    auto [it, inserted] =
        groups.try_emplace(std::move(key), std::vector<AggState>(aggs.size()));
    for (size_t k = 0; k < aggs.size(); ++k) {
      AggState& s = it->second[k];
      if (agg_idx[k] < 0) {  // COUNT(*)
        ++s.count;
        continue;
      }
      const Value& v = t[static_cast<size_t>(agg_idx[k])];
      if (v.is_null()) continue;
      ++s.count;
      switch (aggs[k].fn) {
        case AggregateFn::kSum:
        case AggregateFn::kAvg:
          s.sum += v.as_int();
          break;
        case AggregateFn::kMin:
          if (s.extreme.is_null() || v < s.extreme) s.extreme = v;
          break;
        case AggregateFn::kMax:
          if (s.extreme.is_null() || v > s.extreme) s.extreme = v;
          break;
        case AggregateFn::kCount:
          break;
      }
    }
  }
  // Global aggregation over an empty input still yields one row.
  if (groups.empty() && group_idx.empty()) {
    groups.emplace(std::vector<Value>(), std::vector<AggState>(aggs.size()));
  }

  Relation out{Schema(std::move(cols))};
  for (const auto& [key, states] : groups) {
    Tuple t = key;
    for (size_t k = 0; k < aggs.size(); ++k) {
      t.push_back(FinalizeAgg(aggs[k], states[k]));
    }
    out.AppendUnchecked(std::move(t));
  }
  return out;
}

Result<Relation> OrderBy(const Relation& rel,
                         const std::vector<OrderKey>& keys) {
  std::vector<std::pair<size_t, bool>> idx;
  for (const OrderKey& k : keys) {
    SECMED_ASSIGN_OR_RETURN(size_t i, rel.schema().IndexOf(k.column));
    idx.emplace_back(i, k.descending);
  }
  Relation out = rel;
  std::vector<Tuple> tuples = out.tuples();
  std::stable_sort(tuples.begin(), tuples.end(),
                   [&idx](const Tuple& a, const Tuple& b) {
                     for (const auto& [i, desc] : idx) {
                       int c = a[i].Compare(b[i]);
                       if (c != 0) return desc ? c > 0 : c < 0;
                     }
                     return false;
                   });
  return Relation(rel.schema(), std::move(tuples));
}

Relation Limit(const Relation& rel, size_t n) {
  if (rel.size() <= n) return rel;
  std::vector<Tuple> tuples(rel.tuples().begin(), rel.tuples().begin() + n);
  return Relation(rel.schema(), std::move(tuples));
}

}  // namespace secmed
