#ifndef SECMED_RELATIONAL_VALUE_H_
#define SECMED_RELATIONAL_VALUE_H_

#include <cstdint>
#include <string>
#include <variant>

#include "util/bytes.h"
#include "util/result.h"
#include "util/serialize.h"

namespace secmed {

/// Type tag of a relational value.
enum class ValueType : uint8_t {
  kNull = 0,
  kInt64 = 1,
  kString = 2,
};

const char* ValueTypeToString(ValueType t);

/// A single typed cell of a tuple: NULL, 64-bit integer or string.
///
/// Values have a total order (NULL < all integers < all strings; integers
/// by numeric order, strings lexicographically) so relations can be sorted
/// canonically and domains can be partitioned into ranges.
class Value {
 public:
  /// Constructs NULL.
  Value() : repr_(std::monostate{}) {}

  static Value Null() { return Value(); }
  static Value Int(int64_t v) { return Value(v); }
  static Value Str(std::string v) { return Value(std::move(v)); }

  ValueType type() const;
  bool is_null() const { return type() == ValueType::kNull; }

  /// Underlying integer; must hold kInt64.
  int64_t as_int() const { return std::get<int64_t>(repr_); }
  /// Underlying string; must hold kString.
  const std::string& as_string() const { return std::get<std::string>(repr_); }

  /// Three-way total order across types.
  int Compare(const Value& other) const;
  bool operator==(const Value& other) const { return Compare(other) == 0; }
  bool operator!=(const Value& other) const { return Compare(other) != 0; }
  bool operator<(const Value& other) const { return Compare(other) < 0; }
  bool operator<=(const Value& other) const { return Compare(other) <= 0; }
  bool operator>(const Value& other) const { return Compare(other) > 0; }
  bool operator>=(const Value& other) const { return Compare(other) >= 0; }

  /// Human-readable rendering ("NULL", "42", "'abc'").
  std::string ToString() const;

  /// Canonical byte encoding, injective across types and values. Used as
  /// hash-function input for join values and for wire serialization.
  Bytes Encode() const;
  void EncodeTo(BinaryWriter* w) const;
  static Result<Value> DecodeFrom(BinaryReader* r);

  /// 64-bit hash for hash-join buckets (not cryptographic).
  size_t Hash() const;

 private:
  explicit Value(int64_t v) : repr_(v) {}
  explicit Value(std::string v) : repr_(std::move(v)) {}

  std::variant<std::monostate, int64_t, std::string> repr_;
};

}  // namespace secmed

#endif  // SECMED_RELATIONAL_VALUE_H_
