#ifndef SECMED_RELATIONAL_SCHEMA_H_
#define SECMED_RELATIONAL_SCHEMA_H_

#include <string>
#include <vector>

#include "relational/value.h"
#include "util/result.h"

namespace secmed {

/// A named, typed column of a relation schema.
struct Column {
  std::string name;
  ValueType type = ValueType::kNull;

  bool operator==(const Column& other) const {
    return name == other.name && type == other.type;
  }
};

/// Ordered list of columns describing the shape of a relation.
///
/// Column names may be qualified ("R1.diag"); `IndexOf` matches either the
/// full name or the unqualified suffix when that is unambiguous, mirroring
/// SQL name resolution.
class Schema {
 public:
  Schema() = default;
  explicit Schema(std::vector<Column> columns) : columns_(std::move(columns)) {}

  size_t size() const { return columns_.size(); }
  const Column& column(size_t i) const { return columns_[i]; }
  const std::vector<Column>& columns() const { return columns_; }

  /// Index of a column by (possibly qualified) name. kNotFound if absent,
  /// kInvalidArgument if an unqualified name is ambiguous.
  Result<size_t> IndexOf(const std::string& name) const;
  bool HasColumn(const std::string& name) const { return IndexOf(name).ok(); }

  /// Returns a copy with every column name prefixed "qualifier.name"
  /// (existing qualifiers are replaced).
  Schema Qualified(const std::string& qualifier) const;

  /// The unqualified part of a column name ("R1.diag" -> "diag").
  static std::string BaseName(const std::string& name);

  /// Names present in both schemas (compared by base name). Used to find
  /// the join attributes A1 = A2 of the paper.
  std::vector<std::string> CommonColumns(const Schema& other) const;

  bool operator==(const Schema& other) const {
    return columns_ == other.columns_;
  }

  std::string ToString() const;

  void EncodeTo(BinaryWriter* w) const;
  static Result<Schema> DecodeFrom(BinaryReader* r);

 private:
  std::vector<Column> columns_;
};

}  // namespace secmed

#endif  // SECMED_RELATIONAL_SCHEMA_H_
