#include "relational/schema.h"

namespace secmed {

std::string Schema::BaseName(const std::string& name) {
  size_t dot = name.rfind('.');
  return dot == std::string::npos ? name : name.substr(dot + 1);
}

Result<size_t> Schema::IndexOf(const std::string& name) const {
  // Exact match first.
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (columns_[i].name == name) return i;
  }
  // Fall back to unqualified resolution.
  size_t found = columns_.size();
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (BaseName(columns_[i].name) == name) {
      if (found != columns_.size()) {
        return Status::InvalidArgument("ambiguous column name: " + name);
      }
      found = i;
    }
  }
  if (found == columns_.size()) {
    return Status::NotFound("no column named " + name);
  }
  return found;
}

Schema Schema::Qualified(const std::string& qualifier) const {
  std::vector<Column> cols = columns_;
  for (Column& c : cols) c.name = qualifier + "." + BaseName(c.name);
  return Schema(std::move(cols));
}

std::vector<std::string> Schema::CommonColumns(const Schema& other) const {
  std::vector<std::string> common;
  for (const Column& c : columns_) {
    const std::string base = BaseName(c.name);
    for (const Column& d : other.columns_) {
      if (BaseName(d.name) == base) {
        common.push_back(base);
        break;
      }
    }
  }
  return common;
}

std::string Schema::ToString() const {
  std::string out = "(";
  for (size_t i = 0; i < columns_.size(); ++i) {
    if (i) out += ", ";
    out += columns_[i].name;
    out += " ";
    out += ValueTypeToString(columns_[i].type);
  }
  out += ")";
  return out;
}

void Schema::EncodeTo(BinaryWriter* w) const {
  w->WriteU32(static_cast<uint32_t>(columns_.size()));
  for (const Column& c : columns_) {
    w->WriteString(c.name);
    w->WriteU8(static_cast<uint8_t>(c.type));
  }
}

Result<Schema> Schema::DecodeFrom(BinaryReader* r) {
  SECMED_ASSIGN_OR_RETURN(uint32_t n, r->ReadU32());
  std::vector<Column> cols;
  cols.reserve(std::min<size_t>(n, r->remaining()));
  for (uint32_t i = 0; i < n; ++i) {
    Column c;
    SECMED_ASSIGN_OR_RETURN(c.name, r->ReadString());
    SECMED_ASSIGN_OR_RETURN(uint8_t t, r->ReadU8());
    if (t > static_cast<uint8_t>(ValueType::kString)) {
      return Status::ParseError("bad column type tag");
    }
    c.type = static_cast<ValueType>(t);
    cols.push_back(std::move(c));
  }
  return Schema(std::move(cols));
}

}  // namespace secmed
