#include "core/leakage.h"

#include <algorithm>
#include <set>

namespace secmed {

std::string LeakageReport::ToString() const {
  std::string out = "LeakageReport[" + protocol + "]\n";
  out += "  mediator: routed " + std::to_string(mediator_messages_routed) +
         " messages, observed " + std::to_string(mediator_bytes_observed) +
         " bytes, plaintext hits: " +
         (mediator_saw_plaintext ? std::to_string(plaintext_hits.size())
                                 : std::string("none")) +
         "\n";
  out += "  client: received " + std::to_string(client_bytes_received) +
         " bytes, decryption work " + std::to_string(client_decryption_work) +
         " items\n";
  return out;
}

obs::JsonValue LeakageReport::ToJson() const {
  std::vector<obs::JsonValue> hits;
  hits.reserve(plaintext_hits.size());
  for (const std::string& hit : plaintext_hits) {
    hits.push_back(obs::JsonValue::String(hit));
  }
  return obs::JsonValue::Object({
      {"schema", obs::JsonValue::String("secmed.leakage.v1")},
      {"protocol", obs::JsonValue::String(protocol)},
      {"mediator_messages_routed",
       obs::JsonValue::Number(double(mediator_messages_routed))},
      {"mediator_bytes_observed",
       obs::JsonValue::Number(double(mediator_bytes_observed))},
      {"mediator_saw_plaintext", obs::JsonValue::Bool(mediator_saw_plaintext)},
      {"plaintext_hits", obs::JsonValue::Array(std::move(hits))},
      {"client_bytes_received",
       obs::JsonValue::Number(double(client_bytes_received))},
      {"client_decryption_work",
       obs::JsonValue::Number(double(client_decryption_work))},
  });
}

std::vector<Bytes> SensitiveProbes(const Relation& r1, const Relation& r2,
                                   const std::string& join_attribute) {
  std::set<Bytes> probes;
  auto add_from = [&](const Relation& rel) {
    auto join_idx = rel.schema().IndexOf(join_attribute);
    for (const Tuple& t : rel.tuples()) {
      for (size_t i = 0; i < t.size(); ++i) {
        if (t[i].is_null()) continue;
        if (t[i].type() == ValueType::kString) {
          // String cells are sensitive payload; probe the raw characters.
          const std::string& s = t[i].as_string();
          if (s.size() >= 4) probes.insert(ToBytes(s));
        }
        if (join_idx.ok() && i == join_idx.value()) {
          // The join value in its canonical wire encoding.
          probes.insert(t[i].Encode());
        }
      }
    }
  };
  add_from(r1);
  add_from(r2);
  return std::vector<Bytes>(probes.begin(), probes.end());
}

std::vector<std::string> ScanViewForProbes(const Bytes& view,
                                           const std::vector<Bytes>& probes) {
  std::vector<std::string> hits;
  for (const Bytes& probe : probes) {
    if (probe.empty() || probe.size() > view.size()) continue;
    auto it = std::search(view.begin(), view.end(), probe.begin(), probe.end());
    if (it != view.end()) {
      hits.push_back(HexEncode(probe));
    }
  }
  return hits;
}

LeakageReport AnalyzeLeakage(const std::string& protocol, const Transport& bus,
                             const std::string& mediator_name,
                             const std::string& client_name,
                             const Relation& r1, const Relation& r2,
                             const std::string& join_attribute,
                             size_t client_decryption_work) {
  LeakageReport report;
  report.protocol = protocol;

  PartyStats med = bus.StatsOf(mediator_name);
  report.mediator_messages_routed = med.messages_received;
  report.mediator_bytes_observed = med.bytes_received;

  Bytes med_view = bus.ViewOf(mediator_name);
  std::vector<Bytes> probes = SensitiveProbes(r1, r2, join_attribute);
  report.plaintext_hits = ScanViewForProbes(med_view, probes);
  report.mediator_saw_plaintext = !report.plaintext_hits.empty();

  PartyStats cli = bus.StatsOf(client_name);
  report.client_bytes_received = cli.bytes_received;
  report.client_decryption_work = client_decryption_work;
  return report;
}

}  // namespace secmed
