#ifndef SECMED_CORE_LEAKAGE_H_
#define SECMED_CORE_LEAKAGE_H_

#include <string>
#include <vector>

#include "mediation/network.h"
#include "obs/json.h"
#include "relational/relation.h"

namespace secmed {

/// What a semi-honest party could observe during one protocol run —
/// the measured counterpart of Table 1 ("Extra information disclosed to
/// client and mediator").
struct LeakageReport {
  std::string protocol;

  // Mediator-side observations.
  size_t mediator_messages_routed = 0;
  size_t mediator_bytes_observed = 0;
  /// True iff any plaintext join value or payload string of the workload
  /// appears verbatim in any message payload the mediator received.
  bool mediator_saw_plaintext = false;
  /// Plaintext probes found in the mediator view (diagnostics; empty when
  /// the protocol is sound).
  std::vector<std::string> plaintext_hits;

  // Client-side observations.
  size_t client_bytes_received = 0;
  /// Tuples/pairs the client had to decrypt (result size for commutative,
  /// superset size for DAS, n + m evaluations for PM).
  size_t client_decryption_work = 0;

  std::string ToString() const;

  /// Structured form (schema secmed.leakage.v1) for the planner's
  /// predicted-vs-measured reconciliation and the Tables 1/2 doc snippet
  /// (bench_table1_leakage --json).
  obs::JsonValue ToJson() const;
};

/// Extracts the sensitive byte probes of a workload: every distinct join
/// value encoding and every string payload cell of both relations.
std::vector<Bytes> SensitiveProbes(const Relation& r1, const Relation& r2,
                                   const std::string& join_attribute);

/// Scans a party's received-bytes view for each probe (naive substring
/// search; the probes are short). Returns the probes found.
std::vector<std::string> ScanViewForProbes(const Bytes& view,
                                           const std::vector<Bytes>& probes);

/// Builds a report from the bus transcript after a protocol run.
LeakageReport AnalyzeLeakage(const std::string& protocol, const Transport& bus,
                             const std::string& mediator_name,
                             const std::string& client_name,
                             const Relation& r1, const Relation& r2,
                             const std::string& join_attribute,
                             size_t client_decryption_work);

}  // namespace secmed

#endif  // SECMED_CORE_LEAKAGE_H_
