#include "core/intersection_protocol.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "crypto/commutative.h"
#include "crypto/group_params.h"
#include "crypto/hybrid.h"
#include "crypto/paillier.h"
#include "crypto/randomizer_pool.h"
#include "crypto/sha256.h"
#include "util/parallel.h"
#include "util/serialize.h"

namespace secmed {

namespace {
constexpr char kMsgIxMessageSet[] = "ix_message_set";
constexpr char kMsgIxExchange[] = "ix_exchange";
constexpr char kMsgIxDouble[] = "ix_double";
constexpr char kMsgIxResult[] = "ix_result";
constexpr char kMsgIxCoefficients[] = "ix_coefficients";
constexpr char kMsgIxEvaluations[] = "ix_evaluations";

constexpr size_t kFpLen = 16;
constexpr uint8_t kMarker = 0x01;

// Distinct non-NULL composite join value encodings of a partial result.
Result<std::vector<Bytes>> CompositeValues(
    const Relation& rel, const std::vector<std::string>& join_attrs) {
  SECMED_ASSIGN_OR_RETURN(std::vector<size_t> idx,
                          JoinColumnIndexes(rel.schema(), join_attrs));
  std::set<Bytes> values;
  for (const Tuple& t : rel.tuples()) {
    Bytes key = CompositeJoinKey(t, idx);
    if (!key.empty()) values.insert(std::move(key));
  }
  return std::vector<Bytes>(values.begin(), values.end());
}

// Output schema: one column per join attribute, types from the global
// schema of table1.
Result<Schema> IntersectionSchema(const JoinQueryPlan& plan) {
  std::vector<Column> cols;
  for (const std::string& attr : plan.join_attributes) {
    SECMED_ASSIGN_OR_RETURN(size_t i, plan.schema1.IndexOf(attr));
    cols.push_back({attr, plan.schema1.column(i).type});
  }
  return Schema(std::move(cols));
}

// Decodes a composite encoding back into a row of join values.
Result<Tuple> DecodeComposite(const Bytes& encoding, size_t arity) {
  BinaryReader r(encoding);
  Tuple t;
  for (size_t i = 0; i < arity; ++i) {
    SECMED_ASSIGN_OR_RETURN(Value v, Value::DecodeFrom(&r));
    t.push_back(std::move(v));
  }
  if (!r.AtEnd()) return Status::ParseError("trailing bytes in join value");
  return t;
}

Bytes Fingerprint(const Bytes& encoding) {
  Bytes digest = Sha256::Hash(encoding);
  digest.resize(kFpLen);
  return digest;
}
}  // namespace

Result<Relation> CommutativeIntersectionProtocol::Run(const std::string& sql,
                                                      ProtocolContext* ctx) {
  SECMED_ASSIGN_OR_RETURN(RequestState state, RunRequestPhase(sql, ctx));
  SECMED_ASSIGN_OR_RETURN(QrGroup group, StandardGroup(group_bits_));
  Transport& bus = *ctx->bus;
  const std::string& mediator = ctx->mediator->name();
  const std::string& client = ctx->client->name();
  const size_t group_bytes = (group.p().BitLength() + 7) / 8;
  const size_t threads = ResolveThreads(ctx->threads);

  // Each source: encrypt hashed values with a fresh commutative key; the
  // value itself is hybrid-encrypted for the client.
  std::vector<CommutativeKey> keys;
  auto deliver = [&](const std::string& source, const Relation& rel,
                     const RsaPublicKey& client_key, uint8_t which) -> Status {
    const char* role = which == 1 ? "source1" : "source2";
    obs::Span span =
        obs::StartSpan(ctx->obs, role, "delivery", "ix.encrypt_values");
    CommutativeKey key = CommutativeKey::Generate(group, ctx->rng);
    SECMED_ASSIGN_OR_RETURN(std::vector<Bytes> values,
                            CompositeValues(rel, state.plan.join_attributes));
    std::vector<std::unique_ptr<RandomSource>> rngs =
        ForkN(ctx->rng, values.size());
    std::vector<std::pair<Bytes, Bytes>> entries(values.size());
    std::string loop_label = obs::SpanName(role, "delivery", "ix.encrypt_values");
    SECMED_RETURN_IF_ERROR(
        ParallelForStatus(values.size(), threads, [&](size_t i) -> Status {
          const Bytes& v = values[i];
          Bytes cipher = key.Encrypt(group.HashToGroup(v)).ToBytes(group_bytes);
          SECMED_ASSIGN_OR_RETURN(Bytes ev,
                                  HybridEncrypt(client_key, v, rngs[i].get()));
          entries[i] = {std::move(cipher), std::move(ev)};
          return Status::OK();
        }, ctx->obs, loop_label.c_str()));
    span.AddItems(values.size());
    std::sort(entries.begin(), entries.end());
    BinaryWriter w;
    w.WriteU8(which);
    w.WriteU32(static_cast<uint32_t>(entries.size()));
    for (const auto& [c, ev] : entries) {
      w.WriteBytes(c);
      w.WriteBytes(ev);
    }
    bus.Send(source, mediator, kMsgIxMessageSet, w.TakeBuffer());
    keys.push_back(std::move(key));
    return Status::OK();
  };
  SECMED_RETURN_IF_ERROR(
      deliver(state.plan.source1, state.r1, state.client_key1, 1));
  SECMED_RETURN_IF_ERROR(
      deliver(state.plan.source2, state.r2, state.client_key2, 2));

  // Mediator: keep encrypted values, exchange single ciphertexts (with
  // fixed-length IDs, as in the footnote-1 join optimization).
  std::vector<std::vector<std::pair<Bytes, Bytes>>> entries(3);
  for (int i = 0; i < 2; ++i) {
    SECMED_ASSIGN_OR_RETURN(Message msg,
                            bus.ReceiveOfType(mediator, kMsgIxMessageSet));
    BinaryReader r(msg.payload);
    SECMED_ASSIGN_OR_RETURN(uint8_t which, r.ReadU8());
    if (which != 1 && which != 2) {
      return Status::ProtocolError("bad source tag");
    }
    SECMED_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
    for (uint32_t k = 0; k < count; ++k) {
      SECMED_ASSIGN_OR_RETURN(Bytes c, r.ReadBytes());
      SECMED_ASSIGN_OR_RETURN(Bytes ev, r.ReadBytes());
      entries[which].emplace_back(std::move(c), std::move(ev));
    }
  }
  auto forward = [&](uint8_t from_which, const std::string& to_source) {
    BinaryWriter w;
    w.WriteU8(from_which);
    w.WriteU32(static_cast<uint32_t>(entries[from_which].size()));
    for (size_t id = 0; id < entries[from_which].size(); ++id) {
      w.WriteBytes(entries[from_which][id].first);
      w.WriteU64(id);
    }
    bus.Send(mediator, to_source, kMsgIxExchange, w.TakeBuffer());
  };
  forward(1, state.plan.source2);
  forward(2, state.plan.source1);

  // Sources double-encrypt.
  auto double_at = [&](const std::string& source, size_t key_idx) -> Status {
    const char* role = key_idx == 0 ? "source1" : "source2";
    obs::Span span =
        obs::StartSpan(ctx->obs, role, "delivery", "ix.double_encrypt");
    SECMED_ASSIGN_OR_RETURN(Message msg,
                            bus.ReceiveOfType(source, kMsgIxExchange));
    BinaryReader r(msg.payload);
    SECMED_ASSIGN_OR_RETURN(uint8_t origin, r.ReadU8());
    SECMED_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
    std::vector<Bytes> singles(count);
    std::vector<uint64_t> ids(count);
    for (uint32_t k = 0; k < count; ++k) {
      SECMED_ASSIGN_OR_RETURN(singles[k], r.ReadBytes());
      SECMED_ASSIGN_OR_RETURN(ids[k], r.ReadU64());
    }
    std::string loop_label = obs::SpanName(role, "delivery", "ix.double_encrypt");
    std::vector<BigInt> xs(count);
    for (uint32_t k = 0; k < count; ++k) xs[k] = BigInt::FromBytes(singles[k]);
    std::vector<BigInt> enc =
        keys[key_idx].EncryptMany(xs, threads, ctx->obs, loop_label.c_str());
    std::vector<Bytes> doubled(count);
    for (uint32_t k = 0; k < count; ++k) doubled[k] = enc[k].ToBytes(group_bytes);
    span.AddItems(count);
    BinaryWriter w;
    w.WriteU8(origin);
    w.WriteU32(count);
    for (uint32_t k = 0; k < count; ++k) {
      w.WriteBytes(doubled[k]);
      w.WriteU64(ids[k]);
    }
    bus.Send(source, mediator, kMsgIxDouble, w.TakeBuffer());
    return Status::OK();
  };
  SECMED_RETURN_IF_ERROR(double_at(state.plan.source1, 0));
  SECMED_RETURN_IF_ERROR(double_at(state.plan.source2, 1));

  // Mediator matches doubles; the matched source-1 encrypted values are
  // the encrypted intersection.
  std::map<Bytes, std::pair<std::vector<uint64_t>, bool>> matches;
  for (int i = 0; i < 2; ++i) {
    SECMED_ASSIGN_OR_RETURN(Message msg,
                            bus.ReceiveOfType(mediator, kMsgIxDouble));
    BinaryReader r(msg.payload);
    SECMED_ASSIGN_OR_RETURN(uint8_t origin, r.ReadU8());
    SECMED_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
    for (uint32_t k = 0; k < count; ++k) {
      SECMED_ASSIGN_OR_RETURN(Bytes doubled, r.ReadBytes());
      SECMED_ASSIGN_OR_RETURN(uint64_t id, r.ReadU64());
      auto& slot = matches[doubled];
      if (origin == 1) {
        slot.first.push_back(id);
      } else {
        slot.second = true;
      }
    }
  }
  BinaryWriter result_writer;
  std::vector<Bytes> matched_values;
  for (const auto& [doubled, slot] : matches) {
    if (!slot.second) continue;
    for (uint64_t id : slot.first) {
      if (id < entries[1].size()) {
        matched_values.push_back(entries[1][id].second);
      }
    }
  }
  result_writer.WriteU32(static_cast<uint32_t>(matched_values.size()));
  for (const Bytes& ev : matched_values) result_writer.WriteBytes(ev);
  bus.Send(mediator, client, kMsgIxResult, result_writer.TakeBuffer());

  // Client decrypts the common values.
  SECMED_ASSIGN_OR_RETURN(Message msg, bus.ReceiveOfType(client, kMsgIxResult));
  BinaryReader r(msg.payload);
  SECMED_ASSIGN_OR_RETURN(Schema schema, IntersectionSchema(state.plan));
  Relation out(schema);
  SECMED_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
  for (uint32_t k = 0; k < count; ++k) {
    SECMED_ASSIGN_OR_RETURN(Bytes ev, r.ReadBytes());
    SECMED_ASSIGN_OR_RETURN(Bytes v,
                            HybridDecrypt(ctx->client->private_key(), ev));
    SECMED_ASSIGN_OR_RETURN(Tuple t, DecodeComposite(v, schema.size()));
    SECMED_RETURN_IF_ERROR(out.Append(std::move(t)));
  }
  out.SortCanonically();
  return out;
}

Result<Relation> PmIntersectionProtocol::Run(const std::string& sql,
                                             ProtocolContext* ctx) {
  SECMED_ASSIGN_OR_RETURN(RequestState state, RunRequestPhase(sql, ctx));
  Transport& bus = *ctx->bus;
  const std::string& mediator = ctx->mediator->name();
  const std::string& client = ctx->client->name();

  if (state.credentials.empty() || state.credentials[0].paillier_key.empty()) {
    return Status::ProtocolError(
        "PM intersection requires a homomorphic key in the credentials");
  }
  SECMED_ASSIGN_OR_RETURN(
      PaillierPublicKey paillier,
      PaillierPublicKey::Deserialize(state.credentials[0].paillier_key));
  const size_t key_bytes = (paillier.n_squared().BitLength() + 7) / 8;
  const size_t threads = ResolveThreads(ctx->threads);

  // Sources: polynomial coefficients from their value fingerprints.
  std::vector<std::vector<Bytes>> values_at(3);
  auto coefficients = [&](const std::string& source, const Relation& rel,
                          uint8_t which) -> Status {
    SECMED_ASSIGN_OR_RETURN(std::vector<Bytes> values,
                            CompositeValues(rel, state.plan.join_attributes));
    values_at[which] = values;
    std::vector<BigInt> roots;
    for (const Bytes& v : values) {
      roots.push_back(BigInt::FromBytes(Fingerprint(v)));
    }
    // P(x) = prod (root - x) over Z_n.
    std::vector<BigInt> coeffs = {BigInt(1)};
    for (const BigInt& root : roots) {
      std::vector<BigInt> next(coeffs.size() + 1);
      for (size_t k = 0; k < coeffs.size(); ++k) {
        next[k] = BigInt::Mod(next[k] + root * coeffs[k], paillier.n()).value();
      }
      for (size_t k = 1; k <= coeffs.size(); ++k) {
        next[k] = BigInt::Mod(next[k] + paillier.n() -
                                  coeffs[k - 1] % paillier.n(),
                              paillier.n())
                      .value();
      }
      coeffs = std::move(next);
    }
    std::vector<std::unique_ptr<RandomSource>> rngs =
        ForkN(ctx->rng, coeffs.size());
    std::vector<BigInt> enc(coeffs.size());
    const char* src_role = which == 1 ? "source1" : "source2";
    std::string loop_label =
        obs::SpanName(src_role, "delivery", "ix.encrypt_coeffs");
    if (ctx->use_crypto_pools) {
      std::string pool_label =
          obs::SpanName(src_role, "delivery", "ix.pool_randomizers");
      PaillierRandomizerPool rpool = PaillierRandomizerPool::Precompute(
          paillier, rngs, 1, threads, ctx->obs, pool_label.c_str());
      SECMED_RETURN_IF_ERROR(
          ParallelForStatus(coeffs.size(), threads, [&](size_t k) -> Status {
            SECMED_ASSIGN_OR_RETURN(enc[k],
                                    rpool.Encrypt(paillier, coeffs[k], k));
            return Status::OK();
          }, ctx->obs, loop_label.c_str()));
    } else {
      SECMED_RETURN_IF_ERROR(
          ParallelForStatus(coeffs.size(), threads, [&](size_t k) -> Status {
            SECMED_ASSIGN_OR_RETURN(enc[k],
                                    paillier.Encrypt(coeffs[k], rngs[k].get()));
            return Status::OK();
          }, ctx->obs, loop_label.c_str()));
    }
    BinaryWriter w;
    w.WriteU8(which);
    w.WriteU32(static_cast<uint32_t>(coeffs.size()));
    for (const BigInt& e : enc) w.WriteBytes(e.ToBytes(key_bytes));
    bus.Send(source, mediator, kMsgIxCoefficients, w.TakeBuffer());
    return Status::OK();
  };
  SECMED_RETURN_IF_ERROR(coefficients(state.plan.source1, state.r1, 1));
  SECMED_RETURN_IF_ERROR(coefficients(state.plan.source2, state.r2, 2));

  // Mediator forwards to the opposite source.
  for (int i = 0; i < 2; ++i) {
    SECMED_ASSIGN_OR_RETURN(Message msg,
                            bus.ReceiveOfType(mediator, kMsgIxCoefficients));
    BinaryReader r(msg.payload);
    SECMED_ASSIGN_OR_RETURN(uint8_t which, r.ReadU8());
    const std::string& opposite =
        which == 1 ? state.plan.source2 : state.plan.source1;
    BinaryWriter w;
    w.WriteU8(which);
    SECMED_ASSIGN_OR_RETURN(Bytes rest, r.ReadRaw(r.remaining()));
    w.WriteRaw(rest);
    bus.Send(mediator, opposite, kMsgIxExchange, w.TakeBuffer());
  }

  // Sources: blind evaluation, payload = the value encoding itself.
  auto evaluate = [&](const std::string& source, uint8_t which) -> Status {
    SECMED_ASSIGN_OR_RETURN(Message msg,
                            bus.ReceiveOfType(source, kMsgIxExchange));
    BinaryReader r(msg.payload);
    SECMED_ASSIGN_OR_RETURN(uint8_t origin, r.ReadU8());
    (void)origin;
    SECMED_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
    std::vector<BigInt> enc_coeffs;
    for (uint32_t k = 0; k < count; ++k) {
      SECMED_ASSIGN_OR_RETURN(Bytes raw, r.ReadBytes());
      enc_coeffs.push_back(BigInt::FromBytes(raw));
    }
    const std::vector<Bytes>& values = values_at[which];
    std::vector<std::unique_ptr<RandomSource>> rngs =
        ForkN(ctx->rng, values.size());
    std::vector<Bytes> evaluations(values.size());
    std::string loop_label = obs::SpanName(
        which == 1 ? "source1" : "source2", "delivery", "ix.evaluate");
    SECMED_RETURN_IF_ERROR(
        ParallelForStatus(values.size(), threads, [&](size_t i) -> Status {
          const Bytes& v = values[i];
          const Bytes fp = Fingerprint(v);
          const BigInt a = BigInt::FromBytes(fp);
          BigInt acc = enc_coeffs.back();
          for (size_t k = enc_coeffs.size() - 1; k-- > 0;) {
            acc = paillier.Add(paillier.ScalarMul(acc, a), enc_coeffs[k]);
          }
          Bytes m_bytes;
          m_bytes.push_back(kMarker);
          Append(&m_bytes, fp);
          Append(&m_bytes, v);
          if (m_bytes.size() > paillier.MaxPlaintextBytes()) {
            return Status::InvalidArgument("join value too large for payload");
          }
          BigInt rk;
          do {
            rk = BigInt::RandomBelow(paillier.n(), rngs[i].get());
          } while (rk.is_zero());
          BigInt ek = paillier.AddPlain(paillier.ScalarMul(acc, rk),
                                        BigInt::FromBytes(m_bytes));
          evaluations[i] = ek.ToBytes(key_bytes);
          return Status::OK();
        }, ctx->obs, loop_label.c_str()));
    std::sort(evaluations.begin(), evaluations.end());
    BinaryWriter w;
    w.WriteU8(which);
    w.WriteU32(static_cast<uint32_t>(evaluations.size()));
    for (const Bytes& e : evaluations) w.WriteBytes(e);
    bus.Send(source, mediator, kMsgIxEvaluations, w.TakeBuffer());
    return Status::OK();
  };
  SECMED_RETURN_IF_ERROR(evaluate(state.plan.source1, 1));
  SECMED_RETURN_IF_ERROR(evaluate(state.plan.source2, 2));

  // Mediator ships all evaluations to the client.
  {
    BinaryWriter w;
    for (int i = 0; i < 2; ++i) {
      SECMED_ASSIGN_OR_RETURN(Message msg,
                              bus.ReceiveOfType(mediator, kMsgIxEvaluations));
      w.WriteBytes(msg.payload);
    }
    bus.Send(mediator, client, kMsgIxResult, w.TakeBuffer());
  }

  // Client: decrypt, keep well-formed payloads, match fingerprints.
  SECMED_ASSIGN_OR_RETURN(Message msg, bus.ReceiveOfType(client, kMsgIxResult));
  BinaryReader r(msg.payload);
  std::map<Bytes, Bytes> opened[3];  // fingerprint -> value encoding
  for (int i = 0; i < 2; ++i) {
    SECMED_ASSIGN_OR_RETURN(Bytes sub, r.ReadBytes());
    BinaryReader er(sub);
    SECMED_ASSIGN_OR_RETURN(uint8_t which, er.ReadU8());
    if (which != 1 && which != 2) {
      return Status::ProtocolError("bad source tag in evaluations");
    }
    SECMED_ASSIGN_OR_RETURN(uint32_t count, er.ReadU32());
    for (uint32_t k = 0; k < count; ++k) {
      SECMED_ASSIGN_OR_RETURN(Bytes raw, er.ReadBytes());
      SECMED_ASSIGN_OR_RETURN(
          BigInt m,
          ctx->client->paillier_private_key().Decrypt(BigInt::FromBytes(raw)));
      Bytes mb = m.ToBytes();
      if (mb.size() <= 1 + kFpLen || mb[0] != kMarker) continue;
      Bytes fp(mb.begin() + 1, mb.begin() + 1 + kFpLen);
      Bytes value(mb.begin() + 1 + kFpLen, mb.end());
      if (Fingerprint(value) != fp) continue;  // random-garbage guard
      opened[which].emplace(std::move(fp), std::move(value));
    }
  }
  SECMED_ASSIGN_OR_RETURN(Schema schema, IntersectionSchema(state.plan));
  Relation out(schema);
  for (const auto& [fp, value] : opened[1]) {
    if (opened[2].count(fp) == 0) continue;
    SECMED_ASSIGN_OR_RETURN(Tuple t, DecodeComposite(value, schema.size()));
    SECMED_RETURN_IF_ERROR(out.Append(std::move(t)));
  }
  out.SortCanonically();
  return out;
}

}  // namespace secmed
