#include "core/remote.h"

#include "core/commutative_protocol.h"
#include "core/das_protocol.h"
#include "core/pm_protocol.h"
#include "crypto/drbg.h"
#include "crypto/sha256.h"
#include "util/serialize.h"

namespace secmed {

Bytes RunSpec::Encode() const {
  BinaryWriter w;
  w.WriteU32(session);
  w.WriteString(protocol);
  w.WriteString(query);
  w.WriteU32(static_cast<uint32_t>(das_partitions));
  w.WriteU32(static_cast<uint32_t>(group_bits));
  w.WriteU32(static_cast<uint32_t>(threads));
  w.WriteString(rng_label);
  w.WriteString(reply_to);
  w.WriteU8(use_prepared ? 1 : 0);
  return w.TakeBuffer();
}

Result<RunSpec> RunSpec::Decode(const Bytes& raw) {
  BinaryReader r(raw);
  RunSpec spec;
  SECMED_ASSIGN_OR_RETURN(spec.session, r.ReadU32());
  SECMED_ASSIGN_OR_RETURN(spec.protocol, r.ReadString());
  SECMED_ASSIGN_OR_RETURN(spec.query, r.ReadString());
  SECMED_ASSIGN_OR_RETURN(uint32_t partitions, r.ReadU32());
  SECMED_ASSIGN_OR_RETURN(uint32_t bits, r.ReadU32());
  SECMED_ASSIGN_OR_RETURN(uint32_t threads, r.ReadU32());
  SECMED_ASSIGN_OR_RETURN(spec.rng_label, r.ReadString());
  SECMED_ASSIGN_OR_RETURN(spec.reply_to, r.ReadString());
  SECMED_ASSIGN_OR_RETURN(uint8_t use_prepared, r.ReadU8());
  spec.use_prepared = use_prepared != 0;
  spec.das_partitions = partitions;
  spec.group_bits = bits;
  spec.threads = threads;
  if (spec.session == kCtlSession) {
    return Status::InvalidArgument("session id 0 is reserved for control");
  }
  return spec;
}

Bytes RunReport::Encode() const {
  BinaryWriter w;
  w.WriteU32(session);
  w.WriteString(party_set);
  w.WriteU8(ok ? 1 : 0);
  w.WriteString(error);
  w.WriteU32(error_code);
  w.WriteBytes(result_digest);
  w.WriteU64(result_rows);
  w.WriteU64(messages);
  w.WriteU64(total_bytes);
  w.WriteU32(static_cast<uint32_t>(stats.size()));
  for (const auto& [party, s] : stats) {
    w.WriteString(party);
    w.WriteU64(s.messages_sent);
    w.WriteU64(s.messages_received);
    w.WriteU64(s.bytes_sent);
    w.WriteU64(s.bytes_received);
    w.WriteU64(s.interactions);
    w.WriteU32(static_cast<uint32_t>(s.by_type.size()));
    for (const auto& [type, ts] : s.by_type) {
      w.WriteString(type);
      w.WriteU64(ts.messages_sent);
      w.WriteU64(ts.messages_received);
      w.WriteU64(ts.bytes_sent);
      w.WriteU64(ts.bytes_received);
    }
  }
  return w.TakeBuffer();
}

Result<RunReport> RunReport::Decode(const Bytes& raw) {
  BinaryReader r(raw);
  RunReport rep;
  SECMED_ASSIGN_OR_RETURN(rep.session, r.ReadU32());
  SECMED_ASSIGN_OR_RETURN(rep.party_set, r.ReadString());
  SECMED_ASSIGN_OR_RETURN(uint8_t ok, r.ReadU8());
  rep.ok = ok != 0;
  SECMED_ASSIGN_OR_RETURN(rep.error, r.ReadString());
  SECMED_ASSIGN_OR_RETURN(rep.error_code, r.ReadU32());
  SECMED_ASSIGN_OR_RETURN(rep.result_digest, r.ReadBytes());
  SECMED_ASSIGN_OR_RETURN(rep.result_rows, r.ReadU64());
  SECMED_ASSIGN_OR_RETURN(rep.messages, r.ReadU64());
  SECMED_ASSIGN_OR_RETURN(rep.total_bytes, r.ReadU64());
  SECMED_ASSIGN_OR_RETURN(uint32_t n, r.ReadU32());
  for (uint32_t i = 0; i < n; ++i) {
    std::string party;
    PartyStats s;
    SECMED_ASSIGN_OR_RETURN(party, r.ReadString());
    SECMED_ASSIGN_OR_RETURN(s.messages_sent, r.ReadU64());
    SECMED_ASSIGN_OR_RETURN(s.messages_received, r.ReadU64());
    SECMED_ASSIGN_OR_RETURN(s.bytes_sent, r.ReadU64());
    SECMED_ASSIGN_OR_RETURN(s.bytes_received, r.ReadU64());
    SECMED_ASSIGN_OR_RETURN(s.interactions, r.ReadU64());
    SECMED_ASSIGN_OR_RETURN(uint32_t types, r.ReadU32());
    for (uint32_t k = 0; k < types; ++k) {
      SECMED_ASSIGN_OR_RETURN(std::string type, r.ReadString());
      MessageTypeStats ts;
      SECMED_ASSIGN_OR_RETURN(ts.messages_sent, r.ReadU64());
      SECMED_ASSIGN_OR_RETURN(ts.messages_received, r.ReadU64());
      SECMED_ASSIGN_OR_RETURN(ts.bytes_sent, r.ReadU64());
      SECMED_ASSIGN_OR_RETURN(ts.bytes_received, r.ReadU64());
      s.by_type.emplace(std::move(type), ts);
    }
    rep.stats.emplace_back(std::move(party), s);
  }
  return rep;
}

Result<std::unique_ptr<JoinProtocol>> BuildProtocol(const RunSpec& spec) {
  if (spec.protocol == "das") {
    return std::unique_ptr<JoinProtocol>(
        std::make_unique<DasJoinProtocol>(DasProtocolOptions{
            PartitionStrategy::kEquiDepth, spec.das_partitions, {}}));
  }
  if (spec.protocol == "commutative") {
    return std::unique_ptr<JoinProtocol>(std::make_unique<
                                         CommutativeJoinProtocol>(
        CommutativeProtocolOptions{spec.group_bits, false}));
  }
  if (spec.protocol == "pm") {
    return std::unique_ptr<JoinProtocol>(std::make_unique<PmJoinProtocol>());
  }
  if (spec.protocol == "auto") {
    return Status::InvalidArgument(
        "protocol 'auto' must be resolved by the planner before a RunSpec "
        "is announced; secmedctl resolves it driver-side (docs/PLANNER.md)");
  }
  return Status::InvalidArgument("unknown protocol '" + spec.protocol + "'");
}

namespace {

/// Shared tail of the replicated and the local runner: execute `spec`
/// over `transport` with the deterministic per-session DRBG and collect
/// the report.
RunReport RunOverTransport(MediationTestbed* testbed, Transport* transport,
                           const RunSpec& spec, Relation* result_out,
                           obs::Scope* obs, PreparedCache* prepared) {
  RunReport report;
  report.session = spec.session;

  // Per-session DRBG: every process seeds from the same label, so the
  // replicated executions are bit-identical (the transport verifies it
  // byte-for-byte on every cross-process edge).
  HmacDrbg session_rng(ToBytes("secmed-session-" + spec.rng_label + "-" +
                               std::to_string(spec.session)));
  ProtocolContext ctx = testbed->SessionContext(transport, &session_rng);
  ctx.threads = spec.threads;
  ctx.obs = obs;
  ctx.prepared = spec.use_prepared ? prepared : nullptr;
  if (obs != nullptr && !obs->trace().valid()) {
    // Deployment-wide distributed trace id, derived from the shared
    // seed label: every process computes the same id with no
    // negotiation, so the spans of all parties merge under one trace
    // (secmedctl trace-merge). Set-if-unset keeps a daemon-wide
    // telemetry scope on its first id across sessions.
    obs->set_trace(obs::TraceContext::Derive(spec.rng_label));
  }
  transport->SetObsScope(obs);

  auto protocol = BuildProtocol(spec);
  if (!protocol.ok()) {
    report.error = protocol.status().ToString();
    report.error_code = static_cast<uint32_t>(protocol.status().code());
    transport->SetObsScope(nullptr);
    return report;
  }
  Result<Relation> result = (*protocol)->Run(spec.query, &ctx);
  if (!result.ok()) {
    // Unrecoverable failure: tell every peer process before giving up,
    // so their blocked Receives return kAborted promptly instead of
    // waiting out their full deadline budgets. No-op on the local bus;
    // TcpTransport suppresses the broadcast when the failure *is* a
    // received abort (re-broadcasting would echo forever).
    transport->Abort(result.status());
  }
  // Detach before returning: the scope may not outlive the transport
  // (TcpTransport shares it with the long-lived PeerHost).
  transport->SetObsScope(nullptr);
  if (!result.ok()) {
    report.error = result.status().ToString();
    report.error_code = static_cast<uint32_t>(result.status().code());
    return report;
  }

  report.ok = true;
  report.result_digest = Sha256::Hash(result->Serialize());
  report.result_rows = result->size();
  report.messages = transport->transcript().size();
  report.total_bytes = transport->TotalBytes();
  for (const std::string& party :
       {testbed->client().name(), testbed->mediator().name(),
        testbed->source1().name(), testbed->source2().name()}) {
    report.stats.emplace_back(party, transport->StatsOf(party));
  }
  if (result_out != nullptr) *result_out = std::move(result).value();
  return report;
}

}  // namespace

RunReport RunReplicatedSession(MediationTestbed* testbed, PeerHost* host,
                               const Deployment& deployment,
                               const RunSpec& spec, Relation* result_out,
                               obs::Scope* obs, PreparedCache* prepared) {
  TcpTransport::Options topt;
  topt.local_parties = deployment.local_parties;
  topt.directory = deployment.directory;
  topt.session = spec.session;
  topt.timeout_ms = deployment.timeout_ms;
  topt.retry = deployment.retry;
  topt.faults = deployment.faults;
  host->SetRetryPolicy(deployment.retry);
  TcpTransport transport(host, std::move(topt));

  RunReport report =
      RunOverTransport(testbed, &transport, spec, result_out, obs, prepared);
  std::string joined;
  for (const std::string& p : deployment.local_parties) {
    if (!joined.empty()) joined += ",";
    joined += p;
  }
  report.party_set = joined;
  return report;
}

RunReport RunLocalSession(MediationTestbed* testbed, const RunSpec& spec,
                          Relation* result_out, obs::Scope* obs,
                          PreparedCache* prepared) {
  NetworkBus bus;
  RunReport report =
      RunOverTransport(testbed, &bus, spec, result_out, obs, prepared);
  report.party_set = "local-bus";
  return report;
}

Status SendCtl(PeerHost* host, const Endpoint& ep, const std::string& from,
               const std::string& type, Bytes payload, int timeout_ms) {
  Message msg{from, kCtlParty, type, std::move(payload)};
  Bytes frame = EncodeFrame(kCtlSession, msg);
  return host->SendFrame("ctl:" + from + ">" + ep.ToString(), ep, frame,
                         timeout_ms);
}

std::vector<std::string> SplitCommaList(const std::string& s) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start <= s.size()) {
    size_t comma = s.find(',', start);
    if (comma == std::string::npos) comma = s.size();
    if (comma > start) out.push_back(s.substr(start, comma - start));
    start = comma + 1;
  }
  return out;
}

}  // namespace secmed
