#include "core/prepared.h"

#include "bigint/bigint.h"
#include "crypto/hybrid.h"
#include "crypto/paillier.h"
#include "crypto/sha256.h"

namespace secmed {

std::string PreparedDigest(const Bytes& material) {
  static constexpr char kHex[] = "0123456789abcdef";
  Bytes digest = Sha256::Hash(material);
  std::string hex;
  hex.reserve(digest.size() * 2);
  for (uint8_t b : digest) {
    hex.push_back(kHex[b >> 4]);
    hex.push_back(kHex[b & 0x0f]);
  }
  return hex;
}

std::string PreparedKey(const std::string& kind, const std::string& party,
                        uint64_t version, const Bytes& material) {
  return kind + "/" + party + "/v" + std::to_string(version) + "/" +
         PreparedDigest(material);
}

Result<Bytes> ClientHybridDecrypt(ProtocolContext* ctx, const Bytes& blob) {
  if (ctx->prepared == nullptr) {
    return HybridDecrypt(ctx->client->private_key(), blob);
  }
  std::string key =
      PreparedKey("client.decrypt", ctx->client->name(), 0, blob);
  SECMED_ASSIGN_OR_RETURN(
      std::shared_ptr<const PreparedBlob> entry,
      GetOrCompute<PreparedBlob>(
          ctx->prepared, key,
          [&](RandomSource*) -> Result<std::shared_ptr<const PreparedBlob>> {
            SECMED_ASSIGN_OR_RETURN(
                Bytes plain, HybridDecrypt(ctx->client->private_key(), blob));
            return std::make_shared<const PreparedBlob>(std::move(plain));
          }));
  return entry->bytes;
}

Result<Bytes> ClientPaillierDecrypt(ProtocolContext* ctx,
                                    const Bytes& ciphertext) {
  auto decrypt = [&]() -> Result<Bytes> {
    SECMED_ASSIGN_OR_RETURN(BigInt m,
                            ctx->client->paillier_private_key().Decrypt(
                                BigInt::FromBytes(ciphertext)));
    return m.ToBytes();
  };
  if (ctx->prepared == nullptr) return decrypt();
  std::string key =
      PreparedKey("client.pdec", ctx->client->name(), 0, ciphertext);
  SECMED_ASSIGN_OR_RETURN(
      std::shared_ptr<const PreparedBlob> entry,
      GetOrCompute<PreparedBlob>(
          ctx->prepared, key,
          [&](RandomSource*) -> Result<std::shared_ptr<const PreparedBlob>> {
            SECMED_ASSIGN_OR_RETURN(Bytes plain, decrypt());
            return std::make_shared<const PreparedBlob>(std::move(plain));
          }));
  return entry->bytes;
}

uint64_t SourceCatalogVersion(const ProtocolContext* ctx,
                              const std::string& name) {
  auto it = ctx->sources.find(name);
  return it == ctx->sources.end() ? 0 : it->second->catalog_version();
}

}  // namespace secmed
