#ifndef SECMED_CORE_PROTOCOL_H_
#define SECMED_CORE_PROTOCOL_H_

#include <map>
#include <string>

#include "mediation/client.h"
#include "mediation/datasource.h"
#include "mediation/mediator.h"
#include "mediation/network.h"
#include "obs/scope.h"
#include "relational/relation.h"
#include "util/result.h"
#include "util/rng.h"

namespace secmed {

class PreparedCache;  // core/prepared.h

/// The parties and infrastructure a protocol run executes over.
struct ProtocolContext {
  Client* client = nullptr;
  Mediator* mediator = nullptr;
  std::map<std::string, DataSource*> sources;  // by datasource name
  /// The transport the run communicates over: the in-process NetworkBus
  /// or a TcpTransport of a multi-process deployment (net/transport.h).
  Transport* bus = nullptr;
  RandomSource* rng = nullptr;
  /// Worker threads for the embarrassingly-parallel crypto loops
  /// (coefficient encryption, blind evaluation, double encryption, bucket
  /// sealing). 0 = hardware concurrency, 1 = exact legacy serial path.
  /// Results and transcripts are bit-identical for every value under a
  /// seeded rng (per-item RNG forking — see RandomSource::Fork).
  size_t threads = 0;
  /// Observability scope (obs/scope.h). Null — the default — disables
  /// all instrumentation at negligible cost (one predicted branch per
  /// probe; bench_obs_overhead verifies < 2% on full protocol runs).
  /// Span names follow `party/phase/operation`, e.g.
  /// `source1/delivery/pm.encrypt_coeffs` or `client/post/decrypt`.
  obs::Scope* obs = nullptr;
  /// Prepared-dataset cache of a long-lived service deployment
  /// (core/prepared.h, src/service/). Null — the default — keeps every
  /// protocol on its legacy one-shot path with unchanged transcripts.
  /// Non-null routes the per-relation delivery work (domain hashing,
  /// commutative/homomorphic encryption, tuple-set sealing) and the
  /// client's repeated decryptions through the cache; all cached bytes
  /// are pure functions of their keys, so warm and cold sessions are
  /// byte-identical.
  PreparedCache* prepared = nullptr;
  /// Use precomputed randomizer pools (crypto/randomizer_pool.h) for the
  /// Paillier encryption loops: the r^n exponentiations run in a batch
  /// ahead of the online encryption pass. Pools draw from the same
  /// per-item forked RNG streams as the inline path, so transcripts are
  /// bit-identical with pools on or off at any thread count.
  bool use_crypto_pools = true;
};

/// Message types of the common request phase (Listing 1).
inline constexpr char kMsgGlobalQuery[] = "global_query";
inline constexpr char kMsgPartialQuery[] = "partial_query";

/// Outcome of the request phase: the mediator's plan plus, per source,
/// the plaintext partial result (held at the source; never sent) and the
/// client key extracted from the forwarded credentials.
struct RequestState {
  JoinQueryPlan plan;
  std::vector<Credential> credentials;
  Relation r1;  // source1-local plaintext partial result
  Relation r2;
  RsaPublicKey client_key1;  // client key as seen by source1
  RsaPublicKey client_key2;
};

/// Executes Listing 1 over the bus: the client sends the global query with
/// its credentials, the mediator localizes the datasources and forwards
/// the partial queries with credential subsets and join attributes, and
/// each datasource checks the credentials and evaluates its partial query.
Result<RequestState> RunRequestPhase(const std::string& sql,
                                     ProtocolContext* ctx);

/// A delivery-phase protocol computing the JOIN over encrypted partial
/// results. Each implementation corresponds to one of the paper's
/// Sections 3–5.
class JoinProtocol {
 public:
  virtual ~JoinProtocol() = default;

  /// Short identifier ("das", "commutative", "pm").
  virtual std::string name() const = 0;

  /// Runs request + delivery phases for the global query and returns the
  /// global result as reconstructed by the client.
  virtual Result<Relation> Run(const std::string& sql,
                               ProtocolContext* ctx) = 0;
};

/// Output schema of the mediated join: schema1 followed by schema2 minus
/// its join columns (natural-join convention shared by all protocols).
Result<Schema> JoinedSchema(const Schema& schema1, const Schema& schema2,
                            const std::vector<std::string>& join_attributes);
Result<Schema> JoinedSchema(const Schema& schema1, const Schema& schema2,
                            const std::string& join_attribute);

/// Positions of the given join columns in the schema.
Result<std::vector<size_t>> JoinColumnIndexes(
    const Schema& schema, const std::vector<std::string>& join_attributes);

/// Composite grouping key: the concatenated canonical encodings of the
/// tuple's join values. Empty when any join value is NULL (NULL never
/// joins).
Bytes CompositeJoinKey(const Tuple& tuple, const std::vector<size_t>& indexes);

/// Groups a relation's tuples by composite join value — the paper's
/// Tup_i(a) sets, generalized to several join attributes. Tuples with a
/// NULL join value are omitted.
std::map<Bytes, Relation> GroupTuplesByJoinValue(
    const Relation& rel, const std::vector<size_t>& indexes);

/// Appends to `out` the pairwise combinations of `tup1` × `tup2`, dropping
/// the join columns of the second side (client step 8 of Listings 3/4).
void AppendJoinedCrossProduct(const Relation& tup1, const Relation& tup2,
                              const std::vector<size_t>& j2, Relation* out);

}  // namespace secmed

#endif  // SECMED_CORE_PROTOCOL_H_
