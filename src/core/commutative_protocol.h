#ifndef SECMED_CORE_COMMUTATIVE_PROTOCOL_H_
#define SECMED_CORE_COMMUTATIVE_PROTOCOL_H_

#include "core/protocol.h"

namespace secmed {

/// Options of the commutative-encryption delivery phase.
struct CommutativeProtocolOptions {
  /// Size of the safe-prime group QR(p); one of 256/384/512/768/1024.
  size_t group_bits = 512;
  /// Footnote 1 of the paper: when false (default), the mediator keeps
  /// the encrypted tuple sets and forwards only fixed-length ID values
  /// with the encrypted hash values to the opposite datasource — better
  /// for both performance and security. When true, the protocol follows
  /// Listing 3 literally and ships the encrypted tuple sets along.
  bool forward_payloads = false;
};

/// Secure mediation with commutative encryption (Section 4.1, Listing 3),
/// after Agrawal et al.
///
/// Delivery phase:
///  1. Each Si draws a secret commutative key ei and computes fei(h(a))
///     for every a in domactive(Ri.Ajoin).
///  2. Si hybrid-encrypts each tuple set Tupi(a) for the client.
///  3. Si sends Mi = {<fei(h(a)), encrypt(Tupi(a))>} to the mediator.
///  4. The mediator exchanges the (hash parts of the) message sets
///     between the datasources.
///  5./6. Each source applies its key on top: fei(fej(h(a))).
///  7. The mediator matches equal double ciphertexts — commutativity makes
///     them equal exactly for common join values — and combines the
///     corresponding encrypted tuple sets into the encrypted global result.
///  8. The client decrypts the tuple-set pairs and builds the join tuples.
///
/// The client receives exactly the global result; the mediator learns
/// |domactive(Ri.Ajoin)| and the intersection size (Table 1).
class CommutativeJoinProtocol : public JoinProtocol {
 public:
  explicit CommutativeJoinProtocol(CommutativeProtocolOptions options = {})
      : options_(options) {}

  std::string name() const override { return "commutative"; }

  Result<Relation> Run(const std::string& sql, ProtocolContext* ctx) override;

  /// Number of matched join values in the last run (what the mediator
  /// learned as the intersection size).
  size_t last_intersection_size() const { return last_intersection_size_; }

 private:
  CommutativeProtocolOptions options_;
  size_t last_intersection_size_ = 0;
};

}  // namespace secmed

#endif  // SECMED_CORE_COMMUTATIVE_PROTOCOL_H_
