#include "core/pm_protocol.h"

#include <algorithm>
#include <map>
#include <memory>
#include <set>

#include "core/prepared.h"
#include "crypto/hybrid.h"
#include "crypto/paillier.h"
#include "crypto/randomizer_pool.h"
#include "crypto/sha256.h"
#include "util/parallel.h"
#include "util/serialize.h"

namespace secmed {

namespace {
constexpr char kMsgPmCoefficients[] = "pm_coefficients";
constexpr char kMsgPmExchange[] = "pm_exchange";
constexpr char kMsgPmEvaluations[] = "pm_evaluations";
constexpr char kMsgPmResult[] = "pm_result";

constexpr size_t kValueHashLen = 16;  // 128-bit join-value fingerprint
constexpr uint8_t kPayloadMarker = 0x01;
constexpr size_t kSessionKeyLen = 32;
constexpr size_t kIdLen = 8;
// Marker + hash + id + key for the footnote-2 payload format.
constexpr size_t kSessionPayloadLen =
    1 + kValueHashLen + kIdLen + kSessionKeyLen;

// 128-bit fingerprint of a (composite) join value encoding; the field
// representative both sources agree on.
Bytes ValueFingerprint(const Bytes& composite_encoding) {
  Bytes digest = Sha256::Hash(composite_encoding);
  digest.resize(kValueHashLen);
  return digest;
}

// Coefficients (c0..cn) of P(x) = prod (root_i - x) over Z_n, computed
// iteratively: multiplying a polynomial by (r - x) maps coefficient k to
// r*c_k - c_{k-1}.
std::vector<BigInt> PolynomialFromRoots(const std::vector<BigInt>& roots,
                                        const BigInt& n) {
  std::vector<BigInt> coeffs = {BigInt(1)};  // empty product
  for (const BigInt& r : roots) {
    std::vector<BigInt> next(coeffs.size() + 1);
    for (size_t k = 0; k < coeffs.size(); ++k) {
      next[k] = BigInt::Mod(next[k] + r * coeffs[k], n).value();
    }
    for (size_t k = 1; k <= coeffs.size(); ++k) {
      next[k] = BigInt::Mod(next[k] + n - coeffs[k - 1] % n, n).value();
    }
    coeffs = std::move(next);
  }
  return coeffs;
}

}  // namespace

Result<std::vector<uint64_t>> DrawDistinctPayloadIds(size_t count,
                                                     RandomSource* rng) {
  constexpr int kMaxAttempts = 64;
  std::set<uint64_t> seen;
  std::vector<uint64_t> ids;
  ids.reserve(count);
  for (size_t i = 0; i < count; ++i) {
    uint64_t id = 0;
    for (int attempt = 0;; ++attempt) {
      if (attempt == kMaxAttempts) {
        return Status::Internal(
            "could not draw a distinct 64-bit payload ID; broken RandomSource?");
      }
      Bytes id_bytes = rng->Generate(kIdLen);
      id = 0;
      for (size_t b = 0; b < kIdLen; ++b) id = (id << 8) | id_bytes[b];
      if (seen.insert(id).second) break;
    }
    ids.push_back(id);
  }
  return ids;
}

Result<Relation> PmJoinProtocol::Run(const std::string& sql,
                                     ProtocolContext* ctx) {
  SECMED_ASSIGN_OR_RETURN(RequestState state, RunRequestPhase(sql, ctx));
  const size_t threads = ResolveThreads(ctx->threads);
  Transport& bus = *ctx->bus;
  const std::string& mediator = ctx->mediator->name();
  const std::string& client = ctx->client->name();

  // Each source recovers the client's homomorphic key from the forwarded
  // credentials (Section 5.1: distributed with the credentials).
  if (state.credentials.empty() || state.credentials[0].paillier_key.empty()) {
    return Status::ProtocolError(
        "PM protocol requires a homomorphic key in the client credentials");
  }
  SECMED_ASSIGN_OR_RETURN(
      PaillierPublicKey paillier,
      PaillierPublicKey::Deserialize(state.credentials[0].paillier_key));
  const size_t key_bytes = (paillier.n_squared().BitLength() + 7) / 8;

  // Steps 2/3 at each source: polynomial from the active domain, encrypted
  // coefficients to the mediator (with the encrypted schema metadata).
  struct SourceState {
    std::string name;
    const Relation* rel;
    const RsaPublicKey* client_key;
    std::map<Bytes, Relation> tuple_sets;
    std::vector<BigInt> own_roots;
  };
  std::vector<SourceState> sources(2);
  auto source_coefficients = [&](SourceState* ss, uint8_t which) -> Status {
    const char* role = which == 1 ? "source1" : "source2";
    obs::Span span =
        obs::StartSpan(ctx->obs, role, "delivery", "pm.encrypt_coeffs");
    SECMED_ASSIGN_OR_RETURN(
        std::vector<size_t> join_idx,
        JoinColumnIndexes(ss->rel->schema(), state.plan.join_attributes));
    ss->tuple_sets = GroupTuplesByJoinValue(*ss->rel, join_idx);
    for (const auto& [value_enc, tuples] : ss->tuple_sets) {
      ss->own_roots.push_back(BigInt::FromBytes(ValueFingerprint(value_enc)));
    }

    // Sealed schema + encrypted polynomial as a pure function of the
    // relation, keys and join attributes under the supplied randomness —
    // everything after the source tag of the coefficients message.
    auto compute = [&](RandomSource* rng)
        -> Result<std::shared_ptr<const PreparedBlob>> {
      std::vector<BigInt> coeffs =
          PolynomialFromRoots(ss->own_roots, paillier.n());

      SECMED_ASSIGN_OR_RETURN(
          Bytes schema_blob,
          HybridEncrypt(*ss->client_key, [&] {
            BinaryWriter w;
            ss->rel->schema().EncodeTo(&w);
            return w.TakeBuffer();
          }(), rng));

      // Coefficient encryption is one independent Paillier exponentiation
      // per coefficient — the protocol's first hot loop. Per-item RNG forks
      // keep the ciphertexts identical for every thread count.
      std::vector<std::unique_ptr<RandomSource>> rngs =
          ForkN(rng, coeffs.size());
      std::vector<BigInt> enc(coeffs.size());
      std::string loop_label =
          obs::SpanName(role, "delivery", "pm.encrypt_coeffs");
      if (ctx->use_crypto_pools) {
        // Precompute the r^n randomizers off the online path; the encrypt
        // pass below is then one modular product per coefficient.
        std::string pool_label =
            obs::SpanName(role, "delivery", "pm.pool_randomizers");
        PaillierRandomizerPool rpool = PaillierRandomizerPool::Precompute(
            paillier, rngs, 1, threads, ctx->obs, pool_label.c_str());
        SECMED_RETURN_IF_ERROR(ParallelForStatus(
            coeffs.size(), threads, [&](size_t i) -> Status {
              SECMED_ASSIGN_OR_RETURN(enc[i],
                                      rpool.Encrypt(paillier, coeffs[i], i));
              return Status::OK();
            }, ctx->obs, loop_label.c_str()));
      } else {
        SECMED_RETURN_IF_ERROR(ParallelForStatus(
            coeffs.size(), threads, [&](size_t i) -> Status {
              SECMED_ASSIGN_OR_RETURN(
                  enc[i], paillier.Encrypt(coeffs[i], rngs[i].get()));
              return Status::OK();
            }, ctx->obs, loop_label.c_str()));
      }
      span.AddItems(enc.size());

      BinaryWriter w;
      w.WriteBytes(schema_blob);
      w.WriteU32(static_cast<uint32_t>(enc.size()));
      for (const BigInt& e : enc) w.WriteBytes(e.ToBytes(key_bytes));
      return std::make_shared<const PreparedBlob>(w.TakeBuffer());
    };

    std::shared_ptr<const PreparedBlob> payload;
    if (ctx->prepared != nullptr) {
      BinaryWriter mat;
      mat.WriteBytes(state.credentials[0].paillier_key);
      mat.WriteBytes(ss->client_key->Serialize());
      mat.WriteU32(static_cast<uint32_t>(state.plan.join_attributes.size()));
      for (const std::string& a : state.plan.join_attributes) {
        mat.WriteString(a);
      }
      mat.WriteBytes(ss->rel->Serialize());
      std::string cache_key =
          PreparedKey("pm.coeffs", ss->name,
                      SourceCatalogVersion(ctx, ss->name), mat.TakeBuffer());
      SECMED_ASSIGN_OR_RETURN(
          payload,
          GetOrCompute<PreparedBlob>(ctx->prepared, cache_key, compute));
    } else {
      SECMED_ASSIGN_OR_RETURN(payload, compute(ctx->rng));
    }

    BinaryWriter w;
    w.WriteU8(which);
    w.WriteRaw(payload->bytes);
    bus.Send(ss->name, mediator, kMsgPmCoefficients, w.TakeBuffer());
    return Status::OK();
  };
  sources[0] = SourceState{state.plan.source1, &state.r1, &state.client_key1,
                           {}, {}};
  sources[1] = SourceState{state.plan.source2, &state.r2, &state.client_key2,
                           {}, {}};
  SECMED_RETURN_IF_ERROR(source_coefficients(&sources[0], 1));
  SECMED_RETURN_IF_ERROR(source_coefficients(&sources[1], 2));

  // Step 4 at the mediator: forward coefficients to the opposite source,
  // keep the schema blobs for the client.
  obs::Span forward_span =
      obs::StartSpan(ctx->obs, "mediator", "delivery", "pm.forward");
  std::vector<Bytes> schema_blobs(3);
  for (int i = 0; i < 2; ++i) {
    SECMED_ASSIGN_OR_RETURN(Message msg,
                            bus.ReceiveOfType(mediator, kMsgPmCoefficients));
    BinaryReader r(msg.payload);
    SECMED_ASSIGN_OR_RETURN(uint8_t which, r.ReadU8());
    if (which != 1 && which != 2) {
      return Status::ProtocolError("bad source tag in coefficients");
    }
    SECMED_ASSIGN_OR_RETURN(schema_blobs[which], r.ReadBytes());
    const std::string& opposite =
        which == 1 ? state.plan.source2 : state.plan.source1;
    BinaryWriter w;
    w.WriteU8(which);
    // Remaining payload (count + coefficient ciphertexts) is forwarded
    // verbatim.
    SECMED_ASSIGN_OR_RETURN(Bytes rest, r.ReadRaw(r.remaining()));
    w.WriteRaw(rest);
    bus.Send(mediator, opposite, kMsgPmExchange, w.TakeBuffer());
  }
  forward_span.End();

  // Steps 5/6 at each source: blind evaluation of the opposite polynomial
  // at the own values, payload attached.
  auto source_evaluate = [&](SourceState* ss, uint8_t which) -> Status {
    const char* role = which == 1 ? "source1" : "source2";
    obs::Span span =
        obs::StartSpan(ctx->obs, role, "delivery", "pm.evaluate");
    SECMED_ASSIGN_OR_RETURN(Message msg,
                            bus.ReceiveOfType(ss->name, kMsgPmExchange));

    // Blind evaluation of the received polynomial over the own tuple sets
    // — a pure function of the exchange message, the own relation and the
    // keys under the supplied randomness (everything after the source tag
    // of the evaluations message).
    auto compute = [&](RandomSource* prep_rng)
        -> Result<std::shared_ptr<const PreparedBlob>> {
      BinaryReader r(msg.payload);
      SECMED_ASSIGN_OR_RETURN(uint8_t origin, r.ReadU8());
      (void)origin;
      SECMED_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
      std::vector<BigInt> enc_coeffs;
      enc_coeffs.reserve(std::min<size_t>(count, r.remaining()));
      for (uint32_t k = 0; k < count; ++k) {
        SECMED_ASSIGN_OR_RETURN(Bytes raw, r.ReadBytes());
        enc_coeffs.push_back(BigInt::FromBytes(raw));
      }
      if (enc_coeffs.empty()) {
        return Status::ProtocolError("opposite polynomial has no coefficients");
      }

      // Items in deterministic (join value) order; each is an independent
      // blind Horner evaluation — the protocol's quadratic hot loop.
      struct EvalItem {
        const Bytes* value_enc;
        const Relation* tuples;
      };
      std::vector<EvalItem> eval_items;
      eval_items.reserve(ss->tuple_sets.size());
      for (const auto& [value_enc, tuples] : ss->tuple_sets) {
        eval_items.push_back(EvalItem{&value_enc, &tuples});
      }

      // IDs are drawn at random (not sequential): the tuple sets are grouped
      // in value order here, and sequential IDs would disclose the relative
      // order of the join values to the mediator. Drawn distinct up front
      // (serially, before forking) so a 64-bit collision can never make two
      // payload-table entries shadow each other at the client.
      std::vector<uint64_t> ids;
      if (options_.session_key_payloads) {
        SECMED_ASSIGN_OR_RETURN(
            ids, DrawDistinctPayloadIds(eval_items.size(), prep_rng));
      }
      std::vector<std::unique_ptr<RandomSource>> rngs =
          ForkN(prep_rng, eval_items.size());

      std::vector<Bytes> evaluations(eval_items.size());
      // id -> session-encrypted tuple set.
      std::vector<std::pair<uint64_t, Bytes>> payload_entries(
          options_.session_key_payloads ? eval_items.size() : 0);
      std::string loop_label = obs::SpanName(role, "delivery", "pm.evaluate");
      SECMED_RETURN_IF_ERROR(ParallelForStatus(
          eval_items.size(), threads, [&](size_t i) -> Status {
            RandomSource* rng = rngs[i].get();
            const Bytes fingerprint =
                ValueFingerprint(*eval_items[i].value_enc);
            const BigInt a = BigInt::FromBytes(fingerprint);

            // Horner: E(P(a)) from encrypted coefficients (c0 + a c1 + ...).
            BigInt acc = enc_coeffs.back();
            for (size_t k = enc_coeffs.size() - 1; k-- > 0;) {
              acc = paillier.Add(paillier.ScalarMul(acc, a), enc_coeffs[k]);
            }

            // Payload m = marker || fingerprint || (id || session key | tuples).
            Bytes m_bytes;
            m_bytes.push_back(kPayloadMarker);
            Append(&m_bytes, fingerprint);
            if (options_.session_key_payloads) {
              const uint64_t id = ids[i];
              for (int b = static_cast<int>(kIdLen) - 1; b >= 0; --b) {
                m_bytes.push_back(static_cast<uint8_t>(id >> (8 * b)));
              }
              Bytes session_key = rng->Generate(kSessionKeyLen);
              Append(&m_bytes, session_key);
              SECMED_ASSIGN_OR_RETURN(
                  Bytes enc_tup,
                  SessionEncrypt(session_key,
                                 eval_items[i].tuples->Serialize(), rng));
              payload_entries[i] = {id, std::move(enc_tup)};
            } else {
              Append(&m_bytes, eval_items[i].tuples->Serialize());
            }
            if (m_bytes.size() > paillier.MaxPlaintextBytes()) {
              return Status::InvalidArgument(
                  "tuple-set payload exceeds the Paillier plaintext space; "
                  "enable session_key_payloads (footnote 2)");
            }
            const BigInt m = BigInt::FromBytes(m_bytes);
            // ek = E(rk * P(a) + m) with fresh random rk in [1, n).
            BigInt rk;
            do {
              rk = BigInt::RandomBelow(paillier.n(), rng);
            } while (rk.is_zero());
            BigInt ek = paillier.AddPlain(paillier.ScalarMul(acc, rk), m);
            evaluations[i] = ek.ToBytes(key_bytes);
            return Status::OK();
          }, ctx->obs, loop_label.c_str()));
      span.AddItems(eval_items.size());
      // Arbitrary order, independent of plaintext order.
      std::sort(evaluations.begin(), evaluations.end());
      std::sort(payload_entries.begin(), payload_entries.end());

      BinaryWriter w;
      w.WriteU32(static_cast<uint32_t>(evaluations.size()));
      for (const Bytes& e : evaluations) w.WriteBytes(e);
      w.WriteU32(static_cast<uint32_t>(payload_entries.size()));
      for (const auto& [id, sealed] : payload_entries) {
        // Big-endian so the table order (sorted by random id) carries no
        // structure either.
        for (int b = static_cast<int>(kIdLen) - 1; b >= 0; --b) {
          w.WriteU8(static_cast<uint8_t>(id >> (8 * b)));
        }
        w.WriteBytes(sealed);
      }
      return std::make_shared<const PreparedBlob>(w.TakeBuffer());
    };

    std::shared_ptr<const PreparedBlob> payload;
    if (ctx->prepared != nullptr) {
      BinaryWriter mat;
      mat.WriteBytes(msg.payload);
      mat.WriteBytes(state.credentials[0].paillier_key);
      mat.WriteU8(options_.session_key_payloads ? 1 : 0);
      mat.WriteU32(static_cast<uint32_t>(state.plan.join_attributes.size()));
      for (const std::string& a : state.plan.join_attributes) {
        mat.WriteString(a);
      }
      mat.WriteBytes(ss->rel->Serialize());
      std::string cache_key =
          PreparedKey("pm.evaluate", ss->name,
                      SourceCatalogVersion(ctx, ss->name), mat.TakeBuffer());
      SECMED_ASSIGN_OR_RETURN(
          payload,
          GetOrCompute<PreparedBlob>(ctx->prepared, cache_key, compute));
    } else {
      SECMED_ASSIGN_OR_RETURN(payload, compute(ctx->rng));
    }

    BinaryWriter w;
    w.WriteU8(which);
    w.WriteRaw(payload->bytes);
    bus.Send(ss->name, mediator, kMsgPmEvaluations, w.TakeBuffer());
    return Status::OK();
  };
  SECMED_RETURN_IF_ERROR(source_evaluate(&sources[0], 1));
  SECMED_RETURN_IF_ERROR(source_evaluate(&sources[1], 2));

  // Step 7 at the mediator: ship the n + m encrypted values (and, in the
  // footnote-2 mode, the session-encrypted payload tables) to the client.
  {
    obs::Span span =
        obs::StartSpan(ctx->obs, "mediator", "delivery", "pm.ship_result");
    BinaryWriter w;
    w.WriteBytes(schema_blobs[1]);
    w.WriteBytes(schema_blobs[2]);
    for (int i = 0; i < 2; ++i) {
      SECMED_ASSIGN_OR_RETURN(Message msg,
                              bus.ReceiveOfType(mediator, kMsgPmEvaluations));
      w.WriteBytes(msg.payload);
    }
    bus.Send(mediator, client, kMsgPmResult, w.TakeBuffer());
  }

  // Step 8 at the client: decrypt everything, keep well-formed payloads,
  // match fingerprints across the two sources, combine tuple sets.
  obs::Span decrypt_span = obs::StartSpan(ctx->obs, "client", "post", "decrypt");
  SECMED_ASSIGN_OR_RETURN(Message msg, bus.ReceiveOfType(client, kMsgPmResult));
  BinaryReader r(msg.payload);
  Schema schema1, schema2;
  for (int which = 1; which <= 2; ++which) {
    SECMED_ASSIGN_OR_RETURN(Bytes blob, r.ReadBytes());
    SECMED_ASSIGN_OR_RETURN(Bytes plain, ClientHybridDecrypt(ctx, blob));
    BinaryReader sr(plain);
    SECMED_ASSIGN_OR_RETURN(Schema schema, Schema::DecodeFrom(&sr));
    (which == 1 ? schema1 : schema2) = std::move(schema);
  }

  struct Opened {
    Bytes fingerprint;
    // session-key mode:
    uint64_t id = 0;
    Bytes session_key;
    // direct mode:
    Bytes tuple_bytes;
  };
  std::map<Bytes, Opened> opened_by_fp[3];      // index by source tag
  std::map<uint64_t, Bytes> payload_tables[3];  // id -> sealed tuple set
  size_t evaluation_count = 0;

  for (int i = 0; i < 2; ++i) {
    SECMED_ASSIGN_OR_RETURN(Bytes sub, r.ReadBytes());
    BinaryReader er(sub);
    SECMED_ASSIGN_OR_RETURN(uint8_t which, er.ReadU8());
    if (which != 1 && which != 2) {
      return Status::ProtocolError("bad source tag in evaluations");
    }
    SECMED_ASSIGN_OR_RETURN(uint32_t count, er.ReadU32());
    evaluation_count += count;
    for (uint32_t k = 0; k < count; ++k) {
      SECMED_ASSIGN_OR_RETURN(Bytes e_raw, er.ReadBytes());
      SECMED_ASSIGN_OR_RETURN(Bytes m_bytes, ClientPaillierDecrypt(ctx, e_raw));
      // Masked non-members decrypt to random values; real payloads carry
      // the marker byte and a plausible structure.
      if (m_bytes.size() < 1 + kValueHashLen || m_bytes[0] != kPayloadMarker) {
        continue;
      }
      if (options_.session_key_payloads &&
          m_bytes.size() != kSessionPayloadLen) {
        continue;
      }
      Opened o;
      o.fingerprint.assign(m_bytes.begin() + 1,
                           m_bytes.begin() + 1 + kValueHashLen);
      size_t off = 1 + kValueHashLen;
      if (options_.session_key_payloads) {
        for (size_t b = 0; b < kIdLen; ++b) o.id = (o.id << 8) | m_bytes[off + b];
        off += kIdLen;
        o.session_key.assign(m_bytes.begin() + off, m_bytes.end());
      } else {
        o.tuple_bytes.assign(m_bytes.begin() + off, m_bytes.end());
      }
      opened_by_fp[which].emplace(o.fingerprint, std::move(o));
    }
    SECMED_ASSIGN_OR_RETURN(uint32_t payloads, er.ReadU32());
    for (uint32_t k = 0; k < payloads; ++k) {
      SECMED_ASSIGN_OR_RETURN(Bytes id_bytes, er.ReadRaw(kIdLen));
      uint64_t id = 0;
      for (size_t b = 0; b < kIdLen; ++b) id = (id << 8) | id_bytes[b];
      SECMED_ASSIGN_OR_RETURN(Bytes sealed, er.ReadBytes());
      // A well-behaved source draws distinct IDs (DrawDistinctPayloadIds);
      // a duplicate here would silently shadow one tuple set, so fail loud.
      if (!payload_tables[which].emplace(id, std::move(sealed)).second) {
        return Status::ProtocolError(
            "duplicate payload-table ID in PM evaluations");
      }
    }
  }
  last_evaluation_count_ = evaluation_count;
  decrypt_span.AddItems(evaluation_count);
  decrypt_span.End();

  obs::Span match_span =
      obs::StartSpan(ctx->obs, "client", "post", "pm.match_fingerprints");
  SECMED_ASSIGN_OR_RETURN(
      Schema joined_schema,
      JoinedSchema(schema1, schema2, state.plan.join_attributes));
  SECMED_ASSIGN_OR_RETURN(
      std::vector<size_t> j2,
      JoinColumnIndexes(schema2, state.plan.join_attributes));
  Relation result(joined_schema);

  auto open_tuples = [&](int which, const Opened& o) -> Result<Relation> {
    if (!options_.session_key_payloads) {
      return Relation::Deserialize(o.tuple_bytes);
    }
    auto it = payload_tables[which].find(o.id);
    if (it == payload_tables[which].end()) {
      return Status::ProtocolError("missing payload table entry");
    }
    SECMED_ASSIGN_OR_RETURN(Bytes plain,
                            SessionDecrypt(o.session_key, it->second));
    return Relation::Deserialize(plain);
  };

  for (const auto& [fp, o1] : opened_by_fp[1]) {
    auto it = opened_by_fp[2].find(fp);
    if (it == opened_by_fp[2].end()) continue;
    SECMED_ASSIGN_OR_RETURN(Relation tup1, open_tuples(1, o1));
    SECMED_ASSIGN_OR_RETURN(Relation tup2, open_tuples(2, it->second));
    AppendJoinedCrossProduct(tup1, tup2, j2, &result);
  }
  return result;
}

}  // namespace secmed
