#ifndef SECMED_CORE_TESTBED_H_
#define SECMED_CORE_TESTBED_H_

#include <memory>
#include <string>

#include "core/protocol.h"
#include "crypto/drbg.h"
#include "mediation/client.h"
#include "mediation/credential.h"
#include "mediation/datasource.h"
#include "mediation/mediator.h"
#include "mediation/network.h"
#include "relational/workload.h"

namespace secmed {

/// A fully wired in-process deployment of the mediation system around a
/// two-relation workload: certification authority, credentialed client,
/// mediator with the schema embedding, two datasources, and a bus.
///
/// Used by the benchmark harness and integration tests; also a convenient
/// starting point for applications (see examples/).
class MediationTestbed {
 public:
  struct Options {
    size_t rsa_bits = 1024;
    size_t paillier_bits = 1024;
    std::string seed_label = "testbed";
    std::string table1 = "medical";
    std::string table2 = "billing";
    std::string source1 = "hospital";
    std::string source2 = "insurer";
    /// ProtocolContext::threads for every protocol run over this testbed:
    /// 0 = hardware concurrency, 1 = exact legacy serial path. Results
    /// and transcripts are bit-identical for every value.
    size_t threads = 0;
  };

  /// Wires a full deployment around the workload. Key generation and
  /// credential acquisition can fail (e.g. undersized moduli); the old
  /// constructor swallowed those errors and crashed later, this factory
  /// surfaces them. Heap-allocated because the contained ProtocolContext
  /// points into the testbed itself.
  static Result<std::unique_ptr<MediationTestbed>> Create(
      const Workload& workload);
  static Result<std::unique_ptr<MediationTestbed>> Create(
      const Workload& workload, Options options);

  ProtocolContext* ctx() { return &ctx_; }
  NetworkBus& bus() { return bus_; }
  Client& client() { return *client_; }
  Mediator& mediator() { return mediator_; }
  DataSource& source1() { return *source1_; }
  DataSource& source2() { return *source2_; }
  const Workload& workload() const { return workload_; }
  HmacDrbg& rng() { return rng_; }
  const Options& options() const { return options_; }
  /// CA verification key — what a CascadeExecutor's intermediate
  /// datasources need to check the client's credential.
  const RsaPublicKey& ca_key() const { return ca_->public_key(); }

  /// The global query joining the two tables on the workload's Ajoin.
  std::string JoinSql() const;

  /// A global query joining on *all* workload join attributes
  /// (ON t1.a = t2.a AND t1.b = t2.b ... — the Section 8 extension).
  std::string MultiJoinSql() const;

  /// Trusted-mediator reference result (plaintext natural join of the
  /// qualified partial results).
  Relation ExpectedJoin() const;

  /// Clears the bus between protocol runs.
  void ResetBus() { bus_.Reset(); }

  /// A copy of the wired context communicating over `transport` and
  /// drawing randomness from `rng` instead of the testbed's own. This is
  /// how a party daemon runs several sessions over one testbed: the
  /// parties (and their keys) are shared, while every session gets its
  /// own transport and its own deterministically-seeded rng, so
  /// concurrent queries neither share mutable state nor perturb each
  /// other's randomness.
  ProtocolContext SessionContext(Transport* transport, RandomSource* rng) {
    ProtocolContext ctx = ctx_;
    ctx.bus = transport;
    ctx.rng = rng;
    return ctx;
  }

 private:
  MediationTestbed(const Workload& workload, Options options);

  /// Fallible part of construction: parties, credential, wiring.
  Status Init();

  Options options_;
  HmacDrbg rng_;
  Workload workload_;
  std::unique_ptr<CertificationAuthority> ca_;
  std::unique_ptr<Client> client_;
  Mediator mediator_;
  std::unique_ptr<DataSource> source1_;
  std::unique_ptr<DataSource> source2_;
  NetworkBus bus_;
  ProtocolContext ctx_;
};

}  // namespace secmed

#endif  // SECMED_CORE_TESTBED_H_
