#ifndef SECMED_CORE_INTERSECTION_PROTOCOL_H_
#define SECMED_CORE_INTERSECTION_PROTOCOL_H_

#include "core/protocol.h"

namespace secmed {

/// Secure mediated INTERSECTION — the other operation of Agrawal et al.'s
/// framework (Section 4 cites their intersection and join protocols; the
/// paper's Section 8 calls for "inclusion of other relational operations").
///
/// Given the usual two-relation join query, these protocols compute the
/// set of *common join values* domactive(R1.Ajoin) ∩ domactive(R2.Ajoin)
/// instead of the joined tuples: the client learns exactly which values
/// the two sources share (one row per value, join columns only), nothing
/// about the non-matching values and no payload columns at all.
///
/// Both run the standard request phase, so credential checking and access
/// filtering apply before any value is considered.
class IntersectionProtocol {
 public:
  virtual ~IntersectionProtocol() = default;
  virtual std::string name() const = 0;

  /// Runs the protocol; the result has one column per join attribute and
  /// one row per common (composite) value, sorted canonically.
  virtual Result<Relation> Run(const std::string& sql,
                               ProtocolContext* ctx) = 0;
};

/// Intersection via commutative encryption: each source ships
/// <f_ei(h(a)), encrypt(a)>; the mediator matches double ciphertexts and
/// returns the matched encrypted values to the client.
class CommutativeIntersectionProtocol : public IntersectionProtocol {
 public:
  explicit CommutativeIntersectionProtocol(size_t group_bits = 512)
      : group_bits_(group_bits) {}

  std::string name() const override { return "commutative-intersection"; }
  Result<Relation> Run(const std::string& sql, ProtocolContext* ctx) override;

 private:
  size_t group_bits_;
};

/// Intersection via private matching: the polynomial payload is the join
/// value itself (always small enough for the naive embedding), so the
/// client decrypts the common values directly.
class PmIntersectionProtocol : public IntersectionProtocol {
 public:
  std::string name() const override { return "pm-intersection"; }
  Result<Relation> Run(const std::string& sql, ProtocolContext* ctx) override;
};

}  // namespace secmed

#endif  // SECMED_CORE_INTERSECTION_PROTOCOL_H_
