#ifndef SECMED_CORE_CASCADE_H_
#define SECMED_CORE_CASCADE_H_

#include <memory>
#include <string>
#include <vector>

#include "core/protocol.h"

namespace secmed {

/// Executes global queries beyond the single-JOIN class by cascading the
/// two-relation protocols — the paper's Section 8 outlook: "in a mediator
/// hierarchy one mediator can act as a datasource for other mediators.
/// Therefore, the case in which several join queries are executed
/// successively has to be considered."
///
/// A query with k JOIN clauses runs as k successive mediations: the
/// encrypted join of the first two relations is delivered to the client,
/// which re-publishes it (as the data owner of its own result) through a
/// cascade datasource to the next-level mediator, and so on. WHERE clauses
/// and projections are applied by the client on the final result, so the
/// class of supported queries becomes
///     SELECT cols FROM t1 JOIN t2 ... JOIN tk [WHERE pred].
///
/// Each level uses its own mediator instance (the hierarchy), but all
/// traffic is recorded on the shared bus of the supplied context.
class CascadeExecutor {
 public:
  /// `protocol` is borrowed and reused for every level. `ca_key` lets the
  /// cascade datasources verify the client's credentials.
  CascadeExecutor(JoinProtocol* protocol, RsaPublicKey ca_key)
      : protocol_(protocol), ca_key_(std::move(ca_key)) {}

  /// Installs a per-level protocol schedule (borrowed, like `protocol`):
  /// level L runs under schedule[L]; levels beyond the schedule fall back
  /// to the constructor protocol. This is how the planner (src/plan/)
  /// executes a mixed-protocol cascade — e.g. DAS for a cheap first
  /// level, commutative for the selective second one. An empty schedule
  /// (the default) reproduces the single-protocol behavior with
  /// bit-identical transcripts.
  void SetProtocolSchedule(std::vector<JoinProtocol*> schedule) {
    schedule_ = std::move(schedule);
  }

  /// Installs the execution order of the query's JOIN clauses: level L
  /// mediates clause `order[L]` of the written SQL. This is how the
  /// planner executes a reordered plan — the protocol schedule and the
  /// leakage budget were validated against this order, so execution must
  /// follow it. Run() rejects an `order` that is not a permutation of the
  /// clause indexes, and (since only all-NATURAL cascades reorder
  /// soundly) any non-identity order on a cascade with ON joins. The
  /// final result is restored to the written-order column layout, so a
  /// reordered run is digest-identical to the written-order run. An
  /// empty order (the default) is the written order.
  void SetJoinOrder(std::vector<size_t> order) { order_ = std::move(order); }

  /// Runs the query; `ctx` supplies the client, the base mediator (for
  /// table locations and schemas), the base datasources and the bus.
  Result<Relation> Run(const std::string& sql, ProtocolContext* ctx);

 private:
  /// The protocol mediating level `level`.
  JoinProtocol* ProtocolFor(size_t level) const {
    return level < schedule_.size() && schedule_[level] != nullptr
               ? schedule_[level]
               : protocol_;
  }

  JoinProtocol* protocol_;
  std::vector<JoinProtocol*> schedule_;
  std::vector<size_t> order_;
  RsaPublicKey ca_key_;
};

/// Strips qualifiers from a relation's column names so a join result can
/// be re-registered as a base table at the next hierarchy level. Fails
/// with kInvalidArgument when two columns would collide.
Result<Relation> UnqualifyRelation(const Relation& rel);

}  // namespace secmed

#endif  // SECMED_CORE_CASCADE_H_
