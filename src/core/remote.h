#ifndef SECMED_CORE_REMOTE_H_
#define SECMED_CORE_REMOTE_H_

#include <map>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "core/protocol.h"
#include "core/testbed.h"
#include "net/tcp_transport.h"

namespace secmed {

/// Control-plane message types (session kCtlSession, party kCtlParty).
inline constexpr char kCtlRun[] = "ctl_run";
inline constexpr char kCtlReport[] = "ctl_report";
inline constexpr char kCtlShutdown[] = "ctl_shutdown";
/// Telemetry scrape requests. The payload is the "host:port" reply
/// endpoint; the daemon answers with a frame of the same type carrying
/// the stats snapshot JSON (obs/window.h schema secmed.stats.v1) or the
/// Chrome trace JSON of its telemetry scope, respectively.
inline constexpr char kCtlStats[] = "ctl_stats";
inline constexpr char kCtlTrace[] = "ctl_trace";

/// Which parties this process hosts and where the others listen.
/// Parties in neither set are simulation-only (never the case in the
/// standard four-party deployment).
struct Deployment {
  std::set<std::string> local_parties;
  std::map<std::string, Endpoint> directory;
  /// Deadline for socket operations and cross-process frame waits.
  int timeout_ms = 30000;
  /// Retry policy for transient connect/send/receive failures
  /// (docs/ROBUSTNESS.md); the defaults suit loopback deployments.
  RetryPolicy retry{};
  /// Optional frame-level fault injector shared by every session of the
  /// deployment (not owned; must outlive the sessions). Null disables.
  FaultInjector* faults = nullptr;
};

/// One mediated query of a deployment, as shipped over the control
/// plane: every process derives its entire (deterministic) execution
/// from this spec plus the workload/testbed flags it was started with.
struct RunSpec {
  uint32_t session = 1;
  std::string protocol = "commutative";  // das | commutative | pm
  std::string query;
  size_t das_partitions = 4;
  size_t group_bits = 256;
  size_t threads = 1;
  /// Label of the per-session DRBG; all processes must agree on it so
  /// the replicated executions draw identical randomness.
  std::string rng_label = "session";
  /// Where the requesting driver listens ("host:port"); reports go back
  /// there.
  std::string reply_to;
  /// Run with the process's prepared-dataset cache attached
  /// (core/prepared.h). Carried in the spec so every process of a
  /// replicated deployment takes the same path; prepared bytes are
  /// key-derived, so mixed cache *contents* across processes stay
  /// byte-identical regardless.
  bool use_prepared = false;

  Bytes Encode() const;
  static Result<RunSpec> Decode(const Bytes& raw);
};

/// Outcome digest of one process's replicated run, exchanged over the
/// control plane so the driver can check that all processes agreed.
struct RunReport {
  uint32_t session = 0;
  std::string party_set;  // comma-joined hosted parties (diagnostics)
  bool ok = false;
  std::string error;
  /// StatusCode of the failure (0 = kOk when `ok`), so drivers and tests
  /// can tell a clean abort (kAborted) from a hang-until-deadline
  /// (kDeadlineExceeded) or a detected corruption (kProtocolError)
  /// without parsing the error text.
  uint32_t error_code = 0;
  Bytes result_digest;  // SHA-256 of Relation::Serialize()
  uint64_t result_rows = 0;
  uint64_t messages = 0;     // transcript length
  uint64_t total_bytes = 0;  // framed bytes across the transcript
  /// Per-party (sent/received/bytes) statistics of the transport.
  std::vector<std::pair<std::string, PartyStats>> stats;

  Bytes Encode() const;
  static Result<RunReport> Decode(const Bytes& raw);
};

/// Instantiates the delivery protocol a spec names.
Result<std::unique_ptr<JoinProtocol>> BuildProtocol(const RunSpec& spec);

/// Runs the replicated protocol driver for `spec` over `host`: a
/// TcpTransport scoped to `deployment.local_parties` carries the hosted
/// parties' messages over real sockets while the rest of the execution
/// is simulated locally (see net/tcp_transport.h). On success the
/// report carries the result digest and transport statistics;
/// `result_out` (may be null) receives the result relation itself.
/// A non-null `obs` scope instruments the whole session — protocol
/// phases, crypto loops and the wire layer — and is detached from the
/// transport before returning.
/// A non-null `prepared` cache is attached to the session when the spec
/// sets use_prepared (ignored otherwise), memoizing the per-relation
/// delivery crypto across the daemon's sessions.
RunReport RunReplicatedSession(MediationTestbed* testbed, PeerHost* host,
                               const Deployment& deployment,
                               const RunSpec& spec, Relation* result_out,
                               obs::Scope* obs = nullptr,
                               PreparedCache* prepared = nullptr);

/// Reference twin of RunReplicatedSession: the same spec executed over a
/// fresh in-process NetworkBus with the same per-session seeding. A
/// deployment is correct iff this and every process's replicated report
/// agree on digest, message count and per-party byte statistics.
RunReport RunLocalSession(MediationTestbed* testbed, const RunSpec& spec,
                          Relation* result_out, obs::Scope* obs = nullptr,
                          PreparedCache* prepared = nullptr);

/// Sends a control frame to `ep` over `host`'s pooled connections.
Status SendCtl(PeerHost* host, const Endpoint& ep, const std::string& from,
               const std::string& type, Bytes payload, int timeout_ms);

/// Comma-splits "a,b,c" (used by the daemon flag parsers).
std::vector<std::string> SplitCommaList(const std::string& s);

}  // namespace secmed

#endif  // SECMED_CORE_REMOTE_H_
