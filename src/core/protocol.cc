#include "core/protocol.h"

#include "util/serialize.h"

namespace secmed {

namespace {
Bytes EncodeCredentials(const std::vector<Credential>& credentials) {
  BinaryWriter w;
  w.WriteU32(static_cast<uint32_t>(credentials.size()));
  for (const Credential& c : credentials) w.WriteBytes(c.Serialize());
  return w.TakeBuffer();
}

Result<std::vector<Credential>> DecodeCredentials(BinaryReader* r) {
  SECMED_ASSIGN_OR_RETURN(uint32_t n, r->ReadU32());
  std::vector<Credential> out;
  out.reserve(std::min<size_t>(n, r->remaining()));
  for (uint32_t i = 0; i < n; ++i) {
    SECMED_ASSIGN_OR_RETURN(Bytes raw, r->ReadBytes());
    SECMED_ASSIGN_OR_RETURN(Credential c, Credential::Deserialize(raw));
    out.push_back(std::move(c));
  }
  return out;
}
}  // namespace

Result<RequestState> RunRequestPhase(const std::string& sql,
                                     ProtocolContext* ctx) {
  if (ctx == nullptr || ctx->client == nullptr || ctx->mediator == nullptr ||
      ctx->bus == nullptr || ctx->rng == nullptr) {
    return Status::InvalidArgument("incomplete protocol context");
  }
  Transport& bus = *ctx->bus;

  // Step 1: client -> mediator: query q with credential set CR.
  {
    obs::Span span =
        obs::StartSpan(ctx->obs, "client", "request", "submit_query");
    BinaryWriter w;
    w.WriteString(sql);
    w.WriteRaw(EncodeCredentials(ctx->client->credentials()));
    bus.Send(ctx->client->name(), ctx->mediator->name(), kMsgGlobalQuery,
             w.TakeBuffer());
  }

  // Step 2: mediator localizes S1, S2 and decomposes q.
  RequestState state;
  {
    obs::Span span = obs::StartSpan(ctx->obs, "mediator", "request", "plan");
    SECMED_ASSIGN_OR_RETURN(
        Message msg, bus.ReceiveOfType(ctx->mediator->name(), kMsgGlobalQuery));
    BinaryReader r(msg.payload);
    SECMED_ASSIGN_OR_RETURN(std::string received_sql, r.ReadString());
    SECMED_ASSIGN_OR_RETURN(state.credentials, DecodeCredentials(&r));
    SECMED_ASSIGN_OR_RETURN(state.plan,
                            ctx->mediator->PlanJoinQuery(received_sql));

    // Step 3: mediator -> Si: <qi, CRi, Ai>.
    auto send_partial = [&](const std::string& source,
                            const std::string& partial_sql) {
      BinaryWriter w;
      w.WriteString(partial_sql);
      w.WriteString(state.plan.join_attribute);
      w.WriteRaw(EncodeCredentials(state.credentials));
      bus.Send(ctx->mediator->name(), source, kMsgPartialQuery, w.TakeBuffer());
    };
    send_partial(state.plan.source1, state.plan.partial_query1);
    send_partial(state.plan.source2, state.plan.partial_query2);
  }

  // Step 4: each Si checks credentials and executes qi. Span names use
  // the *role* (source1/source2), not the deployment party name, so the
  // set of span names is the same for every testbed naming.
  auto execute_at = [&](const std::string& source_name, const char* role,
                        Relation* result, RsaPublicKey* client_key) -> Status {
    obs::Span span = obs::StartSpan(ctx->obs, role, "request",
                                    "execute_partial");
    auto it = ctx->sources.find(source_name);
    if (it == ctx->sources.end()) {
      return Status::NotFound("datasource " + source_name + " not in context");
    }
    DataSource* source = it->second;
    SECMED_ASSIGN_OR_RETURN(Message msg,
                            bus.ReceiveOfType(source_name, kMsgPartialQuery));
    BinaryReader r(msg.payload);
    SECMED_ASSIGN_OR_RETURN(std::string partial_sql, r.ReadString());
    SECMED_ASSIGN_OR_RETURN(std::string join_attr, r.ReadString());
    SECMED_ASSIGN_OR_RETURN(std::vector<Credential> creds,
                            DecodeCredentials(&r));
    (void)join_attr;
    SECMED_ASSIGN_OR_RETURN(*result,
                            source->ExecutePartialQuery(partial_sql, creds));
    SECMED_ASSIGN_OR_RETURN(*client_key, source->ClientKeyFrom(creds));
    span.AddItems(result->size());
    return Status::OK();
  };
  SECMED_RETURN_IF_ERROR(execute_at(state.plan.source1, "source1", &state.r1,
                                    &state.client_key1));
  SECMED_RETURN_IF_ERROR(execute_at(state.plan.source2, "source2", &state.r2,
                                    &state.client_key2));
  return state;
}

Result<Schema> JoinedSchema(const Schema& schema1, const Schema& schema2,
                            const std::vector<std::string>& join_attributes) {
  SECMED_ASSIGN_OR_RETURN(std::vector<size_t> j2,
                          JoinColumnIndexes(schema2, join_attributes));
  std::vector<bool> drop(schema2.size(), false);
  for (size_t i : j2) drop[i] = true;
  std::vector<Column> cols = schema1.columns();
  for (size_t i = 0; i < schema2.size(); ++i) {
    if (!drop[i]) cols.push_back(schema2.column(i));
  }
  return Schema(std::move(cols));
}

Result<Schema> JoinedSchema(const Schema& schema1, const Schema& schema2,
                            const std::string& join_attribute) {
  return JoinedSchema(schema1, schema2,
                      std::vector<std::string>{join_attribute});
}

Result<std::vector<size_t>> JoinColumnIndexes(
    const Schema& schema, const std::vector<std::string>& join_attributes) {
  std::vector<size_t> out;
  out.reserve(join_attributes.size());
  for (const std::string& attr : join_attributes) {
    SECMED_ASSIGN_OR_RETURN(size_t idx, schema.IndexOf(attr));
    out.push_back(idx);
  }
  return out;
}

Bytes CompositeJoinKey(const Tuple& tuple, const std::vector<size_t>& indexes) {
  Bytes key;
  for (size_t i : indexes) {
    if (tuple[i].is_null()) return Bytes();
    Append(&key, tuple[i].Encode());
  }
  return key;
}

std::map<Bytes, Relation> GroupTuplesByJoinValue(
    const Relation& rel, const std::vector<size_t>& indexes) {
  std::map<Bytes, Relation> groups;
  for (const Tuple& t : rel.tuples()) {
    Bytes key = CompositeJoinKey(t, indexes);
    if (key.empty()) continue;  // NULL never joins
    auto [it, inserted] = groups.try_emplace(std::move(key), rel.schema());
    it->second.AppendUnchecked(t);
  }
  return groups;
}

void AppendJoinedCrossProduct(const Relation& tup1, const Relation& tup2,
                              const std::vector<size_t>& j2, Relation* out) {
  std::vector<bool> drop(tup2.schema().size(), false);
  for (size_t i : j2) drop[i] = true;
  for (const Tuple& t1 : tup1.tuples()) {
    for (const Tuple& t2 : tup2.tuples()) {
      Tuple t = t1;
      for (size_t i = 0; i < t2.size(); ++i) {
        if (!drop[i]) t.push_back(t2[i]);
      }
      out->AppendUnchecked(std::move(t));
    }
  }
}

}  // namespace secmed
