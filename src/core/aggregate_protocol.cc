#include "core/aggregate_protocol.h"

#include <algorithm>
#include <map>
#include <memory>

#include "crypto/commutative.h"
#include "crypto/group_params.h"
#include "crypto/paillier.h"
#include "crypto/randomizer_pool.h"
#include "util/parallel.h"
#include "util/serialize.h"

namespace secmed {

namespace {
constexpr char kMsgAggMessageSet[] = "agg_message_set";
constexpr char kMsgAggExchange[] = "agg_exchange";
constexpr char kMsgAggDouble[] = "agg_double";
constexpr char kMsgAggResult[] = "agg_result";

// Maps a mod-n residue back into the signed 64-bit range (sums of int64
// cells stay far below n/2 in magnitude).
Result<int64_t> DecodeSigned(const BigInt& m, const BigInt& n) {
  BigInt half = n >> 1;
  BigInt v = m;
  bool negative = false;
  if (v > half) {
    v = n - v;
    negative = true;
  }
  if (v.BitLength() > 63) {
    return Status::OutOfRange("aggregate exceeds 64-bit range");
  }
  int64_t out = static_cast<int64_t>(v.LowU64());
  return negative ? -out : out;
}
}  // namespace

Result<int64_t> AggregateJoinProtocol::Run(const std::string& sql,
                                           const JoinAggregateSpec& spec,
                                           ProtocolContext* ctx) {
  if (spec.fn != AggregateFn::kCount && spec.fn != AggregateFn::kSum) {
    return Status::Unimplemented(
        "aggregate-join protocol supports COUNT and SUM");
  }
  SECMED_ASSIGN_OR_RETURN(RequestState state, RunRequestPhase(sql, ctx));
  SECMED_ASSIGN_OR_RETURN(QrGroup group, StandardGroup(group_bits_));
  Transport& bus = *ctx->bus;
  const std::string& mediator = ctx->mediator->name();
  const std::string& client = ctx->client->name();
  const size_t group_bytes = (group.p().BitLength() + 7) / 8;

  if (state.credentials.empty() || state.credentials[0].paillier_key.empty()) {
    return Status::ProtocolError(
        "aggregate protocol requires a homomorphic key in the credentials");
  }
  SECMED_ASSIGN_OR_RETURN(
      PaillierPublicKey paillier,
      PaillierPublicKey::Deserialize(state.credentials[0].paillier_key));
  const size_t pail_bytes = (paillier.n_squared().BitLength() + 7) / 8;
  const size_t threads = ResolveThreads(ctx->threads);

  // Which source owns the summed column?
  bool sum_at_source1 = false;
  if (spec.fn == AggregateFn::kSum) {
    const std::string base = Schema::BaseName(spec.column);
    const bool in1 = state.r1.schema().HasColumn(base);
    const bool in2 = state.r2.schema().HasColumn(base);
    if (in1 == in2) {
      return Status::InvalidArgument(
          "summed column must belong to exactly one relation: " + spec.column);
    }
    sum_at_source1 = in1;
  }

  // Each source: commutative matching entries with Paillier aggregate
  // payloads <f_ei(h(a)), E(count_i(a)) [, E(sum_i(a))]>.
  std::vector<CommutativeKey> keys;
  auto deliver = [&](const std::string& source, const Relation& rel,
                     bool carries_sum, uint8_t which) -> Status {
    CommutativeKey key = CommutativeKey::Generate(group, ctx->rng);
    SECMED_ASSIGN_OR_RETURN(
        std::vector<size_t> join_idx,
        JoinColumnIndexes(rel.schema(), state.plan.join_attributes));
    std::map<Bytes, Relation> tuple_sets =
        GroupTuplesByJoinValue(rel, join_idx);

    size_t sum_col = 0;
    if (carries_sum) {
      SECMED_ASSIGN_OR_RETURN(sum_col, rel.schema().IndexOf(
                                           Schema::BaseName(spec.column)));
      if (rel.schema().column(sum_col).type != ValueType::kInt64) {
        return Status::InvalidArgument("SUM requires an integer column");
      }
    }

    struct Entry {
      Bytes cipher;
      Bytes enc_count;
      Bytes enc_sum;  // empty unless carries_sum
    };
    struct Item {
      const Bytes* value_enc;
      const Relation* tuples;
    };
    std::vector<Item> items;
    items.reserve(tuple_sets.size());
    for (const auto& [value_enc, tuples] : tuple_sets) {
      items.push_back({&value_enc, &tuples});
    }
    std::vector<std::unique_ptr<RandomSource>> rngs =
        ForkN(ctx->rng, items.size());
    std::vector<Entry> entries(items.size());
    const char* src_role = which == 1 ? "source1" : "source2";
    std::string loop_label =
        obs::SpanName(src_role, "delivery", "agg.encrypt_sets");
    // Each item encrypts its count and (optionally) its sum; with pools
    // on, both randomizers are precomputed in the same per-item draw
    // order the inline path uses, keeping transcripts bit-identical.
    const size_t per_item = carries_sum ? 2 : 1;
    PaillierRandomizerPool rpool;
    if (ctx->use_crypto_pools) {
      std::string pool_label =
          obs::SpanName(src_role, "delivery", "agg.pool_randomizers");
      rpool = PaillierRandomizerPool::Precompute(paillier, rngs, per_item,
                                                 threads, ctx->obs,
                                                 pool_label.c_str());
    }
    SECMED_RETURN_IF_ERROR(
        ParallelForStatus(items.size(), threads, [&](size_t i) -> Status {
          Entry& e = entries[i];
          e.cipher = key.Encrypt(group.HashToGroup(*items[i].value_enc))
                         .ToBytes(group_bytes);
          BigInt count(static_cast<uint64_t>(items[i].tuples->size()));
          BigInt enc_count;
          if (ctx->use_crypto_pools) {
            SECMED_ASSIGN_OR_RETURN(enc_count,
                                    rpool.Encrypt(paillier, count, i, 0));
          } else {
            SECMED_ASSIGN_OR_RETURN(enc_count,
                                    paillier.Encrypt(count, rngs[i].get()));
          }
          e.enc_count = enc_count.ToBytes(pail_bytes);
          if (carries_sum) {
            int64_t sum = 0;
            for (const Tuple& t : items[i].tuples->tuples()) {
              if (!t[sum_col].is_null()) sum += t[sum_col].as_int();
            }
            SECMED_ASSIGN_OR_RETURN(BigInt m,
                                    BigInt::Mod(BigInt(sum), paillier.n()));
            BigInt enc_sum;
            if (ctx->use_crypto_pools) {
              SECMED_ASSIGN_OR_RETURN(enc_sum,
                                      rpool.Encrypt(paillier, m, i, 1));
            } else {
              SECMED_ASSIGN_OR_RETURN(enc_sum,
                                      paillier.Encrypt(m, rngs[i].get()));
            }
            e.enc_sum = enc_sum.ToBytes(pail_bytes);
          }
          return Status::OK();
        }, ctx->obs, loop_label.c_str()));
    std::sort(entries.begin(), entries.end(),
              [](const Entry& a, const Entry& b) { return a.cipher < b.cipher; });

    BinaryWriter w;
    w.WriteU8(which);
    w.WriteU8(carries_sum ? 1 : 0);
    w.WriteU32(static_cast<uint32_t>(entries.size()));
    for (const Entry& e : entries) {
      w.WriteBytes(e.cipher);
      w.WriteBytes(e.enc_count);
      w.WriteBytes(e.enc_sum);
    }
    bus.Send(source, mediator, kMsgAggMessageSet, w.TakeBuffer());
    keys.push_back(std::move(key));
    return Status::OK();
  };
  SECMED_RETURN_IF_ERROR(deliver(state.plan.source1, state.r1,
                                 spec.fn == AggregateFn::kSum && sum_at_source1,
                                 1));
  SECMED_RETURN_IF_ERROR(
      deliver(state.plan.source2, state.r2,
              spec.fn == AggregateFn::kSum && !sum_at_source1, 2));

  // Mediator: keep the aggregate ciphertexts, exchange the hash parts.
  struct MedEntry {
    Bytes cipher;
    Bytes enc_count;
    Bytes enc_sum;
  };
  std::vector<std::vector<MedEntry>> med(3);
  for (int i = 0; i < 2; ++i) {
    SECMED_ASSIGN_OR_RETURN(Message msg,
                            bus.ReceiveOfType(mediator, kMsgAggMessageSet));
    BinaryReader r(msg.payload);
    SECMED_ASSIGN_OR_RETURN(uint8_t which, r.ReadU8());
    if (which != 1 && which != 2) return Status::ProtocolError("bad tag");
    SECMED_ASSIGN_OR_RETURN(uint8_t carries_sum, r.ReadU8());
    (void)carries_sum;
    SECMED_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
    for (uint32_t k = 0; k < count; ++k) {
      MedEntry e;
      SECMED_ASSIGN_OR_RETURN(e.cipher, r.ReadBytes());
      SECMED_ASSIGN_OR_RETURN(e.enc_count, r.ReadBytes());
      SECMED_ASSIGN_OR_RETURN(e.enc_sum, r.ReadBytes());
      med[which].push_back(std::move(e));
    }
  }
  auto forward = [&](uint8_t from_which, const std::string& to_source) {
    BinaryWriter w;
    w.WriteU8(from_which);
    w.WriteU32(static_cast<uint32_t>(med[from_which].size()));
    for (size_t id = 0; id < med[from_which].size(); ++id) {
      w.WriteBytes(med[from_which][id].cipher);
      w.WriteU64(id);
    }
    bus.Send(mediator, to_source, kMsgAggExchange, w.TakeBuffer());
  };
  forward(1, state.plan.source2);
  forward(2, state.plan.source1);

  // Sources double-encrypt.
  auto double_at = [&](const std::string& source, size_t key_idx) -> Status {
    SECMED_ASSIGN_OR_RETURN(Message msg,
                            bus.ReceiveOfType(source, kMsgAggExchange));
    BinaryReader r(msg.payload);
    SECMED_ASSIGN_OR_RETURN(uint8_t origin, r.ReadU8());
    SECMED_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
    std::vector<Bytes> singles(count);
    std::vector<uint64_t> ids(count);
    for (uint32_t k = 0; k < count; ++k) {
      SECMED_ASSIGN_OR_RETURN(singles[k], r.ReadBytes());
      SECMED_ASSIGN_OR_RETURN(ids[k], r.ReadU64());
    }
    std::string loop_label = obs::SpanName(
        key_idx == 0 ? "source1" : "source2", "delivery", "agg.double_encrypt");
    std::vector<BigInt> xs(count);
    for (uint32_t k = 0; k < count; ++k) xs[k] = BigInt::FromBytes(singles[k]);
    std::vector<BigInt> enc =
        keys[key_idx].EncryptMany(xs, threads, ctx->obs, loop_label.c_str());
    std::vector<Bytes> doubled(count);
    for (uint32_t k = 0; k < count; ++k) doubled[k] = enc[k].ToBytes(group_bytes);
    BinaryWriter w;
    w.WriteU8(origin);
    w.WriteU32(count);
    for (uint32_t k = 0; k < count; ++k) {
      w.WriteBytes(doubled[k]);
      w.WriteU64(ids[k]);
    }
    bus.Send(source, mediator, kMsgAggDouble, w.TakeBuffer());
    return Status::OK();
  };
  SECMED_RETURN_IF_ERROR(double_at(state.plan.source1, 0));
  SECMED_RETURN_IF_ERROR(double_at(state.plan.source2, 1));

  // Mediator: match doubles; per matched value forward the two aggregate
  // ciphertext pairs to the client.
  std::map<Bytes, std::pair<std::vector<uint64_t>, std::vector<uint64_t>>>
      matches;
  for (int i = 0; i < 2; ++i) {
    SECMED_ASSIGN_OR_RETURN(Message msg,
                            bus.ReceiveOfType(mediator, kMsgAggDouble));
    BinaryReader r(msg.payload);
    SECMED_ASSIGN_OR_RETURN(uint8_t origin, r.ReadU8());
    SECMED_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
    for (uint32_t k = 0; k < count; ++k) {
      SECMED_ASSIGN_OR_RETURN(Bytes doubled, r.ReadBytes());
      SECMED_ASSIGN_OR_RETURN(uint64_t id, r.ReadU64());
      auto& slot = matches[doubled];
      (origin == 1 ? slot.first : slot.second).push_back(id);
    }
  }
  BinaryWriter result_writer;
  uint32_t matched = 0;
  BinaryWriter rows;
  for (const auto& [doubled, slot] : matches) {
    for (uint64_t id1 : slot.first) {
      for (uint64_t id2 : slot.second) {
        if (id1 >= med[1].size() || id2 >= med[2].size()) {
          return Status::ProtocolError("aggregate ID out of range");
        }
        rows.WriteBytes(med[1][id1].enc_count);
        rows.WriteBytes(med[1][id1].enc_sum);
        rows.WriteBytes(med[2][id2].enc_count);
        rows.WriteBytes(med[2][id2].enc_sum);
        ++matched;
      }
    }
  }
  last_intersection_size_ = matched;
  result_writer.WriteU32(matched);
  result_writer.WriteRaw(rows.buffer());
  bus.Send(mediator, client, kMsgAggResult, result_writer.TakeBuffer());

  // Client: decrypt the per-value aggregates and combine.
  SECMED_ASSIGN_OR_RETURN(Message msg, bus.ReceiveOfType(client, kMsgAggResult));
  BinaryReader r(msg.payload);
  SECMED_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
  const PaillierPrivateKey& sk = ctx->client->paillier_private_key();
  int64_t total = 0;
  for (uint32_t k = 0; k < count; ++k) {
    SECMED_ASSIGN_OR_RETURN(Bytes c1, r.ReadBytes());
    SECMED_ASSIGN_OR_RETURN(Bytes s1, r.ReadBytes());
    SECMED_ASSIGN_OR_RETURN(Bytes c2, r.ReadBytes());
    SECMED_ASSIGN_OR_RETURN(Bytes s2, r.ReadBytes());
    SECMED_ASSIGN_OR_RETURN(BigInt count1, sk.Decrypt(BigInt::FromBytes(c1)));
    SECMED_ASSIGN_OR_RETURN(BigInt count2, sk.Decrypt(BigInt::FromBytes(c2)));
    if (spec.fn == AggregateFn::kCount) {
      total += static_cast<int64_t>(count1.LowU64()) *
               static_cast<int64_t>(count2.LowU64());
      continue;
    }
    const Bytes& sum_raw = sum_at_source1 ? s1 : s2;
    const BigInt other_count = sum_at_source1 ? count2 : count1;
    SECMED_ASSIGN_OR_RETURN(BigInt sum_m,
                            sk.Decrypt(BigInt::FromBytes(sum_raw)));
    SECMED_ASSIGN_OR_RETURN(int64_t sum, DecodeSigned(sum_m, paillier.n()));
    total += static_cast<int64_t>(other_count.LowU64()) * sum;
  }
  return total;
}

}  // namespace secmed
