#ifndef SECMED_CORE_RANGE_PROTOCOL_H_
#define SECMED_CORE_RANGE_PROTOCOL_H_

#include "core/protocol.h"
#include "das/partition.h"

namespace secmed {

/// Secure mediation of single-table RANGE queries via the
/// privacy-preserving index of Hore, Mehrotra and Tsudik ([15] — the
/// paper's reference for the DAS partitioning trade-off):
///
///   SELECT * FROM t WHERE col >= lo AND col <= hi
///   (also col = v, col < v, col > v, col <= v, col >= v)
///
/// The datasource DAS-encrypts its partial result with bucketization
/// indexes on every integer column; the client — who alone can decrypt
/// the index tables — maps its range onto the overlapping buckets and
/// asks the mediator for exactly those index values. The mediator returns
/// a superset (every tuple in a bucket touching the range), which the
/// client filters exactly.
///
/// Like the DAS join, the condition constants never leave the client; the
/// mediator learns only bucket identifiers and result sizes. Fewer
/// partitions → bigger superset but less inference exposure — the same
/// dial as Section 6.
class RangeSelectionProtocol {
 public:
  struct Options {
    PartitionStrategy strategy = PartitionStrategy::kEquiDepth;
    size_t num_partitions = 4;
  };

  RangeSelectionProtocol() : RangeSelectionProtocol(Options()) {}
  explicit RangeSelectionProtocol(Options options) : options_(options) {}

  Result<Relation> Run(const std::string& sql, ProtocolContext* ctx);

  /// Superset rows the mediator returned in the last run (before the
  /// client's exact filtering).
  size_t last_superset_size() const { return last_superset_size_; }

 private:
  Options options_;
  size_t last_superset_size_ = 0;
};

}  // namespace secmed

#endif  // SECMED_CORE_RANGE_PROTOCOL_H_
