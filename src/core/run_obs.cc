#include "core/run_obs.h"

namespace secmed {

namespace {

obs::PartyTraffic TrafficRow(const std::string& party, const PartyStats& s) {
  obs::PartyTraffic row;
  row.party = party;
  row.messages_sent = s.messages_sent;
  row.messages_received = s.messages_received;
  row.bytes_sent = s.bytes_sent;
  row.bytes_received = s.bytes_received;
  row.interactions = s.interactions;
  for (const auto& [type, ts] : s.by_type) {
    obs::MessageTypeTraffic t;
    t.type = type;
    t.messages_sent = ts.messages_sent;
    t.bytes_sent = ts.bytes_sent;
    t.messages_received = ts.messages_received;
    t.bytes_received = ts.bytes_received;
    row.by_type.push_back(std::move(t));
  }
  return row;
}

}  // namespace

std::vector<obs::PartyTraffic> PartyTrafficRows(
    const Transport& transport, const std::vector<std::string>& parties) {
  std::vector<obs::PartyTraffic> rows;
  rows.reserve(parties.size());
  for (const std::string& party : parties) {
    rows.push_back(TrafficRow(party, transport.StatsOf(party)));
  }
  return rows;
}

std::vector<obs::PartyTraffic> PartyTrafficRows(const RunReport& report) {
  std::vector<obs::PartyTraffic> rows;
  rows.reserve(report.stats.size());
  for (const auto& [party, s] : report.stats) {
    rows.push_back(TrafficRow(party, s));
  }
  return rows;
}

Status WriteObsArtifacts(const obs::Scope& scope, const obs::RunInfo& info,
                         const std::vector<obs::PartyTraffic>& traffic,
                         const std::string& trace_path,
                         const std::string& report_path,
                         const std::string& process_name) {
  std::string error;
  if (!trace_path.empty()) {
    obs::ChromeTraceOptions copt;
    copt.process_name = process_name;
    copt.trace_id_hex = scope.trace().TraceIdHex();
    if (!obs::WriteTextFile(trace_path,
                            obs::RenderChromeTrace(scope.tracer(), copt),
                            &error)) {
      return Status::Internal("writing trace file: " + error);
    }
  }
  if (!report_path.empty()) {
    if (!obs::WriteTextFile(report_path,
                            obs::RenderRunReportJson(info, scope, traffic),
                            &error)) {
      return Status::Internal("writing report file: " + error);
    }
  }
  return Status::OK();
}

}  // namespace secmed
