#include "core/testbed.h"

#include "relational/algebra.h"

namespace secmed {

Result<std::unique_ptr<MediationTestbed>> MediationTestbed::Create(
    const Workload& workload) {
  return Create(workload, Options());
}

Result<std::unique_ptr<MediationTestbed>> MediationTestbed::Create(
    const Workload& workload, Options options) {
  std::unique_ptr<MediationTestbed> tb(
      new MediationTestbed(workload, std::move(options)));
  SECMED_RETURN_IF_ERROR(tb->Init());
  return tb;
}

MediationTestbed::MediationTestbed(const Workload& workload, Options options)
    : options_(std::move(options)),
      rng_(ToBytes("secmed-testbed-" + options_.seed_label)),
      workload_(workload),
      mediator_("mediator") {}

Status MediationTestbed::Init() {
  SECMED_ASSIGN_OR_RETURN(CertificationAuthority ca,
                          CertificationAuthority::Create(1024, &rng_));
  ca_ = std::make_unique<CertificationAuthority>(std::move(ca));
  SECMED_ASSIGN_OR_RETURN(
      Client client, Client::Create("client", options_.rsa_bits,
                                    options_.paillier_bits, &rng_));
  client_ = std::make_unique<Client>(std::move(client));
  SECMED_RETURN_IF_ERROR(
      client_->AcquireCredential(*ca_, {{"role", "analyst"}}));

  source1_ = std::make_unique<DataSource>(options_.source1);
  source2_ = std::make_unique<DataSource>(options_.source2);
  source1_->set_ca_key(ca_->public_key());
  source2_->set_ca_key(ca_->public_key());
  source1_->AddRelation(options_.table1, workload_.r1);
  source2_->AddRelation(options_.table2, workload_.r2);

  mediator_.RegisterTable(options_.table1, source1_->name(),
                          workload_.r1.schema());
  mediator_.RegisterTable(options_.table2, source2_->name(),
                          workload_.r2.schema());

  ctx_.client = client_.get();
  ctx_.mediator = &mediator_;
  ctx_.sources[source1_->name()] = source1_.get();
  ctx_.sources[source2_->name()] = source2_.get();
  ctx_.bus = &bus_;
  ctx_.rng = &rng_;
  ctx_.threads = options_.threads;
  return Status::OK();
}

std::string MediationTestbed::JoinSql() const {
  return "SELECT * FROM " + options_.table1 + " JOIN " + options_.table2 +
         " ON " + options_.table1 + "." + workload_.join_attribute + " = " +
         options_.table2 + "." + workload_.join_attribute;
}

std::string MediationTestbed::MultiJoinSql() const {
  std::string sql =
      "SELECT * FROM " + options_.table1 + " JOIN " + options_.table2 + " ON ";
  const auto& attrs = workload_.join_attributes;
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i) sql += " AND ";
    sql += options_.table1 + "." + attrs[i] + " = " + options_.table2 + "." +
           attrs[i];
  }
  return sql;
}

Relation MediationTestbed::ExpectedJoin() const {
  Relation a = Qualify(workload_.r1, options_.table1);
  Relation b = Qualify(workload_.r2, options_.table2);
  return NaturalJoin(a, b).value();
}

}  // namespace secmed
