#include "core/testbed.h"

#include "relational/algebra.h"

namespace secmed {

MediationTestbed::MediationTestbed(const Workload& workload, Options options)
    : options_(std::move(options)),
      rng_(ToBytes("secmed-testbed-" + options_.seed_label)),
      workload_(workload),
      mediator_("mediator") {
  ca_ = std::make_unique<CertificationAuthority>(
      CertificationAuthority::Create(1024, &rng_).value());
  client_ = std::make_unique<Client>(
      Client::Create("client", options_.rsa_bits, options_.paillier_bits,
                     &rng_)
          .value());
  Status st =
      client_->AcquireCredential(*ca_, {{"role", "analyst"}});
  (void)st;

  source1_ = std::make_unique<DataSource>(options_.source1);
  source2_ = std::make_unique<DataSource>(options_.source2);
  source1_->set_ca_key(ca_->public_key());
  source2_->set_ca_key(ca_->public_key());
  source1_->AddRelation(options_.table1, workload_.r1);
  source2_->AddRelation(options_.table2, workload_.r2);

  mediator_.RegisterTable(options_.table1, source1_->name(),
                          workload_.r1.schema());
  mediator_.RegisterTable(options_.table2, source2_->name(),
                          workload_.r2.schema());

  ctx_.client = client_.get();
  ctx_.mediator = &mediator_;
  ctx_.sources[source1_->name()] = source1_.get();
  ctx_.sources[source2_->name()] = source2_.get();
  ctx_.bus = &bus_;
  ctx_.rng = &rng_;
}

std::string MediationTestbed::JoinSql() const {
  return "SELECT * FROM " + options_.table1 + " JOIN " + options_.table2 +
         " ON " + options_.table1 + "." + workload_.join_attribute + " = " +
         options_.table2 + "." + workload_.join_attribute;
}

std::string MediationTestbed::MultiJoinSql() const {
  std::string sql =
      "SELECT * FROM " + options_.table1 + " JOIN " + options_.table2 + " ON ";
  const auto& attrs = workload_.join_attributes;
  for (size_t i = 0; i < attrs.size(); ++i) {
    if (i) sql += " AND ";
    sql += options_.table1 + "." + attrs[i] + " = " + options_.table2 + "." +
           attrs[i];
  }
  return sql;
}

Relation MediationTestbed::ExpectedJoin() const {
  Relation a = Qualify(workload_.r1, options_.table1);
  Relation b = Qualify(workload_.r2, options_.table2);
  return NaturalJoin(a, b).value();
}

}  // namespace secmed
