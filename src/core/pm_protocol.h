#ifndef SECMED_CORE_PM_PROTOCOL_H_
#define SECMED_CORE_PM_PROTOCOL_H_

#include "core/protocol.h"

namespace secmed {

/// Options of the private-matching delivery phase.
struct PmProtocolOptions {
  /// Footnote 2 of the paper: when true (default), the tuple sets are
  /// encrypted under fresh session keys and only <ID, session key> rides
  /// inside the homomorphic polynomial payload, avoiding the plaintext
  /// length restriction of asymmetric encryption. When false, the whole
  /// serialized tuple set is embedded in the payload (fails with
  /// kInvalidArgument when a tuple set does not fit below the Paillier
  /// modulus).
  bool session_key_payloads = true;
};

/// Secure mediation with efficient private matching (Section 5.1,
/// Listing 4), after Freedman et al.
///
/// Delivery phase:
///  2./3. Each Si builds the polynomial Pi whose roots are (the field
///     encodings of) its active join values, encrypts the coefficients
///     under the client's public homomorphic (Paillier) key from the
///     credentials, and sends them to the mediator.
///  4. The mediator forwards the encrypted coefficients to the opposite
///     datasource.
///  5./6. Each source blindly evaluates the opposite polynomial at its own
///     values: ek = E(rk · Pj(ak) + (ak || payload)) with fresh random rk.
///  7. The mediator sends the n + m encrypted values to the client.
///  8. The client decrypts: for common values the payload emerges, for all
///     others the masking randomizes the plaintext. Matching value pairs
///     are combined into the global result.
///
/// The client receives (encrypted remnants of) both partial results but
/// can only open the matching part; the mediator learns the polynomial
/// degrees |domactive(Ri.Ajoin)| (Table 1).
/// Draws `count` distinct random 64-bit payload-table IDs from `rng`,
/// redrawing on collision (bounded attempts per ID, then kInternal).
/// Random — not sequential — IDs keep the mediator from learning the
/// relative order of join values; redrawing keeps a 64-bit birthday
/// collision from silently dropping a payload-table entry at the client.
/// Exposed as a free function so tests can force collisions with a
/// stubbed RandomSource.
Result<std::vector<uint64_t>> DrawDistinctPayloadIds(size_t count,
                                                     RandomSource* rng);

class PmJoinProtocol : public JoinProtocol {
 public:
  explicit PmJoinProtocol(PmProtocolOptions options = {}) : options_(options) {}

  std::string name() const override { return "pm"; }

  Result<Relation> Run(const std::string& sql, ProtocolContext* ctx) override;

  /// Number of evaluations the client decrypted in the last run (n + m).
  size_t last_evaluation_count() const { return last_evaluation_count_; }

 private:
  PmProtocolOptions options_;
  size_t last_evaluation_count_ = 0;
};

}  // namespace secmed

#endif  // SECMED_CORE_PM_PROTOCOL_H_
