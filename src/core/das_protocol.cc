#include "core/das_protocol.h"

#include "core/prepared.h"
#include "crypto/hybrid.h"
#include "das/das_relation.h"
#include "das/index_table.h"
#include "das/query_translator.h"
#include "util/parallel.h"
#include "util/serialize.h"

namespace secmed {

namespace {
constexpr char kMsgDasEncryptedResult[] = "das_encrypted_result";
constexpr char kMsgDasIndexTable[] = "das_index_table";
constexpr char kMsgDasServerQuery[] = "das_server_query";
constexpr char kMsgDasServerResult[] = "das_server_result";
// Source setting: index tables travel source-to-source over a secure
// channel (e.g. TLS) that the mediator does not observe.
constexpr char kMsgDasSourceItables[] = "das_source_itables";

// What a datasource ships for the client: the index tables (one per join
// attribute, client setting only) and the partial-result schema.
Bytes EncodeItableBlob(const std::vector<IndexTable>& itables,
                       const Schema& schema) {
  BinaryWriter w;
  schema.EncodeTo(&w);
  w.WriteU32(static_cast<uint32_t>(itables.size()));
  for (const IndexTable& it : itables) w.WriteBytes(it.Serialize());
  return w.TakeBuffer();
}

Status DecodeItableBlob(const Bytes& blob, Schema* schema,
                        std::vector<IndexTable>* itables) {
  BinaryReader r(blob);
  SECMED_ASSIGN_OR_RETURN(*schema, Schema::DecodeFrom(&r));
  SECMED_ASSIGN_OR_RETURN(uint32_t n, r.ReadU32());
  itables->clear();
  for (uint32_t i = 0; i < n; ++i) {
    SECMED_ASSIGN_OR_RETURN(Bytes raw, r.ReadBytes());
    SECMED_ASSIGN_OR_RETURN(IndexTable it, IndexTable::Deserialize(raw));
    itables->push_back(std::move(it));
  }
  return Status::OK();
}

// Per-source delivery state computed by BuildSourceDelivery.
struct SourceDelivery {
  DasRelation encrypted;
  std::vector<IndexTable> itables;
  Bytes sealed_blob;  // itables+schema (client setting) or schema only
};

/// Cached delivery state of one source: salted index tables, the
/// DAS-encrypted relation and the sealed blob, all derived from the
/// entry's prepare RNG. The relation's name field is stamped per send,
/// so sessions copy out of the entry instead of aliasing it.
struct PreparedDasDelivery : PreparedValue {
  SourceDelivery delivery;
  size_t approx_bytes = 0;

  size_t ByteSize() const override { return approx_bytes; }
};
}  // namespace

const char* DasTranslatorSettingToString(DasTranslatorSetting s) {
  switch (s) {
    case DasTranslatorSetting::kClient: return "client";
    case DasTranslatorSetting::kSource: return "source";
    case DasTranslatorSetting::kMediator: return "mediator";
  }
  return "?";
}

Result<Relation> DasJoinProtocol::Run(const std::string& sql,
                                      ProtocolContext* ctx) {
  SECMED_ASSIGN_OR_RETURN(RequestState state, RunRequestPhase(sql, ctx));
  Transport& bus = *ctx->bus;
  const std::string& mediator = ctx->mediator->name();
  const std::string& client = ctx->client->name();
  const std::vector<std::string>& join_attrs = state.plan.join_attributes;
  const DasTranslatorSetting setting = options_.translator;

  // Delivery steps 1-2 at each datasource: build one index table per join
  // attribute and DAS-encrypt the partial result. What accompanies the
  // encrypted relation depends on the translator setting:
  //   kClient:  sealed (schema + itables) for the client;
  //   kSource:  sealed schema for the client, plaintext itables for the
  //             peer source (secure channel);
  //   kMediator: sealed schema for the client, plaintext itables for the
  //             mediator.
  auto build_with = [&](const Relation& rel, const RsaPublicKey& client_key,
                        const char* role,
                        RandomSource* rng) -> Result<SourceDelivery> {
    SourceDelivery d;
    {
      obs::Span span =
          obs::StartSpan(ctx->obs, role, "delivery", "das.build_itables");
      for (const std::string& attr : join_attrs) {
        Bytes salt = rng->Generate(16);
        SECMED_ASSIGN_OR_RETURN(
            IndexTable itable,
            IndexTable::Build(rel, attr, options_.strategy,
                              options_.num_partitions, salt));
        d.itables.push_back(std::move(itable));
      }
      span.AddItems(join_attrs.size());
    }
    std::vector<std::string> clear_cols;
    for (const std::string& col : options_.plaintext_columns) {
      if (rel.schema().HasColumn(Schema::BaseName(col))) {
        clear_cols.push_back(Schema::BaseName(col));
      }
    }
    {
      obs::Span span =
          obs::StartSpan(ctx->obs, role, "delivery", "das.encrypt_relation");
      std::string label = obs::SpanName(role, "delivery", "das.encrypt_relation");
      SECMED_ASSIGN_OR_RETURN(
          d.encrypted,
          DasEncryptRelation(rel, join_attrs, d.itables, client_key, rng,
                             clear_cols, ResolveThreads(ctx->threads),
                             ctx->obs, label.c_str()));
      span.AddItems(rel.size());
    }
    obs::Span span = obs::StartSpan(ctx->obs, role, "delivery", "das.seal");
    Bytes blob;
    if (setting == DasTranslatorSetting::kClient) {
      blob = EncodeItableBlob(d.itables, rel.schema());
    } else {
      BinaryWriter w;
      rel.schema().EncodeTo(&w);
      blob = w.TakeBuffer();
    }
    SECMED_ASSIGN_OR_RETURN(d.sealed_blob,
                            HybridEncrypt(client_key, blob, rng));
    return d;
  };
  auto build = [&](const std::string& source, const Relation& rel,
                   const RsaPublicKey& client_key,
                   const char* role) -> Result<SourceDelivery> {
    if (ctx->prepared == nullptr) {
      return build_with(rel, client_key, role, ctx->rng);
    }
    BinaryWriter mat;
    mat.WriteU8(static_cast<uint8_t>(setting));
    mat.WriteU32(static_cast<uint32_t>(options_.strategy));
    mat.WriteU32(static_cast<uint32_t>(options_.num_partitions));
    mat.WriteU32(static_cast<uint32_t>(options_.plaintext_columns.size()));
    for (const std::string& col : options_.plaintext_columns) {
      mat.WriteString(col);
    }
    mat.WriteU32(static_cast<uint32_t>(join_attrs.size()));
    for (const std::string& a : join_attrs) mat.WriteString(a);
    mat.WriteBytes(client_key.Serialize());
    mat.WriteBytes(rel.Serialize());
    std::string cache_key = PreparedKey(
        "das.build", source, SourceCatalogVersion(ctx, source),
        mat.TakeBuffer());
    SECMED_ASSIGN_OR_RETURN(
        std::shared_ptr<const PreparedDasDelivery> entry,
        GetOrCompute<PreparedDasDelivery>(
            ctx->prepared, cache_key,
            [&](RandomSource* rng)
                -> Result<std::shared_ptr<const PreparedDasDelivery>> {
              auto e = std::make_shared<PreparedDasDelivery>();
              SECMED_ASSIGN_OR_RETURN(e->delivery,
                                      build_with(rel, client_key, role, rng));
              e->approx_bytes = e->delivery.sealed_blob.size() +
                                e->delivery.encrypted.Serialize().size();
              return std::shared_ptr<const PreparedDasDelivery>(std::move(e));
            }));
    return entry->delivery;  // copy: sessions stamp encrypted.name per send
  };

  SECMED_ASSIGN_OR_RETURN(
      SourceDelivery d1,
      build(state.plan.source1, state.r1, state.client_key1, "source1"));
  SECMED_ASSIGN_OR_RETURN(
      SourceDelivery d2,
      build(state.plan.source2, state.r2, state.client_key2, "source2"));

  // Step 3: each source sends <RiS, blob(s)> to the mediator; non-client
  // settings additionally expose the index tables to the translator party.
  auto send_from_source = [&](const std::string& source, SourceDelivery* d,
                              uint8_t which) {
    BinaryWriter w;
    w.WriteU8(which);
    d->encrypted.name = source;
    w.WriteBytes(d->encrypted.Serialize());
    w.WriteBytes(d->sealed_blob);
    if (setting == DasTranslatorSetting::kMediator) {
      w.WriteBytes(EncodeItableBlob(d->itables, Schema()));
    } else {
      w.WriteBytes(Bytes());
    }
    bus.Send(source, mediator, kMsgDasEncryptedResult, w.TakeBuffer());
  };
  send_from_source(state.plan.source1, &d1, 1);
  send_from_source(state.plan.source2, &d2, 2);

  // Source setting: S1 ships its index tables to S2 over the secure
  // source-to-source channel; S2 runs the translator and sends qS to the
  // mediator.
  if (setting == DasTranslatorSetting::kSource) {
    bus.Send(state.plan.source1, state.plan.source2, kMsgDasSourceItables,
             EncodeItableBlob(d1.itables, state.r1.schema()));
    SECMED_ASSIGN_OR_RETURN(
        Message msg,
        bus.ReceiveOfType(state.plan.source2, kMsgDasSourceItables));
    Schema peer_schema;
    std::vector<IndexTable> peer_itables;
    SECMED_RETURN_IF_ERROR(
        DecodeItableBlob(msg.payload, &peer_schema, &peer_itables));
    DasServerQuery qs = TranslateToServerQuery(peer_itables, d2.itables);
    bus.Send(state.plan.source2, mediator, kMsgDasServerQuery, qs.Serialize());
  }

  // Step 4 at the mediator: keep R1S/R2S; route per setting.
  DasRelation r1s, r2s;
  std::vector<IndexTable> med_itables1, med_itables2;
  Bytes sealed1, sealed2;
  obs::Span route_span =
      obs::StartSpan(ctx->obs, "mediator", "delivery", "das.route");
  for (int i = 0; i < 2; ++i) {
    SECMED_ASSIGN_OR_RETURN(Message msg,
                            bus.ReceiveOfType(mediator, kMsgDasEncryptedResult));
    BinaryReader r(msg.payload);
    SECMED_ASSIGN_OR_RETURN(uint8_t which, r.ReadU8());
    SECMED_ASSIGN_OR_RETURN(Bytes rel_raw, r.ReadBytes());
    SECMED_ASSIGN_OR_RETURN(Bytes sealed, r.ReadBytes());
    SECMED_ASSIGN_OR_RETURN(Bytes clear_itables, r.ReadBytes());
    SECMED_ASSIGN_OR_RETURN(DasRelation rel, DasRelation::Deserialize(rel_raw));
    if (which == 1) {
      r1s = std::move(rel);
      sealed1 = std::move(sealed);
    } else {
      r2s = std::move(rel);
      sealed2 = std::move(sealed);
    }
    if (setting == DasTranslatorSetting::kMediator) {
      Schema ignored;
      std::vector<IndexTable>* dst =
          which == 1 ? &med_itables1 : &med_itables2;
      SECMED_RETURN_IF_ERROR(DecodeItableBlob(clear_itables, &ignored, dst));
    }
    if (setting == DasTranslatorSetting::kClient) {
      BinaryWriter w;
      w.WriteU8(which);
      w.WriteBytes(which == 1 ? sealed1 : sealed2);
      bus.Send(mediator, client, kMsgDasIndexTable, w.TakeBuffer());
    }
  }
  route_span.End();

  // The server query, produced by the party the setting selects.
  Schema schema1, schema2;  // learned by the client before post-processing
  if (setting == DasTranslatorSetting::kClient) {
    // Step 5 at the client: decrypt index tables, translate, reply with qS.
    obs::Span span =
        obs::StartSpan(ctx->obs, "client", "delivery", "das.translate");
    std::vector<IndexTable> itables1, itables2;
    for (int i = 0; i < 2; ++i) {
      SECMED_ASSIGN_OR_RETURN(Message msg,
                              bus.ReceiveOfType(client, kMsgDasIndexTable));
      BinaryReader r(msg.payload);
      SECMED_ASSIGN_OR_RETURN(uint8_t which, r.ReadU8());
      SECMED_ASSIGN_OR_RETURN(Bytes blob, r.ReadBytes());
      SECMED_ASSIGN_OR_RETURN(Bytes plain, ClientHybridDecrypt(ctx, blob));
      Schema* schema = which == 1 ? &schema1 : &schema2;
      std::vector<IndexTable>* itables = which == 1 ? &itables1 : &itables2;
      SECMED_RETURN_IF_ERROR(DecodeItableBlob(plain, schema, itables));
    }
    DasServerQuery server_query = TranslateToServerQuery(itables1, itables2);
    bus.Send(client, mediator, kMsgDasServerQuery, server_query.Serialize());
  }

  // Step 6 at the mediator: obtain qS (received or self-translated) and
  // evaluate it over the encrypted relations.
  {
    obs::Span span =
        obs::StartSpan(ctx->obs, "mediator", "delivery", "das.evaluate");
    DasServerQuery query;
    if (setting == DasTranslatorSetting::kMediator) {
      query = TranslateToServerQuery(med_itables1, med_itables2);
    } else {
      SECMED_ASSIGN_OR_RETURN(Message msg,
                              bus.ReceiveOfType(mediator, kMsgDasServerQuery));
      SECMED_ASSIGN_OR_RETURN(query,
                              DasServerQuery::Deserialize(msg.payload));
    }
    DasServerResult rc = EvaluateServerQuery(r1s, r2s, query);
    BinaryWriter w;
    if (setting != DasTranslatorSetting::kClient) {
      // The client has not seen the schemas yet; attach the sealed blobs.
      w.WriteBytes(sealed1);
      w.WriteBytes(sealed2);
    }
    w.WriteBytes(rc.Serialize());
    bus.Send(mediator, client, kMsgDasServerResult, w.TakeBuffer());
  }

  // Step 7 at the client: decrypt RC and apply the client query qC.
  SECMED_ASSIGN_OR_RETURN(Message msg,
                          bus.ReceiveOfType(client, kMsgDasServerResult));
  BinaryReader r(msg.payload);
  if (setting != DasTranslatorSetting::kClient) {
    for (int which = 1; which <= 2; ++which) {
      SECMED_ASSIGN_OR_RETURN(Bytes blob, r.ReadBytes());
      SECMED_ASSIGN_OR_RETURN(Bytes plain, ClientHybridDecrypt(ctx, blob));
      BinaryReader sr(plain);
      SECMED_ASSIGN_OR_RETURN(Schema schema, Schema::DecodeFrom(&sr));
      (which == 1 ? schema1 : schema2) = std::move(schema);
    }
  }
  SECMED_ASSIGN_OR_RETURN(Bytes rc_raw, r.ReadBytes());
  SECMED_ASSIGN_OR_RETURN(DasServerResult rc,
                          DasServerResult::Deserialize(rc_raw));
  last_server_result_size_ = rc.size();
  obs::Span span =
      obs::StartSpan(ctx->obs, "client", "post", "das.apply_client_query");
  span.AddItems(rc.size());
  // Per-etuple hybrid decryption through the prepared cache: warm
  // sessions see the same ciphertexts (the delivery is cache-derived)
  // and skip the RSA work, which dominates the DAS client cost.
  return ApplyClientQuery(rc, schema1, schema2, join_attrs,
                          [ctx](const Bytes& etuple) {
                            return ClientHybridDecrypt(ctx, etuple);
                          });
}

}  // namespace secmed
