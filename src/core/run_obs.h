#ifndef SECMED_CORE_RUN_OBS_H_
#define SECMED_CORE_RUN_OBS_H_

#include <string>
#include <vector>

#include "core/remote.h"
#include "net/transport.h"
#include "obs/report.h"

namespace secmed {

/// Traffic rows for the obs run report, copied verbatim from
/// `Transport::StatsOf` for the given parties — by construction the
/// report's per-party byte totals equal what the transport counted.
std::vector<obs::PartyTraffic> PartyTrafficRows(
    const Transport& transport, const std::vector<std::string>& parties);

/// Same rows from a RunReport's embedded statistics (used by drive mode,
/// where the daemons' reports are the only view of the remote runs).
std::vector<obs::PartyTraffic> PartyTrafficRows(const RunReport& report);

/// Writes the run artifacts a `--trace-out` / `--report-out` pair asks
/// for: the Chrome trace JSON of `scope`'s spans and/or the structured
/// run report (JSON). Empty paths are skipped. Returns a Status carrying
/// the first file error. `process_name` (e.g. the hosted party set)
/// labels the trace's process lane and, with the scope's trace id,
/// lets `secmedctl trace-merge` splice per-party traces into one view.
Status WriteObsArtifacts(const obs::Scope& scope, const obs::RunInfo& info,
                         const std::vector<obs::PartyTraffic>& traffic,
                         const std::string& trace_path,
                         const std::string& report_path,
                         const std::string& process_name = "");

}  // namespace secmed

#endif  // SECMED_CORE_RUN_OBS_H_
