#ifndef SECMED_CORE_DAS_PROTOCOL_H_
#define SECMED_CORE_DAS_PROTOCOL_H_

#include "core/protocol.h"
#include "das/partition.h"

namespace secmed {

/// Placement of the DAS query translator (Section 3.1): "In principle, it
/// is possible to place the DAS query translator in any layer of the
/// mediation system. We call the resulting settings mediator setting,
/// source setting and client setting." The paper details only the client
/// setting; this library implements all three:
///
///  - kClient (default, Listing 2): index tables travel encrypted to the
///    client, which builds qS. The mediator never sees partition ranges.
///  - kSource: datasource S2 receives S1's index table and runs the
///    translator; the mediator still sees no ranges, the client saves one
///    round (interacts once), but the *sources* learn each other's
///    partition ranges.
///  - kMediator: the index tables reach the mediator in the clear and it
///    translates itself — the fastest setting, but exactly what Section 6
///    warns about: "the mediator would know the partition ranges and thus
///    be able to approximate the join attribute value for each tuple."
enum class DasTranslatorSetting { kClient, kSource, kMediator };

const char* DasTranslatorSettingToString(DasTranslatorSetting s);

/// Options of the DAS delivery phase.
struct DasProtocolOptions {
  /// How the datasources partition domactive(Ajoin).
  PartitionStrategy strategy = PartitionStrategy::kEquiDepth;
  /// Target number of partitions (ignored for kSingleton). Fewer
  /// partitions → larger superset at the client but less inference
  /// exposure at the mediator (Section 6).
  size_t num_partitions = 4;
  /// Mixed DAS model (Mykletun/Tsudik, Related Work [18]): the named
  /// non-sensitive columns additionally travel in the clear beside the
  /// etuples — VISIBLE TO THE MEDIATOR. Columns absent from a relation's
  /// schema are skipped for that relation. Empty = fully encrypted (the
  /// paper's model).
  std::vector<std::string> plaintext_columns;
  /// Where the query translator runs (see DasTranslatorSetting).
  DasTranslatorSetting translator = DasTranslatorSetting::kClient;
};

/// Secure mediation with the database-as-a-service model, client setting
/// (Section 3.1, Listing 2).
///
/// Delivery phase:
///  1. Each Si partitions domactive(Ajoin) into ITable_Ri.Ajoin.
///  2. Si DAS-encrypts Ri (hybrid etuples + index values) and encrypts the
///     index table so only the client can read it.
///  3. Si sends <RiS, encrypt(ITable)> to the mediator.
///  4. The mediator forwards the encrypted index tables to the client.
///  5. The client decrypts them and translates q into the server query qS
///     (overlapping partition pairs) and client query qC.
///  6. The mediator evaluates qS over R1S × R2S and returns RC.
///  7. The client decrypts RC and applies qC, yielding the global result.
///
/// The client receives a *superset* of the global result; the mediator
/// learns |Ri| and |RC| but no plaintext (Table 1).
class DasJoinProtocol : public JoinProtocol {
 public:
  explicit DasJoinProtocol(DasProtocolOptions options = {})
      : options_(options) {}

  std::string name() const override { return "das"; }

  Result<Relation> Run(const std::string& sql, ProtocolContext* ctx) override;

  /// Size of the server result RC of the last run — the superset the
  /// client had to post-process (reported next to the true result size by
  /// the benchmarks).
  size_t last_server_result_size() const { return last_server_result_size_; }

 private:
  DasProtocolOptions options_;
  size_t last_server_result_size_ = 0;
};

}  // namespace secmed

#endif  // SECMED_CORE_DAS_PROTOCOL_H_
