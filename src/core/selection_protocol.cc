#include "core/selection_protocol.h"

#include "crypto/hybrid.h"
#include "das/searchable.h"
#include "relational/sql.h"
#include "util/serialize.h"

namespace secmed {

namespace {
constexpr char kMsgSelQuery[] = "sel_query";
constexpr char kMsgSelPartial[] = "sel_partial_query";
constexpr char kMsgSelEncrypted[] = "sel_encrypted_relation";
constexpr char kMsgSelKeys[] = "sel_search_keys";
constexpr char kMsgSelToken[] = "sel_token";
constexpr char kMsgSelResult[] = "sel_result";
}  // namespace

Result<Relation> SelectionProtocol::Run(const std::string& sql,
                                        ProtocolContext* ctx) {
  if (ctx == nullptr || ctx->client == nullptr || ctx->mediator == nullptr ||
      ctx->bus == nullptr || ctx->rng == nullptr) {
    return Status::InvalidArgument("incomplete protocol context");
  }
  Transport& bus = *ctx->bus;
  const std::string& mediator = ctx->mediator->name();
  const std::string& client = ctx->client->name();

  // Client-side planning: parse the query locally and *redact* the WHERE
  // clause before anything leaves the client — the selection constants
  // must never reach the mediator in the clear (it will only ever see the
  // search tokens derived from them).
  std::vector<std::pair<std::string, Value>> equalities;
  std::string redacted_sql;
  {
    SECMED_ASSIGN_OR_RETURN(ParsedQuery query, ParseSql(sql));
    if (!query.joins.empty()) {
      return Status::Unimplemented(
          "selection protocol handles single-table queries");
    }
    if (!query.select_columns.empty() || query.HasAggregates()) {
      return Status::Unimplemented(
          "selection protocol supports SELECT *; project client-side");
    }
    if (!query.where || query.where->kind() == Predicate::Kind::kTrue) {
      return Status::InvalidArgument(
          "selection protocol requires a WHERE condition");
    }
    SECMED_RETURN_IF_ERROR(
        ExtractEqualityConditions(query.where, &equalities));
    redacted_sql = "SELECT * FROM " + query.from.name;
  }

  // Request phase (Listing 1 shape, single datasource): client sends the
  // redacted query with credentials; the mediator localizes the source and
  // forwards the partial query.
  {
    BinaryWriter w;
    w.WriteString(redacted_sql);
    w.WriteU32(static_cast<uint32_t>(ctx->client->credentials().size()));
    for (const Credential& c : ctx->client->credentials()) {
      w.WriteBytes(c.Serialize());
    }
    bus.Send(client, mediator, kMsgSelQuery, w.TakeBuffer());
  }

  Mediator::SelectionQueryPlan plan;
  std::vector<Credential> credentials;
  {
    SECMED_ASSIGN_OR_RETURN(Message msg, bus.ReceiveOfType(mediator, kMsgSelQuery));
    BinaryReader r(msg.payload);
    SECMED_ASSIGN_OR_RETURN(std::string received_sql, r.ReadString());
    SECMED_ASSIGN_OR_RETURN(uint32_t n, r.ReadU32());
    for (uint32_t i = 0; i < n; ++i) {
      SECMED_ASSIGN_OR_RETURN(Bytes raw, r.ReadBytes());
      SECMED_ASSIGN_OR_RETURN(Credential c, Credential::Deserialize(raw));
      credentials.push_back(std::move(c));
    }
    SECMED_ASSIGN_OR_RETURN(plan,
                            ctx->mediator->PlanSelectionQuery(received_sql));
    BinaryWriter w;
    w.WriteString(plan.partial_query);
    w.WriteU32(static_cast<uint32_t>(credentials.size()));
    for (const Credential& c : credentials) w.WriteBytes(c.Serialize());
    bus.Send(mediator, plan.source, kMsgSelPartial, w.TakeBuffer());
  }

  // Datasource: execute under policy, encrypt searchably, send the
  // relation to the mediator and the sealed keys (via the mediator) to the
  // client.
  {
    auto it = ctx->sources.find(plan.source);
    if (it == ctx->sources.end()) {
      return Status::NotFound("datasource " + plan.source + " not in context");
    }
    DataSource* source = it->second;
    SECMED_ASSIGN_OR_RETURN(Message msg,
                            bus.ReceiveOfType(plan.source, kMsgSelPartial));
    BinaryReader r(msg.payload);
    SECMED_ASSIGN_OR_RETURN(std::string partial_sql, r.ReadString());
    SECMED_ASSIGN_OR_RETURN(uint32_t n, r.ReadU32());
    std::vector<Credential> creds;
    for (uint32_t i = 0; i < n; ++i) {
      SECMED_ASSIGN_OR_RETURN(Bytes raw, r.ReadBytes());
      SECMED_ASSIGN_OR_RETURN(Credential c, Credential::Deserialize(raw));
      creds.push_back(std::move(c));
    }
    SECMED_ASSIGN_OR_RETURN(Relation partial,
                            source->ExecutePartialQuery(partial_sql, creds));
    SECMED_ASSIGN_OR_RETURN(RsaPublicKey client_key,
                            source->ClientKeyFrom(creds));

    SearchKeys keys = GenerateSearchKeys(partial.schema(), ctx->rng);
    SECMED_ASSIGN_OR_RETURN(
        SearchableRelation encrypted,
        SearchableEncrypt(partial, keys, client_key, ctx->rng));
    bus.Send(plan.source, mediator, kMsgSelEncrypted, encrypted.Serialize());

    BinaryWriter kw;
    partial.schema().EncodeTo(&kw);
    kw.WriteBytes(keys.Serialize());
    SECMED_ASSIGN_OR_RETURN(Bytes sealed_keys,
                            HybridEncrypt(client_key, kw.buffer(), ctx->rng));
    bus.Send(plan.source, mediator, kMsgSelKeys, sealed_keys);
  }

  // Mediator holds the encrypted relation, forwards the sealed keys.
  SearchableRelation encrypted;
  {
    SECMED_ASSIGN_OR_RETURN(Message msg,
                            bus.ReceiveOfType(mediator, kMsgSelEncrypted));
    SECMED_ASSIGN_OR_RETURN(encrypted,
                            SearchableRelation::Deserialize(msg.payload));
    SECMED_ASSIGN_OR_RETURN(Message keys_msg,
                            bus.ReceiveOfType(mediator, kMsgSelKeys));
    bus.Send(mediator, client, kMsgSelKeys, keys_msg.payload);
  }

  // Client: recover the keys, derive the token from the WHERE condition.
  Schema schema;
  {
    SECMED_ASSIGN_OR_RETURN(Message msg, bus.ReceiveOfType(client, kMsgSelKeys));
    SECMED_ASSIGN_OR_RETURN(
        Bytes plain, HybridDecrypt(ctx->client->private_key(), msg.payload));
    BinaryReader r(plain);
    SECMED_ASSIGN_OR_RETURN(schema, Schema::DecodeFrom(&r));
    SECMED_ASSIGN_OR_RETURN(Bytes keys_raw, r.ReadBytes());
    SECMED_ASSIGN_OR_RETURN(SearchKeys keys, SearchKeys::Deserialize(keys_raw));
    SECMED_ASSIGN_OR_RETURN(SelectionToken token,
                            MakeSelectionToken(keys, schema, equalities));
    bus.Send(client, mediator, kMsgSelToken, token.Serialize());
  }

  // Mediator: evaluate the token and return the exact matching rows.
  {
    SECMED_ASSIGN_OR_RETURN(Message msg, bus.ReceiveOfType(mediator, kMsgSelToken));
    SECMED_ASSIGN_OR_RETURN(SelectionToken token,
                            SelectionToken::Deserialize(msg.payload));
    SECMED_ASSIGN_OR_RETURN(std::vector<Bytes> rows,
                            EvaluateSelection(encrypted, token));
    BinaryWriter w;
    w.WriteU32(static_cast<uint32_t>(rows.size()));
    for (const Bytes& row : rows) w.WriteBytes(row);
    bus.Send(mediator, client, kMsgSelResult, w.TakeBuffer());
  }

  // Client: open the rows.
  SECMED_ASSIGN_OR_RETURN(Message msg, bus.ReceiveOfType(client, kMsgSelResult));
  BinaryReader r(msg.payload);
  SECMED_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
  std::vector<Bytes> sealed;
  sealed.reserve(std::min<size_t>(count, r.remaining()));
  for (uint32_t i = 0; i < count; ++i) {
    SECMED_ASSIGN_OR_RETURN(Bytes row, r.ReadBytes());
    sealed.push_back(std::move(row));
  }
  last_selected_rows_ = sealed.size();
  return OpenSelection(sealed, schema, ctx->client->private_key());
}

}  // namespace secmed
