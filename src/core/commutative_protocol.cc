#include "core/commutative_protocol.h"

#include <algorithm>
#include <map>
#include <memory>

#include "core/prepared.h"
#include "crypto/commutative.h"
#include "crypto/group_params.h"
#include "crypto/hybrid.h"
#include "util/parallel.h"
#include "util/serialize.h"

namespace secmed {

namespace {
constexpr char kMsgCommMessageSet[] = "comm_message_set";
constexpr char kMsgCommExchange[] = "comm_exchange";
constexpr char kMsgCommDoubleEncrypted[] = "comm_double_encrypted";
constexpr char kMsgCommResult[] = "comm_result";

/// Prepared delivery state of one source (steps 1-3): the commutative
/// key and the serialized message set minus its source tag. Both are
/// derived from the entry's prepare RNG, so the key a warm session
/// double-encrypts with matches the ciphertexts of the cached payload.
struct PreparedCommDeliver : PreparedValue {
  CommutativeKey key;
  Bytes payload;
  uint32_t entries = 0;

  PreparedCommDeliver(CommutativeKey k, Bytes p, uint32_t n)
      : key(std::move(k)), payload(std::move(p)), entries(n) {}
  size_t ByteSize() const override {
    return payload.size() + 4 * ((key.group().p().BitLength() + 7) / 8);
  }
};
}  // namespace

Result<Relation> CommutativeJoinProtocol::Run(const std::string& sql,
                                              ProtocolContext* ctx) {
  SECMED_ASSIGN_OR_RETURN(RequestState state, RunRequestPhase(sql, ctx));
  SECMED_ASSIGN_OR_RETURN(QrGroup group, StandardGroup(options_.group_bits));
  const size_t threads = ResolveThreads(ctx->threads);
  Transport& bus = *ctx->bus;
  const std::string& mediator = ctx->mediator->name();
  const std::string& client = ctx->client->name();
  const size_t group_bytes = (group.p().BitLength() + 7) / 8;

  // Delivery steps 1-3 at each source: encrypt hash values with a fresh
  // commutative key, hybrid-encrypt the tuple sets, and send the message
  // set Mi (hash part + payload ID; footnote-1 mode keeps payloads at the
  // mediator) together with the encrypted schema metadata.
  struct SourceState {
    CommutativeKey key;
    std::string name;
  };
  std::vector<SourceState> source_states;
  auto source_deliver = [&](const std::string& source, const Relation& rel,
                            const RsaPublicKey& client_key,
                            uint8_t which) -> Status {
    const char* role = which == 1 ? "source1" : "source2";
    obs::Span span =
        obs::StartSpan(ctx->obs, role, "delivery", "comm.deliver");

    // Steps 1-3 as a pure function of (relation, join attrs, group,
    // client key) and the supplied randomness: generate the commutative
    // key, encrypt the hashed join values, seal the tuple sets and the
    // schema, and serialize everything after the source tag.
    auto compute = [&](RandomSource* rng)
        -> Result<std::shared_ptr<const PreparedCommDeliver>> {
      CommutativeKey key = CommutativeKey::Generate(group, rng);
      SECMED_ASSIGN_OR_RETURN(
          std::vector<size_t> join_idx,
          JoinColumnIndexes(rel.schema(), state.plan.join_attributes));
      std::map<Bytes, Relation> tuple_sets =
          GroupTuplesByJoinValue(rel, join_idx);

      // One commutative exponentiation plus one hybrid seal per tuple set —
      // all independent, spread across the thread pool with per-item RNG
      // forks. Entries afterwards sorted by ciphertext (arbitrary order
      // independent of the plaintext insertion order).
      struct DeliverItem {
        const Bytes* value_enc;
        const Relation* tuples;
      };
      std::vector<DeliverItem> items;
      items.reserve(tuple_sets.size());
      for (const auto& [value_enc, tuples] : tuple_sets) {
        items.push_back(DeliverItem{&value_enc, &tuples});
      }
      std::vector<std::unique_ptr<RandomSource>> rngs =
          ForkN(rng, items.size());
      std::vector<std::pair<Bytes, Bytes>> entries(  // (f_ei(h(a)), enc(Tup))
          items.size());
      std::string loop_label =
          obs::SpanName(role, "delivery", "comm.encrypt_sets");
      SECMED_RETURN_IF_ERROR(ParallelForStatus(
          items.size(), threads, [&](size_t i) -> Status {
            BigInt hashed = group.HashToGroup(*items[i].value_enc);
            Bytes cipher = key.Encrypt(hashed).ToBytes(group_bytes);
            SECMED_ASSIGN_OR_RETURN(
                Bytes enc_tup, HybridEncrypt(client_key,
                                             items[i].tuples->Serialize(),
                                             rngs[i].get()));
            entries[i] = {std::move(cipher), std::move(enc_tup)};
            return Status::OK();
          }, ctx->obs, loop_label.c_str()));
      std::sort(entries.begin(), entries.end());

      SECMED_ASSIGN_OR_RETURN(
          Bytes schema_blob,
          HybridEncrypt(client_key, [&] {
            BinaryWriter w;
            rel.schema().EncodeTo(&w);
            return w.TakeBuffer();
          }(), rng));

      BinaryWriter w;
      w.WriteBytes(schema_blob);
      w.WriteU32(static_cast<uint32_t>(entries.size()));
      for (const auto& [cipher, enc_tup] : entries) {
        w.WriteBytes(cipher);
        w.WriteBytes(enc_tup);
      }
      return std::make_shared<const PreparedCommDeliver>(
          std::move(key), w.TakeBuffer(),
          static_cast<uint32_t>(entries.size()));
    };

    std::shared_ptr<const PreparedCommDeliver> prepared;
    if (ctx->prepared != nullptr) {
      BinaryWriter mat;
      mat.WriteU32(static_cast<uint32_t>(options_.group_bits));
      mat.WriteU32(static_cast<uint32_t>(state.plan.join_attributes.size()));
      for (const std::string& a : state.plan.join_attributes) {
        mat.WriteString(a);
      }
      mat.WriteBytes(client_key.Serialize());
      mat.WriteBytes(rel.Serialize());
      std::string cache_key =
          PreparedKey("comm.deliver", source,
                      SourceCatalogVersion(ctx, source), mat.TakeBuffer());
      SECMED_ASSIGN_OR_RETURN(
          prepared, GetOrCompute<PreparedCommDeliver>(ctx->prepared,
                                                      cache_key, compute));
    } else {
      SECMED_ASSIGN_OR_RETURN(prepared, compute(ctx->rng));
    }

    BinaryWriter w;
    w.WriteU8(which);
    w.WriteRaw(prepared->payload);
    bus.Send(source, mediator, kMsgCommMessageSet, w.TakeBuffer());
    source_states.push_back(SourceState{prepared->key, source});
    span.AddItems(prepared->entries);
    return Status::OK();
  };
  SECMED_RETURN_IF_ERROR(
      source_deliver(state.plan.source1, state.r1, state.client_key1, 1));
  SECMED_RETURN_IF_ERROR(
      source_deliver(state.plan.source2, state.r2, state.client_key2, 2));

  // Step 4 at the mediator: receive M1, M2; store payloads; exchange the
  // message sets between the sources. In the optimized mode only
  // fixed-length IDs travel with the encrypted hash values.
  struct MediatorEntry {
    Bytes single_cipher;
    Bytes enc_tup;
  };
  std::vector<std::vector<MediatorEntry>> med_entries(3);  // by `which`
  std::vector<Bytes> schema_blobs(3);
  obs::Span exchange_span =
      obs::StartSpan(ctx->obs, "mediator", "delivery", "comm.exchange");
  for (int i = 0; i < 2; ++i) {
    SECMED_ASSIGN_OR_RETURN(Message msg,
                            bus.ReceiveOfType(mediator, kMsgCommMessageSet));
    BinaryReader r(msg.payload);
    SECMED_ASSIGN_OR_RETURN(uint8_t which, r.ReadU8());
    if (which != 1 && which != 2) {
      return Status::ProtocolError("bad source tag in message set");
    }
    SECMED_ASSIGN_OR_RETURN(schema_blobs[which], r.ReadBytes());
    SECMED_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
    for (uint32_t k = 0; k < count; ++k) {
      MediatorEntry e;
      SECMED_ASSIGN_OR_RETURN(e.single_cipher, r.ReadBytes());
      SECMED_ASSIGN_OR_RETURN(e.enc_tup, r.ReadBytes());
      med_entries[which].push_back(std::move(e));
    }
  }
  auto forward_to = [&](uint8_t from_which, const std::string& to_source) {
    BinaryWriter w;
    w.WriteU8(from_which);
    w.WriteU32(static_cast<uint32_t>(med_entries[from_which].size()));
    for (size_t id = 0; id < med_entries[from_which].size(); ++id) {
      w.WriteBytes(med_entries[from_which][id].single_cipher);
      if (options_.forward_payloads) {
        w.WriteBytes(med_entries[from_which][id].enc_tup);
      } else {
        w.WriteU64(id);  // fixed-length ID instead of the payload
      }
    }
    bus.Send(mediator, to_source, kMsgCommExchange, w.TakeBuffer());
  };
  forward_to(1, state.plan.source2);
  forward_to(2, state.plan.source1);
  exchange_span.End();

  // Steps 5/6 at each source: apply the own key on top of the received
  // single ciphertexts and return the double ciphertexts.
  auto source_double = [&](const SourceState& ss, const char* role) -> Status {
    obs::Span span =
        obs::StartSpan(ctx->obs, role, "delivery", "comm.double_encrypt");
    SECMED_ASSIGN_OR_RETURN(Message msg,
                            bus.ReceiveOfType(ss.name, kMsgCommExchange));

    // Double encryption is deterministic in (own exponent, received
    // message), so the whole reply payload is cacheable as one blob.
    size_t count_out = 0;
    auto compute = [&](RandomSource*)
        -> Result<std::shared_ptr<const PreparedBlob>> {
      BinaryReader r(msg.payload);
      SECMED_ASSIGN_OR_RETURN(uint8_t origin, r.ReadU8());
      SECMED_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
      // Parse serially, exponentiate in parallel (pure compute, no RNG),
      // serialize serially.
      std::vector<Bytes> singles(count);
      std::vector<Bytes> enc_tups(options_.forward_payloads ? count : 0);
      std::vector<uint64_t> ids(options_.forward_payloads ? 0 : count);
      for (uint32_t k = 0; k < count; ++k) {
        SECMED_ASSIGN_OR_RETURN(singles[k], r.ReadBytes());
        if (options_.forward_payloads) {
          SECMED_ASSIGN_OR_RETURN(enc_tups[k], r.ReadBytes());
        } else {
          SECMED_ASSIGN_OR_RETURN(ids[k], r.ReadU64());
        }
      }
      std::string loop_label =
          obs::SpanName(role, "delivery", "comm.double_encrypt");
      std::vector<BigInt> xs(count);
      for (uint32_t k = 0; k < count; ++k) {
        xs[k] = BigInt::FromBytes(singles[k]);
      }
      std::vector<BigInt> enc =
          ss.key.EncryptMany(xs, threads, ctx->obs, loop_label.c_str());
      std::vector<Bytes> doubled(count);
      for (uint32_t k = 0; k < count; ++k) {
        doubled[k] = enc[k].ToBytes(group_bytes);
      }
      count_out = count;
      BinaryWriter w;
      w.WriteU8(origin);
      w.WriteU32(count);
      for (uint32_t k = 0; k < count; ++k) {
        w.WriteBytes(doubled[k]);
        if (options_.forward_payloads) {
          w.WriteBytes(enc_tups[k]);
        } else {
          w.WriteU64(ids[k]);
        }
      }
      return std::make_shared<const PreparedBlob>(w.TakeBuffer());
    };

    std::shared_ptr<const PreparedBlob> reply;
    if (ctx->prepared != nullptr) {
      BinaryWriter mat;
      mat.WriteBytes(ss.key.exponent().ToBytes());
      mat.WriteBytes(msg.payload);
      std::string cache_key =
          PreparedKey("comm.double", ss.name,
                      SourceCatalogVersion(ctx, ss.name), mat.TakeBuffer());
      SECMED_ASSIGN_OR_RETURN(
          reply, GetOrCompute<PreparedBlob>(ctx->prepared, cache_key,
                                            compute));
    } else {
      SECMED_ASSIGN_OR_RETURN(reply, compute(nullptr));
    }
    span.AddItems(count_out);
    bus.Send(ss.name, mediator, kMsgCommDoubleEncrypted, reply->bytes);
    return Status::OK();
  };
  for (size_t s = 0; s < source_states.size(); ++s) {
    SECMED_RETURN_IF_ERROR(
        source_double(source_states[s], s == 0 ? "source1" : "source2"));
  }

  // Step 7 at the mediator: match equal double ciphertexts and combine the
  // corresponding encrypted tuple sets into the encrypted global result.
  obs::Span match_span =
      obs::StartSpan(ctx->obs, "mediator", "delivery", "comm.match");
  std::map<Bytes, std::pair<std::vector<Bytes>, std::vector<Bytes>>> matches;
  for (int i = 0; i < 2; ++i) {
    SECMED_ASSIGN_OR_RETURN(
        Message msg, bus.ReceiveOfType(mediator, kMsgCommDoubleEncrypted));
    BinaryReader r(msg.payload);
    SECMED_ASSIGN_OR_RETURN(uint8_t origin, r.ReadU8());
    SECMED_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
    for (uint32_t k = 0; k < count; ++k) {
      SECMED_ASSIGN_OR_RETURN(Bytes doubled, r.ReadBytes());
      Bytes enc_tup;
      if (options_.forward_payloads) {
        SECMED_ASSIGN_OR_RETURN(enc_tup, r.ReadBytes());
      } else {
        SECMED_ASSIGN_OR_RETURN(uint64_t id, r.ReadU64());
        if (id >= med_entries[origin].size()) {
          return Status::ProtocolError("payload ID out of range");
        }
        enc_tup = med_entries[origin][id].enc_tup;
      }
      auto& slot = matches[doubled];
      (origin == 1 ? slot.first : slot.second).push_back(std::move(enc_tup));
    }
  }
  BinaryWriter result_writer;
  result_writer.WriteBytes(schema_blobs[1]);
  result_writer.WriteBytes(schema_blobs[2]);
  size_t matched = 0;
  BinaryWriter pair_writer;
  for (const auto& [doubled, slot] : matches) {
    for (const Bytes& e1 : slot.first) {
      for (const Bytes& e2 : slot.second) {
        pair_writer.WriteBytes(e1);
        pair_writer.WriteBytes(e2);
        ++matched;
      }
    }
  }
  last_intersection_size_ = matched;
  result_writer.WriteU32(static_cast<uint32_t>(matched));
  result_writer.WriteRaw(pair_writer.buffer());
  bus.Send(mediator, client, kMsgCommResult, result_writer.TakeBuffer());
  match_span.AddItems(matched);
  match_span.End();

  // Step 8 at the client: decrypt the tuple-set pairs and construct the
  // join tuples (cross product of each corresponding pair).
  obs::Span decrypt_span = obs::StartSpan(ctx->obs, "client", "post", "decrypt");
  SECMED_ASSIGN_OR_RETURN(Message msg, bus.ReceiveOfType(client, kMsgCommResult));
  BinaryReader r(msg.payload);
  Schema schema1, schema2;
  for (int which = 1; which <= 2; ++which) {
    SECMED_ASSIGN_OR_RETURN(Bytes blob, r.ReadBytes());
    SECMED_ASSIGN_OR_RETURN(Bytes plain, ClientHybridDecrypt(ctx, blob));
    BinaryReader sr(plain);
    SECMED_ASSIGN_OR_RETURN(Schema schema, Schema::DecodeFrom(&sr));
    (which == 1 ? schema1 : schema2) = std::move(schema);
  }
  SECMED_ASSIGN_OR_RETURN(
      Schema joined_schema,
      JoinedSchema(schema1, schema2, state.plan.join_attributes));
  SECMED_ASSIGN_OR_RETURN(
      std::vector<size_t> j2,
      JoinColumnIndexes(schema2, state.plan.join_attributes));

  Relation result(joined_schema);
  SECMED_ASSIGN_OR_RETURN(uint32_t pairs, r.ReadU32());
  for (uint32_t k = 0; k < pairs; ++k) {
    SECMED_ASSIGN_OR_RETURN(Bytes e1, r.ReadBytes());
    SECMED_ASSIGN_OR_RETURN(Bytes e2, r.ReadBytes());
    SECMED_ASSIGN_OR_RETURN(Bytes p1, ClientHybridDecrypt(ctx, e1));
    SECMED_ASSIGN_OR_RETURN(Bytes p2, ClientHybridDecrypt(ctx, e2));
    SECMED_ASSIGN_OR_RETURN(Relation tup1, Relation::Deserialize(p1));
    SECMED_ASSIGN_OR_RETURN(Relation tup2, Relation::Deserialize(p2));
    AppendJoinedCrossProduct(tup1, tup2, j2, &result);
  }
  decrypt_span.AddItems(pairs);
  return result;
}

}  // namespace secmed
