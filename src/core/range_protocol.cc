#include "core/range_protocol.h"

#include <limits>
#include <set>

#include "crypto/hybrid.h"
#include "das/das_relation.h"
#include "das/index_table.h"
#include "relational/algebra.h"
#include "relational/sql.h"
#include "util/parallel.h"
#include "util/serialize.h"

namespace secmed {

namespace {
constexpr char kMsgRangeQuery[] = "range_query";
constexpr char kMsgRangePartial[] = "range_partial_query";
constexpr char kMsgRangeEncrypted[] = "range_encrypted_relation";
constexpr char kMsgRangeItables[] = "range_index_tables";
constexpr char kMsgRangeBuckets[] = "range_bucket_query";
constexpr char kMsgRangeResult[] = "range_result";

// The client-side interval extracted from the WHERE clause.
struct RangeCondition {
  std::string column;
  int64_t lo = std::numeric_limits<int64_t>::min();
  int64_t hi = std::numeric_limits<int64_t>::max();
};

// Folds a conjunction of comparisons on one integer column into an
// interval [lo, hi].
Status ExtractRange(const PredicatePtr& pred, RangeCondition* range) {
  switch (pred->kind()) {
    case Predicate::Kind::kAnd:
      SECMED_RETURN_IF_ERROR(ExtractRange(pred->left(), range));
      return ExtractRange(pred->right(), range);
    case Predicate::Kind::kCompare: {
      const Predicate::Operand* col_op = nullptr;
      const Predicate::Operand* lit_op = nullptr;
      CompareOp op = pred->op();
      if (pred->lhs().is_column && !pred->rhs().is_column) {
        col_op = &pred->lhs();
        lit_op = &pred->rhs();
      } else if (!pred->lhs().is_column && pred->rhs().is_column) {
        col_op = &pred->rhs();
        lit_op = &pred->lhs();
        // Mirror the operator: lit < col means col > lit.
        switch (op) {
          case CompareOp::kLt: op = CompareOp::kGt; break;
          case CompareOp::kLe: op = CompareOp::kGe; break;
          case CompareOp::kGt: op = CompareOp::kLt; break;
          case CompareOp::kGe: op = CompareOp::kLe; break;
          default: break;
        }
      } else {
        return Status::Unimplemented(
            "range conditions compare a column with a literal");
      }
      if (lit_op->literal.type() != ValueType::kInt64) {
        return Status::Unimplemented("range queries need integer literals");
      }
      if (!range->column.empty() && range->column != col_op->column) {
        return Status::Unimplemented(
            "range queries filter a single column; got " + range->column +
            " and " + col_op->column);
      }
      range->column = col_op->column;
      const int64_t v = lit_op->literal.as_int();
      switch (op) {
        case CompareOp::kEq:
          range->lo = std::max(range->lo, v);
          range->hi = std::min(range->hi, v);
          break;
        case CompareOp::kLt:
          range->hi = std::min(range->hi, v - 1);
          break;
        case CompareOp::kLe:
          range->hi = std::min(range->hi, v);
          break;
        case CompareOp::kGt:
          range->lo = std::max(range->lo, v + 1);
          break;
        case CompareOp::kGe:
          range->lo = std::max(range->lo, v);
          break;
        case CompareOp::kNe:
          return Status::Unimplemented("<> is not a range condition");
      }
      return Status::OK();
    }
    default:
      return Status::Unimplemented(
          "range queries support conjunctions of comparisons only");
  }
}
}  // namespace

Result<Relation> RangeSelectionProtocol::Run(const std::string& sql,
                                             ProtocolContext* ctx) {
  if (ctx == nullptr || ctx->client == nullptr || ctx->mediator == nullptr ||
      ctx->bus == nullptr || ctx->rng == nullptr) {
    return Status::InvalidArgument("incomplete protocol context");
  }
  Transport& bus = *ctx->bus;
  const std::string& mediator = ctx->mediator->name();
  const std::string& client = ctx->client->name();

  // Client-side planning: the range constants never leave the client.
  RangeCondition range;
  PredicatePtr exact_filter;
  std::string redacted_sql;
  {
    SECMED_ASSIGN_OR_RETURN(ParsedQuery query, ParseSql(sql));
    if (!query.joins.empty()) {
      return Status::Unimplemented("range protocol handles single tables");
    }
    if (!query.select_columns.empty() || query.HasAggregates()) {
      return Status::Unimplemented("range protocol supports SELECT *");
    }
    if (!query.where || query.where->kind() == Predicate::Kind::kTrue) {
      return Status::InvalidArgument("range protocol needs a WHERE clause");
    }
    SECMED_RETURN_IF_ERROR(ExtractRange(query.where, &range));
    exact_filter = query.where;
    redacted_sql = "SELECT * FROM " + query.from.name;
  }

  // Request phase.
  {
    BinaryWriter w;
    w.WriteString(redacted_sql);
    w.WriteU32(static_cast<uint32_t>(ctx->client->credentials().size()));
    for (const Credential& c : ctx->client->credentials()) {
      w.WriteBytes(c.Serialize());
    }
    bus.Send(client, mediator, kMsgRangeQuery, w.TakeBuffer());
  }
  Mediator::SelectionQueryPlan plan;
  {
    SECMED_ASSIGN_OR_RETURN(Message msg,
                            bus.ReceiveOfType(mediator, kMsgRangeQuery));
    BinaryReader r(msg.payload);
    SECMED_ASSIGN_OR_RETURN(std::string received_sql, r.ReadString());
    SECMED_ASSIGN_OR_RETURN(plan,
                            ctx->mediator->PlanSelectionQuery(received_sql));
    BinaryWriter w;
    w.WriteString(plan.partial_query);
    SECMED_ASSIGN_OR_RETURN(Bytes rest, r.ReadRaw(r.remaining()));
    w.WriteRaw(rest);  // credentials forwarded verbatim
    bus.Send(mediator, plan.source, kMsgRangePartial, w.TakeBuffer());
  }

  // Datasource: DAS-encrypt with bucketization indexes on every integer
  // column; ship the relation to the mediator, the index tables (sealed)
  // to the client.
  {
    auto it = ctx->sources.find(plan.source);
    if (it == ctx->sources.end()) {
      return Status::NotFound("datasource " + plan.source + " not in context");
    }
    DataSource* source = it->second;
    SECMED_ASSIGN_OR_RETURN(Message msg,
                            bus.ReceiveOfType(plan.source, kMsgRangePartial));
    BinaryReader r(msg.payload);
    SECMED_ASSIGN_OR_RETURN(std::string partial_sql, r.ReadString());
    SECMED_ASSIGN_OR_RETURN(uint32_t n, r.ReadU32());
    std::vector<Credential> creds;
    for (uint32_t i = 0; i < n; ++i) {
      SECMED_ASSIGN_OR_RETURN(Bytes raw, r.ReadBytes());
      SECMED_ASSIGN_OR_RETURN(Credential c, Credential::Deserialize(raw));
      creds.push_back(std::move(c));
    }
    SECMED_ASSIGN_OR_RETURN(Relation partial,
                            source->ExecutePartialQuery(partial_sql, creds));
    SECMED_ASSIGN_OR_RETURN(RsaPublicKey client_key,
                            source->ClientKeyFrom(creds));

    std::vector<std::string> indexed_columns;
    std::vector<IndexTable> itables;
    for (size_t c = 0; c < partial.schema().size(); ++c) {
      if (partial.schema().column(c).type != ValueType::kInt64) continue;
      Bytes salt = ctx->rng->Generate(16);
      SECMED_ASSIGN_OR_RETURN(
          IndexTable itable,
          IndexTable::Build(partial, partial.schema().column(c).name,
                            options_.strategy, options_.num_partitions, salt));
      indexed_columns.push_back(partial.schema().column(c).name);
      itables.push_back(std::move(itable));
    }
    if (indexed_columns.empty()) {
      return Status::InvalidArgument(
          "relation has no integer columns to index for range queries");
    }
    SECMED_ASSIGN_OR_RETURN(
        DasRelation encrypted,
        DasEncryptRelation(partial, indexed_columns, itables, client_key,
                           ctx->rng, {}, ResolveThreads(ctx->threads)));
    bus.Send(plan.source, mediator, kMsgRangeEncrypted, encrypted.Serialize());

    BinaryWriter kw;
    partial.schema().EncodeTo(&kw);
    kw.WriteU32(static_cast<uint32_t>(itables.size()));
    for (const IndexTable& itable : itables) kw.WriteBytes(itable.Serialize());
    SECMED_ASSIGN_OR_RETURN(Bytes sealed,
                            HybridEncrypt(client_key, kw.buffer(), ctx->rng));
    bus.Send(plan.source, mediator, kMsgRangeItables, sealed);
  }

  // Mediator keeps the encrypted relation, forwards the sealed tables.
  DasRelation encrypted;
  {
    SECMED_ASSIGN_OR_RETURN(Message msg,
                            bus.ReceiveOfType(mediator, kMsgRangeEncrypted));
    SECMED_ASSIGN_OR_RETURN(encrypted, DasRelation::Deserialize(msg.payload));
    SECMED_ASSIGN_OR_RETURN(Message itab,
                            bus.ReceiveOfType(mediator, kMsgRangeItables));
    bus.Send(mediator, client, kMsgRangeItables, itab.payload);
  }

  // Client: map the range onto buckets of its column's index table.
  Schema schema;
  {
    SECMED_ASSIGN_OR_RETURN(Message msg,
                            bus.ReceiveOfType(client, kMsgRangeItables));
    SECMED_ASSIGN_OR_RETURN(
        Bytes plain, HybridDecrypt(ctx->client->private_key(), msg.payload));
    BinaryReader r(plain);
    SECMED_ASSIGN_OR_RETURN(schema, Schema::DecodeFrom(&r));
    SECMED_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
    std::vector<IndexTable> itables;
    for (uint32_t i = 0; i < count; ++i) {
      SECMED_ASSIGN_OR_RETURN(Bytes raw, r.ReadBytes());
      SECMED_ASSIGN_OR_RETURN(IndexTable itable, IndexTable::Deserialize(raw));
      itables.push_back(std::move(itable));
    }
    // Locate the filtered column's table and position.
    const std::string base = Schema::BaseName(range.column);
    size_t table_pos = itables.size();
    for (size_t i = 0; i < itables.size(); ++i) {
      if (Schema::BaseName(itables[i].attribute()) == base) table_pos = i;
    }
    if (table_pos == itables.size()) {
      return Status::InvalidArgument("no index table for column " +
                                     range.column);
    }
    DasPartition probe;
    probe.is_range = true;
    probe.lo = range.lo;
    probe.hi = range.hi;
    std::set<uint64_t> buckets;
    for (const DasPartition& p : itables[table_pos].partitions()) {
      if (p.Overlaps(probe)) buckets.insert(p.index);
    }
    BinaryWriter w;
    w.WriteU32(static_cast<uint32_t>(table_pos));
    w.WriteU32(static_cast<uint32_t>(buckets.size()));
    for (uint64_t b : buckets) w.WriteU64(b);
    bus.Send(client, mediator, kMsgRangeBuckets, w.TakeBuffer());
  }

  // Mediator: return every etuple whose index value for that column is in
  // the requested bucket set.
  {
    SECMED_ASSIGN_OR_RETURN(Message msg,
                            bus.ReceiveOfType(mediator, kMsgRangeBuckets));
    BinaryReader r(msg.payload);
    SECMED_ASSIGN_OR_RETURN(uint32_t pos, r.ReadU32());
    SECMED_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
    std::set<uint64_t> buckets;
    for (uint32_t i = 0; i < count; ++i) {
      SECMED_ASSIGN_OR_RETURN(uint64_t b, r.ReadU64());
      buckets.insert(b);
    }
    BinaryWriter w;
    uint32_t selected = 0;
    BinaryWriter rows;
    for (const DasTuple& t : encrypted.tuples) {
      if (pos >= t.join_indexes.size()) continue;
      if (buckets.count(t.join_indexes[pos]) == 0) continue;
      rows.WriteBytes(t.etuple);
      ++selected;
    }
    w.WriteU32(selected);
    w.WriteRaw(rows.buffer());
    bus.Send(mediator, client, kMsgRangeResult, w.TakeBuffer());
  }

  // Client: decrypt the superset, apply the exact predicate.
  SECMED_ASSIGN_OR_RETURN(Message msg,
                          bus.ReceiveOfType(client, kMsgRangeResult));
  BinaryReader r(msg.payload);
  SECMED_ASSIGN_OR_RETURN(uint32_t count, r.ReadU32());
  Relation superset(schema);
  for (uint32_t i = 0; i < count; ++i) {
    SECMED_ASSIGN_OR_RETURN(Bytes sealed, r.ReadBytes());
    SECMED_ASSIGN_OR_RETURN(Bytes plain,
                            HybridDecrypt(ctx->client->private_key(), sealed));
    SECMED_ASSIGN_OR_RETURN(Tuple t, DecodeTuple(plain));
    SECMED_RETURN_IF_ERROR(superset.Append(std::move(t)));
  }
  last_superset_size_ = superset.size();
  return Select(superset, exact_filter);
}

}  // namespace secmed
