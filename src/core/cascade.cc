#include "core/cascade.h"

#include <set>

#include "relational/algebra.h"
#include "relational/sql.h"

namespace secmed {

Result<Relation> UnqualifyRelation(const Relation& rel) {
  std::vector<Column> cols;
  std::set<std::string> seen;
  for (const Column& c : rel.schema().columns()) {
    std::string base = Schema::BaseName(c.name);
    if (!seen.insert(base).second) {
      return Status::InvalidArgument(
          "column name collision after unqualify: " + base +
          "; rename columns before cascading");
    }
    cols.push_back({std::move(base), c.type});
  }
  return Relation(Schema(std::move(cols)), rel.tuples());
}

Result<Relation> CascadeExecutor::Run(const std::string& sql,
                                      ProtocolContext* ctx) {
  if (ctx == nullptr || ctx->client == nullptr || ctx->mediator == nullptr) {
    return Status::InvalidArgument("incomplete protocol context");
  }
  SECMED_ASSIGN_OR_RETURN(ParsedQuery query, ParseSql(sql));
  if (query.joins.empty()) {
    return Status::Unimplemented(
        "cascade executor mediates join queries; single-table queries go "
        "directly to the owning datasource");
  }

  // State of the running cascade: the current left-hand side. Starts as
  // the FROM table at its original datasource; after the first level it is
  // the intermediate result held by a cascade datasource.
  std::string current_table = query.from.name;

  // Owned per-level infrastructure. Objects must outlive the protocol runs
  // that reference them.
  std::vector<std::unique_ptr<DataSource>> cascade_sources;
  std::vector<std::unique_ptr<Mediator>> cascade_mediators;
  Relation current_result;

  for (size_t level = 0; level < query.joins.size(); ++level) {
    const ParsedQuery::JoinClause& join = query.joins[level];

    // Build this level's two-relation query.
    std::string level_sql = "SELECT * FROM " + current_table;
    if (join.natural) {
      level_sql += " NATURAL JOIN " + join.table.name;
    } else {
      level_sql += " JOIN " + join.table.name + " ON ";
      for (size_t i = 0; i < join.on_pairs.size(); ++i) {
        if (i) level_sql += " AND ";
        // Re-qualify the left side with the current table name so the
        // pair resolves against the cascade intermediate as well.
        level_sql += current_table + "." +
                     Schema::BaseName(join.on_pairs[i].first) + " = " +
                     join.table.name + "." +
                     Schema::BaseName(join.on_pairs[i].second);
      }
    }

    // Wire this level's mediator: the current table (original or cascade
    // datasource) plus the next base table.
    auto mediator = std::make_unique<Mediator>(
        "mediator-L" + std::to_string(level + 1));
    ProtocolContext level_ctx = *ctx;
    level_ctx.mediator = mediator.get();

    if (level == 0) {
      SECMED_ASSIGN_OR_RETURN(std::string src,
                              ctx->mediator->SourceOf(current_table));
      SECMED_ASSIGN_OR_RETURN(Schema schema,
                              ctx->mediator->SchemaOf(current_table));
      mediator->RegisterTable(current_table, src, std::move(schema));
    } else {
      auto cascade_src = std::make_unique<DataSource>(
          "cascade-source-" + std::to_string(level));
      cascade_src->set_ca_key(ca_key_);
      SECMED_ASSIGN_OR_RETURN(Relation unqualified,
                              UnqualifyRelation(current_result));
      mediator->RegisterTable(current_table, cascade_src->name(),
                              unqualified.schema());
      cascade_src->AddRelation(current_table, std::move(unqualified));
      level_ctx.sources[cascade_src->name()] = cascade_src.get();
      cascade_sources.push_back(std::move(cascade_src));
    }
    SECMED_ASSIGN_OR_RETURN(std::string next_src,
                            ctx->mediator->SourceOf(join.table.name));
    SECMED_ASSIGN_OR_RETURN(Schema next_schema,
                            ctx->mediator->SchemaOf(join.table.name));
    mediator->RegisterTable(join.table.name, next_src, std::move(next_schema));

    SECMED_ASSIGN_OR_RETURN(current_result,
                            ProtocolFor(level)->Run(level_sql, &level_ctx));
    current_table = "cascade_result_" + std::to_string(level + 1);
    cascade_mediators.push_back(std::move(mediator));
  }

  // Client-side post-processing: WHERE, aggregation/projection, ORDER BY,
  // LIMIT — the same pipeline the reference executor applies.
  if (query.where && query.where->kind() != Predicate::Kind::kTrue) {
    SECMED_ASSIGN_OR_RETURN(current_result,
                            Select(current_result, query.where));
  }
  if (query.HasAggregates() || !query.group_by.empty()) {
    SECMED_ASSIGN_OR_RETURN(
        current_result,
        Aggregate(current_result, query.group_by, query.aggregates));
  } else if (!query.select_columns.empty()) {
    SECMED_ASSIGN_OR_RETURN(current_result,
                            Project(current_result, query.select_columns));
  }
  if (!query.order_by.empty()) {
    SECMED_ASSIGN_OR_RETURN(current_result,
                            OrderBy(current_result, query.order_by));
  }
  if (query.limit != SIZE_MAX) {
    current_result = Limit(current_result, query.limit);
  }
  return current_result;
}

}  // namespace secmed
