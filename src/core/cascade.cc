#include "core/cascade.h"

#include <numeric>
#include <set>

#include "relational/algebra.h"
#include "relational/sql.h"

namespace secmed {

namespace {

/// Rewrites a reordered cascade's final result into the column layout the
/// written-order cascade would have produced: the accumulated side of the
/// last level qualified by the last intermediate ("cascade_result_{k-1}"),
/// the written-order last table's fresh columns qualified by its name.
/// Sound only for all-NATURAL cascades, where any join order yields the
/// same bag over the same attribute union (every shared base column is a
/// join attribute, so base names are unique in the result). Fails closed
/// when the actual columns cannot be matched one-to-one by base name.
Result<Relation> RestoreWrittenOrderLayout(const Relation& result,
                                           const ParsedQuery& query,
                                           const Mediator* mediator) {
  SECMED_ASSIGN_OR_RETURN(Schema anchor, mediator->SchemaOf(query.from.name));
  std::vector<std::string> accum;  // base names in written accumulation order
  std::set<std::string> present;
  for (const Column& c : anchor.columns()) {
    std::string base = Schema::BaseName(c.name);
    present.insert(base);
    accum.push_back(std::move(base));
  }
  const size_t k = query.joins.size();
  std::vector<std::string> target_names;
  for (size_t level = 0; level < k; ++level) {
    const ParsedQuery::JoinClause& join = query.joins[level];
    SECMED_ASSIGN_OR_RETURN(Schema right, mediator->SchemaOf(join.table.name));
    std::vector<std::string> fresh;
    for (const Column& c : right.columns()) {
      std::string base = Schema::BaseName(c.name);
      if (present.count(base) == 0) fresh.push_back(std::move(base));
    }
    if (level + 1 == k) {
      const std::string prefix = "cascade_result_" + std::to_string(k - 1);
      for (const std::string& base : accum) {
        target_names.push_back(prefix + "." + base);
      }
      for (const std::string& base : fresh) {
        target_names.push_back(join.table.name + "." + base);
      }
    }
    for (std::string& base : fresh) {
      present.insert(base);
      accum.push_back(std::move(base));
    }
  }
  if (target_names.size() != result.schema().size()) {
    return Status::Internal(
        "cascade: reordered result has " +
        std::to_string(result.schema().size()) + " columns, written order " +
        std::to_string(target_names.size()));
  }

  std::vector<size_t> src_index;
  std::vector<Column> cols;
  src_index.reserve(target_names.size());
  cols.reserve(target_names.size());
  for (const std::string& name : target_names) {
    const std::string base = Schema::BaseName(name);
    size_t found = result.schema().size();
    for (size_t i = 0; i < result.schema().size(); ++i) {
      if (Schema::BaseName(result.schema().column(i).name) != base) continue;
      if (found != result.schema().size()) {
        return Status::Internal("cascade: reordered result has duplicate "
                                "column '" + base + "'");
      }
      found = i;
    }
    if (found == result.schema().size()) {
      return Status::Internal("cascade: reordered result is missing column '" +
                              base + "'");
    }
    src_index.push_back(found);
    cols.push_back({name, result.schema().column(found).type});
  }
  Relation out{Schema(std::move(cols))};
  for (const Tuple& t : result.tuples()) {
    Tuple reordered;
    reordered.reserve(src_index.size());
    for (size_t i : src_index) reordered.push_back(t[i]);
    out.AppendUnchecked(std::move(reordered));
  }
  return out;
}

}  // namespace

Result<Relation> UnqualifyRelation(const Relation& rel) {
  std::vector<Column> cols;
  std::set<std::string> seen;
  for (const Column& c : rel.schema().columns()) {
    std::string base = Schema::BaseName(c.name);
    if (!seen.insert(base).second) {
      return Status::InvalidArgument(
          "column name collision after unqualify: " + base +
          "; rename columns before cascading");
    }
    cols.push_back({std::move(base), c.type});
  }
  return Relation(Schema(std::move(cols)), rel.tuples());
}

Result<Relation> CascadeExecutor::Run(const std::string& sql,
                                      ProtocolContext* ctx) {
  if (ctx == nullptr || ctx->client == nullptr || ctx->mediator == nullptr) {
    return Status::InvalidArgument("incomplete protocol context");
  }
  SECMED_ASSIGN_OR_RETURN(ParsedQuery query, ParseSql(sql));
  if (query.joins.empty()) {
    return Status::Unimplemented(
        "cascade executor mediates join queries; single-table queries go "
        "directly to the owning datasource");
  }

  // Resolve the execution order of the JOIN clauses: the written order,
  // or the planner's permutation installed via SetJoinOrder. A costed and
  // policy-checked plan is only valid for the order it was built against,
  // so an order that cannot be honored is an error, never a silent
  // fallback to the written order.
  std::vector<size_t> order(query.joins.size());
  std::iota(order.begin(), order.end(), 0);
  bool permuted = false;
  if (!order_.empty()) {
    if (order_.size() != query.joins.size()) {
      return Status::InvalidArgument(
          "cascade: join order names " + std::to_string(order_.size()) +
          " levels for a query with " + std::to_string(query.joins.size()) +
          " JOIN clauses");
    }
    std::vector<bool> seen(query.joins.size(), false);
    for (size_t idx : order_) {
      if (idx >= query.joins.size() || seen[idx]) {
        return Status::InvalidArgument(
            "cascade: join order is not a permutation of the JOIN clauses");
      }
      seen[idx] = true;
    }
    order = order_;
    for (size_t i = 0; i < order.size(); ++i) permuted |= order[i] != i;
  }
  if (permuted) {
    for (const ParsedQuery::JoinClause& join : query.joins) {
      if (!join.natural) {
        return Status::InvalidArgument(
            "cascade: reordering requires an all-NATURAL cascade; ON joins "
            "execute in the written order");
      }
    }
  }

  // State of the running cascade: the current left-hand side. Starts as
  // the FROM table at its original datasource; after the first level it is
  // the intermediate result held by a cascade datasource.
  std::string current_table = query.from.name;

  // Owned per-level infrastructure. Objects must outlive the protocol runs
  // that reference them.
  std::vector<std::unique_ptr<DataSource>> cascade_sources;
  std::vector<std::unique_ptr<Mediator>> cascade_mediators;
  Relation current_result;

  for (size_t level = 0; level < query.joins.size(); ++level) {
    const ParsedQuery::JoinClause& join = query.joins[order[level]];

    // Build this level's two-relation query.
    std::string level_sql = "SELECT * FROM " + current_table;
    if (join.natural) {
      level_sql += " NATURAL JOIN " + join.table.name;
    } else {
      level_sql += " JOIN " + join.table.name + " ON ";
      for (size_t i = 0; i < join.on_pairs.size(); ++i) {
        if (i) level_sql += " AND ";
        // Re-qualify the left side with the current table name so the
        // pair resolves against the cascade intermediate as well.
        level_sql += current_table + "." +
                     Schema::BaseName(join.on_pairs[i].first) + " = " +
                     join.table.name + "." +
                     Schema::BaseName(join.on_pairs[i].second);
      }
    }

    // Wire this level's mediator: the current table (original or cascade
    // datasource) plus the next base table.
    auto mediator = std::make_unique<Mediator>(
        "mediator-L" + std::to_string(level + 1));
    ProtocolContext level_ctx = *ctx;
    level_ctx.mediator = mediator.get();

    if (level == 0) {
      SECMED_ASSIGN_OR_RETURN(std::string src,
                              ctx->mediator->SourceOf(current_table));
      SECMED_ASSIGN_OR_RETURN(Schema schema,
                              ctx->mediator->SchemaOf(current_table));
      mediator->RegisterTable(current_table, src, std::move(schema));
    } else {
      auto cascade_src = std::make_unique<DataSource>(
          "cascade-source-" + std::to_string(level));
      cascade_src->set_ca_key(ca_key_);
      SECMED_ASSIGN_OR_RETURN(Relation unqualified,
                              UnqualifyRelation(current_result));
      mediator->RegisterTable(current_table, cascade_src->name(),
                              unqualified.schema());
      cascade_src->AddRelation(current_table, std::move(unqualified));
      level_ctx.sources[cascade_src->name()] = cascade_src.get();
      cascade_sources.push_back(std::move(cascade_src));
    }
    SECMED_ASSIGN_OR_RETURN(std::string next_src,
                            ctx->mediator->SourceOf(join.table.name));
    SECMED_ASSIGN_OR_RETURN(Schema next_schema,
                            ctx->mediator->SchemaOf(join.table.name));
    mediator->RegisterTable(join.table.name, next_src, std::move(next_schema));

    SECMED_ASSIGN_OR_RETURN(current_result,
                            ProtocolFor(level)->Run(level_sql, &level_ctx));
    current_table = "cascade_result_" + std::to_string(level + 1);
    cascade_mediators.push_back(std::move(mediator));
  }

  // A reordered cascade delivers the written-order bag under a permuted
  // column layout; restore the written layout before post-processing so
  // the result (and its digest) is independent of the executed order.
  if (permuted) {
    SECMED_ASSIGN_OR_RETURN(
        current_result,
        RestoreWrittenOrderLayout(current_result, query, ctx->mediator));
  }

  // Client-side post-processing: WHERE, aggregation/projection, ORDER BY,
  // LIMIT — the same pipeline the reference executor applies.
  if (query.where && query.where->kind() != Predicate::Kind::kTrue) {
    SECMED_ASSIGN_OR_RETURN(current_result,
                            Select(current_result, query.where));
  }
  if (query.HasAggregates() || !query.group_by.empty()) {
    SECMED_ASSIGN_OR_RETURN(
        current_result,
        Aggregate(current_result, query.group_by, query.aggregates));
  } else if (!query.select_columns.empty()) {
    SECMED_ASSIGN_OR_RETURN(current_result,
                            Project(current_result, query.select_columns));
  }
  if (!query.order_by.empty()) {
    SECMED_ASSIGN_OR_RETURN(current_result,
                            OrderBy(current_result, query.order_by));
  }
  if (query.limit != SIZE_MAX) {
    current_result = Limit(current_result, query.limit);
  }
  return current_result;
}

}  // namespace secmed
