#ifndef SECMED_CORE_SELECTION_PROTOCOL_H_
#define SECMED_CORE_SELECTION_PROTOCOL_H_

#include "core/protocol.h"

namespace secmed {

/// Secure mediation of single-table exact-match SELECTION queries over
/// ciphertexts, after Yang et al. (Related Work, Section 7): the mediator
/// returns the *exact* set of encrypted rows satisfying the condition —
/// no client post-processing as in the DAS approach — by matching
/// deterministic per-column search tags against a token derived from the
/// client's condition.
///
/// Delivery phase:
///  1. The datasource executes the (access-filtered) partial query,
///     encrypts it searchably (sealed rows + per-cell tags under fresh
///     column keys) and ships it to the mediator; the column keys travel
///     hybrid-encrypted to the client.
///  2. The client derives the selection token from its WHERE condition
///     and sends it to the mediator.
///  3. The mediator matches tags and returns exactly the satisfying
///     sealed rows, which the client opens.
///
/// Leakage at the mediator: row count, which hidden rows satisfy the
/// hidden condition, and tag-equality patterns across rows (deterministic
/// encryption of cells) — the trade-off Yang et al. accept for exactness.
class SelectionProtocol {
 public:
  /// Runs "SELECT * FROM t WHERE col = lit [AND col = lit ...]" and
  /// returns the matching rows.
  Result<Relation> Run(const std::string& sql, ProtocolContext* ctx);

  /// Rows the mediator returned in the last run (equals the result size;
  /// exactness is the point of the scheme).
  size_t last_selected_rows() const { return last_selected_rows_; }

 private:
  size_t last_selected_rows_ = 0;
};

}  // namespace secmed

#endif  // SECMED_CORE_SELECTION_PROTOCOL_H_
