#ifndef SECMED_CORE_PREPARED_H_
#define SECMED_CORE_PREPARED_H_

#include <memory>
#include <string>

#include "core/protocol.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/rng.h"

namespace secmed {

/// Prepared-dataset state shared between sessions of a long-lived
/// mediation service (src/service/). A datasource's expensive
/// per-relation delivery work — hashing the active domain, commutative
/// or homomorphic encryption of the value sets, hybrid-sealing the tuple
/// sets — is a pure function of the relation, the join attributes, the
/// protocol parameters and the client key. The cache memoizes exactly
/// those functions so a series of queries pays the crypto once.
///
/// Determinism contract (docs/SERVICE.md): an entry's bytes are a pure
/// function of its *key*. All randomness used to compute an entry is
/// drawn from PrepareRng(key), a DRBG seeded from the registry label and
/// the key string — never from the session RNG. Consequences:
///  - a warm run sends the same bytes as the cold run that populated the
///    entry (byte-identical transcripts, not just results);
///  - an entry recomputed after eviction, or computed concurrently by
///    two racing sessions, is byte-for-byte the same value;
///  - every process of a replicated TCP deployment computes the same
///    prepared bytes regardless of its private cache history, so the
///    frame-level byte verification keeps passing.
/// Runs without a cache (ctx->prepared == nullptr) take the legacy path
/// and draw from the session RNG; their transcripts are unchanged.
class PreparedValue {
 public:
  virtual ~PreparedValue() = default;

  /// Approximate resident size, charged against the registry's byte
  /// budget (LRU eviction).
  virtual size_t ByteSize() const = 0;
};

/// A prepared value that is just bytes (a precomputed message payload, a
/// memoized decryption). Shared by several protocol sites.
struct PreparedBlob : PreparedValue {
  Bytes bytes;

  explicit PreparedBlob(Bytes b) : bytes(std::move(b)) {}
  size_t ByteSize() const override { return bytes.size(); }
};

/// The cache interface the protocols in src/core/ program against; the
/// LRU registry implementing it lives in src/service/prepared_registry.h.
/// Implementations must be thread-safe (concurrent sessions share one
/// cache).
class PreparedCache {
 public:
  virtual ~PreparedCache() = default;

  /// The cached value for `key`, or null on a miss.
  virtual std::shared_ptr<const PreparedValue> Get(const std::string& key) = 0;

  /// Inserts `value` under `key` and returns the resident entry — the
  /// already-present one if another session won the race (first insert
  /// wins; by the determinism contract both values hold identical bytes).
  virtual std::shared_ptr<const PreparedValue> Put(
      const std::string& key, std::shared_ptr<const PreparedValue> value) = 0;

  /// The deterministic randomness source for computing the entry `key`:
  /// seeded from the registry's prepare label and the key string alone.
  virtual std::unique_ptr<RandomSource> PrepareRng(const std::string& key) = 0;
};

/// Hex SHA-256 of `material` — the digest component of cache keys.
std::string PreparedDigest(const Bytes& material);

/// Canonical cache key "<kind>/<party>/v<version>/<digest(material)>".
/// `version` is the owning datasource's catalog version, so a data or
/// policy change retires every key minted under the old version;
/// content-addressed kinds (memoized decryptions) pass 0.
std::string PreparedKey(const std::string& kind, const std::string& party,
                        uint64_t version, const Bytes& material);

/// Looks up `key`, computing and inserting the value with `compute`
/// (called with the key's prepare RNG) on a miss. T must derive from
/// PreparedValue; `compute` returns Result<std::shared_ptr<const T>>.
template <typename T, typename Fn>
Result<std::shared_ptr<const T>> GetOrCompute(PreparedCache* cache,
                                              const std::string& key,
                                              Fn&& compute) {
  if (std::shared_ptr<const PreparedValue> hit = cache->Get(key)) {
    if (auto typed = std::dynamic_pointer_cast<const T>(hit)) return typed;
    // A kind collision cannot happen with well-formed keys; recompute
    // rather than crash if it somehow does.
  }
  std::unique_ptr<RandomSource> rng = cache->PrepareRng(key);
  SECMED_ASSIGN_OR_RETURN(std::shared_ptr<const T> value,
                          std::forward<Fn>(compute)(rng.get()));
  if (auto typed = std::dynamic_pointer_cast<const T>(
          cache->Put(key, value))) {
    return typed;
  }
  return value;
}

/// Hybrid-decrypts `blob` with the client's private key, memoizing the
/// plaintext under the ciphertext digest when ctx->prepared is attached.
/// Decryption is deterministic, so memoization can never change the
/// plaintext — it only skips the RSA work on blobs repeated across a
/// query series (prepared source payloads are stable bytes, so warm
/// sessions hit for every sealed tuple set and schema blob).
Result<Bytes> ClientHybridDecrypt(ProtocolContext* ctx, const Bytes& blob);

/// Paillier counterpart for the PM protocol's evaluation ciphertexts:
/// decrypts `ciphertext` (big-endian bytes) with the client's
/// homomorphic key, memoized under the ciphertext digest.
Result<Bytes> ClientPaillierDecrypt(ProtocolContext* ctx,
                                    const Bytes& ciphertext);

/// Catalog version of the datasource `name` in `ctx` (0 when absent) —
/// the `version` component for source-keyed prepared entries.
uint64_t SourceCatalogVersion(const ProtocolContext* ctx,
                              const std::string& name);

}  // namespace secmed

#endif  // SECMED_CORE_PREPARED_H_
