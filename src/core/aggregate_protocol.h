#ifndef SECMED_CORE_AGGREGATE_PROTOCOL_H_
#define SECMED_CORE_AGGREGATE_PROTOCOL_H_

#include "core/protocol.h"
#include "relational/algebra.h"

namespace secmed {

/// Aggregate to compute over the mediated join.
struct JoinAggregateSpec {
  /// kCount (COUNT(*) over the join result) or kSum (SUM of an integer
  /// column of either relation).
  AggregateFn fn = AggregateFn::kCount;
  /// Summed column (unqualified); ignored for kCount.
  std::string column;
};

/// Secure mediation of AGGREGATION queries over the join — the library's
/// answer to the related-work line on "aggregation queries over encrypted
/// data" (Hacıgümüş et al. [14], Mykletun/Tsudik [18]) combined with the
/// paper's commutative matching:
///
///   SELECT COUNT(*) FROM R1 ⋈ R2      or
///   SELECT SUM(col) FROM R1 ⋈ R2
///
/// The datasources run the commutative matching of Listing 3, but instead
/// of tuple-set payloads they attach Paillier ciphertexts of per-value
/// aggregates (|Tup_i(a)| and, for the summed side, Σ t.col) under the
/// client's homomorphic key from the credentials. The mediator matches
/// double ciphertexts and forwards the matched aggregate ciphertexts; the
/// client decrypts 2·|matches| numbers and combines them:
///
///   COUNT = Σ_a count1(a) · count2(a)
///   SUM   = Σ_a count_other(a) · sum_owner(a)
///
/// Disclosure: the client learns only per-matched-value counts/sums (no
/// tuples, no payload columns); the mediator learns |domactive| and the
/// intersection size, as in the join protocol.
class AggregateJoinProtocol {
 public:
  explicit AggregateJoinProtocol(size_t group_bits = 512)
      : group_bits_(group_bits) {}

  /// Runs the aggregate query; returns the aggregate value. Sums are
  /// computed over Z_n and mapped back to signed 64-bit range.
  Result<int64_t> Run(const std::string& sql, const JoinAggregateSpec& spec,
                      ProtocolContext* ctx);

  /// Matched join values in the last run.
  size_t last_intersection_size() const { return last_intersection_size_; }

 private:
  size_t group_bits_;
  size_t last_intersection_size_ = 0;
};

}  // namespace secmed

#endif  // SECMED_CORE_AGGREGATE_PROTOCOL_H_
