#include "crypto/commutative.h"

#include "bigint/modular.h"

namespace secmed {

CommutativeKey CommutativeKey::Generate(const QrGroup& group,
                                        RandomSource* rng) {
  // e uniform in [1, q); q is prime so every such e is invertible.
  BigInt e = BigInt::RandomBelow(group.q() - BigInt(1), rng) + BigInt(1);
  BigInt e_inv = ModInverse(e, group.q()).value();
  return CommutativeKey(group, std::move(e), std::move(e_inv));
}

Result<CommutativeKey> CommutativeKey::FromExponent(const QrGroup& group,
                                                    const BigInt& e) {
  if (e < BigInt(1) || e >= group.q()) {
    return Status::InvalidArgument("exponent must be in [1, q)");
  }
  SECMED_ASSIGN_OR_RETURN(BigInt e_inv, ModInverse(e, group.q()));
  return CommutativeKey(group, e, std::move(e_inv));
}

BigInt CommutativeKey::Encrypt(const BigInt& x) const {
  return group_.Pow(x, e_);
}

BigInt CommutativeKey::Decrypt(const BigInt& c) const {
  return group_.Pow(c, e_inv_);
}

}  // namespace secmed
