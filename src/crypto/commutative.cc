#include "crypto/commutative.h"

#include "bigint/modular.h"
#include "util/parallel.h"

namespace secmed {

CommutativeKey::CommutativeKey(QrGroup group, BigInt e, BigInt e_inv)
    : group_(std::move(group)), e_(std::move(e)), e_inv_(std::move(e_inv)) {
  rec_e_ = std::make_shared<const ExponentRecoding>(ExponentRecoding::Create(e_));
  rec_e_inv_ =
      std::make_shared<const ExponentRecoding>(ExponentRecoding::Create(e_inv_));
}

CommutativeKey CommutativeKey::Generate(const QrGroup& group,
                                        RandomSource* rng) {
  // e uniform in [1, q); q is prime so every such e is invertible.
  BigInt e = BigInt::RandomBelow(group.q() - BigInt(1), rng) + BigInt(1);
  BigInt e_inv = ModInverse(e, group.q()).value();
  return CommutativeKey(group, std::move(e), std::move(e_inv));
}

Result<CommutativeKey> CommutativeKey::FromExponent(const QrGroup& group,
                                                    const BigInt& e) {
  if (e < BigInt(1) || e >= group.q()) {
    return Status::InvalidArgument("exponent must be in [1, q)");
  }
  SECMED_ASSIGN_OR_RETURN(BigInt e_inv, ModInverse(e, group.q()));
  return CommutativeKey(group, e, std::move(e_inv));
}

BigInt CommutativeKey::Encrypt(const BigInt& x) const {
  return group_.PowWithRecoding(x, *rec_e_);
}

BigInt CommutativeKey::Decrypt(const BigInt& c) const {
  return group_.PowWithRecoding(c, *rec_e_inv_);
}

std::vector<BigInt> CommutativeKey::EncryptMany(const std::vector<BigInt>& xs,
                                                size_t threads,
                                                obs::Scope* scope,
                                                const char* label) const {
  std::vector<BigInt> out(xs.size());
  ParallelFor(
      xs.size(), threads, [&](size_t i) { out[i] = Encrypt(xs[i]); }, scope,
      label);
  return out;
}

}  // namespace secmed
