#ifndef SECMED_CRYPTO_COMMUTATIVE_H_
#define SECMED_CRYPTO_COMMUTATIVE_H_

#include "crypto/group.h"
#include "util/result.h"
#include "util/rng.h"

namespace secmed {

/// Pohlig–Hellman style commutative encryption over QR(p) (Section 4).
///
/// For a safe prime p = 2q + 1, f_e(x) = x^e mod p on the subgroup of
/// quadratic residues. Because QR(p) is cyclic of prime order q:
///   - commutativity: f_e1(f_e2(x)) = x^(e1·e2) = f_e2(f_e1(x));
///   - bijectivity:   any e in [1, q) is coprime to q, so x -> x^e is a
///     permutation of QR(p);
///   - invertibility: f_e^{-1} = f_d with d = e^{-1} mod q;
///   - secrecy:       distinguishing (x, x^e, y, y^e) from (x, x^e, y, z)
///     is the decisional Diffie–Hellman problem in QR(p).
class CommutativeKey {
 public:
  /// Draws a fresh secret exponent e uniformly from [1, q).
  static CommutativeKey Generate(const QrGroup& group, RandomSource* rng);

  /// Reconstructs a key from a known exponent (deterministic tests).
  static Result<CommutativeKey> FromExponent(const QrGroup& group,
                                             const BigInt& e);

  /// f_e(x) = x^e mod p. `x` must be a group element.
  BigInt Encrypt(const BigInt& x) const;

  /// f_e^{-1}(c) = c^(e^{-1} mod q) mod p.
  BigInt Decrypt(const BigInt& c) const;

  const BigInt& exponent() const { return e_; }
  const QrGroup& group() const { return group_; }

 private:
  CommutativeKey(QrGroup group, BigInt e, BigInt e_inv)
      : group_(std::move(group)), e_(std::move(e)), e_inv_(std::move(e_inv)) {}

  QrGroup group_;
  BigInt e_;
  BigInt e_inv_;
};

}  // namespace secmed

#endif  // SECMED_CRYPTO_COMMUTATIVE_H_
