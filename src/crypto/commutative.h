#ifndef SECMED_CRYPTO_COMMUTATIVE_H_
#define SECMED_CRYPTO_COMMUTATIVE_H_

#include <memory>
#include <vector>

#include "bigint/fastexp.h"
#include "crypto/group.h"
#include "obs/scope.h"
#include "util/result.h"
#include "util/rng.h"

namespace secmed {

/// Pohlig–Hellman style commutative encryption over QR(p) (Section 4).
///
/// For a safe prime p = 2q + 1, f_e(x) = x^e mod p on the subgroup of
/// quadratic residues. Because QR(p) is cyclic of prime order q:
///   - commutativity: f_e1(f_e2(x)) = x^(e1·e2) = f_e2(f_e1(x));
///   - bijectivity:   any e in [1, q) is coprime to q, so x -> x^e is a
///     permutation of QR(p);
///   - invertibility: f_e^{-1} = f_d with d = e^{-1} mod q;
///   - secrecy:       distinguishing (x, x^e, y, y^e) from (x, x^e, y, z)
///     is the decisional Diffie–Hellman problem in QR(p).
///
/// The exponents e and e^{-1} are fixed for the key's lifetime, so both
/// are window-recoded at construction; every Encrypt/Decrypt reuses the
/// recoding instead of re-scanning the exponent.
class CommutativeKey {
 public:
  /// Draws a fresh secret exponent e uniformly from [1, q).
  static CommutativeKey Generate(const QrGroup& group, RandomSource* rng);

  /// Reconstructs a key from a known exponent (deterministic tests).
  static Result<CommutativeKey> FromExponent(const QrGroup& group,
                                             const BigInt& e);

  /// f_e(x) = x^e mod p. `x` must be a group element.
  BigInt Encrypt(const BigInt& x) const;

  /// f_e^{-1}(c) = c^(e^{-1} mod q) mod p.
  BigInt Decrypt(const BigInt& c) const;

  /// Encrypts a batch under ParallelFor. The output order matches the
  /// input order regardless of thread count (encryption is deterministic,
  /// so batching never perturbs transcripts).
  std::vector<BigInt> EncryptMany(const std::vector<BigInt>& xs,
                                  size_t threads,
                                  obs::Scope* scope = nullptr,
                                  const char* label = nullptr) const;

  const BigInt& exponent() const { return e_; }
  const QrGroup& group() const { return group_; }

 private:
  CommutativeKey(QrGroup group, BigInt e, BigInt e_inv);

  QrGroup group_;
  BigInt e_;
  BigInt e_inv_;
  // Fixed exponents recoded once per key (shared so keys stay copyable).
  std::shared_ptr<const ExponentRecoding> rec_e_;
  std::shared_ptr<const ExponentRecoding> rec_e_inv_;
};

}  // namespace secmed

#endif  // SECMED_CRYPTO_COMMUTATIVE_H_
