#include "crypto/randomizer_pool.h"

#include <cstdio>
#include <cstdlib>

#include "util/parallel.h"

namespace secmed {

void RandomizerPoolBoundsAbort(const char* pool_name, size_t item, size_t k,
                               size_t items, size_t per_item) {
  std::fprintf(stderr,
               "randomizer pool '%s': item %zu draw %zu out of bounds "
               "(%zu items x %zu per item)\n",
               pool_name != nullptr ? pool_name : "?", item, k, items,
               per_item);
  std::fflush(stderr);
  std::abort();
}

PaillierRandomizerPool PaillierRandomizerPool::Precompute(
    const PaillierPublicKey& key,
    const std::vector<std::unique_ptr<RandomSource>>& rngs, size_t per_item,
    size_t threads, obs::Scope* scope, const char* label) {
  PaillierRandomizerPool pool;
  pool.per_item_ = per_item;
  if (label != nullptr) pool.name_ = label;
  // Serial base draws in item order: the deterministic part that fixes
  // the RNG stream positions (cheap — a gcd per draw).
  std::vector<BigInt> bases(rngs.size() * per_item);
  for (size_t i = 0; i < rngs.size(); ++i) {
    for (size_t k = 0; k < per_item; ++k) {
      bases[i * per_item + k] = key.DrawRandomizerBase(rngs[i].get());
    }
  }
  // The r^n exponentiations carry no RNG state: parallelize freely.
  pool.pool_.resize(bases.size());
  ParallelFor(
      bases.size(), threads,
      [&](size_t j) { pool.pool_[j] = key.MakeRandomizer(bases[j]); }, scope,
      label);
  return pool;
}

ElGamalRandomizerPool ElGamalRandomizerPool::Precompute(
    const ElGamalPublicKey& key,
    const std::vector<std::unique_ptr<RandomSource>>& rngs, size_t per_item,
    size_t threads, obs::Scope* scope, const char* label) {
  ElGamalRandomizerPool pool;
  pool.per_item_ = per_item;
  if (label != nullptr) pool.name_ = label;
  std::vector<BigInt> rs(rngs.size() * per_item);
  for (size_t i = 0; i < rngs.size(); ++i) {
    for (size_t k = 0; k < per_item; ++k) {
      rs[i * per_item + k] = key.DrawRandomizer(rngs[i].get());
    }
  }
  pool.pool_.resize(rs.size());
  ParallelFor(
      rs.size(), threads,
      [&](size_t j) { pool.pool_[j] = key.MakeRandomizerPair(rs[j]); }, scope,
      label);
  return pool;
}

}  // namespace secmed
