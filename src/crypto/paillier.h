#ifndef SECMED_CRYPTO_PAILLIER_H_
#define SECMED_CRYPTO_PAILLIER_H_

#include <memory>

#include "bigint/bigint.h"
#include "bigint/modular.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/rng.h"

namespace secmed {

/// Paillier public key. Plaintext space Z_n, ciphertext space Z_{n^2}^*.
/// The generator is fixed to g = n + 1, for which decryption simplifies
/// and no subgroup checks are needed.
class PaillierPublicKey {
 public:
  /// Builds the key (and its cached Montgomery context) from the modulus.
  static Result<PaillierPublicKey> Create(const BigInt& n);

  const BigInt& n() const { return n_; }
  const BigInt& n_squared() const { return n_squared_; }
  /// Bytes needed to encode one plaintext (floor(bits(n)/8); safe bound).
  size_t MaxPlaintextBytes() const { return (n_.BitLength() - 1) / 8; }

  Bytes Serialize() const;
  static Result<PaillierPublicKey> Deserialize(const Bytes& data);

  /// Encrypts m in [0, n): c = (1 + m·n) · r^n mod n^2.
  Result<BigInt> Encrypt(const BigInt& m, RandomSource* rng) const;

  /// Homomorphic addition: E(a) ⊕ E(b) = E(a + b mod n).
  BigInt Add(const BigInt& c1, const BigInt& c2) const;

  /// Homomorphic scalar multiplication: k ⊙ E(a) = E(k·a mod n).
  BigInt ScalarMul(const BigInt& c, const BigInt& k) const;

  /// Adds a plaintext constant: E(a) ⊕ m = E(a + m mod n), cheaper than
  /// Add(c, Encrypt(m)).
  BigInt AddPlain(const BigInt& c, const BigInt& m) const;

  /// Re-randomizes a ciphertext without changing the plaintext.
  Result<BigInt> Rerandomize(const BigInt& c, RandomSource* rng) const;

  /// base^exp mod n^2 via the cached Montgomery context.
  BigInt Pow(const BigInt& base, const BigInt& exp) const;

  bool operator==(const PaillierPublicKey& other) const {
    return n_ == other.n_;
  }

 private:
  PaillierPublicKey() = default;

  BigInt n_;
  BigInt n_squared_;
  std::shared_ptr<const MontgomeryContext> ctx_;  // modulo n^2
};

/// Paillier private key (lambda = lcm(p-1, q-1), mu = lambda^{-1} mod n).
class PaillierPrivateKey {
 public:
  PaillierPrivateKey(PaillierPublicKey pub, BigInt lambda, BigInt mu)
      : pub_(std::move(pub)), lambda_(std::move(lambda)), mu_(std::move(mu)) {}

  const PaillierPublicKey& public_key() const { return pub_; }

  /// Decrypts c: m = L(c^lambda mod n^2) · mu mod n, L(u) = (u-1)/n.
  Result<BigInt> Decrypt(const BigInt& c) const;

 private:
  PaillierPublicKey pub_;
  BigInt lambda_;
  BigInt mu_;
};

struct PaillierKeyPair {
  PaillierPublicKey public_key;
  PaillierPrivateKey private_key;
};

/// Generates a keypair with an (approximately) `bits`-bit modulus n.
Result<PaillierKeyPair> PaillierGenerateKey(size_t bits, RandomSource* rng);

}  // namespace secmed

#endif  // SECMED_CRYPTO_PAILLIER_H_
