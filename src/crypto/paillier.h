#ifndef SECMED_CRYPTO_PAILLIER_H_
#define SECMED_CRYPTO_PAILLIER_H_

#include <memory>

#include "bigint/bigint.h"
#include "bigint/fastexp.h"
#include "bigint/modular.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/rng.h"

namespace secmed {

/// Paillier public key. Plaintext space Z_n, ciphertext space Z_{n^2}^*.
/// The generator is fixed to g = n + 1, for which decryption simplifies
/// and no subgroup checks are needed.
class PaillierPublicKey {
 public:
  /// Builds the key (and its cached Montgomery context) from the modulus.
  static Result<PaillierPublicKey> Create(const BigInt& n);

  const BigInt& n() const { return n_; }
  const BigInt& n_squared() const { return n_squared_; }
  /// Bytes needed to encode one plaintext (floor(bits(n)/8); safe bound).
  size_t MaxPlaintextBytes() const { return (n_.BitLength() - 1) / 8; }

  Bytes Serialize() const;
  static Result<PaillierPublicKey> Deserialize(const Bytes& data);

  /// Encrypts m in [0, n): c = (1 + m·n) · r^n mod n^2.
  Result<BigInt> Encrypt(const BigInt& m, RandomSource* rng) const;

  /// Draws the randomizer base r uniform in [1, n) with gcd(r, n) = 1 —
  /// exactly the draw Encrypt performs. Exposed so randomizer pools can
  /// consume the same RNG stream as the inline path.
  BigInt DrawRandomizerBase(RandomSource* rng) const;

  /// The expensive half of Encrypt: r^n mod n^2 with the recoded fixed
  /// exponent n. Precompute off the critical path and feed the result to
  /// EncryptWithRandomizer.
  BigInt MakeRandomizer(const BigInt& r) const;

  /// Finishes an encryption given a precomputed r^n: one modular product.
  Result<BigInt> EncryptWithRandomizer(const BigInt& m,
                                       const BigInt& r_n) const;

  /// Homomorphic addition: E(a) ⊕ E(b) = E(a + b mod n).
  BigInt Add(const BigInt& c1, const BigInt& c2) const;

  /// Homomorphic scalar multiplication: k ⊙ E(a) = E(k·a mod n).
  BigInt ScalarMul(const BigInt& c, const BigInt& k) const;

  /// Adds a plaintext constant: E(a) ⊕ m = E(a + m mod n), cheaper than
  /// Add(c, Encrypt(m)).
  BigInt AddPlain(const BigInt& c, const BigInt& m) const;

  /// Re-randomizes a ciphertext without changing the plaintext.
  Result<BigInt> Rerandomize(const BigInt& c, RandomSource* rng) const;

  /// base^exp mod n^2 via the cached Montgomery context.
  BigInt Pow(const BigInt& base, const BigInt& exp) const;

  /// base^exp mod n^2 with a pre-recoded exponent (fixed-exponent fast
  /// path; the private key caches lambda's recoding for DecryptNoCrt).
  BigInt PowWithRecoding(const BigInt& base, const ExponentRecoding& rec) const;

  bool operator==(const PaillierPublicKey& other) const {
    return n_ == other.n_;
  }

 private:
  PaillierPublicKey() = default;

  BigInt n_;
  BigInt n_squared_;
  std::shared_ptr<const MontgomeryContext> ctx_;  // modulo n^2
  // The encryption exponent n is fixed for the key's lifetime: recoded once.
  std::shared_ptr<const ExponentRecoding> rec_n_;
};

/// Paillier private key (lambda = lcm(p-1, q-1), mu = lambda^{-1} mod n).
///
/// When built from the factorization (CreateWithCrt / PaillierGenerateKey),
/// decryption runs mod p^2 and q^2 separately: two half-size
/// exponentiations with half-length exponents plus a CRT recombination,
/// which is several times faster than the textbook c^lambda mod n^2.
class PaillierPrivateKey {
 public:
  /// Key without CRT acceleration (decryption uses the textbook path).
  PaillierPrivateKey(PaillierPublicKey pub, BigInt lambda, BigInt mu)
      : pub_(std::move(pub)),
        lambda_(std::move(lambda)),
        mu_(std::move(mu)),
        rec_lambda_(std::make_shared<const ExponentRecoding>(
            ExponentRecoding::Create(lambda_))) {}

  /// Builds the key from the factorization n = p·q and precomputes the
  /// CRT decryption state (contexts mod p^2/q^2, recoded exponents,
  /// L-function inverses, CRT coefficient).
  static Result<PaillierPrivateKey> CreateWithCrt(PaillierPublicKey pub,
                                                  const BigInt& p,
                                                  const BigInt& q);

  const PaillierPublicKey& public_key() const { return pub_; }
  bool has_crt() const { return crt_ != nullptr; }

  /// Decrypts c; uses the CRT fast path when available.
  Result<BigInt> Decrypt(const BigInt& c) const;

  /// Textbook decryption m = L(c^lambda mod n^2) · mu mod n, L(u) = (u-1)/n.
  /// Kept public as the reference slow path for equivalence tests.
  Result<BigInt> DecryptNoCrt(const BigInt& c) const;

  /// Serializes the key including CRT parameters when present.
  Bytes Serialize() const;
  static Result<PaillierPrivateKey> Deserialize(const Bytes& data);

 private:
  // Everything CRT decryption needs, derived from (p, q) once per key.
  struct CrtState {
    BigInt p, q;
    BigInt p_squared, q_squared;
    std::shared_ptr<const MontgomeryContext> ctx_p2;  // modulo p^2
    std::shared_ptr<const MontgomeryContext> ctx_q2;  // modulo q^2
    ExponentRecoding rec_pm1;  // p - 1
    ExponentRecoding rec_qm1;  // q - 1
    BigInt hp;        // L_p((1+n)^(p-1) mod p^2)^{-1} mod p
    BigInt hq;        // L_q((1+n)^(q-1) mod q^2)^{-1} mod q
    BigInt q_inv_p;   // q^{-1} mod p
  };

  PaillierPublicKey pub_;
  BigInt lambda_;
  BigInt mu_;
  // lambda recoded once per key: DecryptNoCrt is the reference oracle in
  // tests and still deserves the fixed-exponent fast path.
  std::shared_ptr<const ExponentRecoding> rec_lambda_;
  std::shared_ptr<const CrtState> crt_;  // null on the non-CRT path
};

struct PaillierKeyPair {
  PaillierPublicKey public_key;
  PaillierPrivateKey private_key;
};

/// Generates a keypair with an (approximately) `bits`-bit modulus n.
Result<PaillierKeyPair> PaillierGenerateKey(size_t bits, RandomSource* rng);

}  // namespace secmed

#endif  // SECMED_CRYPTO_PAILLIER_H_
