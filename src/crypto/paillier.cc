#include "crypto/paillier.h"

#include "bigint/prime.h"
#include "util/serialize.h"

namespace secmed {

Result<PaillierPublicKey> PaillierPublicKey::Create(const BigInt& n) {
  if (n < BigInt(6) || n.is_even()) {
    return Status::InvalidArgument("implausible Paillier modulus");
  }
  PaillierPublicKey key;
  key.n_ = n;
  key.n_squared_ = n * n;
  SECMED_ASSIGN_OR_RETURN(MontgomeryContext ctx,
                          MontgomeryContext::Create(key.n_squared_));
  key.ctx_ = std::make_shared<const MontgomeryContext>(std::move(ctx));
  return key;
}

Bytes PaillierPublicKey::Serialize() const {
  BinaryWriter w;
  w.WriteBytes(n_.ToBytes());
  return w.TakeBuffer();
}

Result<PaillierPublicKey> PaillierPublicKey::Deserialize(const Bytes& data) {
  BinaryReader r(data);
  SECMED_ASSIGN_OR_RETURN(Bytes nb, r.ReadBytes());
  return Create(BigInt::FromBytes(nb));
}

Result<BigInt> PaillierPublicKey::Encrypt(const BigInt& m,
                                          RandomSource* rng) const {
  if (m.is_negative() || m >= n_) {
    return Status::InvalidArgument("Paillier plaintext out of range [0, n)");
  }
  // r uniform in [1, n) with gcd(r, n) = 1; a common factor would reveal
  // a factor of n, which happens with negligible probability for honest n.
  BigInt r;
  do {
    r = BigInt::RandomBelow(n_, rng);
  } while (r.is_zero() || Gcd(r, n_) != BigInt(1));
  // c = (1 + m*n) * r^n mod n^2  (g = n+1 so g^m = 1 + m*n mod n^2).
  BigInt g_m = BigInt::Mod(BigInt(1) + m * n_, n_squared_).value();
  BigInt r_n = ctx_->Exp(r, n_);
  return ctx_->Mul(g_m, r_n);
}

BigInt PaillierPublicKey::Add(const BigInt& c1, const BigInt& c2) const {
  return ctx_->Mul(c1, c2);
}

BigInt PaillierPublicKey::ScalarMul(const BigInt& c, const BigInt& k) const {
  BigInt kr = BigInt::Mod(k, n_).value();
  return ctx_->Exp(c, kr);
}

BigInt PaillierPublicKey::AddPlain(const BigInt& c, const BigInt& m) const {
  BigInt mr = BigInt::Mod(m, n_).value();
  BigInt g_m = BigInt::Mod(BigInt(1) + mr * n_, n_squared_).value();
  return ctx_->Mul(c, g_m);
}

Result<BigInt> PaillierPublicKey::Rerandomize(const BigInt& c,
                                              RandomSource* rng) const {
  BigInt r;
  do {
    r = BigInt::RandomBelow(n_, rng);
  } while (r.is_zero() || Gcd(r, n_) != BigInt(1));
  return ctx_->Mul(c, ctx_->Exp(r, n_));
}

BigInt PaillierPublicKey::Pow(const BigInt& base, const BigInt& exp) const {
  return ctx_->Exp(base, exp);
}

Result<BigInt> PaillierPrivateKey::Decrypt(const BigInt& c) const {
  if (c.is_negative() || c >= pub_.n_squared()) {
    return Status::InvalidArgument("Paillier ciphertext out of range");
  }
  BigInt u = pub_.Pow(c, lambda_);
  // L(u) = (u - 1) / n; u ≡ 1 (mod n) for valid ciphertexts.
  BigInt l = (u - BigInt(1)) / pub_.n();
  return BigInt::Mod(l * mu_, pub_.n());
}

Result<PaillierKeyPair> PaillierGenerateKey(size_t bits, RandomSource* rng) {
  if (bits < 64) {
    return Status::InvalidArgument("Paillier modulus must be >= 64 bits");
  }
  for (;;) {
    BigInt p = RandomPrime(bits / 2, rng);
    BigInt q = RandomPrime(bits - bits / 2, rng);
    if (p == q) continue;
    BigInt n = p * q;
    // Require gcd(n, (p-1)(q-1)) = 1 (guaranteed for same-size primes,
    // checked for safety).
    BigInt pm1 = p - BigInt(1);
    BigInt qm1 = q - BigInt(1);
    if (Gcd(n, pm1 * qm1) != BigInt(1)) continue;
    BigInt lambda = Lcm(pm1, qm1);
    auto mu = ModInverse(lambda, n);
    if (!mu.ok()) continue;
    SECMED_ASSIGN_OR_RETURN(PaillierPublicKey pub, PaillierPublicKey::Create(n));
    PaillierPrivateKey priv(pub, lambda, mu.value());
    return PaillierKeyPair{std::move(pub), std::move(priv)};
  }
}

}  // namespace secmed
