#include "crypto/paillier.h"

#include "bigint/prime.h"
#include "util/serialize.h"

namespace secmed {

Result<PaillierPublicKey> PaillierPublicKey::Create(const BigInt& n) {
  if (n < BigInt(6) || n.is_even()) {
    return Status::InvalidArgument("implausible Paillier modulus");
  }
  PaillierPublicKey key;
  key.n_ = n;
  key.n_squared_ = n * n;
  SECMED_ASSIGN_OR_RETURN(MontgomeryContext ctx,
                          MontgomeryContext::Create(key.n_squared_));
  key.ctx_ = std::make_shared<const MontgomeryContext>(std::move(ctx));
  key.rec_n_ =
      std::make_shared<const ExponentRecoding>(ExponentRecoding::Create(n));
  return key;
}

Bytes PaillierPublicKey::Serialize() const {
  BinaryWriter w;
  w.WriteBytes(n_.ToBytes());
  return w.TakeBuffer();
}

Result<PaillierPublicKey> PaillierPublicKey::Deserialize(const Bytes& data) {
  BinaryReader r(data);
  SECMED_ASSIGN_OR_RETURN(Bytes nb, r.ReadBytes());
  return Create(BigInt::FromBytes(nb));
}

BigInt PaillierPublicKey::DrawRandomizerBase(RandomSource* rng) const {
  // r uniform in [1, n) with gcd(r, n) = 1; a common factor would reveal
  // a factor of n, which happens with negligible probability for honest n.
  BigInt r;
  do {
    r = BigInt::RandomBelow(n_, rng);
  } while (r.is_zero() || Gcd(r, n_) != BigInt(1));
  return r;
}

BigInt PaillierPublicKey::MakeRandomizer(const BigInt& r) const {
  return ctx_->ExpWithRecoding(r, *rec_n_);
}

Result<BigInt> PaillierPublicKey::EncryptWithRandomizer(
    const BigInt& m, const BigInt& r_n) const {
  if (m.is_negative() || m >= n_) {
    return Status::InvalidArgument("Paillier plaintext out of range [0, n)");
  }
  // c = (1 + m*n) * r^n mod n^2  (g = n+1 so g^m = 1 + m*n mod n^2).
  // 1 + m·n <= 1 + (n-1)·n < n^2 already, so no reduction is needed.
  BigInt g_m = BigInt(1) + m * n_;
  return ctx_->Mul(g_m, r_n);
}

Result<BigInt> PaillierPublicKey::Encrypt(const BigInt& m,
                                          RandomSource* rng) const {
  if (m.is_negative() || m >= n_) {
    return Status::InvalidArgument("Paillier plaintext out of range [0, n)");
  }
  BigInt r = DrawRandomizerBase(rng);
  return EncryptWithRandomizer(m, MakeRandomizer(r));
}

BigInt PaillierPublicKey::Add(const BigInt& c1, const BigInt& c2) const {
  return ctx_->Mul(c1, c2);
}

BigInt PaillierPublicKey::ScalarMul(const BigInt& c, const BigInt& k) const {
  BigInt kr = BigInt::Mod(k, n_).value();
  return ctx_->Exp(c, kr);
}

BigInt PaillierPublicKey::AddPlain(const BigInt& c, const BigInt& m) const {
  BigInt mr = BigInt::Mod(m, n_).value();
  BigInt g_m = BigInt(1) + mr * n_;  // < n^2 since mr < n
  return ctx_->Mul(c, g_m);
}

Result<BigInt> PaillierPublicKey::Rerandomize(const BigInt& c,
                                              RandomSource* rng) const {
  BigInt r = DrawRandomizerBase(rng);
  return ctx_->Mul(c, MakeRandomizer(r));
}

BigInt PaillierPublicKey::Pow(const BigInt& base, const BigInt& exp) const {
  return ctx_->Exp(base, exp);
}

BigInt PaillierPublicKey::PowWithRecoding(const BigInt& base,
                                          const ExponentRecoding& rec) const {
  return ctx_->ExpWithRecoding(base, rec);
}

Result<PaillierPrivateKey> PaillierPrivateKey::CreateWithCrt(
    PaillierPublicKey pub, const BigInt& p, const BigInt& q) {
  if (p * q != pub.n()) {
    return Status::InvalidArgument("p*q does not match the public modulus");
  }
  BigInt pm1 = p - BigInt(1);
  BigInt qm1 = q - BigInt(1);
  BigInt lambda = Lcm(pm1, qm1);
  SECMED_ASSIGN_OR_RETURN(BigInt mu, ModInverse(lambda, pub.n()));

  auto crt = std::make_shared<CrtState>();
  crt->p = p;
  crt->q = q;
  crt->p_squared = p * p;
  crt->q_squared = q * q;
  SECMED_ASSIGN_OR_RETURN(MontgomeryContext ctx_p2,
                          MontgomeryContext::Create(crt->p_squared));
  SECMED_ASSIGN_OR_RETURN(MontgomeryContext ctx_q2,
                          MontgomeryContext::Create(crt->q_squared));
  crt->ctx_p2 = std::make_shared<const MontgomeryContext>(std::move(ctx_p2));
  crt->ctx_q2 = std::make_shared<const MontgomeryContext>(std::move(ctx_q2));
  crt->rec_pm1 = ExponentRecoding::Create(pm1);
  crt->rec_qm1 = ExponentRecoding::Create(qm1);
  // With g = n + 1: g^(p-1) = 1 + (p-1)·n (mod p^2) since n^2 ≡ 0, so
  // L_p(g^(p-1)) = (p-1)·q mod p. hp is its inverse (hq symmetric).
  SECMED_ASSIGN_OR_RETURN(BigInt lp, BigInt::Mod(pm1 * q, p));
  SECMED_ASSIGN_OR_RETURN(crt->hp, ModInverse(lp, p));
  SECMED_ASSIGN_OR_RETURN(BigInt lq, BigInt::Mod(qm1 * p, q));
  SECMED_ASSIGN_OR_RETURN(crt->hq, ModInverse(lq, q));
  SECMED_ASSIGN_OR_RETURN(crt->q_inv_p, ModInverse(q, p));

  PaillierPrivateKey key(std::move(pub), std::move(lambda), std::move(mu));
  key.crt_ = std::move(crt);
  return key;
}

Result<BigInt> PaillierPrivateKey::DecryptNoCrt(const BigInt& c) const {
  if (c.is_negative() || c >= pub_.n_squared()) {
    return Status::InvalidArgument("Paillier ciphertext out of range");
  }
  BigInt u = pub_.PowWithRecoding(c, *rec_lambda_);
  // L(u) = (u - 1) / n; u ≡ 1 (mod n) for valid ciphertexts.
  BigInt l = (u - BigInt(1)) / pub_.n();
  return BigInt::Mod(l * mu_, pub_.n());
}

Result<BigInt> PaillierPrivateKey::Decrypt(const BigInt& c) const {
  if (crt_ == nullptr) return DecryptNoCrt(c);
  if (c.is_negative() || c >= pub_.n_squared()) {
    return Status::InvalidArgument("Paillier ciphertext out of range");
  }
  const CrtState& s = *crt_;
  // m mod p = L_p(c^(p-1) mod p^2) · hp mod p; symmetric mod q. Both
  // exponentiations run over a half-size modulus with a half-length
  // exponent — roughly an 8x work reduction per half vs c^lambda mod n^2.
  BigInt up = s.ctx_p2->ExpWithRecoding(c, s.rec_pm1);
  BigInt mp = BigInt::Mod(((up - BigInt(1)) / s.p) * s.hp, s.p).value();
  BigInt uq = s.ctx_q2->ExpWithRecoding(c, s.rec_qm1);
  BigInt mq = BigInt::Mod(((uq - BigInt(1)) / s.q) * s.hq, s.q).value();
  // CRT recombination: m = mq + q·((mp - mq)·q^{-1} mod p).
  BigInt t = BigInt::Mod((mp - mq) * s.q_inv_p, s.p).value();
  return mq + t * s.q;
}

Bytes PaillierPrivateKey::Serialize() const {
  BinaryWriter w;
  w.WriteBytes(pub_.n().ToBytes());
  w.WriteBytes(lambda_.ToBytes());
  w.WriteBytes(mu_.ToBytes());
  w.WriteU8(crt_ != nullptr ? 1 : 0);
  if (crt_ != nullptr) {
    w.WriteBytes(crt_->p.ToBytes());
    w.WriteBytes(crt_->q.ToBytes());
  }
  return w.TakeBuffer();
}

Result<PaillierPrivateKey> PaillierPrivateKey::Deserialize(const Bytes& data) {
  BinaryReader r(data);
  SECMED_ASSIGN_OR_RETURN(Bytes nb, r.ReadBytes());
  SECMED_ASSIGN_OR_RETURN(Bytes lb, r.ReadBytes());
  SECMED_ASSIGN_OR_RETURN(Bytes mb, r.ReadBytes());
  SECMED_ASSIGN_OR_RETURN(uint8_t has_crt, r.ReadU8());
  SECMED_ASSIGN_OR_RETURN(PaillierPublicKey pub,
                          PaillierPublicKey::Create(BigInt::FromBytes(nb)));
  if (has_crt == 0) {
    return PaillierPrivateKey(std::move(pub), BigInt::FromBytes(lb),
                              BigInt::FromBytes(mb));
  }
  SECMED_ASSIGN_OR_RETURN(Bytes pb, r.ReadBytes());
  SECMED_ASSIGN_OR_RETURN(Bytes qb, r.ReadBytes());
  return CreateWithCrt(std::move(pub), BigInt::FromBytes(pb),
                       BigInt::FromBytes(qb));
}

Result<PaillierKeyPair> PaillierGenerateKey(size_t bits, RandomSource* rng) {
  if (bits < 64) {
    return Status::InvalidArgument("Paillier modulus must be >= 64 bits");
  }
  for (;;) {
    BigInt p = RandomPrime(bits / 2, rng);
    BigInt q = RandomPrime(bits - bits / 2, rng);
    if (p == q) continue;
    BigInt n = p * q;
    // Require gcd(n, (p-1)(q-1)) = 1 (guaranteed for same-size primes,
    // checked for safety).
    BigInt pm1 = p - BigInt(1);
    BigInt qm1 = q - BigInt(1);
    if (Gcd(n, pm1 * qm1) != BigInt(1)) continue;
    if (!ModInverse(Lcm(pm1, qm1), n).ok()) continue;
    SECMED_ASSIGN_OR_RETURN(PaillierPublicKey pub, PaillierPublicKey::Create(n));
    SECMED_ASSIGN_OR_RETURN(PaillierPrivateKey priv,
                            PaillierPrivateKey::CreateWithCrt(pub, p, q));
    return PaillierKeyPair{std::move(pub), std::move(priv)};
  }
}

}  // namespace secmed
