#include "crypto/hybrid.h"

#include "crypto/aead.h"
#include "util/parallel.h"
#include "util/serialize.h"

namespace secmed {

Result<Bytes> HybridEncrypt(const RsaPublicKey& recipient,
                            const Bytes& plaintext, RandomSource* rng) {
  if (RsaOaepMaxPlaintext(recipient) < Aead::kKeySize) {
    return Status::InvalidArgument("recipient modulus too small to wrap key");
  }
  Bytes session_key = Aead::GenerateKey(rng);
  SECMED_ASSIGN_OR_RETURN(Bytes wrapped,
                          RsaOaepEncrypt(recipient, session_key, rng));
  SECMED_ASSIGN_OR_RETURN(Aead aead, Aead::Create(session_key));
  SECMED_ASSIGN_OR_RETURN(Bytes sealed, aead.Seal(plaintext, Bytes(), rng));
  BinaryWriter w;
  w.WriteBytes(wrapped);
  w.WriteBytes(sealed);
  return w.TakeBuffer();
}

Result<Bytes> HybridDecrypt(const RsaPrivateKey& recipient,
                            const Bytes& ciphertext) {
  BinaryReader r(ciphertext);
  SECMED_ASSIGN_OR_RETURN(Bytes wrapped, r.ReadBytes());
  SECMED_ASSIGN_OR_RETURN(Bytes sealed, r.ReadBytes());
  if (!r.AtEnd()) return Status::CryptoError("trailing bytes in ciphertext");
  SECMED_ASSIGN_OR_RETURN(Bytes session_key, RsaOaepDecrypt(recipient, wrapped));
  SECMED_ASSIGN_OR_RETURN(Aead aead, Aead::Create(session_key));
  return aead.Open(sealed, Bytes());
}

Result<std::vector<Bytes>> HybridEncryptBatch(const RsaPublicKey& recipient,
                                              const std::vector<Bytes>& plaintexts,
                                              RandomSource* rng,
                                              size_t threads) {
  std::vector<std::unique_ptr<RandomSource>> rngs = ForkN(rng, plaintexts.size());
  std::vector<Bytes> out(plaintexts.size());
  SECMED_RETURN_IF_ERROR(ParallelForStatus(
      plaintexts.size(), threads, [&](size_t i) -> Status {
        SECMED_ASSIGN_OR_RETURN(
            out[i], HybridEncrypt(recipient, plaintexts[i], rngs[i].get()));
        return Status::OK();
      }));
  return out;
}

Result<Bytes> SessionEncrypt(const Bytes& session_key, const Bytes& plaintext,
                             RandomSource* rng) {
  SECMED_ASSIGN_OR_RETURN(Aead aead, Aead::Create(session_key));
  return aead.Seal(plaintext, Bytes(), rng);
}

Result<Bytes> SessionDecrypt(const Bytes& session_key,
                             const Bytes& ciphertext) {
  SECMED_ASSIGN_OR_RETURN(Aead aead, Aead::Create(session_key));
  return aead.Open(ciphertext, Bytes());
}

}  // namespace secmed
