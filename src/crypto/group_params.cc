#include "crypto/group_params.h"

#include <map>
#include <mutex>

namespace secmed {

namespace {
struct GroupParam {
  size_t bits;
  const char* p_hex;
};

// Safe primes generated offline with tools/gen_group_params; verified by
// tests. Regenerate with:  ./build/tools/gen_group_params 256 384 512 768 1024
const GroupParam kGroups[] = {
    {256,
     "9f2d23385deface75443dd6144ed1aac9217ca244e4a7fba7a5499d97bfd50e3"},
    {384,
     "f13b42e109401a9feadaffcbd2df285b1d8b1be5296395736c0d3eb6643f39cd"
     "4d09ce9b91bd2431f57c9be78eba335b"},
    {512,
     "dca993eed62c2aafb05b5dc2a9a339983c7d000f93591a899d1e8218a8849d56"
     "4fd25cb404bf49b1f0d160b8a45ea61bf9c08f693d6cc43c50ca831583bf69c3"},
    {768,
     "d6c45785947c485029e14b791d6062e5c9deb8b198344ca3c9aeffc139bca217"
     "64c6912170f3ab6db242425fbc75c67d38927d91a7ab5ded4dbc78013296da69"
     "549db99d57b581e17473609314bb9eaeaaa75b979c6bbdd5ea323056689689fb"},
    {1024,
     "9cb6850849ca8dffa31ad15863fe3d102a6fe40cb03380837782e3fb908a8974"
     "617c9d7390c17313e5b3faa19ee5f74b2b69dc605574428fa285c8fb6d61ad08"
     "2228c520b9121bdb39b58f7f2b49f205360291a6ab05882a7436f7521fcc9366"
     "7561b702d845620f90c01841db77a51b7d299d9cc35ac38124de78669434c4db"},
};
}  // namespace

Result<QrGroup> StandardGroup(size_t bits) {
  static std::mutex mu;
  static std::map<size_t, QrGroup>* cache = new std::map<size_t, QrGroup>();
  std::lock_guard<std::mutex> lock(mu);
  auto it = cache->find(bits);
  if (it != cache->end()) return it->second;
  for (const GroupParam& g : kGroups) {
    if (g.bits != bits) continue;
    SECMED_ASSIGN_OR_RETURN(BigInt p, BigInt::FromHex(g.p_hex));
    SECMED_ASSIGN_OR_RETURN(QrGroup group,
                            QrGroup::Create(p, /*check_primality=*/false));
    cache->emplace(bits, group);
    return group;
  }
  return Status::NotFound("no standard group with " + std::to_string(bits) +
                          " bits; supported: 256, 384, 512, 768, 1024");
}

}  // namespace secmed
