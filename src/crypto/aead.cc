#include "crypto/aead.h"

#include "crypto/aes.h"
#include "crypto/sha256.h"

namespace secmed {

Result<Aead> Aead::Create(const Bytes& key) {
  if (key.size() != kKeySize) {
    return Status::InvalidArgument("AEAD key must be 32 bytes");
  }
  Aead aead;
  aead.enc_key_ = HmacSha256(key, ToBytes("secmed-aead-enc"));
  aead.mac_key_ = HmacSha256(key, ToBytes("secmed-aead-mac"));
  return aead;
}

Bytes Aead::GenerateKey(RandomSource* rng) { return rng->Generate(kKeySize); }

Result<Bytes> Aead::Seal(const Bytes& plaintext, const Bytes& aad,
                         RandomSource* rng) const {
  Bytes iv = rng->Generate(kIvSize);
  SECMED_ASSIGN_OR_RETURN(Aes aes, Aes::Create(enc_key_));
  SECMED_ASSIGN_OR_RETURN(Bytes ciphertext, AesCtrTransform(aes, iv, plaintext));
  Bytes mac_input = iv;
  Append(&mac_input, ciphertext);
  Append(&mac_input, aad);
  Bytes tag = HmacSha256(mac_key_, mac_input);
  Bytes out = iv;
  Append(&out, ciphertext);
  Append(&out, tag);
  return out;
}

Result<Bytes> Aead::Open(const Bytes& sealed, const Bytes& aad) const {
  if (sealed.size() < kIvSize + kTagSize) {
    return Status::CryptoError("sealed message too short");
  }
  Bytes iv(sealed.begin(), sealed.begin() + kIvSize);
  Bytes ciphertext(sealed.begin() + kIvSize, sealed.end() - kTagSize);
  Bytes tag(sealed.end() - kTagSize, sealed.end());
  Bytes mac_input = iv;
  Append(&mac_input, ciphertext);
  Append(&mac_input, aad);
  Bytes expected = HmacSha256(mac_key_, mac_input);
  if (!ConstantTimeEquals(tag, expected)) {
    return Status::CryptoError("AEAD tag verification failed");
  }
  SECMED_ASSIGN_OR_RETURN(Aes aes, Aes::Create(enc_key_));
  return AesCtrTransform(aes, iv, ciphertext);
}

}  // namespace secmed
