#ifndef SECMED_CRYPTO_GROUP_H_
#define SECMED_CRYPTO_GROUP_H_

#include <memory>

#include "bigint/bigint.h"
#include "bigint/fastexp.h"
#include "bigint/modular.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/rng.h"

namespace secmed {

/// The group of quadratic residues modulo a safe prime p = 2q + 1.
///
/// QR(p) is cyclic of prime order q, which makes exponentiation a
/// commutative encryption function on it (Section 4 of the paper, after
/// Agrawal et al.). HashToGroup instantiates the "ideal hash function"
/// assumption: SHA-256 output is expanded, reduced mod p and squared, which
/// lands uniformly in QR(p) under the random-oracle model.
class QrGroup {
 public:
  /// Validates that `safe_prime` is a safe prime (both p and (p-1)/2 pass
  /// Miller–Rabin) and builds the group. Pass `check_primality = false`
  /// for trusted, precomputed parameters.
  static Result<QrGroup> Create(const BigInt& safe_prime,
                                bool check_primality = true);

  const BigInt& p() const { return p_; }
  const BigInt& q() const { return q_; }
  size_t bits() const { return p_.BitLength(); }

  /// True iff x is in QR(p): x != 0 and x^q ≡ 1 (mod p).
  bool IsElement(const BigInt& x) const;

  /// Maps arbitrary bytes onto a group element (random oracle style).
  BigInt HashToGroup(const Bytes& input) const;

  /// Uniform random element of QR(p).
  BigInt RandomElement(RandomSource* rng) const;

  /// x^e mod p via the cached Montgomery context.
  BigInt Pow(const BigInt& x, const BigInt& e) const;

  /// x^e mod p with a pre-recoded exponent (fixed-exponent fast path for
  /// Pohlig–Hellman keys: recode e once, reuse for every hashed value).
  BigInt PowWithRecoding(const BigInt& x, const ExponentRecoding& rec) const;

  /// The cached Montgomery context for p (shared with tables/pools).
  const std::shared_ptr<const MontgomeryContext>& mont_ctx() const {
    return ctx_;
  }

  /// Builds a fixed-base power table for `base`, covering exponents up to
  /// |q| bits (the full exponent range of the group).
  Result<FixedBaseTable> MakeFixedBaseTable(const BigInt& base,
                                            int window_bits = 4) const;

 private:
  QrGroup() = default;

  BigInt p_;
  BigInt q_;
  std::shared_ptr<const MontgomeryContext> ctx_;
  // q recoded once: IsElement runs x^q per membership test.
  std::shared_ptr<const ExponentRecoding> rec_q_;
};

}  // namespace secmed

#endif  // SECMED_CRYPTO_GROUP_H_
