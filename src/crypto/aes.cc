#include "crypto/aes.h"

#include <cstring>

namespace secmed {

namespace {
constexpr uint8_t kSbox[256] = {
    0x63, 0x7c, 0x77, 0x7b, 0xf2, 0x6b, 0x6f, 0xc5, 0x30, 0x01, 0x67, 0x2b,
    0xfe, 0xd7, 0xab, 0x76, 0xca, 0x82, 0xc9, 0x7d, 0xfa, 0x59, 0x47, 0xf0,
    0xad, 0xd4, 0xa2, 0xaf, 0x9c, 0xa4, 0x72, 0xc0, 0xb7, 0xfd, 0x93, 0x26,
    0x36, 0x3f, 0xf7, 0xcc, 0x34, 0xa5, 0xe5, 0xf1, 0x71, 0xd8, 0x31, 0x15,
    0x04, 0xc7, 0x23, 0xc3, 0x18, 0x96, 0x05, 0x9a, 0x07, 0x12, 0x80, 0xe2,
    0xeb, 0x27, 0xb2, 0x75, 0x09, 0x83, 0x2c, 0x1a, 0x1b, 0x6e, 0x5a, 0xa0,
    0x52, 0x3b, 0xd6, 0xb3, 0x29, 0xe3, 0x2f, 0x84, 0x53, 0xd1, 0x00, 0xed,
    0x20, 0xfc, 0xb1, 0x5b, 0x6a, 0xcb, 0xbe, 0x39, 0x4a, 0x4c, 0x58, 0xcf,
    0xd0, 0xef, 0xaa, 0xfb, 0x43, 0x4d, 0x33, 0x85, 0x45, 0xf9, 0x02, 0x7f,
    0x50, 0x3c, 0x9f, 0xa8, 0x51, 0xa3, 0x40, 0x8f, 0x92, 0x9d, 0x38, 0xf5,
    0xbc, 0xb6, 0xda, 0x21, 0x10, 0xff, 0xf3, 0xd2, 0xcd, 0x0c, 0x13, 0xec,
    0x5f, 0x97, 0x44, 0x17, 0xc4, 0xa7, 0x7e, 0x3d, 0x64, 0x5d, 0x19, 0x73,
    0x60, 0x81, 0x4f, 0xdc, 0x22, 0x2a, 0x90, 0x88, 0x46, 0xee, 0xb8, 0x14,
    0xde, 0x5e, 0x0b, 0xdb, 0xe0, 0x32, 0x3a, 0x0a, 0x49, 0x06, 0x24, 0x5c,
    0xc2, 0xd3, 0xac, 0x62, 0x91, 0x95, 0xe4, 0x79, 0xe7, 0xc8, 0x37, 0x6d,
    0x8d, 0xd5, 0x4e, 0xa9, 0x6c, 0x56, 0xf4, 0xea, 0x65, 0x7a, 0xae, 0x08,
    0xba, 0x78, 0x25, 0x2e, 0x1c, 0xa6, 0xb4, 0xc6, 0xe8, 0xdd, 0x74, 0x1f,
    0x4b, 0xbd, 0x8b, 0x8a, 0x70, 0x3e, 0xb5, 0x66, 0x48, 0x03, 0xf6, 0x0e,
    0x61, 0x35, 0x57, 0xb9, 0x86, 0xc1, 0x1d, 0x9e, 0xe1, 0xf8, 0x98, 0x11,
    0x69, 0xd9, 0x8e, 0x94, 0x9b, 0x1e, 0x87, 0xe9, 0xce, 0x55, 0x28, 0xdf,
    0x8c, 0xa1, 0x89, 0x0d, 0xbf, 0xe6, 0x42, 0x68, 0x41, 0x99, 0x2d, 0x0f,
    0xb0, 0x54, 0xbb, 0x16};

// Inverse S-box, built once; a magic static so concurrent first uses from
// parallel sealing loops are safe.
const uint8_t* InvSbox() {
  static const uint8_t* table = [] {
    static uint8_t t[256];
    for (int i = 0; i < 256; ++i) t[kSbox[i]] = static_cast<uint8_t>(i);
    return t;
  }();
  return table;
}

constexpr uint8_t kRcon[11] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10,
                               0x20, 0x40, 0x80, 0x1b, 0x36};

uint8_t Xtime(uint8_t x) {
  return static_cast<uint8_t>((x << 1) ^ ((x & 0x80) ? 0x1b : 0x00));
}

uint8_t GfMul(uint8_t a, uint8_t b) {
  uint8_t p = 0;
  for (int i = 0; i < 8; ++i) {
    if (b & 1) p ^= a;
    a = Xtime(a);
    b >>= 1;
  }
  return p;
}

uint32_t SubWord(uint32_t w) {
  return static_cast<uint32_t>(kSbox[(w >> 24) & 0xFF]) << 24 |
         static_cast<uint32_t>(kSbox[(w >> 16) & 0xFF]) << 16 |
         static_cast<uint32_t>(kSbox[(w >> 8) & 0xFF]) << 8 |
         static_cast<uint32_t>(kSbox[w & 0xFF]);
}

uint32_t RotWord(uint32_t w) { return (w << 8) | (w >> 24); }
}  // namespace

Result<Aes> Aes::Create(const Bytes& key) {
  if (key.size() != 16 && key.size() != 24 && key.size() != 32) {
    return Status::InvalidArgument("AES key must be 16, 24 or 32 bytes");
  }
  Aes aes;
  aes.key_size_ = key.size();
  aes.rounds_ = static_cast<int>(key.size() / 4) + 6;
  aes.ExpandKey(key);
  InvSbox();
  return aes;
}

void Aes::ExpandKey(const Bytes& key) {
  const size_t nk = key.size() / 4;
  const size_t total_words = 4 * (rounds_ + 1);
  round_keys_.resize(total_words);
  for (size_t i = 0; i < nk; ++i) {
    round_keys_[i] = static_cast<uint32_t>(key[4 * i]) << 24 |
                     static_cast<uint32_t>(key[4 * i + 1]) << 16 |
                     static_cast<uint32_t>(key[4 * i + 2]) << 8 |
                     static_cast<uint32_t>(key[4 * i + 3]);
  }
  for (size_t i = nk; i < total_words; ++i) {
    uint32_t temp = round_keys_[i - 1];
    if (i % nk == 0) {
      temp = SubWord(RotWord(temp)) ^
             (static_cast<uint32_t>(kRcon[i / nk]) << 24);
    } else if (nk > 6 && i % nk == 4) {
      temp = SubWord(temp);
    }
    round_keys_[i] = round_keys_[i - nk] ^ temp;
  }
}

namespace {
void AddRoundKey(uint8_t state[16], const uint32_t* rk) {
  for (int c = 0; c < 4; ++c) {
    state[4 * c] ^= static_cast<uint8_t>(rk[c] >> 24);
    state[4 * c + 1] ^= static_cast<uint8_t>(rk[c] >> 16);
    state[4 * c + 2] ^= static_cast<uint8_t>(rk[c] >> 8);
    state[4 * c + 3] ^= static_cast<uint8_t>(rk[c]);
  }
}

void SubBytes(uint8_t state[16]) {
  for (int i = 0; i < 16; ++i) state[i] = kSbox[state[i]];
}

void InvSubBytes(uint8_t state[16]) {
  const uint8_t* inv = InvSbox();
  for (int i = 0; i < 16; ++i) state[i] = inv[state[i]];
}

// State layout: state[4*c + r] = byte at row r, column c (column-major,
// matching the byte order of the input block).
void ShiftRows(uint8_t state[16]) {
  uint8_t tmp[16];
  for (int c = 0; c < 4; ++c) {
    for (int r = 0; r < 4; ++r) {
      tmp[4 * c + r] = state[4 * ((c + r) % 4) + r];
    }
  }
  std::memcpy(state, tmp, 16);
}

void InvShiftRows(uint8_t state[16]) {
  uint8_t tmp[16];
  for (int c = 0; c < 4; ++c) {
    for (int r = 0; r < 4; ++r) {
      tmp[4 * ((c + r) % 4) + r] = state[4 * c + r];
    }
  }
  std::memcpy(state, tmp, 16);
}

void MixColumns(uint8_t state[16]) {
  for (int c = 0; c < 4; ++c) {
    uint8_t* col = state + 4 * c;
    uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = static_cast<uint8_t>(Xtime(a0) ^ (Xtime(a1) ^ a1) ^ a2 ^ a3);
    col[1] = static_cast<uint8_t>(a0 ^ Xtime(a1) ^ (Xtime(a2) ^ a2) ^ a3);
    col[2] = static_cast<uint8_t>(a0 ^ a1 ^ Xtime(a2) ^ (Xtime(a3) ^ a3));
    col[3] = static_cast<uint8_t>((Xtime(a0) ^ a0) ^ a1 ^ a2 ^ Xtime(a3));
  }
}

void InvMixColumns(uint8_t state[16]) {
  for (int c = 0; c < 4; ++c) {
    uint8_t* col = state + 4 * c;
    uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
    col[0] = GfMul(a0, 0x0e) ^ GfMul(a1, 0x0b) ^ GfMul(a2, 0x0d) ^ GfMul(a3, 0x09);
    col[1] = GfMul(a0, 0x09) ^ GfMul(a1, 0x0e) ^ GfMul(a2, 0x0b) ^ GfMul(a3, 0x0d);
    col[2] = GfMul(a0, 0x0d) ^ GfMul(a1, 0x09) ^ GfMul(a2, 0x0e) ^ GfMul(a3, 0x0b);
    col[3] = GfMul(a0, 0x0b) ^ GfMul(a1, 0x0d) ^ GfMul(a2, 0x09) ^ GfMul(a3, 0x0e);
  }
}
}  // namespace

void Aes::EncryptBlock(uint8_t block[kBlockSize]) const {
  AddRoundKey(block, &round_keys_[0]);
  for (int round = 1; round < rounds_; ++round) {
    SubBytes(block);
    ShiftRows(block);
    MixColumns(block);
    AddRoundKey(block, &round_keys_[4 * round]);
  }
  SubBytes(block);
  ShiftRows(block);
  AddRoundKey(block, &round_keys_[4 * rounds_]);
}

void Aes::DecryptBlock(uint8_t block[kBlockSize]) const {
  AddRoundKey(block, &round_keys_[4 * rounds_]);
  InvShiftRows(block);
  InvSubBytes(block);
  for (int round = rounds_ - 1; round >= 1; --round) {
    AddRoundKey(block, &round_keys_[4 * round]);
    InvMixColumns(block);
    InvShiftRows(block);
    InvSubBytes(block);
  }
  AddRoundKey(block, &round_keys_[0]);
}

Result<Bytes> AesCtrTransform(const Aes& aes, const Bytes& iv,
                              const Bytes& data, uint32_t initial_counter) {
  if (iv.size() != 12) {
    return Status::InvalidArgument("CTR IV must be 12 bytes");
  }
  Bytes out = data;
  uint8_t counter_block[16];
  std::memcpy(counter_block, iv.data(), 12);
  uint32_t counter = initial_counter;
  for (size_t off = 0; off < out.size(); off += 16) {
    uint8_t keystream[16];
    std::memcpy(keystream, counter_block, 16);
    keystream[12] = static_cast<uint8_t>(counter >> 24);
    keystream[13] = static_cast<uint8_t>(counter >> 16);
    keystream[14] = static_cast<uint8_t>(counter >> 8);
    keystream[15] = static_cast<uint8_t>(counter);
    aes.EncryptBlock(keystream);
    const size_t n = std::min<size_t>(16, out.size() - off);
    for (size_t i = 0; i < n; ++i) out[off + i] ^= keystream[i];
    ++counter;
  }
  return out;
}

}  // namespace secmed
