#include "crypto/elgamal.h"

#include <cmath>
#include <unordered_map>

#include "bigint/modular.h"

namespace secmed {

Result<ElGamalCiphertext> ElGamalPublicKey::Encrypt(uint64_t m,
                                                    RandomSource* rng) const {
  BigInt r = BigInt::RandomBelow(group_.q() - BigInt(1), rng) + BigInt(1);
  ElGamalCiphertext c;
  c.c1 = group_.Pow(g_, r);
  BigInt g_m = group_.Pow(g_, BigInt(m));
  BigInt h_r = group_.Pow(h_, r);
  // Multiply in the group (mod p) via the cached context.
  SECMED_ASSIGN_OR_RETURN(c.c2, ModMul(g_m, h_r, group_.p()));
  return c;
}

ElGamalCiphertext ElGamalPublicKey::Add(const ElGamalCiphertext& a,
                                        const ElGamalCiphertext& b) const {
  ElGamalCiphertext out;
  out.c1 = ModMul(a.c1, b.c1, group_.p()).value();
  out.c2 = ModMul(a.c2, b.c2, group_.p()).value();
  return out;
}

ElGamalCiphertext ElGamalPublicKey::ScalarMul(const ElGamalCiphertext& c,
                                              uint64_t k) const {
  ElGamalCiphertext out;
  out.c1 = group_.Pow(c.c1, BigInt(k));
  out.c2 = group_.Pow(c.c2, BigInt(k));
  return out;
}

Result<ElGamalCiphertext> ElGamalPublicKey::Rerandomize(
    const ElGamalCiphertext& c, RandomSource* rng) const {
  SECMED_ASSIGN_OR_RETURN(ElGamalCiphertext zero, Encrypt(0, rng));
  return Add(c, zero);
}

BigInt ElGamalPrivateKey::DecryptToGroupElement(
    const ElGamalCiphertext& c) const {
  const QrGroup& group = pub_.group();
  // g^m = c2 / c1^x
  BigInt c1_x = group.Pow(c.c1, x_);
  BigInt inv = ModInverse(c1_x, group.p()).value();
  return ModMul(c.c2, inv, group.p()).value();
}

Result<uint64_t> ElGamalPrivateKey::DecryptSmall(const ElGamalCiphertext& c,
                                                 uint64_t max_message) const {
  const QrGroup& group = pub_.group();
  const BigInt target = DecryptToGroupElement(c);

  // Baby-step/giant-step on g^m = target, 0 <= m <= max_message.
  const uint64_t step =
      static_cast<uint64_t>(std::ceil(std::sqrt(
          static_cast<double>(max_message + 1))));
  std::unordered_map<std::string, uint64_t> baby;  // g^j -> j
  BigInt cur(1);
  for (uint64_t j = 0; j <= step; ++j) {
    Bytes key = cur.ToBytes();
    baby.emplace(std::string(key.begin(), key.end()), j);
    SECMED_ASSIGN_OR_RETURN(cur, ModMul(cur, pub_.g(), group.p()));
  }
  // giant = g^{-step}
  BigInt g_step = group.Pow(pub_.g(), BigInt(step));
  SECMED_ASSIGN_OR_RETURN(BigInt giant, ModInverse(g_step, group.p()));

  BigInt gamma = target;
  for (uint64_t i = 0; i * step <= max_message; ++i) {
    Bytes key = gamma.ToBytes();
    auto it = baby.find(std::string(key.begin(), key.end()));
    if (it != baby.end()) {
      uint64_t m = i * step + it->second;
      if (m <= max_message) return m;
    }
    SECMED_ASSIGN_OR_RETURN(gamma, ModMul(gamma, giant, group.p()));
  }
  return Status::OutOfRange("plaintext exceeds the discrete-log bound");
}

ElGamalKeyPair ElGamalGenerateKey(const QrGroup& group, RandomSource* rng) {
  // Any non-identity element of the prime-order group QR(p) generates it.
  BigInt g;
  do {
    g = group.RandomElement(rng);
  } while (g == BigInt(1));
  BigInt x = BigInt::RandomBelow(group.q() - BigInt(1), rng) + BigInt(1);
  BigInt h = group.Pow(g, x);
  ElGamalPublicKey pub(group, g, h);
  ElGamalPrivateKey priv(pub, std::move(x));
  return ElGamalKeyPair{std::move(pub), std::move(priv)};
}

}  // namespace secmed
