#include "crypto/elgamal.h"

#include <cmath>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>

#include "bigint/modular.h"

namespace secmed {

// Immutable snapshot of a built baby-step table; swapped atomically under
// the cache mutex so concurrent decryptions search without locking.
struct ElGamalBsgsTable {
  uint64_t max_message = 0;
  uint64_t step = 0;
  std::unordered_map<std::string, uint64_t> baby;  // g^j -> j, j in [0, step]
  BigInt giant;                                    // g^{-step} mod p
};

struct ElGamalBsgsCache {
  std::mutex mu;
  std::shared_ptr<const ElGamalBsgsTable> table;
};

ElGamalPublicKey::ElGamalPublicKey(QrGroup group, BigInt g, BigInt h)
    : group_(std::move(group)), g_(std::move(g)), h_(std::move(h)) {
  // Both bases are fixed for the key's lifetime; precompute their power
  // tables. Failure (only possible for degenerate parameters) leaves the
  // generic Pow fallback.
  auto tg = group_.MakeFixedBaseTable(g_);
  if (tg.ok()) {
    table_g_ = std::make_shared<const FixedBaseTable>(std::move(tg).value());
  }
  auto th = group_.MakeFixedBaseTable(h_);
  if (th.ok()) {
    table_h_ = std::make_shared<const FixedBaseTable>(std::move(th).value());
  }
}

BigInt ElGamalPublicKey::DrawRandomizer(RandomSource* rng) const {
  return BigInt::RandomBelow(group_.q() - BigInt(1), rng) + BigInt(1);
}

ElGamalCiphertext ElGamalPublicKey::MakeRandomizerPair(const BigInt& r) const {
  ElGamalCiphertext pair;
  pair.c1 = table_g_ != nullptr ? table_g_->Pow(r) : group_.Pow(g_, r);
  pair.c2 = table_h_ != nullptr ? table_h_->Pow(r) : group_.Pow(h_, r);
  return pair;
}

Result<ElGamalCiphertext> ElGamalPublicKey::EncryptWithRandomizer(
    uint64_t m, const ElGamalCiphertext& gr_hr) const {
  ElGamalCiphertext c;
  c.c1 = gr_hr.c1;
  if (m == 0) {
    c.c2 = gr_hr.c2;  // g^0 = 1: skip the exponentiation and the product
    return c;
  }
  BigInt g_m =
      table_g_ != nullptr ? table_g_->Pow(BigInt(m)) : group_.Pow(g_, BigInt(m));
  SECMED_ASSIGN_OR_RETURN(c.c2, ModMul(g_m, gr_hr.c2, group_.p()));
  return c;
}

Result<ElGamalCiphertext> ElGamalPublicKey::Encrypt(uint64_t m,
                                                    RandomSource* rng) const {
  return EncryptWithRandomizer(m, MakeRandomizerPair(DrawRandomizer(rng)));
}

ElGamalCiphertext ElGamalPublicKey::Add(const ElGamalCiphertext& a,
                                        const ElGamalCiphertext& b) const {
  ElGamalCiphertext out;
  out.c1 = ModMul(a.c1, b.c1, group_.p()).value();
  out.c2 = ModMul(a.c2, b.c2, group_.p()).value();
  return out;
}

ElGamalCiphertext ElGamalPublicKey::ScalarMul(const ElGamalCiphertext& c,
                                              uint64_t k) const {
  ElGamalCiphertext out;
  out.c1 = group_.Pow(c.c1, BigInt(k));
  out.c2 = group_.Pow(c.c2, BigInt(k));
  return out;
}

Result<ElGamalCiphertext> ElGamalPublicKey::Rerandomize(
    const ElGamalCiphertext& c, RandomSource* rng) const {
  SECMED_ASSIGN_OR_RETURN(ElGamalCiphertext zero, Encrypt(0, rng));
  return Add(c, zero);
}

ElGamalPrivateKey::ElGamalPrivateKey(ElGamalPublicKey pub, BigInt x)
    : pub_(std::move(pub)),
      x_(std::move(x)),
      rec_x_(std::make_shared<const ExponentRecoding>(
          ExponentRecoding::Create(x_))),
      bsgs_(std::make_shared<ElGamalBsgsCache>()) {}

BigInt ElGamalPrivateKey::DecryptToGroupElement(
    const ElGamalCiphertext& c) const {
  const QrGroup& group = pub_.group();
  // g^m = c2 / c1^x
  BigInt c1_x = group.PowWithRecoding(c.c1, *rec_x_);
  BigInt inv = ModInverse(c1_x, group.p()).value();
  return ModMul(c.c2, inv, group.p()).value();
}

Result<uint64_t> ElGamalPrivateKey::DecryptSmall(const ElGamalCiphertext& c,
                                                 uint64_t max_message) const {
  const QrGroup& group = pub_.group();
  const BigInt target = DecryptToGroupElement(c);

  // Fetch (or build) the cached baby-step table. A table built for a
  // larger bound stays valid for smaller ones: the search below never
  // walks past max_message.
  using Limb = MontgomeryContext::Limb;
  const MontgomeryContext& ctx = *group.mont_ctx();
  const size_t n = ctx.limb_count();

  std::shared_ptr<const ElGamalBsgsTable> table;
  {
    std::lock_guard<std::mutex> lock(bsgs_->mu);
    if (bsgs_->table == nullptr || bsgs_->table->max_message < max_message) {
      auto t = std::make_shared<ElGamalBsgsTable>();
      t->max_message = max_message;
      t->step = static_cast<uint64_t>(
          std::ceil(std::sqrt(static_cast<double>(max_message + 1))));
      // Baby chain g^j held as raw Montgomery limbs; only the map key
      // (normal-domain bytes, so keys match ToBytes of decrypted values)
      // leaves the domain, one extra kernel multiply per entry instead of
      // a division-based ModMul.
      std::vector<Limb> scratch(ctx.scratch_limbs());
      std::vector<Limb> g_mont(n), cur(n), plain(n);
      ctx.ToMontInto(g_mont.data(), pub_.g(), scratch.data());
      const std::vector<Limb>& one = ctx.MontOneLimbs();
      for (size_t k = 0; k < n; ++k) cur[k] = one[k];
      for (uint64_t j = 0; j <= t->step; ++j) {
        ctx.FromMontInto(plain.data(), cur.data(), scratch.data());
        Bytes key = ctx.LimbsToBigInt(plain.data()).ToBytes();
        t->baby.emplace(std::string(key.begin(), key.end()), j);
        ctx.MontMulInto(cur.data(), cur.data(), g_mont.data(), scratch.data());
      }
      // giant = g^{-step}
      BigInt g_step = group.Pow(pub_.g(), BigInt(t->step));
      SECMED_ASSIGN_OR_RETURN(t->giant, ModInverse(g_step, group.p()));
      bsgs_->table = std::move(t);
    }
    table = bsgs_->table;
  }

  // Giant steps over g^m = target, 0 <= m <= max_message: a raw Montgomery
  // multiplication chain by g^{-step}, leaving the domain only to form the
  // per-step lookup key.
  std::vector<Limb> scratch(ctx.scratch_limbs());
  std::vector<Limb> giant_mont(n), gamma(n), plain(n);
  ctx.ToMontInto(giant_mont.data(), table->giant, scratch.data());
  ctx.ToMontInto(gamma.data(), target, scratch.data());
  for (uint64_t i = 0; i * table->step <= max_message; ++i) {
    ctx.FromMontInto(plain.data(), gamma.data(), scratch.data());
    Bytes key = ctx.LimbsToBigInt(plain.data()).ToBytes();
    auto it = table->baby.find(std::string(key.begin(), key.end()));
    if (it != table->baby.end()) {
      uint64_t m = i * table->step + it->second;
      if (m <= max_message) return m;
    }
    ctx.MontMulInto(gamma.data(), gamma.data(), giant_mont.data(),
                    scratch.data());
  }
  return Status::OutOfRange("plaintext exceeds the discrete-log bound");
}

ElGamalKeyPair ElGamalGenerateKey(const QrGroup& group, RandomSource* rng) {
  // Any non-identity element of the prime-order group QR(p) generates it.
  BigInt g;
  do {
    g = group.RandomElement(rng);
  } while (g == BigInt(1));
  BigInt x = BigInt::RandomBelow(group.q() - BigInt(1), rng) + BigInt(1);
  BigInt h = group.Pow(g, x);
  ElGamalPublicKey pub(group, g, h);
  ElGamalPrivateKey priv(pub, std::move(x));
  return ElGamalKeyPair{std::move(pub), std::move(priv)};
}

}  // namespace secmed
