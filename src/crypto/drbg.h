#ifndef SECMED_CRYPTO_DRBG_H_
#define SECMED_CRYPTO_DRBG_H_

#include "util/bytes.h"
#include "util/rng.h"

namespace secmed {

/// Deterministic random bit generator in the style of NIST SP 800-90A
/// HMAC_DRBG over SHA-256.
///
/// Seeded either from the OS entropy pool (default constructor; use for
/// key generation) or from explicit seed material (deterministic; use for
/// reproducible tests and benchmarks).
class HmacDrbg : public RandomSource {
 public:
  /// Seeds from 48 bytes of OS entropy.
  HmacDrbg();
  /// Seeds deterministically from the given material.
  explicit HmacDrbg(const Bytes& seed);

  Bytes Generate(size_t n) override;

  /// Mixes additional entropy into the state.
  void Reseed(const Bytes& material);

  /// Forks a child DRBG for item `index` of a parallel loop: the child is
  /// seeded from 32 bytes drawn here plus the index, so its stream is a
  /// deterministic function of (parent state at fork time, index) and the
  /// same items produce the same bytes on any thread count. Fork children
  /// in index order on one thread, then hand them to the workers.
  std::unique_ptr<RandomSource> Fork(uint64_t index) override;

 private:
  void Update(const Bytes& provided);

  Bytes key_;  // 32 bytes
  Bytes v_;    // 32 bytes
};

}  // namespace secmed

#endif  // SECMED_CRYPTO_DRBG_H_
