#ifndef SECMED_CRYPTO_DRBG_H_
#define SECMED_CRYPTO_DRBG_H_

#include "util/bytes.h"
#include "util/rng.h"

namespace secmed {

/// Deterministic random bit generator in the style of NIST SP 800-90A
/// HMAC_DRBG over SHA-256.
///
/// Seeded either from the OS entropy pool (default constructor; use for
/// key generation) or from explicit seed material (deterministic; use for
/// reproducible tests and benchmarks).
class HmacDrbg : public RandomSource {
 public:
  /// Seeds from 48 bytes of OS entropy.
  HmacDrbg();
  /// Seeds deterministically from the given material.
  explicit HmacDrbg(const Bytes& seed);

  Bytes Generate(size_t n) override;

  /// Mixes additional entropy into the state.
  void Reseed(const Bytes& material);

 private:
  void Update(const Bytes& provided);

  Bytes key_;  // 32 bytes
  Bytes v_;    // 32 bytes
};

}  // namespace secmed

#endif  // SECMED_CRYPTO_DRBG_H_
