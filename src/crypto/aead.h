#ifndef SECMED_CRYPTO_AEAD_H_
#define SECMED_CRYPTO_AEAD_H_

#include "util/bytes.h"
#include "util/result.h"
#include "util/rng.h"

namespace secmed {

/// Authenticated symmetric encryption: AES-256-CTR with an HMAC-SHA256 tag
/// (encrypt-then-MAC). This is the session cipher of the hybrid scheme —
/// every partial result, index table and tuple set that travels through
/// the mediator is sealed with it.
class Aead {
 public:
  static constexpr size_t kKeySize = 32;
  static constexpr size_t kIvSize = 12;
  static constexpr size_t kTagSize = 32;

  /// Creates an AEAD instance from a 32-byte master key. Separate
  /// encryption and MAC keys are derived internally.
  static Result<Aead> Create(const Bytes& key);

  /// Generates a fresh random 32-byte key.
  static Bytes GenerateKey(RandomSource* rng);

  /// Seals `plaintext` with a fresh random IV drawn from `rng`, binding
  /// `aad` into the tag. Output layout: iv || ciphertext || tag.
  Result<Bytes> Seal(const Bytes& plaintext, const Bytes& aad,
                     RandomSource* rng) const;

  /// Opens a sealed message; fails with kCryptoError if the tag does not
  /// verify or the message is malformed.
  Result<Bytes> Open(const Bytes& sealed, const Bytes& aad) const;

 private:
  Aead() = default;

  Bytes enc_key_;
  Bytes mac_key_;
};

}  // namespace secmed

#endif  // SECMED_CRYPTO_AEAD_H_
