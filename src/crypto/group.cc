#include "crypto/group.h"

#include "bigint/prime.h"
#include "crypto/sha256.h"

namespace secmed {

Result<QrGroup> QrGroup::Create(const BigInt& safe_prime,
                                bool check_primality) {
  if (safe_prime < BigInt(7)) {
    return Status::InvalidArgument("safe prime must be at least 7");
  }
  BigInt q = (safe_prime - BigInt(1)) >> 1;
  QrGroup g;
  g.p_ = safe_prime;
  g.q_ = q;
  SECMED_ASSIGN_OR_RETURN(MontgomeryContext ctx,
                          MontgomeryContext::Create(safe_prime));
  g.ctx_ = std::make_shared<const MontgomeryContext>(std::move(ctx));
  g.rec_q_ = std::make_shared<const ExponentRecoding>(ExponentRecoding::Create(q));
  if (check_primality) {
    OsRandomSource rng;
    if (!IsProbablePrime(safe_prime, &rng) || !IsProbablePrime(q, &rng)) {
      return Status::InvalidArgument("modulus is not a safe prime");
    }
  }
  return g;
}

bool QrGroup::IsElement(const BigInt& x) const {
  if (x.is_zero() || x.is_negative() || x >= p_) return false;
  return ctx_->ExpWithRecoding(x, *rec_q_) == BigInt(1);
}

BigInt QrGroup::HashToGroup(const Bytes& input) const {
  // Expand the hash to |p| + 128 bits so the reduction mod p is
  // statistically uniform, then square to land in QR(p). A zero result
  // (probability ~ 2^-|p|) retries with a counter.
  const size_t nbytes = (p_.BitLength() + 7) / 8 + 16;
  for (uint32_t counter = 0;; ++counter) {
    Bytes seed = input;
    seed.push_back(static_cast<uint8_t>(counter));
    Bytes expanded = Mgf1Sha256(seed, nbytes);
    BigInt x = BigInt::Mod(BigInt::FromBytes(expanded), p_).value();
    if (x.is_zero()) continue;
    return ctx_->Sqr(x);
  }
}

BigInt QrGroup::RandomElement(RandomSource* rng) const {
  for (;;) {
    BigInt x = BigInt::RandomBelow(p_, rng);
    if (x.is_zero()) continue;
    return ctx_->Sqr(x);
  }
}

BigInt QrGroup::Pow(const BigInt& x, const BigInt& e) const {
  return ctx_->Exp(x, e);
}

BigInt QrGroup::PowWithRecoding(const BigInt& x,
                                const ExponentRecoding& rec) const {
  return ctx_->ExpWithRecoding(x, rec);
}

Result<FixedBaseTable> QrGroup::MakeFixedBaseTable(const BigInt& base,
                                                   int window_bits) const {
  return FixedBaseTable::Create(ctx_, base, q_.BitLength(), window_bits);
}

}  // namespace secmed
