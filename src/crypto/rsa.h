#ifndef SECMED_CRYPTO_RSA_H_
#define SECMED_CRYPTO_RSA_H_

#include <memory>

#include "bigint/bigint.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/rng.h"

namespace secmed {

/// RSA public key (n, e). Used for OAEP encryption of session keys and for
/// verifying credential signatures.
struct RsaPublicKey {
  BigInt n;
  BigInt e;

  /// Modulus size in bytes (k in PKCS#1 notation).
  size_t ModulusBytes() const { return (n.BitLength() + 7) / 8; }

  Bytes Serialize() const;
  static Result<RsaPublicKey> Deserialize(const Bytes& data);

  bool operator==(const RsaPublicKey& other) const {
    return n == other.n && e == other.e;
  }
};

// Cached Montgomery contexts (mod p, mod q) and recoded CRT exponents for
// the private operation (definition in rsa.cc).
struct RsaCrtCache;

/// RSA private key with CRT parameters for fast decryption/signing.
struct RsaPrivateKey {
  BigInt n;
  BigInt e;
  BigInt d;
  BigInt p;
  BigInt q;
  BigInt d_p;    // d mod (p-1)
  BigInt d_q;    // d mod (q-1)
  BigInt q_inv;  // q^{-1} mod p

  RsaPublicKey PublicKey() const { return {n, e}; }

  /// Builds the CRT fast-path cache from p/q/d_p/d_q (called by
  /// RsaGenerateKey). Without it the private operation falls back to
  /// per-call ModExp, which rebuilds both Montgomery contexts every time.
  Status Precompute();

  std::shared_ptr<const RsaCrtCache> crt_cache;  // null: slow path
};

/// RSA keypair generation with public exponent 65537.
/// `bits` is the modulus size (e.g. 1024, 2048); must be >= 512 so OAEP
/// with SHA-256 has room for at least a 16-byte payload.
Result<RsaPrivateKey> RsaGenerateKey(size_t bits, RandomSource* rng);

/// Maximum plaintext length for OAEP under the given key.
size_t RsaOaepMaxPlaintext(const RsaPublicKey& key);

/// RSAES-OAEP (SHA-256, empty label) encryption.
Result<Bytes> RsaOaepEncrypt(const RsaPublicKey& key, const Bytes& plaintext,
                             RandomSource* rng);

/// RSAES-OAEP decryption.
Result<Bytes> RsaOaepDecrypt(const RsaPrivateKey& key, const Bytes& ciphertext);

/// RSASSA-PKCS1-v1_5 signature over SHA-256(message).
Result<Bytes> RsaSign(const RsaPrivateKey& key, const Bytes& message);

/// Verifies an RSASSA-PKCS1-v1_5 signature; OK iff valid.
Status RsaVerify(const RsaPublicKey& key, const Bytes& message,
                 const Bytes& signature);

}  // namespace secmed

#endif  // SECMED_CRYPTO_RSA_H_
