#ifndef SECMED_CRYPTO_RANDOMIZER_POOL_H_
#define SECMED_CRYPTO_RANDOMIZER_POOL_H_

#include <memory>
#include <string>
#include <vector>

#include "crypto/elgamal.h"
#include "crypto/paillier.h"
#include "obs/scope.h"
#include "util/rng.h"

namespace secmed {

/// Aborts the process with a diagnostic naming the pool and the
/// out-of-range draw: "randomizer pool 'enc-r1': item 12 draw 3 out of
/// bounds (10 items x 2 per item)". An over-drawn pool is a protocol
/// bug (the precompute count and the item body's Encrypt calls fell out
/// of step) and silently reading past `pool_` would reuse — or invent —
/// randomizers, which breaks encryption semantics without any visible
/// failure; crashing loudly at the draw site is the only safe behavior.
[[noreturn]] void RandomizerPoolBoundsAbort(const char* pool_name, size_t item,
                                            size_t k, size_t items,
                                            size_t per_item);

/// Precomputed Paillier randomizers (r^n mod n^2) for a batch of
/// encryptions, moving the expensive exponentiation off the online path:
/// Encrypt-with-pool is two Montgomery multiplications.
///
/// Transcript contract: Precompute draws the randomizer bases from
/// `rngs[i]` in item order — exactly the draws the inline Encrypt path
/// would make first for item i — so pooled and unpooled runs consume
/// identical RNG streams and produce bit-identical ciphertexts. Any
/// further draws an item body makes continue from the same stream
/// position in both modes.
class PaillierRandomizerPool {
 public:
  /// Precomputes `per_item` randomizers per item (one per Encrypt call
  /// the item body will make, in call order). The base draws run serially
  /// in item order; the r^n exponentiations run under ParallelFor.
  static PaillierRandomizerPool Precompute(
      const PaillierPublicKey& key,
      const std::vector<std::unique_ptr<RandomSource>>& rngs, size_t per_item,
      size_t threads, obs::Scope* scope = nullptr,
      const char* label = nullptr);

  /// The `k`-th precomputed randomizer (r^n) for item `item`. Aborts
  /// with a named diagnostic on an over-draw (see
  /// RandomizerPoolBoundsAbort) — never reads past the pool.
  const BigInt& Get(size_t item, size_t k = 0) const {
    if (item >= items() || k >= per_item_) {
      RandomizerPoolBoundsAbort(name_.c_str(), item, k, items(), per_item_);
    }
    return pool_[item * per_item_ + k];
  }

  /// Pool-backed encryption: key.EncryptWithRandomizer(m, Get(item, k)).
  Result<BigInt> Encrypt(const PaillierPublicKey& key, const BigInt& m,
                         size_t item, size_t k = 0) const {
    return key.EncryptWithRandomizer(m, Get(item, k));
  }

  size_t items() const { return per_item_ == 0 ? 0 : pool_.size() / per_item_; }
  size_t per_item() const { return per_item_; }

 private:
  size_t per_item_ = 0;
  std::string name_ = "paillier";  // diagnostics only (the obs label)
  std::vector<BigInt> pool_;       // item-major: [item * per_item + k]
};

/// ElGamal analogue: precomputed (g^r, h^r) pairs. Same transcript
/// contract as PaillierRandomizerPool.
class ElGamalRandomizerPool {
 public:
  static ElGamalRandomizerPool Precompute(
      const ElGamalPublicKey& key,
      const std::vector<std::unique_ptr<RandomSource>>& rngs, size_t per_item,
      size_t threads, obs::Scope* scope = nullptr,
      const char* label = nullptr);

  /// The `k`-th precomputed (g^r, h^r) pair for item `item`. Aborts
  /// with a named diagnostic on an over-draw, like the Paillier pool.
  const ElGamalCiphertext& Get(size_t item, size_t k = 0) const {
    if (item >= items() || k >= per_item_) {
      RandomizerPoolBoundsAbort(name_.c_str(), item, k, items(), per_item_);
    }
    return pool_[item * per_item_ + k];
  }

  /// Pool-backed encryption: key.EncryptWithRandomizer(m, Get(item, k)).
  Result<ElGamalCiphertext> Encrypt(const ElGamalPublicKey& key, uint64_t m,
                                    size_t item, size_t k = 0) const {
    return key.EncryptWithRandomizer(m, Get(item, k));
  }

  size_t items() const { return per_item_ == 0 ? 0 : pool_.size() / per_item_; }
  size_t per_item() const { return per_item_; }

 private:
  size_t per_item_ = 0;
  std::string name_ = "elgamal";         // diagnostics only (the obs label)
  std::vector<ElGamalCiphertext> pool_;  // item-major
};

}  // namespace secmed

#endif  // SECMED_CRYPTO_RANDOMIZER_POOL_H_
