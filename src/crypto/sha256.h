#ifndef SECMED_CRYPTO_SHA256_H_
#define SECMED_CRYPTO_SHA256_H_

#include <cstdint>

#include "util/bytes.h"

namespace secmed {

/// Incremental SHA-256 (FIPS 180-4).
class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256();

  /// Absorbs more input.
  void Update(const Bytes& data);
  void Update(const uint8_t* data, size_t len);

  /// Finalizes and returns the 32-byte digest. The object must not be
  /// updated afterwards; construct a new one for another message.
  Bytes Finish();

  /// One-shot convenience.
  static Bytes Hash(const Bytes& data);

 private:
  void ProcessBlock(const uint8_t* block);

  uint32_t state_[8];
  uint8_t buffer_[kBlockSize];
  size_t buffer_len_ = 0;
  uint64_t total_len_ = 0;
};

/// HMAC-SHA256 (RFC 2104).
Bytes HmacSha256(const Bytes& key, const Bytes& message);

/// MGF1 mask generation (PKCS#1) over SHA-256; produces `len` bytes.
Bytes Mgf1Sha256(const Bytes& seed, size_t len);

}  // namespace secmed

#endif  // SECMED_CRYPTO_SHA256_H_
