#ifndef SECMED_CRYPTO_GROUP_PARAMS_H_
#define SECMED_CRYPTO_GROUP_PARAMS_H_

#include "crypto/group.h"
#include "util/result.h"

namespace secmed {

/// Returns a precomputed QR(p) group for a safe prime of the given size.
/// Supported sizes: 256, 384, 512, 768 and 1024 bits. The parameters were
/// generated with tools/gen_group_params and their safe-primality is
/// re-verified by tests (crypto_group_test.cc).
///
/// Protocol code should prefer these over RandomSafePrime: parameter
/// generation is expensive and the group is public anyway (only the
/// exponents are secret).
Result<QrGroup> StandardGroup(size_t bits);

}  // namespace secmed

#endif  // SECMED_CRYPTO_GROUP_PARAMS_H_
