#include "crypto/rsa.h"

#include "bigint/fastexp.h"
#include "bigint/modular.h"
#include "bigint/prime.h"
#include "crypto/sha256.h"
#include "util/serialize.h"

namespace secmed {

struct RsaCrtCache {
  RsaCrtCache(MontgomeryContext cp, MontgomeryContext cq, ExponentRecoding rp,
              ExponentRecoding rq)
      : ctx_p(std::move(cp)),
        ctx_q(std::move(cq)),
        rec_dp(std::move(rp)),
        rec_dq(std::move(rq)) {}

  MontgomeryContext ctx_p;
  MontgomeryContext ctx_q;
  ExponentRecoding rec_dp;
  ExponentRecoding rec_dq;
};

Status RsaPrivateKey::Precompute() {
  if (p.is_zero() || q.is_zero() || d_p.is_zero() || d_q.is_zero()) {
    return Status::InvalidArgument("RSA CRT parameters are missing");
  }
  SECMED_ASSIGN_OR_RETURN(MontgomeryContext ctx_p, MontgomeryContext::Create(p));
  SECMED_ASSIGN_OR_RETURN(MontgomeryContext ctx_q, MontgomeryContext::Create(q));
  crt_cache = std::make_shared<const RsaCrtCache>(
      std::move(ctx_p), std::move(ctx_q), ExponentRecoding::Create(d_p),
      ExponentRecoding::Create(d_q));
  return Status::OK();
}

namespace {
constexpr size_t kHashLen = Sha256::kDigestSize;

// SHA-256 of the empty label, precomputed lazily.
const Bytes& EmptyLabelHash() {
  static const Bytes* h = new Bytes(Sha256::Hash(Bytes()));
  return *h;
}

// Raw RSA with the private key using the Chinese remainder theorem. The
// cached contexts/recodings skip the per-call Montgomery setup and window
// scan; keys without a cache take the generic path.
BigInt RsaPrivateOp(const RsaPrivateKey& key, const BigInt& c) {
  BigInt m1, m2;
  if (key.crt_cache != nullptr) {
    m1 = key.crt_cache->ctx_p.ExpWithRecoding(c, key.crt_cache->rec_dp);
    m2 = key.crt_cache->ctx_q.ExpWithRecoding(c, key.crt_cache->rec_dq);
  } else {
    m1 = ModExp(c, key.d_p, key.p).value();
    m2 = ModExp(c, key.d_q, key.q).value();
  }
  BigInt h = BigInt::Mod((m1 - m2) * key.q_inv, key.p).value();
  return m2 + h * key.q;
}
}  // namespace

Bytes RsaPublicKey::Serialize() const {
  BinaryWriter w;
  w.WriteBytes(n.ToBytes());
  w.WriteBytes(e.ToBytes());
  return w.TakeBuffer();
}

Result<RsaPublicKey> RsaPublicKey::Deserialize(const Bytes& data) {
  BinaryReader r(data);
  SECMED_ASSIGN_OR_RETURN(Bytes nb, r.ReadBytes());
  SECMED_ASSIGN_OR_RETURN(Bytes eb, r.ReadBytes());
  RsaPublicKey key{BigInt::FromBytes(nb), BigInt::FromBytes(eb)};
  if (key.n < BigInt(2) || key.e < BigInt(3)) {
    return Status::ParseError("implausible RSA public key");
  }
  return key;
}

Result<RsaPrivateKey> RsaGenerateKey(size_t bits, RandomSource* rng) {
  if (bits < 512) {
    return Status::InvalidArgument("RSA modulus must be at least 512 bits");
  }
  const BigInt e(65537);
  for (;;) {
    BigInt p = RandomPrime(bits / 2, rng);
    BigInt q = RandomPrime(bits - bits / 2, rng);
    if (p == q) continue;
    if (p < q) std::swap(p, q);  // CRT wants p > q for q_inv mod p
    BigInt n = p * q;
    if (n.BitLength() != bits) continue;
    BigInt lambda = Lcm(p - BigInt(1), q - BigInt(1));
    auto d = ModInverse(e, lambda);
    if (!d.ok()) continue;  // gcd(e, lambda) != 1; rare
    RsaPrivateKey key;
    key.n = n;
    key.e = e;
    key.d = d.value();
    key.p = p;
    key.q = q;
    key.d_p = key.d % (p - BigInt(1));
    key.d_q = key.d % (q - BigInt(1));
    key.q_inv = ModInverse(q, p).value();
    SECMED_RETURN_IF_ERROR(key.Precompute());
    return key;
  }
}

size_t RsaOaepMaxPlaintext(const RsaPublicKey& key) {
  const size_t k = key.ModulusBytes();
  if (k < 2 * kHashLen + 2) return 0;
  return k - 2 * kHashLen - 2;
}

Result<Bytes> RsaOaepEncrypt(const RsaPublicKey& key, const Bytes& plaintext,
                             RandomSource* rng) {
  const size_t k = key.ModulusBytes();
  if (k < 2 * kHashLen + 2 || plaintext.size() > k - 2 * kHashLen - 2) {
    return Status::InvalidArgument("OAEP: message too long for modulus");
  }
  // DB = lHash || PS (zeros) || 0x01 || M
  Bytes db = EmptyLabelHash();
  db.resize(k - kHashLen - 1 - plaintext.size() - 1, 0);
  db.push_back(0x01);
  Append(&db, plaintext);

  Bytes seed = rng->Generate(kHashLen);
  Bytes db_mask = Mgf1Sha256(seed, db.size());
  XorInPlace(&db, db_mask);
  Bytes seed_mask = Mgf1Sha256(db, kHashLen);
  Bytes masked_seed = seed;
  XorInPlace(&masked_seed, seed_mask);

  Bytes em;
  em.push_back(0x00);
  Append(&em, masked_seed);
  Append(&em, db);

  BigInt m = BigInt::FromBytes(em);
  SECMED_ASSIGN_OR_RETURN(BigInt c, ModExp(m, key.e, key.n));
  return c.ToBytes(k);
}

Result<Bytes> RsaOaepDecrypt(const RsaPrivateKey& key, const Bytes& ciphertext) {
  const size_t k = (key.n.BitLength() + 7) / 8;
  if (ciphertext.size() != k || k < 2 * kHashLen + 2) {
    return Status::CryptoError("OAEP: decryption error");
  }
  BigInt c = BigInt::FromBytes(ciphertext);
  if (c >= key.n) return Status::CryptoError("OAEP: decryption error");
  BigInt m = RsaPrivateOp(key, c);
  Bytes em = m.ToBytes(k);

  // Parse EM = 0x00 || maskedSeed || maskedDB. Run all checks and combine
  // at the end so failures are uniform.
  uint8_t bad = em[0];
  Bytes masked_seed(em.begin() + 1, em.begin() + 1 + kHashLen);
  Bytes db(em.begin() + 1 + kHashLen, em.end());
  Bytes seed_mask = Mgf1Sha256(db, kHashLen);
  Bytes seed = masked_seed;
  XorInPlace(&seed, seed_mask);
  Bytes db_mask = Mgf1Sha256(seed, db.size());
  XorInPlace(&db, db_mask);

  const Bytes& lhash = EmptyLabelHash();
  for (size_t i = 0; i < kHashLen; ++i) bad |= db[i] ^ lhash[i];

  // Find the 0x01 separator after the PS zeros.
  size_t sep = 0;
  bool found = false;
  for (size_t i = kHashLen; i < db.size(); ++i) {
    if (db[i] == 0x01 && !found) {
      sep = i;
      found = true;
    } else if (db[i] != 0x00 && !found) {
      bad |= 1;
      break;
    }
  }
  if (!found || bad != 0) return Status::CryptoError("OAEP: decryption error");
  return Bytes(db.begin() + sep + 1, db.end());
}

namespace {
// DER prefix of DigestInfo for SHA-256 (PKCS#1 v1.5 signatures).
const uint8_t kSha256DigestInfo[] = {0x30, 0x31, 0x30, 0x0d, 0x06, 0x09, 0x60,
                                     0x86, 0x48, 0x01, 0x65, 0x03, 0x04, 0x02,
                                     0x01, 0x05, 0x00, 0x04, 0x20};

Result<Bytes> EmsaPkcs1Encode(const Bytes& message, size_t k) {
  Bytes t(kSha256DigestInfo, kSha256DigestInfo + sizeof(kSha256DigestInfo));
  Append(&t, Sha256::Hash(message));
  if (k < t.size() + 11) {
    return Status::InvalidArgument("modulus too small for signature");
  }
  Bytes em;
  em.push_back(0x00);
  em.push_back(0x01);
  em.insert(em.end(), k - t.size() - 3, 0xFF);
  em.push_back(0x00);
  Append(&em, t);
  return em;
}
}  // namespace

Result<Bytes> RsaSign(const RsaPrivateKey& key, const Bytes& message) {
  const size_t k = (key.n.BitLength() + 7) / 8;
  SECMED_ASSIGN_OR_RETURN(Bytes em, EmsaPkcs1Encode(message, k));
  BigInt m = BigInt::FromBytes(em);
  BigInt s = RsaPrivateOp(key, m);
  return s.ToBytes(k);
}

Status RsaVerify(const RsaPublicKey& key, const Bytes& message,
                 const Bytes& signature) {
  const size_t k = key.ModulusBytes();
  if (signature.size() != k) return Status::CryptoError("bad signature length");
  BigInt s = BigInt::FromBytes(signature);
  if (s >= key.n) return Status::CryptoError("signature out of range");
  SECMED_ASSIGN_OR_RETURN(BigInt m, ModExp(s, key.e, key.n));
  SECMED_ASSIGN_OR_RETURN(Bytes expected, EmsaPkcs1Encode(message, k));
  if (m.ToBytes(k) != expected) {
    return Status::CryptoError("signature verification failed");
  }
  return Status::OK();
}

}  // namespace secmed
