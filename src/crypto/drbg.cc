#include "crypto/drbg.h"

#include "crypto/sha256.h"

namespace secmed {

HmacDrbg::HmacDrbg() : HmacDrbg(OsRandomBytes(48)) {}

HmacDrbg::HmacDrbg(const Bytes& seed)
    : key_(32, 0x00), v_(32, 0x01) {
  Update(seed);
}

void HmacDrbg::Update(const Bytes& provided) {
  Bytes data = v_;
  data.push_back(0x00);
  Append(&data, provided);
  key_ = HmacSha256(key_, data);
  v_ = HmacSha256(key_, v_);
  if (!provided.empty()) {
    data = v_;
    data.push_back(0x01);
    Append(&data, provided);
    key_ = HmacSha256(key_, data);
    v_ = HmacSha256(key_, v_);
  }
}

void HmacDrbg::Reseed(const Bytes& material) { Update(material); }

std::unique_ptr<RandomSource> HmacDrbg::Fork(uint64_t index) {
  Bytes seed = Generate(32);
  for (int b = 0; b < 8; ++b) {
    seed.push_back(static_cast<uint8_t>(index >> (8 * b)));
  }
  return std::make_unique<HmacDrbg>(seed);
}

Bytes HmacDrbg::Generate(size_t n) {
  Bytes out;
  out.reserve(n);
  while (out.size() < n) {
    v_ = HmacSha256(key_, v_);
    size_t take = std::min(v_.size(), n - out.size());
    out.insert(out.end(), v_.begin(), v_.begin() + take);
  }
  Update(Bytes());
  return out;
}

}  // namespace secmed
