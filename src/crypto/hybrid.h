#ifndef SECMED_CRYPTO_HYBRID_H_
#define SECMED_CRYPTO_HYBRID_H_

#include "crypto/rsa.h"
#include "util/bytes.h"
#include "util/result.h"
#include "util/rng.h"

namespace secmed {

/// The paper's hybrid `encrypt(...)` / `decrypt(...)` functions (Section 2):
/// "the information is encrypted with a newly generated symmetric session
/// key and the session key is encrypted with the public keys of the
/// client." The symmetric layer is our AEAD (AES-256-CTR + HMAC), the key
/// wrap is RSA-OAEP under the public key carried in the client's
/// credential.
///
/// Wire layout (BinaryWriter): wrapped_session_key || sealed_payload.
Result<Bytes> HybridEncrypt(const RsaPublicKey& recipient,
                            const Bytes& plaintext, RandomSource* rng);

/// Inverse of HybridEncrypt; fails with kCryptoError on any tampering.
Result<Bytes> HybridDecrypt(const RsaPrivateKey& recipient,
                            const Bytes& ciphertext);

/// Hybrid-encrypts every plaintext, spreading the work over up to
/// `threads` threads (taken literally; 0 or 1 = serial). The RNG is
/// forked once per item in index order (RandomSource::Fork), so output is
/// bit-identical for every thread count given the same seeded `rng`.
Result<std::vector<Bytes>> HybridEncryptBatch(
    const RsaPublicKey& recipient, const std::vector<Bytes>& plaintexts,
    RandomSource* rng, size_t threads = 1);

/// Encrypts a payload with an explicit pre-shared session key (no RSA
/// wrap). Used by the footnote-2 optimization of the PM protocol, where
/// the session key itself rides inside the homomorphic polynomial payload
/// and the bulk tuple set is encrypted separately.
Result<Bytes> SessionEncrypt(const Bytes& session_key, const Bytes& plaintext,
                             RandomSource* rng);

/// Inverse of SessionEncrypt.
Result<Bytes> SessionDecrypt(const Bytes& session_key, const Bytes& ciphertext);

}  // namespace secmed

#endif  // SECMED_CRYPTO_HYBRID_H_
