#ifndef SECMED_CRYPTO_ELGAMAL_H_
#define SECMED_CRYPTO_ELGAMAL_H_

#include <memory>

#include "bigint/fastexp.h"
#include "crypto/group.h"
#include "util/result.h"
#include "util/rng.h"

namespace secmed {

/// Exponential (additively homomorphic) ElGamal over QR(p) — the other
/// homomorphic scheme the paper names for the PM approach ("the elliptic
/// curve variant of ElGamal (see [10])", Cramer et al.'s election
/// scheme). Messages are encoded in the exponent:
///
///   E(m) = (g^r, g^m · h^r)     with  h = g^x
///
/// so E(a)·E(b) = E(a+b) and E(a)^k = E(k·a). Decryption recovers g^m and
/// must solve a discrete logarithm, which is only feasible for *small*
/// messages (votes, counters); DecryptSmall uses baby-step/giant-step up
/// to a caller-chosen bound. This is why the join protocols use Paillier
/// for payload-carrying ciphertexts, while exponential ElGamal fits
/// count-style aggregation.
struct ElGamalCiphertext {
  BigInt c1;  // g^r
  BigInt c2;  // g^m * h^r

  bool operator==(const ElGamalCiphertext& other) const {
    return c1 == other.c1 && c2 == other.c2;
  }
};

// Lazily built baby-step/giant-step state shared by DecryptSmall calls
// (definition in elgamal.cc).
struct ElGamalBsgsCache;

class ElGamalPublicKey {
 public:
  /// Builds the key and precomputes fixed-base tables for g and h, so the
  /// three exponentiations in Encrypt cost one table lookup pass each.
  ElGamalPublicKey(QrGroup group, BigInt g, BigInt h);

  const QrGroup& group() const { return group_; }
  const BigInt& g() const { return g_; }
  const BigInt& h() const { return h_; }

  /// Encrypts m >= 0 (in the exponent). When m == 0 the g^m factor is
  /// skipped entirely — the Rerandomize path pays only g^r and h^r.
  Result<ElGamalCiphertext> Encrypt(uint64_t m, RandomSource* rng) const;

  /// Draws the encryption randomness r uniform in [1, q) — the same draw
  /// Encrypt performs. Exposed so randomizer pools can consume the same
  /// RNG stream as the inline path.
  BigInt DrawRandomizer(RandomSource* rng) const;

  /// The expensive half of Encrypt: (g^r, h^r) via the fixed-base tables.
  ElGamalCiphertext MakeRandomizerPair(const BigInt& r) const;

  /// Finishes an encryption given a precomputed (g^r, h^r) pair: at most
  /// one table pass (g^m) and one modular product.
  Result<ElGamalCiphertext> EncryptWithRandomizer(
      uint64_t m, const ElGamalCiphertext& gr_hr) const;

  /// E(a) ⊕ E(b) = E(a + b).
  ElGamalCiphertext Add(const ElGamalCiphertext& a,
                        const ElGamalCiphertext& b) const;

  /// k ⊙ E(a) = E(k · a).
  ElGamalCiphertext ScalarMul(const ElGamalCiphertext& c, uint64_t k) const;

  /// Re-randomizes without changing the plaintext.
  Result<ElGamalCiphertext> Rerandomize(const ElGamalCiphertext& c,
                                        RandomSource* rng) const;

 private:
  QrGroup group_;
  BigInt g_;
  BigInt h_;
  // Fixed-base power tables (null only if table construction failed, in
  // which case the code falls back to generic exponentiation).
  std::shared_ptr<const FixedBaseTable> table_g_;
  std::shared_ptr<const FixedBaseTable> table_h_;
};

class ElGamalPrivateKey {
 public:
  ElGamalPrivateKey(ElGamalPublicKey pub, BigInt x);

  const ElGamalPublicKey& public_key() const { return pub_; }

  /// Recovers g^m (always possible).
  BigInt DecryptToGroupElement(const ElGamalCiphertext& c) const;

  /// Recovers m itself for 0 <= m <= max_message via baby-step/giant-step
  /// (O(sqrt(max_message)) group operations); kOutOfRange if m exceeds
  /// the bound. The baby-step table and giant step are cached across
  /// calls (and grown on demand), so bulk count-decryption loops pay the
  /// table build once instead of per ciphertext.
  Result<uint64_t> DecryptSmall(const ElGamalCiphertext& c,
                                uint64_t max_message) const;

 private:
  ElGamalPublicKey pub_;
  BigInt x_;
  // The secret exponent is fixed: recode once for DecryptToGroupElement.
  std::shared_ptr<const ExponentRecoding> rec_x_;
  std::shared_ptr<ElGamalBsgsCache> bsgs_;
};

struct ElGamalKeyPair {
  ElGamalPublicKey public_key;
  ElGamalPrivateKey private_key;
};

/// Generates a keypair over the given QR(p) group: g a random generator
/// of QR(p), x uniform in [1, q), h = g^x.
ElGamalKeyPair ElGamalGenerateKey(const QrGroup& group, RandomSource* rng);

}  // namespace secmed

#endif  // SECMED_CRYPTO_ELGAMAL_H_
