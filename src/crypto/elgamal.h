#ifndef SECMED_CRYPTO_ELGAMAL_H_
#define SECMED_CRYPTO_ELGAMAL_H_

#include "crypto/group.h"
#include "util/result.h"
#include "util/rng.h"

namespace secmed {

/// Exponential (additively homomorphic) ElGamal over QR(p) — the other
/// homomorphic scheme the paper names for the PM approach ("the elliptic
/// curve variant of ElGamal (see [10])", Cramer et al.'s election
/// scheme). Messages are encoded in the exponent:
///
///   E(m) = (g^r, g^m · h^r)     with  h = g^x
///
/// so E(a)·E(b) = E(a+b) and E(a)^k = E(k·a). Decryption recovers g^m and
/// must solve a discrete logarithm, which is only feasible for *small*
/// messages (votes, counters); DecryptSmall uses baby-step/giant-step up
/// to a caller-chosen bound. This is why the join protocols use Paillier
/// for payload-carrying ciphertexts, while exponential ElGamal fits
/// count-style aggregation.
struct ElGamalCiphertext {
  BigInt c1;  // g^r
  BigInt c2;  // g^m * h^r

  bool operator==(const ElGamalCiphertext& other) const {
    return c1 == other.c1 && c2 == other.c2;
  }
};

class ElGamalPublicKey {
 public:
  ElGamalPublicKey(QrGroup group, BigInt g, BigInt h)
      : group_(std::move(group)), g_(std::move(g)), h_(std::move(h)) {}

  const QrGroup& group() const { return group_; }
  const BigInt& g() const { return g_; }
  const BigInt& h() const { return h_; }

  /// Encrypts m >= 0 (in the exponent).
  Result<ElGamalCiphertext> Encrypt(uint64_t m, RandomSource* rng) const;

  /// E(a) ⊕ E(b) = E(a + b).
  ElGamalCiphertext Add(const ElGamalCiphertext& a,
                        const ElGamalCiphertext& b) const;

  /// k ⊙ E(a) = E(k · a).
  ElGamalCiphertext ScalarMul(const ElGamalCiphertext& c, uint64_t k) const;

  /// Re-randomizes without changing the plaintext.
  Result<ElGamalCiphertext> Rerandomize(const ElGamalCiphertext& c,
                                        RandomSource* rng) const;

 private:
  QrGroup group_;
  BigInt g_;
  BigInt h_;
};

class ElGamalPrivateKey {
 public:
  ElGamalPrivateKey(ElGamalPublicKey pub, BigInt x)
      : pub_(std::move(pub)), x_(std::move(x)) {}

  const ElGamalPublicKey& public_key() const { return pub_; }

  /// Recovers g^m (always possible).
  BigInt DecryptToGroupElement(const ElGamalCiphertext& c) const;

  /// Recovers m itself for 0 <= m <= max_message via baby-step/giant-step
  /// (O(sqrt(max_message)) group operations); kOutOfRange if m exceeds
  /// the bound.
  Result<uint64_t> DecryptSmall(const ElGamalCiphertext& c,
                                uint64_t max_message) const;

 private:
  ElGamalPublicKey pub_;
  BigInt x_;
};

struct ElGamalKeyPair {
  ElGamalPublicKey public_key;
  ElGamalPrivateKey private_key;
};

/// Generates a keypair over the given QR(p) group: g a random generator
/// of QR(p), x uniform in [1, q), h = g^x.
ElGamalKeyPair ElGamalGenerateKey(const QrGroup& group, RandomSource* rng);

}  // namespace secmed

#endif  // SECMED_CRYPTO_ELGAMAL_H_
