#ifndef SECMED_CRYPTO_AES_H_
#define SECMED_CRYPTO_AES_H_

#include <cstdint>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"

namespace secmed {

/// AES block cipher (FIPS 197) for 128-, 192- and 256-bit keys.
///
/// Only the forward (encrypt) direction is used by the library (CTR mode),
/// but the inverse cipher is provided for completeness and testing.
class Aes {
 public:
  static constexpr size_t kBlockSize = 16;

  /// Creates a cipher for a 16-, 24- or 32-byte key.
  static Result<Aes> Create(const Bytes& key);

  /// Encrypts one 16-byte block in place.
  void EncryptBlock(uint8_t block[kBlockSize]) const;
  /// Decrypts one 16-byte block in place.
  void DecryptBlock(uint8_t block[kBlockSize]) const;

  size_t key_size() const { return key_size_; }

 private:
  Aes() = default;
  void ExpandKey(const Bytes& key);

  std::vector<uint32_t> round_keys_;
  int rounds_ = 0;
  size_t key_size_ = 0;
};

/// AES in counter mode: XORs the keystream generated from (iv, counter)
/// into `data`. Encryption and decryption are the same operation. The IV
/// must be 12 bytes; the low 4 bytes of each block form a big-endian block
/// counter starting at `initial_counter`.
Result<Bytes> AesCtrTransform(const Aes& aes, const Bytes& iv,
                              const Bytes& data,
                              uint32_t initial_counter = 0);

}  // namespace secmed

#endif  // SECMED_CRYPTO_AES_H_
