#include "bigint/bigint.h"

#include <algorithm>
#include <atomic>
#include <cassert>

namespace secmed {

namespace {
constexpr uint64_t kBase = 1ULL << 32;
// Default from the BM_BigIntMul_KaratsubaSweep curve in EXPERIMENTS.md
// (the per-recursion vector allocations make schoolbook competitive well
// past the textbook crossover); overridable at runtime via
// BigInt::set_karatsuba_threshold for re-tuning on other hosts.
std::atomic<size_t> g_karatsuba_threshold{48};  // limbs

// Removes trailing zero limbs.
void Trim(std::vector<uint32_t>* v) {
  while (!v->empty() && v->back() == 0) v->pop_back();
}
}  // namespace

BigInt::BigInt(int64_t v) {
  negative_ = v < 0;
  // Convert through uint64_t to handle INT64_MIN without overflow.
  uint64_t mag = negative_ ? ~static_cast<uint64_t>(v) + 1 : static_cast<uint64_t>(v);
  if (mag != 0) limbs_.push_back(static_cast<uint32_t>(mag));
  if (mag >> 32) limbs_.push_back(static_cast<uint32_t>(mag >> 32));
  if (limbs_.empty()) negative_ = false;
}

BigInt::BigInt(uint64_t v) {
  if (v != 0) limbs_.push_back(static_cast<uint32_t>(v));
  if (v >> 32) limbs_.push_back(static_cast<uint32_t>(v >> 32));
}

void BigInt::Normalize() {
  Trim(&limbs_);
  if (limbs_.empty()) negative_ = false;
}

BigInt BigInt::FromLimbs(std::vector<uint32_t> limbs) {
  BigInt out;
  out.limbs_ = std::move(limbs);
  out.Normalize();
  return out;
}

size_t BigInt::karatsuba_threshold() {
  return g_karatsuba_threshold.load(std::memory_order_relaxed);
}

void BigInt::set_karatsuba_threshold(size_t limbs) {
  if (limbs < 2) limbs = 2;
  g_karatsuba_threshold.store(limbs, std::memory_order_relaxed);
}

Result<BigInt> BigInt::FromDecimal(std::string_view s) {
  if (s.empty()) return Status::ParseError("empty decimal string");
  bool neg = false;
  size_t i = 0;
  if (s[0] == '-' || s[0] == '+') {
    neg = s[0] == '-';
    i = 1;
  }
  if (i == s.size()) return Status::ParseError("decimal string has no digits");
  BigInt out;
  // Consume 9 digits at a time: out = out * 10^k + chunk.
  while (i < s.size()) {
    size_t chunk_len = std::min<size_t>(9, s.size() - i);
    uint32_t chunk = 0;
    uint32_t pow10 = 1;
    for (size_t k = 0; k < chunk_len; ++k, ++i) {
      char c = s[i];
      if (c < '0' || c > '9') {
        return Status::ParseError("invalid decimal digit in: " + std::string(s));
      }
      chunk = chunk * 10 + static_cast<uint32_t>(c - '0');
      pow10 *= 10;
    }
    out = out * BigInt(static_cast<uint64_t>(pow10)) +
          BigInt(static_cast<uint64_t>(chunk));
  }
  out.negative_ = neg && !out.is_zero();
  return out;
}

Result<BigInt> BigInt::FromHex(std::string_view s) {
  if (s.empty()) return Status::ParseError("empty hex string");
  bool neg = false;
  size_t start = 0;
  if (s[0] == '-' || s[0] == '+') {
    neg = s[0] == '-';
    start = 1;
  }
  if (start == s.size()) return Status::ParseError("hex string has no digits");
  BigInt out;
  // Parse from the least-significant end, 8 hex digits per limb.
  size_t len = s.size() - start;
  size_t nlimbs = (len + 7) / 8;
  out.limbs_.assign(nlimbs, 0);
  size_t pos = s.size();
  for (size_t limb = 0; limb < nlimbs; ++limb) {
    size_t digits = std::min<size_t>(8, pos - start);
    uint32_t v = 0;
    for (size_t k = pos - digits; k < pos; ++k) {
      char c = s[k];
      int nib;
      if (c >= '0' && c <= '9') nib = c - '0';
      else if (c >= 'a' && c <= 'f') nib = c - 'a' + 10;
      else if (c >= 'A' && c <= 'F') nib = c - 'A' + 10;
      else return Status::ParseError("invalid hex digit in: " + std::string(s));
      v = (v << 4) | static_cast<uint32_t>(nib);
    }
    out.limbs_[limb] = v;
    pos -= digits;
  }
  out.Normalize();
  out.negative_ = neg && !out.is_zero();
  return out;
}

BigInt BigInt::FromBytes(const Bytes& be) {
  BigInt out;
  size_t nlimbs = (be.size() + 3) / 4;
  out.limbs_.assign(nlimbs, 0);
  // be[0] is the most significant byte.
  for (size_t i = 0; i < be.size(); ++i) {
    size_t bit_index_from_lsb = be.size() - 1 - i;
    size_t limb = bit_index_from_lsb / 4;
    size_t shift = (bit_index_from_lsb % 4) * 8;
    out.limbs_[limb] |= static_cast<uint32_t>(be[i]) << shift;
  }
  out.Normalize();
  return out;
}

std::string BigInt::ToDecimal() const {
  if (is_zero()) return "0";
  // Repeated division by 10^9.
  std::vector<uint32_t> mag = limbs_;
  std::string out;
  while (!mag.empty()) {
    uint64_t rem = 0;
    for (size_t i = mag.size(); i-- > 0;) {
      uint64_t cur = (rem << 32) | mag[i];
      mag[i] = static_cast<uint32_t>(cur / 1000000000ULL);
      rem = cur % 1000000000ULL;
    }
    Trim(&mag);
    for (int k = 0; k < 9; ++k) {
      out.push_back(static_cast<char>('0' + rem % 10));
      rem /= 10;
      if (mag.empty() && rem == 0) break;
    }
  }
  // Strip leading zeros created by the last chunk.
  while (out.size() > 1 && out.back() == '0') out.pop_back();
  if (negative_) out.push_back('-');
  std::reverse(out.begin(), out.end());
  return out;
}

std::string BigInt::ToHex() const {
  if (is_zero()) return "0";
  static const char* kDigits = "0123456789abcdef";
  std::string out;
  for (size_t i = limbs_.size(); i-- > 0;) {
    for (int shift = 28; shift >= 0; shift -= 4) {
      out.push_back(kDigits[(limbs_[i] >> shift) & 0xF]);
    }
  }
  size_t first = out.find_first_not_of('0');
  out = out.substr(first);
  if (negative_) out.insert(out.begin(), '-');
  return out;
}

Bytes BigInt::ToBytes(size_t min_len) const {
  size_t nbytes = (BitLength() + 7) / 8;
  size_t len = std::max(nbytes, min_len);
  Bytes out(len, 0);
  for (size_t i = 0; i < nbytes; ++i) {
    size_t limb = i / 4;
    size_t shift = (i % 4) * 8;
    out[len - 1 - i] = static_cast<uint8_t>(limbs_[limb] >> shift);
  }
  return out;
}

size_t BigInt::BitLength() const {
  if (limbs_.empty()) return 0;
  uint32_t top = limbs_.back();
  size_t bits = (limbs_.size() - 1) * 32;
  while (top != 0) {
    ++bits;
    top >>= 1;
  }
  return bits;
}

bool BigInt::TestBit(size_t i) const {
  size_t limb = i / 32;
  if (limb >= limbs_.size()) return false;
  return (limbs_[limb] >> (i % 32)) & 1u;
}

uint64_t BigInt::LowU64() const {
  uint64_t v = limbs_.empty() ? 0 : limbs_[0];
  if (limbs_.size() > 1) v |= static_cast<uint64_t>(limbs_[1]) << 32;
  return v;
}

int BigInt::CompareMag(const std::vector<uint32_t>& a,
                       const std::vector<uint32_t>& b) {
  if (a.size() != b.size()) return a.size() < b.size() ? -1 : 1;
  for (size_t i = a.size(); i-- > 0;) {
    if (a[i] != b[i]) return a[i] < b[i] ? -1 : 1;
  }
  return 0;
}

int BigInt::CompareMagnitude(const BigInt& other) const {
  return CompareMag(limbs_, other.limbs_);
}

int BigInt::Compare(const BigInt& other) const {
  if (negative_ != other.negative_) return negative_ ? -1 : 1;
  int mag = CompareMag(limbs_, other.limbs_);
  return negative_ ? -mag : mag;
}

BigInt BigInt::operator-() const {
  BigInt out = *this;
  if (!out.is_zero()) out.negative_ = !out.negative_;
  return out;
}

BigInt BigInt::Abs() const {
  BigInt out = *this;
  out.negative_ = false;
  return out;
}

std::vector<uint32_t> BigInt::AddMag(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b) {
  const auto& longer = a.size() >= b.size() ? a : b;
  const auto& shorter = a.size() >= b.size() ? b : a;
  std::vector<uint32_t> out;
  out.reserve(longer.size() + 1);
  uint64_t carry = 0;
  for (size_t i = 0; i < longer.size(); ++i) {
    uint64_t sum = carry + longer[i] + (i < shorter.size() ? shorter[i] : 0);
    out.push_back(static_cast<uint32_t>(sum));
    carry = sum >> 32;
  }
  if (carry) out.push_back(static_cast<uint32_t>(carry));
  return out;
}

std::vector<uint32_t> BigInt::SubMag(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b) {
  assert(CompareMag(a, b) >= 0);
  std::vector<uint32_t> out;
  out.reserve(a.size());
  int64_t borrow = 0;
  for (size_t i = 0; i < a.size(); ++i) {
    int64_t diff = static_cast<int64_t>(a[i]) - borrow -
                   (i < b.size() ? static_cast<int64_t>(b[i]) : 0);
    if (diff < 0) {
      diff += static_cast<int64_t>(kBase);
      borrow = 1;
    } else {
      borrow = 0;
    }
    out.push_back(static_cast<uint32_t>(diff));
  }
  Trim(&out);
  return out;
}

std::vector<uint32_t> BigInt::MulSchoolbook(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b) {
  if (a.empty() || b.empty()) return {};
  std::vector<uint32_t> out(a.size() + b.size(), 0);
  for (size_t i = 0; i < a.size(); ++i) {
    uint64_t carry = 0;
    uint64_t ai = a[i];
    for (size_t j = 0; j < b.size(); ++j) {
      uint64_t cur = out[i + j] + ai * b[j] + carry;
      out[i + j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    size_t k = i + b.size();
    while (carry) {
      uint64_t cur = out[k] + carry;
      out[k] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
      ++k;
    }
  }
  Trim(&out);
  return out;
}

std::vector<uint32_t> BigInt::MulKaratsuba(const std::vector<uint32_t>& a,
                                           const std::vector<uint32_t>& b) {
  const size_t threshold =
      g_karatsuba_threshold.load(std::memory_order_relaxed);
  if (a.size() < threshold || b.size() < threshold) {
    return MulSchoolbook(a, b);
  }
  const size_t half = std::max(a.size(), b.size()) / 2;
  auto split = [half](const std::vector<uint32_t>& v)
      -> std::pair<std::vector<uint32_t>, std::vector<uint32_t>> {
    if (v.size() <= half) return {v, {}};
    std::vector<uint32_t> lo(v.begin(), v.begin() + half);
    std::vector<uint32_t> hi(v.begin() + half, v.end());
    Trim(&lo);
    return {lo, hi};
  };
  auto [a_lo, a_hi] = split(a);
  auto [b_lo, b_hi] = split(b);

  std::vector<uint32_t> z0 = MulKaratsuba(a_lo, b_lo);
  std::vector<uint32_t> z2 = MulKaratsuba(a_hi, b_hi);
  std::vector<uint32_t> sum_a = AddMag(a_lo, a_hi);
  std::vector<uint32_t> sum_b = AddMag(b_lo, b_hi);
  std::vector<uint32_t> z1 = MulKaratsuba(sum_a, sum_b);
  z1 = SubMag(z1, z0);
  z1 = SubMag(z1, z2);

  // out = z2 << (2*half) + z1 << half + z0
  std::vector<uint32_t> out(std::max({z0.size(), z1.size() + half,
                                      z2.size() + 2 * half}) + 1, 0);
  auto add_at = [&out](const std::vector<uint32_t>& v, size_t offset) {
    uint64_t carry = 0;
    size_t i = 0;
    for (; i < v.size(); ++i) {
      uint64_t cur = static_cast<uint64_t>(out[offset + i]) + v[i] + carry;
      out[offset + i] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    while (carry) {
      uint64_t cur = static_cast<uint64_t>(out[offset + i]) + carry;
      out[offset + i] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
      ++i;
    }
  };
  add_at(z0, 0);
  add_at(z1, half);
  add_at(z2, 2 * half);
  Trim(&out);
  return out;
}

std::vector<uint32_t> BigInt::MulMag(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b) {
  return MulKaratsuba(a, b);
}

BigInt BigInt::operator+(const BigInt& other) const {
  BigInt out;
  if (negative_ == other.negative_) {
    out.limbs_ = AddMag(limbs_, other.limbs_);
    out.negative_ = negative_;
  } else {
    int cmp = CompareMag(limbs_, other.limbs_);
    if (cmp == 0) return BigInt();
    if (cmp > 0) {
      out.limbs_ = SubMag(limbs_, other.limbs_);
      out.negative_ = negative_;
    } else {
      out.limbs_ = SubMag(other.limbs_, limbs_);
      out.negative_ = other.negative_;
    }
  }
  out.Normalize();
  return out;
}

BigInt BigInt::operator-(const BigInt& other) const { return *this + (-other); }

BigInt BigInt::operator*(const BigInt& other) const {
  BigInt out;
  out.limbs_ = MulMag(limbs_, other.limbs_);
  out.negative_ = negative_ != other.negative_ && !out.limbs_.empty();
  return out;
}

BigInt& BigInt::operator+=(const BigInt& other) { return *this = *this + other; }
BigInt& BigInt::operator-=(const BigInt& other) { return *this = *this - other; }
BigInt& BigInt::operator*=(const BigInt& other) { return *this = *this * other; }

void BigInt::DivModMag(const std::vector<uint32_t>& a,
                       const std::vector<uint32_t>& b,
                       std::vector<uint32_t>* quot,
                       std::vector<uint32_t>* rem) {
  assert(!b.empty());
  quot->clear();
  rem->clear();
  if (CompareMag(a, b) < 0) {
    *rem = a;
    return;
  }
  if (b.size() == 1) {
    // Short division.
    uint64_t d = b[0];
    quot->assign(a.size(), 0);
    uint64_t r = 0;
    for (size_t i = a.size(); i-- > 0;) {
      uint64_t cur = (r << 32) | a[i];
      (*quot)[i] = static_cast<uint32_t>(cur / d);
      r = cur % d;
    }
    Trim(quot);
    if (r) rem->push_back(static_cast<uint32_t>(r));
    return;
  }

  // Knuth TAOCP vol. 2, algorithm D. Normalize so the top limb of the
  // divisor has its high bit set.
  int shift = 0;
  uint32_t top = b.back();
  while ((top & 0x80000000u) == 0) {
    top <<= 1;
    ++shift;
  }
  const size_t n = b.size();
  const size_t m = a.size() - n;

  auto shl = [](const std::vector<uint32_t>& v, int s, bool extend) {
    std::vector<uint32_t> out(v.size() + (extend ? 1 : 0), 0);
    uint32_t carry = 0;
    for (size_t i = 0; i < v.size(); ++i) {
      out[i] = (s == 0) ? v[i] : ((v[i] << s) | carry);
      carry = (s == 0) ? 0 : static_cast<uint32_t>(v[i] >> (32 - s));
    }
    if (extend) out[v.size()] = carry;
    return out;
  };

  std::vector<uint32_t> u = shl(a, shift, /*extend=*/true);  // size m+n+1
  std::vector<uint32_t> v = shl(b, shift, /*extend=*/false);  // size n
  quot->assign(m + 1, 0);

  const uint64_t v_top = v[n - 1];
  const uint64_t v_second = n >= 2 ? v[n - 2] : 0;

  for (size_t j = m + 1; j-- > 0;) {
    // Estimate q_hat = (u[j+n]*B + u[j+n-1]) / v[n-1].
    uint64_t numerator = (static_cast<uint64_t>(u[j + n]) << 32) | u[j + n - 1];
    uint64_t q_hat = numerator / v_top;
    uint64_t r_hat = numerator % v_top;
    if (q_hat >= kBase) {
      q_hat = kBase - 1;
      r_hat = numerator - q_hat * v_top;
    }
    while (r_hat < kBase &&
           q_hat * v_second > ((r_hat << 32) | (n >= 2 ? u[j + n - 2] : 0))) {
      --q_hat;
      r_hat += v_top;
    }
    // Multiply-subtract: u[j..j+n] -= q_hat * v.
    int64_t borrow = 0;
    uint64_t carry = 0;
    for (size_t i = 0; i < n; ++i) {
      uint64_t prod = q_hat * v[i] + carry;
      carry = prod >> 32;
      int64_t diff = static_cast<int64_t>(u[i + j]) -
                     static_cast<int64_t>(prod & 0xFFFFFFFFULL) - borrow;
      if (diff < 0) {
        diff += static_cast<int64_t>(kBase);
        borrow = 1;
      } else {
        borrow = 0;
      }
      u[i + j] = static_cast<uint32_t>(diff);
    }
    int64_t diff = static_cast<int64_t>(u[j + n]) -
                   static_cast<int64_t>(carry) - borrow;
    bool negative = diff < 0;
    u[j + n] = static_cast<uint32_t>(diff);

    if (negative) {
      // q_hat was one too large; add back.
      --q_hat;
      uint64_t c = 0;
      for (size_t i = 0; i < n; ++i) {
        uint64_t sum = static_cast<uint64_t>(u[i + j]) + v[i] + c;
        u[i + j] = static_cast<uint32_t>(sum);
        c = sum >> 32;
      }
      u[j + n] = static_cast<uint32_t>(u[j + n] + c);
    }
    (*quot)[j] = static_cast<uint32_t>(q_hat);
  }
  Trim(quot);

  // Denormalize the remainder: rem = u[0..n) >> shift.
  rem->assign(n, 0);
  for (size_t i = 0; i < n; ++i) {
    uint32_t lo = u[i] >> shift;
    uint32_t hi = (shift && i + 1 < n + 1)
                      ? static_cast<uint32_t>(static_cast<uint64_t>(u[i + 1])
                                              << (32 - shift))
                      : 0;
    (*rem)[i] = shift ? (lo | hi) : u[i];
  }
  Trim(rem);
}

Result<std::pair<BigInt, BigInt>> BigInt::DivMod(const BigInt& a,
                                                 const BigInt& b) {
  if (b.is_zero()) return Status::InvalidArgument("division by zero");
  BigInt q, r;
  DivModMag(a.limbs_, b.limbs_, &q.limbs_, &r.limbs_);
  q.negative_ = (a.negative_ != b.negative_) && !q.limbs_.empty();
  r.negative_ = a.negative_ && !r.limbs_.empty();
  return std::make_pair(q, r);
}

BigInt BigInt::operator/(const BigInt& other) const {
  auto res = DivMod(*this, other);
  assert(res.ok());
  return res.value().first;
}

BigInt BigInt::operator%(const BigInt& other) const {
  auto res = DivMod(*this, other);
  assert(res.ok());
  return res.value().second;
}

Result<BigInt> BigInt::Mod(const BigInt& a, const BigInt& m) {
  if (m.is_zero()) return Status::InvalidArgument("modulus is zero");
  SECMED_ASSIGN_OR_RETURN(auto qr, DivMod(a, m));
  BigInt r = qr.second;
  if (r.is_negative()) r = r + m.Abs();
  return r;
}

BigInt BigInt::operator<<(size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  const size_t limb_shift = bits / 32;
  const int bit_shift = static_cast<int>(bits % 32);
  BigInt out;
  out.negative_ = negative_;
  out.limbs_.assign(limbs_.size() + limb_shift + 1, 0);
  for (size_t i = 0; i < limbs_.size(); ++i) {
    uint64_t v = static_cast<uint64_t>(limbs_[i]) << bit_shift;
    out.limbs_[i + limb_shift] |= static_cast<uint32_t>(v);
    out.limbs_[i + limb_shift + 1] |= static_cast<uint32_t>(v >> 32);
  }
  out.Normalize();
  return out;
}

BigInt BigInt::operator>>(size_t bits) const {
  if (is_zero() || bits == 0) return *this;
  const size_t limb_shift = bits / 32;
  const int bit_shift = static_cast<int>(bits % 32);
  if (limb_shift >= limbs_.size()) return BigInt();
  BigInt out;
  out.negative_ = negative_;
  out.limbs_.assign(limbs_.size() - limb_shift, 0);
  for (size_t i = 0; i < out.limbs_.size(); ++i) {
    uint64_t v = limbs_[i + limb_shift] >> bit_shift;
    if (bit_shift && i + limb_shift + 1 < limbs_.size()) {
      v |= static_cast<uint64_t>(limbs_[i + limb_shift + 1]) << (32 - bit_shift);
    }
    out.limbs_[i] = static_cast<uint32_t>(v);
  }
  out.Normalize();
  return out;
}

BigInt BigInt::RandomBelow(const BigInt& bound, RandomSource* rng) {
  assert(!bound.is_zero() && !bound.is_negative());
  const size_t bits = bound.BitLength();
  const size_t nbytes = (bits + 7) / 8;
  const int excess_bits = static_cast<int>(nbytes * 8 - bits);
  for (;;) {
    Bytes buf = rng->Generate(nbytes);
    buf[0] &= static_cast<uint8_t>(0xFF >> excess_bits);
    BigInt candidate = FromBytes(buf);
    if (candidate < bound) return candidate;
  }
}

BigInt BigInt::RandomWithBits(size_t bits, RandomSource* rng) {
  assert(bits > 0);
  const size_t nbytes = (bits + 7) / 8;
  const int excess_bits = static_cast<int>(nbytes * 8 - bits);
  Bytes buf = rng->Generate(nbytes);
  buf[0] &= static_cast<uint8_t>(0xFF >> excess_bits);
  buf[0] |= static_cast<uint8_t>(0x80 >> excess_bits);  // force top bit
  return FromBytes(buf);
}

std::ostream& operator<<(std::ostream& os, const BigInt& v) {
  return os << v.ToDecimal();
}

}  // namespace secmed
