#include "bigint/prime.h"

#include <array>
#include <cassert>
#include <vector>

#include "bigint/fastexp.h"
#include "bigint/modular.h"

namespace secmed {

namespace {

// Primes below 1000, used for cheap trial division before Miller–Rabin.
const std::vector<uint32_t>& SmallPrimes() {
  static const std::vector<uint32_t>* primes = [] {
    auto* v = new std::vector<uint32_t>();
    std::array<bool, 1000> sieve{};
    for (uint32_t i = 2; i < sieve.size(); ++i) {
      if (sieve[i]) continue;
      v->push_back(i);
      for (uint32_t j = i * i; j < sieve.size(); j += i) sieve[j] = true;
    }
    return v;
  }();
  return *primes;
}

// n mod d for small d without allocating a BigInt.
uint32_t ModSmall(const BigInt& n, uint32_t d) {
  const auto& limbs = n.limbs();
  uint64_t rem = 0;
  for (size_t i = limbs.size(); i-- > 0;) {
    rem = ((rem << 32) | limbs[i]) % d;
  }
  return static_cast<uint32_t>(rem);
}

// Raw-limb state for the Miller–Rabin rounds of one candidate n: d is
// recoded once, the squaring chain runs entirely in the Montgomery domain,
// and the 1 / n-1 comparisons happen against precomputed Montgomery-domain
// limb images instead of round-tripping x out per squaring.
struct MillerRabinState {
  using Limb = MontgomeryContext::Limb;

  MillerRabinState(const MontgomeryContext& ctx, const BigInt& n_minus_1,
                   const BigInt& d, size_t r)
      : ctx(ctx),
        rec_d(ExponentRecoding::Create(d)),
        r(r),
        n(ctx.limb_count()),
        one_mont(ctx.MontOneLimbs()),
        minus_one_mont(n),
        x(n),
        scratch(ctx.scratch_limbs()) {
    ctx.ToMontInto(minus_one_mont.data(), n_minus_1, scratch.data());
  }

  bool EqualsLimbs(const Limb* a, const std::vector<Limb>& b) const {
    for (size_t i = 0; i < n; ++i) {
      if (a[i] != b[i]) return false;
    }
    return true;
  }

  // One round with the given base; n odd, n > 3, n - 1 == d * 2^r, d odd.
  bool Round(const BigInt& base) {
    ctx.ToMontInto(x.data(), base, scratch.data());
    ctx.ExpMontInto(x.data(), x.data(), rec_d, &work);
    if (EqualsLimbs(x.data(), one_mont) ||
        EqualsLimbs(x.data(), minus_one_mont)) {
      return true;
    }
    for (size_t i = 1; i < r; ++i) {
      ctx.MontSqrInto(x.data(), x.data(), scratch.data());
      if (EqualsLimbs(x.data(), minus_one_mont)) return true;
      if (EqualsLimbs(x.data(), one_mont)) return false;  // nontrivial sqrt of 1
    }
    return false;
  }

  const MontgomeryContext& ctx;
  const ExponentRecoding rec_d;
  const size_t r;
  const size_t n;
  const std::vector<Limb>& one_mont;
  std::vector<Limb> minus_one_mont;
  std::vector<Limb> x;
  std::vector<Limb> scratch;
  std::vector<Limb> work;
};

}  // namespace

bool IsProbablePrime(const BigInt& n, RandomSource* rng, int rounds) {
  if (n.is_negative()) return false;
  if (n < BigInt(2)) return false;
  for (uint32_t p : SmallPrimes()) {
    if (n == BigInt(static_cast<uint64_t>(p))) return true;
    if (ModSmall(n, p) == 0) return false;
  }
  // n is odd and > 10^6 here.
  const BigInt n_minus_1 = n - BigInt(1);
  BigInt d = n_minus_1;
  size_t r = 0;
  while (d.is_even()) {
    d = d >> 1;
    ++r;
  }
  auto ctx_res = MontgomeryContext::Create(n);
  assert(ctx_res.ok());
  const MontgomeryContext& ctx = ctx_res.value();
  MillerRabinState state(ctx, n_minus_1, d, r);
  const BigInt three(3);
  const BigInt span = n - three;  // bases drawn from [2, n-2]
  for (int i = 0; i < rounds; ++i) {
    BigInt base = BigInt::RandomBelow(span, rng) + BigInt(2);
    if (!state.Round(base)) return false;
  }
  return true;
}

BigInt RandomPrime(size_t bits, RandomSource* rng) {
  assert(bits >= 8);
  for (;;) {
    BigInt candidate = BigInt::RandomWithBits(bits, rng);
    if (candidate.is_even()) candidate += BigInt(1);
    if (IsProbablePrime(candidate, rng)) return candidate;
  }
}

BigInt RandomSafePrime(size_t bits, RandomSource* rng) {
  assert(bits >= 16);
  const auto& primes = SmallPrimes();
  for (;;) {
    // Draw a Sophie Germain candidate q with bits-1 bits, forced odd and
    // forced q ≡ 1 (mod 2) so p = 2q + 1 has exactly `bits` bits.
    BigInt q = BigInt::RandomWithBits(bits - 1, rng);
    if (q.is_even()) q += BigInt(1);
    // Sieve q and p = 2q+1 together: p ≡ 0 (mod s) iff q ≡ (s-1)/2 (mod s).
    bool sieved_out = false;
    for (uint32_t s : primes) {
      if (s == 2) continue;
      uint32_t qm = ModSmall(q, s);
      if (qm == 0 || (2 * qm + 1) % s == 0) {
        sieved_out = true;
        break;
      }
    }
    if (sieved_out) continue;
    if (!IsProbablePrime(q, rng)) continue;
    BigInt p = (q << 1) + BigInt(1);
    if (IsProbablePrime(p, rng)) return p;
  }
}

}  // namespace secmed
