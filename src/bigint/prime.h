#ifndef SECMED_BIGINT_PRIME_H_
#define SECMED_BIGINT_PRIME_H_

#include "bigint/bigint.h"
#include "util/rng.h"

namespace secmed {

/// Miller–Rabin probabilistic primality test.
///
/// Performs trial division by small primes first, then `rounds` rounds of
/// Miller–Rabin with random bases from `rng`. Error probability is at most
/// 4^-rounds for composite inputs.
bool IsProbablePrime(const BigInt& n, RandomSource* rng, int rounds = 32);

/// Generates a random prime with exactly `bits` bits (top bit set).
BigInt RandomPrime(size_t bits, RandomSource* rng);

/// Generates a random *safe* prime p with exactly `bits` bits, i.e. a prime
/// p such that (p-1)/2 is also prime. Safe primes define the group of
/// quadratic residues used by the commutative encryption scheme. This is
/// expensive for large `bits`; protocol code uses the precomputed groups in
/// crypto/group_params.h instead.
BigInt RandomSafePrime(size_t bits, RandomSource* rng);

}  // namespace secmed

#endif  // SECMED_BIGINT_PRIME_H_
