#include "bigint/modular.h"

#include <cassert>
#include <utility>

#include "bigint/fastexp.h"

namespace secmed {

BigInt Gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a.Abs();
  BigInt y = b.Abs();
  while (!y.is_zero()) {
    BigInt r = x % y;
    x = y;
    y = r;
  }
  return x;
}

BigInt Lcm(const BigInt& a, const BigInt& b) {
  if (a.is_zero() || b.is_zero()) return BigInt();
  BigInt g = Gcd(a, b);
  return (a.Abs() / g) * b.Abs();
}

ExtendedGcdResult ExtendedGcd(const BigInt& a, const BigInt& b) {
  // Iterative extended Euclid over signed BigInts.
  BigInt old_r = a, r = b;
  BigInt old_s = 1, s = 0;
  BigInt old_t = 0, t = 1;
  while (!r.is_zero()) {
    auto qr = BigInt::DivMod(old_r, r);
    assert(qr.ok());
    BigInt q = qr.value().first;
    BigInt tmp = old_r - q * r;
    old_r = r;
    r = tmp;
    tmp = old_s - q * s;
    old_s = s;
    s = tmp;
    tmp = old_t - q * t;
    old_t = t;
    t = tmp;
  }
  return {old_r, old_s, old_t};
}

Result<BigInt> ModInverse(const BigInt& a, const BigInt& m) {
  if (m <= BigInt(1)) return Status::InvalidArgument("modulus must be > 1");
  SECMED_ASSIGN_OR_RETURN(BigInt ar, BigInt::Mod(a, m));
  ExtendedGcdResult e = ExtendedGcd(ar, m);
  if (e.g != BigInt(1)) {
    return Status::InvalidArgument("value is not invertible modulo m");
  }
  return BigInt::Mod(e.x, m);
}

Result<BigInt> ModMul(const BigInt& a, const BigInt& b, const BigInt& m) {
  if (m.is_zero() || m.is_negative()) {
    return Status::InvalidArgument("modulus must be positive");
  }
  SECMED_ASSIGN_OR_RETURN(BigInt ar, BigInt::Mod(a, m));
  SECMED_ASSIGN_OR_RETURN(BigInt br, BigInt::Mod(b, m));
  return BigInt::Mod(ar * br, m);
}

namespace {
// Plain square-and-multiply with division-based reduction, used for even
// moduli (rare path).
Result<BigInt> ModExpGeneric(const BigInt& base, const BigInt& exp,
                             const BigInt& m) {
  SECMED_ASSIGN_OR_RETURN(BigInt b, BigInt::Mod(base, m));
  BigInt result = BigInt::Mod(BigInt(1), m).value();
  const size_t bits = exp.BitLength();
  for (size_t i = bits; i-- > 0;) {
    result = (result * result) % m;
    if (exp.TestBit(i)) result = (result * b) % m;
  }
  return result;
}

// ---------------------------------------------------------------------------
// Shared limb-level plumbing for both limb widths. MontgomeryContext
// instantiates this with the native Limb; MontgomeryContextRef32 pins it to
// uint32_t so the two kernels stay differentially testable against each
// other regardless of the host.

/// BigInt u32 limbs -> L limbs, exactly n entries. For 64-bit limbs each
/// pair of u32 limbs packs into one; the value must already be < 2^(n*B).
template <typename L>
std::vector<L> PackLimbs(const BigInt& x, size_t n) {
  const std::vector<uint32_t>& src = x.limbs();
  std::vector<L> out(n, 0);
  if constexpr (sizeof(L) == 8) {
    for (size_t i = 0; i < src.size(); ++i) {
      out[i / 2] |= static_cast<L>(src[i]) << (32 * (i % 2));
    }
  } else {
    for (size_t i = 0; i < src.size(); ++i) out[i] = src[i];
  }
  return out;
}

/// L limbs -> BigInt, through the u32 limb constructor (no byte strings).
template <typename L>
BigInt UnpackLimbs(const L* a, size_t n) {
  std::vector<uint32_t> out;
  if constexpr (sizeof(L) == 8) {
    out.resize(n * 2);
    for (size_t i = 0; i < n; ++i) {
      out[2 * i] = static_cast<uint32_t>(a[i]);
      out[2 * i + 1] = static_cast<uint32_t>(a[i] >> 32);
    }
  } else {
    out.assign(a, a + n);
  }
  return BigInt::FromLimbs(std::move(out));
}

/// Reduces x into [0, m) first — this is what fixes the old PadLimbs
/// truncation bug: operands wider than the modulus (or negative) are
/// reduced, never silently chopped to n limbs.
template <typename L>
std::vector<L> PackReduced(const BigInt& x, const BigInt& m, size_t n) {
  if (x.is_negative() || x >= m) {
    return PackLimbs<L>(BigInt::Mod(x, m).value(), n);
  }
  return PackLimbs<L>(x, n);
}

template <typename L>
struct RawParts {
  std::vector<L> mod, r2, one, unit;
  size_t n = 0;
  L inv = 0;
};

/// Non-owning view of a context's precomputed limb vectors; what the shared
/// impl helpers actually operate on (no copies at the call sites).
template <typename L>
struct RawView {
  const L* mod;
  const L* r2;
  const L* one;
  const L* unit;
  size_t n;
  L inv;
};

template <typename L>
RawParts<L> BuildRawParts(const BigInt& modulus, BigInt* one_mont_out) {
  constexpr int B = montk::kBits<L>;
  RawParts<L> p;
  p.n = (modulus.BitLength() + B - 1) / B;
  p.mod = PackLimbs<L>(modulus, p.n);
  p.inv = montk::NegInvLimb<L>(p.mod[0]);
  const BigInt r = BigInt(1) << (static_cast<size_t>(B) * p.n);
  const BigInt one_mont = BigInt::Mod(r, modulus).value();
  p.one = PackLimbs<L>(one_mont, p.n);
  p.r2 = PackLimbs<L>(BigInt::Mod(one_mont * one_mont, modulus).value(), p.n);
  p.unit.assign(p.n, 0);
  p.unit[0] = 1;
  if (one_mont_out != nullptr) *one_mont_out = one_mont;
  return p;
}

/// a * b mod m (normal domain): two kernel calls — ab·R^-1, then ×R² — so
/// no ToMont conversion of either operand is needed.
template <typename L>
BigInt MulImpl(const RawView<L>& p, const BigInt& modulus, const BigInt& a,
               const BigInt& b) {
  std::vector<L> av = PackReduced<L>(a, modulus, p.n);
  std::vector<L> bv = PackReduced<L>(b, modulus, p.n);
  std::vector<L> t(p.n + 2);
  montk::MulInto(av.data(), av.data(), bv.data(), p.mod, p.inv, p.n,
                 t.data());
  montk::MulInto(av.data(), av.data(), p.r2, p.mod, p.inv, p.n,
                 t.data());
  return UnpackLimbs(av.data(), p.n);
}

template <typename L>
BigInt SqrImpl(const RawView<L>& p, const BigInt& modulus, const BigInt& a) {
  std::vector<L> av = PackReduced<L>(a, modulus, p.n);
  std::vector<L> scratch(2 * p.n + 2);
  montk::SqrInto(av.data(), av.data(), p.mod, p.inv, p.n,
                 scratch.data());
  montk::MulInto(av.data(), av.data(), p.r2, p.mod, p.inv, p.n,
                 scratch.data());
  return UnpackLimbs(av.data(), p.n);
}

/// acc = base_mont^rec in the Montgomery domain, allocation-free per step.
/// Layout of *work: [odd-power table: odd_count*n][base²: n][scratch: 2n+2].
template <typename L>
void ExpMontImpl(const RawView<L>& p, L* acc, const L* base_mont,
                 const ExponentRecoding& rec, std::vector<L>* work) {
  const size_t n = p.n;
  if (rec.steps().empty()) {  // exponent was zero
    for (size_t i = 0; i < n; ++i) acc[i] = p.one[i];
    return;
  }
  const size_t odd_count = static_cast<size_t>(1) << (rec.window_bits() - 1);
  work->resize((odd_count + 1) * n + 2 * n + 2);
  L* odd = work->data();
  L* base_sq = odd + odd_count * n;
  L* scratch = base_sq + n;

  // odd[k] = base^(2k+1), Montgomery domain.
  for (size_t i = 0; i < n; ++i) odd[i] = base_mont[i];
  if (odd_count > 1) {
    montk::SqrInto(base_sq, base_mont, p.mod, p.inv, n, scratch);
    for (size_t k = 1; k < odd_count; ++k) {
      montk::MulInto(odd + k * n, odd + (k - 1) * n, base_sq, p.mod,
                     p.inv, n, scratch);
    }
  }

  // The accumulator starts as the first step's digit: squaring 1 is free.
  const L* first = odd + (rec.steps()[0].digit >> 1) * n;
  for (size_t i = 0; i < n; ++i) acc[i] = first[i];
  for (size_t s = 1; s < rec.steps().size(); ++s) {
    const ExponentRecoding::Step& step = rec.steps()[s];
    for (uint32_t k = 0; k < step.squarings; ++k) {
      montk::SqrInto(acc, acc, p.mod, p.inv, n, scratch);
    }
    montk::MulInto(acc, acc, odd + (step.digit >> 1) * n, p.mod, p.inv,
                   n, scratch);
  }
  for (uint32_t k = 0; k < rec.trailing_squarings(); ++k) {
    montk::SqrInto(acc, acc, p.mod, p.inv, n, scratch);
  }
}

/// base^rec mod m, BigInt boundary crossed exactly once per side.
template <typename L>
BigInt ExpImpl(const RawView<L>& p, const BigInt& modulus, const BigInt& base,
               const ExponentRecoding& rec) {
  const size_t n = p.n;
  std::vector<L> base_mont = PackReduced<L>(base, modulus, n);
  std::vector<L> scratch(2 * n + 2);
  montk::MulInto(base_mont.data(), base_mont.data(), p.r2, p.mod,
                 p.inv, n, scratch.data());
  std::vector<L> acc(n);
  std::vector<L> work;
  ExpMontImpl(p, acc.data(), base_mont.data(), rec, &work);
  montk::MulInto(acc.data(), acc.data(), p.unit, p.mod, p.inv, n,
                 scratch.data());
  return UnpackLimbs(acc.data(), n);
}
}  // namespace

Result<BigInt> ModExp(const BigInt& base, const BigInt& exp, const BigInt& m) {
  if (m.is_zero() || m.is_negative()) {
    return Status::InvalidArgument("modulus must be positive");
  }
  if (exp.is_negative()) {
    return Status::InvalidArgument("negative exponent; invert base first");
  }
  if (m == BigInt(1)) return BigInt(0);
  if (m.is_odd()) {
    SECMED_ASSIGN_OR_RETURN(MontgomeryContext ctx, MontgomeryContext::Create(m));
    return ctx.Exp(base, exp);
  }
  return ModExpGeneric(base, exp, m);
}

Result<MontgomeryContext> MontgomeryContext::Create(const BigInt& modulus) {
  if (modulus <= BigInt(1) || modulus.is_even()) {
    return Status::InvalidArgument("Montgomery modulus must be odd and > 1");
  }
  MontgomeryContext ctx;
  ctx.modulus_ = modulus;
  RawParts<Limb> p = BuildRawParts<Limb>(modulus, &ctx.one_mont_);
  ctx.mod_ = std::move(p.mod);
  ctx.r2_ = std::move(p.r2);
  ctx.one_ = std::move(p.one);
  ctx.unit_ = std::move(p.unit);
  ctx.n_ = p.n;
  ctx.inv_ = p.inv;
  return ctx;
}

namespace {
template <typename L>
RawView<L> PartsView(const std::vector<L>& mod, const std::vector<L>& r2,
                     const std::vector<L>& one, const std::vector<L>& unit,
                     size_t n, L inv) {
  return RawView<L>{mod.data(), r2.data(), one.data(), unit.data(), n, inv};
}
}  // namespace

void MontgomeryContext::ToMontInto(Limb* dst, const BigInt& x,
                                   Limb* scratch) const {
  std::vector<Limb> xv = PackReduced<Limb>(x, modulus_, n_);
  montk::MulInto(dst, xv.data(), r2_.data(), mod_.data(), inv_, n_, scratch);
}

BigInt MontgomeryContext::LimbsToBigInt(const Limb* a) const {
  return UnpackLimbs(a, n_);
}

BigInt MontgomeryContext::ToMont(const BigInt& x) const {
  std::vector<Limb> out(n_);
  std::vector<Limb> scratch(n_ + 2);
  ToMontInto(out.data(), x, scratch.data());
  return UnpackLimbs(out.data(), n_);
}

BigInt MontgomeryContext::FromMont(const BigInt& x) const {
  std::vector<Limb> xv = PackReduced<Limb>(x, modulus_, n_);
  std::vector<Limb> scratch(n_ + 2);
  FromMontInto(xv.data(), xv.data(), scratch.data());
  return UnpackLimbs(xv.data(), n_);
}

BigInt MontgomeryContext::MulMont(const BigInt& a, const BigInt& b) const {
  std::vector<Limb> av = PackReduced<Limb>(a, modulus_, n_);
  std::vector<Limb> bv = PackReduced<Limb>(b, modulus_, n_);
  std::vector<Limb> scratch(n_ + 2);
  MontMulInto(av.data(), av.data(), bv.data(), scratch.data());
  return UnpackLimbs(av.data(), n_);
}

BigInt MontgomeryContext::Mul(const BigInt& a, const BigInt& b) const {
  return MulImpl(PartsView(mod_, r2_, one_, unit_, n_, inv_), modulus_, a, b);
}

BigInt MontgomeryContext::Sqr(const BigInt& a) const {
  return SqrImpl(PartsView(mod_, r2_, one_, unit_, n_, inv_), modulus_, a);
}

BigInt MontgomeryContext::Exp(const BigInt& base, const BigInt& exp) const {
  assert(!exp.is_negative());
  return ExpWithRecoding(base, ExponentRecoding::Create(exp));
}

BigInt MontgomeryContext::ExpWithRecoding(const BigInt& base,
                                          const ExponentRecoding& rec) const {
  return ExpImpl(PartsView(mod_, r2_, one_, unit_, n_, inv_), modulus_, base,
                 rec);
}

void MontgomeryContext::ExpMontInto(Limb* acc, const Limb* base_mont,
                                    const ExponentRecoding& rec,
                                    std::vector<Limb>* work) const {
  ExpMontImpl(PartsView(mod_, r2_, one_, unit_, n_, inv_), acc, base_mont, rec,
              work);
}

Result<MontgomeryContextRef32> MontgomeryContextRef32::Create(
    const BigInt& modulus) {
  if (modulus <= BigInt(1) || modulus.is_even()) {
    return Status::InvalidArgument("Montgomery modulus must be odd and > 1");
  }
  MontgomeryContextRef32 ctx;
  ctx.modulus_ = modulus;
  RawParts<uint32_t> p = BuildRawParts<uint32_t>(modulus, nullptr);
  ctx.mod_ = std::move(p.mod);
  ctx.r2_ = std::move(p.r2);
  ctx.one_ = std::move(p.one);
  ctx.unit_ = std::move(p.unit);
  ctx.n_ = p.n;
  ctx.inv_ = p.inv;
  return ctx;
}

BigInt MontgomeryContextRef32::Mul(const BigInt& a, const BigInt& b) const {
  return MulImpl(PartsView(mod_, r2_, one_, unit_, n_, inv_), modulus_, a, b);
}

BigInt MontgomeryContextRef32::Sqr(const BigInt& a) const {
  return SqrImpl(PartsView(mod_, r2_, one_, unit_, n_, inv_), modulus_, a);
}

BigInt MontgomeryContextRef32::Exp(const BigInt& base,
                                   const BigInt& exp) const {
  assert(!exp.is_negative());
  return ExpWithRecoding(base, ExponentRecoding::Create(exp));
}

BigInt MontgomeryContextRef32::ExpWithRecoding(
    const BigInt& base, const ExponentRecoding& rec) const {
  return ExpImpl(PartsView(mod_, r2_, one_, unit_, n_, inv_), modulus_, base,
                 rec);
}

}  // namespace secmed
