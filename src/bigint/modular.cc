#include "bigint/modular.h"

#include <cassert>

#include "bigint/fastexp.h"

namespace secmed {

BigInt Gcd(const BigInt& a, const BigInt& b) {
  BigInt x = a.Abs();
  BigInt y = b.Abs();
  while (!y.is_zero()) {
    BigInt r = x % y;
    x = y;
    y = r;
  }
  return x;
}

BigInt Lcm(const BigInt& a, const BigInt& b) {
  if (a.is_zero() || b.is_zero()) return BigInt();
  BigInt g = Gcd(a, b);
  return (a.Abs() / g) * b.Abs();
}

ExtendedGcdResult ExtendedGcd(const BigInt& a, const BigInt& b) {
  // Iterative extended Euclid over signed BigInts.
  BigInt old_r = a, r = b;
  BigInt old_s = 1, s = 0;
  BigInt old_t = 0, t = 1;
  while (!r.is_zero()) {
    auto qr = BigInt::DivMod(old_r, r);
    assert(qr.ok());
    BigInt q = qr.value().first;
    BigInt tmp = old_r - q * r;
    old_r = r;
    r = tmp;
    tmp = old_s - q * s;
    old_s = s;
    s = tmp;
    tmp = old_t - q * t;
    old_t = t;
    t = tmp;
  }
  return {old_r, old_s, old_t};
}

Result<BigInt> ModInverse(const BigInt& a, const BigInt& m) {
  if (m <= BigInt(1)) return Status::InvalidArgument("modulus must be > 1");
  SECMED_ASSIGN_OR_RETURN(BigInt ar, BigInt::Mod(a, m));
  ExtendedGcdResult e = ExtendedGcd(ar, m);
  if (e.g != BigInt(1)) {
    return Status::InvalidArgument("value is not invertible modulo m");
  }
  return BigInt::Mod(e.x, m);
}

Result<BigInt> ModMul(const BigInt& a, const BigInt& b, const BigInt& m) {
  if (m.is_zero() || m.is_negative()) {
    return Status::InvalidArgument("modulus must be positive");
  }
  SECMED_ASSIGN_OR_RETURN(BigInt ar, BigInt::Mod(a, m));
  SECMED_ASSIGN_OR_RETURN(BigInt br, BigInt::Mod(b, m));
  return BigInt::Mod(ar * br, m);
}

namespace {
// Plain square-and-multiply with division-based reduction, used for even
// moduli (rare path).
Result<BigInt> ModExpGeneric(const BigInt& base, const BigInt& exp,
                             const BigInt& m) {
  SECMED_ASSIGN_OR_RETURN(BigInt b, BigInt::Mod(base, m));
  BigInt result = BigInt::Mod(BigInt(1), m).value();
  const size_t bits = exp.BitLength();
  for (size_t i = bits; i-- > 0;) {
    result = (result * result) % m;
    if (exp.TestBit(i)) result = (result * b) % m;
  }
  return result;
}
}  // namespace

Result<BigInt> ModExp(const BigInt& base, const BigInt& exp, const BigInt& m) {
  if (m.is_zero() || m.is_negative()) {
    return Status::InvalidArgument("modulus must be positive");
  }
  if (exp.is_negative()) {
    return Status::InvalidArgument("negative exponent; invert base first");
  }
  if (m == BigInt(1)) return BigInt(0);
  if (m.is_odd()) {
    SECMED_ASSIGN_OR_RETURN(MontgomeryContext ctx, MontgomeryContext::Create(m));
    return ctx.Exp(base, exp);
  }
  return ModExpGeneric(base, exp, m);
}

Result<MontgomeryContext> MontgomeryContext::Create(const BigInt& modulus) {
  if (modulus <= BigInt(1) || modulus.is_even()) {
    return Status::InvalidArgument("Montgomery modulus must be odd and > 1");
  }
  MontgomeryContext ctx;
  ctx.modulus_ = modulus;
  ctx.mod_limbs_ = modulus.limbs();
  ctx.n_ = ctx.mod_limbs_.size();

  // inv32 = -m^{-1} mod 2^32 by Newton iteration.
  uint32_t m0 = ctx.mod_limbs_[0];
  uint32_t inv = m0;  // 3-bit correct seed for odd m0
  for (int i = 0; i < 5; ++i) inv *= 2u - m0 * inv;
  ctx.inv32_ = ~inv + 1u;  // negate mod 2^32

  // R = 2^(32n); r2 = R^2 mod m, one_mont = R mod m.
  BigInt r = BigInt(1) << (32 * ctx.n_);
  ctx.one_mont_ = BigInt::Mod(r, modulus).value();
  ctx.r2_ = BigInt::Mod(ctx.one_mont_ * ctx.one_mont_, modulus).value();
  return ctx;
}

std::vector<uint32_t> MontgomeryContext::PadLimbs(const BigInt& x) const {
  std::vector<uint32_t> out = x.limbs();
  out.resize(n_, 0);
  return out;
}

std::vector<uint32_t> MontgomeryContext::MontMulLimbs(
    const std::vector<uint32_t>& a, const std::vector<uint32_t>& b) const {
  // CIOS (coarsely integrated operand scanning) Montgomery multiplication.
  const size_t n = n_;
  std::vector<uint32_t> t(n + 2, 0);
  for (size_t i = 0; i < n; ++i) {
    // t += a[i] * b
    uint64_t carry = 0;
    const uint64_t ai = a[i];
    for (size_t j = 0; j < n; ++j) {
      uint64_t cur = t[j] + ai * b[j] + carry;
      t[j] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    uint64_t cur = t[n] + carry;
    t[n] = static_cast<uint32_t>(cur);
    t[n + 1] = static_cast<uint32_t>(cur >> 32);

    // m_i = t[0] * inv32 mod 2^32; t = (t + m_i * mod) / 2^32
    const uint64_t mi = static_cast<uint32_t>(t[0] * inv32_);
    cur = t[0] + mi * mod_limbs_[0];
    carry = cur >> 32;
    for (size_t j = 1; j < n; ++j) {
      cur = t[j] + mi * mod_limbs_[j] + carry;
      t[j - 1] = static_cast<uint32_t>(cur);
      carry = cur >> 32;
    }
    cur = static_cast<uint64_t>(t[n]) + carry;
    t[n - 1] = static_cast<uint32_t>(cur);
    t[n] = t[n + 1] + static_cast<uint32_t>(cur >> 32);
    t[n + 1] = 0;
  }
  // Conditional final subtraction: result may be >= mod.
  std::vector<uint32_t> res(t.begin(), t.begin() + n);
  bool ge = t[n] != 0;
  if (!ge) {
    ge = true;
    for (size_t i = n; i-- > 0;) {
      if (res[i] != mod_limbs_[i]) {
        ge = res[i] > mod_limbs_[i];
        break;
      }
    }
  }
  if (ge) {
    int64_t borrow = 0;
    for (size_t i = 0; i < n; ++i) {
      int64_t diff = static_cast<int64_t>(res[i]) -
                     static_cast<int64_t>(mod_limbs_[i]) - borrow;
      if (diff < 0) {
        diff += static_cast<int64_t>(1) << 32;
        borrow = 1;
      } else {
        borrow = 0;
      }
      res[i] = static_cast<uint32_t>(diff);
    }
  }
  return res;
}

namespace {
BigInt LimbsToBigInt(const std::vector<uint32_t>& limbs) {
  Bytes be(limbs.size() * 4);
  for (size_t i = 0; i < limbs.size(); ++i) {
    for (int k = 0; k < 4; ++k) {
      be[be.size() - 1 - (i * 4 + k)] = static_cast<uint8_t>(limbs[i] >> (8 * k));
    }
  }
  return BigInt::FromBytes(be);
}
}  // namespace

BigInt MontgomeryContext::ToMont(const BigInt& x) const {
  BigInt xr = BigInt::Mod(x, modulus_).value();
  return LimbsToBigInt(MontMulLimbs(PadLimbs(xr), PadLimbs(r2_)));
}

BigInt MontgomeryContext::FromMont(const BigInt& x) const {
  std::vector<uint32_t> one(n_, 0);
  one[0] = 1;
  return LimbsToBigInt(MontMulLimbs(PadLimbs(x), one));
}

BigInt MontgomeryContext::MulMont(const BigInt& a, const BigInt& b) const {
  return LimbsToBigInt(MontMulLimbs(PadLimbs(a), PadLimbs(b)));
}

BigInt MontgomeryContext::Mul(const BigInt& a, const BigInt& b) const {
  return FromMont(MulMont(ToMont(a), ToMont(b)));
}

BigInt MontgomeryContext::Exp(const BigInt& base, const BigInt& exp) const {
  assert(!exp.is_negative());
  return ExpWithRecoding(base, ExponentRecoding::Create(exp));
}

BigInt MontgomeryContext::ExpWithRecoding(const BigInt& base,
                                          const ExponentRecoding& rec) const {
  if (rec.steps().empty()) return FromMont(one_mont_);  // exponent was zero

  // Odd-power table: odd[k] = base^(2k+1) in the Montgomery domain.
  const size_t odd_count = static_cast<size_t>(1)
                           << (rec.window_bits() - 1);
  const BigInt base_m = ToMont(base);
  std::vector<BigInt> odd(odd_count);
  odd[0] = base_m;
  if (odd_count > 1) {
    const BigInt base_sq = MulMont(base_m, base_m);
    for (size_t k = 1; k < odd_count; ++k) {
      odd[k] = MulMont(odd[k - 1], base_sq);
    }
  }

  // The accumulator starts as the first step's digit: squaring 1 is free.
  BigInt acc = odd[rec.steps()[0].digit >> 1];
  for (size_t s = 1; s < rec.steps().size(); ++s) {
    const ExponentRecoding::Step& step = rec.steps()[s];
    for (uint32_t k = 0; k < step.squarings; ++k) acc = MulMont(acc, acc);
    acc = MulMont(acc, odd[step.digit >> 1]);
  }
  for (uint32_t k = 0; k < rec.trailing_squarings(); ++k) {
    acc = MulMont(acc, acc);
  }
  return FromMont(acc);
}

}  // namespace secmed
