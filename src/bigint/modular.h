#ifndef SECMED_BIGINT_MODULAR_H_
#define SECMED_BIGINT_MODULAR_H_

#include <vector>

#include "bigint/bigint.h"
#include "util/result.h"

namespace secmed {

class ExponentRecoding;  // bigint/fastexp.h

/// Greatest common divisor of |a| and |b|; Gcd(0, 0) == 0.
BigInt Gcd(const BigInt& a, const BigInt& b);

/// Least common multiple of |a| and |b|.
BigInt Lcm(const BigInt& a, const BigInt& b);

/// Extended Euclid: returns (g, x, y) such that a*x + b*y == g == gcd(a, b).
struct ExtendedGcdResult {
  BigInt g;
  BigInt x;
  BigInt y;
};
ExtendedGcdResult ExtendedGcd(const BigInt& a, const BigInt& b);

/// Modular inverse of a modulo m (m > 1). Fails with kInvalidArgument when
/// gcd(a, m) != 1.
Result<BigInt> ModInverse(const BigInt& a, const BigInt& m);

/// (a * b) mod m with m > 0; inputs are reduced first.
Result<BigInt> ModMul(const BigInt& a, const BigInt& b, const BigInt& m);

/// base^exp mod m for exp >= 0 and m > 0. Uses Montgomery exponentiation
/// with a 4-bit window when m is odd; falls back to division-based
/// reduction otherwise.
Result<BigInt> ModExp(const BigInt& base, const BigInt& exp, const BigInt& m);

/// Precomputed Montgomery domain for a fixed odd modulus. Amortizes the
/// setup cost across many multiplications/exponentiations with the same
/// modulus — the hot path of Paillier and commutative encryption.
class MontgomeryContext {
 public:
  /// Creates a context. The modulus must be odd and > 1.
  static Result<MontgomeryContext> Create(const BigInt& modulus);

  const BigInt& modulus() const { return modulus_; }

  /// Converts into the Montgomery domain: x * R mod m.
  BigInt ToMont(const BigInt& x) const;
  /// Converts out of the Montgomery domain: x * R^-1 mod m.
  BigInt FromMont(const BigInt& x) const;
  /// Montgomery product of two values already in the Montgomery domain.
  BigInt MulMont(const BigInt& a, const BigInt& b) const;
  /// Ordinary modular product of two values in the normal domain.
  BigInt Mul(const BigInt& a, const BigInt& b) const;
  /// base^exp mod m; base and result in the normal domain. exp >= 0.
  BigInt Exp(const BigInt& base, const BigInt& exp) const;
  /// base^exp mod m with the exponent recoded ahead of time. For fixed
  /// exponents (Pohlig–Hellman keys, CRT exponents, Paillier n) this skips
  /// the per-call window scan and uses the recoding's tuned window size.
  BigInt ExpWithRecoding(const BigInt& base, const ExponentRecoding& rec) const;

  /// Montgomery representation of 1 (R mod m); seed for accumulators.
  const BigInt& MontOne() const { return one_mont_; }

 private:
  MontgomeryContext() = default;

  // Core CIOS loop over raw limb vectors, both inputs in Montgomery domain,
  // sized exactly n limbs (zero-padded).
  std::vector<uint32_t> MontMulLimbs(const std::vector<uint32_t>& a,
                                     const std::vector<uint32_t>& b) const;
  std::vector<uint32_t> PadLimbs(const BigInt& x) const;

  BigInt modulus_;
  std::vector<uint32_t> mod_limbs_;  // exactly n limbs
  size_t n_ = 0;                     // limb count of the modulus
  uint32_t inv32_ = 0;               // -modulus^{-1} mod 2^32
  BigInt r2_;                        // R^2 mod m (for ToMont)
  BigInt one_mont_;                  // R mod m (Montgomery representation of 1)
};

}  // namespace secmed

#endif  // SECMED_BIGINT_MODULAR_H_
