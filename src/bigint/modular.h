#ifndef SECMED_BIGINT_MODULAR_H_
#define SECMED_BIGINT_MODULAR_H_

#include <cstdint>
#include <vector>

#include "bigint/bigint.h"
#include "bigint/mont_kernel.h"
#include "util/result.h"

namespace secmed {

class ExponentRecoding;  // bigint/fastexp.h

/// Greatest common divisor of |a| and |b|; Gcd(0, 0) == 0.
BigInt Gcd(const BigInt& a, const BigInt& b);

/// Least common multiple of |a| and |b|.
BigInt Lcm(const BigInt& a, const BigInt& b);

/// Extended Euclid: returns (g, x, y) such that a*x + b*y == g == gcd(a, b).
struct ExtendedGcdResult {
  BigInt g;
  BigInt x;
  BigInt y;
};
ExtendedGcdResult ExtendedGcd(const BigInt& a, const BigInt& b);

/// Modular inverse of a modulo m (m > 1). Fails with kInvalidArgument when
/// gcd(a, m) != 1.
Result<BigInt> ModInverse(const BigInt& a, const BigInt& m);

/// (a * b) mod m with m > 0; inputs are reduced first.
Result<BigInt> ModMul(const BigInt& a, const BigInt& b, const BigInt& m);

/// base^exp mod m for exp >= 0 and m > 0. Uses Montgomery exponentiation
/// with a sliding window when m is odd; falls back to division-based
/// reduction otherwise.
Result<BigInt> ModExp(const BigInt& base, const BigInt& exp, const BigInt& m);

/// Precomputed Montgomery domain for a fixed odd modulus. Amortizes the
/// setup cost across many multiplications/exponentiations with the same
/// modulus — the hot path of Paillier and commutative encryption.
///
/// Two API layers:
///  - BigInt boundary (ToMont/FromMont/Mul/Sqr/Exp...): convenient,
///    converts per call. Inputs outside [0, m) are reduced on entry, never
///    silently truncated.
///  - Raw limb spans (MontMulInto/MontSqrInto/ExpMontInto + the
///    conversion helpers): values live as `limb_count()` native limbs in
///    the Montgomery domain, operations run allocation-free against
///    caller-owned scratch. The exponentiation loops, fixed-base tables
///    and the hot crypto call sites hold raw limbs end-to-end and cross
///    the BigInt boundary exactly once per value.
///
/// The native limb width is 64 bits with __int128 accumulation where the
/// compiler provides it, 32 bits otherwise (see bigint/mont_kernel.h).
class MontgomeryContext {
 public:
  using Limb = montk::Limb;
  static constexpr int kLimbBits = montk::kBits<Limb>;

  /// Creates a context. The modulus must be odd and > 1.
  static Result<MontgomeryContext> Create(const BigInt& modulus);

  const BigInt& modulus() const { return modulus_; }

  // ----------------------------------------------------- BigInt boundary

  /// Converts into the Montgomery domain: x * R mod m.
  BigInt ToMont(const BigInt& x) const;
  /// Converts out of the Montgomery domain: x * R^-1 mod m.
  BigInt FromMont(const BigInt& x) const;
  /// Montgomery product of two values already in the Montgomery domain.
  BigInt MulMont(const BigInt& a, const BigInt& b) const;
  /// Ordinary modular product of two values in the normal domain.
  BigInt Mul(const BigInt& a, const BigInt& b) const;
  /// a^2 mod m in the normal domain (dedicated squaring kernel).
  BigInt Sqr(const BigInt& a) const;
  /// base^exp mod m; base and result in the normal domain. exp >= 0.
  BigInt Exp(const BigInt& base, const BigInt& exp) const;
  /// base^exp mod m with the exponent recoded ahead of time. For fixed
  /// exponents (Pohlig–Hellman keys, CRT exponents, Paillier n) this skips
  /// the per-call window scan and uses the recoding's tuned window size.
  BigInt ExpWithRecoding(const BigInt& base, const ExponentRecoding& rec) const;

  /// Montgomery representation of 1 (R mod m); seed for accumulators.
  const BigInt& MontOne() const { return one_mont_; }

  // ----------------------------------------------------- raw limb spans

  /// Limbs per value in this context (ceil(bits(m) / kLimbBits)).
  size_t limb_count() const { return n_; }
  /// Scratch limbs every raw-span operation below needs (covers both the
  /// CIOS multiply and the wider squaring product).
  size_t scratch_limbs() const { return 2 * n_ + 2; }

  /// dst = a·b·R^-1 mod m over raw spans, all limb_count() limbs, a and b
  /// in the Montgomery domain and < m. scratch holds scratch_limbs().
  /// dst may alias a and/or b.
  void MontMulInto(Limb* dst, const Limb* a, const Limb* b,
                   Limb* scratch) const {
    montk::MulInto(dst, a, b, mod_.data(), inv_, n_, scratch);
  }
  /// dst = a²·R^-1 mod m (dedicated squaring: symmetric partial products
  /// computed once). dst may alias a.
  void MontSqrInto(Limb* dst, const Limb* a, Limb* scratch) const {
    montk::SqrInto(dst, a, mod_.data(), inv_, n_, scratch);
  }
  /// Packs x into the Montgomery domain: dst = x·R mod m. x is reduced
  /// mod m first (negative or oversized inputs are handled, not
  /// truncated). scratch holds scratch_limbs().
  void ToMontInto(Limb* dst, const BigInt& x, Limb* scratch) const;
  /// dst = a·R^-1 mod m: out of the Montgomery domain, still raw limbs.
  void FromMontInto(Limb* dst, const Limb* a, Limb* scratch) const {
    montk::MulInto(dst, a, unit_.data(), mod_.data(), inv_, n_, scratch);
  }
  /// Reads raw limbs (any domain) back into a BigInt.
  BigInt LimbsToBigInt(const Limb* a) const;

  /// acc = base_mont^rec, everything in the Montgomery domain. The odd
  /// -power table and all scratch live in *work (resized once, reused
  /// across calls); the per-step squarings and multiplies are
  /// allocation-free. acc holds limb_count() limbs and may alias base_mont
  /// (the base is copied into the power table before acc is written).
  void ExpMontInto(Limb* acc, const Limb* base_mont,
                   const ExponentRecoding& rec, std::vector<Limb>* work) const;

  /// R mod m as raw limbs (Montgomery representation of 1).
  const std::vector<Limb>& MontOneLimbs() const { return one_; }
  /// R^2 mod m as raw limbs (multiply by this to enter the domain).
  const std::vector<Limb>& R2Limbs() const { return r2_; }

 private:
  MontgomeryContext() = default;

  BigInt modulus_;
  BigInt one_mont_;         // R mod m (Montgomery representation of 1)
  std::vector<Limb> mod_;   // modulus, exactly n limbs
  std::vector<Limb> r2_;    // R^2 mod m
  std::vector<Limb> one_;   // R mod m
  std::vector<Limb> unit_;  // plain 1 (FromMont multiplies by it)
  size_t n_ = 0;            // limb count of the modulus
  Limb inv_ = 0;            // -modulus^{-1} mod 2^kLimbBits
};

/// 32-bit reference Montgomery context. Same math as MontgomeryContext but
/// pinned to the uint32_t kernel instantiation regardless of the native
/// limb width. Exists so the 64-bit kernel stays differentially testable
/// against an independent limb layout (tests/bigint_kernel_fuzz_test.cc);
/// not for production use.
class MontgomeryContextRef32 {
 public:
  static Result<MontgomeryContextRef32> Create(const BigInt& modulus);

  BigInt Mul(const BigInt& a, const BigInt& b) const;
  BigInt Sqr(const BigInt& a) const;
  BigInt Exp(const BigInt& base, const BigInt& exp) const;
  BigInt ExpWithRecoding(const BigInt& base, const ExponentRecoding& rec) const;

 private:
  MontgomeryContextRef32() = default;

  BigInt modulus_;
  std::vector<uint32_t> mod_;
  std::vector<uint32_t> r2_;
  std::vector<uint32_t> one_;
  std::vector<uint32_t> unit_;
  size_t n_ = 0;
  uint32_t inv_ = 0;
};

}  // namespace secmed

#endif  // SECMED_BIGINT_MODULAR_H_
