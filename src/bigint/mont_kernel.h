#ifndef SECMED_BIGINT_MONT_KERNEL_H_
#define SECMED_BIGINT_MONT_KERNEL_H_

// Raw-limb Montgomery kernels: CIOS multiplication, SOS squaring with the
// symmetric partial products computed once, and the final conditional
// subtraction. Everything here works on caller-owned spans and caller-owned
// scratch — no allocation, no BigInt — so the exponentiation loops layered
// on top run allocation-free per step.
//
// The kernels are templated on the limb type. The native width is 64 bits
// (with unsigned __int128 accumulators) wherever the compiler provides
// __int128; the 32-bit instantiation remains compiled unconditionally and
// is the differential-testing reference (tests/bigint_kernel_fuzz_test.cc)
// as well as the fallback MontgomeryContext uses when __int128 is missing
// (or when SECMED_FORCE_MONT32 is defined, which exists purely to make the
// fallback path testable on hosts that do have __int128).

#include <atomic>
#include <cstddef>
#include <cstdint>

#if defined(__SIZEOF_INT128__) && !defined(SECMED_FORCE_MONT32)
#define SECMED_MONT_LIMB64 1
#endif

namespace secmed {
namespace montk {

template <typename L>
struct Wide;
template <>
struct Wide<std::uint32_t> {
  using type = std::uint64_t;
};
#if defined(__SIZEOF_INT128__)
template <>
struct Wide<std::uint64_t> {
  using type = unsigned __int128;
};
#endif

#ifdef SECMED_MONT_LIMB64
using Limb = std::uint64_t;
#else
using Limb = std::uint32_t;
#endif

template <typename L>
inline constexpr int kBits = static_cast<int>(sizeof(L)) * 8;

// Per-kernel call counters (relaxed; one increment per n^2-limb kernel call
// is noise). bench_modexp reads these to report the mul/square mix that
// justifies the dedicated squaring routine.
inline std::atomic<std::uint64_t> g_mul_calls{0};
inline std::atomic<std::uint64_t> g_sqr_calls{0};

struct KernelCounters {
  std::uint64_t muls = 0;
  std::uint64_t sqrs = 0;
};

inline KernelCounters ReadKernelCounters() {
  return {g_mul_calls.load(std::memory_order_relaxed),
          g_sqr_calls.load(std::memory_order_relaxed)};
}

inline void ResetKernelCounters() {
  g_mul_calls.store(0, std::memory_order_relaxed);
  g_sqr_calls.store(0, std::memory_order_relaxed);
}

/// -m0^{-1} mod 2^bits for odd m0 (Newton iteration; the 3-bit-correct
/// seed doubles its correct bits every step, so 6 steps cover 64 bits).
template <typename L>
constexpr L NegInvLimb(L m0) {
  L inv = m0;
  for (int i = 0; i < 6; ++i) inv *= static_cast<L>(2) - m0 * inv;
  return static_cast<L>(0) - inv;
}

/// True iff a >= b, both n limbs little-endian.
template <typename L>
inline bool GeN(const L* a, const L* b, std::size_t n) {
  for (std::size_t i = n; i-- > 0;) {
    if (a[i] != b[i]) return a[i] > b[i];
  }
  return true;
}

/// dst = a - b over n limbs; requires a >= b. dst may alias a.
template <typename L>
inline void SubN(L* dst, const L* a, const L* b, std::size_t n) {
  L borrow = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const L ai = a[i];
    const L t1 = ai - b[i];
    const L b1 = t1 > ai ? 1 : 0;
    const L t2 = t1 - borrow;
    const L b2 = t2 > t1 ? 1 : 0;
    dst[i] = t2;
    borrow = b1 | b2;
  }
}

/// dst = t mod m for t < 2m held in t[0..n) plus the carry bit `hi`.
template <typename L>
inline void CondSubM(L* dst, const L* t, const L* m, std::size_t n, bool hi) {
  if (hi || GeN(t, m, n)) {
    SubN(dst, t, m, n);
  } else {
    for (std::size_t i = 0; i < n; ++i) dst[i] = t[i];
  }
}

/// Montgomery product dst = a·b·R^{-1} mod m (CIOS, coarsely integrated
/// operand scanning). a and b must be < m, n limbs each; `t` is caller
/// scratch of at least n+2 limbs. dst may alias a and/or b (the result is
/// accumulated in t and only written to dst at the end).
template <typename L>
inline void MulInto(L* dst, const L* a, const L* b, const L* m, L inv,
                    std::size_t n, L* t) {
  using W = typename Wide<L>::type;
  constexpr int B = kBits<L>;
  g_mul_calls.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t j = 0; j < n + 2; ++j) t[j] = 0;
  for (std::size_t i = 0; i < n; ++i) {
    // t += a[i] * b
    W carry = 0;
    const W ai = a[i];
    for (std::size_t j = 0; j < n; ++j) {
      const W cur = static_cast<W>(t[j]) + ai * b[j] + carry;
      t[j] = static_cast<L>(cur);
      carry = cur >> B;
    }
    W cur = static_cast<W>(t[n]) + carry;
    t[n] = static_cast<L>(cur);
    t[n + 1] = static_cast<L>(cur >> B);

    // m_i = t[0] * inv mod 2^B; t = (t + m_i * m) / 2^B
    const L mi = static_cast<L>(t[0] * inv);
    cur = static_cast<W>(t[0]) + static_cast<W>(mi) * m[0];
    carry = cur >> B;
    for (std::size_t j = 1; j < n; ++j) {
      cur = static_cast<W>(t[j]) + static_cast<W>(mi) * m[j] + carry;
      t[j - 1] = static_cast<L>(cur);
      carry = cur >> B;
    }
    cur = static_cast<W>(t[n]) + carry;
    t[n - 1] = static_cast<L>(cur);
    t[n] = t[n + 1] + static_cast<L>(cur >> B);
    t[n + 1] = 0;
  }
  CondSubM(dst, t, m, n, t[n] != 0);
}

/// Montgomery square dst = a²·R^{-1} mod m. Separated operand scanning
/// with the symmetric cross products a_i·a_j (i < j) computed once and
/// doubled — roughly one third fewer limb multiplications than
/// MulInto(a, a). a must be < m, n limbs; `p` is caller scratch of at
/// least 2n+2 limbs. dst may alias a.
template <typename L>
inline void SqrInto(L* dst, const L* a, const L* m, L inv, std::size_t n,
                    L* p) {
  using W = typename Wide<L>::type;
  constexpr int B = kBits<L>;
  g_sqr_calls.fetch_add(1, std::memory_order_relaxed);
  for (std::size_t k = 0; k < 2 * n + 2; ++k) p[k] = 0;
  // Cross products: row i touches p[2i+1 .. i+n-1] and stores its carry at
  // p[i+n], which no earlier row has written (row k < i tops out at k+n).
  for (std::size_t i = 0; i < n; ++i) {
    W carry = 0;
    const W ai = a[i];
    for (std::size_t j = i + 1; j < n; ++j) {
      const W cur = static_cast<W>(p[i + j]) + ai * a[j] + carry;
      p[i + j] = static_cast<L>(cur);
      carry = cur >> B;
    }
    p[i + n] = static_cast<L>(carry);
  }
  // Double the cross half; 2·Σ_{i<j} a_i·a_j <= a² < 2^{2nB} so nothing
  // shifts out of limb 2n-1.
  L top = 0;
  for (std::size_t k = 0; k < 2 * n; ++k) {
    const L v = p[k];
    p[k] = static_cast<L>(v << 1) | top;
    top = v >> (B - 1);
  }
  // Add the diagonal squares a_i² at limb position 2i.
  W carry = 0;
  for (std::size_t i = 0; i < n; ++i) {
    const W s = static_cast<W>(a[i]) * a[i];
    const W lo = static_cast<W>(p[2 * i]) + static_cast<L>(s) + carry;
    p[2 * i] = static_cast<L>(lo);
    const W hi = static_cast<W>(p[2 * i + 1]) + static_cast<L>(s >> B) +
                 (lo >> B);
    p[2 * i + 1] = static_cast<L>(hi);
    carry = hi >> B;
  }
  // carry == 0 here: the full square fits exactly 2n limbs.
  // Montgomery reduction of the 2n-limb product, one limb per pass. The
  // ripple after each pass stays inside p[..2n+1] (value < 2·R·m).
  for (std::size_t i = 0; i < n; ++i) {
    const L mi = static_cast<L>(p[i] * inv);
    W c = 0;
    for (std::size_t j = 0; j < n; ++j) {
      const W cur = static_cast<W>(p[i + j]) + static_cast<W>(mi) * m[j] + c;
      p[i + j] = static_cast<L>(cur);
      c = cur >> B;
    }
    for (std::size_t k = i + n; c != 0; ++k) {
      const W cur = static_cast<W>(p[k]) + c;
      p[k] = static_cast<L>(cur);
      c = cur >> B;
    }
  }
  CondSubM(dst, p + n, m, n, p[2 * n] != 0);
}

}  // namespace montk
}  // namespace secmed

#endif  // SECMED_BIGINT_MONT_KERNEL_H_
