#ifndef SECMED_BIGINT_FASTEXP_H_
#define SECMED_BIGINT_FASTEXP_H_

#include <cstdint>
#include <memory>
#include <vector>

#include "bigint/bigint.h"
#include "bigint/modular.h"
#include "util/result.h"

namespace secmed {

/// Sliding-window recoding of a fixed non-negative exponent.
///
/// The exponent is scanned once, left to right, into a sequence of steps
/// "square s times, then multiply by base^digit" with every digit odd, so
/// an exponentiation only needs the odd powers base^1, base^3, ...,
/// base^(2^w - 1). Recode once per key (Pohlig–Hellman e/e^{-1}, RSA-CRT
/// d_p/d_q, Paillier n and p-1/q-1) and reuse across every value.
class ExponentRecoding {
 public:
  struct Step {
    uint32_t squarings;  // squarings to apply before the multiply
    uint32_t digit;      // odd multiplier digit, 1 <= digit < 2^window_bits
  };

  /// Recodes with a window size chosen from the exponent's bit length.
  static ExponentRecoding Create(const BigInt& exp);

  /// Recodes with an explicit window size (1..12 bits).
  static ExponentRecoding CreateWithWindow(const BigInt& exp, int window_bits);

  const std::vector<Step>& steps() const { return steps_; }
  /// Squarings after the last multiply (trailing zero bits of the exponent).
  uint32_t trailing_squarings() const { return trailing_squarings_; }
  int window_bits() const { return window_bits_; }
  /// Bit length of the recoded exponent; 0 means the exponent was zero.
  size_t exp_bits() const { return exp_bits_; }

 private:
  std::vector<Step> steps_;
  uint32_t trailing_squarings_ = 0;
  int window_bits_ = 1;
  size_t exp_bits_ = 0;
};

/// Precomputed radix-2^w powers of a fixed base for fast g^x.
///
/// Stores base^(d * 2^(w*i)) in the Montgomery domain for every window i
/// and digit d, so Pow costs one Montgomery multiplication per non-zero
/// exponent window and no squarings at all. Pays for itself after a
/// handful of exponentiations; ElGamal g/h, the QR-group generator and the
/// PM masking path reuse one table across thousands.
class FixedBaseTable {
 public:
  /// Builds a table covering exponents up to `max_exp_bits` bits.
  /// `window_bits` trades table size for multiplications (1..8 bits).
  static Result<FixedBaseTable> Create(
      std::shared_ptr<const MontgomeryContext> ctx, const BigInt& base,
      size_t max_exp_bits, int window_bits = 4);

  /// base^exp mod m. Exponents longer than max_exp_bits (or negative) fall
  /// back to the context's generic exponentiation.
  BigInt Pow(const BigInt& exp) const;

  const BigInt& base() const { return base_; }
  size_t max_exp_bits() const { return max_exp_bits_; }
  int window_bits() const { return window_bits_; }

 private:
  FixedBaseTable() = default;

  using Limb = MontgomeryContext::Limb;

  std::shared_ptr<const MontgomeryContext> ctx_;
  BigInt base_;
  size_t max_exp_bits_ = 0;
  int window_bits_ = 0;
  size_t n_ = 0;  // limbs per entry (== ctx_->limb_count())
  // Flat raw-limb storage, Montgomery domain: entry (window i, digit d) is
  // base^(d * 2^(window_bits*i)) at offset (i * digits + (d - 1)) * n_.
  std::vector<Limb> table_;
};

}  // namespace secmed

#endif  // SECMED_BIGINT_FASTEXP_H_
