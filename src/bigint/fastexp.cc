#include "bigint/fastexp.h"

#include <algorithm>
#include <cassert>
#include <utility>

namespace secmed {

namespace {
int AutoWindowBits(size_t exp_bits) {
  if (exp_bits <= 12) return 2;
  if (exp_bits <= 80) return 3;
  if (exp_bits <= 240) return 4;
  if (exp_bits <= 768) return 5;
  return 6;
}
}  // namespace

ExponentRecoding ExponentRecoding::Create(const BigInt& exp) {
  return CreateWithWindow(exp, AutoWindowBits(exp.BitLength()));
}

ExponentRecoding ExponentRecoding::CreateWithWindow(const BigInt& exp,
                                                    int window_bits) {
  assert(!exp.is_negative());
  window_bits = std::max(1, std::min(window_bits, 12));
  ExponentRecoding rec;
  rec.window_bits_ = window_bits;
  rec.exp_bits_ = exp.BitLength();

  const size_t w = static_cast<size_t>(window_bits);
  uint32_t squarings = 0;
  size_t i = rec.exp_bits_;  // next unprocessed bit is i - 1
  while (i > 0) {
    if (!exp.TestBit(i - 1)) {
      ++squarings;
      --i;
      continue;
    }
    // Greedy window [lo, i): widest span <= w bits ending in a set bit,
    // so the digit is always odd.
    size_t lo = (i >= w) ? i - w : 0;
    while (!exp.TestBit(lo)) ++lo;
    uint32_t digit = 0;
    for (size_t k = i; k-- > lo;) {
      digit = (digit << 1) | (exp.TestBit(k) ? 1u : 0u);
    }
    rec.steps_.push_back({squarings + static_cast<uint32_t>(i - lo), digit});
    squarings = 0;
    i = lo;
  }
  rec.trailing_squarings_ = squarings;
  return rec;
}

Result<FixedBaseTable> FixedBaseTable::Create(
    std::shared_ptr<const MontgomeryContext> ctx, const BigInt& base,
    size_t max_exp_bits, int window_bits) {
  if (ctx == nullptr) {
    return Status::InvalidArgument("FixedBaseTable needs a Montgomery context");
  }
  if (base.is_negative()) {
    return Status::InvalidArgument("FixedBaseTable base must be non-negative");
  }
  if (max_exp_bits == 0) {
    return Status::InvalidArgument("max_exp_bits must be positive");
  }
  if (window_bits < 1 || window_bits > 8) {
    return Status::InvalidArgument("window_bits must be in [1, 8]");
  }

  FixedBaseTable t;
  t.base_ = base;
  t.max_exp_bits_ = max_exp_bits;
  t.window_bits_ = window_bits;
  t.n_ = ctx->limb_count();

  const size_t w = static_cast<size_t>(window_bits);
  const size_t windows = (max_exp_bits + w - 1) / w;
  const size_t digits = (static_cast<size_t>(1) << w) - 1;
  const size_t n = t.n_;
  t.table_.resize(windows * digits * n);

  // power = base^(2^(w*i)) in the Montgomery domain; each window's digit
  // column is a short multiplication chain off it. Everything stays raw
  // limbs — the only BigInt conversion is packing the base once.
  std::vector<Limb> power(n);
  std::vector<Limb> scratch(ctx->scratch_limbs());
  ctx->ToMontInto(power.data(), base, scratch.data());
  for (size_t i = 0; i < windows; ++i) {
    Limb* col = t.table_.data() + i * digits * n;
    for (size_t k = 0; k < n; ++k) col[k] = power[k];
    for (size_t d = 1; d < digits; ++d) {
      ctx->MontMulInto(col + d * n, col + (d - 1) * n, power.data(),
                       scratch.data());
    }
    if (i + 1 < windows) {
      for (size_t k = 0; k < w; ++k) {
        ctx->MontSqrInto(power.data(), power.data(), scratch.data());
      }
    }
  }
  t.ctx_ = std::move(ctx);
  return t;
}

BigInt FixedBaseTable::Pow(const BigInt& exp) const {
  if (exp.is_negative() || exp.BitLength() > max_exp_bits_) {
    return ctx_->Exp(base_, exp);  // generic fallback for oversized exponents
  }
  const size_t w = static_cast<size_t>(window_bits_);
  const size_t windows = (exp.BitLength() + w - 1) / w;
  const size_t digits = (static_cast<size_t>(1) << w) - 1;
  const size_t n = n_;
  std::vector<Limb> acc(n);
  std::vector<Limb> scratch(ctx_->scratch_limbs());
  bool have_acc = false;
  for (size_t i = 0; i < windows; ++i) {
    uint32_t digit = 0;
    for (size_t k = w; k-- > 0;) {
      digit = (digit << 1) | (exp.TestBit(i * w + k) ? 1u : 0u);
    }
    if (digit == 0) continue;
    const Limb* entry = table_.data() + (i * digits + (digit - 1)) * n;
    if (have_acc) {
      ctx_->MontMulInto(acc.data(), acc.data(), entry, scratch.data());
    } else {
      for (size_t k = 0; k < n; ++k) acc[k] = entry[k];
      have_acc = true;
    }
  }
  if (!have_acc) {
    const std::vector<Limb>& one = ctx_->MontOneLimbs();
    for (size_t k = 0; k < n; ++k) acc[k] = one[k];
  }
  ctx_->FromMontInto(acc.data(), acc.data(), scratch.data());
  return ctx_->LimbsToBigInt(acc.data());
}

}  // namespace secmed
