#ifndef SECMED_BIGINT_BIGINT_H_
#define SECMED_BIGINT_BIGINT_H_

#include <cstdint>
#include <ostream>
#include <string>
#include <string_view>
#include <vector>

#include "util/bytes.h"
#include "util/result.h"
#include "util/rng.h"

namespace secmed {

/// Arbitrary-precision signed integer.
///
/// Magnitude is stored as little-endian 32-bit limbs with a separate sign.
/// Zero is canonically represented by an empty limb vector and positive
/// sign. All arithmetic is heap-based and value-semantic; the class is the
/// numeric foundation for the RSA, Paillier and commutative-encryption
/// subsystems.
class BigInt {
 public:
  /// Constructs zero.
  BigInt() = default;

  /// Constructs from a machine integer.
  BigInt(int64_t v);   // NOLINT(runtime/explicit)
  BigInt(uint64_t v);  // NOLINT(runtime/explicit)
  BigInt(int v) : BigInt(static_cast<int64_t>(v)) {}  // NOLINT(runtime/explicit)

  /// Parses a decimal string with optional leading '-'.
  static Result<BigInt> FromDecimal(std::string_view s);
  /// Parses a hex string (no 0x prefix) with optional leading '-'.
  static Result<BigInt> FromHex(std::string_view s);
  /// Interprets big-endian bytes as a non-negative integer.
  static BigInt FromBytes(const Bytes& be);
  /// Builds a non-negative integer from little-endian base-2^32 limbs
  /// (trailing zeros allowed; the value is normalized).
  static BigInt FromLimbs(std::vector<uint32_t> limbs);

  /// Renders as decimal with leading '-' if negative.
  std::string ToDecimal() const;
  /// Renders as lowercase hex (no 0x) with leading '-' if negative.
  std::string ToHex() const;
  /// Serializes the magnitude as big-endian bytes, zero-padded on the left
  /// to at least `min_len` bytes. Sign is dropped; callers requiring signed
  /// round-trips must track sign separately (all protocol values are
  /// non-negative).
  Bytes ToBytes(size_t min_len = 0) const;

  bool is_zero() const { return limbs_.empty(); }
  bool is_negative() const { return negative_; }
  bool is_odd() const { return !limbs_.empty() && (limbs_[0] & 1u); }
  bool is_even() const { return !is_odd(); }

  /// Number of significant bits in the magnitude; 0 for zero.
  size_t BitLength() const;
  /// Returns bit `i` (0 = least significant) of the magnitude.
  bool TestBit(size_t i) const;
  /// Value of the low 64 bits of the magnitude.
  uint64_t LowU64() const;

  /// Three-way comparison: negative/zero/positive as -1/0/+1.
  int Compare(const BigInt& other) const;
  /// Compares magnitudes only (ignoring sign).
  int CompareMagnitude(const BigInt& other) const;

  BigInt operator-() const;
  BigInt Abs() const;

  BigInt operator+(const BigInt& other) const;
  BigInt operator-(const BigInt& other) const;
  BigInt operator*(const BigInt& other) const;
  /// Truncating division (C++ semantics: quotient rounds toward zero).
  BigInt operator/(const BigInt& other) const;
  /// Remainder with the sign of the dividend (C++ semantics).
  BigInt operator%(const BigInt& other) const;

  BigInt& operator+=(const BigInt& other);
  BigInt& operator-=(const BigInt& other);
  BigInt& operator*=(const BigInt& other);

  BigInt operator<<(size_t bits) const;
  BigInt operator>>(size_t bits) const;

  bool operator==(const BigInt& other) const { return Compare(other) == 0; }
  bool operator!=(const BigInt& other) const { return Compare(other) != 0; }
  bool operator<(const BigInt& other) const { return Compare(other) < 0; }
  bool operator<=(const BigInt& other) const { return Compare(other) <= 0; }
  bool operator>(const BigInt& other) const { return Compare(other) > 0; }
  bool operator>=(const BigInt& other) const { return Compare(other) >= 0; }

  /// Computes quotient and remainder in one pass. The divisor must be
  /// non-zero (kInvalidArgument otherwise). Signs follow C++ semantics.
  static Result<std::pair<BigInt, BigInt>> DivMod(const BigInt& a,
                                                  const BigInt& b);

  /// Mathematical modulo: result in [0, |m|). m must be non-zero.
  static Result<BigInt> Mod(const BigInt& a, const BigInt& m);

  /// Uniform random integer in [0, bound). bound must be positive.
  static BigInt RandomBelow(const BigInt& bound, RandomSource* rng);
  /// Uniform random integer with exactly `bits` bits (top bit set).
  static BigInt RandomWithBits(size_t bits, RandomSource* rng);

  /// Access to raw limbs (little-endian base 2^32); for tests/diagnostics.
  const std::vector<uint32_t>& limbs() const { return limbs_; }

  /// Limb count at or above which multiplication switches from schoolbook
  /// to Karatsuba. Tunable so bench_modexp can sweep it; the default is
  /// chosen from the committed sweep in EXPERIMENTS.md.
  static size_t karatsuba_threshold();
  static void set_karatsuba_threshold(size_t limbs);

 private:
  void Normalize();

  // Magnitude helpers (ignore sign).
  static std::vector<uint32_t> AddMag(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b);
  // Requires |a| >= |b|.
  static std::vector<uint32_t> SubMag(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b);
  static std::vector<uint32_t> MulMag(const std::vector<uint32_t>& a,
                                      const std::vector<uint32_t>& b);
  static std::vector<uint32_t> MulSchoolbook(const std::vector<uint32_t>& a,
                                             const std::vector<uint32_t>& b);
  static std::vector<uint32_t> MulKaratsuba(const std::vector<uint32_t>& a,
                                            const std::vector<uint32_t>& b);
  static int CompareMag(const std::vector<uint32_t>& a,
                        const std::vector<uint32_t>& b);
  // Knuth algorithm D on magnitudes; b non-empty.
  static void DivModMag(const std::vector<uint32_t>& a,
                        const std::vector<uint32_t>& b,
                        std::vector<uint32_t>* quot,
                        std::vector<uint32_t>* rem);

  std::vector<uint32_t> limbs_;  // little-endian, no trailing zeros
  bool negative_ = false;        // false for zero
};

std::ostream& operator<<(std::ostream& os, const BigInt& v);

}  // namespace secmed

#endif  // SECMED_BIGINT_BIGINT_H_
