#ifndef SECMED_NET_MESSAGE_H_
#define SECMED_NET_MESSAGE_H_

#include <cstddef>
#include <map>
#include <string>
#include <vector>

#include "util/bytes.h"

namespace secmed {

/// Fixed frame header of the net/wire codec: magic (2), version (1),
/// flags (1), session id (4), body length (4).
inline constexpr size_t kFrameHeaderSize = 12;

/// Optional trace extension between the header and the body (flag bit
/// 0x01 of the v2 codec): 16-byte trace id + 8-byte parent span id.
/// Telemetry framing, deliberately excluded from Message::WireSize() —
/// the protocol cost accounting measures the mediation protocols, not
/// whether tracing happened to be on.
inline constexpr size_t kFrameTraceExtSize = 24;

/// Every variable-length frame body field (from, to, type, payload)
/// carries a u32 length prefix (util/serialize format).
inline constexpr size_t kFrameFieldPrefix = 4;

/// One protocol message between parties. Every payload is a serialized
/// byte string, so the accounting below reflects realistic wire sizes.
struct Message {
  std::string from;
  std::string to;
  std::string type;  // e.g. "query", "partial_result", "server_query"
  Bytes payload;

  /// Exact on-the-wire size of this message under the net/wire frame
  /// codec: the fixed header plus four length-prefixed fields.
  /// net/wire.cc asserts EncodeFrame(...).size() == WireSize().
  size_t WireSize() const {
    return kFrameHeaderSize + 4 * kFrameFieldPrefix + from.size() + to.size() +
           type.size() + payload.size();
  }
};

/// One message type's slice of a party's traffic.
struct MessageTypeStats {
  size_t messages_sent = 0;
  size_t messages_received = 0;
  size_t bytes_sent = 0;
  size_t bytes_received = 0;

  bool operator==(const MessageTypeStats& o) const {
    return messages_sent == o.messages_sent &&
           messages_received == o.messages_received &&
           bytes_sent == o.bytes_sent && bytes_received == o.bytes_received;
  }

  void Accumulate(const MessageTypeStats& o) {
    messages_sent += o.messages_sent;
    messages_received += o.messages_received;
    bytes_sent += o.bytes_sent;
    bytes_received += o.bytes_received;
  }
};

/// Per-party traffic statistics.
struct PartyStats {
  size_t messages_sent = 0;
  size_t messages_received = 0;
  size_t bytes_sent = 0;
  size_t bytes_received = 0;
  /// Number of *interactions*: maximal runs of consecutive sends — the
  /// paper's "the client has to interact twice with the mediator".
  size_t interactions = 0;
  /// Breakdown of the totals above by message type. The totals are the
  /// exact sums over this map, so leakage analyses and the obs run
  /// report read one source of truth.
  std::map<std::string, MessageTypeStats> by_type;

  /// Adds another party's (or run's) statistics onto this one, slice by
  /// slice — used to fold multi-session statistics into one report row.
  void Accumulate(const PartyStats& o) {
    messages_sent += o.messages_sent;
    messages_received += o.messages_received;
    bytes_sent += o.bytes_sent;
    bytes_received += o.bytes_received;
    interactions += o.interactions;
    for (const auto& [type, slice] : o.by_type) by_type[type].Accumulate(slice);
  }
};

/// Cost model of a real transport, applied to a recorded transcript:
/// every message pays one propagation delay plus its serialization time
/// at the given bandwidth. Lets the benchmarks project the in-process
/// measurements onto WAN/LAN deployments, where the protocols' different
/// round counts and byte volumes dominate differently.
struct NetworkCostModel {
  double latency_ms = 0;         // one-way propagation delay per message
  double bandwidth_kbps = 0;     // 0 = infinite

  /// Transfer time of one message under this model.
  double MessageMs(size_t wire_bytes) const {
    double ms = latency_ms;
    if (bandwidth_kbps > 0) {
      ms += static_cast<double>(wire_bytes) * 8.0 / bandwidth_kbps;
    }
    return ms;
  }
};

/// Projected total transfer time of a transcript under the model,
/// assuming the messages are sequential (protocol phases are; the
/// estimate is an upper bound where sends within a phase could overlap).
double EstimateTransferMs(const std::vector<Message>& transcript,
                          const NetworkCostModel& model);

}  // namespace secmed

#endif  // SECMED_NET_MESSAGE_H_
