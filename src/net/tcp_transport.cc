#include "net/tcp_transport.h"

#include <algorithm>
#include <chrono>

namespace secmed {

namespace {
// Poll interval of the accept/reader loops: threads notice Stop() within
// one interval without any cross-thread socket shutdown games.
constexpr int kLoopPollMs = 100;
constexpr size_t kRecvChunk = 64 * 1024;
// Budget of one abort-broadcast frame. Deliberately short: the broadcast
// runs on the already-failed session's thread, a peer that cannot take
// the frame this fast is dead (and fails on its own budget anyway), and
// the acceptance bound — every party unblocked within 2x the configured
// deadline — must hold even when several peers are unreachable.
constexpr int kAbortSendMs = 2000;

/// PollFor and cv_.wait_for treat <= 0 as "no deadline"; a budget that
/// still has time left must therefore never round down to 0 mid-flight.
int BoundedMs(const DeadlineBudget& budget, int fallback_ms) {
  if (budget.unbounded()) return fallback_ms;
  return std::max(1, budget.RemainingMs());
}
}  // namespace

Result<std::unique_ptr<PeerHost>> PeerHost::Listen(uint16_t port) {
  SECMED_ASSIGN_OR_RETURN(TcpListener listener, TcpListener::Listen(port));
  std::unique_ptr<PeerHost> host(new PeerHost());
  host->listener_ = std::move(listener);
  host->accept_thread_ = std::thread([h = host.get()] { h->AcceptLoop(); });
  return host;
}

PeerHost::~PeerHost() { Stop(); }

void PeerHost::Stop() {
  if (stop_.exchange(true)) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(readers_mutex_);
    for (std::thread& t : readers_) {
      if (t.joinable()) t.join();
    }
    readers_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    pool_.clear();
  }
  listener_.Close();
  cv_.notify_all();
}

void PeerHost::AcceptLoop() {
  while (!stop_.load()) {
    Result<TcpConn> conn = listener_.Accept(kLoopPollMs);
    if (!conn.ok()) {
      if (conn.status().code() == StatusCode::kDeadlineExceeded) continue;
      // Listener broken: no new connections, established ones keep
      // working. Surface the condition to waiters and stop accepting.
      FailStream(Status::Unavailable("accept loop ended: " +
                                     conn.status().message()));
      return;
    }
    std::lock_guard<std::mutex> lock(readers_mutex_);
    readers_.emplace_back(
        [this, c = std::make_shared<TcpConn>(std::move(conn).value())]()
            mutable { ReaderLoop(std::move(*c)); });
  }
}

void PeerHost::ReaderLoop(TcpConn conn) {
  FrameDecoder decoder;
  Bytes chunk;
  // Every sender party this connection has carried, with the sessions it
  // sent in. When the connection dies, exactly these parties are marked
  // down — a failure is scoped to the peer process it came from, never
  // to the whole host (unless the stream corrupted before any frame
  // identified a sender, where no scoping is possible).
  std::map<std::string, std::set<uint32_t>> senders;
  while (!stop_.load()) {
    chunk.clear();
    Result<size_t> n = conn.RecvSome(&chunk, kRecvChunk, kLoopPollMs);
    const bool clean_eof = n.ok() && *n == 0;
    if (!n.ok() || clean_eof) {
      if (!clean_eof && n.status().code() == StatusCode::kDeadlineExceeded) {
        continue;
      }
      // Connection gone — peer process death, restart, or a forced
      // disconnect. (A killed process closes its sockets cleanly, so
      // EOF and reset are the same event here.) Pending partial frame
      // bytes mean the stream is corrupt for good; otherwise the peers
      // it carried are down-but-maybe-coming-back (kUnavailable, which
      // the send/receive retry layers treat as transient).
      if (decoder.buffered() > 0) {
        const Status err = Status::ProtocolError(
            clean_eof ? "connection closed mid-frame"
                      : "connection dropped mid-frame: " +
                            n.status().message());
        if (senders.empty()) {
          FailStream(err);
        } else {
          MarkPeersDown(senders, err);
        }
      } else if (!senders.empty()) {
        MarkPeersDown(senders,
                      clean_eof ? Status::Unavailable("peer disconnected")
                                : n.status());
      }
      return;
    }
    decoder.Feed(chunk);
    for (;;) {
      Result<std::optional<WireFrame>> frame = decoder.Next();
      if (!frame.ok()) {
        // Undecodable inbound bytes. Scope the damage to the parties of
        // this connection when any are known; a first-frame corruption
        // has no sender to blame and fails the host.
        if (senders.empty()) {
          FailStream(frame.status());
        } else {
          MarkPeersDown(senders, frame.status());
        }
        return;
      }
      if (!frame->has_value()) break;
      senders[(*frame)->message.from].insert((*frame)->session);
      Deliver(std::move(**frame));
    }
  }
}

void PeerHost::Deliver(WireFrame frame) {
  obs::Scope* scope = obs();
  if (scope != nullptr) {
    scope->metrics().Add("net.frames_received", 1);
    // wire_size is the frame's actual footprint including any trace
    // extension; frames synthesized locally (wire_size 0) fall back to
    // the untraced message size.
    scope->metrics().Add("net.wire_bytes_received",
                         frame.wire_size > 0 ? frame.wire_size
                                             : frame.message.WireSize());
    if (frame.trace.valid()) {
      scope->metrics().Add("net.frames_traced_received", 1);
    }
  }
  if (frame.message.to == kAbortParty) {
    if (scope != nullptr) scope->metrics().Add("net.aborts_received", 1);
    AbortSession(frame.session,
                 Status::Aborted("session " + std::to_string(frame.session) +
                                 " aborted by [" + frame.message.from + "]: " +
                                 std::string(frame.message.payload.begin(),
                                             frame.message.payload.end())));
    return;
  }
  std::lock_guard<std::mutex> lock(mutex_);
  // A frame from a previously-down party: it reconnected. Clear the
  // mark so its waiters go back to normal frame waits.
  peer_down_.erase(frame.message.from);
  if (frame.session == kCtlSession && frame.message.to == kCtlParty) {
    ctl_queue_.push_back(std::move(frame.message));
  } else {
    auto& queue =
        inbox_[QueueKey{frame.session, frame.message.to, frame.message.from}];
    queue.push_back(std::move(frame.message));
    if (scope != nullptr) {
      scope->metrics().RaiseMax("net.queue_depth_max", queue.size());
    }
  }
  cv_.notify_all();
}

void PeerHost::FailStream(Status error) {
  obs::LogEvent(event_log(), obs::LogLevel::kError, "net.stream_error",
                {{"error", error.ToString()}});
  std::lock_guard<std::mutex> lock(mutex_);
  if (stream_error_.ok()) stream_error_ = std::move(error);
  cv_.notify_all();
}

void PeerHost::MarkPeersDown(
    const std::map<std::string, std::set<uint32_t>>& senders,
    const Status& error) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (const auto& [party, sessions] : senders) {
    if (peer_down_.count(party) > 0) continue;
    std::string in_sessions;
    for (uint32_t s : sessions) {
      if (s == kCtlSession) continue;
      if (!in_sessions.empty()) in_sessions += ",";
      in_sessions += std::to_string(s);
    }
    PeerDown down;
    down.status = Status(
        error.code(),
        "party '" + party + "' disconnected" +
            (in_sessions.empty() ? "" : " (session " + in_sessions + ")") +
            ": " + error.message());
    obs::LogEvent(event_log(), obs::LogLevel::kWarn, "net.peer_down",
                  {{"party", party},
                   {"sessions", in_sessions},
                   {"error", error.message()}});
    peer_down_.emplace(party, std::move(down));
  }
  cv_.notify_all();
}

void PeerHost::AbortSession(uint32_t session, Status reason) {
  if (reason.code() != StatusCode::kAborted) {
    reason = Status::Aborted(reason.ToString());
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (session_aborts_.count(session) > 0) return;  // first reason wins
  obs::LogEvent(event_log(), obs::LogLevel::kWarn, "net.session_abort",
                {{"session", std::to_string(session)},
                 {"reason", reason.message()}});
  session_aborts_.emplace(session, std::move(reason));
  // Reclaim the session's buffered frames right away — nobody may ever
  // drain them now.
  for (auto it = inbox_.begin(); it != inbox_.end();) {
    if (it->first.session == session) {
      it = inbox_.erase(it);
    } else {
      ++it;
    }
  }
  cv_.notify_all();
}

Status PeerHost::SessionAbort(uint32_t session) const {
  std::lock_guard<std::mutex> lock(mutex_);
  auto it = session_aborts_.find(session);
  return it != session_aborts_.end() ? it->second : Status::OK();
}

void PeerHost::CloseConnection(const std::string& pair) {
  std::shared_ptr<PooledConn> pc;
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    auto it = pool_.find(pair);
    if (it == pool_.end()) return;
    pc = it->second;
  }
  std::lock_guard<std::mutex> lock(pc->mutex);
  pc->conn.Close();
}

void PeerHost::SetRetryPolicy(const RetryPolicy& policy) {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  retry_ = policy;
}

RetryPolicy PeerHost::retry_policy() const {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  return retry_;
}

std::shared_ptr<PeerHost::PooledConn> PeerHost::PoolSlot(
    const std::string& pair) {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  std::shared_ptr<PooledConn>& slot = pool_[pair];
  if (slot == nullptr) slot = std::make_shared<PooledConn>();
  return slot;
}

Status PeerHost::ConnectWithRetry(PooledConn* pc, const Endpoint& ep,
                                  const DeadlineBudget& budget,
                                  const RetryPolicy& policy) {
  // Connect attempts are budget-driven, not attempt-capped: a daemon
  // that is still starting up refuses connections for an unknown number
  // of attempts but a very knowable amount of time. Backoff paces the
  // attempts so a long budget does not hammer the listen queue.
  Status last = Status::OK();
  for (int attempt = 1;; ++attempt) {
    Result<TcpConn> conn = TcpConn::Connect(ep, BoundedMs(budget, 0));
    if (conn.ok()) {
      pc->conn = std::move(conn).value();
      if (obs::Scope* scope = obs()) scope->metrics().Add("net.connects", 1);
      return Status::OK();
    }
    last = conn.status();
    if (!RetryPolicy::IsRetryable(last)) return last;
    if (budget.Expired()) {
      return ExhaustedBudget(last, "connect to " + ep.ToString(), budget,
                             attempt);
    }
    SleepForMs(std::min(policy.BackoffMs(attempt), BoundedMs(budget, 0)));
  }
}

Status PeerHost::SendFrame(const std::string& pair, const Endpoint& ep,
                           const Bytes& frame, int timeout_ms) {
  obs::Scope* scope = obs();
  uint64_t start_ns = scope != nullptr ? scope->tracer().NowNanos() : 0;
  Status st = SendFrameImpl(pair, ep, frame, timeout_ms);
  if (scope != nullptr) {
    scope->metrics().Observe("net.frame_send_ns",
                             scope->tracer().NowNanos() - start_ns);
    if (st.ok()) {
      scope->metrics().Add("net.frames_sent", 1);
      scope->metrics().Add("net.wire_bytes_sent", frame.size());
    }
  }
  return st;
}

Status PeerHost::SendFrameImpl(const std::string& pair, const Endpoint& ep,
                               const Bytes& frame, int timeout_ms) {
  const RetryPolicy policy = retry_policy();
  const DeadlineBudget budget(timeout_ms);
  // Per-pair lock: one pair's frames must not interleave on the wire,
  // but a retry loop stuck on a dead peer must not stall the sends of
  // other pairs — concurrent sessions keep running (the pool map lock
  // above was only held long enough to find the slot).
  std::shared_ptr<PooledConn> pc = PoolSlot(pair);
  std::lock_guard<std::mutex> lock(pc->mutex);
  Status last = Status::OK();
  for (int attempt = 1; attempt <= policy.max_attempts; ++attempt) {
    if (attempt > 1) {
      if (budget.Expired()) break;
      if (obs::Scope* scope = obs()) {
        scope->metrics().Add("net.send_retries", 1);
        scope->metrics().Add("net.send_retries." + pair, 1);
      }
      obs::LogEvent(event_log(), obs::LogLevel::kWarn, "net.send_retry",
                    {{"pair", pair},
                     {"attempt", std::to_string(attempt)},
                     {"error", last.message()}});
      SleepForMs(std::min(policy.BackoffMs(attempt - 1), BoundedMs(budget, 0)));
    }
    if (!pc->conn.valid()) {
      // First use, or the previous attempt closed a stale connection
      // (and the forced-disconnect fault closes it under our feet).
      Status st = ConnectWithRetry(pc.get(), ep, budget, policy);
      if (!st.ok()) return st;
      if (attempt > 1) {
        if (obs::Scope* scope = obs()) {
          scope->metrics().Add("net.reconnects", 1);
          scope->metrics().Add("net.reconnects." + pair, 1);
        }
        obs::LogEvent(event_log(), obs::LogLevel::kInfo, "net.reconnect",
                      {{"pair", pair}, {"endpoint", ep.ToString()}});
      }
    }
    Status st = pc->conn.SendAll(frame, BoundedMs(budget, timeout_ms));
    if (st.ok() || !RetryPolicy::IsRetryable(st)) return st;
    // Reset connection (peer restarted between sessions, or died). The
    // frame stream on it is unusable either way: close it and resend
    // the whole frame on a fresh connection — nothing of a frame on a
    // reset connection can have reached the peer application in a
    // decodable state, and the receiver treats a torn prefix as a
    // stream error, never as data.
    last = st;
    pc->conn.Close();
  }
  return ExhaustedBudget(last, "send " + pair, budget, policy.max_attempts);
}

Result<Message> PeerHost::WaitFrame(uint32_t session, const std::string& to,
                                    const std::string& from, int timeout_ms) {
  obs::Scope* scope = obs();
  uint64_t start_ns = scope != nullptr ? scope->tracer().NowNanos() : 0;
  std::unique_lock<std::mutex> lock(mutex_);
  const QueueKey key{session, to, from};
  cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
    auto it = inbox_.find(key);
    return (it != inbox_.end() && !it->second.empty()) ||
           session_aborts_.count(session) > 0 || !stream_error_.ok() ||
           peer_down_.count(from) > 0 || stop_.load();
  });
  if (scope != nullptr) {
    scope->metrics().Observe("net.frame_wait_ns",
                             scope->tracer().NowNanos() - start_ns);
  }
  // An abort outranks a queued frame: the session is dead either way,
  // and the abort carries the reason every party should report.
  if (auto ab = session_aborts_.find(session); ab != session_aborts_.end()) {
    return ab->second;
  }
  auto it = inbox_.find(key);
  if (it != inbox_.end() && !it->second.empty()) {
    Message msg = std::move(it->second.front());
    it->second.pop_front();
    return msg;
  }
  if (!stream_error_.ok()) return stream_error_;
  if (auto pd = peer_down_.find(from); pd != peer_down_.end()) {
    return pd->second.status;
  }
  if (stop_.load()) return Status::Unavailable("peer host stopped");
  return Status::DeadlineExceeded("no frame for " + to + " from " + from +
                                  " in session " + std::to_string(session) +
                                  " within " + std::to_string(timeout_ms) +
                                  " ms");
}

Result<Message> PeerHost::WaitCtl(int timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  auto unnotified = [&] {
    return std::find_if(peer_down_.begin(), peer_down_.end(),
                        [](const auto& e) { return !e.second.ctl_notified; });
  };
  cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
    return !ctl_queue_.empty() || !stream_error_.ok() ||
           unnotified() != peer_down_.end() || stop_.load();
  });
  if (!ctl_queue_.empty()) {
    Message msg = std::move(ctl_queue_.front());
    ctl_queue_.pop_front();
    return msg;
  }
  if (auto it = unnotified(); it != peer_down_.end()) {
    // Synthesize the one-shot peer-down notification (kCtlPeerDown doc
    // in the header): an event, not a sticky error, so long-running
    // control loops stay alive across client generations.
    it->second.ctl_notified = true;
    const std::string detail = it->second.status.message();
    return Message{it->first, kCtlParty, kCtlPeerDown,
                   Bytes(detail.begin(), detail.end())};
  }
  if (!stream_error_.ok()) return stream_error_;
  if (stop_.load()) return Status::Unavailable("peer host stopped");
  return Status::DeadlineExceeded("no control frame within " +
                                  std::to_string(timeout_ms) + " ms");
}

void PeerHost::DropSession(uint32_t session) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = inbox_.begin(); it != inbox_.end();) {
    if (it->first.session == session) {
      it = inbox_.erase(it);
    } else {
      ++it;
    }
  }
  // The session id may be reused by a later query.
  session_aborts_.erase(session);
}

std::string TcpTransport::LocalLabel() const {
  std::string label;
  for (const std::string& p : options_.local_parties) {
    if (!label.empty()) label += ",";
    label += p;
  }
  return label.empty() ? "?" : label;
}

Status TcpTransport::Send(Message msg) {
  if (!sticky_.ok()) return sticky_;
  if (tamper_hook_) tamper_hook_(&msg);
  const bool wire = IsHostedHere(msg.from) && IsRemote(msg.to);
  if (wire) {
    // Stamp the scope's distributed trace context onto the frame (an
    // unset context encodes an untraced v2 frame of unchanged size).
    // Carried at the frame layer, outside the message body, so the
    // replicated-execution byte verification and the shadow statistics
    // are identical whether or not telemetry is on.
    Bytes frame = EncodeFrame(
        options_.session, msg,
        obs_scope_ != nullptr ? obs_scope_->CurrentTrace()
                              : obs::TraceContext{});
    if (frame_tamper_hook_) frame_tamper_hook_(&frame);
    FaultInjector::Action fault;
    if (options_.faults != nullptr) {
      fault = options_.faults->Apply(options_.session, msg.from, msg.to,
                                     &frame, obs_scope_);
    }
    const std::string pair = msg.from + ">" + msg.to;
    const Endpoint& ep = options_.directory.at(msg.to);
    if (fault.drop || fault.duplicate || fault.disconnect ||
        fault.delay_ms > 0) {
      obs::LogEvent(host_->event_log(), obs::LogLevel::kWarn,
                    "net.fault_injected",
                    {{"pair", pair},
                     {"session", std::to_string(options_.session)},
                     {"drop", fault.drop ? "1" : "0"},
                     {"duplicate", fault.duplicate ? "1" : "0"},
                     {"disconnect", fault.disconnect ? "1" : "0"},
                     {"delay_ms", std::to_string(fault.delay_ms)}});
    }
    // Order matters: the forced disconnect closes the pooled connection
    // *before* the write, so the frame provably never reached the peer
    // and the send retry layer may reconnect and resend it safely.
    if (fault.disconnect) host_->CloseConnection(pair);
    if (fault.delay_ms > 0) SleepForMs(fault.delay_ms);
    if (!fault.drop) {
      Status st = host_->SendFrame(pair, ep, frame, options_.timeout_ms);
      if (st.ok() && fault.duplicate) {
        st = host_->SendFrame(pair, ep, frame, options_.timeout_ms);
      }
      if (!st.ok()) {
        sticky_ = st;
        return st;
      }
    }
  }
  // Shadow bookkeeping after the real send: transcript, statistics and
  // local FIFO delivery, identical to the in-process bus.
  return shadow_.Send(std::move(msg));
}

Result<Message> TcpTransport::Receive(const std::string& party) {
  if (!sticky_.ok()) return sticky_;
  Result<Message> shadow = shadow_.Receive(party);
  if (!shadow.ok()) return shadow;
  if (IsHostedHere(shadow->to) && IsRemote(shadow->from)) {
    // The shadow says a remote party sent this: insist on the real frame
    // and on its bytes agreeing with the replicated execution.
    Result<Message> wire = WaitWireFrame(shadow->to, shadow->from);
    if (!wire.ok()) {
      sticky_ = wire.status();
      return sticky_;
    }
    if (wire->type != shadow->type || wire->payload != shadow->payload ||
        wire->from != shadow->from || wire->to != shadow->to) {
      sticky_ = Status::ProtocolError(
          "wire message from " + shadow->from + " to " + shadow->to +
          " diverges from the replicated execution (type '" + wire->type +
          "' vs '" + shadow->type + "', " +
          std::to_string(wire->payload.size()) + " vs " +
          std::to_string(shadow->payload.size()) + " payload bytes)");
      return sticky_;
    }
  }
  return shadow;
}

Result<Message> TcpTransport::WaitWireFrame(const std::string& to,
                                            const std::string& from) {
  // One deadline budget bounds the whole wait including retries. A
  // transient failure (kUnavailable: the sender's process disconnected,
  // perhaps to come right back — the forced-disconnect fault, a daemon
  // restart) surfaces from WaitFrame immediately; backing off and
  // retrying gives the reconnect a chance while keeping a genuinely
  // dead peer loud, named, and bounded by the budget.
  const DeadlineBudget budget(options_.timeout_ms);
  Status last = Status::OK();
  for (int attempt = 1;; ++attempt) {
    Result<Message> wire = host_->WaitFrame(
        options_.session, to, from,
        budget.unbounded() ? options_.timeout_ms : BoundedMs(budget, 1));
    if (wire.ok()) return wire;
    Status st = wire.status();
    if (st.code() == StatusCode::kDeadlineExceeded && !last.ok()) {
      // The budget ran out while waiting for a reconnect; the earlier
      // named transient error explains the failure better than a bare
      // deadline would.
      return ExhaustedBudget(last, "receive " + to + "<" + from, budget,
                             attempt);
    }
    if (!RetryPolicy::IsRetryable(st)) return st;
    last = st;
    if (attempt >= options_.retry.max_attempts || budget.Expired()) {
      return ExhaustedBudget(last, "receive " + to + "<" + from, budget,
                             attempt);
    }
    if (obs_scope_ != nullptr) {
      obs_scope_->metrics().Add("net.recv_retries", 1);
    }
    SleepForMs(std::min(options_.retry.BackoffMs(attempt),
                        BoundedMs(budget, options_.retry.max_backoff_ms)));
  }
}

Result<Message> TcpTransport::ReceiveOfType(const std::string& party,
                                            const std::string& type) {
  // Full Receive first — even a type-mismatched message must consume its
  // wire frame so the stream stays in sync. The mismatched message is
  // dequeued, matching NetworkBus semantics.
  Result<Message> msg = Receive(party);
  if (!msg.ok()) return msg;
  if (msg->type != type) {
    return Status::ProtocolError("expected message of type '" + type +
                                 "' for " + party + ", got '" + msg->type +
                                 "'");
  }
  return msg;
}

void TcpTransport::Abort(const Status& reason) {
  host_->AbortSession(options_.session, reason);
  if (sticky_.ok() || sticky_.code() != StatusCode::kAborted) {
    sticky_ = host_->SessionAbort(options_.session);
  }
  if (abort_sent_) return;
  abort_sent_ = true;
  // A kAborted reason means another party started this abort and told
  // us; re-broadcasting would echo aborts around the deployment.
  if (reason.code() == StatusCode::kAborted) return;
  obs::LogEvent(host_->event_log(), obs::LogLevel::kError,
                "net.abort_broadcast",
                {{"session", std::to_string(options_.session)},
                 {"from", LocalLabel()},
                 {"reason", reason.ToString()}});
  Message notice{LocalLabel(), kAbortParty, kMsgAbort,
                 ToBytes(reason.ToString())};
  const Bytes frame = EncodeFrame(options_.session, notice);
  // One frame per peer *process*: parties sharing a daemon share its
  // PeerHost, where the abort lands session-wide. A dedicated pool pair
  // keyed by endpoint keeps the broadcast off the protocol pairs' locks
  // (one of which may be the stuck connection that caused the abort).
  std::set<Endpoint> eps;
  for (const auto& [party, ep] : options_.directory) {
    if (IsRemote(party)) eps.insert(ep);
  }
  for (const Endpoint& ep : eps) {
    Status st = host_->SendFrame("@abort>" + ep.ToString(), ep, frame,
                                 std::min(options_.timeout_ms, kAbortSendMs));
    if (obs_scope_ != nullptr && st.ok()) {
      obs_scope_->metrics().Add("net.aborts_sent", 1);
    }
    // Best effort: an unreachable peer is either already down or will
    // fail on its own deadline budget.
  }
}

void TcpTransport::Reset() {
  shadow_.Reset();
  sticky_ = Status::OK();
  abort_sent_ = false;
  host_->DropSession(options_.session);
}

}  // namespace secmed
