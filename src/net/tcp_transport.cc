#include "net/tcp_transport.h"

#include <chrono>

namespace secmed {

namespace {
// Poll interval of the accept/reader loops: threads notice Stop() within
// one interval without any cross-thread socket shutdown games.
constexpr int kLoopPollMs = 100;
constexpr size_t kRecvChunk = 64 * 1024;
}  // namespace

Result<std::unique_ptr<PeerHost>> PeerHost::Listen(uint16_t port) {
  SECMED_ASSIGN_OR_RETURN(TcpListener listener, TcpListener::Listen(port));
  std::unique_ptr<PeerHost> host(new PeerHost());
  host->listener_ = std::move(listener);
  host->accept_thread_ = std::thread([h = host.get()] { h->AcceptLoop(); });
  return host;
}

PeerHost::~PeerHost() { Stop(); }

void PeerHost::Stop() {
  if (stop_.exchange(true)) return;
  if (accept_thread_.joinable()) accept_thread_.join();
  {
    std::lock_guard<std::mutex> lock(readers_mutex_);
    for (std::thread& t : readers_) {
      if (t.joinable()) t.join();
    }
    readers_.clear();
  }
  {
    std::lock_guard<std::mutex> lock(pool_mutex_);
    pool_.clear();
  }
  listener_.Close();
  cv_.notify_all();
}

void PeerHost::AcceptLoop() {
  while (!stop_.load()) {
    Result<TcpConn> conn = listener_.Accept(kLoopPollMs);
    if (!conn.ok()) {
      if (conn.status().code() == StatusCode::kDeadlineExceeded) continue;
      // Listener broken: no new connections, established ones keep
      // working. Surface the condition to waiters and stop accepting.
      FailStream(Status::Unavailable("accept loop ended: " +
                                     conn.status().message()));
      return;
    }
    std::lock_guard<std::mutex> lock(readers_mutex_);
    readers_.emplace_back(
        [this, c = std::make_shared<TcpConn>(std::move(conn).value())]()
            mutable { ReaderLoop(std::move(*c)); });
  }
}

void PeerHost::ReaderLoop(TcpConn conn) {
  FrameDecoder decoder;
  Bytes chunk;
  while (!stop_.load()) {
    chunk.clear();
    Result<size_t> n = conn.RecvSome(&chunk, kRecvChunk, kLoopPollMs);
    if (!n.ok()) {
      if (n.status().code() == StatusCode::kDeadlineExceeded) continue;
      // Peer reset mid-stream. Pending partial frame bytes are lost; if
      // any were buffered the stream is corrupt for good.
      if (decoder.buffered() > 0) {
        FailStream(Status::ProtocolError(
            "connection dropped mid-frame: " + n.status().message()));
      }
      return;
    }
    if (*n == 0) {  // clean EOF
      if (decoder.buffered() > 0) {
        FailStream(Status::ProtocolError("connection closed mid-frame"));
      }
      return;
    }
    decoder.Feed(chunk);
    for (;;) {
      Result<std::optional<WireFrame>> frame = decoder.Next();
      if (!frame.ok()) {
        FailStream(frame.status());
        return;
      }
      if (!frame->has_value()) break;
      Deliver(std::move(**frame));
    }
  }
}

void PeerHost::Deliver(WireFrame frame) {
  obs::Scope* scope = obs();
  if (scope != nullptr) {
    scope->metrics().Add("net.frames_received", 1);
    scope->metrics().Add("net.wire_bytes_received", frame.message.WireSize());
  }
  std::lock_guard<std::mutex> lock(mutex_);
  if (frame.session == kCtlSession && frame.message.to == kCtlParty) {
    ctl_queue_.push_back(std::move(frame.message));
  } else {
    auto& queue =
        inbox_[QueueKey{frame.session, frame.message.to, frame.message.from}];
    queue.push_back(std::move(frame.message));
    if (scope != nullptr) {
      scope->metrics().RaiseMax("net.queue_depth_max", queue.size());
    }
  }
  cv_.notify_all();
}

void PeerHost::FailStream(Status error) {
  std::lock_guard<std::mutex> lock(mutex_);
  if (stream_error_.ok()) stream_error_ = std::move(error);
  cv_.notify_all();
}

Status PeerHost::SendFrame(const std::string& pair, const Endpoint& ep,
                           const Bytes& frame, int timeout_ms) {
  obs::Scope* scope = obs();
  uint64_t start_ns = scope != nullptr ? scope->tracer().NowNanos() : 0;
  Status st = SendFrameLocked(pair, ep, frame, timeout_ms);
  if (scope != nullptr) {
    scope->metrics().Observe("net.frame_send_ns",
                             scope->tracer().NowNanos() - start_ns);
    if (st.ok()) {
      scope->metrics().Add("net.frames_sent", 1);
      scope->metrics().Add("net.wire_bytes_sent", frame.size());
    }
  }
  return st;
}

Status PeerHost::SendFrameLocked(const std::string& pair, const Endpoint& ep,
                                 const Bytes& frame, int timeout_ms) {
  std::lock_guard<std::mutex> lock(pool_mutex_);
  auto it = pool_.find(pair);
  if (it == pool_.end()) {
    // First use of this party pair: connect, retrying while the peer
    // process is still coming up.
    const auto deadline = std::chrono::steady_clock::now() +
                          std::chrono::milliseconds(timeout_ms);
    for (;;) {
      Result<TcpConn> conn = TcpConn::Connect(ep, timeout_ms);
      if (conn.ok()) {
        it = pool_.emplace(pair, std::move(conn).value()).first;
        if (obs::Scope* scope = obs()) {
          scope->metrics().Add("net.connects", 1);
        }
        break;
      }
      if (conn.status().code() != StatusCode::kUnavailable ||
          std::chrono::steady_clock::now() >= deadline) {
        return conn.status();
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(50));
    }
  }
  Status st = it->second.SendAll(frame, timeout_ms);
  if (st.ok() || st.code() != StatusCode::kUnavailable) return st;
  // Stale pooled connection (peer restarted between sessions):
  // reconnect once and retry the whole frame — nothing of it can have
  // reached the application on a reset connection.
  pool_.erase(it);
  if (obs::Scope* scope = obs()) {
    scope->metrics().Add("net.reconnects", 1);
  }
  SECMED_ASSIGN_OR_RETURN(TcpConn fresh, TcpConn::Connect(ep, timeout_ms));
  it = pool_.emplace(pair, std::move(fresh)).first;
  return it->second.SendAll(frame, timeout_ms);
}

Result<Message> PeerHost::WaitFrame(uint32_t session, const std::string& to,
                                    const std::string& from, int timeout_ms) {
  obs::Scope* scope = obs();
  uint64_t start_ns = scope != nullptr ? scope->tracer().NowNanos() : 0;
  std::unique_lock<std::mutex> lock(mutex_);
  const QueueKey key{session, to, from};
  const bool ready = cv_.wait_for(
      lock, std::chrono::milliseconds(timeout_ms), [&] {
        auto it = inbox_.find(key);
        return (it != inbox_.end() && !it->second.empty()) ||
               !stream_error_.ok() || stop_.load();
      });
  auto it = inbox_.find(key);
  if (scope != nullptr) {
    scope->metrics().Observe("net.frame_wait_ns",
                             scope->tracer().NowNanos() - start_ns);
  }
  if (it != inbox_.end() && !it->second.empty()) {
    Message msg = std::move(it->second.front());
    it->second.pop_front();
    return msg;
  }
  if (!stream_error_.ok()) return stream_error_;
  if (stop_.load()) return Status::Unavailable("peer host stopped");
  (void)ready;
  return Status::DeadlineExceeded("no frame for " + to + " from " + from +
                                  " in session " + std::to_string(session) +
                                  " within " + std::to_string(timeout_ms) +
                                  " ms");
}

Result<Message> PeerHost::WaitCtl(int timeout_ms) {
  std::unique_lock<std::mutex> lock(mutex_);
  cv_.wait_for(lock, std::chrono::milliseconds(timeout_ms), [&] {
    return !ctl_queue_.empty() || !stream_error_.ok() || stop_.load();
  });
  if (!ctl_queue_.empty()) {
    Message msg = std::move(ctl_queue_.front());
    ctl_queue_.pop_front();
    return msg;
  }
  if (!stream_error_.ok()) return stream_error_;
  if (stop_.load()) return Status::Unavailable("peer host stopped");
  return Status::DeadlineExceeded("no control frame within " +
                                  std::to_string(timeout_ms) + " ms");
}

void PeerHost::DropSession(uint32_t session) {
  std::lock_guard<std::mutex> lock(mutex_);
  for (auto it = inbox_.begin(); it != inbox_.end();) {
    if (it->first.session == session) {
      it = inbox_.erase(it);
    } else {
      ++it;
    }
  }
}

Status TcpTransport::Send(Message msg) {
  if (!sticky_.ok()) return sticky_;
  if (tamper_hook_) tamper_hook_(&msg);
  const bool wire = IsHostedHere(msg.from) && IsRemote(msg.to);
  if (wire) {
    Bytes frame = EncodeFrame(options_.session, msg);
    if (frame_tamper_hook_) frame_tamper_hook_(&frame);
    Status st = host_->SendFrame(msg.from + ">" + msg.to,
                                 options_.directory.at(msg.to), frame,
                                 options_.timeout_ms);
    if (!st.ok()) {
      sticky_ = st;
      return st;
    }
  }
  // Shadow bookkeeping after the real send: transcript, statistics and
  // local FIFO delivery, identical to the in-process bus.
  return shadow_.Send(std::move(msg));
}

Result<Message> TcpTransport::Receive(const std::string& party) {
  if (!sticky_.ok()) return sticky_;
  Result<Message> shadow = shadow_.Receive(party);
  if (!shadow.ok()) return shadow;
  if (IsHostedHere(shadow->to) && IsRemote(shadow->from)) {
    // The shadow says a remote party sent this: insist on the real frame
    // and on its bytes agreeing with the replicated execution.
    Result<Message> wire = host_->WaitFrame(options_.session, shadow->to,
                                            shadow->from, options_.timeout_ms);
    if (!wire.ok()) {
      sticky_ = wire.status();
      return sticky_;
    }
    if (wire->type != shadow->type || wire->payload != shadow->payload ||
        wire->from != shadow->from || wire->to != shadow->to) {
      sticky_ = Status::ProtocolError(
          "wire message from " + shadow->from + " to " + shadow->to +
          " diverges from the replicated execution (type '" + wire->type +
          "' vs '" + shadow->type + "', " +
          std::to_string(wire->payload.size()) + " vs " +
          std::to_string(shadow->payload.size()) + " payload bytes)");
      return sticky_;
    }
  }
  return shadow;
}

Result<Message> TcpTransport::ReceiveOfType(const std::string& party,
                                            const std::string& type) {
  // Full Receive first — even a type-mismatched message must consume its
  // wire frame so the stream stays in sync. The mismatched message is
  // dequeued, matching NetworkBus semantics.
  Result<Message> msg = Receive(party);
  if (!msg.ok()) return msg;
  if (msg->type != type) {
    return Status::ProtocolError("expected message of type '" + type +
                                 "' for " + party + ", got '" + msg->type +
                                 "'");
  }
  return msg;
}

void TcpTransport::Reset() {
  shadow_.Reset();
  sticky_ = Status::OK();
  host_->DropSession(options_.session);
}

}  // namespace secmed
