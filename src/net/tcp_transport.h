#ifndef SECMED_NET_TCP_TRANSPORT_H_
#define SECMED_NET_TCP_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/bus.h"
#include "net/tcp.h"
#include "net/wire.h"

namespace secmed {

/// Reserved pseudo-party and session carrying daemon control traffic
/// (run requests, completion digests) over the same frame format as
/// protocol messages.
inline constexpr char kCtlParty[] = "@ctl";
inline constexpr uint32_t kCtlSession = 0;

/// The socket endpoint of one deployment process (a party daemon or the
/// client driver). Owns the listener, the accept/reader threads, the
/// demultiplexed inbound frame queues, and a pool of outbound
/// connections — one per (sender party, receiver party) pair, created
/// lazily and *reused across sessions*, so a series of queries pays
/// connection setup once.
///
/// Inbound frames are routed by (session id, receiver party, sender
/// party); `TcpTransport` instances for different sessions share one
/// PeerHost, which is how concurrent queries are multiplexed over the
/// same sockets. Frames addressed to `kCtlParty` land in a separate
/// control queue read by the daemon main loop.
///
/// Thread-safety: fully thread-safe; every method may be called from any
/// thread.
class PeerHost {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept loop.
  static Result<std::unique_ptr<PeerHost>> Listen(uint16_t port);

  ~PeerHost();
  PeerHost(const PeerHost&) = delete;
  PeerHost& operator=(const PeerHost&) = delete;

  uint16_t port() const { return listener_.port(); }

  /// Stops the accept/reader threads and closes every socket. Idempotent.
  void Stop();

  /// Sends one encoded frame to the process at `ep` over the pooled
  /// connection for `pair` (e.g. "hospital>mediator"), establishing it on
  /// first use. A send on a stale pooled connection (peer restarted)
  /// reconnects once and retries; while the peer is still starting up,
  /// connecting is retried until `timeout_ms` elapses.
  Status SendFrame(const std::string& pair, const Endpoint& ep,
                   const Bytes& frame, int timeout_ms);

  /// Blocks until a frame of `session` addressed to `to` and sent by
  /// `from` arrives, or `timeout_ms` elapses (kDeadlineExceeded). A
  /// corrupt inbound stream fails every waiter with kProtocolError.
  Result<Message> WaitFrame(uint32_t session, const std::string& to,
                            const std::string& from, int timeout_ms);

  /// Blocks for the next control frame (session kCtlSession, party
  /// kCtlParty) from any sender.
  Result<Message> WaitCtl(int timeout_ms);

  /// Drops all frames buffered for `session` (a finished query).
  void DropSession(uint32_t session);

  /// Attaches an observability scope; the host then records per-frame
  /// send/wait latency histograms, wire byte/frame counters, reconnects
  /// and the high-water inbound queue depth. Null detaches. May be
  /// called from any thread; the scope must outlive the host or the
  /// next call.
  void SetObsScope(obs::Scope* scope) {
    obs_.store(scope, std::memory_order_release);
  }

 private:
  obs::Scope* obs() const { return obs_.load(std::memory_order_acquire); }

  PeerHost() = default;

  void AcceptLoop();
  void ReaderLoop(TcpConn conn);
  void Deliver(WireFrame frame);
  void FailStream(Status error);
  Status SendFrameLocked(const std::string& pair, const Endpoint& ep,
                         const Bytes& frame, int timeout_ms);

  TcpListener listener_;
  std::atomic<obs::Scope*> obs_{nullptr};
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;

  std::mutex readers_mutex_;
  std::vector<std::thread> readers_;

  std::mutex pool_mutex_;
  std::map<std::string, TcpConn> pool_;  // by party-pair key

  // (session, to, from) -> FIFO of inbound messages, plus the control
  // queue and a sticky stream error.
  struct QueueKey {
    uint32_t session;
    std::string to;
    std::string from;
    bool operator<(const QueueKey& o) const {
      if (session != o.session) return session < o.session;
      if (to != o.to) return to < o.to;
      return from < o.from;
    }
  };
  std::mutex mutex_;
  std::condition_variable cv_;
  std::map<QueueKey, std::deque<Message>> inbox_;
  std::deque<Message> ctl_queue_;
  Status stream_error_ = Status::OK();
};

/// Framed-TCP implementation of `Transport` for one deployment process
/// and one session.
///
/// Deployment model (replicated execution): every process runs the same
/// deterministic protocol driver over the same seeded testbed, but each
/// process *hosts* only its own parties. The transport keeps the full
/// local simulation as the shadow of the run — identical transcript,
/// statistics and `ViewOf` as the in-process `NetworkBus` — while the
/// messages of hosted parties really cross sockets:
///
///  - Send whose `from` is hosted here and whose `to` is hosted by a
///    peer: the message is framed (net/wire.h) and written to the pooled
///    connection for that party pair, in addition to the local shadow
///    delivery.
///  - Receive for a party hosted here of a message sent by a remote
///    party: blocks until the real frame arrives, then verifies it is
///    byte-identical to the shadow message. Any divergence — tampering,
///    version skew, nondeterminism — fails the run with kProtocolError.
///  - All other traffic (both endpoints remote, or both local) stays in
///    the shadow.
///
/// So the result relation is computed from locally-received real bytes
/// in exactly the sense the acceptance criterion demands: a protocol run
/// only completes if every cross-process message arrived over TCP with
/// the exact bytes of the reference execution.
///
/// Not thread-safe (like NetworkBus): one driver thread per session.
/// Several TcpTransports over one PeerHost run concurrently.
class TcpTransport : public Transport {
 public:
  struct Options {
    /// Parties hosted by this process. Parties in neither this set nor
    /// `directory` are treated as local simulation-only endpoints.
    std::set<std::string> local_parties;
    /// Where the parties hosted by peer processes listen.
    std::map<std::string, Endpoint> directory;
    /// Session id stamped on every frame of this transport.
    uint32_t session = 1;
    /// Deadline for blocking socket operations and frame waits.
    int timeout_ms = 30000;
  };

  TcpTransport(PeerHost* host, Options options)
      : host_(host), options_(std::move(options)) {}

  using Transport::Send;
  Status Send(Message msg) override;
  Result<Message> Receive(const std::string& party) override;
  Result<Message> ReceiveOfType(const std::string& party,
                                const std::string& type) override;
  size_t PendingFor(const std::string& party) const override {
    return shadow_.PendingFor(party);
  }
  const std::vector<Message>& transcript() const override {
    return shadow_.transcript();
  }
  PartyStats StatsOf(const std::string& party) const override {
    return shadow_.StatsOf(party);
  }
  size_t TotalBytes() const override { return shadow_.TotalBytes(); }
  Bytes ViewOf(const std::string& party) const override {
    return shadow_.ViewOf(party);
  }
  void Reset() override;
  void SetTamperHook(std::function<void(Message*)> hook) override {
    tamper_hook_ = std::move(hook);
  }

  /// Feeds the scope to the local shadow bus *and* the shared PeerHost,
  /// so one attach captures both message-level and wire-level metrics.
  void SetObsScope(obs::Scope* scope) override {
    shadow_.SetObsScope(scope);
    host_->SetObsScope(scope);
  }

  /// Fault injection below the message layer: mutates the *encoded
  /// frame* (truncate, inflate, flip header bytes) before it is written
  /// to the socket. The receiving process surfaces the corruption as
  /// kProtocolError — exercised by robustness_test.
  void SetFrameTamperHook(std::function<void(Bytes*)> hook) {
    frame_tamper_hook_ = std::move(hook);
  }

  uint32_t session() const { return options_.session; }

 private:
  bool IsHostedHere(const std::string& party) const {
    return options_.local_parties.count(party) > 0;
  }
  bool IsRemote(const std::string& party) const {
    return !IsHostedHere(party) && options_.directory.count(party) > 0;
  }

  PeerHost* host_;
  Options options_;
  NetworkBus shadow_;
  Status sticky_ = Status::OK();
  std::function<void(Message*)> tamper_hook_;
  std::function<void(Bytes*)> frame_tamper_hook_;
};

}  // namespace secmed

#endif  // SECMED_NET_TCP_TRANSPORT_H_
