#ifndef SECMED_NET_TCP_TRANSPORT_H_
#define SECMED_NET_TCP_TRANSPORT_H_

#include <atomic>
#include <condition_variable>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "net/bus.h"
#include "net/fault.h"
#include "net/retry.h"
#include "net/tcp.h"
#include "net/wire.h"
#include "obs/log.h"

namespace secmed {

/// Reserved pseudo-party and session carrying daemon control traffic
/// (run requests, completion digests) over the same frame format as
/// protocol messages.
inline constexpr char kCtlParty[] = "@ctl";
inline constexpr uint32_t kCtlSession = 0;

/// Type of the synthetic control message WaitCtl returns when a peer
/// process disconnects (its reader thread saw EOF or a reset): `from` is
/// the dead party, the payload the underlying error. Synthesized — never
/// on the wire — so control-plane loops can react to peer death without
/// a sticky error killing them: secmedd logs and keeps serving, the
/// drive client fails fast naming the dead party instead of blocking
/// until its full report deadline. Each death is reported once.
inline constexpr char kCtlPeerDown[] = "ctl_peer_down";

/// Reserved pseudo-party of the session-abort control frame. A frame
/// addressed to it (in the aborting session, any sender) tells the
/// receiving process to abort that session: the frame is not queued,
/// every blocked and future WaitFrame of the session returns kAborted,
/// and the session's buffered frames are reclaimed. Other sessions
/// multiplexed on the same sockets are untouched. The payload carries
/// the human-readable abort reason, `from` the aborting party.
inline constexpr char kAbortParty[] = "@abort";
inline constexpr char kMsgAbort[] = "abort";

/// The socket endpoint of one deployment process (a party daemon or the
/// client driver). Owns the listener, the accept/reader threads, the
/// demultiplexed inbound frame queues, and a pool of outbound
/// connections — one per (sender party, receiver party) pair, created
/// lazily and *reused across sessions*, so a series of queries pays
/// connection setup once.
///
/// Inbound frames are routed by (session id, receiver party, sender
/// party); `TcpTransport` instances for different sessions share one
/// PeerHost, which is how concurrent queries are multiplexed over the
/// same sockets. Frames addressed to `kCtlParty` land in a separate
/// control queue read by the daemon main loop.
///
/// Failure semantics (docs/ROBUSTNESS.md):
///  - Sends run under the host's RetryPolicy within a per-operation
///    DeadlineBudget: kUnavailable connect/write failures reconnect and
///    resend with bounded exponential backoff; everything else is
///    terminal.
///  - A reader thread that sees its connection close (peer death,
///    forced disconnect) marks every sender party it had carried as
///    *down*: blocked WaitFrame/WaitCtl calls for those parties fail
///    immediately with an error naming the dead party (kUnavailable) —
///    not after the full frame-wait deadline. A later frame from the
///    party (it reconnected) clears the mark.
///  - A corrupt inbound stream marks its senders down with a sticky
///    kProtocolError; if the stream was corrupt before any frame
///    identified a sender, the whole host fails (no way to scope it).
///  - Session aborts are per-session: AbortSession (or an inbound
///    abort frame) fails only that session's waiters with kAborted.
///
/// Thread-safety: fully thread-safe; every method may be called from any
/// thread.
class PeerHost {
 public:
  /// Binds 127.0.0.1:`port` (0 = ephemeral) and starts the accept loop.
  static Result<std::unique_ptr<PeerHost>> Listen(uint16_t port);

  ~PeerHost();
  PeerHost(const PeerHost&) = delete;
  PeerHost& operator=(const PeerHost&) = delete;

  uint16_t port() const { return listener_.port(); }

  /// Stops the accept/reader threads and closes every socket. Idempotent.
  void Stop();

  /// Sends one encoded frame to the process at `ep` over the pooled
  /// connection for `pair` (e.g. "hospital>mediator"), establishing it
  /// on first use. `timeout_ms` is the *total* budget of the operation:
  /// connect attempts (retried while the peer is still starting up),
  /// writes, reconnects of stale pooled connections, and the retry
  /// backoff sleeps all draw from it. Distinct pairs send concurrently;
  /// one pair's sends are serialized (frame streams must not interleave).
  Status SendFrame(const std::string& pair, const Endpoint& ep,
                   const Bytes& frame, int timeout_ms);

  /// Blocks until a frame of `session` addressed to `to` and sent by
  /// `from` arrives, or `timeout_ms` elapses (kDeadlineExceeded). Fails
  /// early with kAborted if the session aborts, kUnavailable naming the
  /// party if `from`'s process disconnects, kProtocolError if its
  /// stream corrupts.
  Result<Message> WaitFrame(uint32_t session, const std::string& to,
                            const std::string& from, int timeout_ms);

  /// Blocks for the next control frame (session kCtlSession, party
  /// kCtlParty) from any sender. Fails early (kUnavailable, naming the
  /// party) if a connected peer process dies while waiting.
  Result<Message> WaitCtl(int timeout_ms);

  /// Marks `session` aborted with `reason` (coerced to kAborted): every
  /// blocked and future WaitFrame of the session returns it immediately
  /// and the session's buffered frames are dropped. Idempotent — the
  /// first reason wins. Other sessions are untouched.
  void AbortSession(uint32_t session, Status reason);

  /// The abort status of `session` (kAborted) or OK.
  Status SessionAbort(uint32_t session) const;

  /// Drops all frames buffered for `session` and clears its abort mark
  /// (a finished query; the session id may be reused).
  void DropSession(uint32_t session);

  /// Force-closes the pooled outbound connection for `pair` (used by
  /// the forced-disconnect fault). The next SendFrame reconnects.
  void CloseConnection(const std::string& pair);

  /// Retry policy for SendFrame connect/write failures. Applies to
  /// subsequent calls; set it before the deployment starts sending.
  void SetRetryPolicy(const RetryPolicy& policy);
  RetryPolicy retry_policy() const;

  /// Attaches an observability scope; the host then records per-frame
  /// send/wait latency histograms, wire byte/frame counters, reconnects,
  /// retries, aborts and the high-water inbound queue depth. Null
  /// detaches. May be called from any thread; the scope must outlive
  /// the host or the next call.
  void SetObsScope(obs::Scope* scope) {
    obs_.store(scope, std::memory_order_release);
  }

  /// Attaches a structured event logger: retries, reconnects, peer
  /// death, stream corruption and aborts are then logged as JSON events
  /// (all failure/lifecycle paths, never per-frame). Null detaches. The
  /// logger must outlive the host or the next call.
  void SetEventLog(obs::EventLog* log) {
    event_log_.store(log, std::memory_order_release);
  }
  obs::EventLog* event_log() const {
    return event_log_.load(std::memory_order_acquire);
  }

 private:
  obs::Scope* obs() const { return obs_.load(std::memory_order_acquire); }

  PeerHost() = default;

  /// One pooled outbound connection. `mutex` serializes connect/write
  /// on the pair so concurrent sessions cannot interleave frame bytes;
  /// the pool map itself is only locked long enough to find the slot,
  /// so a dead peer stalling one pair never blocks sends on others.
  struct PooledConn {
    std::mutex mutex;
    TcpConn conn;
  };

  void AcceptLoop();
  void ReaderLoop(TcpConn conn);
  void Deliver(WireFrame frame);
  void FailStream(Status error);
  /// Marks every sender in `senders` (party -> sessions seen on the
  /// dead connection) as down with `error`; waiters fail immediately.
  void MarkPeersDown(const std::map<std::string, std::set<uint32_t>>& senders,
                     const Status& error);
  std::shared_ptr<PooledConn> PoolSlot(const std::string& pair);
  Status ConnectWithRetry(PooledConn* pc, const Endpoint& ep,
                          const DeadlineBudget& budget,
                          const RetryPolicy& policy);
  Status SendFrameImpl(const std::string& pair, const Endpoint& ep,
                       const Bytes& frame, int timeout_ms);

  TcpListener listener_;
  std::atomic<obs::Scope*> obs_{nullptr};
  std::atomic<obs::EventLog*> event_log_{nullptr};
  std::atomic<bool> stop_{false};
  std::thread accept_thread_;

  std::mutex readers_mutex_;
  std::vector<std::thread> readers_;

  mutable std::mutex pool_mutex_;
  std::map<std::string, std::shared_ptr<PooledConn>> pool_;  // by pair key
  RetryPolicy retry_;  // guarded by pool_mutex_

  // (session, to, from) -> FIFO of inbound messages, plus the control
  // queue, per-session abort marks, per-party down marks, and a sticky
  // host-wide stream error (listener death, unattributable corruption).
  struct QueueKey {
    uint32_t session;
    std::string to;
    std::string from;
    bool operator<(const QueueKey& o) const {
      if (session != o.session) return session < o.session;
      if (to != o.to) return to < o.to;
      return from < o.from;
    }
  };
  mutable std::mutex mutex_;
  std::condition_variable cv_;
  std::map<QueueKey, std::deque<Message>> inbox_;
  std::deque<Message> ctl_queue_;
  std::map<uint32_t, Status> session_aborts_;
  /// Parties whose carrying connection died, keyed by sender party.
  /// `ctl_notified` makes the WaitCtl peer-down message one-shot; the
  /// mark itself stays until a fresh frame from the party clears it.
  struct PeerDown {
    Status status;
    bool ctl_notified = false;
  };
  std::map<std::string, PeerDown> peer_down_;
  Status stream_error_ = Status::OK();
};

/// Framed-TCP implementation of `Transport` for one deployment process
/// and one session.
///
/// Deployment model (replicated execution): every process runs the same
/// deterministic protocol driver over the same seeded testbed, but each
/// process *hosts* only its own parties. The transport keeps the full
/// local simulation as the shadow of the run — identical transcript,
/// statistics and `ViewOf` as the in-process `NetworkBus` — while the
/// messages of hosted parties really cross sockets:
///
///  - Send whose `from` is hosted here and whose `to` is hosted by a
///    peer: the message is framed (net/wire.h) and written to the pooled
///    connection for that party pair, in addition to the local shadow
///    delivery.
///  - Receive for a party hosted here of a message sent by a remote
///    party: blocks until the real frame arrives, then verifies it is
///    byte-identical to the shadow message. Any divergence — tampering,
///    version skew, nondeterminism — fails the run with kProtocolError.
///  - All other traffic (both endpoints remote, or both local) stays in
///    the shadow.
///
/// So the result relation is computed from locally-received real bytes
/// in exactly the sense the acceptance criterion demands: a protocol run
/// only completes if every cross-process message arrived over TCP with
/// the exact bytes of the reference execution.
///
/// Failure semantics: Send and Receive each run under a per-operation
/// DeadlineBudget of `options.timeout_ms`. Transient failures
/// (kUnavailable — peer restarting, forced disconnect) are retried per
/// `options.retry`; terminal failures latch into the sticky status. On
/// an unrecoverable failure the session runner calls `Abort`, which
/// broadcasts an abort frame to every peer process so their blocked
/// Receives return kAborted within their own budgets instead of hanging.
///
/// Not thread-safe (like NetworkBus): one driver thread per session.
/// Several TcpTransports over one PeerHost run concurrently.
class TcpTransport : public Transport {
 public:
  struct Options {
    /// Parties hosted by this process. Parties in neither this set nor
    /// `directory` are treated as local simulation-only endpoints.
    std::set<std::string> local_parties;
    /// Where the parties hosted by peer processes listen.
    std::map<std::string, Endpoint> directory;
    /// Session id stamped on every frame of this transport.
    uint32_t session = 1;
    /// Per-operation deadline budget for sends and frame waits.
    int timeout_ms = 30000;
    /// Retry policy for transient send/receive failures.
    RetryPolicy retry{};
    /// Optional fault injector consulted for every outbound wire frame
    /// (not owned; shared across the deployment's transports). Null —
    /// the default — disables fault injection entirely.
    FaultInjector* faults = nullptr;
  };

  TcpTransport(PeerHost* host, Options options)
      : host_(host), options_(std::move(options)) {}

  using Transport::Send;
  Status Send(Message msg) override;
  Result<Message> Receive(const std::string& party) override;
  Result<Message> ReceiveOfType(const std::string& party,
                                const std::string& type) override;
  size_t PendingFor(const std::string& party) const override {
    return shadow_.PendingFor(party);
  }
  const std::vector<Message>& transcript() const override {
    return shadow_.transcript();
  }
  PartyStats StatsOf(const std::string& party) const override {
    return shadow_.StatsOf(party);
  }
  size_t TotalBytes() const override { return shadow_.TotalBytes(); }
  Bytes ViewOf(const std::string& party) const override {
    return shadow_.ViewOf(party);
  }
  void Reset() override;
  void SetTamperHook(std::function<void(Message*)> hook) override {
    tamper_hook_ = std::move(hook);
  }

  /// Aborts this transport's session deployment-wide: broadcasts an
  /// abort frame (carrying `reason`) to every peer process, marks the
  /// session aborted on the local host, and latches the sticky status
  /// to kAborted. Idempotent. Best-effort on the wire — a peer that
  /// cannot be reached was either already down or will hit its own
  /// deadline budget.
  void Abort(const Status& reason) override;

  /// Feeds the scope to the local shadow bus *and* the shared PeerHost,
  /// so one attach captures both message-level and wire-level metrics.
  void SetObsScope(obs::Scope* scope) override {
    obs_scope_ = scope;
    shadow_.SetObsScope(scope);
    host_->SetObsScope(scope);
  }

  /// Fault injection below the message layer: mutates the *encoded
  /// frame* (truncate, inflate, flip header bytes) before it is written
  /// to the socket. The receiving process surfaces the corruption as
  /// kProtocolError — exercised by robustness_test. For scheduled,
  /// deterministic fault campaigns use Options::faults instead.
  void SetFrameTamperHook(std::function<void(Bytes*)> hook) {
    frame_tamper_hook_ = std::move(hook);
  }

  uint32_t session() const { return options_.session; }

 private:
  bool IsHostedHere(const std::string& party) const {
    return options_.local_parties.count(party) > 0;
  }
  bool IsRemote(const std::string& party) const {
    return !IsHostedHere(party) && options_.directory.count(party) > 0;
  }
  /// A short label of this process's hosted parties for abort frames.
  std::string LocalLabel() const;
  /// The retrying wait for the wire twin of a shadow-received message:
  /// one DeadlineBudget of options_.timeout_ms bounds the whole wait,
  /// transient (kUnavailable) failures back off and retry per
  /// options_.retry.
  Result<Message> WaitWireFrame(const std::string& to,
                                const std::string& from);

  PeerHost* host_;
  Options options_;
  NetworkBus shadow_;
  Status sticky_ = Status::OK();
  bool abort_sent_ = false;
  obs::Scope* obs_scope_ = nullptr;
  std::function<void(Message*)> tamper_hook_;
  std::function<void(Bytes*)> frame_tamper_hook_;
};

}  // namespace secmed

#endif  // SECMED_NET_TCP_TRANSPORT_H_
