#ifndef SECMED_NET_TRANSPORT_H_
#define SECMED_NET_TRANSPORT_H_

#include <functional>
#include <string>
#include <vector>

#include "net/message.h"
#include "obs/scope.h"
#include "util/result.h"

namespace secmed {

/// Abstract transport connecting the parties of the mediation system.
///
/// Two implementations share this contract: the in-process `NetworkBus`
/// (net/bus.h — FIFO queues, zero copies over the loopback of one
/// address space) and the framed-socket `TcpTransport` (net/tcp_transport.h
/// — real TCP connections between party daemons). Every protocol in
/// src/core/ is written against this interface only, so a run is moved
/// from a single process onto a wire by swapping the pointer in
/// `ProtocolContext`.
///
/// The contract deliberately includes the observability surface — full
/// transcript, per-party statistics and `ViewOf` — because the leakage
/// analyzer (core/leakage.h) and the Table-1 benchmarks are defined over
/// *whatever transport the run used*.
class Transport {
 public:
  virtual ~Transport() = default;

  /// Delivers a message and records it in the transcript. A real
  /// transport surfaces connection failures here; the same error is also
  /// latched and re-reported by the next Receive, so callers that ignore
  /// the Status (all in-process protocol code does) still terminate.
  virtual Status Send(Message msg) = 0;

  /// Convenience overload.
  Status Send(const std::string& from, const std::string& to,
              const std::string& type, Bytes payload) {
    return Send(Message{from, to, type, std::move(payload)});
  }

  /// Pops the next message addressed to `party` (FIFO).
  /// kNotFound when the inbox is empty.
  virtual Result<Message> Receive(const std::string& party) = 0;

  /// Pops the next message for `party` and returns it when its type
  /// matches. kNotFound when the inbox is empty; kProtocolError when the
  /// next message has a different type — the mismatched message is
  /// *dequeued* in that case, so a caller retrying in a loop makes
  /// progress instead of spinning on the same message forever.
  virtual Result<Message> ReceiveOfType(const std::string& party,
                                        const std::string& type) = 0;

  /// Number of queued messages for the party.
  virtual size_t PendingFor(const std::string& party) const = 0;

  /// Full ordered transcript of all messages.
  virtual const std::vector<Message>& transcript() const = 0;

  /// Statistics for one party (zeroes if it never communicated).
  virtual PartyStats StatsOf(const std::string& party) const = 0;

  /// Total bytes across all messages.
  virtual size_t TotalBytes() const = 0;

  /// Concatenated payload bytes of every message the party received —
  /// its complete protocol view, fed to the leakage analyzer.
  virtual Bytes ViewOf(const std::string& party) const = 0;

  /// Clears transcript, queues and statistics.
  virtual void Reset() = 0;

  /// Installs a fault-injection hook invoked on every Send *before*
  /// delivery; it may mutate the message (corrupt bytes, rewrite headers).
  /// Used by the robustness tests to model an unreliable or actively
  /// interfering network. Pass nullptr to remove.
  virtual void SetTamperHook(std::function<void(Message*)> hook) = 0;

  /// Declares the current session unrecoverably failed for `reason`.
  /// A deployment transport broadcasts the abort to every peer process
  /// so their blocked Receives return kAborted promptly instead of
  /// waiting out their full deadlines; the in-process bus has no peers
  /// and ignores it. Idempotent. The session runner calls this on any
  /// terminal protocol failure (core/remote.cc).
  virtual void Abort(const Status& reason) { (void)reason; }

  /// Attaches an observability scope: the transport then feeds live
  /// counters and latency histograms (frame timings, queue depths,
  /// reconnects) into it. Null detaches. The scope must outlive the
  /// transport or the next SetObsScope call. Default: ignored.
  virtual void SetObsScope(obs::Scope* scope) { (void)scope; }
};

}  // namespace secmed

#endif  // SECMED_NET_TRANSPORT_H_
