#include "net/retry.h"

#include <algorithm>
#include <cmath>
#include <limits>
#include <thread>

namespace secmed {

namespace {

/// SplitMix64 — the jitter must be deterministic per (seed, attempt) and
/// independent of every other RNG stream in the process (protocol
/// transcripts are bit-identical with retries on or off).
uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

}  // namespace

int RetryPolicy::BackoffMs(int attempt) const {
  if (attempt <= 0) return 0;
  double base = initial_backoff_ms * std::pow(multiplier, attempt - 1);
  int capped = static_cast<int>(std::min<double>(base, max_backoff_ms));
  if (capped <= 0) return 0;
  const int jitter_span = capped / 2;
  if (jitter_span == 0) return capped;
  const uint64_t draw =
      Mix64(jitter_seed ^ (0xa0b0c0d0ULL + static_cast<uint64_t>(attempt)));
  return capped + static_cast<int>(draw % static_cast<uint64_t>(jitter_span));
}

int DeadlineBudget::RemainingMs() const {
  if (unbounded()) return std::numeric_limits<int>::max() / 2;
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start_);
  const long long left = total_ms_ - elapsed.count();
  if (left <= 0) return 0;
  return static_cast<int>(std::min<long long>(left, total_ms_));
}

int DeadlineBudget::ElapsedMs() const {
  const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
      std::chrono::steady_clock::now() - start_);
  return static_cast<int>(
      std::min<long long>(elapsed.count(), std::numeric_limits<int>::max()));
}

int DeadlineBudget::SliceMs(int want_ms) const {
  if (unbounded()) return want_ms;
  return std::min(want_ms, RemainingMs());
}

void SleepForMs(int ms) {
  if (ms > 0) std::this_thread::sleep_for(std::chrono::milliseconds(ms));
}

Status ExhaustedBudget(Status last, const std::string& op,
                       const DeadlineBudget& budget, int attempts) {
  return Status(last.code(),
                last.message() + " (op '" + op + "' gave up after " +
                    std::to_string(attempts) + " attempt(s), " +
                    std::to_string(budget.ElapsedMs()) + " of " +
                    std::to_string(budget.total_ms()) + " ms budget)");
}

}  // namespace secmed
