#include "net/wire.h"

#include <cstring>

#include "util/serialize.h"

namespace secmed {

namespace {

uint16_t LoadU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0]) | static_cast<uint16_t>(p[1]) << 8;
}

uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

/// Validates the 12-byte header at `p` and returns the body length.
Result<uint32_t> CheckHeader(const uint8_t* p, uint32_t* session) {
  if (LoadU16(p) != kWireMagic) {
    return Status::ProtocolError("bad frame magic");
  }
  if (p[2] != kWireVersion) {
    return Status::ProtocolError("unsupported wire version " +
                                 std::to_string(p[2]) + " (speak version " +
                                 std::to_string(kWireVersion) + ")");
  }
  if (p[3] != 0) {
    return Status::ProtocolError("reserved frame flags set");
  }
  *session = LoadU32(p + 4);
  uint32_t body_len = LoadU32(p + 8);
  // Reject before allocating anything: an attacker-controlled length
  // prefix must not size a buffer.
  if (body_len > kMaxFrameBody) {
    return Status::ProtocolError("frame body of " + std::to_string(body_len) +
                                 " bytes exceeds the " +
                                 std::to_string(kMaxFrameBody) + " byte bound");
  }
  return body_len;
}

Result<Message> DecodeBody(const Bytes& body) {
  BinaryReader r(body);
  Message msg;
  SECMED_ASSIGN_OR_RETURN(msg.from, r.ReadString());
  SECMED_ASSIGN_OR_RETURN(msg.to, r.ReadString());
  SECMED_ASSIGN_OR_RETURN(msg.type, r.ReadString());
  SECMED_ASSIGN_OR_RETURN(msg.payload, r.ReadBytes());
  if (!r.AtEnd()) {
    return Status::ProtocolError("trailing bytes after frame body fields");
  }
  return msg;
}

/// Body decode failures are truncations/overruns of the inner length
/// prefixes; report them uniformly as protocol errors so transports can
/// treat every frame-level corruption alike.
Result<WireFrame> MakeFrame(uint32_t session, const Bytes& body) {
  Result<Message> msg = DecodeBody(body);
  if (!msg.ok()) {
    return Status::ProtocolError("corrupt frame body: " +
                                 msg.status().message());
  }
  return WireFrame{session, std::move(msg).value()};
}

}  // namespace

Bytes EncodeFrame(uint32_t session, const Message& msg) {
  BinaryWriter body;
  body.WriteString(msg.from);
  body.WriteString(msg.to);
  body.WriteString(msg.type);
  body.WriteBytes(msg.payload);

  BinaryWriter w;
  w.WriteU16(kWireMagic);
  w.WriteU8(kWireVersion);
  w.WriteU8(0);  // flags
  w.WriteU32(session);
  w.WriteU32(static_cast<uint32_t>(body.size()));
  w.WriteRaw(body.buffer());
  return w.TakeBuffer();
}

Result<WireFrame> DecodeFrame(const Bytes& buffer) {
  if (buffer.size() < kFrameHeaderSize) {
    return Status::ProtocolError("truncated frame header (" +
                                 std::to_string(buffer.size()) + " bytes)");
  }
  uint32_t session = 0;
  SECMED_ASSIGN_OR_RETURN(uint32_t body_len,
                          CheckHeader(buffer.data(), &session));
  if (buffer.size() != kFrameHeaderSize + body_len) {
    return Status::ProtocolError(
        "frame length mismatch: header says " + std::to_string(body_len) +
        " body bytes, buffer has " +
        std::to_string(buffer.size() - kFrameHeaderSize));
  }
  Bytes body(buffer.begin() + kFrameHeaderSize, buffer.end());
  return MakeFrame(session, body);
}

void FrameDecoder::Feed(const uint8_t* data, size_t n) {
  // Compact the decoded prefix before growing the buffer.
  if (consumed_ > 0) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + consumed_);
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + n);
}

Result<std::optional<WireFrame>> FrameDecoder::Next() {
  if (!error_.ok()) return error_;
  const size_t avail = buffer_.size() - consumed_;
  if (avail < kFrameHeaderSize) return std::optional<WireFrame>();
  const uint8_t* p = buffer_.data() + consumed_;
  uint32_t session = 0;
  Result<uint32_t> body_len = CheckHeader(p, &session);
  if (!body_len.ok()) {
    error_ = body_len.status();
    return error_;
  }
  if (avail < kFrameHeaderSize + *body_len) return std::optional<WireFrame>();
  Bytes body(p + kFrameHeaderSize, p + kFrameHeaderSize + *body_len);
  Result<WireFrame> frame = MakeFrame(session, body);
  if (!frame.ok()) {
    error_ = frame.status();
    return error_;
  }
  consumed_ += kFrameHeaderSize + *body_len;
  return std::optional<WireFrame>(std::move(frame).value());
}

}  // namespace secmed
