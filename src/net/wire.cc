#include "net/wire.h"

#include <cstring>

#include "util/serialize.h"

namespace secmed {

namespace {

uint16_t LoadU16(const uint8_t* p) {
  return static_cast<uint16_t>(p[0]) | static_cast<uint16_t>(p[1]) << 8;
}

uint32_t LoadU32(const uint8_t* p) {
  return static_cast<uint32_t>(p[0]) | static_cast<uint32_t>(p[1]) << 8 |
         static_cast<uint32_t>(p[2]) << 16 | static_cast<uint32_t>(p[3]) << 24;
}

uint64_t LoadU64(const uint8_t* p) {
  return static_cast<uint64_t>(LoadU32(p)) |
         static_cast<uint64_t>(LoadU32(p + 4)) << 32;
}

struct Header {
  uint32_t session = 0;
  uint32_t body_len = 0;
  /// Bytes between the fixed header and the body (the trace extension
  /// when the flag is set).
  size_t ext_len = 0;
};

/// Validates the 12-byte header at `p` and returns its parsed fields.
Result<Header> CheckHeader(const uint8_t* p) {
  if (LoadU16(p) != kWireMagic) {
    return Status::ProtocolError("bad frame magic");
  }
  const uint8_t version = p[2];
  const uint8_t flags = p[3];
  if (version != kWireVersion && version != kWireVersionV1) {
    return Status::ProtocolError("unsupported wire version " +
                                 std::to_string(version) + " (speak version " +
                                 std::to_string(kWireVersion) + ")");
  }
  // v1 predates flag bits entirely; v2 defines only the trace bit.
  const uint8_t known = version == kWireVersionV1 ? 0 : kFrameFlagTrace;
  if ((flags & ~known) != 0) {
    return Status::ProtocolError("reserved frame flags set");
  }
  Header h;
  h.session = LoadU32(p + 4);
  h.body_len = LoadU32(p + 8);
  h.ext_len = (flags & kFrameFlagTrace) != 0 ? kFrameTraceExtSize : 0;
  // Reject before allocating anything: an attacker-controlled length
  // prefix must not size a buffer.
  if (h.body_len > kMaxFrameBody) {
    return Status::ProtocolError(
        "frame body of " + std::to_string(h.body_len) + " bytes exceeds the " +
        std::to_string(kMaxFrameBody) + " byte bound");
  }
  return h;
}

obs::TraceContext DecodeTraceExt(const uint8_t* p) {
  obs::TraceContext trace;
  std::memcpy(trace.trace_id.data(), p, obs::TraceContext::kTraceIdSize);
  trace.parent_span = LoadU64(p + obs::TraceContext::kTraceIdSize);
  return trace;
}

Result<Message> DecodeBody(const Bytes& body) {
  BinaryReader r(body);
  Message msg;
  SECMED_ASSIGN_OR_RETURN(msg.from, r.ReadString());
  SECMED_ASSIGN_OR_RETURN(msg.to, r.ReadString());
  SECMED_ASSIGN_OR_RETURN(msg.type, r.ReadString());
  SECMED_ASSIGN_OR_RETURN(msg.payload, r.ReadBytes());
  if (!r.AtEnd()) {
    return Status::ProtocolError("trailing bytes after frame body fields");
  }
  return msg;
}

/// Body decode failures are truncations/overruns of the inner length
/// prefixes; report them uniformly as protocol errors so transports can
/// treat every frame-level corruption alike.
Result<WireFrame> MakeFrame(const Header& header, const uint8_t* frame_start,
                            const Bytes& body) {
  Result<Message> msg = DecodeBody(body);
  if (!msg.ok()) {
    return Status::ProtocolError("corrupt frame body: " +
                                 msg.status().message());
  }
  WireFrame frame;
  frame.session = header.session;
  frame.message = std::move(msg).value();
  if (header.ext_len == kFrameTraceExtSize) {
    frame.trace = DecodeTraceExt(frame_start + kFrameHeaderSize);
  }
  frame.wire_size = kFrameHeaderSize + header.ext_len + header.body_len;
  return frame;
}

}  // namespace

Bytes EncodeFrame(uint32_t session, const Message& msg,
                  const obs::TraceContext& trace) {
  BinaryWriter body;
  body.WriteString(msg.from);
  body.WriteString(msg.to);
  body.WriteString(msg.type);
  body.WriteBytes(msg.payload);

  const bool traced = trace.valid();
  BinaryWriter w;
  w.WriteU16(kWireMagic);
  w.WriteU8(kWireVersion);
  w.WriteU8(traced ? kFrameFlagTrace : 0);
  w.WriteU32(session);
  w.WriteU32(static_cast<uint32_t>(body.size()));
  if (traced) {
    for (uint8_t b : trace.trace_id) w.WriteU8(b);
    w.WriteU32(static_cast<uint32_t>(trace.parent_span));
    w.WriteU32(static_cast<uint32_t>(trace.parent_span >> 32));
  }
  w.WriteRaw(body.buffer());
  return w.TakeBuffer();
}

Bytes EncodeFrame(uint32_t session, const Message& msg) {
  return EncodeFrame(session, msg, obs::TraceContext{});
}

Result<WireFrame> DecodeFrame(const Bytes& buffer) {
  if (buffer.size() < kFrameHeaderSize) {
    return Status::ProtocolError("truncated frame header (" +
                                 std::to_string(buffer.size()) + " bytes)");
  }
  SECMED_ASSIGN_OR_RETURN(Header header, CheckHeader(buffer.data()));
  const size_t framed = kFrameHeaderSize + header.ext_len + header.body_len;
  if (buffer.size() != framed) {
    return Status::ProtocolError(
        "frame length mismatch: header says " +
        std::to_string(header.ext_len + header.body_len) +
        " bytes after the header, buffer has " +
        std::to_string(buffer.size() - kFrameHeaderSize));
  }
  Bytes body(buffer.begin() + kFrameHeaderSize + header.ext_len, buffer.end());
  return MakeFrame(header, buffer.data(), body);
}

void FrameDecoder::Feed(const uint8_t* data, size_t n) {
  // Compact the decoded prefix before growing the buffer.
  if (consumed_ > 0) {
    buffer_.erase(buffer_.begin(), buffer_.begin() + consumed_);
    consumed_ = 0;
  }
  buffer_.insert(buffer_.end(), data, data + n);
}

Result<std::optional<WireFrame>> FrameDecoder::Next() {
  if (!error_.ok()) return error_;
  const size_t avail = buffer_.size() - consumed_;
  if (avail < kFrameHeaderSize) return std::optional<WireFrame>();
  const uint8_t* p = buffer_.data() + consumed_;
  Result<Header> header = CheckHeader(p);
  if (!header.ok()) {
    error_ = header.status();
    return error_;
  }
  const size_t framed =
      kFrameHeaderSize + header->ext_len + header->body_len;
  if (avail < framed) return std::optional<WireFrame>();
  Bytes body(p + kFrameHeaderSize + header->ext_len, p + framed);
  Result<WireFrame> frame = MakeFrame(*header, p, body);
  if (!frame.ok()) {
    error_ = frame.status();
    return error_;
  }
  consumed_ += framed;
  return std::optional<WireFrame>(std::move(frame).value());
}

}  // namespace secmed
