#ifndef SECMED_NET_RETRY_H_
#define SECMED_NET_RETRY_H_

#include <chrono>
#include <cstdint>
#include <string>

#include "util/status.h"

namespace secmed {

/// Bounded exponential backoff with deterministic jitter.
///
/// The mediation deployment retries exactly two classes of failure:
/// kUnavailable (a peer connection reset, refused, or reported dead —
/// the frame provably never reached the peer's application layer, so a
/// resend cannot duplicate protocol state) and, on the receive side,
/// waiting out a transient peer disconnect. Everything else —
/// kProtocolError, kAborted, kDeadlineExceeded — is terminal for the
/// session.
///
/// Jitter is a pure function of (seed, attempt): two processes given the
/// same seed replay identical backoff sequences, which keeps the fault
/// matrix tests (tests/fault_injection_test.cc) reproducible down to the
/// sleep schedule.
struct RetryPolicy {
  /// Total tries per operation, the first one included. 1 = no retries.
  int max_attempts = 4;
  /// Backoff before retry k (k >= 1) is
  ///   min(initial_backoff_ms * multiplier^(k-1), max_backoff_ms)
  /// plus jitter in [0, backoff/2].
  int initial_backoff_ms = 20;
  double multiplier = 2.0;
  int max_backoff_ms = 2000;
  /// Seed of the deterministic jitter stream.
  uint64_t jitter_seed = 0;

  /// True for the status codes a retry may fix (see class comment).
  static bool IsRetryable(const Status& st) {
    return st.code() == StatusCode::kUnavailable;
  }

  /// Backoff (including jitter) before attempt `attempt` (1-based count
  /// of *failed* attempts so far; attempt 0 returns 0).
  int BackoffMs(int attempt) const;
};

/// A total wall-clock budget for one operation, measured against
/// steady_clock from construction. Every blocking sub-step of the
/// operation — connect, poll, send, frame wait, backoff sleep — draws
/// its per-call timeout from `RemainingMs()`, so the operation as a
/// whole can never exceed the budget no matter how many times its inner
/// loops re-arm (the bug class fixed in TcpConn::SendAll/RecvSome, where
/// a peer draining one byte per poll extended a "deadline" forever).
class DeadlineBudget {
 public:
  /// `total_ms` <= 0 means unbounded (Remaining() reports a large
  /// sentinel and Expired() is always false).
  explicit DeadlineBudget(int total_ms)
      : total_ms_(total_ms), start_(std::chrono::steady_clock::now()) {}

  bool unbounded() const { return total_ms_ <= 0; }

  /// Milliseconds left, clamped to >= 0.
  int RemainingMs() const;

  bool Expired() const { return !unbounded() && RemainingMs() <= 0; }

  /// Milliseconds elapsed since construction.
  int ElapsedMs() const;

  /// min(want_ms, RemainingMs()) — the timeout to hand a blocking
  /// sub-step that would otherwise wait `want_ms`.
  int SliceMs(int want_ms) const;

  int total_ms() const { return total_ms_; }

 private:
  int total_ms_;
  std::chrono::steady_clock::time_point start_;
};

/// Sleeps for `ms` (no-op for ms <= 0). Thin wrapper so retry loops
/// don't pull <thread> into every header.
void SleepForMs(int ms);

/// Decorates a terminal status with the operation's budget accounting,
/// e.g. "... (op 'wait frame' exhausted 2000 ms budget after 3
/// attempts)". Keeps the original code.
Status ExhaustedBudget(Status last, const std::string& op,
                       const DeadlineBudget& budget, int attempts);

}  // namespace secmed

#endif  // SECMED_NET_RETRY_H_
