#include "net/fault.h"

#include <cstdlib>

#include "net/message.h"

namespace secmed {

namespace {

uint64_t Mix64(uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr FaultKind kAllKinds[] = {
    FaultKind::kDrop,     FaultKind::kDelay,   FaultKind::kDuplicate,
    FaultKind::kTruncate, FaultKind::kBitFlip, FaultKind::kDisconnect,
};

}  // namespace

const char* FaultKindToString(FaultKind kind) {
  switch (kind) {
    case FaultKind::kDrop: return "drop";
    case FaultKind::kDelay: return "delay";
    case FaultKind::kDuplicate: return "duplicate";
    case FaultKind::kTruncate: return "truncate";
    case FaultKind::kBitFlip: return "bitflip";
    case FaultKind::kDisconnect: return "disconnect";
  }
  return "unknown";
}

Result<FaultKind> FaultKindFromString(const std::string& s) {
  for (FaultKind kind : kAllKinds) {
    if (s == FaultKindToString(kind)) return kind;
  }
  return Status::InvalidArgument("unknown fault kind '" + s + "'");
}

Result<FaultSpec> FaultSpec::Parse(const std::string& s) {
  FaultSpec spec;
  std::string head = s;
  std::string opts;
  if (size_t colon = s.find(':'); colon != std::string::npos) {
    head = s.substr(0, colon);
    opts = s.substr(colon + 1);
  }
  // head: kind[@index][xN]
  std::string kind = head;
  if (size_t at = head.find('@'); at != std::string::npos) {
    kind = head.substr(0, at);
    std::string idx = head.substr(at + 1);
    if (size_t x = idx.find('x'); x != std::string::npos) {
      spec.count = std::strtoull(idx.c_str() + x + 1, nullptr, 10);
      idx = idx.substr(0, x);
    }
    spec.frame_index = std::strtoull(idx.c_str(), nullptr, 10);
  }
  SECMED_ASSIGN_OR_RETURN(spec.kind, FaultKindFromString(kind));
  size_t start = 0;
  while (start < opts.size()) {
    size_t comma = opts.find(',', start);
    if (comma == std::string::npos) comma = opts.size();
    const std::string kv = opts.substr(start, comma - start);
    start = comma + 1;
    if (kv.empty()) continue;
    size_t eq = kv.find('=');
    if (eq == std::string::npos) {
      return Status::InvalidArgument("fault option '" + kv +
                                     "' is not key=value");
    }
    const std::string key = kv.substr(0, eq);
    const std::string value = kv.substr(eq + 1);
    if (key == "from") {
      spec.from = value;
    } else if (key == "to") {
      spec.to = value;
    } else if (key == "session") {
      spec.session = static_cast<uint32_t>(std::strtoul(value.c_str(),
                                                        nullptr, 10));
    } else if (key == "ms") {
      spec.delay_ms = static_cast<int>(std::strtol(value.c_str(), nullptr,
                                                   10));
    } else {
      return Status::InvalidArgument("unknown fault option '" + key + "'");
    }
  }
  if (spec.kind == FaultKind::kDelay && spec.delay_ms <= 0) {
    return Status::InvalidArgument("delay fault needs ms=N > 0");
  }
  return spec;
}

std::string FaultSpec::ToString() const {
  std::string out = FaultKindToString(kind);
  out += "@" + std::to_string(frame_index);
  if (count != 1) out += "x" + std::to_string(count);
  std::string opts;
  auto add = [&](const std::string& kv) {
    opts += (opts.empty() ? ":" : ",") + kv;
  };
  if (session != 0) add("session=" + std::to_string(session));
  if (!from.empty()) add("from=" + from);
  if (!to.empty()) add("to=" + to);
  if (delay_ms != 0) add("ms=" + std::to_string(delay_ms));
  return out + opts;
}

FaultInjector FaultInjector::Seeded(uint64_t seed, size_t n,
                                    uint64_t frame_span) {
  std::vector<FaultSpec> schedule;
  schedule.reserve(n);
  uint64_t state = seed;
  for (size_t i = 0; i < n; ++i) {
    FaultSpec spec;
    const uint64_t k = Mix64(state ^ (i * 3 + 1));
    spec.kind = kAllKinds[k % (sizeof(kAllKinds) / sizeof(kAllKinds[0]))];
    spec.frame_index =
        frame_span == 0 ? 0 : Mix64(state ^ (i * 3 + 2)) % frame_span;
    if (spec.kind == FaultKind::kDelay) {
      spec.delay_ms = 1 + static_cast<int>(Mix64(state ^ (i * 3 + 3)) % 50);
    }
    schedule.push_back(spec);
  }
  return FaultInjector(std::move(schedule));
}

FaultInjector::Action FaultInjector::Apply(uint32_t session,
                                           const std::string& from,
                                           const std::string& to, Bytes* frame,
                                           obs::Scope* scope) {
  Action action;
  if (schedule_.empty()) return action;
  std::lock_guard<std::mutex> lock(mutex_);
  for (size_t i = 0; i < schedule_.size(); ++i) {
    const FaultSpec& spec = schedule_[i];
    if (spec.session != 0 && spec.session != session) continue;
    if (!spec.from.empty() && spec.from != from) continue;
    if (!spec.to.empty() && spec.to != to) continue;
    const uint64_t seen = matched_[i]++;
    if (seen < spec.frame_index) continue;
    if (spec.count != 0 && seen >= spec.frame_index + spec.count) continue;
    ++fired_[i];
    switch (spec.kind) {
      case FaultKind::kDrop:
        action.drop = true;
        break;
      case FaultKind::kDelay:
        action.delay_ms += spec.delay_ms;
        break;
      case FaultKind::kDuplicate:
        action.duplicate = true;
        break;
      case FaultKind::kTruncate:
        if (frame->size() > 4) frame->resize(frame->size() - 4);
        break;
      case FaultKind::kBitFlip:
        if (!frame->empty()) {
          // Flip in the body, past the header — a header flip is the
          // (also covered) desync case, a body flip the silent one.
          (*frame)[frame->size() - 1 - frame->size() % 7] ^= 0x04;
        }
        break;
      case FaultKind::kDisconnect:
        action.disconnect = true;
        break;
    }
    if (scope != nullptr) {
      scope->metrics().Add("net.faults_injected", 1);
      scope->metrics().Add(
          std::string("net.fault_") + FaultKindToString(spec.kind), 1);
      const uint64_t now = scope->tracer().NowNanos();
      scope->tracer().Record(
          std::string("fault/") + FaultKindToString(spec.kind) + "/" + from +
              ">" + to,
          now, now, seen);
    }
  }
  return action;
}

uint64_t FaultInjector::fired() const {
  std::lock_guard<std::mutex> lock(mutex_);
  uint64_t total = 0;
  for (uint64_t f : fired_) total += f;
  return total;
}

}  // namespace secmed
