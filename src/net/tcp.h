#ifndef SECMED_NET_TCP_H_
#define SECMED_NET_TCP_H_

#include <cstdint>
#include <string>

#include "util/bytes.h"
#include "util/result.h"

namespace secmed {

/// A TCP address. `host` is an IPv4 dotted quad or "localhost".
struct Endpoint {
  std::string host = "127.0.0.1";
  uint16_t port = 0;

  std::string ToString() const { return host + ":" + std::to_string(port); }
  bool operator==(const Endpoint& o) const {
    return host == o.host && port == o.port;
  }
  bool operator<(const Endpoint& o) const {
    return host != o.host ? host < o.host : port < o.port;
  }
};

/// Parses "host:port". kInvalidArgument on malformed input.
Result<Endpoint> ParseEndpoint(const std::string& s);

/// One established blocking TCP connection. Movable, not copyable; the
/// destructor closes the socket. All deadline expirations surface as
/// kDeadlineExceeded, connection failures and peer resets as kUnavailable
/// (transient — callers may reconnect), everything else as kInternal.
class TcpConn {
 public:
  TcpConn() = default;
  explicit TcpConn(int fd) : fd_(fd) {}
  ~TcpConn();
  TcpConn(TcpConn&& o) noexcept : fd_(o.fd_) { o.fd_ = -1; }
  TcpConn& operator=(TcpConn&& o) noexcept;
  TcpConn(const TcpConn&) = delete;
  TcpConn& operator=(const TcpConn&) = delete;

  /// Connects to `ep` within `timeout_ms` (0 = OS default).
  static Result<TcpConn> Connect(const Endpoint& ep, int timeout_ms);

  bool valid() const { return fd_ >= 0; }
  int fd() const { return fd_; }

  /// Writes all of `data` within a *total* budget of `timeout_ms`
  /// (measured against steady_clock; <= 0 = unbounded). A slow-draining
  /// peer cannot extend the deadline: every internal poll gets only the
  /// remaining slice of the budget.
  Status SendAll(const Bytes& data, int timeout_ms);

  /// Reads up to `max` bytes into `out` (appended), within a total
  /// budget of `timeout_ms` (same semantics as SendAll). Returns the
  /// number of bytes read; 0 = clean EOF.
  Result<size_t> RecvSome(Bytes* out, size_t max, int timeout_ms);

  /// Closes the socket early (also unblocks a reader in another thread
  /// via shutdown, which is why Stop paths use this instead of waiting
  /// for the destructor).
  void Close();

 private:
  int fd_ = -1;
};

/// A listening TCP socket bound to 127.0.0.1.
class TcpListener {
 public:
  TcpListener() = default;
  ~TcpListener();
  TcpListener(TcpListener&& o) noexcept : fd_(o.fd_), port_(o.port_) {
    o.fd_ = -1;
  }
  TcpListener& operator=(TcpListener&& o) noexcept {
    if (this != &o) {
      Close();
      fd_ = o.fd_;
      port_ = o.port_;
      o.fd_ = -1;
    }
    return *this;
  }
  TcpListener(const TcpListener&) = delete;
  TcpListener& operator=(const TcpListener&) = delete;

  /// Binds and listens on loopback `port` (0 = OS-assigned ephemeral
  /// port, readable from port() afterwards).
  static Result<TcpListener> Listen(uint16_t port);

  uint16_t port() const { return port_; }
  bool valid() const { return fd_ >= 0; }

  /// Accepts one connection, waiting up to `timeout_ms`.
  Result<TcpConn> Accept(int timeout_ms);

  /// Closes the listening socket; a blocked Accept returns kUnavailable.
  void Close();

 private:
  int fd_ = -1;
  uint16_t port_ = 0;
};

}  // namespace secmed

#endif  // SECMED_NET_TCP_H_
