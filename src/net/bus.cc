#include "net/bus.h"

namespace secmed {

double EstimateTransferMs(const std::vector<Message>& transcript,
                          const NetworkCostModel& model) {
  double total = 0;
  for (const Message& m : transcript) total += model.MessageMs(m.WireSize());
  return total;
}

Status NetworkBus::Send(Message msg) {
  if (tamper_hook_) tamper_hook_(&msg);
  size_t wire = msg.WireSize();
  PartyStats& sender = stats_[msg.from];
  sender.messages_sent++;
  sender.bytes_sent += wire;
  MessageTypeStats& sent_slice = sender.by_type[msg.type];
  sent_slice.messages_sent++;
  sent_slice.bytes_sent += wire;
  if (last_sender_ != msg.from) {
    sender.interactions++;
    last_sender_ = msg.from;
  }
  PartyStats& receiver = stats_[msg.to];
  receiver.messages_received++;
  receiver.bytes_received += wire;
  MessageTypeStats& recv_slice = receiver.by_type[msg.type];
  recv_slice.messages_received++;
  recv_slice.bytes_received += wire;

  if (obs_ != nullptr) {
    obs_->metrics().Add("bus.messages", 1);
    obs_->metrics().Add("bus.bytes", wire);
    obs_->metrics().RaiseMax("bus.queue_depth_max",
                             inboxes_[msg.to].size() + 1);
  }

  inboxes_[msg.to].push_back(msg);
  transcript_.push_back(std::move(msg));
  return Status::OK();
}

Result<Message> NetworkBus::Receive(const std::string& party) {
  auto it = inboxes_.find(party);
  if (it == inboxes_.end() || it->second.empty()) {
    return Status::NotFound("no pending message for " + party);
  }
  Message msg = std::move(it->second.front());
  it->second.pop_front();
  return msg;
}

Result<Message> NetworkBus::ReceiveOfType(const std::string& party,
                                          const std::string& type) {
  auto it = inboxes_.find(party);
  if (it == inboxes_.end() || it->second.empty()) {
    return Status::NotFound("no pending message for " + party);
  }
  if (it->second.front().type != type) {
    // Drop the mismatched message: leaving it queued would make every
    // retry fail on the same message (documented in the header).
    Message bad = std::move(it->second.front());
    it->second.pop_front();
    return Status::ProtocolError("expected message of type '" + type +
                                 "' for " + party + ", got '" + bad.type +
                                 "'");
  }
  return Receive(party);
}

size_t NetworkBus::PendingFor(const std::string& party) const {
  auto it = inboxes_.find(party);
  return it == inboxes_.end() ? 0 : it->second.size();
}

PartyStats NetworkBus::StatsOf(const std::string& party) const {
  auto it = stats_.find(party);
  return it == stats_.end() ? PartyStats{} : it->second;
}

size_t NetworkBus::TotalBytes() const {
  size_t total = 0;
  for (const Message& m : transcript_) total += m.WireSize();
  return total;
}

Bytes NetworkBus::ViewOf(const std::string& party) const {
  Bytes view;
  for (const Message& m : transcript_) {
    if (m.to == party) {
      view.insert(view.end(), m.payload.begin(), m.payload.end());
    }
  }
  return view;
}

void NetworkBus::Reset() {
  inboxes_.clear();
  transcript_.clear();
  stats_.clear();
  last_sender_.clear();
}

}  // namespace secmed
