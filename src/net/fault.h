#ifndef SECMED_NET_FAULT_H_
#define SECMED_NET_FAULT_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <vector>

#include "obs/scope.h"
#include "util/bytes.h"
#include "util/result.h"

namespace secmed {

/// What a scheduled fault does to one encoded frame on the send path.
///
/// All faults operate *below* the message layer, on the exact bytes the
/// socket would carry — the receiving process sees what a lossy,
/// corrupting, or crashing network would really hand it:
///
///  - kDrop:       the frame is never written (receiver waits it out).
///  - kDelay:      the frame is written `delay_ms` late.
///  - kDuplicate:  the frame is written twice back-to-back.
///  - kTruncate:   only a prefix of the frame is written (the stream
///                 desynchronizes or the receiver stalls mid-frame).
///  - kBitFlip:    one payload byte is XOR-flipped (wire-vs-shadow
///                 verification fails loudly at the receiver).
///  - kDisconnect: the pooled connection is force-closed *before* the
///                 frame is written; the frame provably never reached
///                 the peer, so the sender's retry layer may reconnect
///                 and resend it — the one fault retries fully recover.
enum class FaultKind : uint8_t {
  kDrop,
  kDelay,
  kDuplicate,
  kTruncate,
  kBitFlip,
  kDisconnect,
};

const char* FaultKindToString(FaultKind kind);
Result<FaultKind> FaultKindFromString(const std::string& s);

/// One scheduled fault: a kind plus the predicate selecting which frames
/// it fires on. Empty string / 0 fields are wildcards.
struct FaultSpec {
  FaultKind kind = FaultKind::kDrop;
  /// Session predicate (0 = any session, including control frames).
  uint32_t session = 0;
  /// Sender / receiver party predicates (empty = any).
  std::string from;
  std::string to;
  /// Fires on the nth matching frame (0-based) counted per spec over
  /// the frames the predicate fields match.
  uint64_t frame_index = 0;
  /// How many consecutive matching frames the fault hits from
  /// `frame_index` on (0 = every one from there).
  uint64_t count = 1;
  /// kDelay only: how long the frame is held back.
  int delay_ms = 0;

  /// "kind[@index][xN][:key=value,...]" — e.g.
  ///   "drop@3"                     drop the 4th matching frame
  ///   "bitflip@0:from=hospital"    flip the first frame hospital sends
  ///   "delay@2x5:ms=40,session=2"  delay 5 frames of session 2 by 40 ms
  /// Keys: from=P to=P session=N ms=N.
  static Result<FaultSpec> Parse(const std::string& s);

  std::string ToString() const;
};

/// Deterministic, seed-scheduled fault injector for the frame layer of
/// `TcpTransport` (the send path consults it for every outbound frame).
///
/// Determinism contract: whether a fault fires depends only on the
/// schedule and the sequence of matching frames — never on wall-clock
/// time or an unseeded RNG — so a failing matrix-test case replays
/// exactly from its seed. Thread-safe (sessions share one injector).
class FaultInjector {
 public:
  /// What the send path must do with the current frame.
  struct Action {
    bool drop = false;        // do not write the frame
    bool duplicate = false;   // write it twice
    bool disconnect = false;  // close the pooled connection first
    int delay_ms = 0;         // sleep before writing
    // kTruncate/kBitFlip mutate the frame bytes in place.
  };

  FaultInjector() = default;
  explicit FaultInjector(std::vector<FaultSpec> schedule)
      : schedule_(std::move(schedule)), fired_(schedule_.size(), 0),
        matched_(schedule_.size(), 0) {}

  /// A pseudo-random schedule derived entirely from `seed`: `n` faults
  /// with kinds, frame indexes (< `frame_span`) and delay parameters
  /// drawn from a SplitMix64 stream. Two runs from the same seed inject
  /// identical faults.
  static FaultInjector Seeded(uint64_t seed, size_t n, uint64_t frame_span);

  /// Consults the schedule for one outbound frame and applies byte
  /// mutations (truncate, bit-flip) to `frame` in place. Fired faults
  /// are counted into `scope` (counters `net.faults_injected`,
  /// `net.fault_<kind>`) and recorded as zero-length spans named
  /// `fault/<kind>/<from]>[to>`, so the run report shows exactly which
  /// faults fired. Cheap when nothing matches: one mutex + integer
  /// compares per spec.
  Action Apply(uint32_t session, const std::string& from,
               const std::string& to, Bytes* frame, obs::Scope* scope);

  /// Total faults fired so far.
  uint64_t fired() const;

  bool empty() const { return schedule_.empty(); }
  const std::vector<FaultSpec>& schedule() const { return schedule_; }

 private:
  std::vector<FaultSpec> schedule_;
  mutable std::mutex mutex_;
  std::vector<uint64_t> fired_;    // per spec
  std::vector<uint64_t> matched_;  // per spec: matching frames seen
};

}  // namespace secmed

#endif  // SECMED_NET_FAULT_H_
