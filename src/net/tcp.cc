#include "net/tcp.h"

#include "net/retry.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <poll.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

namespace secmed {

namespace {

Status Errno(const std::string& what) {
  const int err = errno;
  const std::string msg = what + ": " + std::strerror(err);
  switch (err) {
    case ECONNREFUSED:
    case ECONNRESET:
    case EPIPE:
    case ENETUNREACH:
    case EHOSTUNREACH:
    case ETIMEDOUT:
      return Status::Unavailable(msg);
    default:
      return Status::Internal(msg);
  }
}

/// Waits for `events` on `fd`. timeout_ms <= 0 waits indefinitely.
Status PollFor(int fd, short events, int timeout_ms, const char* what) {
  struct pollfd pfd{fd, events, 0};
  for (;;) {
    int rc = ::poll(&pfd, 1, timeout_ms <= 0 ? -1 : timeout_ms);
    if (rc > 0) return Status::OK();
    if (rc == 0) {
      return Status::DeadlineExceeded(std::string(what) + " timed out after " +
                                      std::to_string(timeout_ms) + " ms");
    }
    if (errno == EINTR) continue;
    return Errno(what);
  }
}

Result<struct sockaddr_in> ResolveV4(const Endpoint& ep) {
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(ep.port);
  const std::string host = ep.host == "localhost" ? "127.0.0.1" : ep.host;
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    return Status::InvalidArgument("cannot parse IPv4 address '" + ep.host +
                                   "'");
  }
  return addr;
}

}  // namespace

Result<Endpoint> ParseEndpoint(const std::string& s) {
  size_t colon = s.rfind(':');
  if (colon == std::string::npos || colon == 0 || colon + 1 == s.size()) {
    return Status::InvalidArgument("endpoint '" + s + "' is not host:port");
  }
  char* end = nullptr;
  unsigned long port = std::strtoul(s.c_str() + colon + 1, &end, 10);
  if (*end != '\0' || port == 0 || port > 65535) {
    return Status::InvalidArgument("bad port in endpoint '" + s + "'");
  }
  return Endpoint{s.substr(0, colon), static_cast<uint16_t>(port)};
}

TcpConn::~TcpConn() { Close(); }

TcpConn& TcpConn::operator=(TcpConn&& o) noexcept {
  if (this != &o) {
    Close();
    fd_ = o.fd_;
    o.fd_ = -1;
  }
  return *this;
}

void TcpConn::Close() {
  if (fd_ >= 0) {
    ::shutdown(fd_, SHUT_RDWR);
    ::close(fd_);
    fd_ = -1;
  }
}

Result<TcpConn> TcpConn::Connect(const Endpoint& ep, int timeout_ms) {
  SECMED_ASSIGN_OR_RETURN(struct sockaddr_in addr, ResolveV4(ep));
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  TcpConn conn(fd);  // owns fd from here on

  // Nonblocking connect + poll gives connect a deadline; the socket goes
  // back to blocking mode afterwards (per-operation polls bound I/O).
  int flags = ::fcntl(fd, F_GETFL, 0);
  ::fcntl(fd, F_SETFL, flags | O_NONBLOCK);
  int rc = ::connect(fd, reinterpret_cast<struct sockaddr*>(&addr),
                     sizeof(addr));
  if (rc != 0 && errno != EINPROGRESS) {
    return Errno("connect to " + ep.ToString());
  }
  if (rc != 0) {
    SECMED_RETURN_IF_ERROR(PollFor(fd, POLLOUT, timeout_ms, "connect"));
    int err = 0;
    socklen_t len = sizeof(err);
    if (::getsockopt(fd, SOL_SOCKET, SO_ERROR, &err, &len) != 0 || err != 0) {
      errno = err != 0 ? err : errno;
      return Errno("connect to " + ep.ToString());
    }
  }
  ::fcntl(fd, F_SETFL, flags);
  int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  return conn;
}

Status TcpConn::SendAll(const Bytes& data, int timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("send on closed connection");
  // `timeout_ms` is a *total* budget for the whole write, measured
  // against steady_clock from here. Re-arming the full timeout on every
  // loop iteration (the old behavior) let a peer draining one byte per
  // poll extend the "deadline" indefinitely; now every poll gets only
  // the remaining slice, and an EAGAIN after a successful poll consumes
  // budget like any other iteration instead of being a free retry.
  const DeadlineBudget budget(timeout_ms);
  size_t off = 0;
  while (off < data.size()) {
    const auto expired = [&] {
      return Status::DeadlineExceeded(
          "send of " + std::to_string(data.size()) + " bytes exceeded its " +
          std::to_string(timeout_ms) + " ms budget (" + std::to_string(off) +
          " bytes written)");
    };
    if (budget.Expired()) return expired();
    Status ready = PollFor(
        fd_, POLLOUT, budget.unbounded() ? -1 : budget.RemainingMs(), "send");
    if (!ready.ok()) {
      // Report partial progress on a timeout: "2 MB stuck at 48 KB
      // written" points at a stalled peer, which "timed out" alone hides.
      if (ready.code() == StatusCode::kDeadlineExceeded) return expired();
      return ready;
    }
    // MSG_DONTWAIT: POLLOUT only promises *some* buffer space; a blocking
    // send of a large remainder would then sleep until the peer drains it
    // all, putting the wait outside the budget's reach.
    ssize_t n = ::send(fd_, data.data() + off, data.size() - off,
                       MSG_NOSIGNAL | MSG_DONTWAIT);
    if (n < 0) {
      if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
      return Errno("send");
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

Result<size_t> TcpConn::RecvSome(Bytes* out, size_t max, int timeout_ms) {
  if (fd_ < 0) return Status::FailedPrecondition("recv on closed connection");
  // Same total-budget semantics as SendAll: a poll that wakes without
  // data (spurious readiness, EAGAIN) re-polls with the *remaining*
  // budget rather than a fresh full timeout.
  const DeadlineBudget budget(timeout_ms);
  const size_t old = out->size();
  for (;;) {
    if (budget.Expired()) {
      out->resize(old);
      return Status::DeadlineExceeded("recv timed out after " +
                                      std::to_string(timeout_ms) + " ms");
    }
    SECMED_RETURN_IF_ERROR(PollFor(
        fd_, POLLIN, budget.unbounded() ? -1 : budget.RemainingMs(), "recv"));
    out->resize(old + max);
    ssize_t n = ::recv(fd_, out->data() + old, max, MSG_DONTWAIT);
    if (n >= 0) {
      out->resize(old + static_cast<size_t>(n));
      return static_cast<size_t>(n);
    }
    out->resize(old);
    if (errno == EINTR || errno == EAGAIN || errno == EWOULDBLOCK) continue;
    return Errno("recv");
  }
}

TcpListener::~TcpListener() { Close(); }

void TcpListener::Close() {
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
}

Result<TcpListener> TcpListener::Listen(uint16_t port) {
  int fd = ::socket(AF_INET, SOCK_STREAM, 0);
  if (fd < 0) return Errno("socket");
  TcpListener listener;
  listener.fd_ = fd;
  int one = 1;
  ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
  struct sockaddr_in addr;
  std::memset(&addr, 0, sizeof(addr));
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
  if (::bind(fd, reinterpret_cast<struct sockaddr*>(&addr), sizeof(addr)) !=
      0) {
    return Errno("bind 127.0.0.1:" + std::to_string(port));
  }
  if (::listen(fd, 64) != 0) return Errno("listen");
  socklen_t len = sizeof(addr);
  if (::getsockname(fd, reinterpret_cast<struct sockaddr*>(&addr), &len) !=
      0) {
    return Errno("getsockname");
  }
  listener.port_ = ntohs(addr.sin_port);
  return listener;
}

Result<TcpConn> TcpListener::Accept(int timeout_ms) {
  if (fd_ < 0) return Status::Unavailable("listener closed");
  SECMED_RETURN_IF_ERROR(PollFor(fd_, POLLIN, timeout_ms, "accept"));
  for (;;) {
    int fd = ::accept(fd_, nullptr, nullptr);
    if (fd >= 0) {
      int one = 1;
      ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
      return TcpConn(fd);
    }
    if (errno == EINTR) continue;
    return Errno("accept");
  }
}

}  // namespace secmed
