#ifndef SECMED_NET_BUS_H_
#define SECMED_NET_BUS_H_

#include <deque>
#include <functional>
#include <map>
#include <string>
#include <vector>

#include "net/transport.h"

namespace secmed {

/// In-process transport connecting the parties of the mediation system.
///
/// The bus is the substitution for the MMM's real transport (DESIGN.md):
/// it preserves everything protocol-relevant — who sees which bytes, in
/// which order, with full transcript capture for the leakage analyzer —
/// while replacing sockets with FIFO queues. Not thread-safe; a protocol
/// run drives it from one thread.
class NetworkBus : public Transport {
 public:
  using Transport::Send;
  Status Send(Message msg) override;
  Result<Message> Receive(const std::string& party) override;
  Result<Message> ReceiveOfType(const std::string& party,
                                const std::string& type) override;
  size_t PendingFor(const std::string& party) const override;
  const std::vector<Message>& transcript() const override {
    return transcript_;
  }
  PartyStats StatsOf(const std::string& party) const override;
  size_t TotalBytes() const override;
  Bytes ViewOf(const std::string& party) const override;
  void Reset() override;
  void SetTamperHook(std::function<void(Message*)> hook) override {
    tamper_hook_ = std::move(hook);
  }
  void SetObsScope(obs::Scope* scope) override { obs_ = scope; }

 private:
  obs::Scope* obs_ = nullptr;
  std::function<void(Message*)> tamper_hook_;
  std::map<std::string, std::deque<Message>> inboxes_;
  std::vector<Message> transcript_;
  std::string last_sender_;
  std::map<std::string, PartyStats> stats_;
};

}  // namespace secmed

#endif  // SECMED_NET_BUS_H_
