#ifndef SECMED_NET_WIRE_H_
#define SECMED_NET_WIRE_H_

#include <cstdint>
#include <deque>
#include <optional>

#include "net/message.h"
#include "util/result.h"

namespace secmed {

/// Binary frame format carrying one `Message` over a byte stream.
///
/// Layout (all integers little-endian, util/serialize conventions):
///
///   offset  size  field
///        0     2  magic 0x4D53 ("SM")
///        2     1  version (kWireVersion)
///        3     1  flags (reserved, must be 0)
///        4     4  session id (multiplexes concurrent queries)
///        8     4  body length in bytes
///       12   ...  body: from, to, type (u32-length-prefixed strings),
///                 payload (u32-length-prefixed bytes)
///
/// The framed size of a message is therefore `Message::WireSize()` —
/// the header plus four length-prefixed fields — which keeps the byte
/// accounting of `NetworkBus` and `TcpTransport` identical to what
/// actually crosses a socket.
inline constexpr uint16_t kWireMagic = 0x4D53;  // "SM" little-endian
inline constexpr uint8_t kWireVersion = 1;

/// Upper bound on a frame body. An incoming length prefix above this is
/// rejected with kProtocolError *before* any allocation, so a corrupt or
/// hostile peer cannot make a party allocate unbounded memory.
inline constexpr uint32_t kMaxFrameBody = 64u << 20;  // 64 MiB

/// One decoded frame: the session it belongs to plus the message.
struct WireFrame {
  uint32_t session = 0;
  Message message;
};

/// Encodes `msg` into a single frame for `session`.
/// The result has exactly `msg.WireSize()` bytes.
Bytes EncodeFrame(uint32_t session, const Message& msg);

/// Decodes a buffer holding exactly one whole frame. kProtocolError on
/// bad magic/version/flags, an oversized body, trailing garbage, or a
/// truncated body.
Result<WireFrame> DecodeFrame(const Bytes& buffer);

/// Incremental decoder for a frame stream: feed arbitrary byte chunks
/// (as read from a socket), pull whole frames out.
///
/// Errors are sticky: once a stream is corrupt (bad header, oversized
/// length prefix) there is no way to resynchronize a length-prefixed
/// stream, so every subsequent Next() fails too.
class FrameDecoder {
 public:
  /// Appends raw stream bytes.
  void Feed(const uint8_t* data, size_t n);
  void Feed(const Bytes& chunk) { Feed(chunk.data(), chunk.size()); }

  /// Extracts the next whole frame. nullopt = need more bytes;
  /// kProtocolError = corrupt stream (sticky).
  Result<std::optional<WireFrame>> Next();

  /// Bytes buffered but not yet consumed by a decoded frame.
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  Bytes buffer_;
  size_t consumed_ = 0;  // decoded prefix, compacted lazily
  Status error_ = Status::OK();
};

}  // namespace secmed

#endif  // SECMED_NET_WIRE_H_
