#ifndef SECMED_NET_WIRE_H_
#define SECMED_NET_WIRE_H_

#include <cstdint>
#include <deque>
#include <optional>

#include "net/message.h"
#include "obs/trace_context.h"
#include "util/result.h"

namespace secmed {

/// Binary frame format carrying one `Message` over a byte stream.
///
/// Layout (all integers little-endian, util/serialize conventions):
///
///   offset  size  field
///        0     2  magic 0x4D53 ("SM")
///        2     1  version (kWireVersion; version 1 is still decoded)
///        3     1  flags (bit 0x01 = trace extension; others reserved)
///        4     4  session id (multiplexes concurrent queries)
///        8     4  body length in bytes (excludes the trace extension)
///       12    24  trace extension, only when flag 0x01 is set:
///                 16-byte trace id + 8-byte parent span id (LE)
///      ...   ...  body: from, to, type (u32-length-prefixed strings),
///                 payload (u32-length-prefixed bytes)
///
/// The framed size of an *untraced* message is `Message::WireSize()` —
/// the header plus four length-prefixed fields — which keeps the byte
/// accounting of `NetworkBus` and `TcpTransport` identical across
/// processes regardless of telemetry settings: the protocol cost model
/// deliberately excludes the optional trace extension (its actual bytes
/// are still visible as WireFrame::wire_size and the net.wire_bytes_*
/// counters).
///
/// Version history: v1 framed identically but had no flag bits (flags
/// had to be 0). The decoder accepts v1 frames so a telemetry-enabled
/// build interoperates with older peers; it emits v2.
inline constexpr uint16_t kWireMagic = 0x4D53;  // "SM" little-endian
inline constexpr uint8_t kWireVersion = 2;
inline constexpr uint8_t kWireVersionV1 = 1;

/// Flag bit 0x01: the 24-byte trace extension follows the header.
inline constexpr uint8_t kFrameFlagTrace = 0x01;

/// Upper bound on a frame body. An incoming length prefix above this is
/// rejected with kProtocolError *before* any allocation, so a corrupt or
/// hostile peer cannot make a party allocate unbounded memory.
inline constexpr uint32_t kMaxFrameBody = 64u << 20;  // 64 MiB

/// One decoded frame: the session it belongs to, the message, and the
/// telemetry envelope (trace invalid when the frame carried none).
struct WireFrame {
  uint32_t session = 0;
  Message message;
  /// Distributed trace context from the trace extension; !valid() on
  /// untraced (or v1) frames.
  obs::TraceContext trace;
  /// Actual framed size in bytes, including any trace extension. 0 when
  /// the frame was constructed locally rather than decoded.
  size_t wire_size = 0;
};

/// Encodes `msg` into a single untraced frame for `session`.
/// The result has exactly `msg.WireSize()` bytes.
Bytes EncodeFrame(uint32_t session, const Message& msg);

/// Encodes `msg` with a trace extension when `trace.valid()` (result is
/// `msg.WireSize() + kFrameTraceExtSize` bytes), untraced otherwise.
Bytes EncodeFrame(uint32_t session, const Message& msg,
                  const obs::TraceContext& trace);

/// Decodes a buffer holding exactly one whole frame. kProtocolError on
/// bad magic/version/flags, an oversized body, trailing garbage, or a
/// truncated body.
Result<WireFrame> DecodeFrame(const Bytes& buffer);

/// Incremental decoder for a frame stream: feed arbitrary byte chunks
/// (as read from a socket), pull whole frames out.
///
/// Errors are sticky: once a stream is corrupt (bad header, oversized
/// length prefix) there is no way to resynchronize a length-prefixed
/// stream, so every subsequent Next() fails too.
class FrameDecoder {
 public:
  /// Appends raw stream bytes.
  void Feed(const uint8_t* data, size_t n);
  void Feed(const Bytes& chunk) { Feed(chunk.data(), chunk.size()); }

  /// Extracts the next whole frame. nullopt = need more bytes;
  /// kProtocolError = corrupt stream (sticky).
  Result<std::optional<WireFrame>> Next();

  /// Bytes buffered but not yet consumed by a decoded frame.
  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  Bytes buffer_;
  size_t consumed_ = 0;  // decoded prefix, compacted lazily
  Status error_ = Status::OK();
};

}  // namespace secmed

#endif  // SECMED_NET_WIRE_H_
