file(REMOVE_RECURSE
  "CMakeFiles/secmedctl.dir/secmedctl.cc.o"
  "CMakeFiles/secmedctl.dir/secmedctl.cc.o.d"
  "secmedctl"
  "secmedctl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secmedctl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
