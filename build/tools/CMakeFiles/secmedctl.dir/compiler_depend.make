# Empty compiler generated dependencies file for secmedctl.
# This may be replaced when dependencies are built.
