# Empty dependencies file for gen_group_params.
# This may be replaced when dependencies are built.
