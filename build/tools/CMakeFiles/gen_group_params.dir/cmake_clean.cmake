file(REMOVE_RECURSE
  "CMakeFiles/gen_group_params.dir/gen_group_params.cc.o"
  "CMakeFiles/gen_group_params.dir/gen_group_params.cc.o.d"
  "gen_group_params"
  "gen_group_params.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/gen_group_params.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
