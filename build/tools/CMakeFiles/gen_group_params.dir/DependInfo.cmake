
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tools/gen_group_params.cc" "tools/CMakeFiles/gen_group_params.dir/gen_group_params.cc.o" "gcc" "tools/CMakeFiles/gen_group_params.dir/gen_group_params.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bigint/CMakeFiles/secmed_bigint.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/secmed_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
