# Empty dependencies file for research_aggregates.
# This may be replaced when dependencies are built.
