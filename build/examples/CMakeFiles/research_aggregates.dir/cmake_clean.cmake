file(REMOVE_RECURSE
  "CMakeFiles/research_aggregates.dir/research_aggregates.cpp.o"
  "CMakeFiles/research_aggregates.dir/research_aggregates.cpp.o.d"
  "research_aggregates"
  "research_aggregates.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/research_aggregates.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
