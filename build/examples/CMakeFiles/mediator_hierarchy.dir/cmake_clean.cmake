file(REMOVE_RECURSE
  "CMakeFiles/mediator_hierarchy.dir/mediator_hierarchy.cpp.o"
  "CMakeFiles/mediator_hierarchy.dir/mediator_hierarchy.cpp.o.d"
  "mediator_hierarchy"
  "mediator_hierarchy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mediator_hierarchy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
