# Empty dependencies file for mediator_hierarchy.
# This may be replaced when dependencies are built.
