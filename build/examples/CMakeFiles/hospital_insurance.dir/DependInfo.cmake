
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/examples/hospital_insurance.cpp" "examples/CMakeFiles/hospital_insurance.dir/hospital_insurance.cpp.o" "gcc" "examples/CMakeFiles/hospital_insurance.dir/hospital_insurance.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/core/CMakeFiles/secmed_core.dir/DependInfo.cmake"
  "/root/repo/build/src/mediation/CMakeFiles/secmed_mediation.dir/DependInfo.cmake"
  "/root/repo/build/src/das/CMakeFiles/secmed_das.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/secmed_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/bigint/CMakeFiles/secmed_bigint.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/secmed_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/secmed_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
