file(REMOVE_RECURSE
  "CMakeFiles/hospital_insurance.dir/hospital_insurance.cpp.o"
  "CMakeFiles/hospital_insurance.dir/hospital_insurance.cpp.o.d"
  "hospital_insurance"
  "hospital_insurance.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/hospital_insurance.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
