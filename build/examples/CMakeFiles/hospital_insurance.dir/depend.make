# Empty dependencies file for hospital_insurance.
# This may be replaced when dependencies are built.
