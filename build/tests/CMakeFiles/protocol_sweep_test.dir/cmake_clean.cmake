file(REMOVE_RECURSE
  "CMakeFiles/protocol_sweep_test.dir/protocol_sweep_test.cc.o"
  "CMakeFiles/protocol_sweep_test.dir/protocol_sweep_test.cc.o.d"
  "protocol_sweep_test"
  "protocol_sweep_test.pdb"
  "protocol_sweep_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/protocol_sweep_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
