# Empty compiler generated dependencies file for protocol_sweep_test.
# This may be replaced when dependencies are built.
