# Empty dependencies file for intersection_test.
# This may be replaced when dependencies are built.
