file(REMOVE_RECURSE
  "CMakeFiles/intersection_test.dir/intersection_test.cc.o"
  "CMakeFiles/intersection_test.dir/intersection_test.cc.o.d"
  "intersection_test"
  "intersection_test.pdb"
  "intersection_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/intersection_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
