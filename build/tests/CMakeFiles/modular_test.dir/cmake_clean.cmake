file(REMOVE_RECURSE
  "CMakeFiles/modular_test.dir/modular_test.cc.o"
  "CMakeFiles/modular_test.dir/modular_test.cc.o.d"
  "modular_test"
  "modular_test.pdb"
  "modular_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/modular_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
