# Empty dependencies file for crypto_aes_test.
# This may be replaced when dependencies are built.
