file(REMOVE_RECURSE
  "CMakeFiles/crypto_aes_test.dir/crypto_aes_test.cc.o"
  "CMakeFiles/crypto_aes_test.dir/crypto_aes_test.cc.o.d"
  "crypto_aes_test"
  "crypto_aes_test.pdb"
  "crypto_aes_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_aes_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
