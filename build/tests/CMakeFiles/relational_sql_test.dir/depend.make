# Empty dependencies file for relational_sql_test.
# This may be replaced when dependencies are built.
