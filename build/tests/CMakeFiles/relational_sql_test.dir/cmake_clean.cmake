file(REMOVE_RECURSE
  "CMakeFiles/relational_sql_test.dir/relational_sql_test.cc.o"
  "CMakeFiles/relational_sql_test.dir/relational_sql_test.cc.o.d"
  "relational_sql_test"
  "relational_sql_test.pdb"
  "relational_sql_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_sql_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
