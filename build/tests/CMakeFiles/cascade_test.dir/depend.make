# Empty dependencies file for cascade_test.
# This may be replaced when dependencies are built.
