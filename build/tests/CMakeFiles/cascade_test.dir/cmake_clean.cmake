file(REMOVE_RECURSE
  "CMakeFiles/cascade_test.dir/cascade_test.cc.o"
  "CMakeFiles/cascade_test.dir/cascade_test.cc.o.d"
  "cascade_test"
  "cascade_test.pdb"
  "cascade_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/cascade_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
