# Empty compiler generated dependencies file for crypto_group_test.
# This may be replaced when dependencies are built.
