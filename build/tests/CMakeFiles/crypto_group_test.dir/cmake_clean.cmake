file(REMOVE_RECURSE
  "CMakeFiles/crypto_group_test.dir/crypto_group_test.cc.o"
  "CMakeFiles/crypto_group_test.dir/crypto_group_test.cc.o.d"
  "crypto_group_test"
  "crypto_group_test.pdb"
  "crypto_group_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_group_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
