# Empty compiler generated dependencies file for das_settings_test.
# This may be replaced when dependencies are built.
