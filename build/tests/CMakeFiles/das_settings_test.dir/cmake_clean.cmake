file(REMOVE_RECURSE
  "CMakeFiles/das_settings_test.dir/das_settings_test.cc.o"
  "CMakeFiles/das_settings_test.dir/das_settings_test.cc.o.d"
  "das_settings_test"
  "das_settings_test.pdb"
  "das_settings_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_settings_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
