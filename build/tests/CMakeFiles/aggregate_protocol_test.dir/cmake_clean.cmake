file(REMOVE_RECURSE
  "CMakeFiles/aggregate_protocol_test.dir/aggregate_protocol_test.cc.o"
  "CMakeFiles/aggregate_protocol_test.dir/aggregate_protocol_test.cc.o.d"
  "aggregate_protocol_test"
  "aggregate_protocol_test.pdb"
  "aggregate_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/aggregate_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
