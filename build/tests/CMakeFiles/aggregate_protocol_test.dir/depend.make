# Empty dependencies file for aggregate_protocol_test.
# This may be replaced when dependencies are built.
