# Empty compiler generated dependencies file for das_test.
# This may be replaced when dependencies are built.
