file(REMOVE_RECURSE
  "CMakeFiles/das_test.dir/das_test.cc.o"
  "CMakeFiles/das_test.dir/das_test.cc.o.d"
  "das_test"
  "das_test.pdb"
  "das_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/das_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
