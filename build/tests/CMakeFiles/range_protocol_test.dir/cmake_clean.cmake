file(REMOVE_RECURSE
  "CMakeFiles/range_protocol_test.dir/range_protocol_test.cc.o"
  "CMakeFiles/range_protocol_test.dir/range_protocol_test.cc.o.d"
  "range_protocol_test"
  "range_protocol_test.pdb"
  "range_protocol_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/range_protocol_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
