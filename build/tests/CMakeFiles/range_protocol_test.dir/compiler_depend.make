# Empty compiler generated dependencies file for range_protocol_test.
# This may be replaced when dependencies are built.
