# Empty compiler generated dependencies file for mixed_das_test.
# This may be replaced when dependencies are built.
