file(REMOVE_RECURSE
  "CMakeFiles/mixed_das_test.dir/mixed_das_test.cc.o"
  "CMakeFiles/mixed_das_test.dir/mixed_das_test.cc.o.d"
  "mixed_das_test"
  "mixed_das_test.pdb"
  "mixed_das_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mixed_das_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
