file(REMOVE_RECURSE
  "CMakeFiles/relational_algebra_test.dir/relational_algebra_test.cc.o"
  "CMakeFiles/relational_algebra_test.dir/relational_algebra_test.cc.o.d"
  "relational_algebra_test"
  "relational_algebra_test.pdb"
  "relational_algebra_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_algebra_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
