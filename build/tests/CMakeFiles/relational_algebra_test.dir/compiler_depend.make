# Empty compiler generated dependencies file for relational_algebra_test.
# This may be replaced when dependencies are built.
