file(REMOVE_RECURSE
  "CMakeFiles/multi_attribute_test.dir/multi_attribute_test.cc.o"
  "CMakeFiles/multi_attribute_test.dir/multi_attribute_test.cc.o.d"
  "multi_attribute_test"
  "multi_attribute_test.pdb"
  "multi_attribute_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/multi_attribute_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
