# Empty compiler generated dependencies file for multi_attribute_test.
# This may be replaced when dependencies are built.
