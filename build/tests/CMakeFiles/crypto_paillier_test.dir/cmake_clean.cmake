file(REMOVE_RECURSE
  "CMakeFiles/crypto_paillier_test.dir/crypto_paillier_test.cc.o"
  "CMakeFiles/crypto_paillier_test.dir/crypto_paillier_test.cc.o.d"
  "crypto_paillier_test"
  "crypto_paillier_test.pdb"
  "crypto_paillier_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crypto_paillier_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
