# Empty dependencies file for crypto_paillier_test.
# This may be replaced when dependencies are built.
