file(REMOVE_RECURSE
  "CMakeFiles/relational_aggregate_test.dir/relational_aggregate_test.cc.o"
  "CMakeFiles/relational_aggregate_test.dir/relational_aggregate_test.cc.o.d"
  "relational_aggregate_test"
  "relational_aggregate_test.pdb"
  "relational_aggregate_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/relational_aggregate_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
