# Empty compiler generated dependencies file for relational_aggregate_test.
# This may be replaced when dependencies are built.
