# Empty compiler generated dependencies file for mediation_test.
# This may be replaced when dependencies are built.
