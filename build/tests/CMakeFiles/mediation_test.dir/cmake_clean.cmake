file(REMOVE_RECURSE
  "CMakeFiles/mediation_test.dir/mediation_test.cc.o"
  "CMakeFiles/mediation_test.dir/mediation_test.cc.o.d"
  "mediation_test"
  "mediation_test.pdb"
  "mediation_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/mediation_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
