file(REMOVE_RECURSE
  "libsecmed_relational.a"
)
