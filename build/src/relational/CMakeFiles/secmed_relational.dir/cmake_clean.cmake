file(REMOVE_RECURSE
  "CMakeFiles/secmed_relational.dir/algebra.cc.o"
  "CMakeFiles/secmed_relational.dir/algebra.cc.o.d"
  "CMakeFiles/secmed_relational.dir/csv.cc.o"
  "CMakeFiles/secmed_relational.dir/csv.cc.o.d"
  "CMakeFiles/secmed_relational.dir/predicate.cc.o"
  "CMakeFiles/secmed_relational.dir/predicate.cc.o.d"
  "CMakeFiles/secmed_relational.dir/relation.cc.o"
  "CMakeFiles/secmed_relational.dir/relation.cc.o.d"
  "CMakeFiles/secmed_relational.dir/schema.cc.o"
  "CMakeFiles/secmed_relational.dir/schema.cc.o.d"
  "CMakeFiles/secmed_relational.dir/sql.cc.o"
  "CMakeFiles/secmed_relational.dir/sql.cc.o.d"
  "CMakeFiles/secmed_relational.dir/value.cc.o"
  "CMakeFiles/secmed_relational.dir/value.cc.o.d"
  "CMakeFiles/secmed_relational.dir/workload.cc.o"
  "CMakeFiles/secmed_relational.dir/workload.cc.o.d"
  "libsecmed_relational.a"
  "libsecmed_relational.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secmed_relational.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
