# Empty compiler generated dependencies file for secmed_relational.
# This may be replaced when dependencies are built.
