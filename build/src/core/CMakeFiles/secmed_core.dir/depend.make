# Empty dependencies file for secmed_core.
# This may be replaced when dependencies are built.
