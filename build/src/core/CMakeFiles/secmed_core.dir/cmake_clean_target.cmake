file(REMOVE_RECURSE
  "libsecmed_core.a"
)
