
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/core/aggregate_protocol.cc" "src/core/CMakeFiles/secmed_core.dir/aggregate_protocol.cc.o" "gcc" "src/core/CMakeFiles/secmed_core.dir/aggregate_protocol.cc.o.d"
  "/root/repo/src/core/cascade.cc" "src/core/CMakeFiles/secmed_core.dir/cascade.cc.o" "gcc" "src/core/CMakeFiles/secmed_core.dir/cascade.cc.o.d"
  "/root/repo/src/core/commutative_protocol.cc" "src/core/CMakeFiles/secmed_core.dir/commutative_protocol.cc.o" "gcc" "src/core/CMakeFiles/secmed_core.dir/commutative_protocol.cc.o.d"
  "/root/repo/src/core/das_protocol.cc" "src/core/CMakeFiles/secmed_core.dir/das_protocol.cc.o" "gcc" "src/core/CMakeFiles/secmed_core.dir/das_protocol.cc.o.d"
  "/root/repo/src/core/intersection_protocol.cc" "src/core/CMakeFiles/secmed_core.dir/intersection_protocol.cc.o" "gcc" "src/core/CMakeFiles/secmed_core.dir/intersection_protocol.cc.o.d"
  "/root/repo/src/core/leakage.cc" "src/core/CMakeFiles/secmed_core.dir/leakage.cc.o" "gcc" "src/core/CMakeFiles/secmed_core.dir/leakage.cc.o.d"
  "/root/repo/src/core/pm_protocol.cc" "src/core/CMakeFiles/secmed_core.dir/pm_protocol.cc.o" "gcc" "src/core/CMakeFiles/secmed_core.dir/pm_protocol.cc.o.d"
  "/root/repo/src/core/protocol.cc" "src/core/CMakeFiles/secmed_core.dir/protocol.cc.o" "gcc" "src/core/CMakeFiles/secmed_core.dir/protocol.cc.o.d"
  "/root/repo/src/core/range_protocol.cc" "src/core/CMakeFiles/secmed_core.dir/range_protocol.cc.o" "gcc" "src/core/CMakeFiles/secmed_core.dir/range_protocol.cc.o.d"
  "/root/repo/src/core/selection_protocol.cc" "src/core/CMakeFiles/secmed_core.dir/selection_protocol.cc.o" "gcc" "src/core/CMakeFiles/secmed_core.dir/selection_protocol.cc.o.d"
  "/root/repo/src/core/testbed.cc" "src/core/CMakeFiles/secmed_core.dir/testbed.cc.o" "gcc" "src/core/CMakeFiles/secmed_core.dir/testbed.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/mediation/CMakeFiles/secmed_mediation.dir/DependInfo.cmake"
  "/root/repo/build/src/das/CMakeFiles/secmed_das.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/secmed_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/secmed_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/bigint/CMakeFiles/secmed_bigint.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/secmed_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
