file(REMOVE_RECURSE
  "CMakeFiles/secmed_core.dir/aggregate_protocol.cc.o"
  "CMakeFiles/secmed_core.dir/aggregate_protocol.cc.o.d"
  "CMakeFiles/secmed_core.dir/cascade.cc.o"
  "CMakeFiles/secmed_core.dir/cascade.cc.o.d"
  "CMakeFiles/secmed_core.dir/commutative_protocol.cc.o"
  "CMakeFiles/secmed_core.dir/commutative_protocol.cc.o.d"
  "CMakeFiles/secmed_core.dir/das_protocol.cc.o"
  "CMakeFiles/secmed_core.dir/das_protocol.cc.o.d"
  "CMakeFiles/secmed_core.dir/intersection_protocol.cc.o"
  "CMakeFiles/secmed_core.dir/intersection_protocol.cc.o.d"
  "CMakeFiles/secmed_core.dir/leakage.cc.o"
  "CMakeFiles/secmed_core.dir/leakage.cc.o.d"
  "CMakeFiles/secmed_core.dir/pm_protocol.cc.o"
  "CMakeFiles/secmed_core.dir/pm_protocol.cc.o.d"
  "CMakeFiles/secmed_core.dir/protocol.cc.o"
  "CMakeFiles/secmed_core.dir/protocol.cc.o.d"
  "CMakeFiles/secmed_core.dir/range_protocol.cc.o"
  "CMakeFiles/secmed_core.dir/range_protocol.cc.o.d"
  "CMakeFiles/secmed_core.dir/selection_protocol.cc.o"
  "CMakeFiles/secmed_core.dir/selection_protocol.cc.o.d"
  "CMakeFiles/secmed_core.dir/testbed.cc.o"
  "CMakeFiles/secmed_core.dir/testbed.cc.o.d"
  "libsecmed_core.a"
  "libsecmed_core.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secmed_core.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
