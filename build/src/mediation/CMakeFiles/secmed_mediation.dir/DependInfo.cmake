
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mediation/access_policy.cc" "src/mediation/CMakeFiles/secmed_mediation.dir/access_policy.cc.o" "gcc" "src/mediation/CMakeFiles/secmed_mediation.dir/access_policy.cc.o.d"
  "/root/repo/src/mediation/client.cc" "src/mediation/CMakeFiles/secmed_mediation.dir/client.cc.o" "gcc" "src/mediation/CMakeFiles/secmed_mediation.dir/client.cc.o.d"
  "/root/repo/src/mediation/credential.cc" "src/mediation/CMakeFiles/secmed_mediation.dir/credential.cc.o" "gcc" "src/mediation/CMakeFiles/secmed_mediation.dir/credential.cc.o.d"
  "/root/repo/src/mediation/datasource.cc" "src/mediation/CMakeFiles/secmed_mediation.dir/datasource.cc.o" "gcc" "src/mediation/CMakeFiles/secmed_mediation.dir/datasource.cc.o.d"
  "/root/repo/src/mediation/mediator.cc" "src/mediation/CMakeFiles/secmed_mediation.dir/mediator.cc.o" "gcc" "src/mediation/CMakeFiles/secmed_mediation.dir/mediator.cc.o.d"
  "/root/repo/src/mediation/network.cc" "src/mediation/CMakeFiles/secmed_mediation.dir/network.cc.o" "gcc" "src/mediation/CMakeFiles/secmed_mediation.dir/network.cc.o.d"
  "/root/repo/src/mediation/preparatory.cc" "src/mediation/CMakeFiles/secmed_mediation.dir/preparatory.cc.o" "gcc" "src/mediation/CMakeFiles/secmed_mediation.dir/preparatory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/secmed_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/secmed_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/bigint/CMakeFiles/secmed_bigint.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/secmed_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
