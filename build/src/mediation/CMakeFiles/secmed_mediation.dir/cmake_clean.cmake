file(REMOVE_RECURSE
  "CMakeFiles/secmed_mediation.dir/access_policy.cc.o"
  "CMakeFiles/secmed_mediation.dir/access_policy.cc.o.d"
  "CMakeFiles/secmed_mediation.dir/client.cc.o"
  "CMakeFiles/secmed_mediation.dir/client.cc.o.d"
  "CMakeFiles/secmed_mediation.dir/credential.cc.o"
  "CMakeFiles/secmed_mediation.dir/credential.cc.o.d"
  "CMakeFiles/secmed_mediation.dir/datasource.cc.o"
  "CMakeFiles/secmed_mediation.dir/datasource.cc.o.d"
  "CMakeFiles/secmed_mediation.dir/mediator.cc.o"
  "CMakeFiles/secmed_mediation.dir/mediator.cc.o.d"
  "CMakeFiles/secmed_mediation.dir/network.cc.o"
  "CMakeFiles/secmed_mediation.dir/network.cc.o.d"
  "CMakeFiles/secmed_mediation.dir/preparatory.cc.o"
  "CMakeFiles/secmed_mediation.dir/preparatory.cc.o.d"
  "libsecmed_mediation.a"
  "libsecmed_mediation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secmed_mediation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
