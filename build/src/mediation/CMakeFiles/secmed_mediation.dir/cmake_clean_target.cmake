file(REMOVE_RECURSE
  "libsecmed_mediation.a"
)
