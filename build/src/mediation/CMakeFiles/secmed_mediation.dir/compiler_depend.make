# Empty compiler generated dependencies file for secmed_mediation.
# This may be replaced when dependencies are built.
