file(REMOVE_RECURSE
  "libsecmed_util.a"
)
