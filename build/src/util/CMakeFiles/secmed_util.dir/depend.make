# Empty dependencies file for secmed_util.
# This may be replaced when dependencies are built.
