file(REMOVE_RECURSE
  "CMakeFiles/secmed_util.dir/bytes.cc.o"
  "CMakeFiles/secmed_util.dir/bytes.cc.o.d"
  "CMakeFiles/secmed_util.dir/rng.cc.o"
  "CMakeFiles/secmed_util.dir/rng.cc.o.d"
  "CMakeFiles/secmed_util.dir/serialize.cc.o"
  "CMakeFiles/secmed_util.dir/serialize.cc.o.d"
  "CMakeFiles/secmed_util.dir/status.cc.o"
  "CMakeFiles/secmed_util.dir/status.cc.o.d"
  "libsecmed_util.a"
  "libsecmed_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secmed_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
