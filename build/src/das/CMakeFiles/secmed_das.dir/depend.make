# Empty dependencies file for secmed_das.
# This may be replaced when dependencies are built.
