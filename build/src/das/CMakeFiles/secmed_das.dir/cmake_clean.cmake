file(REMOVE_RECURSE
  "CMakeFiles/secmed_das.dir/das_relation.cc.o"
  "CMakeFiles/secmed_das.dir/das_relation.cc.o.d"
  "CMakeFiles/secmed_das.dir/index_table.cc.o"
  "CMakeFiles/secmed_das.dir/index_table.cc.o.d"
  "CMakeFiles/secmed_das.dir/partition.cc.o"
  "CMakeFiles/secmed_das.dir/partition.cc.o.d"
  "CMakeFiles/secmed_das.dir/query_translator.cc.o"
  "CMakeFiles/secmed_das.dir/query_translator.cc.o.d"
  "CMakeFiles/secmed_das.dir/searchable.cc.o"
  "CMakeFiles/secmed_das.dir/searchable.cc.o.d"
  "libsecmed_das.a"
  "libsecmed_das.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secmed_das.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
