file(REMOVE_RECURSE
  "libsecmed_das.a"
)
