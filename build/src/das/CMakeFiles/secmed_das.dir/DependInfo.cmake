
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/das/das_relation.cc" "src/das/CMakeFiles/secmed_das.dir/das_relation.cc.o" "gcc" "src/das/CMakeFiles/secmed_das.dir/das_relation.cc.o.d"
  "/root/repo/src/das/index_table.cc" "src/das/CMakeFiles/secmed_das.dir/index_table.cc.o" "gcc" "src/das/CMakeFiles/secmed_das.dir/index_table.cc.o.d"
  "/root/repo/src/das/partition.cc" "src/das/CMakeFiles/secmed_das.dir/partition.cc.o" "gcc" "src/das/CMakeFiles/secmed_das.dir/partition.cc.o.d"
  "/root/repo/src/das/query_translator.cc" "src/das/CMakeFiles/secmed_das.dir/query_translator.cc.o" "gcc" "src/das/CMakeFiles/secmed_das.dir/query_translator.cc.o.d"
  "/root/repo/src/das/searchable.cc" "src/das/CMakeFiles/secmed_das.dir/searchable.cc.o" "gcc" "src/das/CMakeFiles/secmed_das.dir/searchable.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/crypto/CMakeFiles/secmed_crypto.dir/DependInfo.cmake"
  "/root/repo/build/src/relational/CMakeFiles/secmed_relational.dir/DependInfo.cmake"
  "/root/repo/build/src/bigint/CMakeFiles/secmed_bigint.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/secmed_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
