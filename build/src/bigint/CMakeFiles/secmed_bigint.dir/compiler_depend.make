# Empty compiler generated dependencies file for secmed_bigint.
# This may be replaced when dependencies are built.
