file(REMOVE_RECURSE
  "libsecmed_bigint.a"
)
