file(REMOVE_RECURSE
  "CMakeFiles/secmed_bigint.dir/bigint.cc.o"
  "CMakeFiles/secmed_bigint.dir/bigint.cc.o.d"
  "CMakeFiles/secmed_bigint.dir/modular.cc.o"
  "CMakeFiles/secmed_bigint.dir/modular.cc.o.d"
  "CMakeFiles/secmed_bigint.dir/prime.cc.o"
  "CMakeFiles/secmed_bigint.dir/prime.cc.o.d"
  "libsecmed_bigint.a"
  "libsecmed_bigint.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secmed_bigint.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
