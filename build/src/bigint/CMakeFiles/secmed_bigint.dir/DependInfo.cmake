
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/bigint/bigint.cc" "src/bigint/CMakeFiles/secmed_bigint.dir/bigint.cc.o" "gcc" "src/bigint/CMakeFiles/secmed_bigint.dir/bigint.cc.o.d"
  "/root/repo/src/bigint/modular.cc" "src/bigint/CMakeFiles/secmed_bigint.dir/modular.cc.o" "gcc" "src/bigint/CMakeFiles/secmed_bigint.dir/modular.cc.o.d"
  "/root/repo/src/bigint/prime.cc" "src/bigint/CMakeFiles/secmed_bigint.dir/prime.cc.o" "gcc" "src/bigint/CMakeFiles/secmed_bigint.dir/prime.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/secmed_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
