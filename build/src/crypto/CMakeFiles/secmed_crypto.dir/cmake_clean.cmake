file(REMOVE_RECURSE
  "CMakeFiles/secmed_crypto.dir/aead.cc.o"
  "CMakeFiles/secmed_crypto.dir/aead.cc.o.d"
  "CMakeFiles/secmed_crypto.dir/aes.cc.o"
  "CMakeFiles/secmed_crypto.dir/aes.cc.o.d"
  "CMakeFiles/secmed_crypto.dir/commutative.cc.o"
  "CMakeFiles/secmed_crypto.dir/commutative.cc.o.d"
  "CMakeFiles/secmed_crypto.dir/drbg.cc.o"
  "CMakeFiles/secmed_crypto.dir/drbg.cc.o.d"
  "CMakeFiles/secmed_crypto.dir/elgamal.cc.o"
  "CMakeFiles/secmed_crypto.dir/elgamal.cc.o.d"
  "CMakeFiles/secmed_crypto.dir/group.cc.o"
  "CMakeFiles/secmed_crypto.dir/group.cc.o.d"
  "CMakeFiles/secmed_crypto.dir/group_params.cc.o"
  "CMakeFiles/secmed_crypto.dir/group_params.cc.o.d"
  "CMakeFiles/secmed_crypto.dir/hybrid.cc.o"
  "CMakeFiles/secmed_crypto.dir/hybrid.cc.o.d"
  "CMakeFiles/secmed_crypto.dir/paillier.cc.o"
  "CMakeFiles/secmed_crypto.dir/paillier.cc.o.d"
  "CMakeFiles/secmed_crypto.dir/rsa.cc.o"
  "CMakeFiles/secmed_crypto.dir/rsa.cc.o.d"
  "CMakeFiles/secmed_crypto.dir/sha256.cc.o"
  "CMakeFiles/secmed_crypto.dir/sha256.cc.o.d"
  "libsecmed_crypto.a"
  "libsecmed_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/secmed_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
