
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aead.cc" "src/crypto/CMakeFiles/secmed_crypto.dir/aead.cc.o" "gcc" "src/crypto/CMakeFiles/secmed_crypto.dir/aead.cc.o.d"
  "/root/repo/src/crypto/aes.cc" "src/crypto/CMakeFiles/secmed_crypto.dir/aes.cc.o" "gcc" "src/crypto/CMakeFiles/secmed_crypto.dir/aes.cc.o.d"
  "/root/repo/src/crypto/commutative.cc" "src/crypto/CMakeFiles/secmed_crypto.dir/commutative.cc.o" "gcc" "src/crypto/CMakeFiles/secmed_crypto.dir/commutative.cc.o.d"
  "/root/repo/src/crypto/drbg.cc" "src/crypto/CMakeFiles/secmed_crypto.dir/drbg.cc.o" "gcc" "src/crypto/CMakeFiles/secmed_crypto.dir/drbg.cc.o.d"
  "/root/repo/src/crypto/elgamal.cc" "src/crypto/CMakeFiles/secmed_crypto.dir/elgamal.cc.o" "gcc" "src/crypto/CMakeFiles/secmed_crypto.dir/elgamal.cc.o.d"
  "/root/repo/src/crypto/group.cc" "src/crypto/CMakeFiles/secmed_crypto.dir/group.cc.o" "gcc" "src/crypto/CMakeFiles/secmed_crypto.dir/group.cc.o.d"
  "/root/repo/src/crypto/group_params.cc" "src/crypto/CMakeFiles/secmed_crypto.dir/group_params.cc.o" "gcc" "src/crypto/CMakeFiles/secmed_crypto.dir/group_params.cc.o.d"
  "/root/repo/src/crypto/hybrid.cc" "src/crypto/CMakeFiles/secmed_crypto.dir/hybrid.cc.o" "gcc" "src/crypto/CMakeFiles/secmed_crypto.dir/hybrid.cc.o.d"
  "/root/repo/src/crypto/paillier.cc" "src/crypto/CMakeFiles/secmed_crypto.dir/paillier.cc.o" "gcc" "src/crypto/CMakeFiles/secmed_crypto.dir/paillier.cc.o.d"
  "/root/repo/src/crypto/rsa.cc" "src/crypto/CMakeFiles/secmed_crypto.dir/rsa.cc.o" "gcc" "src/crypto/CMakeFiles/secmed_crypto.dir/rsa.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/crypto/CMakeFiles/secmed_crypto.dir/sha256.cc.o" "gcc" "src/crypto/CMakeFiles/secmed_crypto.dir/sha256.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/bigint/CMakeFiles/secmed_bigint.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/secmed_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
