# Empty dependencies file for secmed_crypto.
# This may be replaced when dependencies are built.
