file(REMOVE_RECURSE
  "libsecmed_crypto.a"
)
