file(REMOVE_RECURSE
  "CMakeFiles/bench_x_crossover.dir/bench_x_crossover.cc.o"
  "CMakeFiles/bench_x_crossover.dir/bench_x_crossover.cc.o.d"
  "bench_x_crossover"
  "bench_x_crossover.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_x_crossover.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
