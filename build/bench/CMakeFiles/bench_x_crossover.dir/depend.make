# Empty dependencies file for bench_x_crossover.
# This may be replaced when dependencies are built.
