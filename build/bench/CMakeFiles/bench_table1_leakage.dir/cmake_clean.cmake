file(REMOVE_RECURSE
  "CMakeFiles/bench_table1_leakage.dir/bench_table1_leakage.cc.o"
  "CMakeFiles/bench_table1_leakage.dir/bench_table1_leakage.cc.o.d"
  "bench_table1_leakage"
  "bench_table1_leakage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table1_leakage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
