# Empty dependencies file for bench_table1_leakage.
# This may be replaced when dependencies are built.
