file(REMOVE_RECURSE
  "CMakeFiles/bench_das_partitioning.dir/bench_das_partitioning.cc.o"
  "CMakeFiles/bench_das_partitioning.dir/bench_das_partitioning.cc.o.d"
  "bench_das_partitioning"
  "bench_das_partitioning.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_das_partitioning.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
