# Empty dependencies file for bench_das_partitioning.
# This may be replaced when dependencies are built.
