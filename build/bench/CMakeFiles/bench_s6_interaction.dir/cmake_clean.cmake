file(REMOVE_RECURSE
  "CMakeFiles/bench_s6_interaction.dir/bench_s6_interaction.cc.o"
  "CMakeFiles/bench_s6_interaction.dir/bench_s6_interaction.cc.o.d"
  "bench_s6_interaction"
  "bench_s6_interaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s6_interaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
