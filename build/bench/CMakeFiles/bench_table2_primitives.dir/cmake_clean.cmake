file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_primitives.dir/bench_table2_primitives.cc.o"
  "CMakeFiles/bench_table2_primitives.dir/bench_table2_primitives.cc.o.d"
  "bench_table2_primitives"
  "bench_table2_primitives.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_primitives.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
