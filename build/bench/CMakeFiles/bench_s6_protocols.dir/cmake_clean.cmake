file(REMOVE_RECURSE
  "CMakeFiles/bench_s6_protocols.dir/bench_s6_protocols.cc.o"
  "CMakeFiles/bench_s6_protocols.dir/bench_s6_protocols.cc.o.d"
  "bench_s6_protocols"
  "bench_s6_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_s6_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
