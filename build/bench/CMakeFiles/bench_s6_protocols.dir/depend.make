# Empty dependencies file for bench_s6_protocols.
# This may be replaced when dependencies are built.
