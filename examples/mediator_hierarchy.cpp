// Mediator hierarchy (Section 8, future work): "in a mediator hierarchy
// one mediator can act as a datasource for other mediators. Therefore,
// the case in which several join queries are executed successively has to
// be considered."
//
// This example executes two successive mediated joins: the result of the
// first secure join (patients ⋈ treatments) is registered as a relation
// of a datasource fronted by a second mediator, which joins it with a
// third party's pharmacy stock — every join computed over ciphertexts.
//
//   ./build/examples/mediator_hierarchy

#include <cstdio>

#include "core/commutative_protocol.h"
#include "crypto/drbg.h"
#include "mediation/client.h"
#include "mediation/datasource.h"
#include "mediation/mediator.h"
#include "mediation/network.h"

using namespace secmed;

namespace {

Relation Patients() {
  Relation r{Schema({{"pid", ValueType::kInt64},
                     {"diagnosis", ValueType::kString}})};
  (void)r.Append({Value::Int(1), Value::Str("influenza")});
  (void)r.Append({Value::Int(2), Value::Str("diabetes")});
  (void)r.Append({Value::Int(3), Value::Str("asthma")});
  (void)r.Append({Value::Int(4), Value::Str("influenza")});
  return r;
}

Relation Treatments() {
  Relation r{Schema({{"diagnosis", ValueType::kString},
                     {"drug", ValueType::kString}})};
  (void)r.Append({Value::Str("influenza"), Value::Str("oseltamivir")});
  (void)r.Append({Value::Str("diabetes"), Value::Str("metformin")});
  (void)r.Append({Value::Str("asthma"), Value::Str("salbutamol")});
  return r;
}

Relation PharmacyStock() {
  Relation r{Schema({{"drug", ValueType::kString},
                     {"stock", ValueType::kInt64}})};
  (void)r.Append({Value::Str("oseltamivir"), Value::Int(120)});
  (void)r.Append({Value::Str("metformin"), Value::Int(40)});
  (void)r.Append({Value::Str("ibuprofen"), Value::Int(900)});
  return r;
}

// Strips qualifiers so a join result can be re-registered as a base table
// at the next level of the hierarchy.
Relation Unqualify(const Relation& rel) {
  std::vector<Column> cols;
  for (const Column& c : rel.schema().columns()) {
    cols.push_back({Schema::BaseName(c.name), c.type});
  }
  return Relation(Schema(std::move(cols)), rel.tuples());
}

Result<Relation> RunJoin(Client* client, const std::string& sql,
                         const std::string& mediator_name,
                         std::map<std::string, DataSource*> sources,
                         HmacDrbg* rng,
                         const std::map<std::string, Schema>& schemas) {
  Mediator mediator(mediator_name);
  for (auto& [name, src] : sources) {
    for (auto& [table, schema] : schemas) {
      if (src->HasTable(table)) mediator.RegisterTable(table, name, schema);
    }
  }
  NetworkBus bus;
  ProtocolContext ctx;
  ctx.client = client;
  ctx.mediator = &mediator;
  ctx.sources = std::move(sources);
  ctx.bus = &bus;
  ctx.rng = rng;
  CommutativeJoinProtocol protocol(CommutativeProtocolOptions{384, false});
  return protocol.Run(sql, &ctx);
}

}  // namespace

int main() {
  HmacDrbg rng;
  CertificationAuthority ca =
      CertificationAuthority::Create(1024, &rng).value();
  Client client = Client::Create("researcher", 1024, 1024, &rng).value();
  if (!client.AcquireCredential(ca, {{"role", "researcher"}}).ok()) return 1;

  // --- Level 1: hospital ⋈ clinic under mediator-1. ---
  DataSource hospital("hospital"), clinic("clinic");
  hospital.set_ca_key(ca.public_key());
  clinic.set_ca_key(ca.public_key());
  hospital.AddRelation("patients", Patients());
  clinic.AddRelation("treatments", Treatments());

  auto level1 = RunJoin(&client,
                        "SELECT * FROM patients NATURAL JOIN treatments",
                        "mediator-1",
                        {{"hospital", &hospital}, {"clinic", &clinic}}, &rng,
                        {{"patients", Patients().schema()},
                         {"treatments", Treatments().schema()}});
  if (!level1.ok()) {
    std::printf("level 1 failed: %s\n", level1.status().ToString().c_str());
    return 1;
  }
  std::printf("=== level 1: patients ⋈ treatments ===\n%s\n",
              level1->ToString().c_str());

  // --- Level 2: mediator-1's result becomes a datasource relation. ---
  Relation care_plan = Unqualify(*level1);
  DataSource upper("mediator-1-as-source"), pharmacy("pharmacy");
  upper.set_ca_key(ca.public_key());
  pharmacy.set_ca_key(ca.public_key());
  upper.AddRelation("care_plan", care_plan);
  pharmacy.AddRelation("stock", PharmacyStock());

  auto level2 = RunJoin(&client, "SELECT * FROM care_plan NATURAL JOIN stock",
                        "mediator-2",
                        {{"mediator-1-as-source", &upper},
                         {"pharmacy", &pharmacy}},
                        &rng,
                        {{"care_plan", care_plan.schema()},
                         {"stock", PharmacyStock().schema()}});
  if (!level2.ok()) {
    std::printf("level 2 failed: %s\n", level2.status().ToString().c_str());
    return 1;
  }
  std::printf("=== level 2: care_plan ⋈ pharmacy stock ===\n%s\n",
              level2->ToString().c_str());
  std::printf(
      "both joins were mediated over ciphertexts; the asthma care plan\n"
      "vanished at level 2 because salbutamol is out of stock.\n");
  return 0;
}
