// Inter-enterprise scenario: a researcher joins hospital records with
// insurance claims via an untrusted mediator.
//
// Demonstrates the full credential machinery: the certification authority
// issues property credentials, the hospital releases only anonymized
// research-consented rows to "researcher" credentials, and the mediator
// matches the encrypted partial results without ever seeing a diagnosis.
//
//   ./build/examples/hospital_insurance

#include <cstdio>

#include "core/commutative_protocol.h"
#include "core/leakage.h"
#include "crypto/drbg.h"
#include "mediation/access_policy.h"
#include "mediation/client.h"
#include "mediation/datasource.h"
#include "mediation/mediator.h"
#include "mediation/network.h"

using namespace secmed;

namespace {

Relation HospitalRecords() {
  Relation r{Schema({{"case_id", ValueType::kInt64},
                     {"diagnosis", ValueType::kString},
                     {"severity", ValueType::kInt64},
                     {"consented", ValueType::kInt64}})};
  struct Row {
    int64_t id;
    const char* diag;
    int64_t sev;
    int64_t consent;
  };
  const Row rows[] = {
      {101, "influenza", 2, 1},   {102, "diabetes", 3, 1},
      {103, "influenza", 1, 0},   {104, "hypertension", 2, 1},
      {105, "diabetes", 4, 1},    {106, "asthma", 2, 0},
      {107, "hypertension", 3, 1}, {108, "migraine", 1, 1},
  };
  for (const Row& row : rows) {
    (void)r.Append({Value::Int(row.id), Value::Str(row.diag),
                    Value::Int(row.sev), Value::Int(row.consent)});
  }
  return r;
}

Relation InsuranceClaims() {
  Relation r{Schema({{"claim_id", ValueType::kInt64},
                     {"diagnosis", ValueType::kString},
                     {"payout_eur", ValueType::kInt64}})};
  struct Row {
    int64_t id;
    const char* diag;
    int64_t payout;
  };
  const Row rows[] = {
      {9001, "influenza", 220},    {9002, "diabetes", 1450},
      {9003, "hypertension", 630}, {9004, "fracture", 2100},
      {9005, "diabetes", 990},     {9006, "influenza", 180},
  };
  for (const Row& row : rows) {
    (void)r.Append(
        {Value::Int(row.id), Value::Str(row.diag), Value::Int(row.payout)});
  }
  return r;
}

}  // namespace

int main() {
  HmacDrbg rng;

  CertificationAuthority ca =
      CertificationAuthority::Create(1024, &rng).value();
  Client researcher = Client::Create("researcher", 1024, 1024, &rng).value();
  if (!researcher
           .AcquireCredential(ca, {{"role", "researcher"},
                                   {"study", "cost-of-care"}})
           .ok()) {
    return 1;
  }

  // The hospital releases only consented cases to researcher credentials.
  DataSource hospital("hospital");
  hospital.set_ca_key(ca.public_key());
  hospital.AddRelation("records", HospitalRecords());
  AccessPolicy hospital_policy;
  hospital_policy.AddRule(
      {"role", "researcher",
       Predicate::ColumnEquals("consented", Value::Int(1)),
       {"case_id", "diagnosis", "severity"}});  // consent flag masked
  hospital.SetPolicy("records", hospital_policy);

  // The insurer releases claims to any credentialed study participant.
  DataSource insurer("insurer");
  insurer.set_ca_key(ca.public_key());
  insurer.AddRelation("claims", InsuranceClaims());
  AccessPolicy insurer_policy;
  insurer_policy.AddRule({"study", "cost-of-care", Predicate::True(), {}});
  insurer.SetPolicy("claims", insurer_policy);

  Mediator mediator("mediator");
  mediator.RegisterTable("records", hospital.name(),
                         HospitalRecords().schema());
  mediator.RegisterTable("claims", insurer.name(), InsuranceClaims().schema());

  NetworkBus bus;
  ProtocolContext ctx;
  ctx.client = &researcher;
  ctx.mediator = &mediator;
  ctx.sources = {{hospital.name(), &hospital}, {insurer.name(), &insurer}};
  ctx.bus = &bus;
  ctx.rng = &rng;

  CommutativeJoinProtocol protocol;
  auto result = protocol.Run(
      "SELECT * FROM records JOIN claims ON records.diagnosis = "
      "claims.diagnosis",
      &ctx);
  if (!result.ok()) {
    std::printf("failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("=== cost-of-care study: joined view ===\n%s\n",
              result->ToString().c_str());
  std::printf(
      "notes:\n"
      "  - case 103 (influenza, no consent) and 106 never left the "
      "hospital;\n"
      "  - claim 9004 (fracture) matched no released case;\n"
      "  - the consent flag column was masked to NULL by the policy.\n\n");

  LeakageReport report =
      AnalyzeLeakage("commutative", bus, mediator.name(), researcher.name(),
                     HospitalRecords(), InsuranceClaims(), "diagnosis",
                     result->size());
  std::printf("%s", report.ToString().c_str());
  std::printf("diagnosis strings visible to the mediator: %s\n",
              report.mediator_saw_plaintext ? "YES (bug!)" : "none");
  return report.mediator_saw_plaintext ? 1 : 0;
}
