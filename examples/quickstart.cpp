// Quickstart: mediate a join over encrypted relations in ~60 lines.
//
// Sets up the full MMM environment — certification authority, client,
// mediator, two datasources — and runs the commutative-encryption
// protocol (the paper's recommended one) on a small synthetic workload.
//
//   ./build/examples/quickstart

#include <cstdio>

#include "core/commutative_protocol.h"
#include "crypto/drbg.h"
#include "mediation/client.h"
#include "mediation/datasource.h"
#include "mediation/mediator.h"
#include "mediation/network.h"
#include "relational/workload.h"

using namespace secmed;

int main() {
  HmacDrbg rng;  // OS-seeded

  // --- Preparatory phase: CA issues the client a property credential. ---
  CertificationAuthority ca =
      CertificationAuthority::Create(1024, &rng).value();
  Client client = Client::Create("client", 1024, 1024, &rng).value();
  if (!client.AcquireCredential(ca, {{"role", "analyst"}}).ok()) return 1;

  // --- Two datasources with a shared join attribute. ---
  WorkloadConfig cfg;
  cfg.r1_tuples = 30;
  cfg.r2_tuples = 25;
  cfg.r1_domain = 12;
  cfg.r2_domain = 10;
  cfg.common_values = 5;
  Workload w = GenerateWorkload(cfg);

  DataSource s1("source-1"), s2("source-2");
  s1.set_ca_key(ca.public_key());
  s2.set_ca_key(ca.public_key());
  s1.AddRelation("orders", w.r1);
  s2.AddRelation("shipments", w.r2);

  // --- Mediator knows the embedding: table -> source + global schema. ---
  Mediator mediator("mediator");
  mediator.RegisterTable("orders", s1.name(), w.r1.schema());
  mediator.RegisterTable("shipments", s2.name(), w.r2.schema());

  NetworkBus bus;
  ProtocolContext ctx;
  ctx.client = &client;
  ctx.mediator = &mediator;
  ctx.sources = {{s1.name(), &s1}, {s2.name(), &s2}};
  ctx.bus = &bus;
  ctx.rng = &rng;

  // --- Run the join over ciphertexts. ---
  CommutativeJoinProtocol protocol;
  auto result = protocol.Run(
      "SELECT * FROM orders JOIN shipments ON orders.ajoin = shipments.ajoin",
      &ctx);
  if (!result.ok()) {
    std::printf("protocol failed: %s\n", result.status().ToString().c_str());
    return 1;
  }

  std::printf("global result (%zu tuples):\n%s\n", result->size(),
              result->ToString(10).c_str());
  std::printf("mediator routed %zu messages, %zu bytes — all ciphertext.\n",
              bus.StatsOf("mediator").messages_received,
              bus.StatsOf("mediator").bytes_received);
  return 0;
}
