// Service quickstart: stand up the long-lived in-process query service
// and run a series of joins against it (docs/SERVICE.md).
//
// The first query is cold — the service loads, policy-filters and
// encrypts both relations from scratch. Every query after it hits the
// prepared-dataset cache and pays only the per-session work, so the
// series runs orders of magnitude faster while reconstructing the exact
// same relation (the service checks this per query via result digests).
//
//   ./build/examples/service_quickstart

#include <cstdio>

#include "core/testbed.h"
#include "service/load_harness.h"
#include "service/query_service.h"

using namespace secmed;

int main() {
  // --- Two datasources with a shared join attribute, plus the CA,
  // client and mediator, bundled by the testbed. ---
  WorkloadConfig cfg;
  cfg.r1_tuples = 30;
  cfg.r2_tuples = 25;
  cfg.r1_domain = 12;
  cfg.r2_domain = 10;
  cfg.common_values = 5;
  auto testbed = MediationTestbed::Create(GenerateWorkload(cfg));
  if (!testbed.ok()) {
    std::printf("testbed: %s\n", testbed.status().ToString().c_str());
    return 1;
  }

  // --- The service: bounded concurrency, prepared-dataset cache. ---
  QueryService::Options options;
  options.max_concurrent = 2;
  options.queue_depth = 16;
  QueryService service(testbed->get(), options);

  QueryService::Query query;
  query.protocol = "commutative";
  query.sql = (*testbed)->JoinSql();

  // --- Query 1: cold. The cache is empty; this session encrypts both
  // relations end to end. ---
  auto cold = service.Run(query);
  if (!cold.ok() || !cold->status.ok()) {
    std::printf("cold query failed\n");
    return 1;
  }
  std::printf("cold query:  %.1f ms, %zu tuples\n", cold->latency_ms,
              cold->result.size());

  // --- Queries 2..N: a closed-loop series over two client threads.
  // Every session reuses the prepared ciphertexts. ---
  LoadConfig load;
  load.clients = 2;
  load.queries = 16;
  load.query = query;
  LoadStats stats = RunLoadHarness(&service, load);
  std::printf("%s", RenderLoadStats("warm series (16 queries)", stats).c_str());
  if (stats.errors > 0 || !stats.digests_agree) {
    std::printf("warm series failed or diverged\n");
    return 1;
  }

  PreparedRegistryStats cache = service.cache().Stats();
  std::printf(
      "\ncache: %.0f%% hit rate over the run "
      "(%llu hits, %llu misses, %llu entries, %llu KiB resident)\n",
      100.0 * cache.HitRate(),
      static_cast<unsigned long long>(cache.hits),
      static_cast<unsigned long long>(cache.misses),
      static_cast<unsigned long long>(cache.entries),
      static_cast<unsigned long long>(cache.resident_bytes / 1024));
  std::printf("speedup: cold %.1f ms vs warm p50 %.1f ms per query\n",
              cold->latency_ms, stats.p50_ms);
  return service.Drain(std::chrono::milliseconds(0)).ok() ? 0 : 1;
}
