// Research-study scenario using the full extended query class: a
// three-way mediated join executed as a mediator hierarchy (cascade),
// followed by client-side WHERE, GROUP BY aggregation, ORDER BY and
// LIMIT — all join work happens over ciphertexts; only the client ever
// sees plaintext rows.
//
//   ./build/examples/research_aggregates

#include <cstdio>

#include "core/cascade.h"
#include "core/commutative_protocol.h"
#include "crypto/drbg.h"
#include "mediation/client.h"
#include "mediation/datasource.h"
#include "mediation/mediator.h"
#include "mediation/network.h"
#include "relational/workload.h"

using namespace secmed;

namespace {

Relation Admissions() {
  Relation r{Schema({{"case_id", ValueType::kInt64},
                     {"diagnosis", ValueType::kString},
                     {"region", ValueType::kString}})};
  struct Row {
    int64_t id;
    const char* diag;
    const char* region;
  };
  const Row rows[] = {
      {1, "influenza", "north"}, {2, "diabetes", "north"},
      {3, "influenza", "south"}, {4, "diabetes", "south"},
      {5, "influenza", "north"}, {6, "asthma", "south"},
      {7, "diabetes", "north"},  {8, "influenza", "south"},
  };
  for (const Row& row : rows) {
    (void)r.Append(
        {Value::Int(row.id), Value::Str(row.diag), Value::Str(row.region)});
  }
  return r;
}

Relation Protocols() {
  Relation r{Schema({{"diagnosis", ValueType::kString},
                     {"drug", ValueType::kString}})};
  (void)r.Append({Value::Str("influenza"), Value::Str("oseltamivir")});
  (void)r.Append({Value::Str("diabetes"), Value::Str("metformin")});
  (void)r.Append({Value::Str("asthma"), Value::Str("salbutamol")});
  return r;
}

Relation Prices() {
  Relation r{Schema({{"drug", ValueType::kString},
                     {"unit_cost", ValueType::kInt64}})};
  (void)r.Append({Value::Str("oseltamivir"), Value::Int(45)});
  (void)r.Append({Value::Str("metformin"), Value::Int(4)});
  (void)r.Append({Value::Str("salbutamol"), Value::Int(12)});
  return r;
}

}  // namespace

int main() {
  HmacDrbg rng;
  CertificationAuthority ca =
      CertificationAuthority::Create(1024, &rng).value();
  Client analyst = Client::Create("analyst", 1024, 1024, &rng).value();
  if (!analyst.AcquireCredential(ca, {{"role", "health-economist"}}).ok()) {
    return 1;
  }

  DataSource registry("registry"), guidelines("guidelines"),
      procurement("procurement");
  for (DataSource* s : {&registry, &guidelines, &procurement}) {
    s->set_ca_key(ca.public_key());
  }
  registry.AddRelation("admissions", Admissions());
  guidelines.AddRelation("protocols", Protocols());
  procurement.AddRelation("prices", Prices());

  Mediator mediator("base-mediator");
  mediator.RegisterTable("admissions", "registry", Admissions().schema());
  mediator.RegisterTable("protocols", "guidelines", Protocols().schema());
  mediator.RegisterTable("prices", "procurement", Prices().schema());

  NetworkBus bus;
  ProtocolContext ctx;
  ctx.client = &analyst;
  ctx.mediator = &mediator;
  ctx.sources = {{"registry", &registry},
                 {"guidelines", &guidelines},
                 {"procurement", &procurement}};
  ctx.bus = &bus;
  ctx.rng = &rng;

  CommutativeJoinProtocol protocol(CommutativeProtocolOptions{384, false});
  CascadeExecutor cascade(&protocol, ca.public_key());

  const char* query =
      "SELECT diagnosis, COUNT(*) AS cases, SUM(unit_cost) AS drug_cost "
      "FROM admissions NATURAL JOIN protocols NATURAL JOIN prices "
      "WHERE region = 'north' "
      "GROUP BY diagnosis ORDER BY drug_cost DESC LIMIT 3";

  std::printf("query:\n  %s\n\n", query);
  auto result = cascade.Run(query, &ctx);
  if (!result.ok()) {
    std::printf("failed: %s\n", result.status().ToString().c_str());
    return 1;
  }
  std::printf("result (computed from two successive encrypted joins, "
              "aggregated client-side):\n%s\n",
              result->ToString().c_str());
  std::printf("two hierarchy mediators processed %zu messages in total; "
              "none saw a diagnosis, drug or price.\n",
              bus.StatsOf("mediator-L1").messages_received +
                  bus.StatsOf("mediator-L2").messages_received);
  return 0;
}
