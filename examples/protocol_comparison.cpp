// Runs all three delivery-phase protocols on the same workload and prints
// the Section 6 comparison: what each party learns (Table 1), which
// primitives each protocol applies (Table 2), and the measured costs.
//
//   ./build/examples/protocol_comparison [tuples] [domain]

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <memory>
#include <vector>

#include "core/commutative_protocol.h"
#include "core/das_protocol.h"
#include "core/leakage.h"
#include "core/pm_protocol.h"
#include "crypto/drbg.h"
#include "mediation/client.h"
#include "mediation/datasource.h"
#include "mediation/mediator.h"
#include "mediation/network.h"
#include "relational/workload.h"

using namespace secmed;

namespace {

struct Row {
  std::string protocol;
  size_t result_tuples = 0;
  size_t client_received_items = 0;  // decryption work
  double wall_ms = 0;
  size_t total_bytes = 0;
  size_t client_interactions = 0;
  size_t source_interactions = 0;
  bool mediator_plaintext = false;
};

}  // namespace

int main(int argc, char** argv) {
  const size_t tuples = argc > 1 ? std::strtoul(argv[1], nullptr, 10) : 60;
  const size_t domain = argc > 2 ? std::strtoul(argv[2], nullptr, 10) : 20;

  WorkloadConfig cfg;
  cfg.r1_tuples = tuples;
  cfg.r2_tuples = tuples;
  cfg.r1_domain = domain;
  cfg.r2_domain = domain;
  cfg.common_values = domain / 2;
  Workload w = GenerateWorkload(cfg);

  HmacDrbg key_rng(ToBytes("comparison-keys"));
  CertificationAuthority ca =
      CertificationAuthority::Create(1024, &key_rng).value();
  Client client = Client::Create("client", 1024, 1024, &key_rng).value();
  (void)client.AcquireCredential(ca, {{"role", "analyst"}});

  std::vector<Row> rows;
  struct Named {
    const char* label;
    std::unique_ptr<JoinProtocol> protocol;
  };
  std::vector<Named> protocols;
  protocols.push_back(
      {"das (equi-depth/4)",
       std::make_unique<DasJoinProtocol>(
           DasProtocolOptions{PartitionStrategy::kEquiDepth, 4, {}})});
  protocols.push_back(
      {"commutative (512b)", std::make_unique<CommutativeJoinProtocol>(
                                 CommutativeProtocolOptions{512, false})});
  protocols.push_back(
      {"private matching", std::make_unique<PmJoinProtocol>()});

  for (Named& named : protocols) {
    DataSource s1("hospital"), s2("insurer");
    s1.set_ca_key(ca.public_key());
    s2.set_ca_key(ca.public_key());
    s1.AddRelation("medical", w.r1);
    s2.AddRelation("billing", w.r2);
    Mediator mediator("mediator");
    mediator.RegisterTable("medical", s1.name(), w.r1.schema());
    mediator.RegisterTable("billing", s2.name(), w.r2.schema());
    NetworkBus bus;
    HmacDrbg rng(ToBytes(std::string("run-") + named.label));
    ProtocolContext ctx;
    ctx.client = &client;
    ctx.mediator = &mediator;
    ctx.sources = {{s1.name(), &s1}, {s2.name(), &s2}};
    ctx.bus = &bus;
    ctx.rng = &rng;

    auto start = std::chrono::steady_clock::now();
    auto result = named.protocol->Run(
        "SELECT * FROM medical JOIN billing ON medical.ajoin = billing.ajoin",
        &ctx);
    auto end = std::chrono::steady_clock::now();
    if (!result.ok()) {
      std::printf("%s failed: %s\n", named.label,
                  result.status().ToString().c_str());
      return 1;
    }

    Row row;
    row.protocol = named.label;
    row.result_tuples = result->size();
    row.wall_ms =
        std::chrono::duration<double, std::milli>(end - start).count();
    row.total_bytes = bus.TotalBytes();
    row.client_interactions = bus.StatsOf(client.name()).interactions;
    row.source_interactions = bus.StatsOf(s1.name()).interactions;
    LeakageReport rep =
        AnalyzeLeakage(named.label, bus, mediator.name(), client.name(), w.r1,
                       w.r2, w.join_attribute, 0);
    row.mediator_plaintext = rep.mediator_saw_plaintext;
    row.client_received_items = rep.client_bytes_received;
    rows.push_back(row);
  }

  std::printf("workload: |R1|=|R2|=%zu, |domactive|=%zu, overlap=%zu\n\n",
              tuples, domain, domain / 2);
  std::printf("%-20s %8s %10s %12s %7s %7s %10s\n", "protocol", "result",
              "wall(ms)", "bytes", "cli-rt", "src-rt", "med-plain");
  for (const Row& r : rows) {
    std::printf("%-20s %8zu %10.1f %12zu %7zu %7zu %10s\n", r.protocol.c_str(),
                r.result_tuples, r.wall_ms, r.total_bytes,
                r.client_interactions, r.source_interactions,
                r.mediator_plaintext ? "LEAK" : "none");
  }

  std::printf(
      "\nTable 1 (what is disclosed beyond the result):\n"
      "  das:          client sees a superset; mediator learns |Ri|, |RC|\n"
      "  commutative:  client sees the exact result; mediator learns\n"
      "                |domactive| and the intersection size\n"
      "  pm:           client receives n+m maskings; mediator learns the\n"
      "                polynomial degrees |domactive|\n"
      "\nTable 2 (applied primitives):\n"
      "  das:          collision-free hash (partition identifiers)\n"
      "  commutative:  ideal hash + commutative exponentiation over QR(p)\n"
      "  pm:           Paillier homomorphic encryption + random masking\n");
  return 0;
}
