// Experiment S3-partition — the DAS partitioning tradeoff discussed in
// Sections 3 and 6 (with references [15] Hore et al. and [8] Ceselli et
// al.): "Small partitions with only a few values are more efficient (less
// post-processing is necessary) but can leak confidential information."
//
// For a fixed workload and a sweep over the partition count the harness
// reports:
//   - superset factor |RC| / |join|  (client post-processing cost), and
//   - inference exposure at the mediator: the average number of candidate
//     values per bucket (1 = the index value pins down the join value
//     exactly; larger = more uncertainty), plus the entropy in bits.

#include <cmath>
#include <cstdio>
#include <map>

#include "core/das_protocol.h"
#include "core/testbed.h"
#include "das/index_table.h"

#include "bench_env.h"

using namespace secmed;

int main() {
  secmed::BenchCheckBuild();
  WorkloadConfig cfg;
  cfg.r1_tuples = 120;
  cfg.r2_tuples = 120;
  cfg.r1_domain = 48;
  cfg.r2_domain = 48;
  cfg.common_values = 24;
  cfg.seed = 5;
  Workload w = GenerateWorkload(cfg);

  std::printf("=== DAS partitioning tradeoff (Sections 3/6, refs [15],[8]) ===\n");
  std::printf("workload: |Ri|=120, |domactive|=48, overlap=24\n\n");
  std::printf("%10s %12s %14s %16s %14s\n", "partitions", "|RC|",
              "superset-x", "values/bucket", "entropy(bits)");

  double prev_superset = 1e18;
  bool monotone = true;

  for (size_t parts : {1u, 2u, 4u, 8u, 16u, 48u}) {
    MediationTestbed::Options opt;
    opt.seed_label = "das-part-" + std::to_string(parts);
    auto tb_or = MediationTestbed::Create(w, opt);
    if (!tb_or.ok()) {
      std::printf("testbed setup failed: %s\n",
                  tb_or.status().ToString().c_str());
      return 1;
    }
    MediationTestbed& tb = **tb_or;
    DasJoinProtocol das(DasProtocolOptions{
        parts >= 48 ? PartitionStrategy::kSingleton
                    : PartitionStrategy::kEquiDepth,
        parts, {}});
    auto result = das.Run(tb.JoinSql(), tb.ctx());
    if (!result.ok()) {
      std::printf("run failed: %s\n", result.status().ToString().c_str());
      return 1;
    }
    const double superset =
        result->empty()
            ? 0.0
            : static_cast<double>(das.last_server_result_size()) /
                  static_cast<double>(result->size());

    // Inference exposure: rebuild the same-shape index table and measure
    // how many active values share each bucket. (The mediator cannot do
    // this without the ranges, but [8] models exactly this exposure if
    // partition metadata leaks.)
    Bytes salt = tb.rng().Generate(16);
    IndexTable it =
        IndexTable::Build(w.r1, w.join_attribute,
                          parts >= 48 ? PartitionStrategy::kSingleton
                                      : PartitionStrategy::kEquiDepth,
                          parts, salt)
            .value();
    auto domain = w.r1.ActiveDomain(w.join_attribute).value();
    std::map<uint64_t, size_t> bucket_sizes;
    for (const Value& v : domain) {
      bucket_sizes[it.IndexOf(v).value()]++;
    }
    double avg_per_bucket =
        static_cast<double>(domain.size()) /
        static_cast<double>(bucket_sizes.size());
    double entropy = 0;
    for (const auto& [idx, count] : bucket_sizes) {
      double p = static_cast<double>(count) / domain.size();
      // Value uncertainty inside the bucket: log2(count), weighted by the
      // probability of landing in the bucket.
      entropy += p * std::log2(static_cast<double>(count));
    }

    std::printf("%10zu %12zu %14.2f %16.2f %14.2f\n", bucket_sizes.size(),
                das.last_server_result_size(), superset, avg_per_bucket,
                entropy);
    if (superset > prev_superset + 1e-9) monotone = false;
    prev_superset = superset;
  }

  std::printf(
      "\nshape check: superset factor falls as partitions grow"
      " (post-processing ↓) %s\n"
      "             while per-bucket uncertainty falls too (leakage ↑)\n",
      monotone ? "[ok]" : "[MISMATCH]");
  return monotone ? 0 : 1;
}
