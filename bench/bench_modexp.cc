// Micro-benchmarks for the modular-exponentiation fast paths (the
// quantitative backing for DESIGN.md's fast-path section):
//
//   - generic schoolbook square-and-multiply vs the Montgomery context's
//     sliding-window recoded exponentiation vs the fixed-base table;
//   - Paillier encryption: naive r^n, the recoded inline path, and the
//     pool-backed online cost (r^n amortized off the measured path);
//   - Paillier decryption: single full-width exponentiation (no CRT) vs
//     the two half-width CRT exponentiations — the ≥3x headline;
//   - ElGamal encryption: generic group Pow vs the fixed-base tables
//     (≥2x) vs the pool-backed online cost;
//   - commutative encryption: generic Pow vs the once-per-key recoding.
//
// Compare runs with tools/bench_diff.py.

#include <benchmark/benchmark.h>

#include "bench_env.h"

#include <memory>
#include <vector>

#include "bigint/fastexp.h"
#include "bigint/modular.h"
#include "bigint/mont_kernel.h"
#include "crypto/commutative.h"
#include "crypto/elgamal.h"
#include "crypto/group_params.h"
#include "crypto/paillier.h"
#include "crypto/randomizer_pool.h"
#include "util/rng.h"

namespace secmed {
namespace {

constexpr size_t kGroupBits = 1024;
constexpr size_t kPaillierBits = 1024;
constexpr size_t kPaillierBitsLarge = 2048;
constexpr size_t kPoolItems = 32;

// Schoolbook square-and-multiply without Montgomery arithmetic: the
// baseline every fast path is measured against.
BigInt NaiveModExp(const BigInt& base, const BigInt& exp, const BigInt& mod) {
  BigInt result(1);
  BigInt b = BigInt::Mod(base, mod).value();
  for (size_t i = exp.BitLength(); i-- > 0;) {
    result = (result * result) % mod;
    if (exp.TestBit(i)) result = (result * b) % mod;
  }
  return result;
}

struct ModExpFixture {
  QrGroup group;
  BigInt base;
  BigInt exp;
  std::shared_ptr<const MontgomeryContext> ctx;

  ModExpFixture()
      : group(StandardGroup(kGroupBits).value()),
        base(0),
        exp(0),
        ctx(group.mont_ctx()) {
    XoshiroRandomSource rng(7001);
    base = BigInt::RandomBelow(group.p(), &rng);
    exp = BigInt::RandomBelow(group.q(), &rng);
  }
};

ModExpFixture& Fx() {
  static ModExpFixture* fx = new ModExpFixture();
  return *fx;
}

void BM_ModExp_Naive(benchmark::State& state) {
  ModExpFixture& fx = Fx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(NaiveModExp(fx.base, fx.exp, fx.group.p()));
  }
}
BENCHMARK(BM_ModExp_Naive);

void BM_ModExp_MontgomeryRecoded(benchmark::State& state) {
  ModExpFixture& fx = Fx();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.ctx->Exp(fx.base, fx.exp));
  }
}
BENCHMARK(BM_ModExp_MontgomeryRecoded);

void BM_ModExp_FixedExponentRecoding(benchmark::State& state) {
  // The per-key amortization: recode once, exponentiate many times.
  ModExpFixture& fx = Fx();
  const ExponentRecoding rec = ExponentRecoding::Create(fx.exp);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.ctx->ExpWithRecoding(fx.base, rec));
  }
}
BENCHMARK(BM_ModExp_FixedExponentRecoding);

// 2048-bit exponentiation over a fixed random odd modulus (no standard
// safe-prime group at this size; Montgomery exponentiation only needs an
// odd modulus). This is the acceptance-gate size for the limb kernel.
struct ModExp2048Fixture {
  BigInt m;
  BigInt base;
  BigInt exp;
  std::shared_ptr<const MontgomeryContext> ctx;

  ModExp2048Fixture() : m(0), base(0), exp(0) {
    XoshiroRandomSource rng(7010);
    m = BigInt::RandomWithBits(2048, &rng);
    if (m.is_even()) m += BigInt(1);
    base = BigInt::RandomBelow(m, &rng);
    exp = BigInt::RandomWithBits(2048, &rng);
    ctx = std::make_shared<const MontgomeryContext>(
        MontgomeryContext::Create(m).value());
  }
};

ModExp2048Fixture& Fx2048() {
  static ModExp2048Fixture* fx = new ModExp2048Fixture();
  return *fx;
}

void BM_ModExp_MontgomeryRecoded2048(benchmark::State& state) {
  ModExp2048Fixture& fx = Fx2048();
  // Per-kernel counters: the muls/sqrs mix is what justifies the dedicated
  // squaring routine (a sliding-window exponentiation is ~bits squarings
  // vs ~bits/(w+1) multiplies, so most kernel calls take the cheaper path).
  montk::ResetKernelCounters();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.ctx->Exp(fx.base, fx.exp));
  }
  const montk::KernelCounters kc = montk::ReadKernelCounters();
  const double iters = static_cast<double>(state.iterations());
  state.counters["kernel_muls_per_op"] = static_cast<double>(kc.muls) / iters;
  state.counters["kernel_sqrs_per_op"] = static_cast<double>(kc.sqrs) / iters;
}
BENCHMARK(BM_ModExp_MontgomeryRecoded2048);

void BM_ModExp_FixedBaseTable(benchmark::State& state) {
  // The per-base amortization: one table, many exponents.
  ModExpFixture& fx = Fx();
  static FixedBaseTable* table =
      new FixedBaseTable(fx.group.MakeFixedBaseTable(fx.base).value());
  for (auto _ : state) {
    benchmark::DoNotOptimize(table->Pow(fx.exp));
  }
}
BENCHMARK(BM_ModExp_FixedBaseTable);

// ---------------------------------------------------------------- Paillier

struct PaillierFixture {
  PaillierKeyPair keys;
  BigInt m;
  BigInt c;
  PaillierRandomizerPool pool;

  PaillierFixture()
      : keys([] {
          XoshiroRandomSource rng(7002);
          return PaillierGenerateKey(kPaillierBits, &rng).value();
        }()),
        m(123456789) {
    XoshiroRandomSource rng(7003);
    c = keys.public_key.Encrypt(m, &rng).value();
    std::vector<std::unique_ptr<RandomSource>> rngs = ForkN(&rng, kPoolItems);
    pool = PaillierRandomizerPool::Precompute(keys.public_key, rngs,
                                              /*per_item=*/1, /*threads=*/1);
  }
};

PaillierFixture& Pf() {
  static PaillierFixture* fx = new PaillierFixture();
  return *fx;
}

void BM_PaillierEncrypt_Naive(benchmark::State& state) {
  PaillierFixture& fx = Pf();
  XoshiroRandomSource rng(7004);
  const BigInt& n = fx.keys.public_key.n();
  const BigInt& n2 = fx.keys.public_key.n_squared();
  for (auto _ : state) {
    BigInt r = fx.keys.public_key.DrawRandomizerBase(&rng);
    BigInt rn = NaiveModExp(r, n, n2);
    benchmark::DoNotOptimize(
        fx.keys.public_key.EncryptWithRandomizer(fx.m, rn).value());
  }
}
BENCHMARK(BM_PaillierEncrypt_Naive);

void BM_PaillierEncrypt_Inline(benchmark::State& state) {
  PaillierFixture& fx = Pf();
  XoshiroRandomSource rng(7004);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.keys.public_key.Encrypt(fx.m, &rng).value());
  }
}
BENCHMARK(BM_PaillierEncrypt_Inline);

void BM_PaillierEncrypt_Pooled(benchmark::State& state) {
  // Online cost only: the r^n exponentiations happened at pool build.
  PaillierFixture& fx = Pf();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.pool.Encrypt(fx.keys.public_key, fx.m, i).value());
    i = (i + 1) % kPoolItems;
  }
}
BENCHMARK(BM_PaillierEncrypt_Pooled);

void BM_PaillierDecrypt_NoCrt(benchmark::State& state) {
  PaillierFixture& fx = Pf();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.keys.private_key.DecryptNoCrt(fx.c).value());
  }
}
BENCHMARK(BM_PaillierDecrypt_NoCrt);

void BM_PaillierDecrypt_Crt(benchmark::State& state) {
  PaillierFixture& fx = Pf();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.keys.private_key.Decrypt(fx.c).value());
  }
}
BENCHMARK(BM_PaillierDecrypt_Crt);

// 2048-bit-modulus Paillier key: each CRT half runs a 2048-bit
// exponentiation mod p^2 — the acceptance-gate size for CRT decryption.
struct Paillier2048Fixture {
  PaillierKeyPair keys;
  BigInt m;
  BigInt c;

  Paillier2048Fixture()
      : keys([] {
          XoshiroRandomSource rng(7011);
          return PaillierGenerateKey(kPaillierBitsLarge, &rng).value();
        }()),
        m(987654321) {
    XoshiroRandomSource rng(7012);
    c = keys.public_key.Encrypt(m, &rng).value();
  }
};

Paillier2048Fixture& Pf2048() {
  static Paillier2048Fixture* fx = new Paillier2048Fixture();
  return *fx;
}

void BM_PaillierDecrypt_Crt2048(benchmark::State& state) {
  Paillier2048Fixture& fx = Pf2048();
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.keys.private_key.Decrypt(fx.c).value());
  }
}
BENCHMARK(BM_PaillierDecrypt_Crt2048);

// ----------------------------------------------------------------- ElGamal

struct ElGamalFixture {
  QrGroup group;
  ElGamalKeyPair keys;
  ElGamalRandomizerPool pool;

  ElGamalFixture()
      : group(StandardGroup(kGroupBits).value()), keys([this] {
          XoshiroRandomSource rng(7005);
          return ElGamalGenerateKey(group, &rng);
        }()) {
    XoshiroRandomSource rng(7006);
    std::vector<std::unique_ptr<RandomSource>> rngs = ForkN(&rng, kPoolItems);
    pool = ElGamalRandomizerPool::Precompute(keys.public_key, rngs,
                                             /*per_item=*/1, /*threads=*/1);
  }
};

ElGamalFixture& Ef() {
  static ElGamalFixture* fx = new ElGamalFixture();
  return *fx;
}

void BM_ElGamalEncrypt_GenericPow(benchmark::State& state) {
  // What Encrypt cost before the fixed-base tables: three generic
  // exponentiations plus a product.
  ElGamalFixture& fx = Ef();
  XoshiroRandomSource rng(7007);
  const ElGamalPublicKey& pub = fx.keys.public_key;
  const BigInt m(17);
  for (auto _ : state) {
    BigInt r = pub.DrawRandomizer(&rng);
    BigInt c1 = fx.group.Pow(pub.g(), r);
    BigInt c2 =
        (fx.group.Pow(pub.g(), m) * fx.group.Pow(pub.h(), r)) % fx.group.p();
    benchmark::DoNotOptimize(c1);
    benchmark::DoNotOptimize(c2);
  }
}
BENCHMARK(BM_ElGamalEncrypt_GenericPow);

void BM_ElGamalEncrypt_Table(benchmark::State& state) {
  ElGamalFixture& fx = Ef();
  XoshiroRandomSource rng(7007);
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.keys.public_key.Encrypt(17, &rng).value());
  }
}
BENCHMARK(BM_ElGamalEncrypt_Table);

void BM_ElGamalEncrypt_Pooled(benchmark::State& state) {
  ElGamalFixture& fx = Ef();
  size_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        fx.pool.Encrypt(fx.keys.public_key, 17, i).value());
    i = (i + 1) % kPoolItems;
  }
}
BENCHMARK(BM_ElGamalEncrypt_Pooled);

// ------------------------------------------------------------- Commutative

void BM_CommutativeEncrypt_GenericPow(benchmark::State& state) {
  ModExpFixture& fx = Fx();
  XoshiroRandomSource rng(7008);
  CommutativeKey key = CommutativeKey::Generate(fx.group, &rng);
  const BigInt x = fx.group.Pow(fx.base, BigInt(2));  // a group element
  for (auto _ : state) {
    benchmark::DoNotOptimize(fx.group.Pow(x, key.exponent()));
  }
}
BENCHMARK(BM_CommutativeEncrypt_GenericPow);

void BM_CommutativeEncrypt_Recoded(benchmark::State& state) {
  ModExpFixture& fx = Fx();
  XoshiroRandomSource rng(7008);
  CommutativeKey key = CommutativeKey::Generate(fx.group, &rng);
  const BigInt x = fx.group.Pow(fx.base, BigInt(2));
  for (auto _ : state) {
    benchmark::DoNotOptimize(key.Encrypt(x));
  }
}
BENCHMARK(BM_CommutativeEncrypt_Recoded);

// ------------------------------------------------- Karatsuba threshold sweep
//
// BigInt::operator* still backs the non-Montgomery paths (Paillier 1+m·n,
// CRT recombination, key generation, division-based reductions). The sweep
// multiplies two 4096-bit magnitudes (128 u32 limbs — deep enough for two
// Karatsuba levels at the smallest thresholds) across candidate thresholds;
// the committed default in bigint.cc follows the minimum of this curve.
void BM_BigIntMul_KaratsubaSweep(benchmark::State& state) {
  const size_t threshold = static_cast<size_t>(state.range(0));
  XoshiroRandomSource rng(7020);
  const BigInt a = BigInt::RandomWithBits(4096, &rng);
  const BigInt b = BigInt::RandomWithBits(4096, &rng);
  const size_t saved = BigInt::karatsuba_threshold();
  BigInt::set_karatsuba_threshold(threshold);
  for (auto _ : state) {
    benchmark::DoNotOptimize(a * b);
  }
  BigInt::set_karatsuba_threshold(saved);
}
BENCHMARK(BM_BigIntMul_KaratsubaSweep)
    ->Arg(8)
    ->Arg(12)
    ->Arg(16)
    ->Arg(24)
    ->Arg(32)
    ->Arg(48)
    ->Arg(64)
    ->Arg(128);  // 128: schoolbook all the way at this operand size

}  // namespace
}  // namespace secmed

SECMED_BENCH_MAIN();
