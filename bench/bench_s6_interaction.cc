// Experiment S6-rounds — measures the interaction structure Section 6
// describes in prose and checks it against the paper's claims:
//
//   "In the DAS approach, the client has to interact twice with the
//    mediator ... For the datasources, the DAS approach is the most
//    convenient one, as they only have to send data once."
//   "In the commutative approach ... [the datasources] have to interact
//    twice with the mediator."
//   "In the PM approach ... The datasources have to interact twice with
//    the mediator."
//
// One row per protocol: interactions, messages and bytes for each party.

#include <cstdio>
#include <memory>
#include <vector>

#include "core/commutative_protocol.h"
#include "core/das_protocol.h"
#include "core/pm_protocol.h"
#include "core/testbed.h"

#include "bench_env.h"

using namespace secmed;

int main() {
  secmed::BenchCheckBuild();
  WorkloadConfig cfg;
  cfg.r1_tuples = 40;
  cfg.r2_tuples = 40;
  cfg.r1_domain = 16;
  cfg.r2_domain = 16;
  cfg.common_values = 8;
  Workload w = GenerateWorkload(cfg);

  struct Case {
    const char* label;
    std::unique_ptr<JoinProtocol> protocol;
    size_t expect_client_rt;
    size_t expect_source_rt;
  };
  std::vector<Case> cases;
  cases.push_back({"das", std::make_unique<DasJoinProtocol>(), 2, 1});
  cases.push_back({"commutative",
                   std::make_unique<CommutativeJoinProtocol>(
                       CommutativeProtocolOptions{512, false}),
                   1, 2});
  cases.push_back({"pm", std::make_unique<PmJoinProtocol>(), 1, 2});

  std::printf(
      "=== Section 6: interaction structure (measured vs paper) ===\n\n");
  std::printf("%-12s | %-22s | %-22s | %-22s | %s\n", "protocol",
              "client (rt/msg/bytes)", "source1 (rt/msg/bytes)",
              "mediator (msg in/out)", "paper claim");

  int failures = 0;
  for (Case& c : cases) {
    MediationTestbed::Options opt;
    opt.seed_label = std::string("s6-") + c.label;
    auto tb_or = MediationTestbed::Create(w, opt);
    if (!tb_or.ok()) {
      std::printf("testbed setup failed: %s\n",
                  tb_or.status().ToString().c_str());
      return 1;
    }
    MediationTestbed& tb = **tb_or;
    auto result = c.protocol->Run(tb.JoinSql(), tb.ctx());
    if (!result.ok()) {
      std::printf("%s failed: %s\n", c.label,
                  result.status().ToString().c_str());
      return 1;
    }
    PartyStats cli = tb.bus().StatsOf(tb.client().name());
    PartyStats s1 = tb.bus().StatsOf(tb.source1().name());
    PartyStats med = tb.bus().StatsOf(tb.mediator().name());

    char cli_buf[64], s1_buf[64], med_buf[64];
    std::snprintf(cli_buf, sizeof(cli_buf), "%zu / %zu / %zu",
                  cli.interactions, cli.messages_sent, cli.bytes_sent);
    std::snprintf(s1_buf, sizeof(s1_buf), "%zu / %zu / %zu", s1.interactions,
                  s1.messages_sent, s1.bytes_sent);
    std::snprintf(med_buf, sizeof(med_buf), "%zu / %zu", med.messages_received,
                  med.messages_sent);

    const bool ok = cli.interactions == c.expect_client_rt &&
                    s1.interactions == c.expect_source_rt;
    std::printf("%-12s | %-22s | %-22s | %-22s | client %zux, sources %zux %s\n",
                c.label, cli_buf, s1_buf, med_buf, c.expect_client_rt,
                c.expect_source_rt, ok ? "[ok]" : "[MISMATCH]");
    if (!ok) ++failures;
  }

  std::printf("\n%s\n",
              failures == 0
                  ? "Section 6 interaction claims reproduced."
                  : "INTERACTION STRUCTURE MISMATCH");
  return failures == 0 ? 0 : 1;
}
