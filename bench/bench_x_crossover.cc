// Experiment X-scale — the scaling analysis implied by Section 6: PM's
// blind polynomial evaluation costs O(n·m) homomorphic operations, so the
// commutative approach (O(n+m) exponentiations) must pull ahead as the
// active domains grow. This harness sweeps the domain size and prints the
// wall time of both protocols plus their ratio — the paper's "quite
// expensive" claim, quantified.

#include <chrono>
#include <cstdio>

#include "core/commutative_protocol.h"
#include "core/pm_protocol.h"
#include "core/testbed.h"

#include "bench_env.h"

using namespace secmed;

namespace {
double TimeProtocol(JoinProtocol* protocol, const Workload& w,
                    const std::string& label) {
  MediationTestbed::Options opt;
  opt.seed_label = label;
  auto tb_or = MediationTestbed::Create(w, opt);
  if (!tb_or.ok()) return -1;
  MediationTestbed& tb = **tb_or;
  auto start = std::chrono::steady_clock::now();
  auto result = protocol->Run(tb.JoinSql(), tb.ctx());
  auto end = std::chrono::steady_clock::now();
  if (!result.ok()) return -1;
  return std::chrono::duration<double, std::milli>(end - start).count();
}
}  // namespace

int main() {
  secmed::BenchCheckBuild();
  std::printf("=== PM vs commutative scaling (Section 6) ===\n\n");
  std::printf("%8s %8s %14s %12s %10s\n", "domain", "tuples", "comm(ms)",
              "pm(ms)", "pm/comm");

  double prev_ratio = 0;
  bool ratio_grows = true;
  for (size_t domain : {4u, 8u, 16u, 32u, 64u}) {
    WorkloadConfig cfg;
    cfg.r1_tuples = domain * 2;
    cfg.r2_tuples = domain * 2;
    cfg.r1_domain = domain;
    cfg.r2_domain = domain;
    cfg.common_values = domain / 2;
    cfg.seed = 9;
    Workload w = GenerateWorkload(cfg);

    CommutativeJoinProtocol comm(CommutativeProtocolOptions{512, false});
    PmJoinProtocol pm;
    double t_comm =
        TimeProtocol(&comm, w, "xover-comm-" + std::to_string(domain));
    double t_pm = TimeProtocol(&pm, w, "xover-pm-" + std::to_string(domain));
    if (t_comm < 0 || t_pm < 0) {
      std::printf("protocol run failed\n");
      return 1;
    }
    double ratio = t_pm / t_comm;
    std::printf("%8zu %8zu %14.1f %12.1f %10.1f\n", domain, domain * 2, t_comm,
                t_pm, ratio);
    if (domain >= 16 && ratio < prev_ratio * 0.8) ratio_grows = false;
    prev_ratio = ratio;
  }

  std::printf(
      "\nshape check: pm/comm ratio grows with the domain size "
      "(PM is O(n*m), commutative is O(n+m)) %s\n",
      ratio_grows ? "[ok]" : "[MISMATCH]");
  return ratio_grows ? 0 : 1;
}
