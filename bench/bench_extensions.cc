// Extension experiments: the protocols this library adds on top of the
// paper (Section 8 outlook + related-work lines), measured side by side.
//
//  E1 — secure INTERSECTION (commutative vs private matching): wall time
//       and client-bound bytes for the same workload.
//  E2 — aggregation over ciphertexts vs "join then aggregate at client":
//       the traffic and disclosure the aggregate protocol saves.
//  E3 — exact-match selection (searchable tags, Yang et al.) vs bucketized
//       range selection (Hore et al.) on the same point query: exactness
//       vs inference-exposure trade-off.

#include <chrono>
#include <cstdio>

#include "core/aggregate_protocol.h"
#include "core/commutative_protocol.h"
#include "core/intersection_protocol.h"
#include "core/range_protocol.h"
#include "core/selection_protocol.h"
#include "core/testbed.h"

#include "bench_env.h"

using namespace secmed;

namespace {

double MsSince(const std::chrono::steady_clock::time_point& start) {
  return std::chrono::duration<double, std::milli>(
             std::chrono::steady_clock::now() - start)
      .count();
}

void Intersections() {
  std::printf("--- E1: secure intersection ---\n");
  std::printf("%12s %12s %12s %14s\n", "domain", "comm(ms)", "pm(ms)",
              "result values");
  for (size_t domain : {8u, 16u, 32u}) {
    WorkloadConfig cfg;
    cfg.r1_tuples = domain * 2;
    cfg.r2_tuples = domain * 2;
    cfg.r1_domain = domain;
    cfg.r2_domain = domain;
    cfg.common_values = domain / 2;
    Workload w = GenerateWorkload(cfg);

    double ms[2];
    size_t values = 0;
    for (int mode = 0; mode < 2; ++mode) {
      MediationTestbed::Options opt;
      opt.seed_label = "e1-" + std::to_string(domain) + std::to_string(mode);
      auto tb_or = MediationTestbed::Create(w, opt);
      if (!tb_or.ok()) {
        std::printf("testbed setup failed: %s\n",
                    tb_or.status().ToString().c_str());
        return;
      }
      MediationTestbed& tb = **tb_or;
      auto start = std::chrono::steady_clock::now();
      Result<Relation> res =
          mode == 0
              ? CommutativeIntersectionProtocol(512).Run(tb.JoinSql(), tb.ctx())
              : PmIntersectionProtocol().Run(tb.JoinSql(), tb.ctx());
      ms[mode] = MsSince(start);
      if (!res.ok()) return;
      values = res->size();
    }
    std::printf("%12zu %12.1f %12.1f %14zu\n", domain, ms[0], ms[1], values);
  }
  std::printf("\n");
}

void AggregatesVsFullJoin() {
  std::printf("--- E2: aggregation over ciphertexts vs join-then-aggregate ---\n");
  std::printf("%10s %18s %18s %10s\n", "tuples", "full-join cli-B",
              "aggregate cli-B", "ratio");
  for (size_t tuples : {40u, 80u, 160u}) {
    WorkloadConfig cfg;
    cfg.r1_tuples = tuples;
    cfg.r2_tuples = tuples;
    cfg.r1_domain = tuples / 4;
    cfg.r2_domain = tuples / 4;
    cfg.common_values = tuples / 8;
    Workload w = GenerateWorkload(cfg);

    size_t join_bytes = 0, agg_bytes = 0;
    int64_t count_via_join = 0, count_via_agg = 0;
    {
      MediationTestbed::Options opt;
      opt.seed_label = "e2j-" + std::to_string(tuples);
      auto tb_or = MediationTestbed::Create(w, opt);
      if (!tb_or.ok()) {
        std::printf("testbed setup failed: %s\n",
                    tb_or.status().ToString().c_str());
        return;
      }
      MediationTestbed& tb = **tb_or;
      CommutativeJoinProtocol join(CommutativeProtocolOptions{512, false});
      auto res = join.Run(tb.JoinSql(), tb.ctx());
      if (!res.ok()) return;
      count_via_join = static_cast<int64_t>(res->size());
      join_bytes = tb.bus().StatsOf(tb.client().name()).bytes_received;
    }
    {
      MediationTestbed::Options opt;
      opt.seed_label = "e2a-" + std::to_string(tuples);
      auto tb_or = MediationTestbed::Create(w, opt);
      if (!tb_or.ok()) {
        std::printf("testbed setup failed: %s\n",
                    tb_or.status().ToString().c_str());
        return;
      }
      MediationTestbed& tb = **tb_or;
      AggregateJoinProtocol agg(512);
      auto res = agg.Run(tb.JoinSql(), {AggregateFn::kCount, ""}, tb.ctx());
      if (!res.ok()) return;
      count_via_agg = res.value();
      agg_bytes = tb.bus().StatsOf(tb.client().name()).bytes_received;
    }
    std::printf("%10zu %18zu %18zu %9.2fx   (COUNT %lld == %lld %s)\n", tuples,
                join_bytes, agg_bytes,
                static_cast<double>(join_bytes) /
                    static_cast<double>(agg_bytes),
                static_cast<long long>(count_via_join),
                static_cast<long long>(count_via_agg),
                count_via_join == count_via_agg ? "[ok]" : "[MISMATCH]");
  }
  std::printf("(the aggregate protocol also hides every payload column from "
              "the client)\n\n");
}

void SelectionVsRange() {
  std::printf("--- E3: exact-match selection vs bucketized range query ---\n");
  Relation readings{Schema({{"sensor", ValueType::kInt64},
                            {"temp", ValueType::kInt64}})};
  for (int i = 0; i < 200; ++i) {
    (void)readings.Append({Value::Int(i), Value::Int((i * 13) % 500)});
  }

  auto run_env = [&](auto&& runner, const char* label, size_t* superset,
                     size_t* result_rows) {
    auto tb_or = MediationTestbed::Create(GenerateWorkload(WorkloadConfig{}));
    if (!tb_or.ok()) {
      std::printf("testbed setup failed: %s\n",
                  tb_or.status().ToString().c_str());
      return;
    }
    MediationTestbed& tb = **tb_or;
    tb.source1().AddRelation("readings", readings);
    tb.mediator().RegisterTable("readings", tb.source1().name(),
                                readings.schema());
    auto start = std::chrono::steady_clock::now();
    auto res = runner(tb.ctx(), superset);
    double ms = MsSince(start);
    if (!res.ok()) {
      std::printf("%s failed: %s\n", label, res.status().ToString().c_str());
      return;
    }
    *result_rows = res->size();
    std::printf("%-28s %8.1f ms   returned %4zu   exact %4zu\n", label, ms,
                *superset, *result_rows);
  };

  size_t superset = 0, rows = 0;
  run_env(
      [&](ProtocolContext* ctx, size_t* sup) {
        SelectionProtocol p;
        auto r = p.Run("SELECT * FROM readings WHERE sensor = 77", ctx);
        *sup = p.last_selected_rows();
        return r;
      },
      "searchable (sensor = 77)", &superset, &rows);
  run_env(
      [&](ProtocolContext* ctx, size_t* sup) {
        RangeSelectionProtocol p({PartitionStrategy::kEquiDepth, 8});
        auto r = p.Run("SELECT * FROM readings WHERE sensor = 77", ctx);
        *sup = p.last_superset_size();
        return r;
      },
      "bucketized/8 (sensor = 77)", &superset, &rows);
  run_env(
      [&](ProtocolContext* ctx, size_t* sup) {
        RangeSelectionProtocol p({PartitionStrategy::kEquiDepth, 8});
        auto r = p.Run(
            "SELECT * FROM readings WHERE temp >= 100 AND temp <= 150", ctx);
        *sup = p.last_superset_size();
        return r;
      },
      "bucketized/8 (temp 100-150)", &superset, &rows);
  std::printf(
      "(searchable tags return the exact rows but equal values share a tag;\n"
      " buckets over-return yet reveal only bucket identifiers — Hore et "
      "al.'s dial)\n");
}

}  // namespace

int main() {
  secmed::BenchCheckBuild();
  std::printf("=== Extension-protocol experiments ===\n\n");
  Intersections();
  AggregatesVsFullJoin();
  SelectionVsRange();
  return 0;
}
