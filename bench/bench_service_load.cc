// Load benchmark of the query service layer (src/service/): closed-loop
// client streams against a long-lived QueryService, cold (no prepared
// cache — every session recomputes its delivery crypto) vs warm (the
// prepared-dataset registry reuses it across the session series). The
// warm/cold ratio is the headline number of docs/SERVICE.md: a series
// of joins against unchanged relations pays the source-side encryption
// once, not per query.
//
// Each benchmark iteration runs a full load (kQueries queries over
// kClients closed-loop clients); the reported counters carry the
// harness's own measurements (throughput, exact latency percentiles,
// cache hit rate) next to google-benchmark's wall time.
//
// Smoke scale by default so the CI regression step can afford it; scale
// up with --benchmark_filter and the workload knobs baked into
// MakeTestbed if deeper runs are wanted.

#include <benchmark/benchmark.h>

#include "bench_env.h"

#include <memory>
#include <string>

#include "core/testbed.h"
#include "service/load_harness.h"
#include "service/query_service.h"

namespace secmed {
namespace {

constexpr size_t kClients = 2;
constexpr size_t kQueries = 8;

/// One shared testbed (keygen is seconds of RSA/Paillier work and not
/// what this benchmark measures).
MediationTestbed* SharedTestbed() {
  static MediationTestbed* testbed = [] {
    WorkloadConfig cfg;
    cfg.seed = 1234;
    auto t = MediationTestbed::Create(GenerateWorkload(cfg));
    if (!t.ok()) {
      std::fprintf(stderr, "testbed: %s\n", t.status().ToString().c_str());
      std::abort();
    }
    return std::move(t).value().release();
  }();
  return testbed;
}

void RunServiceLoad(benchmark::State& state, const std::string& protocol,
                    bool prepared) {
  MediationTestbed* testbed = SharedTestbed();
  LoadStats last;
  for (auto _ : state) {
    // A fresh service per iteration: the cache starts empty either way,
    // and the warm variant pre-runs one uncounted query so the measured
    // stream is the steady state.
    QueryService::Options opt;
    opt.max_concurrent = kClients;
    opt.use_prepared = prepared;
    QueryService service(testbed, opt);
    LoadConfig cfg;
    cfg.clients = kClients;
    cfg.queries = kQueries;
    cfg.query.protocol = protocol;
    cfg.query.sql = testbed->JoinSql();
    if (prepared) {
      state.PauseTiming();
      auto warm = service.Run(cfg.query);
      if (!warm.ok() || !warm->status.ok()) {
        state.SkipWithError("warmup query failed");
        return;
      }
      state.ResumeTiming();
    }
    last = RunLoadHarness(&service, cfg);
    if (last.errors > 0 || !last.digests_agree) {
      state.SkipWithError("load run failed or results diverged");
      return;
    }
  }
  state.counters["qps"] = last.throughput_qps;
  state.counters["p50_ms"] = last.p50_ms;
  state.counters["p95_ms"] = last.p95_ms;
  state.counters["p99_ms"] = last.p99_ms;
  state.counters["shed_rate"] = last.shed_rate;
  state.counters["cache_hit_rate"] = last.cache_hit_rate;
  state.SetItemsProcessed(state.iterations() *
                          static_cast<int64_t>(last.completed));
}

void BM_ServiceLoad_Cold(benchmark::State& state, const char* protocol) {
  RunServiceLoad(state, protocol, false);
}

void BM_ServiceLoad_Warm(benchmark::State& state, const char* protocol) {
  RunServiceLoad(state, protocol, true);
}

BENCHMARK_CAPTURE(BM_ServiceLoad_Cold, commutative, "commutative")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_ServiceLoad_Warm, commutative, "commutative")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_ServiceLoad_Cold, das, "das")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_ServiceLoad_Warm, das, "das")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_ServiceLoad_Cold, pm, "pm")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);
BENCHMARK_CAPTURE(BM_ServiceLoad_Warm, pm, "pm")
    ->Unit(benchmark::kMillisecond)
    ->UseRealTime()
    ->Iterations(1);

}  // namespace
}  // namespace secmed

SECMED_BENCH_MAIN()
