// bench_obs_overhead — the cost of the observability layer, measured two
// ways:
//
//  * micro: the null-scope fast path of the instrumentation helpers
//    (StartSpan / AddCounter with scope == nullptr must compile down to a
//    branch) against a live scope recording for real;
//  * macro: an end-to-end commutative join with ctx->obs null vs. a live
//    scope — the acceptance criterion is that the null-scope run stays
//    within 2% of the uninstrumented PR 2 numbers, i.e. the protocol
//    pays nothing when nobody asked for a trace.
//
// Run the comparison with:
//   ./build/bench/bench_obs_overhead --benchmark_repetitions=5

#include <benchmark/benchmark.h>

#include "bench_env.h"

#include <memory>

#include "core/commutative_protocol.h"
#include "core/testbed.h"
#include "obs/log.h"
#include "obs/scope.h"
#include "obs/window.h"
#include "util/parallel.h"

namespace secmed {
namespace {

// ------------------------------------------------------------- micro --

void BM_NullScope_SpanHelpers(benchmark::State& state) {
  obs::Scope* scope = nullptr;
  for (auto _ : state) {
    obs::Span span = obs::StartSpan(scope, "client", "post", "decrypt");
    obs::AddCounter(scope, "bench.items", 1);
    benchmark::DoNotOptimize(span);
  }
}
BENCHMARK(BM_NullScope_SpanHelpers);

void BM_LiveScope_SpanHelpers(benchmark::State& state) {
  obs::Scope scope;
  for (auto _ : state) {
    obs::Span span = obs::StartSpan(&scope, "client", "post", "decrypt");
    obs::AddCounter(&scope, "bench.items", 1);
    benchmark::DoNotOptimize(span);
  }
}
BENCHMARK(BM_LiveScope_SpanHelpers);

void BM_ParallelFor_Obs(benchmark::State& state) {
  const bool instrumented = state.range(0) != 0;
  obs::Scope scope;
  obs::Scope* s = instrumented ? &scope : nullptr;
  volatile uint64_t sink = 0;
  for (auto _ : state) {
    ParallelFor(
        4096, 2, [&](size_t i) { sink = sink + i; }, s, "bench.loop");
  }
  state.counters["instrumented"] = instrumented ? 1 : 0;
}
BENCHMARK(BM_ParallelFor_Obs)->Arg(0)->Arg(1);

// ------------------------------------------------------------- macro --

// Arg: 0 = uninstrumented, 1 = live scope, 2 = the full telemetry plane
// of the service path (live scope + windowed metrics + one structured
// event per session — what secmedd pays per query with telemetry on).
// The CI gate compares 2 against 0: telemetry-on must stay within 3%.
void BM_Commutative_Obs(benchmark::State& state) {
  const int mode = static_cast<int>(state.range(0));
  const bool instrumented = mode != 0;
  WorkloadConfig cfg;
  cfg.r1_tuples = 100;
  cfg.r2_tuples = 100;
  cfg.r1_domain = 40;
  cfg.r2_domain = 40;
  cfg.common_values = 20;
  cfg.seed = 1234;
  static const Workload* w = new Workload(GenerateWorkload(cfg));
  CommutativeJoinProtocol comm(CommutativeProtocolOptions{512, false});
  // Daemon-lifetime objects: one windowed registry and one event log
  // across all sessions, as in tools/secmedd.cc. The sink swallows the
  // lines so the benchmark measures formatting, not stderr.
  obs::WindowRegistry windows;
  obs::EventLog elog([] {
    obs::EventLog::Options lopt;
    lopt.sink = [](const std::string& line) {
      benchmark::DoNotOptimize(line.size());
    };
    return lopt;
  }());
  for (auto _ : state) {
    state.PauseTiming();
    MediationTestbed::Options opt;
    opt.seed_label = "obs-overhead";
    auto tb_or = MediationTestbed::Create(*w, opt);
    if (!tb_or.ok()) {
      state.SkipWithError(tb_or.status().ToString().c_str());
      return;
    }
    MediationTestbed& tb = **tb_or;
    // A fresh scope per iteration so the live-scope run keeps paying the
    // recording cost instead of amortizing a huge span buffer.
    auto scope = std::make_unique<obs::Scope>();
    tb.ctx()->obs = instrumented ? scope.get() : nullptr;
    tb.bus().SetObsScope(instrumented ? scope.get() : nullptr);
    state.ResumeTiming();
    const uint64_t start_ns = mode == 2 ? windows.NowNanos() : 0;
    auto result = comm.Run(tb.JoinSql(), tb.ctx());
    if (!result.ok()) {
      state.SkipWithError(result.status().ToString().c_str());
      return;
    }
    if (mode == 2) {
      const uint64_t dur_ns = windows.NowNanos() - start_ns;
      windows.Add("sessions.completed", 1);
      windows.Observe("session.latency_ns", dur_ns);
      windows.Observe("session.latency_ns.commutative", dur_ns);
      elog.Log(obs::LogLevel::kInfo, "session.done",
               {{"session", "1"}, {"ok", "1"}, {"protocol", "commutative"}});
    }
    benchmark::DoNotOptimize(result->size());
  }
  state.counters["instrumented"] = instrumented ? 1 : 0;
  state.counters["mode"] = mode;
}
BENCHMARK(BM_Commutative_Obs)
    ->Unit(benchmark::kMillisecond)
    ->Iterations(3)
    ->Arg(0)
    ->Arg(1)
    ->Arg(2);

}  // namespace
}  // namespace secmed

SECMED_BENCH_MAIN();
